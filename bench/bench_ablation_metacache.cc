/**
 * @file
 * Ablation: unified vs. partitioned metadata cache (Section III-D:
 * "it is possible to partition the metadata cache for each metadata
 * (FECB, MECB, and MT nodes) to equitably distribute the cache
 * capacity"). Sweeps partition shares on a metadata-hungry workload.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

double
runTicks(const SimConfig &cfg, bool quick)
{
    workloads::DaxMicroConfig w;
    w.kind = workloads::DaxMicroKind::Dax2;
    w.spanBytes = quick ? (8 << 20) : (32 << 20);

    System sys(cfg);
    workloads::DaxMicroWorkload work(w);
    auto r = workloads::runWorkload(sys, work);
    return static_cast<double>(r.ticks);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);

    SimConfig unified;
    unified.scheme = Scheme::FsEncr;
    unified.sec.metadataCachePartitioned = false;
    double tu = runTicks(unified, quick);

    std::printf("Ablation: metadata cache organization (DAX-2, "
                "FsEncr, ticks vs unified)\n");
    std::printf("  %-28s 1.0000x\n", "unified 512KB");

    struct Split
    {
        const char *name;
        unsigned mecb, fecb, merkle;
    };
    const Split splits[] = {
        {"partitioned 2:1:1", 2, 1, 1},
        {"partitioned 1:1:1", 1, 1, 1},
        {"partitioned 1:2:1", 1, 2, 1},
        {"partitioned 3:3:2", 3, 3, 2},
    };
    for (const Split &s : splits) {
        SimConfig cfg = unified;
        cfg.sec.metadataCachePartitioned = true;
        cfg.sec.mecbShare = s.mecb;
        cfg.sec.fecbShare = s.fecb;
        cfg.sec.merkleShare = s.merkle;
        double t = runTicks(cfg, quick);
        std::printf("  %-28s %.4fx\n", s.name, t / tu);
    }
    std::printf("\nexpected shape: a shared cache adapts to the mix; "
                "static splits help only when one class thrashes the "
                "others out\n");
    return 0;
}
