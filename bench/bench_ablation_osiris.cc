/**
 * @file
 * Ablation: Osiris stop-loss sweep (DESIGN.md experiment index).
 *
 * The stop-loss bound trades metadata write traffic (counters persist
 * every Nth update) against recovery work (up to N trial decrypts per
 * line after a crash). stop-loss 0 is strict persistence — the
 * "extreme slowdown" Section II-D warns about.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);

    workloads::PmemkvConfig w;
    w.op = workloads::PmemkvOp::FillRandom;
    w.valueBytes = 64;
    w.numKeys = quick ? 4096 : 16384;
    w.numOps = w.numKeys;

    std::printf("Ablation: Osiris stop-loss (Fillrandom-S, FsEncr)\n");
    std::printf("%-10s %14s %14s %18s\n", "stop-loss", "ticks(rel)",
                "NVM writes", "recovery probes/line");

    double base_ticks = 0;
    for (unsigned stop_loss : {0u, 2u, 4u, 8u, 16u}) {
        SimConfig cfg;
        cfg.scheme = Scheme::FsEncr;
        cfg.sec.osirisStopLoss = stop_loss;

        System sys(cfg);
        workloads::PmemkvWorkload work(w);
        auto r = workloads::runWorkload(sys, work);
        if (base_ticks == 0)
            base_ticks = static_cast<double>(r.ticks);

        // Measure actual recovery effort: crash and recover.
        sys.crash();
        bool ok = sys.recover();
        double probes =
            static_cast<double>(sys.mc().statGroup().scalarValue(
                "osiris.probes")) /
            std::max<std::uint64_t>(
                1, sys.mc().statGroup().scalarValue(
                       "osiris.recovered"));

        std::printf("%-10u %13.3fx %14llu %17.2f%s\n", stop_loss,
                    r.ticks / base_ticks,
                    static_cast<unsigned long long>(r.nvmWrites),
                    probes, ok ? "" : "  (RECOVERY FAILED)");
    }
    std::printf("\nexpected shape: writes fall and recovery probes "
                "rise as the stop-loss grows\n");
    return 0;
}
