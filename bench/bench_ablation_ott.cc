/**
 * @file
 * Ablation: OTT design choices (DESIGN.md experiment index).
 *
 *  (a) OTT lookup latency sweep — the paper deliberately accepts 20
 *      cycles instead of a 1-cycle TLB-style search to save power;
 *      this quantifies how much performance that trade-off costs.
 *  (b) OTT crash-consistency policy: immediate spill logging vs.
 *      backup-power flush (Section III-H options 1 and 2).
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

double
runTicks(const SimConfig &cfg, bool quick)
{
    workloads::WhisperConfig w;
    w.kind = workloads::WhisperKind::Hashmap;
    w.numKeys = quick ? 4096 : 16384;
    w.numOps = w.numKeys;
    w.valueBytes = 128;
    w.readRatio = 0.3;

    System sys(cfg);
    workloads::WhisperWorkload work(w);
    auto r = workloads::runWorkload(sys, work);
    return static_cast<double>(r.ticks);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);

    std::printf("Ablation (a): OTT lookup latency (Hashmap, FsEncr "
                "ticks normalized to 1-cycle OTT)\n");
    SimConfig base;
    base.scheme = Scheme::FsEncr;
    base.sec.ottLatency = 1;
    double t1 = runTicks(base, quick);
    for (Cycles lat : {1u, 5u, 10u, 20u, 40u, 80u}) {
        SimConfig cfg = base;
        cfg.sec.ottLatency = lat;
        double t = runTicks(cfg, quick);
        std::printf("  ottLatency=%2u cycles: %.4fx\n",
                    unsigned(lat), t / t1);
    }

    std::printf("\nAblation (b): OTT crash-consistency policy "
                "(Hashmap, FsEncr ticks)\n");
    SimConfig log_now = base;
    log_now.sec.ottLatency = 20;
    log_now.sec.ottLogImmediately = true;
    log_now.sec.ottBackupPowerFlush = false;
    SimConfig backup = log_now;
    backup.sec.ottLogImmediately = false;
    backup.sec.ottBackupPowerFlush = true;
    double tl = runTicks(log_now, quick);
    double tb = runTicks(backup, quick);
    std::printf("  immediate logging:   %.0f ticks\n", tl);
    std::printf("  backup-power flush:  %.0f ticks (%.4fx)\n", tb,
                tb / tl);
    std::printf("  (the paper predicts both are near-free: OTT "
                "updates only happen at file creation)\n");
    return 0;
}
