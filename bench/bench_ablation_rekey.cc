/**
 * @file
 * Ablation: eager vs. lazy file re-keying after counter saturation
 * (Section VI). Eager re-encrypts the whole file up front; lazy keeps
 * both keys and re-encrypts each page on its next write. The win is
 * proportional to how much of the file is written after the re-key.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

constexpr unsigned filePages = 512;
constexpr std::uint32_t gid = 9, fid = 77;

struct Machine
{
    Machine()
        : cfg(makeCfg()), layout(cfg.layout), device(cfg.pcm),
          rng(cfg.seed),
          mc(cfg.sec, cfg.scheme, cfg.pcm, cfg.cyclePeriod(),
             cfg.profile, layout, device, McKeys::draw(rng))
    {
        old_key = crypto::randomKey(rng);
        new_key = crypto::randomKey(rng);
        mc.mmioRegisterFileKey(gid, fid, old_key, 0);
        std::uint8_t line[blockSize] = {1};
        for (unsigned p = 0; p < filePages; ++p) {
            pages.push_back(layout.pmemBase() + (1000 + p) * pageSize);
            mc.mmioStampPage(setDfBit(pages.back()), gid, fid, 0);
            mc.writeLine(setDfBit(pages.back()), line, p * 100, true);
        }
    }

    static SimConfig
    makeCfg()
    {
        SimConfig c;
        c.scheme = Scheme::FsEncr;
        c.seed = 99;
        return c;
    }

    /** Post-rekey workload: write a fraction of the file's pages. */
    Tick
    accessPhase(double write_fraction, Tick now)
    {
        Tick t = now;
        std::uint8_t line[blockSize] = {2};
        auto n = static_cast<unsigned>(filePages * write_fraction);
        for (unsigned p = 0; p < n; ++p)
            t += mc.writeLine(setDfBit(pages[p]), line, t, true);
        // ...and read everything once.
        for (unsigned p = 0; p < filePages; ++p)
            t += mc.readLine(setDfBit(pages[p]), t);
        return t - now;
    }

    SimConfig cfg;
    PhysLayout layout;
    NvmDevice device;
    Rng rng;
    SecureMemoryController mc;
    crypto::Key128 old_key, new_key;
    std::vector<Addr> pages;
};

} // namespace

int
main()
{
    std::printf("Ablation: eager vs lazy re-key of a %u-page file\n\n",
                filePages);
    std::printf("%-22s %14s %14s %10s\n", "post-rekey writes",
                "eager (us)", "lazy (us)", "speedup");

    for (double frac : {0.0, 0.1, 0.25, 0.5, 1.0}) {
        // Eager: re-encrypt every page at rekey time.
        Machine eager;
        Tick t0 = 1'000'000;
        Tick eager_cost = 0;
        eager.mc.mmioReplaceFileKey(gid, fid, eager.new_key, t0);
        for (Addr p : eager.pages)
            eager_cost += eager.mc.rekeyPage(setDfBit(p),
                                             eager.old_key,
                                             t0 + eager_cost);
        eager_cost += eager.accessPhase(frac, t0 + eager_cost);

        // Lazy: swap keys, pay per first-write.
        Machine lazy;
        Tick lazy_cost = lazy.mc.mmioBeginLazyRekey(
            gid, fid, lazy.new_key, lazy.pages, t0);
        lazy_cost += lazy.accessPhase(frac, t0 + lazy_cost);

        std::printf("%20.0f%% %14.1f %14.1f %9.2fx\n", frac * 100,
                    eager_cost / 1e6, lazy_cost / 1e6,
                    static_cast<double>(eager_cost) / lazy_cost);
    }
    std::printf("\nexpected shape: lazy wins big for cold files and "
                "converges to eager as the write fraction grows\n");
    return 0;
}
