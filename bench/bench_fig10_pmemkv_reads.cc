/**
 * @file
 * Figure 10: number of NVM reads of the PMEMKV benchmarks, normalized
 * to the baseline-security scheme.
 */

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    auto rows = runPmemkvRows(quickMode(argc, argv),
                              benchJobs(argc, argv),
                              benchConfig(argc, argv));
    printFigure("Figure 10: Number of reads (normalized to baseline): "
                "PMEMKV benchmarks",
                rows, Metric::Reads, Scheme::BaselineSecurity,
                {Scheme::NoEncryption, Scheme::FsEncr});
    return 0;
}
