/**
 * @file
 * Figure 11: (a) slowdown, (b) NVM writes, (c) NVM reads of the
 * Whisper benchmarks, normalized to the baseline-security scheme.
 * Also reports the headline "98.33% reduction in filesystem-
 * encryption slowdown vs software" comparison.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    std::vector<Scheme> schemes = {
        Scheme::NoEncryption, Scheme::BaselineSecurity, Scheme::FsEncr,
        Scheme::SoftwareEncryption};
    auto rows = runWhisperRows(quick, schemes, benchJobs(argc, argv),
                               benchConfig(argc, argv));

    std::vector<Scheme> bars = {Scheme::NoEncryption, Scheme::FsEncr};
    printFigure("Figure 11(a): Normalized slowdown: Whisper", rows,
                Metric::Slowdown, Scheme::BaselineSecurity, bars);
    printFigure("Figure 11(b): Number of writes: Whisper", rows,
                Metric::Writes, Scheme::BaselineSecurity, bars);
    printFigure("Figure 11(c): Number of reads: Whisper", rows,
                Metric::Reads, Scheme::BaselineSecurity, bars);

    // Headline: FsEncr eliminates almost all of the software-
    // encryption slowdown (98.33% reduction in the paper).
    double sw = normalizedGeomean(rows, Metric::Slowdown,
                                  Scheme::SoftwareEncryption,
                                  Scheme::NoEncryption);
    double hw = normalizedGeomean(rows, Metric::Slowdown,
                                  Scheme::FsEncr,
                                  Scheme::NoEncryption);
    double reduction = 100.0 * (1.0 - (hw - 1.0) / (sw - 1.0));
    std::printf("\nfilesystem-encryption slowdown vs ext4-dax: "
                "software %.2fx, FsEncr %.2fx\n", sw, hw);
    std::printf("paper: 98.33%% slowdown reduction; measured: %.2f%%\n",
                reduction);
    return 0;
}
