/**
 * @file
 * Figure 12: slowdown of the synthetic DAX micro-benchmarks,
 * normalized to the baseline-security scheme. The paper reports an
 * average ~20% FsEncr slowdown for these adversarially
 * metadata-unfriendly access patterns.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    auto rows = runMicroRows(quickMode(argc, argv),
                             benchJobs(argc, argv),
                             benchConfig(argc, argv));
    printFigure("Figure 12: Slowdown (normalized to baseline): "
                "synthetic micro-benchmarks",
                rows, Metric::Slowdown, Scheme::BaselineSecurity,
                {Scheme::NoEncryption, Scheme::FsEncr});

    double avg = normalizedGeomean(rows, Metric::Slowdown,
                                   Scheme::FsEncr,
                                   Scheme::BaselineSecurity);
    std::printf("\npaper: ~20.03%% average micro-benchmark slowdown; "
                "measured: %.1f%%\n", (avg - 1.0) * 100.0);
    return 0;
}
