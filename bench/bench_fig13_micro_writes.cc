/**
 * @file
 * Figure 13: NVM writes of the synthetic DAX micro-benchmarks,
 * normalized to the baseline-security scheme.
 */

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    auto rows = runMicroRows(quickMode(argc, argv),
                             benchJobs(argc, argv),
                             benchConfig(argc, argv));
    printFigure("Figure 13: Number of writes (normalized to "
                "baseline): synthetic micro-benchmarks",
                rows, Metric::Writes, Scheme::BaselineSecurity,
                {Scheme::NoEncryption, Scheme::FsEncr});
    return 0;
}
