/**
 * @file
 * Figure 14: NVM reads of the synthetic DAX micro-benchmarks,
 * normalized to the baseline-security scheme.
 */

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    auto rows = runMicroRows(quickMode(argc, argv),
                             benchJobs(argc, argv),
                             benchConfig(argc, argv));
    printFigure("Figure 14: Number of reads (normalized to baseline): "
                "synthetic micro-benchmarks",
                rows, Metric::Reads, Scheme::BaselineSecurity,
                {Scheme::NoEncryption, Scheme::FsEncr});
    return 0;
}
