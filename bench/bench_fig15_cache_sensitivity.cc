/**
 * @file
 * Figure 15: sensitivity of the FsEncr slowdown (vs. baseline
 * security) to the metadata-cache size, for one workload from each
 * suite: Fillrandom-L (PMEMKV), Hashmap (Whisper) and DAX-2
 * (synthetic). Real workloads should improve steeply with cache size;
 * the synthetic stride barely improves.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

double
slowdownAt(const std::string &name, const WorkloadFactory &factory,
           std::size_t cache_bytes, unsigned jobs)
{
    SimConfig cfg;
    cfg.sec.metadataCacheBytes = cache_bytes;
    BenchRow row = runRow(name, factory,
                          {Scheme::BaselineSecurity, Scheme::FsEncr},
                          cfg, jobs);
    double base = static_cast<double>(
        row.cells.at(Scheme::BaselineSecurity).ticks);
    double fsenc =
        static_cast<double>(row.cells.at(Scheme::FsEncr).ticks);
    return (fsenc / base - 1.0) * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    unsigned jobs = benchJobs(argc, argv);

    workloads::PmemkvConfig fill;
    fill.op = workloads::PmemkvOp::FillRandom;
    fill.valueBytes = 4096;
    fill.numKeys = quick ? 256 : 2048;
    fill.numOps = fill.numKeys;

    workloads::WhisperConfig hashmap;
    hashmap.kind = workloads::WhisperKind::Hashmap;
    hashmap.numKeys = quick ? 4096 : 32768;
    hashmap.numOps = hashmap.numKeys;
    hashmap.valueBytes = 128;
    hashmap.readRatio = 0.3;

    workloads::DaxMicroConfig dax2;
    dax2.kind = workloads::DaxMicroKind::Dax2;
    dax2.spanBytes = quick ? (4 << 20) : (32 << 20);

    struct Line
    {
        const char *name;
        WorkloadFactory factory;
    };
    std::vector<Line> lines = {
        {"Fillrandom-L",
         [fill]() {
             return std::make_unique<workloads::PmemkvWorkload>(fill);
         }},
        {"Hashmap",
         [hashmap]() {
             return std::make_unique<workloads::WhisperWorkload>(
                 hashmap);
         }},
        {"DAX-2",
         [dax2]() {
             return std::make_unique<workloads::DaxMicroWorkload>(
                 dax2);
         }},
    };

    const std::size_t sizes[] = {128 << 10, 256 << 10, 512 << 10,
                                 1 << 20, 2 << 20};

    std::printf("\nFigure 15: Sensitivity to metadata cache size\n");
    std::printf("(FsEncr slowdown over baseline security, percent)\n");
    std::printf("%-14s", "cache size");
    for (const Line &l : lines)
        std::printf(" %14s", l.name);
    std::printf("\n");

    for (std::size_t size : sizes) {
        std::string kb = std::to_string(size >> 10) + "KB";
        std::printf("%-14s", kb.c_str());
        for (const Line &l : lines)
            std::printf(" %13.2f%%",
                        slowdownAt(std::string(l.name) + "@" + kb,
                                   l.factory, size, jobs));
        std::printf("\n");
    }
    return 0;
}
