/**
 * @file
 * Figure 3: overheads of software filesystem encryption (eCryptfs-
 * style) over plain ext4-dax for the Whisper benchmarks. The paper
 * reports an average slowdown of ~2.7x, with YCSB approaching 5x.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    std::vector<Scheme> schemes = {Scheme::NoEncryption,
                                   Scheme::SoftwareEncryption};
    auto rows = runWhisperRows(quick, schemes, benchJobs(argc, argv),
                               benchConfig(argc, argv));

    printFigure("Figure 3: Overheads of software encryption "
                "(eCryptfs over ext4-dax)",
                rows, Metric::Slowdown, Scheme::NoEncryption, schemes);

    double avg = normalizedGeomean(rows, Metric::Slowdown,
                                   Scheme::SoftwareEncryption,
                                   Scheme::NoEncryption);
    std::printf("\npaper: ~2.7x average software-encryption slowdown; "
                "measured: %.2fx\n", avg);
    return 0;
}
