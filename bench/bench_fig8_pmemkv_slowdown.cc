/**
 * @file
 * Figure 8: slowdown of the PMEMKV benchmarks, normalized to the
 * baseline-security scheme (memory encryption only). Bars: ext4-dax
 * without encryption, and FsEncr.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    auto rows = runPmemkvRows(quickMode(argc, argv),
                              benchJobs(argc, argv),
                              benchConfig(argc, argv));
    printFigure("Figure 8: Slowdown (normalized to baseline): "
                "PMEMKV benchmarks",
                rows, Metric::Slowdown, Scheme::BaselineSecurity,
                {Scheme::NoEncryption, Scheme::FsEncr});

    double avg = normalizedGeomean(rows, Metric::Slowdown,
                                   Scheme::FsEncr,
                                   Scheme::BaselineSecurity);
    std::printf("\npaper: ~3.8%% average FsEncr slowdown across real "
                "workloads; measured here: %.1f%%\n",
                (avg - 1.0) * 100.0);
    return 0;
}
