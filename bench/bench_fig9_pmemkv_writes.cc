/**
 * @file
 * Figure 9: number of NVM writes of the PMEMKV benchmarks, normalized
 * to the baseline-security scheme.
 */

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

int
main(int argc, char **argv)
{
    auto rows = runPmemkvRows(quickMode(argc, argv),
                              benchJobs(argc, argv),
                              benchConfig(argc, argv));
    printFigure("Figure 9: Number of writes (normalized to baseline): "
                "PMEMKV benchmarks",
                rows, Metric::Writes, Scheme::BaselineSecurity,
                {Scheme::NoEncryption, Scheme::FsEncr});
    return 0;
}
