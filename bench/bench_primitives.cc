/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's primitive
 * building blocks: AES, SHA-256, CTR pad generation, cache model
 * accesses, OTT lookups and device timing. These bound the host cost
 * of simulation and document the crypto substrate's raw throughput.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "crypto/aes.hh"
#include "crypto/aes_cache.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/sha256.hh"
#include "fsenc/ott.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "secmem/merkle_tree.hh"

using namespace fsencr;

static void
BM_AesEncryptBlock(benchmark::State &state)
{
    Rng rng(1);
    crypto::Aes128 aes(crypto::randomKey(rng));
    crypto::Block128 blk;
    rng.fill(blk.data(), blk.size());
    for (auto _ : state) {
        blk = aes.encryptBlock(blk);
        benchmark::DoNotOptimize(blk);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

// Per-backend AES throughput: items/s is blocks/s. The AES-NI
// variants skip (rather than silently degrade) on hosts without the
// instruction so numbers are never mislabeled.
static bool
skipIfNoAesNi(benchmark::State &state, crypto::Aes128::Backend b)
{
    if (b == crypto::Aes128::Backend::AesNi &&
        !crypto::Aes128::aesniAvailable()) {
        state.SkipWithError("AES-NI not available on this host");
        return true;
    }
    return false;
}

static void
BM_AesBlockBackend(benchmark::State &state, crypto::Aes128::Backend b)
{
    if (skipIfNoAesNi(state, b))
        return;
    Rng rng(1);
    crypto::Aes128 aes(crypto::randomKey(rng), b);
    crypto::Block128 blk;
    rng.fill(blk.data(), blk.size());
    for (auto _ : state) {
        blk = aes.encryptBlock(blk);
        benchmark::DoNotOptimize(blk);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK_CAPTURE(BM_AesBlockBackend, reference,
                  crypto::Aes128::Backend::Reference);
BENCHMARK_CAPTURE(BM_AesBlockBackend, ttable,
                  crypto::Aes128::Backend::TTable);
BENCHMARK_CAPTURE(BM_AesBlockBackend, aesni,
                  crypto::Aes128::Backend::AesNi);

static void
BM_AesBlocks4Backend(benchmark::State &state, crypto::Aes128::Backend b)
{
    if (skipIfNoAesNi(state, b))
        return;
    Rng rng(2);
    crypto::Aes128 aes(crypto::randomKey(rng), b);
    crypto::Block128 in[4], out[4];
    for (auto &x : in)
        rng.fill(x.data(), x.size());
    for (auto _ : state) {
        aes.encryptBlocks4(in, out);
        benchmark::DoNotOptimize(out);
        in[0] = out[3];
    }
    state.SetItemsProcessed(state.iterations() * 4);
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK_CAPTURE(BM_AesBlocks4Backend, reference,
                  crypto::Aes128::Backend::Reference);
BENCHMARK_CAPTURE(BM_AesBlocks4Backend, ttable,
                  crypto::Aes128::Backend::TTable);
BENCHMARK_CAPTURE(BM_AesBlocks4Backend, aesni,
                  crypto::Aes128::Backend::AesNi);

static void
BM_AesKeySchedule(benchmark::State &state)
{
    Rng rng(2);
    crypto::Key128 key = crypto::randomKey(rng);
    for (auto _ : state) {
        crypto::Aes128 aes(key);
        benchmark::DoNotOptimize(aes);
    }
}
BENCHMARK(BM_AesKeySchedule);

static void
BM_Sha256Line(benchmark::State &state)
{
    Rng rng(3);
    std::uint8_t line[blockSize];
    rng.fill(line, sizeof(line));
    for (auto _ : state) {
        auto d = crypto::Sha256::digest(line, sizeof(line));
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK(BM_Sha256Line);

static void
BM_MakeOtp(benchmark::State &state)
{
    Rng rng(4);
    crypto::Aes128 aes(crypto::randomKey(rng));
    std::uint64_t page = 0;
    for (auto _ : state) {
        crypto::CtrIv iv{page++, 3, 1, 2};
        auto pad = crypto::makeOtp(aes, iv);
        benchmark::DoNotOptimize(pad);
    }
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK(BM_MakeOtp);

// Per-backend pad generation: items/s is pads/s (one 64-byte OTP =
// four AES blocks through the batched encryptBlocks4 path).
static void
BM_MakeOtpBackend(benchmark::State &state, crypto::Aes128::Backend b)
{
    if (skipIfNoAesNi(state, b))
        return;
    Rng rng(4);
    crypto::Aes128 aes(crypto::randomKey(rng), b);
    std::uint64_t page = 0;
    for (auto _ : state) {
        crypto::CtrIv iv{page++, 3, 1, 2};
        auto pad = crypto::makeOtp(aes, iv);
        benchmark::DoNotOptimize(pad);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK_CAPTURE(BM_MakeOtpBackend, reference,
                  crypto::Aes128::Backend::Reference);
BENCHMARK_CAPTURE(BM_MakeOtpBackend, ttable,
                  crypto::Aes128::Backend::TTable);
BENCHMARK_CAPTURE(BM_MakeOtpBackend, aesni,
                  crypto::Aes128::Backend::AesNi);

static void
BM_MakeOtpColdKey(benchmark::State &state)
{
    // The pre-cache hot path: re-expanding the key schedule for every
    // pad, as filePad did before the AES-context cache.
    Rng rng(4);
    crypto::Key128 key = crypto::randomKey(rng);
    std::uint64_t page = 0;
    for (auto _ : state) {
        crypto::Aes128 aes(key);
        crypto::CtrIv iv{page++, 3, 1, 2};
        auto pad = crypto::makeOtp(aes, iv);
        benchmark::DoNotOptimize(pad);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK(BM_MakeOtpColdKey);

static void
BM_AesContextCacheHit(benchmark::State &state)
{
    Rng rng(8);
    crypto::AesContextCache cache;
    crypto::Key128 key = crypto::randomKey(rng);
    cache.get(key);
    std::uint64_t page = 0;
    for (auto _ : state) {
        const crypto::Aes128 &aes = cache.get(key);
        crypto::CtrIv iv{page++, 3, 1, 2};
        auto pad = crypto::makeOtp(aes, iv);
        benchmark::DoNotOptimize(pad);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK(BM_AesContextCacheHit);

static void
BM_CacheAccessHit(benchmark::State &state)
{
    SetAssocCache cache("bench", 512 << 10, 8);
    cache.access(0x1000, false);
    for (auto _ : state) {
        auto r = cache.access(0x1000, false);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CacheAccessHit);

static void
BM_CacheAccessStream(benchmark::State &state)
{
    SetAssocCache cache("bench", 512 << 10, 8);
    Addr a = 0;
    for (auto _ : state) {
        auto r = cache.access(a, (a >> 6) & 1);
        benchmark::DoNotOptimize(r);
        a += blockSize;
    }
}
BENCHMARK(BM_CacheAccessStream);

static void
BM_DeviceAccess(benchmark::State &state)
{
    NvmDevice dev{PcmParams{}};
    Rng rng(5);
    Tick now = 0;
    for (auto _ : state) {
        MemRequest req;
        req.paddr = rng.nextBounded(1ull << 30) & ~63ull;
        req.isWrite = rng.nextBounded(2) != 0;
        now += dev.access(req, now) / 4;
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_DeviceAccess);

static void
BM_OttLookupHit(benchmark::State &state)
{
    PhysLayout layout{LayoutParams{}};
    NvmDevice dev{PcmParams{}};
    MerkleTree tree(layout, dev, 8);
    Rng rng(6);
    OpenTunnelTable ott(SecParams{}, layout, dev, tree,
                        crypto::randomKey(rng), 1000);
    for (std::uint32_t i = 0; i < 512; ++i)
        ott.insert(1, i + 1, crypto::randomKey(rng), 0, false);
    std::uint32_t fid = 1;
    for (auto _ : state) {
        auto r = ott.lookup(1, (fid++ % 512) + 1, 0);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_OttLookupHit);

static void
BM_MerkleUpdateLeaf(benchmark::State &state)
{
    PhysLayout layout{LayoutParams{}};
    NvmDevice dev{PcmParams{}};
    MerkleTree tree(layout, dev, 8);
    Rng rng(7);
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr leaf =
            layout.merkleLeavesBase() + (i++ % 4096) * blockSize;
        std::uint8_t line[blockSize];
        rng.fill(line, sizeof(line));
        dev.writeLine(leaf, line);
        tree.updateLeaf(leaf);
    }
}
BENCHMARK(BM_MerkleUpdateLeaf);

BENCHMARK_MAIN();
