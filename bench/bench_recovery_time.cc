/**
 * @file
 * Extra experiment: post-crash recovery effort — full Osiris sweep vs
 * Anubis shadow tracking (the recovery schemes Section III-H cites) —
 * as a function of the persisted working-set size. Reports lines
 * examined, ECC probes, and a first-order recovery-time model, plus
 * the runtime write overhead Anubis pays for its shadow table.
 */

#include <cstdio>

#include "bench/suites.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

struct Outcome
{
    SecureMemoryController::RecoveryReport report;
    std::uint64_t runtimeWrites = 0;
};

Outcome
crashAndRecover(SecParams::Recovery recovery, unsigned records)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.seed = 4040;
    cfg.sec.recovery = recovery;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");

    // One record per page: the metadata footprint (128B per page)
    // overflows the 512KB metadata cache beyond ~4K pages, which is
    // where the two recovery schemes diverge.
    int fd = sys.creat(0, "/pmem/r", 0600, OpenFlags::Encrypted, "pw");
    std::uint64_t bytes = (records + 1) * std::uint64_t(pageSize);
    sys.ftruncate(0, fd, bytes);
    Addr va = sys.mmapFile(0, fd, bytes);

    sys.beginMeasurement();
    for (unsigned i = 0; i < records; ++i) {
        sys.write<std::uint64_t>(0, va + i * std::uint64_t(pageSize),
                                 i);
        sys.persist(0, va + i * std::uint64_t(pageSize), 8);
    }
    Outcome out;
    out.runtimeWrites = sys.measuredWrites();

    sys.crash();
    sys.mc().recoverMetadata();
    sys.kernel().restampAllFiles(0);
    out.report = sys.mc().recoverAllReport();
    return out;
}

} // namespace

int
main()
{
    std::printf("Recovery effort: Osiris full sweep vs Anubis shadow "
                "tracking\n\n");
    std::printf("%-10s %-8s %10s %10s %14s %12s\n", "records",
                "scheme", "lines", "probes", "recovery(us)",
                "run writes");

    for (unsigned records : {2000u, 8000u, 32000u}) {
        auto osiris = crashAndRecover(
            SecParams::Recovery::OsirisSweep, records);
        auto anubis = crashAndRecover(
            SecParams::Recovery::AnubisShadow, records);

        std::printf("%-10u %-8s %10llu %10llu %14.1f %12llu\n",
                    records, "osiris",
                    static_cast<unsigned long long>(
                        osiris.report.linesExamined),
                    static_cast<unsigned long long>(
                        osiris.report.probes),
                    osiris.report.modelTime / 1e6,
                    static_cast<unsigned long long>(
                        osiris.runtimeWrites));
        std::printf("%-10s %-8s %10llu %10llu %14.1f %12llu\n", "",
                    "anubis",
                    static_cast<unsigned long long>(
                        anubis.report.linesExamined),
                    static_cast<unsigned long long>(
                        anubis.report.probes),
                    anubis.report.modelTime / 1e6,
                    static_cast<unsigned long long>(
                        anubis.runtimeWrites));
    }

    std::printf("\nexpected shape: the sweep's recovery effort grows "
                "with everything ever written; Anubis's stays bounded "
                "by the metadata cache, at the cost of extra runtime "
                "writes\n");
    return 0;
}
