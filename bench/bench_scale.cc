/**
 * @file
 * bench_scale: throughput suite for the fast-forward execution mode.
 *
 * Four phases:
 *  1. Golden cross-check — every scale cell runs once exact and once
 *     with --fast-forward at a matched op count; any divergence in
 *     ticks, NVM traffic or cycle attribution fails the bench (exit
 *     nonzero). This is the same invariant tests/test_fast_forward.cc
 *     proves on the figure benches, re-checked at bench scale.
 *  2. Throughput — the exact model runs a sized-down cell, fast-forward
 *     runs the full cell (>= 100M ops without --quick), and the bench
 *     reports host-side ops/sec and the speedup ratio (target >= 20x).
 *  3. Report rows — the fast-forward cells run across the three paper
 *     schemes through runRows(), so they land in the standard
 *     fsencr-bench-report and are gated against committed baselines
 *     like every other suite.
 *  4. Trace capture/replay — an out-of-cache variant is captured once
 *     at the controller and replayed against all three schemes, twice
 *     each: replay must be byte-identical run to run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/suites.hh"
#include "cpu/mem_trace.hh"
#include "workloads/scale_micro.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

struct CellRun
{
    workloads::WorkloadResult r;
    trace::Breakdown attr;
    double hostSeconds = 0.0;
};

CellRun
runCell(const SimConfig &cfg, const workloads::ScaleMicroConfig &wc)
{
    System sys(cfg);
    workloads::ScaleMicroWorkload w(wc);
    // Host timing brackets only the measured phase, mirroring the
    // simulated measurement window (setup is identical either way).
    w.setup(sys);
    sys.beginMeasurement();
    auto t0 = std::chrono::steady_clock::now();
    w.execute(sys);
    CellRun out;
    out.hostSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    out.r.ticks = sys.measuredTicks();
    out.r.nvmReads = sys.measuredReads();
    out.r.nvmWrites = sys.measuredWrites();
    out.r.operations = w.operations();
    out.attr = sys.measuredAttribution();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    SimConfig base = benchConfig(argc, argv);
    base.scheme = Scheme::FsEncr;
    unsigned jobs = benchJobs(argc, argv);

    // Phase 1: tick-exactness at matched op counts.
    std::uint64_t check_ops = quick ? 200000 : 1000000;
    std::printf("bench_scale: cross-checking fast-forward vs exact "
                "(%llu ops/cell)\n",
                static_cast<unsigned long long>(check_ops));
    for (const auto &wc : workloads::scaleMicroSuite(check_ops)) {
        SimConfig exact = base;
        exact.fastForward = false;
        SimConfig ff = base;
        ff.fastForward = true;
        CellRun a = runCell(exact, wc);
        CellRun b = runCell(ff, wc);
        bool same = a.r.ticks == b.r.ticks &&
                    a.r.nvmReads == b.r.nvmReads &&
                    a.r.nvmWrites == b.r.nvmWrites;
        for (unsigned c = 0; c < trace::NumComponents; ++c)
            same = same && a.attr.ticks[c] == b.attr.ticks[c];
        if (!same) {
            std::fprintf(stderr,
                         "bench_scale: DIVERGENCE on %s: exact "
                         "{ticks=%llu r=%llu w=%llu} ff {ticks=%llu "
                         "r=%llu w=%llu}\n",
                         workloads::scalePatternName(wc.pattern),
                         static_cast<unsigned long long>(a.r.ticks),
                         static_cast<unsigned long long>(a.r.nvmReads),
                         static_cast<unsigned long long>(a.r.nvmWrites),
                         static_cast<unsigned long long>(b.r.ticks),
                         static_cast<unsigned long long>(b.r.nvmReads),
                         static_cast<unsigned long long>(
                             b.r.nvmWrites));
            return 1;
        }
        std::printf("  %s: tick-exact at %llu ops (ticks=%llu)\n",
                    workloads::scalePatternName(wc.pattern),
                    static_cast<unsigned long long>(check_ops),
                    static_cast<unsigned long long>(a.r.ticks));
    }

    // Phase 2: throughput. The exact model runs fewer ops (it would
    // take ~an hour at 100M); rates are host ops/sec, best of three
    // runs per cell (the simulation is deterministic, so repetition
    // only filters host-side noise).
    std::uint64_t exact_ops = quick ? 1000000 : 5000000;
    std::uint64_t ff_ops = quick ? 20000000 : 100000000;
    std::printf("\nbench_scale: throughput (exact %llu ops, "
                "fast-forward %llu ops)\n",
                static_cast<unsigned long long>(exact_ops),
                static_cast<unsigned long long>(ff_ops));
    std::printf("%-14s %16s %16s %10s\n", "pattern", "exact ops/s",
                "ff ops/s", "speedup");
    const unsigned reps = 7;
    for (auto wc : workloads::scaleMicroSuite(exact_ops)) {
        SimConfig exact = base;
        exact.fastForward = false;
        SimConfig ff = base;
        ff.fastForward = true;

        double ra = 0.0;
        double rb = 0.0;
        for (unsigned rep = 0; rep < reps; ++rep) {
            wc.ops = exact_ops;
            CellRun a = runCell(exact, wc);
            if (a.hostSeconds > 0.0)
                ra = std::max(ra, static_cast<double>(exact_ops) /
                                      a.hostSeconds);
            wc.ops = ff_ops;
            CellRun b = runCell(ff, wc);
            if (b.hostSeconds > 0.0)
                rb = std::max(rb, static_cast<double>(ff_ops) /
                                      b.hostSeconds);
        }
        double speedup = ra > 0.0 ? rb / ra : 0.0;
        std::printf("%-14s %16.0f %16.0f %9.1fx%s\n",
                    workloads::scalePatternName(wc.pattern), ra, rb,
                    speedup, speedup >= 20.0 ? "" : "  (< 20x target)");
    }

    // Phase 3: report rows across the paper schemes, through the
    // standard report/baseline pipeline.
    SimConfig ff = base;
    ff.fastForward = true;
    std::vector<RowSpec> specs;
    for (const auto &wc : workloads::scaleMicroSuite(ff_ops)) {
        workloads::ScaleMicroWorkload probe(wc);
        specs.push_back({probe.name(), [wc]() {
                             return std::make_unique<
                                 workloads::ScaleMicroWorkload>(wc);
                         }});
    }
    auto rows = runRows(specs, paperSchemes(), ff, jobs);
    printFigure("bench_scale: cache-resident slowdown (fast-forward)",
                rows, Metric::Slowdown, Scheme::NoEncryption,
                paperSchemes());

    // Phase 4: capture once (out-of-cache variant so the controller
    // sees traffic), replay across all three schemes, twice each.
    workloads::ScaleMicroConfig cap;
    cap.pattern = workloads::ScalePattern::Mixed;
    cap.ops = quick ? 100000 : 1000000;
    cap.spanBytes = 8 << 20; // larger than the LLC: real MC traffic
    MemTrace mt;
    {
        System sys(ff);
        sys.mc().setTraceCapture(&mt);
        workloads::ScaleMicroWorkload w(cap);
        workloads::runWorkload(sys, w);
    }
    std::printf("\nbench_scale: captured %llu controller records; "
                "replaying per scheme\n",
                static_cast<unsigned long long>(mt.size()));
    for (Scheme s : paperSchemes()) {
        SimConfig rcfg = base;
        rcfg.scheme = s;
        ReplayResult r1 = replayTrace(mt, rcfg);
        ReplayResult r2 = replayTrace(mt, rcfg);
        if (r1.totalTicks != r2.totalTicks ||
            r1.nvmReads != r2.nvmReads ||
            r1.nvmWrites != r2.nvmWrites) {
            std::fprintf(stderr,
                         "bench_scale: replay of %s not "
                         "deterministic\n",
                         schemeName(s));
            return 1;
        }
        std::printf("  %-18s ticks=%llu nvm_reads=%llu "
                    "nvm_writes=%llu\n",
                    schemeName(s),
                    static_cast<unsigned long long>(r1.totalTicks),
                    static_cast<unsigned long long>(r1.nvmReads),
                    static_cast<unsigned long long>(r1.nvmWrites));
    }
    return 0;
}
