#include "bench/harness.hh"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace fsencr {
namespace bench {

const char *
metricName(Metric m)
{
    switch (m) {
      case Metric::Slowdown: return "slowdown";
      case Metric::Writes: return "NVM writes";
      case Metric::Reads: return "NVM reads";
    }
    return "?";
}

double
metricValue(const Cell &c, Metric m)
{
    switch (m) {
      case Metric::Slowdown: return static_cast<double>(c.ticks);
      case Metric::Writes: return static_cast<double>(c.nvmWrites);
      case Metric::Reads: return static_cast<double>(c.nvmReads);
    }
    return 0.0;
}

BenchRow
runRow(const std::string &name, const WorkloadFactory &factory,
       const std::vector<Scheme> &schemes, const SimConfig &base_cfg)
{
    BenchRow row;
    row.name = name;
    for (Scheme scheme : schemes) {
        SimConfig cfg = base_cfg;
        cfg.scheme = scheme;
        System sys(cfg);
        auto w = factory();
        auto t0 = std::chrono::steady_clock::now();
        workloads::WorkloadResult r = workloads::runWorkload(sys, *w);
        double host = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        std::fprintf(stderr, "  [%s / %s] %.2fs host\n", name.c_str(),
                     schemeName(scheme), host);
        Cell cell;
        cell.ticks = r.ticks;
        cell.nvmReads = r.nvmReads;
        cell.nvmWrites = r.nvmWrites;
        cell.operations = r.operations;
        row.cells[scheme] = cell;
    }
    return row;
}

double
normalizedGeomean(const std::vector<BenchRow> &rows, Metric metric,
                  Scheme scheme, Scheme base)
{
    double log_sum = 0.0;
    unsigned n = 0;
    for (const BenchRow &row : rows) {
        auto it = row.cells.find(scheme);
        auto bit = row.cells.find(base);
        if (it == row.cells.end() || bit == row.cells.end())
            continue;
        double v = metricValue(it->second, metric);
        double b = metricValue(bit->second, metric);
        if (b <= 0.0 || v <= 0.0)
            continue;
        log_sum += std::log(v / b);
        ++n;
    }
    return n ? std::exp(log_sum / n) : 0.0;
}

void
printFigure(const std::string &title, const std::vector<BenchRow> &rows,
            Metric metric, Scheme normalize_to,
            const std::vector<Scheme> &show)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("(%s, normalized to %s)\n", metricName(metric),
                schemeName(normalize_to));

    std::printf("%-16s", "benchmark");
    for (Scheme s : show)
        std::printf(" %22s", schemeName(s));
    std::printf("\n");

    for (const BenchRow &row : rows) {
        std::printf("%-16s", row.name.c_str());
        double base =
            metricValue(row.cells.at(normalize_to), metric);
        for (Scheme s : show) {
            double v = metricValue(row.cells.at(s), metric);
            if (base > 0.0)
                std::printf(" %22.3f", v / base);
            else
                std::printf(" %22s", "n/a");
        }
        std::printf("\n");
    }

    std::printf("%-16s", "geomean");
    for (Scheme s : show)
        std::printf(" %22.3f",
                    normalizedGeomean(rows, metric, s, normalize_to));
    std::printf("\n");
}

} // namespace bench
} // namespace fsencr
