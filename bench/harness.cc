#include "bench/harness.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "common/report.hh"
#include "fsenc/mc_router.hh"

namespace fsencr {
namespace bench {

const char *
metricName(Metric m)
{
    switch (m) {
      case Metric::Slowdown: return "slowdown";
      case Metric::Writes: return "NVM writes";
      case Metric::Reads: return "NVM reads";
    }
    return "?";
}

double
metricValue(const Cell &c, Metric m)
{
    switch (m) {
      case Metric::Slowdown: return static_cast<double>(c.ticks);
      case Metric::Writes: return static_cast<double>(c.nvmWrites);
      case Metric::Reads: return static_cast<double>(c.nvmReads);
    }
    return 0.0;
}

namespace {

/** Rows accumulated for the end-of-process bench report. */
struct ReportState
{
    std::mutex mutex;
    std::vector<BenchRow> rows;
    bool atexitRegistered = false;
};

ReportState &
reportState()
{
    static ReportState s;
    return s;
}

void
writeBenchReportAtExit()
{
    const char *path = std::getenv("FSENCR_BENCH_REPORT");
    if (path && *path)
        writeBenchReport(path);
}

/** Queue rows for the exit-time report if FSENCR_BENCH_REPORT is set. */
void
collectForReport(const std::vector<BenchRow> &rows)
{
    const char *path = std::getenv("FSENCR_BENCH_REPORT");
    if (!path || !*path)
        return;
    ReportState &st = reportState();
    std::lock_guard<std::mutex> lock(st.mutex);
    st.rows.insert(st.rows.end(), rows.begin(), rows.end());
    if (!st.atexitRegistered) {
        std::atexit(writeBenchReportAtExit);
        st.atexitRegistered = true;
    }
}

unsigned
parseJobs(const char *s)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0')
        return 1;
    if (v == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }
    return static_cast<unsigned>(v);
}

} // namespace

unsigned
benchJobs(int argc, char **argv)
{
    bool seen = false;
    unsigned jobs = 1;
    cli::Parser p;
    p.custom("--jobs", "N",
             "worker threads (0 = one per hardware thread)",
             [&](const std::string &v) {
                 seen = true;
                 jobs = parseJobs(v.c_str());
                 return true;
             })
        .ignoreUnknown();
    p.parse(argc, argv);
    if (seen)
        return jobs;
    if (const char *env = std::getenv("FSENCR_BENCH_JOBS"))
        return parseJobs(env);
    return 1;
}

SimConfig
benchConfig(int argc, char **argv)
{
    SimConfig cfg;
    McParams mc;
    cli::Parser p;
    p.flag("--fast-forward",
           "collapse L1-hit runs into bulk clock updates "
           "(tick-exact; see docs/ARCHITECTURE.md)",
           &cfg.fastForward)
        .flag("--profile",
              "contention profiler: per-cell bottleneck section in "
              "the bench report (observation only)",
              &cfg.profile)
        .ignoreUnknown();
    cli::addMcOptions(p, mc);
    p.parse(argc, argv);
    std::string err;
    if (!mc.applyTo(cfg, err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        std::exit(2);
    }
    return cfg;
}

std::vector<BenchRow>
runRows(const std::vector<RowSpec> &specs,
        const std::vector<Scheme> &schemes, const SimConfig &base_cfg,
        unsigned jobs)
{
    struct Task
    {
        std::size_t row;
        std::size_t scheme;
    };
    std::vector<Task> tasks;
    tasks.reserve(specs.size() * schemes.size());
    for (std::size_t r = 0; r < specs.size(); ++r)
        for (std::size_t s = 0; s < schemes.size(); ++s)
            tasks.push_back({r, s});

    // Results land in fixed (row, scheme) slots, so assembly below is
    // independent of which worker finished first.
    std::vector<std::vector<Cell>> cells(
        specs.size(), std::vector<Cell>(schemes.size()));

    std::mutex log_mutex;
    auto run_cell = [&](const Task &t) {
        SimConfig cfg = base_cfg;
        cfg.scheme = schemes[t.scheme];
        System sys(cfg);
        auto w = specs[t.row].factory();
        auto t0 = std::chrono::steady_clock::now();
        workloads::WorkloadResult r = workloads::runWorkload(sys, *w);
        double host = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        {
            std::lock_guard<std::mutex> lock(log_mutex);
            std::fprintf(stderr, "  [%s / %s] %.2fs host\n",
                         specs[t.row].name.c_str(),
                         schemeName(cfg.scheme), host);
        }
        Cell cell;
        cell.ticks = r.ticks;
        cell.nvmReads = r.nvmReads;
        cell.nvmWrites = r.nvmWrites;
        cell.operations = r.operations;
        cell.attribution = sys.measuredAttribution();
        McRouter &router = sys.router();
        const stats::Histogram rh = router.readLatencyHistogram();
        const stats::Histogram wh = router.writeLatencyHistogram();
        cell.readP50 = rh.percentile(50.0);
        cell.readP95 = rh.percentile(95.0);
        cell.readP99 = rh.percentile(99.0);
        cell.writeP50 = wh.percentile(50.0);
        cell.writeP95 = wh.percentile(95.0);
        cell.writeP99 = wh.percentile(99.0);
        cell.mcOverlapTicks = 0;
        for (unsigned k = 0; k < router.shardCount(); ++k)
            cell.mcOverlapTicks += router.shard(k).overlapTicks();
        if (const profile::Profiler *prof = router.profiler())
            cell.profile = std::make_shared<profile::Profiler>(*prof);
        if (router.shardCount() > 1) {
            auto sh = std::make_shared<report::ShardsInfo>();
            sh->count = router.shardCount();
            sh->serialTicks = sys.measuredShardSerialTicks();
            sh->visibleTicks = sys.measuredShardVisibleTicks();
            for (unsigned k = 0; k < sh->count; ++k)
                sh->perShardBusy.push_back(
                    sys.measuredShardBusyTicks(k));
            if (cell.profile)
                sh->projectedSpeedup = cell.profile->projectedSpeedup(
                    sh->count, sh->perShardBusy);
            cell.shards = std::move(sh);
        }
        cells[t.row][t.scheme] = cell;
    };

    if (jobs <= 1 || tasks.size() <= 1) {
        for (const Task &t : tasks)
            run_cell(t);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= tasks.size())
                    return;
                run_cell(tasks[i]);
            }
        };
        unsigned n = std::min<std::size_t>(jobs, tasks.size());
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            pool.emplace_back(worker);
        for (std::thread &th : pool)
            th.join();
    }

    std::vector<BenchRow> rows(specs.size());
    for (std::size_t r = 0; r < specs.size(); ++r) {
        rows[r].name = specs[r].name;
        for (std::size_t s = 0; s < schemes.size(); ++s)
            rows[r].cells[schemes[s]] = cells[r][s];
    }
    collectForReport(rows);
    return rows;
}

bool
writeBenchReport(const std::string &path)
{
    ReportState &st = reportState();
    std::lock_guard<std::mutex> lock(st.mutex);
    if (st.rows.empty())
        return false;
    std::ofstream os(path);
    if (!os) {
        warn("cannot write bench report '%s'", path.c_str());
        return false;
    }
    bool profiled = false;
    for (const BenchRow &row : st.rows)
        for (const auto &[scheme, cell] : row.cells)
            if (cell.profile)
                profiled = true;
    report::JsonWriter w(os);
    report::beginReport(w, report::benchReportSchema,
                        profiled ? report::benchReportVersionProfiled
                                 : report::benchReportVersion);
    w.beginArray("rows");
    for (const BenchRow &row : st.rows) {
        w.beginObject();
        w.field("name", row.name);
        w.beginArray("cells");
        for (const auto &[scheme, cell] : row.cells) {
            w.beginObject();
            w.field("scheme", schemeName(scheme));
            w.field("operations", cell.operations);
            w.field("ticks", cell.ticks);
            w.field("nvm_reads", cell.nvmReads);
            w.field("nvm_writes", cell.nvmWrites);
            w.field("read_p50", cell.readP50);
            w.field("read_p95", cell.readP95);
            w.field("read_p99", cell.readP99);
            w.field("write_p50", cell.writeP50);
            w.field("write_p95", cell.writeP95);
            w.field("write_p99", cell.writeP99);
            w.field("mc_overlap_ticks", cell.mcOverlapTicks);
            report::writeBreakdown(w, "attribution",
                                   cell.attribution);
            if (cell.profile)
                report::writeProfileSection(w, *cell.profile,
                                            cell.ticks);
            if (cell.shards)
                report::writeShardsSection(w, *cell.shards);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return os.good();
}

BenchRow
runRow(const std::string &name, const WorkloadFactory &factory,
       const std::vector<Scheme> &schemes, const SimConfig &base_cfg,
       unsigned jobs)
{
    return runRows({{name, factory}}, schemes, base_cfg, jobs).front();
}

double
normalizedGeomean(const std::vector<BenchRow> &rows, Metric metric,
                  Scheme scheme, Scheme base)
{
    double log_sum = 0.0;
    unsigned n = 0;
    for (const BenchRow &row : rows) {
        auto it = row.cells.find(scheme);
        auto bit = row.cells.find(base);
        if (it == row.cells.end() || bit == row.cells.end())
            continue;
        double v = metricValue(it->second, metric);
        double b = metricValue(bit->second, metric);
        if (b <= 0.0 || v <= 0.0)
            continue;
        log_sum += std::log(v / b);
        ++n;
    }
    return n ? std::exp(log_sum / n) : 0.0;
}

void
printFigure(const std::string &title, const std::vector<BenchRow> &rows,
            Metric metric, Scheme normalize_to,
            const std::vector<Scheme> &show)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("(%s, normalized to %s)\n", metricName(metric),
                schemeName(normalize_to));

    std::printf("%-16s", "benchmark");
    for (Scheme s : show)
        std::printf(" %22s", schemeName(s));
    std::printf("\n");

    for (const BenchRow &row : rows) {
        std::printf("%-16s", row.name.c_str());
        double base =
            metricValue(row.cells.at(normalize_to), metric);
        for (Scheme s : show) {
            double v = metricValue(row.cells.at(s), metric);
            if (base > 0.0)
                std::printf(" %22.3f", v / base);
            else
                std::printf(" %22s", "n/a");
        }
        std::printf("\n");
    }

    std::printf("%-16s", "geomean");
    for (Scheme s : show)
        std::printf(" %22.3f",
                    normalizedGeomean(rows, metric, s, normalize_to));
    std::printf("\n");
}

} // namespace bench
} // namespace fsencr
