/**
 * @file
 * Shared benchmark harness: runs a workload factory across protection
 * schemes on fresh Systems and prints paper-style normalized tables
 * (slowdown / NVM writes / NVM reads, Figures 3 and 8-15).
 */

#ifndef FSENCR_BENCH_HARNESS_HH
#define FSENCR_BENCH_HARNESS_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace fsencr {
namespace bench {

/** Creates a fresh workload instance (one per scheme run). */
using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>()>;

/** Raw measurements of one (workload, scheme) cell. */
struct Cell
{
    Tick ticks = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t operations = 0;
};

/** One row of a figure: a workload across schemes. */
struct BenchRow
{
    std::string name;
    std::map<Scheme, Cell> cells;
};

/** Which quantity a figure plots. */
enum class Metric { Slowdown, Writes, Reads };

const char *metricName(Metric m);

/** Extract the raw metric value from a cell. */
double metricValue(const Cell &c, Metric m);

/**
 * Run one workload under each scheme (fresh System per scheme).
 *
 * @param base_cfg configuration template; scheme is overridden
 */
BenchRow runRow(const std::string &name, const WorkloadFactory &factory,
                const std::vector<Scheme> &schemes,
                const SimConfig &base_cfg = SimConfig{});

/**
 * Print a normalized figure: one line per row, one column per shown
 * scheme, each value divided by the row's `normalize_to` cell. Ends
 * with the geometric-mean row the paper quotes.
 */
void printFigure(const std::string &title,
                 const std::vector<BenchRow> &rows, Metric metric,
                 Scheme normalize_to,
                 const std::vector<Scheme> &show);

/** Geometric mean of (metric of scheme / metric of base) over rows. */
double normalizedGeomean(const std::vector<BenchRow> &rows,
                         Metric metric, Scheme scheme, Scheme base);

} // namespace bench
} // namespace fsencr

#endif // FSENCR_BENCH_HARNESS_HH
