/**
 * @file
 * Shared benchmark harness: runs a workload factory across protection
 * schemes on fresh Systems and prints paper-style normalized tables
 * (slowdown / NVM writes / NVM reads, Figures 3 and 8-15).
 *
 * Every (workload, scheme) cell is an independent simulation on a
 * fresh System, so the harness can fan cells across a host thread
 * pool. Parallelism is host-side only: cells are deterministic, and
 * results are assembled in a fixed (row, scheme) order, so the
 * reported ticks / NVM reads / NVM writes are bit-identical to a
 * serial run at any job count.
 */

#ifndef FSENCR_BENCH_HARNESS_HH
#define FSENCR_BENCH_HARNESS_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/report.hh"
#include "common/trace.hh"
#include "workloads/workload.hh"

namespace fsencr {

namespace profile {
class Profiler;
} // namespace profile

namespace bench {

/** Creates a fresh workload instance (one per scheme run). */
using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>()>;

/** Raw measurements of one (workload, scheme) cell. */
struct Cell
{
    Tick ticks = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t operations = 0;

    /** Per-component cycle attribution of the measured interval;
     *  total() == ticks. Deterministic like every other field. */
    trace::Breakdown attribution;

    /** Memory-request latency percentiles (ticks). */
    double readP50 = 0, readP95 = 0, readP99 = 0;
    double writeP50 = 0, writeP95 = 0, writeP99 = 0;

    /** Serial-model ticks hidden by metadata-chain overlap; 0 in the
     *  default single-issue (--mc-banks 1) configuration. */
    std::uint64_t mcOverlapTicks = 0;

    /** Contention-profiler snapshot of the cell's run; null unless the
     *  bench ran with --profile. Presence upgrades the bench report to
     *  the profiled schema version. */
    std::shared_ptr<profile::Profiler> profile;

    /** Sharded-datapath measurement (`--mc-shards > 1`); null in the
     *  default unsharded run so baseline reports are unchanged. */
    std::shared_ptr<report::ShardsInfo> shards;
};

/** One row of a figure: a workload across schemes. */
struct BenchRow
{
    std::string name;
    std::map<Scheme, Cell> cells;
};

/** A named workload awaiting its scheme runs (input to runRows). */
struct RowSpec
{
    std::string name;
    WorkloadFactory factory;
};

/** Which quantity a figure plots. */
enum class Metric { Slowdown, Writes, Reads };

const char *metricName(Metric m);

/** Extract the raw metric value from a cell. */
double metricValue(const Cell &c, Metric m);

/**
 * Worker threads for a bench run: `--jobs N` / `--jobs=N` on the
 * command line, else the FSENCR_BENCH_JOBS environment variable, else
 * 1 (serial). N = 0 means "one per hardware thread".
 */
unsigned benchJobs(int argc, char **argv);

/**
 * Configuration template for a bench run: the shared MC knob bundle
 * (`--mc-banks`, `--mc-mshrs`, `--mc-shards`, `--audit-filter`,
 * `--persist-domain`, `--backup-flush-budget`; see cli::addMcOptions)
 * plus `--fast-forward` and `--profile`. Defaults leave the legacy
 * serial model in place, so every committed baseline is reproduced
 * bit-identically without flags.
 */
SimConfig benchConfig(int argc, char **argv);

/**
 * Run every (row, scheme) cell, fanning cells across `jobs` worker
 * threads (1 = serial). Each cell gets a fresh System and workload;
 * output order and all measured values are independent of the job
 * count.
 *
 * @param base_cfg configuration template; scheme is overridden
 */
std::vector<BenchRow> runRows(const std::vector<RowSpec> &specs,
                              const std::vector<Scheme> &schemes,
                              const SimConfig &base_cfg = SimConfig{},
                              unsigned jobs = 1);

/**
 * Run one workload under each scheme (fresh System per scheme).
 *
 * @param base_cfg configuration template; scheme is overridden
 */
BenchRow runRow(const std::string &name, const WorkloadFactory &factory,
                const std::vector<Scheme> &schemes,
                const SimConfig &base_cfg = SimConfig{},
                unsigned jobs = 1);

/**
 * Print a normalized figure: one line per row, one column per shown
 * scheme, each value divided by the row's `normalize_to` cell. Ends
 * with the geometric-mean row the paper quotes.
 */
void printFigure(const std::string &title,
                 const std::vector<BenchRow> &rows, Metric metric,
                 Scheme normalize_to,
                 const std::vector<Scheme> &show);

/** Geometric mean of (metric of scheme / metric of base) over rows. */
double normalizedGeomean(const std::vector<BenchRow> &rows,
                         Metric metric, Scheme scheme, Scheme base);

/**
 * Write every row runRows() has produced in this process as a
 * versioned bench report (schema fsencr-bench-report). Called
 * automatically at exit when the FSENCR_BENCH_REPORT environment
 * variable names an output file; exposed for tests.
 *
 * @return true on success (false: no rows or I/O failure)
 */
bool writeBenchReport(const std::string &path);

} // namespace bench
} // namespace fsencr

#endif // FSENCR_BENCH_HARNESS_HH
