/**
 * @file
 * Shared suite builders for the figure benches. Every bench accepts
 * `--quick` to shrink workload sizes for smoke runs (full sizes
 * reproduce the paper's figures) and `--jobs N` (or FSENCR_BENCH_JOBS)
 * to fan the independent (workload, scheme) cells across host threads.
 */

#ifndef FSENCR_BENCH_SUITES_HH
#define FSENCR_BENCH_SUITES_HH

#include <vector>

#include "bench/harness.hh"
#include "common/cli.hh"
#include "workloads/dax_micro.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/whisper_bench.hh"

namespace fsencr {
namespace bench {

/** True if --quick appears in argv. */
inline bool
quickMode(int argc, char **argv)
{
    bool quick = false;
    cli::Parser p;
    p.flag("--quick", "shrink workload sizes for smoke runs", &quick)
        .ignoreUnknown();
    p.parse(argc, argv);
    return quick;
}

/** The three schemes Figures 8-14 compare. */
inline std::vector<Scheme>
paperSchemes()
{
    return {Scheme::NoEncryption, Scheme::BaselineSecurity,
            Scheme::FsEncr};
}

/** Run the PMEMKV suite (Figures 8-10 share these rows). */
inline std::vector<BenchRow>
runPmemkvRows(bool quick, unsigned jobs = 1,
              const SimConfig &base_cfg = SimConfig{})
{
    std::uint64_t small_keys = quick ? 4096 : 32768;
    std::uint64_t large_keys = quick ? 256 : 2048;
    std::vector<RowSpec> specs;
    for (const auto &cfg :
         workloads::pmemkvSuite(small_keys, large_keys)) {
        workloads::PmemkvWorkload probe(cfg);
        specs.push_back({probe.name(), [cfg]() {
                             return std::make_unique<
                                 workloads::PmemkvWorkload>(cfg);
                         }});
    }
    return runRows(specs, paperSchemes(), base_cfg, jobs);
}

/** Run the Whisper suite (Figure 11 and Figure 3 share these). */
inline std::vector<BenchRow>
runWhisperRows(bool quick, const std::vector<Scheme> &schemes,
               unsigned jobs = 1,
               const SimConfig &base_cfg = SimConfig{})
{
    std::uint64_t keys = quick ? 4096 : 32768;
    std::vector<RowSpec> specs;
    for (const auto &cfg : workloads::whisperSuite(keys)) {
        workloads::WhisperWorkload probe(cfg);
        specs.push_back({probe.name(), [cfg]() {
                             return std::make_unique<
                                 workloads::WhisperWorkload>(cfg);
                         }});
    }
    return runRows(specs, schemes, base_cfg, jobs);
}

/** Run the DAX micro suite (Figures 12-14 share these rows). */
inline std::vector<BenchRow>
runMicroRows(bool quick, unsigned jobs = 1,
             const SimConfig &base_cfg = SimConfig{})
{
    std::vector<RowSpec> specs;
    for (auto cfg : workloads::daxMicroSuite()) {
        if (quick) {
            // Still larger than the LLC so that writeback traffic
            // (Figure 13) exists even in smoke runs.
            cfg.spanBytes = 8 << 20;
            cfg.swapOps = 20000;
        }
        workloads::DaxMicroWorkload probe(cfg);
        specs.push_back({probe.name(), [cfg]() {
                             return std::make_unique<
                                 workloads::DaxMicroWorkload>(cfg);
                         }});
    }
    return runRows(specs, paperSchemes(), base_cfg, jobs);
}

} // namespace bench
} // namespace fsencr

#endif // FSENCR_BENCH_SUITES_HH
