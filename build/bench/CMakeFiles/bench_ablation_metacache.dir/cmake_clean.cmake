file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_metacache.dir/bench_ablation_metacache.cc.o"
  "CMakeFiles/bench_ablation_metacache.dir/bench_ablation_metacache.cc.o.d"
  "bench_ablation_metacache"
  "bench_ablation_metacache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metacache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
