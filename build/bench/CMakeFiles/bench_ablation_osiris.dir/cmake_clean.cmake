file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_osiris.dir/bench_ablation_osiris.cc.o"
  "CMakeFiles/bench_ablation_osiris.dir/bench_ablation_osiris.cc.o.d"
  "bench_ablation_osiris"
  "bench_ablation_osiris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_osiris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
