# Empty compiler generated dependencies file for bench_ablation_osiris.
# This may be replaced when dependencies are built.
