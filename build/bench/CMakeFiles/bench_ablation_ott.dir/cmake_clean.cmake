file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ott.dir/bench_ablation_ott.cc.o"
  "CMakeFiles/bench_ablation_ott.dir/bench_ablation_ott.cc.o.d"
  "bench_ablation_ott"
  "bench_ablation_ott.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ott.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
