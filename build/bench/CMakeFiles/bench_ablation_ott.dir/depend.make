# Empty dependencies file for bench_ablation_ott.
# This may be replaced when dependencies are built.
