file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_pmemkv_reads.dir/bench_fig10_pmemkv_reads.cc.o"
  "CMakeFiles/bench_fig10_pmemkv_reads.dir/bench_fig10_pmemkv_reads.cc.o.d"
  "bench_fig10_pmemkv_reads"
  "bench_fig10_pmemkv_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_pmemkv_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
