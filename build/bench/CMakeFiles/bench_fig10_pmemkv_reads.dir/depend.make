# Empty dependencies file for bench_fig10_pmemkv_reads.
# This may be replaced when dependencies are built.
