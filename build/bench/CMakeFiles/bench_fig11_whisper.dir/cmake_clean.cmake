file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_whisper.dir/bench_fig11_whisper.cc.o"
  "CMakeFiles/bench_fig11_whisper.dir/bench_fig11_whisper.cc.o.d"
  "bench_fig11_whisper"
  "bench_fig11_whisper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_whisper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
