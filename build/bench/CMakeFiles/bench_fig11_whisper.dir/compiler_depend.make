# Empty compiler generated dependencies file for bench_fig11_whisper.
# This may be replaced when dependencies are built.
