file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_micro_slowdown.dir/bench_fig12_micro_slowdown.cc.o"
  "CMakeFiles/bench_fig12_micro_slowdown.dir/bench_fig12_micro_slowdown.cc.o.d"
  "bench_fig12_micro_slowdown"
  "bench_fig12_micro_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_micro_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
