file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_micro_reads.dir/bench_fig14_micro_reads.cc.o"
  "CMakeFiles/bench_fig14_micro_reads.dir/bench_fig14_micro_reads.cc.o.d"
  "bench_fig14_micro_reads"
  "bench_fig14_micro_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_micro_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
