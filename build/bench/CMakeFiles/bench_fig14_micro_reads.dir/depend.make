# Empty dependencies file for bench_fig14_micro_reads.
# This may be replaced when dependencies are built.
