
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_software_encryption.cc" "bench/CMakeFiles/bench_fig3_software_encryption.dir/bench_fig3_software_encryption.cc.o" "gcc" "bench/CMakeFiles/bench_fig3_software_encryption.dir/bench_fig3_software_encryption.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/fsencr_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fsencr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsencr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fsencr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/fsencr_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fsenc/CMakeFiles/fsencr_fsenc.dir/DependInfo.cmake"
  "/root/repo/build/src/secmem/CMakeFiles/fsencr_secmem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/fsencr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/fsencr_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fsencr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fsencr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsencr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
