file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_software_encryption.dir/bench_fig3_software_encryption.cc.o"
  "CMakeFiles/bench_fig3_software_encryption.dir/bench_fig3_software_encryption.cc.o.d"
  "bench_fig3_software_encryption"
  "bench_fig3_software_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_software_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
