# Empty dependencies file for bench_fig3_software_encryption.
# This may be replaced when dependencies are built.
