file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_pmemkv_slowdown.dir/bench_fig8_pmemkv_slowdown.cc.o"
  "CMakeFiles/bench_fig8_pmemkv_slowdown.dir/bench_fig8_pmemkv_slowdown.cc.o.d"
  "bench_fig8_pmemkv_slowdown"
  "bench_fig8_pmemkv_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pmemkv_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
