# Empty compiler generated dependencies file for bench_fig8_pmemkv_slowdown.
# This may be replaced when dependencies are built.
