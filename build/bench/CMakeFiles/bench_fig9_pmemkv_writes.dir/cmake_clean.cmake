file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_pmemkv_writes.dir/bench_fig9_pmemkv_writes.cc.o"
  "CMakeFiles/bench_fig9_pmemkv_writes.dir/bench_fig9_pmemkv_writes.cc.o.d"
  "bench_fig9_pmemkv_writes"
  "bench_fig9_pmemkv_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pmemkv_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
