# Empty compiler generated dependencies file for bench_fig9_pmemkv_writes.
# This may be replaced when dependencies are built.
