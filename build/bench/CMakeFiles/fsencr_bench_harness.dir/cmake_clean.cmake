file(REMOVE_RECURSE
  "CMakeFiles/fsencr_bench_harness.dir/harness.cc.o"
  "CMakeFiles/fsencr_bench_harness.dir/harness.cc.o.d"
  "libfsencr_bench_harness.a"
  "libfsencr_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
