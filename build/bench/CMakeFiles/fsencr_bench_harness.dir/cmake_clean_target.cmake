file(REMOVE_RECURSE
  "libfsencr_bench_harness.a"
)
