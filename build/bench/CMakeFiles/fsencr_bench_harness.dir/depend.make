# Empty dependencies file for fsencr_bench_harness.
# This may be replaced when dependencies are built.
