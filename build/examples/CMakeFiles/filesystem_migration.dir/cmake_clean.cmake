file(REMOVE_RECURSE
  "CMakeFiles/filesystem_migration.dir/filesystem_migration.cpp.o"
  "CMakeFiles/filesystem_migration.dir/filesystem_migration.cpp.o.d"
  "filesystem_migration"
  "filesystem_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
