# Empty compiler generated dependencies file for filesystem_migration.
# This may be replaced when dependencies are built.
