file(REMOVE_RECURSE
  "CMakeFiles/multiuser_fileserver.dir/multiuser_fileserver.cpp.o"
  "CMakeFiles/multiuser_fileserver.dir/multiuser_fileserver.cpp.o.d"
  "multiuser_fileserver"
  "multiuser_fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_fileserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
