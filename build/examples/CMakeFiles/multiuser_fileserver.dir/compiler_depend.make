# Empty compiler generated dependencies file for multiuser_fileserver.
# This may be replaced when dependencies are built.
