# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("mem")
subdirs("cache")
subdirs("cpu")
subdirs("secmem")
subdirs("fsenc")
subdirs("swenc")
subdirs("os")
subdirs("fs")
subdirs("pmdk")
subdirs("sim")
subdirs("workloads")
