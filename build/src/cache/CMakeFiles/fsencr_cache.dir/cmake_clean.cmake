file(REMOVE_RECURSE
  "CMakeFiles/fsencr_cache.dir/cache.cc.o"
  "CMakeFiles/fsencr_cache.dir/cache.cc.o.d"
  "CMakeFiles/fsencr_cache.dir/hierarchy.cc.o"
  "CMakeFiles/fsencr_cache.dir/hierarchy.cc.o.d"
  "libfsencr_cache.a"
  "libfsencr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
