file(REMOVE_RECURSE
  "libfsencr_cache.a"
)
