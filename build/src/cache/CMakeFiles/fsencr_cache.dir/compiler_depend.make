# Empty compiler generated dependencies file for fsencr_cache.
# This may be replaced when dependencies are built.
