file(REMOVE_RECURSE
  "CMakeFiles/fsencr_common.dir/logging.cc.o"
  "CMakeFiles/fsencr_common.dir/logging.cc.o.d"
  "CMakeFiles/fsencr_common.dir/stats.cc.o"
  "CMakeFiles/fsencr_common.dir/stats.cc.o.d"
  "libfsencr_common.a"
  "libfsencr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
