file(REMOVE_RECURSE
  "libfsencr_common.a"
)
