# Empty compiler generated dependencies file for fsencr_common.
# This may be replaced when dependencies are built.
