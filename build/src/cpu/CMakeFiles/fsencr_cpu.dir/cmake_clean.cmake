file(REMOVE_RECURSE
  "CMakeFiles/fsencr_cpu.dir/mem_trace.cc.o"
  "CMakeFiles/fsencr_cpu.dir/mem_trace.cc.o.d"
  "libfsencr_cpu.a"
  "libfsencr_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
