file(REMOVE_RECURSE
  "libfsencr_cpu.a"
)
