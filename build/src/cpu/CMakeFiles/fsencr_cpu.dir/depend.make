# Empty dependencies file for fsencr_cpu.
# This may be replaced when dependencies are built.
