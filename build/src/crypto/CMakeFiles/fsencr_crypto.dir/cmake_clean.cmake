file(REMOVE_RECURSE
  "CMakeFiles/fsencr_crypto.dir/aes.cc.o"
  "CMakeFiles/fsencr_crypto.dir/aes.cc.o.d"
  "CMakeFiles/fsencr_crypto.dir/ctr_mode.cc.o"
  "CMakeFiles/fsencr_crypto.dir/ctr_mode.cc.o.d"
  "CMakeFiles/fsencr_crypto.dir/sha256.cc.o"
  "CMakeFiles/fsencr_crypto.dir/sha256.cc.o.d"
  "libfsencr_crypto.a"
  "libfsencr_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
