file(REMOVE_RECURSE
  "libfsencr_crypto.a"
)
