# Empty compiler generated dependencies file for fsencr_crypto.
# This may be replaced when dependencies are built.
