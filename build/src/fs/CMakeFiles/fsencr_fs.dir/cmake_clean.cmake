file(REMOVE_RECURSE
  "CMakeFiles/fsencr_fs.dir/nvmfs.cc.o"
  "CMakeFiles/fsencr_fs.dir/nvmfs.cc.o.d"
  "libfsencr_fs.a"
  "libfsencr_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
