file(REMOVE_RECURSE
  "libfsencr_fs.a"
)
