# Empty dependencies file for fsencr_fs.
# This may be replaced when dependencies are built.
