file(REMOVE_RECURSE
  "CMakeFiles/fsencr_fsenc.dir/ott.cc.o"
  "CMakeFiles/fsencr_fsenc.dir/ott.cc.o.d"
  "CMakeFiles/fsencr_fsenc.dir/secure_memory_controller.cc.o"
  "CMakeFiles/fsencr_fsenc.dir/secure_memory_controller.cc.o.d"
  "libfsencr_fsenc.a"
  "libfsencr_fsenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_fsenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
