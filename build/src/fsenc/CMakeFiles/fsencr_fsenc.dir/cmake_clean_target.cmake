file(REMOVE_RECURSE
  "libfsencr_fsenc.a"
)
