# Empty dependencies file for fsencr_fsenc.
# This may be replaced when dependencies are built.
