file(REMOVE_RECURSE
  "CMakeFiles/fsencr_mem.dir/nvm_device.cc.o"
  "CMakeFiles/fsencr_mem.dir/nvm_device.cc.o.d"
  "libfsencr_mem.a"
  "libfsencr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
