file(REMOVE_RECURSE
  "libfsencr_mem.a"
)
