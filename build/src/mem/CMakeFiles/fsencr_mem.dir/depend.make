# Empty dependencies file for fsencr_mem.
# This may be replaced when dependencies are built.
