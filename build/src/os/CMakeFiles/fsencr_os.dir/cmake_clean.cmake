file(REMOVE_RECURSE
  "CMakeFiles/fsencr_os.dir/kernel.cc.o"
  "CMakeFiles/fsencr_os.dir/kernel.cc.o.d"
  "libfsencr_os.a"
  "libfsencr_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
