file(REMOVE_RECURSE
  "libfsencr_os.a"
)
