# Empty compiler generated dependencies file for fsencr_os.
# This may be replaced when dependencies are built.
