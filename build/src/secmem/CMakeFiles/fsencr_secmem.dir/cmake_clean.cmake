file(REMOVE_RECURSE
  "CMakeFiles/fsencr_secmem.dir/merkle_tree.cc.o"
  "CMakeFiles/fsencr_secmem.dir/merkle_tree.cc.o.d"
  "CMakeFiles/fsencr_secmem.dir/metadata_cache.cc.o"
  "CMakeFiles/fsencr_secmem.dir/metadata_cache.cc.o.d"
  "libfsencr_secmem.a"
  "libfsencr_secmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_secmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
