file(REMOVE_RECURSE
  "libfsencr_secmem.a"
)
