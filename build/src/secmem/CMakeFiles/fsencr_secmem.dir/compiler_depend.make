# Empty compiler generated dependencies file for fsencr_secmem.
# This may be replaced when dependencies are built.
