file(REMOVE_RECURSE
  "CMakeFiles/fsencr_sim.dir/system.cc.o"
  "CMakeFiles/fsencr_sim.dir/system.cc.o.d"
  "libfsencr_sim.a"
  "libfsencr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
