file(REMOVE_RECURSE
  "libfsencr_sim.a"
)
