# Empty compiler generated dependencies file for fsencr_sim.
# This may be replaced when dependencies are built.
