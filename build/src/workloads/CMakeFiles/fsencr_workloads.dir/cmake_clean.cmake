file(REMOVE_RECURSE
  "CMakeFiles/fsencr_workloads.dir/btree_kv.cc.o"
  "CMakeFiles/fsencr_workloads.dir/btree_kv.cc.o.d"
  "CMakeFiles/fsencr_workloads.dir/ctree_kv.cc.o"
  "CMakeFiles/fsencr_workloads.dir/ctree_kv.cc.o.d"
  "CMakeFiles/fsencr_workloads.dir/dax_micro.cc.o"
  "CMakeFiles/fsencr_workloads.dir/dax_micro.cc.o.d"
  "CMakeFiles/fsencr_workloads.dir/extra_workloads.cc.o"
  "CMakeFiles/fsencr_workloads.dir/extra_workloads.cc.o.d"
  "CMakeFiles/fsencr_workloads.dir/hashmap_kv.cc.o"
  "CMakeFiles/fsencr_workloads.dir/hashmap_kv.cc.o.d"
  "CMakeFiles/fsencr_workloads.dir/pmemkv_bench.cc.o"
  "CMakeFiles/fsencr_workloads.dir/pmemkv_bench.cc.o.d"
  "CMakeFiles/fsencr_workloads.dir/whisper_bench.cc.o"
  "CMakeFiles/fsencr_workloads.dir/whisper_bench.cc.o.d"
  "libfsencr_workloads.a"
  "libfsencr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
