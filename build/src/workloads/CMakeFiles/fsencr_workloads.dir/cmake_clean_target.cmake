file(REMOVE_RECURSE
  "libfsencr_workloads.a"
)
