# Empty dependencies file for fsencr_workloads.
# This may be replaced when dependencies are built.
