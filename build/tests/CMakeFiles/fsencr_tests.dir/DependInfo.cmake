
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_anubis.cc" "tests/CMakeFiles/fsencr_tests.dir/test_anubis.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_anubis.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/fsencr_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/fsencr_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_crypto.cc" "tests/CMakeFiles/fsencr_tests.dir/test_crypto.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_crypto.cc.o.d"
  "/root/repo/tests/test_extra.cc" "tests/CMakeFiles/fsencr_tests.dir/test_extra.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_extra.cc.o.d"
  "/root/repo/tests/test_fsenc.cc" "tests/CMakeFiles/fsencr_tests.dir/test_fsenc.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_fsenc.cc.o.d"
  "/root/repo/tests/test_kernel_edge.cc" "tests/CMakeFiles/fsencr_tests.dir/test_kernel_edge.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_kernel_edge.cc.o.d"
  "/root/repo/tests/test_lazy_rekey.cc" "tests/CMakeFiles/fsencr_tests.dir/test_lazy_rekey.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_lazy_rekey.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/fsencr_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_migration.cc" "tests/CMakeFiles/fsencr_tests.dir/test_migration.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_migration.cc.o.d"
  "/root/repo/tests/test_os_fs.cc" "tests/CMakeFiles/fsencr_tests.dir/test_os_fs.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_os_fs.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/fsencr_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_secmem.cc" "tests/CMakeFiles/fsencr_tests.dir/test_secmem.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_secmem.cc.o.d"
  "/root/repo/tests/test_security_scenarios.cc" "tests/CMakeFiles/fsencr_tests.dir/test_security_scenarios.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_security_scenarios.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/fsencr_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_swenc.cc" "tests/CMakeFiles/fsencr_tests.dir/test_swenc.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_swenc.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/fsencr_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/fsencr_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/fsencr_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/fsencr_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/fsencr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsencr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fsencr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/fsencr_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fsenc/CMakeFiles/fsencr_fsenc.dir/DependInfo.cmake"
  "/root/repo/build/src/secmem/CMakeFiles/fsencr_secmem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/fsencr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/fsencr_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fsencr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fsencr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsencr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
