# Empty dependencies file for fsencr_tests.
# This may be replaced when dependencies are built.
