file(REMOVE_RECURSE
  "CMakeFiles/fsencr_sim_cli.dir/fsencr_sim.cc.o"
  "CMakeFiles/fsencr_sim_cli.dir/fsencr_sim.cc.o.d"
  "fsencr-sim"
  "fsencr-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsencr_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
