# Empty dependencies file for fsencr_sim_cli.
# This may be replaced when dependencies are built.
