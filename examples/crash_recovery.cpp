/**
 * @file
 * Crash consistency walk-through (Sections II-D and III-H): a
 * persistent log is appended under FsEncr, power fails mid-run, and
 * the reboot path recovers — Merkle root verification, Osiris counter
 * recovery via ECC probing, OTT recall from the encrypted spill
 * region — after which every persisted record is readable and every
 * unpersisted one is gone.
 *
 *   ./build/examples/crash_recovery
 */

#include <cstdio>

#include "sim/system.hh"

using namespace fsencr;

namespace {

constexpr std::uint64_t recordBytes = 64;

Addr
recordAddr(Addr base, std::uint64_t i)
{
    return base + i * recordBytes;
}

} // namespace

int
main()
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    System sys(cfg);
    sys.provisionAdmin("admin-pw");
    sys.bootLogin("admin-pw");
    sys.addUser("logger", 1000, 100, "logger-pw");
    std::uint32_t pid = sys.createProcess(1000);
    sys.runOnCore(0, pid);

    int fd = sys.creat(0, "/pmem/audit.log", 0600, OpenFlags::Encrypted, "logger-pw");
    sys.ftruncate(0, fd, 1 << 20);
    Addr base = sys.mmapFile(0, fd, 1 << 20);

    // Append 1000 records, persisting each one — except the last 3,
    // which are left dirty in the cache when the power fails.
    constexpr std::uint64_t persisted = 1000;
    constexpr std::uint64_t unpersisted = 3;
    for (std::uint64_t i = 0; i < persisted + unpersisted; ++i) {
        std::uint64_t stamp = 0xbeef0000 + i;
        sys.write<std::uint64_t>(0, recordAddr(base, i), stamp);
        if (i < persisted)
            sys.persist(0, recordAddr(base, i), recordBytes);
    }

    std::printf("appended %llu records (%llu persisted), then...\n",
                static_cast<unsigned long long>(
                    persisted + unpersisted),
                static_cast<unsigned long long>(persisted));
    std::printf("*** POWER FAILURE ***\n\n");
    sys.crash();

    std::printf("reboot: regenerating the Merkle tree and probing "
                "counters (Osiris)...\n");
    bool ok = sys.recover();
    std::printf("  metadata integrity + counter recovery: %s\n",
                ok ? "OK" : "FAILED");
    std::printf("  osiris probes issued : %llu\n",
                static_cast<unsigned long long>(
                    sys.mc().statGroup().scalarValue(
                        "osiris.probes")));
    std::printf("  counters recovered   : %llu\n",
                static_cast<unsigned long long>(
                    sys.mc().statGroup().scalarValue(
                        "osiris.recovered")));
    sys.bootLogin("admin-pw");

    // Verify: all persisted records readable, unpersisted ones gone.
    std::uint64_t good = 0, lost = 0;
    for (std::uint64_t i = 0; i < persisted; ++i)
        if (sys.read<std::uint64_t>(0, recordAddr(base, i)) ==
            0xbeef0000 + i)
            ++good;
    for (std::uint64_t i = persisted; i < persisted + unpersisted; ++i)
        if (sys.read<std::uint64_t>(0, recordAddr(base, i)) !=
            0xbeef0000 + i)
            ++lost;

    std::printf("\npersisted records intact : %llu / %llu\n",
                static_cast<unsigned long long>(good),
                static_cast<unsigned long long>(persisted));
    std::printf("unpersisted records lost : %llu / %llu (expected "
                "— they never reached the persistence domain)\n",
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(unpersisted));

    bool success = ok && good == persisted;
    std::printf("\n%s\n", success ? "recovery complete"
                                  : "RECOVERY FAILED");
    return success ? 0 : 1;
}
