/**
 * @file
 * Moving an entire encrypted filesystem to a new machine (Section VI):
 * the donor powers down, its security capsule (memory key, OTT key,
 * Merkle state) leaves through the authorized channel, the NVM DIMM is
 * physically re-seated, the new machine authenticates the module
 * against the transported root, and users carry on — with their
 * passphrases.
 *
 *   ./build/examples/filesystem_migration
 */

#include <cstdio>
#include <cstring>

#include "sim/system.hh"

using namespace fsencr;

int
main()
{
    // --- The old machine. ---
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.seed = 2026;
    System old_machine(cfg);
    old_machine.provisionAdmin("old-admin");
    old_machine.bootLogin("old-admin");
    old_machine.addUser("alice", 1000, 100, "alice-pw");
    std::uint32_t pid = old_machine.createProcess(1000);
    old_machine.runOnCore(0, pid);

    int fd = old_machine.creat(0, "/pmem/research.db", 0600, OpenFlags::Encrypted,
                               "alice-pw");
    const char data[] = "five years of experiments";
    old_machine.fileWrite(0, fd, 0, data, sizeof(data));
    old_machine.closeFd(0, fd);
    std::printf("[old] alice stored her data (encrypted)\n");

    // --- The move. ---
    SimConfig new_cfg = cfg;
    new_cfg.seed = 3031; // different machine: different native keys
    System new_machine(new_cfg);

    std::printf("[mv ] powering down, exporting the capsule, "
                "re-seating the DIMM...\n");
    bool authentic = new_machine.migrateFrom(old_machine);
    std::printf("[new] module authentication: %s\n",
                authentic ? "PASSED (root matches)" : "FAILED");
    if (!authentic)
        return 1;

    // --- Life on the new machine. ---
    new_machine.provisionAdmin("new-admin");
    new_machine.bootLogin("new-admin");
    new_machine.addUser("alice", 1000, 100, "alice-pw");
    std::uint32_t npid = new_machine.createProcess(1000);
    new_machine.runOnCore(0, npid);

    int nfd = new_machine.open(0, "/pmem/research.db", OpenFlags::None,
                               "alice-pw");
    char back[sizeof(data)] = {};
    new_machine.fileRead(0, nfd, 0, back, sizeof(back));
    std::printf("[new] alice (with her passphrase) reads: \"%s\"\n",
                back);

    // A stranger without the passphrase gets nothing.
    new_machine.addUser("carol", 2000, 200, "carol-pw");
    std::uint32_t cpid = new_machine.createProcess(2000);
    new_machine.runOnCore(1, cpid);
    int cfd = new_machine.open(1, "/pmem/research.db", OpenFlags::None,
                               "carol-pw");
    std::printf("[new] carol without the passphrase: %s\n",
                cfd < 0 ? "denied" : "let in!?");

    bool ok = std::strcmp(back, data) == 0 && cfd < 0;
    std::printf("\n%s\n", ok ? "migration complete"
                             : "MIGRATION BROKE SOMETHING");
    return ok ? 0 : 1;
}
