/**
 * @file
 * A multi-user file server scenario demonstrating the threat model of
 * Section III-A and the defences of Section VI:
 *
 *   - per-file keys: users cannot read each other's files even with
 *     DAC permission (the accidental chmod 777);
 *   - an insider who boots a different OS (wrong admin credential)
 *     sees only memory-layer decryption — file bytes stay opaque;
 *   - secure deletion: after unlink, old ciphertext is unintelligible
 *     even to the rightful key holder.
 *
 *   ./build/examples/multiuser_fileserver
 */

#include <cstdio>
#include <cstring>

#include "sim/system.hh"

using namespace fsencr;

int
main()
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    System sys(cfg);
    sys.provisionAdmin("server-admin-pw");
    sys.bootLogin("server-admin-pw");

    sys.addUser("alice", 1000, 100, "alice-pw");
    sys.addUser("bob", 1001, 100, "bob-pw");   // same group as alice
    sys.addUser("eve", 2000, 200, "eve-pw");   // unrelated

    std::uint32_t alice = sys.createProcess(1000);
    std::uint32_t eve = sys.createProcess(2000);

    // --- Alice stores payroll data in an encrypted file. ---
    sys.runOnCore(0, alice);
    int fd = sys.creat(0, "/pmem/payroll.dat", 0600, OpenFlags::Encrypted, "alice-pw");
    const char payroll[] = "alice:250000;bob:120000";
    sys.fileWrite(0, fd, 0, payroll, sizeof(payroll));
    sys.fsync(0, fd); // durable before the lights go out
    sys.closeFd(0, fd);
    std::printf("[alice] wrote payroll data (encrypted, mode 0600)\n");

    // --- Scenario 1: a buggy deploy script runs chmod 777. ---
    sys.chmod(0, "/pmem/payroll.dat", 0777);
    std::printf("[oops ] a misconfigured script ran chmod 777\n");

    sys.runOnCore(1, eve);
    int efd = sys.open(1, "/pmem/payroll.dat", OpenFlags::None, "eve-pw");
    std::printf("[eve  ] open with own passphrase: %s\n",
                efd < 0 ? "DENIED (FEK check failed)" : "GRANTED!?");

    // --- Scenario 2: eve boots her own OS on the stolen box. ---
    sys.crash();        // pull the plug
    if (!sys.recover())
        std::printf("[sys  ] recovery found non-localizable damage\n");
    sys.bootLogin("eves-evil-os"); // wrong admin credential
    std::printf("[eve  ] boots her own OS: controller %s\n",
                sys.mc().fsencLocked()
                    ? "LOCKED FsEncr decryption"
                    : "unlocked (!)");

    // She scans the raw file page: with FsEncr locked, even a
    // mapped read returns memory-layer-only decryption.
    auto ino = sys.fs().lookup("/pmem/payroll.dat");
    Addr page = sys.fs().inode(*ino).blocks[0];
    std::uint8_t leaked[blockSize];
    sys.mc().readLine(setDfBit(page), sys.now(), leaked);
    bool exposed = std::memcmp(leaked, payroll, 16) == 0;
    std::printf("[eve  ] scans the page: payroll %s\n",
                exposed ? "EXPOSED" : "unintelligible");

    // --- Legitimate reboot: alice's data is intact. ---
    sys.bootLogin("server-admin-pw");
    sys.runOnCore(0, alice);
    int afd = sys.open(0, "/pmem/payroll.dat", OpenFlags::None, "alice-pw");
    char back[sizeof(payroll)] = {};
    sys.fileRead(0, afd, 0, back, sizeof(back));
    std::printf("[alice] after honest reboot reads: \"%s\"\n", back);
    sys.closeFd(0, afd);

    // --- Scenario 3: secure deletion. ---
    sys.unlink(0, "/pmem/payroll.dat");
    std::uint8_t after[blockSize];
    sys.device().readLine(page, after);
    std::printf("[admin] unlink + shred: old bytes %s recoverable\n",
                std::memcmp(after, payroll, 16) == 0 ? "STILL"
                                                     : "no longer");

    bool all_good = efd < 0 && !exposed &&
                    std::strcmp(back, payroll) == 0;
    std::printf("\n%s\n", all_good
                              ? "all three defences held"
                              : "A DEFENCE FAILED");
    return all_good ? 0 : 1;
}
