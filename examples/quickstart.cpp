/**
 * @file
 * Quickstart: boot a machine with FsEncr, create an encrypted file on
 * the DAX-mounted NVM filesystem, map it, access it with plain
 * loads/stores, and show that the device holds ciphertext while the
 * application sees plaintext at near-baseline speed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>

#include "sim/system.hh"

using namespace fsencr;

int
main()
{
    // 1. Configure the machine (Table III defaults) with FsEncr.
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    System sys(cfg);

    // 2. Provision & boot: the admin credential unlocks the
    //    controller's file-decryption path.
    sys.provisionAdmin("admin-secret");
    sys.bootLogin("admin-secret");

    // 3. A user and a process.
    sys.addUser("alice", 1000, 100, "alices-passphrase");
    std::uint32_t pid = sys.createProcess(1000);
    sys.runOnCore(0, pid);

    // 4. Create an encrypted file on the DAX filesystem, size it, and
    //    map it straight into the address space — no page cache.
    int fd = sys.creat(0, "/pmem/notes.db", 0600, OpenFlags::Encrypted,
                       "alices-passphrase");
    sys.ftruncate(0, fd, 1 << 20);
    Addr va = sys.mmapFile(0, fd, 1 << 20);

    // 5. Ordinary loads and stores — the DF-bit routes them through
    //    the file-encryption engine transparently.
    const char secret[] = "meet me at the usual place at noon";
    sys.store(0, va, secret, sizeof(secret));
    sys.persist(0, va, sizeof(secret)); // clwb + fence

    char read_back[sizeof(secret)] = {};
    sys.load(0, va, read_back, sizeof(read_back));
    std::printf("application reads : \"%s\"\n", read_back);

    // 6. What does the NVM device actually store? Ciphertext.
    auto ino = sys.fs().lookup("/pmem/notes.db");
    Addr page = sys.fs().inode(*ino).blocks[0];
    std::uint8_t raw[blockSize];
    sys.device().readLine(page, raw);
    std::printf("device stores     : ");
    for (int i = 0; i < 16; ++i)
        std::printf("%02x", raw[i]);
    std::printf("...  (%s plaintext)\n",
                std::memcmp(raw, secret, 16) == 0 ? "IS" : "is NOT");

    // 7. The paper's accounting: how much did encryption cost?
    std::printf("\nsimulated time    : %.2f us\n",
                sys.now() / 1e6);
    std::printf("page faults       : %llu (first touch only)\n",
                static_cast<unsigned long long>(
                    sys.kernel().pageFaults()));
    std::printf("NVM reads/writes  : %llu / %llu\n",
                static_cast<unsigned long long>(sys.device().numReads()),
                static_cast<unsigned long long>(
                    sys.device().numWrites()));
    std::printf("OTT hits          : %llu\n",
                static_cast<unsigned long long>(
                    sys.mc().statGroup().scalarValue("ott.hits")));
    return 0;
}
