/**
 * @file
 * A persistent key-value store on an encrypted DAX file — the
 * motivating application class of the paper's introduction. Runs the
 * same B-tree workload under all four schemes and prints the cost of
 * each protection level.
 *
 *   ./build/examples/secure_kv_store
 */

#include <cstdio>

#include "pmdk/pmem.hh"
#include "workloads/btree_kv.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::workloads;

namespace {

struct RunResult
{
    Tick ticks;
    std::uint64_t reads, writes;
};

RunResult
runStore(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    System sys(cfg);
    standardEnvironment(sys, "kv-owner-pass");

    pmdk::PmemPool pool(sys, 0, "/pmem/store.pool", 64 << 20,
                        /*encrypted=*/true, "kv-owner-pass");
    BTreeKv kv(pool);

    // Load 4000 user records, then serve a lookup-heavy mix.
    std::uint8_t record[256];
    Rng rng(77);
    sys.beginMeasurement();
    for (std::uint64_t k = 0; k < 4000; ++k) {
        rng.fill(record, sizeof(record));
        kv.put(0, k, record, sizeof(record));
    }
    std::uint8_t out[256];
    for (int i = 0; i < 8000; ++i)
        kv.get(i % 2, rng.nextBounded(4000), out, sizeof(out));

    return {sys.measuredTicks(), sys.measuredReads(),
            sys.measuredWrites()};
}

} // namespace

int
main()
{
    std::printf("Persistent B-tree KV store: 4000 inserts + 8000 "
                "lookups on an encrypted DAX file\n\n");
    std::printf("%-26s %12s %10s %10s %10s\n", "scheme", "time(us)",
                "NVM rd", "NVM wr", "vs no-enc");

    double base = 0;
    for (Scheme s : {Scheme::NoEncryption, Scheme::BaselineSecurity,
                     Scheme::FsEncr, Scheme::SoftwareEncryption}) {
        RunResult r = runStore(s);
        if (base == 0)
            base = static_cast<double>(r.ticks);
        std::printf("%-26s %12.1f %10llu %10llu %9.2fx\n",
                    schemeName(s), r.ticks / 1e6,
                    static_cast<unsigned long long>(r.reads),
                    static_cast<unsigned long long>(r.writes),
                    r.ticks / base);
    }

    std::printf("\nFsEncr delivers filesystem encryption at a small "
                "fraction of the software-encryption cost\n");
    return 0;
}
