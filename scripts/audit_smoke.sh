#!/usr/bin/env bash
# Smoke-test the audit ride-along end to end:
#
#  1. --audit-filter off is a true no-op: the run report is
#     byte-identical to a run without the flag (no audit section, no
#     timing drift, same Merkle geometry),
#  2. audit runs are deterministic: same seed, same report bytes, and
#     the report carries a populated audit section plus nonzero
#     mc.audit metrics,
#  3. fsencr-auditq reconstructs a clean run into a versioned
#     fsencr-audit-report with a contiguous seq stream and a matching
#     CSV export, and filtering narrows it,
#  4. fsencr-auditq --crash-at-write recovers exactly the acknowledged
#     prefix (no lost acknowledged records, no forged ones),
#  5. fsencr-crashtest --audit holds the audit invariants across all
#     fault classes and stays deterministic.
#
# Usage: scripts/audit_smoke.sh [build-dir]
# Exit 0 on success; registered as a ctest test.
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
sim="$build_dir/tools/fsencr-sim"
auditq="$build_dir/tools/fsencr-auditq"
crashtest="$build_dir/tools/fsencr-crashtest"
for t in "$sim" "$auditq" "$crashtest"; do
    [ -x "$t" ] || { echo "missing $t (build first)"; exit 1; }
done

python3_bin="$(command -v python3 || true)"
[ -n "$python3_bin" ] || { echo "python3 not found; skipping"; exit 0; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

wl="fillrandom-S"
common=(--scheme fsencr --workload "$wl" --ops 400 --seed 42)

# 1. `--audit-filter off` must not perturb a single byte.
"$sim" "${common[@]}" --report "$tmp/plain.json" > /dev/null
"$sim" "${common[@]}" --audit-filter off \
       --report "$tmp/off.json" > /dev/null
cmp "$tmp/plain.json" "$tmp/off.json" || {
    echo "FAIL: --audit-filter off perturbed the run report"
    exit 1
}
echo "ok: --audit-filter off is byte-identical to no flag"

# 2. Audit runs are deterministic and carry the audit section.
"$sim" "${common[@]}" --audit-filter all \
       --report "$tmp/audit_a.json" --metrics-prom "$tmp/audit.prom" \
       > /dev/null
"$sim" "${common[@]}" --audit-filter all \
       --report "$tmp/audit_b.json" --metrics-prom "$tmp/b.prom" \
       > /dev/null
cmp "$tmp/audit_a.json" "$tmp/audit_b.json" || {
    echo "FAIL: audit run report is not deterministic"
    exit 1
}
"$python3_bin" - "$tmp/audit_a.json" "$tmp/plain.json" <<'EOF'
import json, sys
audit_doc = json.load(open(sys.argv[1]))
plain_doc = json.load(open(sys.argv[2]))
assert "audit" not in plain_doc, "audit-off report grew an audit section"
assert plain_doc["config"].get("audit_filter") is None
sec = audit_doc["audit"]
assert audit_doc["config"]["audit_filter"] == "all"
assert sec["appended"] > 0, sec
assert sec["acked"] == sec["appended"], sec
assert sec["overflow_dropped"] == 0 and sec["crash_dropped"] == 0, sec
assert sec["capacity_records"] > 0, sec
print(f'ok: audit section appended={sec["appended"]} all acked')
EOF
grep -q '^fsencr_mc_audit{op="append"} [1-9]' "$tmp/audit.prom" || {
    echo "FAIL: mc.audit{op=append} missing from Prometheus export"
    exit 1
}
echo "ok: mc.audit metrics exported"

# 3. auditq: clean reconstruction, contiguous stream, CSV round-trip.
"$auditq" "${common[@]}" --report "$tmp/q.json" --csv "$tmp/q.csv" \
    > /dev/null
"$python3_bin" - "$tmp/q.json" "$tmp/q.csv" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "fsencr-audit-report", doc.get("schema")
assert doc["version"] == 1
log = doc["log"]
assert not log["integrity_truncated"], log
assert log["recovered"] == log["acked"] == log["appended"] > 0, log
recs = doc["records"]
assert [r["seq"] for r in recs] == list(range(1, len(recs) + 1))
csv_rows = open(sys.argv[2]).read().splitlines()
assert csv_rows[0] == "seq,tick,addr,gid,fid,op,core,scheme"
assert len(csv_rows) - 1 == len(recs), (len(csv_rows), len(recs))
print(f"ok: auditq reconstructed {len(recs)} records, CSV matches")
EOF

"$auditq" "${common[@]}" --gid 9999 --report "$tmp/qnone.json" \
    > /dev/null
"$python3_bin" - "$tmp/qnone.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["records"] == [], "gid filter did not narrow the query"
assert doc["log"]["recovered"] > 0
print("ok: auditq --gid filter narrows the query")
EOF

# 4. Crash: the recovered log is the acknowledged prefix, exactly.
"$auditq" "${common[@]}" --crash-at-write 600 \
          --report "$tmp/qcrash.json" > /dev/null
"$python3_bin" - "$tmp/qcrash.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["config"]["crashed"] and doc["config"]["recovered"]
log = doc["log"]
assert not log["integrity_truncated"], log
assert log["recovered"] == log["acked"], log
assert log["acked"] + log["crash_dropped"] == log["appended"], log
recs = doc["records"]
assert [r["seq"] for r in recs] == list(range(1, len(recs) + 1))
print(f'ok: crash recovered {log["recovered"]}/{log["appended"]} '
      f'(acked prefix intact)')
EOF

# 5. Crashtest audit invariants across every fault class.
"$crashtest" --seed 7 --crashes 5 --fault all --audit --json \
    > "$tmp/ct_a.json" || {
    echo "FAIL: crashtest --audit reported invariant violations"
    cat "$tmp/ct_a.json"
    exit 1
}
"$crashtest" --seed 7 --crashes 5 --fault all --audit --json \
    > "$tmp/ct_b.json"
cmp "$tmp/ct_a.json" "$tmp/ct_b.json" || {
    echo "FAIL: crashtest --audit report is not deterministic"
    exit 1
}
"$python3_bin" - "$tmp/ct_a.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["config"]["audit"] is True
assert doc["summary"]["failed"] == 0, doc["summary"]
checked = 0
for run in doc["runs"]:
    inv = run["invariants"]
    if "audit_prefix" in inv:
        assert inv["audit_prefix"] and inv["audit_durable"], run
        checked += 1
assert checked, "no run exercised the audit invariants"
print(f"ok: audit invariants held across {checked} crashed runs")
EOF

echo "audit_smoke: all checks passed"
