#!/usr/bin/env sh
# Run the primitive micro-benchmarks (AES backends, pad generation,
# cache/device/OTT/Merkle models) and save machine-readable JSON next
# to the console table, for before/after throughput comparisons.
#
# Usage: scripts/bench_primitives_json.sh [output.json]
#   BUILD_DIR    build tree holding bench/bench_primitives (default: build)
#   BENCH_FILTER --benchmark_filter regex (default: everything)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_primitives.json}"
BIN="${BUILD_DIR}/bench/bench_primitives"

if [ ! -x "${BIN}" ]; then
    echo "error: ${BIN} not built (cmake --build ${BUILD_DIR})" >&2
    exit 1
fi

"${BIN}" \
    --benchmark_filter="${BENCH_FILTER:-.}" \
    --benchmark_out="${OUT}" \
    --benchmark_out_format=json

echo "wrote ${OUT}"
