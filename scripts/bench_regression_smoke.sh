#!/usr/bin/env bash
# Smoke-test the bench regression gate end to end:
#
#  1. run one harness-based bench twice in quick mode; the simulator
#     is deterministic, so fsencr-compare on the two reports must exit
#     0 even at a zero threshold,
#  2. doctor the baseline (scale ticks down 20%) so the rerun looks
#     like a seeded slowdown; fsencr-compare must exit 1,
#  3. same two checks through the fsencr-sim run-report path,
#  4. if a committed quick baseline exists under bench/baselines/quick,
#     gate the fresh report against it (catches real regressions in CI).
#
# Usage: scripts/bench_regression_smoke.sh [build-dir]
# Exit 0 on success; registered as a ctest test.
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
bench="$build_dir/bench/bench_fig12_micro_slowdown"
sim="$build_dir/tools/fsencr-sim"
compare="$build_dir/tools/fsencr-compare"
for bin in "$bench" "$sim" "$compare"; do
    [ -x "$bin" ] || { echo "missing $bin (build first)"; exit 1; }
done

python3_bin="$(command -v python3 || true)"
[ -n "$python3_bin" ] || { echo "python3 not found; skipping"; exit 0; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

expect() { # expect <code> <label> <cmd...>
    local want="$1" label="$2"
    shift 2
    local got=0
    "$@" > "$tmp/last.txt" 2>&1 || got=$?
    if [ "$got" != "$want" ]; then
        echo "FAIL: $label: expected exit $want, got $got"
        cat "$tmp/last.txt"
        exit 1
    fi
    echo "ok: $label (exit $got)"
}

# --- bench-report path -------------------------------------------------
FSENCR_BENCH_REPORT="$tmp/bench1.json" "$bench" --quick \
    > /dev/null 2>&1
FSENCR_BENCH_REPORT="$tmp/bench2.json" "$bench" --quick \
    > /dev/null 2>&1

expect 0 "identical bench rerun gates clean" \
    "$compare" --rel 0 --abs 0 "$tmp/bench1.json" "$tmp/bench2.json"

"$python3_bin" - "$tmp/bench1.json" "$tmp/fast_bench.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for row in doc["rows"]:
    for cell in row["cells"]:
        cell["ticks"] = int(cell["ticks"] * 0.8)
with open(sys.argv[2], "w") as f:
    json.dump(doc, f)
EOF

expect 1 "seeded slowdown vs doctored bench baseline regresses" \
    "$compare" --quiet "$tmp/fast_bench.json" "$tmp/bench2.json"

# --- run-report path ---------------------------------------------------
"$sim" --scheme fsencr --workload fillrandom-S --ops 1000 --keys 1000 \
       --sample-interval 1000000 --report "$tmp/run1.json" > /dev/null
"$sim" --scheme fsencr --workload fillrandom-S --ops 1000 --keys 1000 \
       --sample-interval 1000000 --report "$tmp/run2.json" > /dev/null

expect 0 "identical run-report rerun gates clean" \
    "$compare" --rel 0 --abs 0 "$tmp/run1.json" "$tmp/run2.json"

"$python3_bin" - "$tmp/run1.json" "$tmp/fast_run.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
doc["result"]["ticks"] = int(doc["result"]["ticks"] * 0.8)
doc["attribution"]["total"] = int(doc["attribution"]["total"] * 0.8)
with open(sys.argv[2], "w") as f:
    json.dump(doc, f)
EOF

expect 1 "seeded slowdown vs doctored run baseline regresses" \
    "$compare" --quiet "$tmp/fast_run.json" "$tmp/run2.json"

# Mixing schemas is a structural error, not a silent pass.
expect 2 "run report vs bench report is a structural error" \
    "$compare" --quiet "$tmp/run2.json" "$tmp/bench2.json"

# --- committed baseline ------------------------------------------------
baseline="$src_dir/bench/baselines/quick/REPORT_bench_fig12_micro_slowdown.json"
if [ -s "$baseline" ]; then
    expect 0 "fresh quick report matches committed baseline" \
        "$compare" --quiet "$baseline" "$tmp/bench2.json"
else
    echo "note: no committed baseline at $baseline"
fi

echo "bench regression smoke OK"
