#!/usr/bin/env bash
# Smoke-test the bench_scale fast-forward suite end to end:
#
#  1. run bench_scale --quick; its own exit code already gates the
#     golden cross-check (fast-forward vs exact at matched op counts)
#     and the per-scheme trace-replay determinism check,
#  2. assert the stdout shows a tick-exact line per scale cell and no
#     divergence,
#  3. validate the fsencr-bench-report it writes: both scale cells
#     present, one cell per paper scheme, nonzero ticks everywhere,
#  4. rerun and diff the two reports with fsencr-compare at a zero
#     threshold (the simulated side of the suite is deterministic;
#     host-side throughput lives only in stdout, not the report),
#  5. if a committed quick baseline exists under bench/baselines/quick,
#     gate the fresh report against it.
#
# The throughput phase's speedup ratio is intentionally NOT gated
# here: ctest hosts share cores, so wall-clock ratios are too noisy
# for a pass/fail line. The ">= 20x" target is checked on quiet hosts
# via the bench's own output (see docs/ARCHITECTURE.md).
#
# Usage: scripts/bench_scale_smoke.sh [build-dir]
# Exit 0 on success; registered as a ctest test.
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
bench="$build_dir/bench/bench_scale"
compare="$build_dir/tools/fsencr-compare"
for bin in "$bench" "$compare"; do
    [ -x "$bin" ] || { echo "missing $bin (build first)"; exit 1; }
done

python3_bin="$(command -v python3 || true)"
[ -n "$python3_bin" ] || { echo "python3 not found; skipping"; exit 0; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

FSENCR_BENCH_REPORT="$tmp/scale1.json" "$bench" --quick \
    > "$tmp/stdout.txt" 2>&1 || {
    echo "FAIL: bench_scale --quick exited nonzero"
    cat "$tmp/stdout.txt"
    exit 1
}

for cell in scale-seq scale-mixed; do
    grep -q "$cell: tick-exact" "$tmp/stdout.txt" || {
        echo "FAIL: no tick-exact line for $cell"
        cat "$tmp/stdout.txt"
        exit 1
    }
done
if grep -q "DIVERGENCE" "$tmp/stdout.txt"; then
    echo "FAIL: fast-forward diverged from the exact model"
    cat "$tmp/stdout.txt"
    exit 1
fi
echo "ok: golden cross-check and replay determinism (bench exit 0)"

"$python3_bin" - "$tmp/scale1.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["schema"] == "fsencr-bench-report", doc.get("schema")
assert isinstance(doc["version"], int)

rows = {row["name"]: row for row in doc["rows"]}
assert set(rows) == {"scale-seq", "scale-mixed"}, set(rows)
for name, row in rows.items():
    schemes = {c["scheme"] for c in row["cells"]}
    assert schemes == {"ext4-dax-no-encryption", "baseline-security",
                       "fsencr"}, (name, schemes)
    for cell in row["cells"]:
        assert cell["ticks"] > 0, (name, cell["scheme"])
        assert cell["operations"] > 0, (name, cell["scheme"])

print("bench_scale report OK: %d rows x %d schemes"
      % (len(rows), 3))
EOF

FSENCR_BENCH_REPORT="$tmp/scale2.json" "$bench" --quick \
    > /dev/null 2>&1
"$compare" --quiet --rel 0 --abs 0 "$tmp/scale1.json" \
           "$tmp/scale2.json" > /dev/null || {
    echo "FAIL: bench_scale report not deterministic across reruns"
    exit 1
}
echo "ok: identical rerun gates clean at zero threshold"

baseline="$src_dir/bench/baselines/quick/REPORT_bench_scale.json"
if [ -s "$baseline" ]; then
    "$compare" --quiet "$baseline" "$tmp/scale1.json" > /dev/null || {
        echo "FAIL: regression vs committed baseline $baseline"
        exit 1
    }
    echo "ok: fresh quick report matches committed baseline"
else
    echo "note: no committed baseline at $baseline"
fi

echo "bench_scale smoke OK"
