#!/usr/bin/env bash
# Smoke-check the machine-readable observability pipeline:
#
#  1. run a small workload with --report, --trace-events and
#     --sample-interval,
#  2. validate the run report against schema fsencr-run-report v2,
#  3. check the per-component cycle attribution sums to total ticks,
#     and the per-interval timeseries deltas sum exactly to the
#     cumulative attribution (the sampler's exactness contract),
#  4. check the Chrome trace_event JSON and the metrics CSV /
#     Prometheus dumps are well-formed,
#  5. diff the report against itself with fsencr-compare (must exit 0)
#     and validate the fsencr-compare-report v1 it writes,
#  6. run a seeded fsencr-crashtest sweep (one run per fault class)
#     and validate it against schema fsencr-crashtest-report v1,
#  7. rerun the workload with --mc-banks 4 and validate the banked
#     metrics families: mc.overlap with read/write labels, the
#     per-bank mc.bank_busy occupancy family, and a nonzero
#     overlapTicks stat,
#  8. rerun the workload with --fast-forward: the run report must
#     record the mode, gate clean against the exact report at a zero
#     threshold (the tick-exact contract, end to end through the CLI),
#     and a --trace-out capture taken under fast-forward must replay
#     byte-identically twice through --trace-in,
#  9. rerun the workload with --audit-filter all: the run report must
#     carry a populated audit section, fsencr-compare must flag an
#     audit-enabled vs audit-off pair as a structural diff (exit 2,
#     not a row-match miss), a banked audit run must report a nonzero
#     mc.overlap{op=audit} share, and fsencr-auditq must emit a valid
#     fsencr-audit-report v1,
# 10. validate the persist section: every v2 run report carries one,
#     the config records the active --persist-domain, an eADR run
#     books zero stop-loss persists, and an adr-vs-eadr compare is a
#     structural diff (exit 2), never a silent metric-row match,
# 11. rerun the workload with --profile --mc-banks 4 and validate the
#     v3 profile section: per-class wait + service reconciles
#     tick-exactly with the total latency, the bottleneck table is
#     ranked with consistent shares, the resource rows obey the
#     Little's-law arithmetic, the Amdahl projection matches its own
#     serial fraction, and a profiled-vs-plain compare is a structural
#     diff (exit 2),
# 12. rerun the workload with --mc-shards 4 and validate the shards
#     section: the per-shard busy-tick sums reconcile exactly with
#     the global serial/visible ticks (and the run's total ticks
#     cover the visible shard time), the reported speedup is
#     serial/visible, shard-labeled metrics family totals equal the
#     sum of their labeled rows, an unsharded report carries no
#     shards section, and same seed + same shard count reproduces
#     the sharded report byte for byte.
#
# Usage: scripts/check_report_schema.sh [build-dir]
# Exit 0 on success; registered as a ctest test.
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
sim="$build_dir/tools/fsencr-sim"
compare="$build_dir/tools/fsencr-compare"
[ -x "$sim" ] || { echo "missing $sim (build first)"; exit 1; }
[ -x "$compare" ] || { echo "missing $compare (build first)"; exit 1; }

python3_bin="$(command -v python3 || true)"
[ -n "$python3_bin" ] || { echo "python3 not found; skipping"; exit 0; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --report "$tmp/report.json" --trace-events "$tmp/trace.json" \
       --sample-interval 1000000 --metrics-csv "$tmp/metrics.csv" \
       --metrics-prom "$tmp/metrics.prom" \
       > "$tmp/stdout.txt"

"$python3_bin" - "$tmp/report.json" "$tmp/trace.json" \
               "$tmp/metrics.csv" "$tmp/metrics.prom" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

# Envelope. v2 is additive over v1: every v1 assertion below still
# holds unchanged.
assert doc["schema"] == "fsencr-run-report", doc.get("schema")
assert doc["version"] == 2, doc["version"]
assert doc["mode"] in ("workload", "replay"), doc["mode"]

# Config and result sections.
cfg = doc["config"]
for key in ("scheme", "workload", "seed", "metadata_cache_bytes"):
    assert key in cfg, key
res = doc["result"]
for key in ("operations", "ticks", "nvm_reads", "nvm_writes",
            "ns_per_op"):
    assert key in res, key

# Attribution: components sum to the reported total, which matches
# the measured ticks exactly (the simulator guarantees tick-exact
# attribution; no rounding slack needed).
attr = doc["attribution"]
comp_sum = sum(attr["components"].values())
assert comp_sum == attr["total"], (comp_sum, attr["total"])
assert attr["total"] == res["ticks"], (attr["total"], res["ticks"])

# Latency histograms with percentiles.
lat = doc["latency"]
for h in (lat["read"], lat["write"]):
    for key in ("samples", "mean", "min", "max", "p50", "p95", "p99"):
        assert key in h, key
assert "components" in lat

# The full stat tree rides along.
assert isinstance(doc["stats"], dict)

# v2 timeseries: intervals tile the run contiguously and the
# per-interval deltas of every attribution component sum exactly to
# the cumulative stat tree value (ticks-exact, like the attribution).
ts = doc["timeseries"]
assert ts["interval"] > 0
ivs = ts["intervals"]
assert ts["samples"] == len(ivs) and ivs
for prev, cur in zip(ivs, ivs[1:]):
    assert cur["t0"] == prev["t1"], (prev, cur)
sums = {}
for iv in ivs:
    for name, delta in iv["deltas"].items():
        sums[name] = sums.get(name, 0) + delta
for comp, total in doc["stats"]["attribution"].items():
    key = "system.attribution." + comp
    assert sums.get(key, 0) == total, (key, sums.get(key, 0), total)

# v2 labeled metrics families: totals are exact (labels + __other__).
for name, fam in doc["metrics"].items():
    assert "label" in fam and "total" in fam, name
    assert sum(fam["values"].values()) == fam["total"], name

# Metrics CSV: header plus long-format rows.
with open(sys.argv[3]) as f:
    lines = f.read().splitlines()
assert lines[0] == "t0,t1,metric,delta", lines[0]
assert len(lines) > 1

# Prometheus text exposition: every line is `name value`,
# `name{key="label"} value` or a comment.
with open(sys.argv[4]) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name.startswith("fsencr_"), line
        float(value)

# Chrome trace_event export.
with open(sys.argv[2]) as f:
    tr = json.load(f)
assert isinstance(tr["traceEvents"], list) and tr["traceEvents"]
ev = tr["traceEvents"][0]
for key in ("name", "ph", "pid", "tid", "ts"):
    assert key in ev, key

print("report schema OK: %d events, %d ticks attributed, %d intervals"
      % (len(tr["traceEvents"]), attr["total"], len(ivs)))
EOF

# A report diffed against itself must gate clean and the compare
# report must match its schema.
"$compare" --quiet --report "$tmp/compare.json" \
           "$tmp/report.json" "$tmp/report.json" \
           > "$tmp/compare-stdout.txt"

"$python3_bin" - "$tmp/compare.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["schema"] == "fsencr-compare-report", doc.get("schema")
assert doc["version"] == 1, doc["version"]
assert doc["compared_schema"] == "fsencr-run-report"
for key in ("rel", "abs"):
    assert key in doc["thresholds"], key
summ = doc["summary"]
assert summ["ok"] is True and summ["regressed"] == 0, summ
assert isinstance(doc["comparisons"], list) and doc["comparisons"]
for cmp in doc["comparisons"]:
    for key in ("metric", "baseline", "current", "ratio", "status"):
        assert key in cmp, key
    assert cmp["status"] in ("improved", "unchanged", "regressed",
                             "info"), cmp

print("compare schema OK: %d metrics gated clean"
      % len(doc["comparisons"]))
EOF

# Crash-consistency stress sweep: --fault all cycles through every
# fault class, so 5 runs cover mid-op power loss, torn write, dropped
# persist, and both bit-flip classes. Every run must pass its
# invariants (non-zero exit otherwise).
crashtest="$build_dir/tools/fsencr-crashtest"
[ -x "$crashtest" ] || { echo "missing $crashtest (build first)"; exit 1; }

"$crashtest" --seed 7 --crashes 5 --fault all \
             --report "$tmp/crash.json" > "$tmp/crash-stdout.txt"

"$python3_bin" - "$tmp/crash.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["schema"] == "fsencr-crashtest-report", doc.get("schema")
assert doc["version"] == 1, doc["version"]

cfg = doc["config"]
for key in ("scheme", "seed", "crashes", "fault", "ops", "files"):
    assert key in cfg, key
assert doc["op_phase_writes"] > 0

runs = doc["runs"]
assert len(runs) == cfg["crashes"], (len(runs), cfg["crashes"])
classes = set()
for run in runs:
    classes.add(run["fault_class"])
    for key in ("crash", "injections", "recovery", "invariants"):
        assert key in run, key
    inv = run["invariants"]
    for key in ("recovered", "synced_durable", "version_consistent",
                "isolation", "metadata_consistent"):
        assert inv[key] is True, (run["run"], key)
    assert run["pass"] is True, run["run"]
# One seeded run per fault class.
assert classes == {"midop", "torn", "dropped", "databitflip",
                   "metabitflip"}, classes

summ = doc["summary"]
assert summ["runs"] == len(runs) and summ["failed"] == 0, summ

print("crashtest schema OK: %d runs, classes %s"
      % (summ["runs"], ",".join(sorted(classes))))
EOF

# Banked timing: the same workload with --mc-banks 4 must report the
# overlap and per-bank occupancy metric families, and its config must
# record the banked knobs.
"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --mc-banks 4 --mc-mshrs 8 --report "$tmp/banked.json" \
       --sample-interval 1000000 --metrics-prom "$tmp/banked.prom" \
       > "$tmp/banked-stdout.txt"

"$python3_bin" - "$tmp/banked.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

cfg = doc["config"]
assert cfg["mc_banks"] == 4 and cfg["mc_mshrs"] == 8, cfg

# Attribution stays tick-exact with overlapping chains.
attr = doc["attribution"]
assert sum(attr["components"].values()) == attr["total"]
assert attr["total"] == doc["result"]["ticks"]

# The overlap family: serial ticks hidden per op kind, total == the
# controller's overlapTicks stat, and something actually overlapped.
fams = doc["metrics"]
overlap = fams["mc.overlap"]
assert overlap["label"] == "op", overlap
assert set(overlap["values"]) <= {"read", "write", "__other__"}
stats_overlap = doc["stats"]["mc"]["overlapTicks"]
assert overlap["total"] == stats_overlap > 0, (overlap, stats_overlap)

# The per-bank occupancy family: one label per device bank, busy
# ticks summing to the device's bankBusyTicks stat.
busy = fams["mc.bank_busy"]
assert busy["label"] == "bank", busy
assert busy["total"] == doc["stats"]["nvm"]["bankBusyTicks"]
assert busy["total"] > 0 and len(busy["values"]) > 1, busy

print("banked schema OK: %d overlap ticks over %d banks"
      % (overlap["total"], len(busy["values"])))
EOF

# Fast-forward: same workload and seed as the exact run above, plus a
# controller-trace capture. Tick-exactness is gated at zero threshold
# by fsencr-compare, not just eyeballed in python.
"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --fast-forward --trace-out "$tmp/ff.trace" \
       --report "$tmp/ff.json" --sample-interval 1000000 \
       > "$tmp/ff-stdout.txt"

"$python3_bin" - "$tmp/report.json" "$tmp/ff.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    exact = json.load(f)
with open(sys.argv[2]) as f:
    ff = json.load(f)

assert exact["config"]["fast_forward"] is False
assert ff["config"]["fast_forward"] is True

# Zero divergence in every measured quantity.
for key in ("operations", "ticks", "nvm_reads", "nvm_writes"):
    assert exact["result"][key] == ff["result"][key], \
        (key, exact["result"][key], ff["result"][key])
for comp, ticks in exact["attribution"]["components"].items():
    assert ff["attribution"]["components"][comp] == ticks, comp

print("fast-forward schema OK: tick-exact at %d ticks"
      % ff["result"]["ticks"])
EOF

"$compare" --quiet --rel 0 --abs 0 "$tmp/report.json" "$tmp/ff.json" \
    > /dev/null || {
    echo "FAIL: fast-forward run diverged from the exact model"
    exit 1
}

# Replay the fast-forward capture twice: replay mode must be recorded
# and the two reports must gate clean at zero threshold.
[ -s "$tmp/ff.trace" ] || { echo "FAIL: --trace-out wrote nothing"; exit 1; }
"$sim" --scheme fsencr --trace-in "$tmp/ff.trace" \
       --report "$tmp/replay1.json" > /dev/null
"$sim" --scheme fsencr --trace-in "$tmp/ff.trace" \
       --report "$tmp/replay2.json" > /dev/null

"$python3_bin" - "$tmp/replay1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["mode"] == "replay", doc["mode"]
assert doc["result"]["ticks"] > 0
print("replay schema OK: %d ticks" % doc["result"]["ticks"])
EOF

"$compare" --quiet --rel 0 --abs 0 "$tmp/replay1.json" \
           "$tmp/replay2.json" > /dev/null || {
    echo "FAIL: replay of the fast-forward capture not deterministic"
    exit 1
}

# Audit ride-along: report section, structural compare, banked
# overlap share, and the fsencr-auditq export schema.
auditq="$build_dir/tools/fsencr-auditq"
[ -x "$auditq" ] || { echo "missing $auditq (build first)"; exit 1; }

"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --audit-filter all --mc-banks 4 --mc-mshrs 8 \
       --report "$tmp/audit.json" --sample-interval 1000000 \
       --metrics-prom "$tmp/audit.prom" > "$tmp/audit-stdout.txt"

"$python3_bin" - "$tmp/audit.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["config"]["audit_filter"] == "all"

sec = doc["audit"]
for key in ("filter", "appended", "acked", "overflow_dropped",
            "crash_dropped", "capacity_records"):
    assert key in sec, key
assert sec["appended"] > 0 and sec["acked"] == sec["appended"], sec

# Audit appends flow through the metrics registry...
fams = doc["metrics"]
audit_fam = fams["mc.audit"]
assert audit_fam["label"] == "op", audit_fam
assert audit_fam["values"]["append"] == sec["appended"], audit_fam
gids = fams["audit.append"]
assert gids["label"] == "gid" and gids["total"] == sec["appended"]

# ...and the flush chains overlap metadata work at --mc-banks 4.
overlap = fams["mc.overlap"]
assert overlap["values"].get("audit", 0) > 0, overlap

# Attribution stays tick-exact with the ride-along enabled.
attr = doc["attribution"]
assert sum(attr["components"].values()) == attr["total"]
assert attr["total"] == doc["result"]["ticks"]

print("audit schema OK: %d records, %d audit overlap ticks"
      % (sec["appended"], overlap["values"]["audit"]))
EOF

# Audit-enabled vs audit-off must be a structural diff (exit 2), not
# a row-match miss buried in the metric comparisons.
set +e
"$compare" --quiet "$tmp/report.json" "$tmp/audit.json" \
    > /dev/null 2> "$tmp/audit-compare.txt"
compare_rc=$?
set -e
[ "$compare_rc" -eq 2 ] || {
    echo "FAIL: audit/non-audit compare exited $compare_rc, want 2"
    cat "$tmp/audit-compare.txt"
    exit 1
}

# The query tool's export is a versioned schema of its own.
"$auditq" --scheme fsencr --workload fillrandom-S --ops 400 --seed 42 \
          --report "$tmp/auditq.json" --csv "$tmp/auditq.csv" \
          > /dev/null

"$python3_bin" - "$tmp/auditq.json" "$tmp/auditq.csv" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["schema"] == "fsencr-audit-report", doc.get("schema")
assert doc["version"] == 1, doc["version"]
for key in ("config", "log", "query", "summary", "records"):
    assert key in doc, key
log = doc["log"]
for key in ("appended", "acked", "recovered", "integrity_truncated",
            "lines_scanned", "capacity_records", "overflow_dropped",
            "crash_dropped"):
    assert key in log, key
assert not log["integrity_truncated"], log
recs = doc["records"]
assert recs and [r["seq"] for r in recs] == list(range(1, len(recs) + 1))
for key in ("seq", "tick", "addr", "gid", "fid", "op", "core",
            "scheme"):
    assert key in recs[0], key
summ = doc["summary"]
assert summ["reads"] + summ["writes"] + summ["persists"] == len(recs)

with open(sys.argv[2]) as f:
    rows = f.read().splitlines()
assert rows[0] == "seq,tick,addr,gid,fid,op,core,scheme", rows[0]
assert len(rows) - 1 == len(recs), (len(rows), len(recs))

print("auditq schema OK: %d records exported" % len(recs))
EOF

# Persistence domains: the default report already carries the persist
# section with the adr domain; an eADR rerun must record the domain in
# its config, zero the stop-loss persists and count the clwb/fence
# stream, and the pair must refuse to gate against each other.
"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --persist-domain eadr --report "$tmp/eadr.json" \
       --sample-interval 1000000 > "$tmp/eadr-stdout.txt"

"$python3_bin" - "$tmp/report.json" "$tmp/eadr.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    adr = json.load(f)
with open(sys.argv[2]) as f:
    eadr = json.load(f)

assert adr["config"]["persist_domain"] == "adr", adr["config"]
assert eadr["config"]["persist_domain"] == "eadr", eadr["config"]

for doc in (adr, eadr):
    sec = doc["persist"]
    for key in ("domain", "stop_loss_persists", "clwbs", "fences",
                "backup_flush_lines", "backup_flush_dropped"):
        assert key in sec, key

assert adr["persist"]["domain"] == "adr"
assert adr["persist"]["stop_loss_persists"] > 0, adr["persist"]
# No crash in this run: the backup flush never fired.
assert adr["persist"]["backup_flush_lines"] == 0, adr["persist"]

sec = eadr["persist"]
assert sec["domain"] == "eadr"
assert sec["stop_loss_persists"] == 0, sec
assert sec["clwbs"] == adr["persist"]["clwbs"] > 0, \
    (sec, adr["persist"])
assert sec["fences"] == adr["persist"]["fences"] > 0, \
    (sec, adr["persist"])
assert eadr["result"]["ticks"] < adr["result"]["ticks"], \
    (eadr["result"]["ticks"], adr["result"]["ticks"])

print("persist schema OK: %d stop-loss persists elided, %d ticks saved"
      % (adr["persist"]["stop_loss_persists"],
         adr["result"]["ticks"] - eadr["result"]["ticks"]))
EOF

# Cross-domain comparisons are apples to oranges by construction.
set +e
"$compare" --quiet "$tmp/report.json" "$tmp/eadr.json" \
    > /dev/null 2> "$tmp/persist-compare.txt"
compare_rc=$?
set -e
[ "$compare_rc" -eq 2 ] || {
    echo "FAIL: adr/eadr compare exited $compare_rc, want 2"
    cat "$tmp/persist-compare.txt"
    exit 1
}

# Contention profiler: the v3 profile section must reconcile
# tick-exactly and carry a consistent ranking, resource rows and
# Amdahl projection.
"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --profile --mc-banks 4 --report "$tmp/profile.json" \
       > "$tmp/profile-stdout.txt"

"$python3_bin" - "$tmp/profile.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["version"] == 3, doc["version"]
assert doc["config"]["profile"] is True, doc["config"]
p = doc["profile"]

for key in ("span_ticks", "requests", "total_latency",
            "identity_violations", "classes", "blockers",
            "bottlenecks", "resources", "amdahl"):
    assert key in p, key
assert p["identity_violations"] == 0, p["identity_violations"]
assert p["requests"] > 0 and p["span_ticks"] > 0

kinds = ("wait_bank", "wait_mshr", "wait_merkle", "wait_wpq")
booked = 0
for name in ("Data", "MECB", "FECB", "AuditLog"):
    cls = p["classes"][name]
    for key in ("service", "wait_total") + kinds:
        assert key in cls, (name, key)
    assert cls["wait_total"] == sum(cls[k] for k in kinds), cls
    for hkey in ("samples", "p50", "p95", "p99"):
        assert hkey in cls["wait"], (name, hkey)
    booked += cls["service"] + cls["wait_total"]
assert booked == p["total_latency"], (booked, p["total_latency"])

assert sum(p["blockers"].values()) == p["requests"], p["blockers"]

ranked = p["bottlenecks"]
assert len(ranked) == 4, ranked
waits = [b["wait_ticks"] for b in ranked]
assert waits == sorted(waits, reverse=True), waits
for b in ranked:
    want = b["wait_ticks"] / p["total_latency"] if p["total_latency"] \
        else 0.0
    # Doubles are serialized with ~6 significant digits.
    assert abs(b["share"] - want) <= max(1e-9, abs(want) * 1e-5), b

span = p["span_ticks"]
for name, row in p["resources"].items():
    for key in ("arrivals", "occupancy_ticks", "stall_ticks",
                "capacity", "avg_queue_depth", "avg_residence_ticks",
                "utilization"):
        assert key in row, (name, key)
    want_l = row["occupancy_ticks"] / span
    assert abs(row["avg_queue_depth"] - want_l) <= \
        max(1e-9, want_l * 1e-5), (name, row)
    want_u = row["occupancy_ticks"] / (span * row["capacity"])
    assert abs(row["utilization"] - want_u) <= \
        max(1e-9, want_u * 1e-5), (name, row)
assert p["resources"]["nvm_banks"]["arrivals"] > 0

amdahl = p["amdahl"]
s = amdahl["serial_fraction"]
assert 0.0 <= s <= 1.0, s
for shards in ("2", "4", "8", "16"):
    n = int(shards)
    want = 1.0 / (s + (1.0 - s) / n)
    assert abs(amdahl["speedup"][shards] - want) <= want * 1e-5, \
        (shards, amdahl)

print("profile schema OK: %d requests reconciled, top blocker %s"
      % (p["requests"], ranked[0]["resource"]))
EOF

# Profiled vs plain reports are apples to oranges by construction.
set +e
"$compare" --quiet "$tmp/report.json" "$tmp/profile.json" \
    > /dev/null 2> "$tmp/profile-compare.txt"
profile_rc=$?
set -e
[ "$profile_rc" -eq 2 ] || {
    echo "FAIL: profiled/plain compare exited $profile_rc, want 2"
    cat "$tmp/profile-compare.txt"
    exit 1
}
echo "profile compare gate OK (structural diff detected)"

# ---- 12. sharded datapath: shards section + shard-labeled metrics --
"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --mc-shards 4 --mc-banks 4 --profile \
       --sample-interval 100000000 \
       --report "$tmp/shards.json" > /dev/null
"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --mc-shards 4 --mc-banks 4 --profile \
       --sample-interval 100000000 \
       --report "$tmp/shards2.json" > /dev/null
cmp "$tmp/shards.json" "$tmp/shards2.json" \
    || { echo "FAIL: sharded report is not deterministic"; exit 1; }

"$python3_bin" - "$tmp/shards.json" "$tmp/report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
plain = json.load(open(sys.argv[2]))

assert "shards" not in plain, "unsharded report grew a shards section"

s = r["shards"]
assert s["count"] == 4, s
busy = [row["busy_ticks"] for row in s["per_shard"]]
assert len(busy) == 4, busy
assert [row["shard"] for row in s["per_shard"]] == [0, 1, 2, 3]

# Tick reconciliation: serial is the exact per-shard sum, visible is
# bounded by the busiest shard below and the serial sum above, and
# the run's total ticks cover the visible shard time.
assert s["serial_ticks"] == sum(busy), (s["serial_ticks"], busy)
assert max(busy) <= s["visible_ticks"] <= s["serial_ticks"], s
assert r["result"]["ticks"] >= s["visible_ticks"], \
    (r["result"]["ticks"], s["visible_ticks"])

want = s["serial_ticks"] / s["visible_ticks"]
assert abs(s["speedup"] - want) <= want * 1e-5, (s["speedup"], want)
assert abs(s["efficiency"] - want / 4) <= want * 1e-5, s
assert 1.0 <= s["projected_speedup"] <= 4.0, s

# Shard-labeled families: the labeled rows must reconcile with the
# family total (no silent drops while the cardinality bound holds).
labeled = 0
for name, fam in r["metrics"].items():
    values = fam["values"]
    tagged = [k for k in values if "@s" in k]
    if not tagged:
        continue
    labeled += 1
    if fam["evictions"] == 0:
        assert sum(values.values()) == fam["total"], (name, fam)
    shards_seen = {k.rsplit("@s", 1)[1] for k in tagged}
    assert shards_seen <= {"0", "1", "2", "3"}, (name, shards_seen)
assert labeled > 0, "no shard-labeled metrics family found"

print("shards schema OK: serial=%d visible=%d speedup=%.2f "
      "(%d labeled families)"
      % (s["serial_ticks"], s["visible_ticks"], s["speedup"], labeled))
EOF
