#!/usr/bin/env bash
# Smoke-check the machine-readable observability pipeline:
#
#  1. run a small workload with --report and --trace-events,
#  2. validate the run report against schema fsencr-run-report v1,
#  3. check the per-component cycle attribution sums to total ticks,
#  4. check the Chrome trace_event JSON is well-formed.
#
# Usage: scripts/check_report_schema.sh [build-dir]
# Exit 0 on success; registered as a ctest test.
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
sim="$build_dir/tools/fsencr-sim"
[ -x "$sim" ] || { echo "missing $sim (build first)"; exit 1; }

python3_bin="$(command -v python3 || true)"
[ -n "$python3_bin" ] || { echo "python3 not found; skipping"; exit 0; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$sim" --scheme fsencr --workload fillrandom-S --ops 2000 --keys 2000 \
       --report "$tmp/report.json" --trace-events "$tmp/trace.json" \
       > "$tmp/stdout.txt"

"$python3_bin" - "$tmp/report.json" "$tmp/trace.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

# Envelope.
assert doc["schema"] == "fsencr-run-report", doc.get("schema")
assert doc["version"] == 1, doc["version"]
assert doc["mode"] in ("workload", "replay"), doc["mode"]

# Config and result sections.
cfg = doc["config"]
for key in ("scheme", "workload", "seed", "metadata_cache_bytes"):
    assert key in cfg, key
res = doc["result"]
for key in ("operations", "ticks", "nvm_reads", "nvm_writes",
            "ns_per_op"):
    assert key in res, key

# Attribution: components sum to the reported total, which matches
# the measured ticks exactly (the simulator guarantees tick-exact
# attribution; no rounding slack needed).
attr = doc["attribution"]
comp_sum = sum(attr["components"].values())
assert comp_sum == attr["total"], (comp_sum, attr["total"])
assert attr["total"] == res["ticks"], (attr["total"], res["ticks"])

# Latency histograms with percentiles.
lat = doc["latency"]
for h in (lat["read"], lat["write"]):
    for key in ("samples", "mean", "min", "max", "p50", "p95", "p99"):
        assert key in h, key
assert "components" in lat

# The full stat tree rides along.
assert isinstance(doc["stats"], dict)

# Chrome trace_event export.
with open(sys.argv[2]) as f:
    tr = json.load(f)
assert isinstance(tr["traceEvents"], list) and tr["traceEvents"]
ev = tr["traceEvents"][0]
for key in ("name", "ph", "pid", "tid", "ts"):
    assert key in ev, key

print("report schema OK: %d events, %d ticks attributed"
      % (len(tr["traceEvents"]), attr["total"]))
EOF
