#!/usr/bin/env bash
# Build with AddressSanitizer + UndefinedBehaviorSanitizer
# (FSENCR_SANITIZE=ON) and run the seeded crash-consistency stress
# harness under it. Fault injection exercises the rarely-taken
# recovery and quarantine paths, which is exactly where latent
# lifetime and aliasing bugs hide — so the sweep runs one seeded
# crash per fault class, plus the fault-focused unit tests.
#
# Usage: scripts/crashtest_asan.sh [build-dir]
#   build-dir defaults to build-asan next to the source tree.
# Exit 0 iff the sanitized build is clean and every run passes.
set -eu

src_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$src_dir/build-asan}"

cmake -B "$build_dir" -S "$src_dir" -DFSENCR_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# One seeded crash per fault class, across both schemes that reach
# the secure-memory recovery path.
for scheme in fsencr baseline; do
    "$build_dir/tools/fsencr-crashtest" \
        --scheme "$scheme" --seed 7 --crashes 5 --fault all
done

# Fault-injection unit tests under the same sanitizers.
"$build_dir/tests/fsencr_tests" --gtest_filter='Fault*'

echo "crashtest_asan: all sanitized runs passed"
