#!/usr/bin/env bash
# Seeded crash-consistency smoke, registered as a ctest test:
#
#  1. one seeded run per fault class (the tool exits non-zero if any
#     recovery invariant fails),
#  2. determinism: the same seed must reproduce the same JSON report
#     byte for byte,
#  3. the report passes the schema check (full validation lives in
#     check_report_schema.sh; this re-asserts the envelope so the
#     test stands alone).
#
# Usage: scripts/crashtest_smoke.sh [build-dir]
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
crashtest="$build_dir/tools/fsencr-crashtest"
[ -x "$crashtest" ] || { echo "missing $crashtest (build first)"; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# One run per class by name, so a failure prints which class broke.
for fault in midop torn dropped databitflip metabitflip; do
    "$crashtest" --seed 11 --crashes 1 --fault "$fault" \
                 > "$tmp/$fault.txt" \
        || { echo "fault class $fault failed:"; cat "$tmp/$fault.txt";
             exit 1; }
done

# Determinism: identical seed, identical report bytes.
"$crashtest" --seed 7 --crashes 5 --fault all --json > "$tmp/a.json"
"$crashtest" --seed 7 --crashes 5 --fault all --json > "$tmp/b.json"
cmp "$tmp/a.json" "$tmp/b.json" \
    || { echo "crashtest report is not deterministic"; exit 1; }

python3_bin="$(command -v python3 || true)"
if [ -n "$python3_bin" ]; then
    "$python3_bin" - "$tmp/a.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "fsencr-crashtest-report", doc.get("schema")
assert doc["version"] == 1
assert doc["summary"]["failed"] == 0, doc["summary"]
EOF
fi

echo "crashtest smoke OK: 5 fault classes, deterministic report"
