#!/usr/bin/env bash
# Smoke-test the banked timing model end to end:
#
#  1. run the Figure 14 DAX-read bench with --mc-banks 4: every FsEncr
#     cell must report mc_overlap_ticks > 0 (metadata chains actually
#     overlapped) and every no-encryption cell 0 (nothing to overlap),
#  2. rerun with a different --jobs count: the banked model is
#     deterministic, so the bench report must be byte-identical,
#  3. rerun without banked flags and diff against a --mc-banks 1 run:
#     the explicit single-bank model is the default model, byte for
#     byte.
#
# Usage: scripts/mc_overlap_smoke.sh [build-dir]
# Exit 0 on success; registered as a ctest test.
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
bench="$build_dir/bench/bench_fig14_micro_reads"
[ -x "$bench" ] || { echo "missing $bench (build first)"; exit 1; }

python3_bin="$(command -v python3 || true)"
[ -n "$python3_bin" ] || { echo "python3 not found; skipping"; exit 0; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

FSENCR_BENCH_REPORT="$tmp/banked_j2.json" \
    "$bench" --quick --mc-banks 4 --jobs 2 > /dev/null 2>&1
FSENCR_BENCH_REPORT="$tmp/banked_j1.json" \
    "$bench" --quick --mc-banks 4 --jobs 1 > /dev/null 2>&1
FSENCR_BENCH_REPORT="$tmp/default.json" \
    "$bench" --quick > /dev/null 2>&1
FSENCR_BENCH_REPORT="$tmp/banks1.json" \
    "$bench" --quick --mc-banks 1 > /dev/null 2>&1

"$python3_bin" - "$tmp/banked_j2.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "fsencr-bench-report", doc["schema"]

checked = 0
for row in doc["rows"]:
    for cell in row["cells"]:
        overlap = cell["mc_overlap_ticks"]
        if cell["scheme"] == "fsencr":
            assert overlap > 0, \
                f'{row["name"]}/fsencr: expected overlap, got 0'
        elif cell["scheme"] == "none":
            assert overlap == 0, \
                f'{row["name"]}/none: unexpected overlap {overlap}'
        checked += 1
assert checked, "empty bench report"
print(f"ok: overlap reported across {checked} banked cells")
EOF

cmp "$tmp/banked_j2.json" "$tmp/banked_j1.json" || {
    echo "FAIL: banked report differs across --jobs counts"
    exit 1
}
echo "ok: banked report byte-identical at --jobs 1 and --jobs 2"

cmp "$tmp/default.json" "$tmp/banks1.json" || {
    echo "FAIL: --mc-banks 1 is not the default model"
    exit 1
}
echo "ok: --mc-banks 1 report byte-identical to the default"

echo "mc_overlap_smoke: all checks passed"
