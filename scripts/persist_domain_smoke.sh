#!/usr/bin/env bash
# Persistence-domain smoke, registered as a ctest test:
#
#  1. --persist-domain adr is the legacy model bit for bit: a run
#     report produced with the flag must be byte-identical to one
#     produced without it,
#  2. the crashtest invariant matrix holds under both domains: every
#     ADR fault class with --persist-domain adr, and the six-class
#     eADR matrix (including partialflush) with --audit riding along,
#  3. eADR crashtest reports are deterministic: the same seed must
#     reproduce the same JSON byte for byte,
#  4. partialflush without eADR is a usage error (exit 2), not a
#     silently ignored run,
#  5. the eADR timing effect exists and points the right way: with
#     stop-loss persists gone and clwb/fence near-free, the same
#     seeded workload finishes in strictly fewer ticks.
#
# Usage: scripts/persist_domain_smoke.sh [build-dir]
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
sim="$build_dir/tools/fsencr-sim"
crashtest="$build_dir/tools/fsencr-crashtest"
[ -x "$sim" ] || { echo "missing $sim (build first)"; exit 1; }
[ -x "$crashtest" ] || { echo "missing $crashtest (build first)"; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 1. ADR identity: the flag spelled out changes nothing, not a byte.
"$sim" --scheme fsencr --workload fillrandom-S --ops 1000 --keys 1000 \
       --report "$tmp/legacy.json" > /dev/null
"$sim" --scheme fsencr --workload fillrandom-S --ops 1000 --keys 1000 \
       --persist-domain adr --report "$tmp/adr.json" > /dev/null
cmp "$tmp/legacy.json" "$tmp/adr.json" \
    || { echo "--persist-domain adr diverged from the legacy model"; exit 1; }

# 2a. ADR matrix: one seeded run per fault class.
for fault in midop torn dropped databitflip metabitflip; do
    "$crashtest" --seed 11 --crashes 1 --fault "$fault" \
                 --persist-domain adr > "$tmp/adr-$fault.txt" \
        || { echo "adr fault class $fault failed:";
             cat "$tmp/adr-$fault.txt"; exit 1; }
done

# 2b. eADR matrix: all six classes (partialflush included), audit
#     ride-along on, one seeded run per class.
for fault in midop torn dropped databitflip metabitflip partialflush; do
    "$crashtest" --seed 11 --crashes 1 --fault "$fault" \
                 --persist-domain eadr --audit > "$tmp/eadr-$fault.txt" \
        || { echo "eadr fault class $fault failed:";
             cat "$tmp/eadr-$fault.txt"; exit 1; }
done

# 3. Determinism: identical seed, identical eADR report bytes.
"$crashtest" --seed 7 --crashes 6 --fault all --persist-domain eadr \
             --audit --json > "$tmp/a.json"
"$crashtest" --seed 7 --crashes 6 --fault all --persist-domain eadr \
             --audit --json > "$tmp/b.json"
cmp "$tmp/a.json" "$tmp/b.json" \
    || { echo "eadr crashtest report is not deterministic"; exit 1; }

# 4. partialflush needs the eADR backup flush to exist.
set +e
"$crashtest" --seed 11 --crashes 1 --fault partialflush \
             > /dev/null 2> "$tmp/usage.txt"
rc=$?
set -e
[ "$rc" -eq 2 ] || {
    echo "adr + partialflush exited $rc, want usage error 2"
    cat "$tmp/usage.txt"
    exit 1
}

python3_bin="$(command -v python3 || true)"
if [ -n "$python3_bin" ]; then
    # 5. The eADR run is strictly faster and books zero stop-loss
    #    persists; the six-class matrix really ran all six classes.
    "$sim" --scheme fsencr --workload fillrandom-S --ops 1000 \
           --keys 1000 --persist-domain eadr \
           --report "$tmp/eadr.json" > /dev/null
    "$python3_bin" - "$tmp/adr.json" "$tmp/eadr.json" "$tmp/a.json" <<'EOF'
import json, sys
adr = json.load(open(sys.argv[1]))
eadr = json.load(open(sys.argv[2]))
crash = json.load(open(sys.argv[3]))
assert adr["persist"]["domain"] == "adr", adr["persist"]
assert eadr["persist"]["domain"] == "eadr", eadr["persist"]
assert adr["persist"]["stop_loss_persists"] > 0, adr["persist"]
assert eadr["persist"]["stop_loss_persists"] == 0, eadr["persist"]
assert eadr["result"]["ticks"] < adr["result"]["ticks"], \
    (eadr["result"]["ticks"], adr["result"]["ticks"])
classes = {run["fault_class"] for run in crash["runs"]}
assert classes == {"midop", "torn", "dropped", "databitflip",
                   "metabitflip", "partialflush"}, classes
assert crash["summary"]["failed"] == 0, crash["summary"]
EOF
fi

echo "persist-domain smoke OK: adr bit-identical, 11 matrix runs pass"
