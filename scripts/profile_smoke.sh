#!/usr/bin/env bash
# Smoke-test the contention profiler end to end:
#
#  1. --profile is observation only: the run report of an unprofiled
#     run is byte-identical whether or not the binary carries the
#     profiler (and a --profile run reports the same ticks and NVM
#     traffic),
#  2. profiled runs are deterministic (same seed, same report bytes)
#     and the v3 profile section reconciles tick-exactly: per-class
#     wait + service sums equal the total end-to-end latency, with
#     zero identity violations,
#  3. with --mc-banks 4 and the audit ride-along on, the AuditLog
#     class shows nonzero wait-for-bank ticks (the drain chain queues
#     behind busy banks),
#  4. fsencr-profile reproduces the report's bottleneck ranking and
#     emits a non-empty flamegraph folded-stack file from the trace
#     spans.
#
# Usage: scripts/profile_smoke.sh [build-dir]
# Exit 0 on success; registered as a ctest test.
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
sim="$build_dir/tools/fsencr-sim"
profiletool="$build_dir/tools/fsencr-profile"
for t in "$sim" "$profiletool"; do
    [ -x "$t" ] || { echo "missing $t (build first)"; exit 1; }
done

python3_bin="$(command -v python3 || true)"
[ -n "$python3_bin" ] || { echo "python3 not found; skipping"; exit 0; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

wl="fillrandom-S"
common=(--scheme fsencr --workload "$wl" --ops 400 --seed 42
        --mc-banks 4)

# 1. Profile off must not perturb a single byte, and profile on must
#    not perturb the modeled time or traffic.
"$sim" "${common[@]}" --report "$tmp/plain_a.json" > /dev/null
"$sim" "${common[@]}" --report "$tmp/plain_b.json" > /dev/null
cmp "$tmp/plain_a.json" "$tmp/plain_b.json" || {
    echo "FAIL: unprofiled run report is not deterministic"
    exit 1
}
"$sim" "${common[@]}" --profile --report "$tmp/prof_a.json" \
       > /dev/null
"$python3_bin" - "$tmp/plain_a.json" "$tmp/prof_a.json" <<'EOF'
import json, sys
plain = json.load(open(sys.argv[1]))
prof = json.load(open(sys.argv[2]))
assert plain["version"] == 2 and "profile" not in plain
assert prof["version"] == 3 and prof["config"]["profile"] is True
for key in ("ticks", "nvm_reads", "nvm_writes", "operations"):
    assert plain["result"][key] == prof["result"][key], key
stripped = dict(prof)
stripped.pop("profile")
stripped["version"] = 2
stripped["config"] = {k: v for k, v in prof["config"].items()
                      if k != "profile"}
assert stripped == plain, "profiled report drifted beyond its section"
print("ok: --profile is observation only (ticks and bytes identical)")
EOF

# 2. Deterministic v3 section that reconciles tick-exactly.
"$sim" "${common[@]}" --profile --report "$tmp/prof_b.json" \
       > /dev/null
cmp "$tmp/prof_a.json" "$tmp/prof_b.json" || {
    echo "FAIL: profiled run report is not deterministic"
    exit 1
}
"$python3_bin" - "$tmp/prof_a.json" <<'EOF'
import json, sys
p = json.load(open(sys.argv[1]))["profile"]
assert p["identity_violations"] == 0, p
total = sum(c["service"] + c["wait_total"]
            for c in p["classes"].values())
assert total == p["total_latency"], (total, p["total_latency"])
assert p["requests"] > 0
ranked = [b["wait_ticks"] for b in p["bottlenecks"]]
assert ranked == sorted(ranked, reverse=True), ranked
assert sum(p["blockers"].values()) == p["requests"]
print(f'ok: profile reconciles tick-exactly over {p["requests"]} '
      f'requests')
EOF

# 3. Banked audit drains must show wait-for-bank ticks.
"$sim" --scheme fsencr --workload dax-2 --seed 42 --mc-banks 4 \
       --profile --audit-filter all --report "$tmp/audit.json" \
       > /dev/null
"$python3_bin" - "$tmp/audit.json" <<'EOF'
import json, sys
p = json.load(open(sys.argv[1]))["profile"]
audit = p["classes"]["AuditLog"]
assert audit["wait_bank"] > 0, audit
assert p["resources"]["audit_wcb"]["arrivals"] > 0, p["resources"]
print(f'ok: AuditLog wait_bank={audit["wait_bank"]} with 4 banks')
EOF

# 4. fsencr-profile: matching ranking, non-empty folded stacks.
"$sim" "${common[@]}" --profile --report "$tmp/tool.json" \
       --trace-events "$tmp/tool_trace.json" > /dev/null
"$profiletool" --report "$tmp/tool.json" \
               --trace-events "$tmp/tool_trace.json" \
               --folded "$tmp/tool.folded" > "$tmp/tool.txt" || {
    echo "FAIL: fsencr-profile rejected its own report (ranking skew?)"
    cat "$tmp/tool.txt"
    exit 1
}
grep -q "bottleneck ranking" "$tmp/tool.txt" || {
    echo "FAIL: fsencr-profile printed no ranking"
    exit 1
}
[ -s "$tmp/tool.folded" ] || {
    echo "FAIL: folded-stack output is empty"
    exit 1
}
grep -Eq '^mc;(read|write);[a-z_]+ [0-9]+$' "$tmp/tool.folded" || {
    echo "FAIL: folded-stack lines are not flamegraph-compatible"
    cat "$tmp/tool.folded"
    exit 1
}
echo "ok: fsencr-profile ranking matches, folded stacks non-empty"

echo "profile_smoke: all checks passed"
