#!/usr/bin/env bash
# Run every figure/table/ablation bench and collect the outputs.
#
# Each harness-based bench also writes a machine-readable report
# (schema fsencr-bench-report) next to the text output; reports are
# JSON-validated with python3 when available, and diffed against the
# committed baseline under bench/baselines/{quick,full}/ with
# fsencr-compare when one exists. Any regression beyond the default
# thresholds makes this script exit non-zero.
#
# Usage: scripts/run_all_benches.sh [--quick] [--no-baseline] [output-file]
set -u
set -o pipefail

quick=""
check_baselines=1
out="bench_output.txt"
for arg in "$@"; do
    case "$arg" in
      --quick) quick="--quick" ;;
      --no-baseline) check_baselines=0 ;;
      *) out="$arg" ;;
    esac
done

src_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$src_dir/build"
report_dir="$(dirname "$out")"
[ "$report_dir" = "" ] && report_dir="."
: > "$out"

# Baselines are mode-specific: quick and full runs differ in op count,
# so their reports are only comparable to reruns of the same mode.
if [ -n "$quick" ]; then
    baseline_dir="$src_dir/bench/baselines/quick"
else
    baseline_dir="$src_dir/bench/baselines/full"
fi
compare="$build_dir/tools/fsencr-compare"

python3_bin="$(command -v python3 || true)"
regressions=0

benches=(
    bench_table1_vulnerability
    bench_fig3_software_encryption
    bench_fig8_pmemkv_slowdown
    bench_fig9_pmemkv_writes
    bench_fig10_pmemkv_reads
    bench_fig11_whisper
    bench_fig12_micro_slowdown
    bench_fig13_micro_writes
    bench_fig14_micro_reads
    bench_fig15_cache_sensitivity
    bench_ablation_ott
    bench_ablation_osiris
    bench_ablation_metacache
    bench_ablation_rekey
    bench_recovery_time
    bench_scale
)

for b in "${benches[@]}"; do
    echo "=== $b ===" | tee -a "$out"
    report="$report_dir/REPORT_${b}.json"
    FSENCR_BENCH_REPORT="$report" \
        "$build_dir/bench/$b" $quick 2>/dev/null | tee -a "$out"
    if [ -s "$report" ] && [ -n "$python3_bin" ]; then
        "$python3_bin" - "$report" <<'EOF' || echo "WARNING: bad report for $b"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "fsencr-bench-report", doc.get("schema")
assert isinstance(doc["version"], int)
assert isinstance(doc["rows"], list)
EOF
    fi
    baseline="$baseline_dir/REPORT_${b}.json"
    if [ "$check_baselines" = 1 ] && [ -s "$report" ] &&
       [ -s "$baseline" ] && [ -x "$compare" ]; then
        if ! "$compare" --quiet "$baseline" "$report" | tee -a "$out"
        then
            echo "REGRESSION: $b vs $baseline" | tee -a "$out"
            regressions=$((regressions + 1))
        fi
    fi
    echo | tee -a "$out"
done

# Banked-timing configurations: the pmemkv and DAX-micro suites again
# with a 4-way issue width. Gated against their own committed
# baselines (REPORT_<bench>_banks4.json) — the default runs above stay
# on the legacy serial model and its baselines, bit-identical.
banked_benches=(
    bench_fig8_pmemkv_slowdown
    bench_fig9_pmemkv_writes
    bench_fig10_pmemkv_reads
    bench_fig12_micro_slowdown
    bench_fig14_micro_reads
)

for b in "${banked_benches[@]}"; do
    echo "=== $b (--mc-banks 4) ===" | tee -a "$out"
    report="$report_dir/REPORT_${b}_banks4.json"
    FSENCR_BENCH_REPORT="$report" \
        "$build_dir/bench/$b" $quick --mc-banks 4 2>/dev/null \
        | tee -a "$out"
    baseline="$baseline_dir/REPORT_${b}_banks4.json"
    if [ "$check_baselines" = 1 ] && [ -s "$report" ] &&
       [ -s "$baseline" ] && [ -x "$compare" ]; then
        if ! "$compare" --quiet "$baseline" "$report" | tee -a "$out"
        then
            echo "REGRESSION: $b (banked) vs $baseline" | tee -a "$out"
            regressions=$((regressions + 1))
        fi
    fi
    echo | tee -a "$out"
done

# Audit ride-along configuration: the Figure 14 DAX-read suite with
# every GroupID audited, gated against its own committed baseline
# (REPORT_<bench>_audit.json). The default rows above run with
# auditing off and must stay bit-identical to their baselines.
audit_benches=(
    bench_fig14_micro_reads
)

for b in "${audit_benches[@]}"; do
    echo "=== $b (--audit-filter all) ===" | tee -a "$out"
    report="$report_dir/REPORT_${b}_audit.json"
    FSENCR_BENCH_REPORT="$report" \
        "$build_dir/bench/$b" $quick --audit-filter all 2>/dev/null \
        | tee -a "$out"
    baseline="$baseline_dir/REPORT_${b}_audit.json"
    if [ "$check_baselines" = 1 ] && [ -s "$report" ] &&
       [ -s "$baseline" ] && [ -x "$compare" ]; then
        if ! "$compare" --quiet "$baseline" "$report" | tee -a "$out"
        then
            echo "REGRESSION: $b (audit) vs $baseline" | tee -a "$out"
            regressions=$((regressions + 1))
        fi
    fi
    echo | tee -a "$out"
done

# eADR persistence-domain configuration: the write-path slowdown
# figures again with the persistence domain extended over the caches
# (stop-loss persists elided, clwb/fence near-free). Gated against
# their own committed baselines (REPORT_<bench>_eadr.json); the
# default ADR rows above are untouched and stay bit-identical to
# theirs.
eadr_benches=(
    bench_fig8_pmemkv_slowdown
    bench_fig12_micro_slowdown
)

for b in "${eadr_benches[@]}"; do
    echo "=== $b (--persist-domain eadr) ===" | tee -a "$out"
    report="$report_dir/REPORT_${b}_eadr.json"
    FSENCR_BENCH_REPORT="$report" \
        "$build_dir/bench/$b" $quick --persist-domain eadr 2>/dev/null \
        | tee -a "$out"
    baseline="$baseline_dir/REPORT_${b}_eadr.json"
    if [ "$check_baselines" = 1 ] && [ -s "$report" ] &&
       [ -s "$baseline" ] && [ -x "$compare" ]; then
        if ! "$compare" --quiet "$baseline" "$report" | tee -a "$out"
        then
            echo "REGRESSION: $b (eadr) vs $baseline" | tee -a "$out"
            regressions=$((regressions + 1))
        fi
    fi
    echo | tee -a "$out"
done

# Contention-profiler configuration: the Figure 8 pmemkv suite with
# --profile --mc-banks 4, gated against its own committed baseline
# (REPORT_<bench>_profile.json, schema version 3 with per-cell
# profile sections). The profiler is observation only, so the ticks
# in this report must track the banks4 rows exactly; the gate also
# pins the per-class service/wait decomposition.
profile_benches=(
    bench_fig8_pmemkv_slowdown
)

for b in "${profile_benches[@]}"; do
    echo "=== $b (--profile --mc-banks 4) ===" | tee -a "$out"
    report="$report_dir/REPORT_${b}_profile.json"
    FSENCR_BENCH_REPORT="$report" \
        "$build_dir/bench/$b" $quick --profile --mc-banks 4 \
        2>/dev/null | tee -a "$out"
    baseline="$baseline_dir/REPORT_${b}_profile.json"
    if [ "$check_baselines" = 1 ] && [ -s "$report" ] &&
       [ -s "$baseline" ] && [ -x "$compare" ]; then
        if ! "$compare" --quiet "$baseline" "$report" | tee -a "$out"
        then
            echo "REGRESSION: $b (profile) vs $baseline" | tee -a "$out"
            regressions=$((regressions + 1))
        fi
    fi
    echo | tee -a "$out"
done

# Sharded-datapath configuration: the Figure 8 pmemkv suite again
# with the secure datapath split 8 ways (--mc-shards 8, one bank
# slice per shard) under the profiler. Gated against its own
# committed baseline (REPORT_<bench>_shards8.json) and against the
# scale-out contract: every cell with datapath traffic must reach at
# least 0.7x the profiler's load-aware Amdahl projection. The
# default rows above stay on the single-controller model and its
# baselines, bit-identical.
shard_benches=(
    bench_fig8_pmemkv_slowdown
)

for b in "${shard_benches[@]}"; do
    echo "=== $b (--profile --mc-shards 8) ===" | tee -a "$out"
    report="$report_dir/REPORT_${b}_shards8.json"
    FSENCR_BENCH_REPORT="$report" \
        "$build_dir/bench/$b" $quick --profile --mc-shards 8 \
        --mc-banks 8 2>/dev/null | tee -a "$out"
    baseline="$baseline_dir/REPORT_${b}_shards8.json"
    if [ "$check_baselines" = 1 ] && [ -s "$report" ] &&
       [ -s "$baseline" ] && [ -x "$compare" ]; then
        if ! "$compare" --quiet "$baseline" "$report" | tee -a "$out"
        then
            echo "REGRESSION: $b (shards8) vs $baseline" | tee -a "$out"
            regressions=$((regressions + 1))
        fi
    fi
    if [ -s "$report" ] && [ -n "$python3_bin" ]; then
        if ! "$python3_bin" - "$report" <<'EOF' | tee -a "$out"
import json, sys
doc = json.load(open(sys.argv[1]))
print("  %-16s %-22s %9s %9s %6s" %
      ("row", "scheme", "measured", "projected", "ratio"))
worst = None
for row in doc["rows"]:
    for cell in row["cells"]:
        s = cell.get("shards")
        if not s or not s["serial_ticks"]:
            continue
        ratio = s["speedup"] / s["projected_speedup"]
        print("  %-16s %-22s %8.2fx %8.2fx %6.2f" %
              (row["name"], cell["scheme"], s["speedup"],
               s["projected_speedup"], ratio))
        if worst is None or ratio < worst:
            worst = ratio
assert worst is not None, "no sharded cell with datapath traffic"
assert worst >= 0.7, \
    "scale-out gate: worst measured/projected ratio %.2f < 0.7" % worst
print("  scale-out gate OK (worst ratio %.2f)" % worst)
EOF
        then
            echo "REGRESSION: $b (shards8 scale-out gate)" | tee -a "$out"
            regressions=$((regressions + 1))
        fi
    fi
    echo | tee -a "$out"
done

# ADR-vs-eADR delta: how much of each scheme's modeled time the wider
# persistence domain buys back, per row. Informational only — the
# gates above already pinned both domains to their own baselines.
if [ -n "$python3_bin" ]; then
    echo "=== ADR vs eADR delta ===" | tee -a "$out"
    for b in "${eadr_benches[@]}"; do
        adr_report="$report_dir/REPORT_${b}.json"
        eadr_report="$report_dir/REPORT_${b}_eadr.json"
        [ -s "$adr_report" ] && [ -s "$eadr_report" ] || continue
        "$python3_bin" - "$b" "$adr_report" "$eadr_report" <<'EOF' | tee -a "$out"
import json, sys
name, adr_path, eadr_path = sys.argv[1:4]
def cells(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc["rows"]:
        for cell in row["cells"]:
            out[(row["name"], cell["scheme"])] = cell
    return out
adr, eadr = cells(adr_path), cells(eadr_path)
print("%s:" % name)
print("  %-24s %-10s %14s %14s %8s" %
      ("row", "scheme", "adr ticks", "eadr ticks", "eadr/adr"))
for key in adr:
    if key not in eadr:
        continue
    a, e = adr[key]["ticks"], eadr[key]["ticks"]
    ratio = ("%8.3f" % (e / a)) if a else "     n/a"
    print("  %-24s %-10s %14d %14d %s" % (key[0], key[1], a, e, ratio))
EOF
    done
    echo | tee -a "$out"
fi

echo "=== bench_primitives ===" | tee -a "$out"
"$build_dir/bench/bench_primitives" \
    --benchmark_min_time=0.05s 2>/dev/null | tee -a "$out"

if [ "$regressions" != 0 ]; then
    echo "$regressions bench(es) regressed against $baseline_dir" \
        | tee -a "$out"
    exit 1
fi
