#!/usr/bin/env bash
# Run every figure/table/ablation bench and collect the outputs.
#
# Usage: scripts/run_all_benches.sh [--quick] [output-file]
set -u

quick=""
out="bench_output.txt"
for arg in "$@"; do
    case "$arg" in
      --quick) quick="--quick" ;;
      *) out="$arg" ;;
    esac
done

build_dir="$(dirname "$0")/../build"
: > "$out"

benches=(
    bench_table1_vulnerability
    bench_fig3_software_encryption
    bench_fig8_pmemkv_slowdown
    bench_fig9_pmemkv_writes
    bench_fig10_pmemkv_reads
    bench_fig11_whisper
    bench_fig12_micro_slowdown
    bench_fig13_micro_writes
    bench_fig14_micro_reads
    bench_fig15_cache_sensitivity
    bench_ablation_ott
    bench_ablation_osiris
    bench_ablation_metacache
    bench_ablation_rekey
    bench_recovery_time
)

for b in "${benches[@]}"; do
    echo "=== $b ===" | tee -a "$out"
    "$build_dir/bench/$b" $quick 2>/dev/null | tee -a "$out"
    echo | tee -a "$out"
done

echo "=== bench_primitives ===" | tee -a "$out"
"$build_dir/bench/bench_primitives" \
    --benchmark_min_time=0.05s 2>/dev/null | tee -a "$out"
