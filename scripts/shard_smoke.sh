#!/usr/bin/env bash
# Sharded-datapath smoke, registered as a ctest test:
#
#  1. --mc-shards 1 is the single-controller model bit for bit: a run
#     report produced with the flag must be byte-identical to one
#     produced without it,
#  2. cross-shard determinism: at shards 2, 4 and 8 the same seed must
#     reproduce the sharded run report byte for byte,
#  3. the crash-consistency invariant matrix holds on a sharded
#     datapath (per-shard recovery, merged verdicts), and composes
#     with the audit ride-along and the eADR persistence domain,
#  4. sharded crashtest reports are deterministic byte for byte,
#  5. the scale-out contract: at 8 shards the measured speedup
#     (serial/visible ticks from the shards section) reaches at least
#     0.7x the profiler's load-aware Amdahl projection.
#
# Usage: scripts/shard_smoke.sh [build-dir]
set -eu

build_dir="${1:-$(dirname "$0")/../build}"
sim="$build_dir/tools/fsencr-sim"
crashtest="$build_dir/tools/fsencr-crashtest"
[ -x "$sim" ] || { echo "missing $sim (build first)"; exit 1; }
[ -x "$crashtest" ] || { echo "missing $crashtest (build first)"; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 1. shards=1 identity: the flag spelled out changes nothing.
"$sim" --scheme fsencr --workload fillrandom-S --ops 1000 --keys 1000 \
       --report "$tmp/plain.json" > /dev/null
"$sim" --scheme fsencr --workload fillrandom-S --ops 1000 --keys 1000 \
       --mc-shards 1 --report "$tmp/s1.json" > /dev/null
cmp "$tmp/plain.json" "$tmp/s1.json" \
    || { echo "--mc-shards 1 diverged from the single controller"; exit 1; }

# 2. Cross-shard determinism at every smoke shard count.
for n in 2 4 8; do
    "$sim" --scheme fsencr --workload fillrandom-S --ops 1000 \
           --keys 1000 --mc-shards "$n" --mc-banks "$n" \
           --report "$tmp/s$n-a.json" > /dev/null
    "$sim" --scheme fsencr --workload fillrandom-S --ops 1000 \
           --keys 1000 --mc-shards "$n" --mc-banks "$n" \
           --report "$tmp/s$n-b.json" > /dev/null
    cmp "$tmp/s$n-a.json" "$tmp/s$n-b.json" \
        || { echo "shards=$n report is not deterministic"; exit 1; }
done

# 3a. Sharded crash matrix: one seeded run per fault class.
for fault in midop torn dropped databitflip metabitflip; do
    "$crashtest" --seed 11 --crashes 1 --fault "$fault" \
                 --mc-shards 4 > "$tmp/shard-$fault.txt" \
        || { echo "sharded fault class $fault failed:";
             cat "$tmp/shard-$fault.txt"; exit 1; }
done

# 3b. Composition: audit ride-along + eADR + shards in one matrix.
"$crashtest" --seed 11 --crashes 2 --fault all --mc-shards 4 \
             --audit --persist-domain eadr > "$tmp/combo.txt" \
    || { echo "audit+eadr+shards matrix failed:";
         cat "$tmp/combo.txt"; exit 1; }

# 4. Determinism: identical seed, identical sharded report bytes.
"$crashtest" --seed 7 --crashes 4 --fault all --mc-shards 4 \
             --json > "$tmp/a.json"
"$crashtest" --seed 7 --crashes 4 --fault all --mc-shards 4 \
             --json > "$tmp/b.json"
cmp "$tmp/a.json" "$tmp/b.json" \
    || { echo "sharded crashtest report is not deterministic"; exit 1; }

python3_bin="$(command -v python3 || true)"
if [ -n "$python3_bin" ]; then
    # 5. Scale-out gate at 8 shards: measured >= 0.7x projected.
    "$sim" --scheme fsencr --workload fillrandom-S --ops 4000 \
           --keys 4000 --mc-shards 8 --mc-banks 8 --profile \
           --report "$tmp/s8.json" > /dev/null
    "$python3_bin" - "$tmp/s8.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
s = r["shards"]
assert s["count"] == 8, s
busy = [row["busy_ticks"] for row in s["per_shard"]]
assert s["serial_ticks"] == sum(busy), (s["serial_ticks"], busy)
assert max(busy) <= s["visible_ticks"] <= s["serial_ticks"], s
ratio = s["speedup"] / s["projected_speedup"]
assert ratio >= 0.7, \
    "measured %.2f < 0.7x projected %.2f" \
    % (s["speedup"], s["projected_speedup"])
print("shard smoke OK: speedup %.2fx of %.2fx projected (%.0f%%)"
      % (s["speedup"], s["projected_speedup"], 100 * ratio))
EOF
else
    echo "shard smoke OK (python3 missing: speedup gate skipped)"
fi
