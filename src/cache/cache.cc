#include "cache/cache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace fsencr {

SetAssocCache::SetAssocCache(const std::string &name,
                             std::size_t size_bytes, unsigned assoc,
                             std::size_t line_bytes)
    : lineBytes_(line_bytes),
      lineShift_(floorLog2(line_bytes)),
      assoc_(assoc),
      statGroup_(name)
{
    if (!isPowerOf2(line_bytes))
        fatal("cache line size must be a power of two");
    if (assoc == 0 || size_bytes < line_bytes * assoc)
        fatal("cache %s: bad geometry (size %zu, assoc %u)",
              name.c_str(), size_bytes, assoc);

    numSets_ = size_bytes / (line_bytes * assoc);
    if (!isPowerOf2(numSets_))
        fatal("cache %s: number of sets (%zu) must be a power of two",
              name.c_str(), numSets_);
    lines_.resize(numSets_ * assoc_);

    statGroup_.addScalar("hits", hits_);
    statGroup_.addScalar("misses", misses_);
    statGroup_.addScalar("evictions", evictions_);
    statGroup_.addScalar("writebacks", writebacks_);
}

Addr
SetAssocCache::reconstruct(const Line &l) const
{
    return l.tag << lineShift_;
}

CacheAccessResult
SetAssocCache::access(Addr addr, bool is_write)
{
    CacheAccessResult res;
    ++lruClock_;

    if (Line *l = findLine(addr)) {
        ++hits_;
        res.hit = true;
        l->lru = lruClock_;
        if (is_write)
            l->dirty = true;
        return res;
    }

    ++misses_;

    // Allocate: pick an invalid way, else the LRU way.
    std::size_t set = setIndex(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &l = lines_[set * assoc_ + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lru < victim->lru)
            victim = &l;
    }

    if (victim->valid) {
        ++evictions_;
        res.evicted = true;
        res.victimAddr = reconstruct(*victim);
        if (victim->dirty) {
            ++writebacks_;
            res.writeback = true;
        }
    }

    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tagOf(addr);
    victim->lru = lruClock_;
    return res;
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    if (Line *l = findLine(addr)) {
        bool was_dirty = l->dirty;
        l->valid = false;
        l->dirty = false;
        return was_dirty;
    }
    return false;
}

void
SetAssocCache::clean(Addr addr)
{
    if (Line *l = findLine(addr))
        l->dirty = false;
}

bool
SetAssocCache::isDirty(Addr addr) const
{
    const Line *l = findLine(addr);
    return l != nullptr && l->dirty;
}

void
SetAssocCache::loseAll()
{
    for (Line &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
}

} // namespace fsencr
