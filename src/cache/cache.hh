/**
 * @file
 * Generic set-associative writeback cache (tags + LRU, no data array).
 *
 * The simulator keeps functional data in backing stores, so caches track
 * tags, dirty bits and replacement state only. Used for L1/L2/L3, the
 * security-metadata cache, and (with one set) fully-associative
 * structures.
 */

#ifndef FSENCR_CACHE_CACHE_HH
#define FSENCR_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fsencr {

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** True if the allocation evicted a dirty line. */
    bool writeback = false;
    /** Line address of the evicted victim (valid if writeback or
     *  evicted). */
    Addr victimAddr = 0;
    /** True if any valid line was evicted (dirty or clean). */
    bool evicted = false;
};

/** Set-associative LRU writeback cache. */
class SetAssocCache
{
  public:
    /**
     * @param name stats group name
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_bytes line size (64 everywhere in this model)
     */
    SetAssocCache(const std::string &name, std::size_t size_bytes,
                  unsigned assoc, std::size_t line_bytes = blockSize);

    /**
     * Look up and, on a miss, allocate the line.
     *
     * @param addr any address within the line
     * @param is_write marks the line dirty on hit or after fill
     * @return hit/miss and victim information
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Look up without allocating or touching LRU state. */
    bool probe(Addr addr) const;

    /**
     * Remove the line if present.
     * @return true iff it was present and dirty
     */
    bool invalidate(Addr addr);

    /** Mark the line clean if present (e.g., after clwb). */
    void clean(Addr addr);

    /** True iff the line is present and dirty. */
    bool isDirty(Addr addr) const;

    /**
     * Visit every valid line. Visitor gets (addr, dirty). Used for
     * flush-on-shutdown and crash modeling.
     */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const Line &l : lines_)
            if (l.valid)
                fn(reconstruct(l), l.dirty);
    }

    /** Drop everything without writeback (power loss). */
    void loseAll();

    std::size_t numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    std::size_t capacityBytes() const { return numSets_ * assoc_ * lineBytes_; }

    stats::StatGroup &statGroup() { return statGroup_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr reconstruct(const Line &l) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    std::size_t lineBytes_;
    unsigned lineShift_;
    std::size_t numSets_;
    unsigned assoc_;
    std::uint64_t lruClock_ = 0;
    std::vector<Line> lines_;

    stats::StatGroup statGroup_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar evictions_;
    stats::Scalar writebacks_;
};

} // namespace fsencr

#endif // FSENCR_CACHE_CACHE_HH
