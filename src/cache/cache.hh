/**
 * @file
 * Generic set-associative writeback cache (tags + LRU, no data array).
 *
 * The simulator keeps functional data in backing stores, so caches track
 * tags, dirty bits and replacement state only. Used for L1/L2/L3, the
 * security-metadata cache, and (with one set) fully-associative
 * structures.
 */

#ifndef FSENCR_CACHE_CACHE_HH
#define FSENCR_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fsencr {

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** True if the allocation evicted a dirty line. */
    bool writeback = false;
    /** Line address of the evicted victim (valid if writeback or
     *  evicted). */
    Addr victimAddr = 0;
    /** True if any valid line was evicted (dirty or clean). */
    bool evicted = false;
};

/** Set-associative LRU writeback cache. */
class SetAssocCache
{
  public:
    /**
     * @param name stats group name
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_bytes line size (64 everywhere in this model)
     */
    SetAssocCache(const std::string &name, std::size_t size_bytes,
                  unsigned assoc, std::size_t line_bytes = blockSize);

    /** One tag-array entry. Public so the fast-forward path can hold a
     *  direct reference to a resident line (see ffProbe()). */
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    /**
     * Look up and, on a miss, allocate the line.
     *
     * @param addr any address within the line
     * @param is_write marks the line dirty on hit or after fill
     * @return hit/miss and victim information
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Look up without allocating or touching LRU state. */
    bool probe(Addr addr) const;

    /**
     * Remove the line if present.
     * @return true iff it was present and dirty
     */
    bool invalidate(Addr addr);

    /** Mark the line clean if present (e.g., after clwb). */
    void clean(Addr addr);

    /** True iff the line is present and dirty. */
    bool isDirty(Addr addr) const;

    /**
     * Visit every valid line. Visitor gets (addr, dirty). Used for
     * flush-on-shutdown and crash modeling.
     */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const Line &l : lines_)
            if (l.valid)
                fn(reconstruct(l), l.dirty);
    }

    /** Drop everything without writeback (power loss). */
    void loseAll();

    /// @name Fast-forward support (see docs/ARCHITECTURE.md).
    ///
    /// ffProbe() locates a resident line without touching LRU state or
    /// stats; ffCredit() then applies a batch of N hits against it in
    /// one step. `lruClock_ += n; l->lru = lruClock_; hits_ += n`
    /// (plus a single dirty mark when any access in the run was a
    /// store) leaves byte-identical final state to N consecutive
    /// access() hits on the same line. Line pointers are stable (the
    /// tag array never resizes) but only valid until the next
    /// access()/invalidate()/loseAll() on this cache.
    /// @{
    Line *ffProbe(Addr addr) { return findLine(addr); }

    void
    ffCredit(Line *l, std::uint64_t n, bool mark_dirty)
    {
        lruClock_ += n;
        l->lru = lruClock_;
        hits_ += n;
        if (mark_dirty)
            l->dirty = true;
    }
    /// @}

    std::size_t numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    std::size_t capacityBytes() const { return numSets_ * assoc_ * lineBytes_; }

    stats::StatGroup &statGroup() { return statGroup_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    std::size_t
    setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & (numSets_ - 1);
    }

    Addr tagOf(Addr addr) const { return addr >> lineShift_; }

    Addr reconstruct(const Line &l) const;

    // Inline so ffProbe() compiles down to one set scan with no call
    // overhead; it runs once per fast-forward line segment.
    Line *
    findLine(Addr addr)
    {
        std::size_t set = setIndex(addr);
        Addr tag = tagOf(addr);
        for (unsigned w = 0; w < assoc_; ++w) {
            Line &l = lines_[set * assoc_ + w];
            if (l.valid && l.tag == tag)
                return &l;
        }
        return nullptr;
    }

    const Line *
    findLine(Addr addr) const
    {
        return const_cast<SetAssocCache *>(this)->findLine(addr);
    }

    std::size_t lineBytes_;
    unsigned lineShift_;
    std::size_t numSets_;
    unsigned assoc_;
    std::uint64_t lruClock_ = 0;
    std::vector<Line> lines_;

    stats::StatGroup statGroup_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar evictions_;
    stats::Scalar writebacks_;
};

} // namespace fsencr

#endif // FSENCR_CACHE_CACHE_HH
