#include "cache/hierarchy.hh"

#include "common/logging.hh"

namespace fsencr {

CacheHierarchy::CacheHierarchy(const CpuParams &params)
    : params_(params), statGroup_("caches")
{
    for (unsigned c = 0; c < params.numCores; ++c) {
        l1_.push_back(std::make_unique<SetAssocCache>(
            "l1_" + std::to_string(c), params.l1.sizeBytes,
            params.l1.assoc));
        l2_.push_back(std::make_unique<SetAssocCache>(
            "l2_" + std::to_string(c), params.l2.sizeBytes,
            params.l2.assoc));
        statGroup_.addChild(&l1_.back()->statGroup());
        statGroup_.addChild(&l2_.back()->statGroup());
    }
    l3_ = std::make_unique<SetAssocCache>("l3", params.l3.sizeBytes,
                                          params.l3.assoc);
    statGroup_.addChild(&l3_->statGroup());
}

HierarchyResult
CacheHierarchy::access(unsigned core, Addr addr, bool is_write,
                       WritebackSink &sink)
{
    if (core >= l1_.size())
        panic("access from core %u but only %zu cores configured", core,
              l1_.size());

    HierarchyResult res;
    Addr line = blockAlign(addr);

    // L1.
    res.cycles += params_.l1.latency;
    CacheAccessResult r1 = l1_[core]->access(line, is_write);
    if (r1.writeback) {
        // Dirty L1 victim is absorbed by L2 (allocate + dirty).
        CacheAccessResult wr = l2_[core]->access(r1.victimAddr, true);
        if (wr.writeback) {
            CacheAccessResult w3 = l3_->access(wr.victimAddr, true);
            if (w3.writeback)
                sink.writebackLine(w3.victimAddr);
        }
    }
    if (r1.hit) {
        res.level = HitLevel::L1;
        return res;
    }

    // L2.
    res.cycles += params_.l2.latency;
    CacheAccessResult r2 = l2_[core]->access(line, false);
    if (r2.writeback) {
        CacheAccessResult w3 = l3_->access(r2.victimAddr, true);
        if (w3.writeback)
            sink.writebackLine(w3.victimAddr);
    }
    if (r2.hit) {
        res.level = HitLevel::L2;
        return res;
    }

    // L3 (shared).
    res.cycles += params_.l3.latency;
    CacheAccessResult r3 = l3_->access(line, false);
    if (r3.writeback)
        sink.writebackLine(r3.victimAddr);
    if (r3.evicted) {
        // Inclusive L3: back-invalidate the victim upstream; any dirty
        // copy there supersedes the L3 copy and must reach memory.
        for (unsigned c = 0; c < l1_.size(); ++c) {
            bool d1 = l1_[c]->invalidate(r3.victimAddr);
            bool d2 = l2_[c]->invalidate(r3.victimAddr);
            if ((d1 || d2) && !r3.writeback)
                sink.writebackLine(r3.victimAddr);
        }
    }
    if (r3.hit) {
        res.level = HitLevel::L3;
        return res;
    }

    res.level = HitLevel::Memory;
    return res;
}

bool
CacheHierarchy::clwb(unsigned core, Addr addr, WritebackSink &sink)
{
    (void)core; // clwb drains the line regardless of which core issues it
    Addr line = blockAlign(addr);
    bool dirty = false;

    // clwb semantics: drain the dirty data to memory, but the line may
    // remain cached clean at every level (unlike clflush).
    for (unsigned c = 0; c < l1_.size(); ++c) {
        if (l1_[c]->isDirty(line))
            dirty = true;
        l1_[c]->clean(line);
        if (l2_[c]->isDirty(line))
            dirty = true;
        l2_[c]->clean(line);
    }
    if (l3_->isDirty(line))
        dirty = true;
    l3_->clean(line);

    if (dirty)
        sink.writebackLine(line);
    return dirty;
}

void
CacheHierarchy::flushAll(WritebackSink &sink)
{
    // Gather dirty lines from private caches first (they supersede LLC
    // copies), then the LLC.
    std::vector<Addr> dirty_lines;
    auto gather = [&dirty_lines](Addr addr, bool dirty) {
        if (dirty)
            dirty_lines.push_back(addr);
    };
    for (unsigned c = 0; c < l1_.size(); ++c) {
        l1_[c]->forEachLine(gather);
        l2_[c]->forEachLine(gather);
    }
    l3_->forEachLine(gather);

    for (unsigned c = 0; c < l1_.size(); ++c) {
        l1_[c]->loseAll();
        l2_[c]->loseAll();
    }
    l3_->loseAll();

    for (Addr a : dirty_lines)
        sink.writebackLine(a);
}

std::vector<Addr>
CacheHierarchy::crash()
{
    std::vector<Addr> lost;
    auto gather = [&lost](Addr addr, bool dirty) {
        if (dirty)
            lost.push_back(addr);
    };
    for (unsigned c = 0; c < l1_.size(); ++c) {
        l1_[c]->forEachLine(gather);
        l2_[c]->forEachLine(gather);
        l1_[c]->loseAll();
        l2_[c]->loseAll();
    }
    l3_->forEachLine(gather);
    l3_->loseAll();
    return lost;
}

} // namespace fsencr
