/**
 * @file
 * Three-level cache hierarchy: private L1/L2 per core, shared inclusive
 * L3. Dirty evictions cascade downward; L3 victims are written back to
 * the memory controller through a WritebackSink.
 */

#ifndef FSENCR_CACHE_HIERARCHY_HH
#define FSENCR_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace fsencr {

/** Receives line addresses that must be written back to memory. */
class WritebackSink
{
  public:
    virtual ~WritebackSink() = default;
    /** The line at addr (full address, may carry DF-bit) left the
     *  hierarchy dirty and must reach the device. */
    virtual void writebackLine(Addr addr) = 0;
};

/** Where a demand access was satisfied. */
enum class HitLevel { L1, L2, L3, Memory };

/** Result of a hierarchy access. */
struct HierarchyResult
{
    HitLevel level = HitLevel::L1;
    /** Cycles spent in cache lookups (memory latency not included). */
    Cycles cycles = 0;
};

/** The modeled cache hierarchy. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CpuParams &params);

    /**
     * Demand access from a core.
     *
     * @param core issuing core
     * @param addr full physical address (may carry the DF-bit)
     * @param is_write store vs load
     * @param sink receives dirty L3 victims
     */
    HierarchyResult access(unsigned core, Addr addr, bool is_write,
                           WritebackSink &sink);

    /**
     * Cache-line writeback instruction (clwb): push the line out of
     * every level to the memory controller if dirty; the line may stay
     * cached clean.
     *
     * @return true iff a writeback to memory was generated
     */
    bool clwb(unsigned core, Addr addr, WritebackSink &sink);

    /** Flush the entire hierarchy (orderly shutdown). */
    void flushAll(WritebackSink &sink);

    /** Power loss: all cached state vanishes, dirty lines are lost.
     *  Returns the addresses of the lost dirty lines so the caller can
     *  roll architectural state back to the persisted image. */
    std::vector<Addr> crash();

    stats::StatGroup &statGroup() { return statGroup_; }

    SetAssocCache &l3() { return *l3_; }

    /** A core's private L1, for the fast-forward L1-hit run detector
     *  (sim/system.hh). An L1 hit touches no other level, so batching
     *  hits against the L1 alone reproduces access() exactly. */
    SetAssocCache &l1(unsigned core) { return *l1_.at(core); }

  private:
    CpuParams params_;
    std::vector<std::unique_ptr<SetAssocCache>> l1_;
    std::vector<std::unique_ptr<SetAssocCache>> l2_;
    std::unique_ptr<SetAssocCache> l3_;
    stats::StatGroup statGroup_;
};

} // namespace fsencr

#endif // FSENCR_CACHE_HIERARCHY_HH
