/**
 * @file
 * Bit-manipulation helpers shared across the simulator.
 */

#ifndef FSENCR_COMMON_BITFIELD_HH
#define FSENCR_COMMON_BITFIELD_HH

#include <cstdint>

namespace fsencr {

/** Extract bits [first, last] (inclusive, last >= first) of val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned last, unsigned first)
{
    unsigned nbits = last - first + 1;
    std::uint64_t mask =
        nbits >= 64 ? ~0ull : ((1ull << nbits) - 1);
    return (val >> first) & mask;
}

/** Insert bits [first, last] of val into dst. */
constexpr std::uint64_t
insertBits(std::uint64_t dst, unsigned last, unsigned first,
           std::uint64_t val)
{
    unsigned nbits = last - first + 1;
    std::uint64_t mask =
        nbits >= 64 ? ~0ull : ((1ull << nbits) - 1);
    return (dst & ~(mask << first)) | ((val & mask) << first);
}

/** Test a single bit. */
constexpr bool
bit(std::uint64_t val, unsigned n)
{
    return (val >> n) & 1ull;
}

/** Integer log2 (val must be a power of two). */
constexpr unsigned
floorLog2(std::uint64_t val)
{
    unsigned r = 0;
    while (val > 1) {
        val >>= 1;
        ++r;
    }
    return r;
}

/** True iff val is a power of two. */
constexpr bool
isPowerOf2(std::uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Round v up to the next multiple of align (align is a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace fsencr

#endif // FSENCR_COMMON_BITFIELD_HH
