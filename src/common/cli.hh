/**
 * @file
 * Shared command-line options parser for the tools and benches.
 *
 * One flag-spec table per program replaces the hand-rolled argv loops:
 * register typed flags (string / integer / double / boolean / custom),
 * optionally positionals, then parse(). Both `--flag value` and
 * `--flag=value` forms are accepted, `--help`/`-h` prints the
 * auto-generated usage and exits 0, and errors follow the historical
 * tool conventions: "unknown option '%s'" / "%s needs a value" on
 * stderr and exit code 2.
 *
 * Benches run in tolerant mode (ignoreUnknown()): several independent
 * scanners (jobs, quick, banked-timing knobs) share one argv, so a
 * flag unknown to this parser is somebody else's.
 */

#ifndef FSENCR_COMMON_CLI_HH
#define FSENCR_COMMON_CLI_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"

namespace fsencr {
namespace cli {

/** A spec-table options parser; see the file comment. */
class Parser
{
  public:
    /** @param summary one-line description appended to "usage:". */
    explicit Parser(std::string summary = "[options]")
        : summary_(std::move(summary))
    {}

    /// @name Flag registration (the spec table)
    /// @{

    /** Boolean switch: presence sets *out to true. */
    Parser &
    flag(const std::string &name, const std::string &help, bool *out)
    {
        specs_.push_back({name, "", help, [out](const std::string &) {
                              *out = true;
                              return true;
                          }});
        return *this;
    }

    /** String-valued option. */
    Parser &
    opt(const std::string &name, const std::string &value_name,
        const std::string &help, std::string *out)
    {
        specs_.push_back({name, value_name, help,
                          [out](const std::string &v) {
                              *out = v;
                              return true;
                          }});
        return *this;
    }

    /** Unsigned 64-bit option (base auto-detected, like strtoull). */
    Parser &
    optU64(const std::string &name, const std::string &value_name,
           const std::string &help, std::uint64_t *out)
    {
        specs_.push_back({name, value_name, help,
                          [out](const std::string &v) {
                              *out = std::strtoull(v.c_str(), nullptr,
                                                   0);
                              return true;
                          }});
        return *this;
    }

    /** Unsigned option (base auto-detected, like strtoul). */
    Parser &
    optUnsigned(const std::string &name, const std::string &value_name,
                const std::string &help, unsigned *out)
    {
        specs_.push_back({name, value_name, help,
                          [out](const std::string &v) {
                              *out = static_cast<unsigned>(
                                  std::strtoul(v.c_str(), nullptr, 0));
                              return true;
                          }});
        return *this;
    }

    /** size_t option (base auto-detected). */
    Parser &
    optSize(const std::string &name, const std::string &value_name,
            const std::string &help, std::size_t *out)
    {
        specs_.push_back({name, value_name, help,
                          [out](const std::string &v) {
                              *out = static_cast<std::size_t>(
                                  std::strtoull(v.c_str(), nullptr,
                                                0));
                              return true;
                          }});
        return *this;
    }

    /** Floating-point option (strtod). */
    Parser &
    optDouble(const std::string &name, const std::string &value_name,
              const std::string &help, double *out)
    {
        specs_.push_back({name, value_name, help,
                          [out](const std::string &v) {
                              *out = std::strtod(v.c_str(), nullptr);
                              return true;
                          }});
        return *this;
    }

    /**
     * Custom-parsed option. The setter returns false to reject the
     * value; parse() then fails with exit code 2 after the setter has
     * printed its own diagnostic.
     */
    Parser &
    custom(const std::string &name, const std::string &value_name,
           const std::string &help,
           std::function<bool(const std::string &)> set)
    {
        specs_.push_back({name, value_name, help, std::move(set)});
        return *this;
    }

    /** Positional argument, filled in registration order. */
    Parser &
    positional(const std::string &value_name, std::string *out)
    {
        positionals_.push_back({value_name, out});
        return *this;
    }

    /** Extra lines printed after the flag list in usage(). */
    Parser &
    epilogue(const std::string &text)
    {
        epilogue_ = text;
        return *this;
    }

    /** Tolerant mode: unknown flags are silently skipped and a flag
     *  missing its value is ignored rather than fatal (bench argv is
     *  shared between independent scanners). */
    Parser &
    ignoreUnknown()
    {
        ignoreUnknown_ = true;
        return *this;
    }

    /// @}

    /** Auto-generated usage text. */
    void
    usage(std::FILE *os, const char *argv0) const
    {
        std::string synopsis = summary_;
        for (const Positional &p : positionals_)
            synopsis += " " + p.valueName;
        std::fprintf(os, "usage: %s %s\n", argv0, synopsis.c_str());
        std::size_t width = 0;
        for (const Spec &s : specs_) {
            std::size_t w = s.name.size() +
                            (s.valueName.empty()
                                 ? 0
                                 : s.valueName.size() + 1);
            width = std::max(width, w);
        }
        for (const Spec &s : specs_) {
            std::string left = s.name;
            if (!s.valueName.empty())
                left += " " + s.valueName;
            std::fprintf(os, "  %-*s  %s\n",
                         static_cast<int>(width), left.c_str(),
                         s.help.c_str());
        }
        if (!epilogue_.empty())
            std::fprintf(os, "%s\n", epilogue_.c_str());
    }

    /**
     * Parse argv against the spec table.
     *
     * @return 0 on success, 2 on a usage error (diagnostic already
     *         printed); --help prints usage and exits 0
     */
    int
    parse(int argc, char **argv)
    {
        std::size_t pos = 0;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--help" || a == "-h") {
                usage(stdout, argv[0]);
                std::exit(0);
            }

            std::string name = a, inline_value;
            bool have_inline = false;
            auto eq = a.find('=');
            if (a.size() > 2 && a[0] == '-' &&
                eq != std::string::npos) {
                name = a.substr(0, eq);
                inline_value = a.substr(eq + 1);
                have_inline = true;
            }

            const Spec *spec = nullptr;
            for (const Spec &s : specs_)
                if (s.name == name) {
                    spec = &s;
                    break;
                }

            if (spec) {
                std::string value;
                if (spec->valueName.empty()) {
                    // Boolean switch; an inline value is nonsense.
                    if (have_inline) {
                        if (ignoreUnknown_)
                            continue;
                        std::fprintf(stderr,
                                     "%s takes no value\n",
                                     name.c_str());
                        return 2;
                    }
                } else if (have_inline) {
                    value = inline_value;
                } else if (i + 1 < argc) {
                    value = argv[++i];
                } else {
                    if (ignoreUnknown_)
                        continue;
                    std::fprintf(stderr, "%s needs a value\n",
                                 a.c_str());
                    std::exit(2);
                }
                if (!spec->set(value))
                    return 2;
            } else if (!positionals_.empty() &&
                       (a.empty() || a[0] != '-')) {
                if (pos >= positionals_.size()) {
                    std::fprintf(stderr,
                                 "too many positional arguments\n");
                    usage(stdout, argv[0]);
                    return 2;
                }
                *positionals_[pos++].out = a;
            } else {
                if (ignoreUnknown_)
                    continue;
                std::fprintf(stderr, "unknown option '%s'\n",
                             a.c_str());
                usage(stdout, argv[0]);
                return 2;
            }
        }
        return 0;
    }

  private:
    struct Spec
    {
        std::string name;
        std::string valueName; //!< empty = boolean switch
        std::string help;
        std::function<bool(const std::string &)> set;
    };

    struct Positional
    {
        std::string valueName;
        std::string *out;
    };

    std::string summary_;
    std::string epilogue_;
    std::vector<Spec> specs_;
    std::vector<Positional> positionals_;
    bool ignoreUnknown_ = false;
};

/**
 * Register the shared memory-controller option bundle on @p p,
 * parsing into @p mc. Every tool that exposes the secure-datapath
 * knobs calls this instead of rolling its own registrations, so
 * `--mc-banks`, `--mc-mshrs`, `--mc-shards`, `--audit-filter`,
 * `--persist-domain` and `--backup-flush-budget` spell and behave
 * identically across fsencr-sim, fsencr-crashtest and the benches.
 * Fold into a SimConfig afterwards with McParams::applyTo().
 */
inline Parser &
addMcOptions(Parser &p, McParams &mc)
{
    p.optUnsigned("--mc-banks", "N",
                  "controller issue width over device banks "
                  "(default 1 = serial)",
                  &mc.banks);
    p.optUnsigned("--mc-mshrs", "N",
                  "MSHR count backing the issue width (default 8)",
                  &mc.mshrs);
    p.optUnsigned("--mc-shards", "N",
                  "shard the secure datapath N ways (default 1 = "
                  "single controller, bit-identical)",
                  &mc.shards);
    p.opt("--audit-filter", "SPEC",
          "audit-log ride-along: 'all' or comma-separated GroupIDs "
          "(default off)",
          &mc.auditFilter);
    p.opt("--persist-domain", "D",
          "persistence boundary: adr (default) or eadr",
          &mc.persistDomain);
    p.optU64("--backup-flush-budget", "LINES",
             "eADR backup-power flush budget in 64B lines "
             "(default 0 = unbounded)",
             &mc.backupFlushBudgetLines);
    return p;
}

} // namespace cli
} // namespace fsencr

#endif // FSENCR_COMMON_CLI_HH
