#include "common/compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

namespace fsencr {
namespace compare {

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Improved: return "improved";
      case Status::Unchanged: return "unchanged";
      case Status::Regressed: return "regressed";
      case Status::Info: return "info";
    }
    return "?";
}

namespace {

/** Numeric member lookup by dotted path; NaN when absent. */
double
numberAt(const json::Value &doc, const std::string &path)
{
    const json::Value *v = &doc;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        std::size_t dot = path.find('.', pos);
        std::string key = dot == std::string::npos
                              ? path.substr(pos)
                              : path.substr(pos, dot - pos);
        if (!v->isObject())
            return std::nan("");
        v = v->find(key);
        if (!v)
            return std::nan("");
        pos = dot == std::string::npos ? dot : dot + 1;
    }
    return v->isNumber() ? v->number : std::nan("");
}

struct Comparer
{
    const Options &opt;
    Result &res;

    void
    classify(const std::string &metric, double base, double cur,
             bool gate = true)
    {
        Delta d;
        d.metric = metric;
        d.baseline = base;
        d.current = cur;
        d.ratio = base != 0.0 ? cur / base
                              : (cur == 0.0 ? 1.0
                                            : std::numeric_limits<
                                                  double>::infinity());
        if (!gate) {
            d.status = Status::Info;
        } else {
            double thr = std::max(opt.absTolerance,
                                  std::abs(base) * opt.relTolerance);
            if (cur > base + thr) {
                d.status = Status::Regressed;
                ++res.regressed;
            } else if (cur < base - thr) {
                d.status = Status::Improved;
                ++res.improved;
            } else {
                d.status = Status::Unchanged;
                ++res.unchanged;
            }
        }
        res.deltas.push_back(std::move(d));
    }

    /** Compare a numeric member both docs should have; silently skip
     *  if the baseline lacks it (older schema). */
    void
    member(const json::Value &base, const json::Value &cur,
           const std::string &path, const std::string &metric,
           bool gate = true)
    {
        double b = numberAt(base, path);
        if (std::isnan(b))
            return;
        double c = numberAt(cur, path);
        if (std::isnan(c)) {
            res.error = "current report lacks metric " + metric;
            return;
        }
        classify(metric, b, c, gate);
    }
};

void
compareAttribution(Comparer &cmp, const json::Value &base,
                   const json::Value &cur, const std::string &prefix)
{
    const json::Value *bc = base.find("attribution");
    const json::Value *cc = cur.find("attribution");
    if (!bc || !cc)
        return;
    cmp.member(*bc, *cc, "total", prefix + "attribution.total");
    const json::Value *bcomp = bc->find("components");
    const json::Value *ccomp = cc->find("components");
    if (!bcomp || !ccomp || !bcomp->isObject())
        return;
    for (const auto &[name, v] : bcomp->object) {
        if (!v.isNumber())
            continue;
        const json::Value *c = ccomp->find(name);
        cmp.classify(prefix + "attribution." + name, v.number,
                     c && c->isNumber() ? c->number : 0.0);
    }
}

void
compareLatency(Comparer &cmp, const json::Value &base,
               const json::Value &cur, const std::string &prefix)
{
    const json::Value *bl = base.find("latency");
    const json::Value *cl = cur.find("latency");
    if (!bl || !cl)
        return;
    for (const char *dir : {"read", "write"})
        for (const char *p : {"p50", "p95", "p99"})
            cmp.member(*bl, *cl, std::string(dir) + "." + p,
                       prefix + "latency." + dir + "." + p);
}

void
compareTimeseries(Comparer &cmp, const json::Value &base,
                  const json::Value &cur)
{
    const json::Value *bt = base.find("timeseries");
    const json::Value *ct = cur.find("timeseries");
    if (!bt || !ct)
        return;
    // Interval boundaries legitimately shift with total ticks, so the
    // series shape is context, not a gate: the aggregates above
    // already gate the same ticks exactly.
    cmp.member(*bt, *ct, "samples", "timeseries.samples",
               /*gate=*/false);
    auto peak = [](const json::Value &ts) {
        double best = 0.0;
        const json::Value *ivs = ts.find("intervals");
        if (!ivs || !ivs->isArray())
            return best;
        for (const json::Value &iv : ivs->array) {
            const json::Value *t0 = iv.find("t0");
            const json::Value *t1 = iv.find("t1");
            if (t0 && t1 && t0->isNumber() && t1->isNumber())
                best = std::max(best, t1->number - t0->number);
        }
        return best;
    };
    cmp.classify("timeseries.peak_interval_ticks", peak(*bt),
                 peak(*ct), /*gate=*/false);
}

void
compareMetrics(Comparer &cmp, const json::Value &base,
               const json::Value &cur)
{
    const json::Value *bm = base.find("metrics");
    const json::Value *cm = cur.find("metrics");
    // Older schema / metrics-off runs: nothing to diff.
    if (!bm || !cm || !bm->isObject() || !cm->isObject())
        return;
    for (const auto &[fam, bv] : bm->object) {
        if (!bv.isObject())
            continue;
        const json::Value *cv = cm->find(fam);
        if (!cv || !cv->isObject()) {
            cmp.res.error =
                "current report lacks metrics family '" + fam + "'";
            return;
        }
        cmp.member(bv, *cv, "total", "metrics." + fam + ".total");
        // Rows match by (family, label) — never by position — so
        // shard-tagged labels ("merkle@s3") diff against the same
        // label regardless of emission order, and a label present
        // only in the current report is additive, not a mismatch.
        const json::Value *bvals = bv.find("values");
        const json::Value *cvals = cv->find("values");
        if (!bvals || !cvals || !bvals->isObject() ||
            !cvals->isObject())
            continue;
        for (const auto &[label, lv] : bvals->object) {
            if (!lv.isNumber())
                continue;
            const json::Value *c = cvals->find(label);
            cmp.classify("metrics." + fam + "{" + label + "}",
                         lv.number,
                         c && c->isNumber() ? c->number : 0.0);
        }
    }
}

void
compareAudit(Comparer &cmp, const json::Value &base,
             const json::Value &cur)
{
    const json::Value *ba = base.find("audit");
    const json::Value *ca = cur.find("audit");
    if (!ba && !ca)
        return;
    // One-sided audit section means the runs were configured
    // differently — a structural mismatch, not a metric regression.
    if (!ba || !ca) {
        cmp.res.error = std::string("audit section present only in ") +
                        (ba ? "baseline" : "current") +
                        " (audit-enabled vs audit-off run)";
        return;
    }
    for (const char *key :
         {"appended", "acked", "overflow_dropped", "crash_dropped"})
        cmp.member(*ba, *ca, key, std::string("audit.") + key);
    cmp.member(*ba, *ca, "capacity_records", "audit.capacity_records",
               /*gate=*/false);
}

void
compareProfile(Comparer &cmp, const json::Value &base,
               const json::Value &cur, const std::string &prefix)
{
    const json::Value *bp = base.find("profile");
    const json::Value *cp = cur.find("profile");
    if (!bp && !cp)
        return;
    // One-sided profile section means the runs were configured
    // differently — a structural mismatch, not a metric regression.
    if (!bp || !cp) {
        cmp.res.error =
            std::string("profile section present only in ") +
            (bp ? "baseline" : "current") +
            " (--profile on vs --profile off run)";
        return;
    }
    cmp.member(*bp, *cp, "requests", prefix + "profile.requests");
    cmp.member(*bp, *cp, "total_latency",
               prefix + "profile.total_latency");
    cmp.member(*bp, *cp, "identity_violations",
               prefix + "profile.identity_violations");
    const json::Value *bc = bp->find("classes");
    const json::Value *cc = cp->find("classes");
    if (bc && cc && bc->isObject() && cc->isObject()) {
        for (const auto &[name, v] : bc->object) {
            if (!v.isObject())
                continue;
            const json::Value *c = cc->find(name);
            if (!c)
                continue;
            for (const char *key : {"service", "wait_total"})
                cmp.member(v, *c, key,
                           prefix + "profile." + name + "." + key);
        }
    }
    // The ranking itself is derived from the gated wait totals; the
    // serial fraction is context (tiny fractions make ratio gates
    // noisy without adding signal).
    cmp.member(*bp, *cp, "amdahl.serial_fraction",
               prefix + "profile.amdahl.serial_fraction",
               /*gate=*/false);
}

void
comparePersist(Comparer &cmp, const json::Value &base,
               const json::Value &cur)
{
    const json::Value *bp = base.find("persist");
    const json::Value *cp = cur.find("persist");
    // Pre-persist-section baselines: nothing to diff (older schema).
    if (!bp || !cp)
        return;
    const json::Value *bd = bp->find("domain");
    const json::Value *cd = cp->find("domain");
    if (bd && cd && bd->isString() && cd->isString() &&
        bd->str != cd->str) {
        // ADR vs eADR runs answer different questions — a structural
        // mismatch, not a metric regression.
        cmp.res.error = "persist domain mismatch: '" + bd->str +
                        "' vs '" + cd->str + "'";
        return;
    }
    for (const char *key :
         {"stop_loss_persists", "clwbs", "fences", "backup_flush_lines",
          "backup_flush_dropped"})
        cmp.member(*bp, *cp, key, std::string("persist.") + key);
}

void
compareRunReports(Comparer &cmp, const json::Value &base,
                  const json::Value &cur)
{
    // Refuse to gate apples against oranges.
    const json::Value *bcfg = base.find("config");
    const json::Value *ccfg = cur.find("config");
    if (bcfg && ccfg) {
        for (const char *key : {"scheme", "workload"}) {
            const json::Value *b = bcfg->find(key);
            const json::Value *c = ccfg->find(key);
            if (b && c && b->isString() && c->isString() &&
                b->str != c->str) {
                cmp.res.error = std::string("config mismatch: ") + key +
                                " '" + b->str + "' vs '" + c->str + "'";
                return;
            }
        }
    }
    for (const char *key : {"ticks", "nvm_reads", "nvm_writes"})
        cmp.member(base, cur, std::string("result.") + key,
                   std::string("result.") + key);
    compareAttribution(cmp, base, cur, "");
    compareLatency(cmp, base, cur, "");
    compareTimeseries(cmp, base, cur);
    compareMetrics(cmp, base, cur);
    compareAudit(cmp, base, cur);
    comparePersist(cmp, base, cur);
    compareProfile(cmp, base, cur, "");
}

const json::Value *
findCell(const json::Value &row, const std::string &scheme)
{
    const json::Value *cells = row.find("cells");
    if (!cells || !cells->isArray())
        return nullptr;
    for (const json::Value &cell : cells->array) {
        const json::Value *s = cell.find("scheme");
        if (s && s->isString() && s->str == scheme)
            return &cell;
    }
    return nullptr;
}

void
compareBenchReports(Comparer &cmp, const json::Value &base,
                    const json::Value &cur)
{
    const json::Value *brows = base.find("rows");
    const json::Value *crows = cur.find("rows");
    if (!brows || !crows || !brows->isArray() || !crows->isArray()) {
        cmp.res.error = "bench report without rows";
        return;
    }
    // Rows match by (name, occurrence): sweep-style benches may emit
    // several rows with one name, and the k-th must gate against the
    // k-th, not the first.
    std::map<std::string, std::size_t> seen;
    for (const json::Value &brow : brows->array) {
        const json::Value *name = brow.find("name");
        if (!name || !name->isString())
            continue;
        std::size_t occurrence = seen[name->str]++;
        const json::Value *crow = nullptr;
        std::size_t matched = 0;
        for (const json::Value &r : crows->array) {
            const json::Value *n = r.find("name");
            if (n && n->isString() && n->str == name->str &&
                matched++ == occurrence) {
                crow = &r;
                break;
            }
        }
        if (!crow) {
            cmp.res.error = "current report lacks row '" + name->str +
                            "'";
            return;
        }
        const json::Value *bcells = brow.find("cells");
        if (!bcells || !bcells->isArray())
            continue;
        for (const json::Value &bcell : bcells->array) {
            const json::Value *scheme = bcell.find("scheme");
            if (!scheme || !scheme->isString())
                continue;
            const json::Value *ccell = findCell(*crow, scheme->str);
            if (!ccell) {
                cmp.res.error = "current report lacks cell '" +
                                name->str + "/" + scheme->str + "'";
                return;
            }
            std::string prefix =
                "bench." + name->str + "." + scheme->str + ".";
            for (const char *key :
                 {"ticks", "nvm_reads", "nvm_writes", "read_p50",
                  "read_p95", "read_p99", "write_p50", "write_p95",
                  "write_p99"})
                cmp.member(bcell, *ccell, key, prefix + key);
            compareProfile(cmp, bcell, *ccell, prefix);
            if (!cmp.res.error.empty())
                return;
        }
    }
}

} // namespace

Result
compareReports(const json::Value &baseline, const json::Value &current,
               const Options &opt)
{
    Result res;
    Comparer cmp{opt, res};

    const json::Value *bs = baseline.find("schema");
    const json::Value *cs = current.find("schema");
    if (!bs || !cs || !bs->isString() || !cs->isString()) {
        res.error = "missing schema field";
        return res;
    }
    if (bs->str != cs->str) {
        res.error = "schema mismatch: '" + bs->str + "' vs '" +
                    cs->str + "'";
        return res;
    }
    res.schema = bs->str;

    if (res.schema == report::runReportSchema)
        compareRunReports(cmp, baseline, current);
    else if (res.schema == report::benchReportSchema)
        compareBenchReports(cmp, baseline, current);
    else
        res.error = "unsupported schema '" + res.schema + "'";
    return res;
}

int
exitCodeFor(const Result &r)
{
    if (!r.error.empty())
        return 2;
    return r.regressed ? 1 : 0;
}

namespace {

/** Emit exact integers as integers, everything else as double. */
void
numberField(report::JsonWriter &w, const std::string &key, double v)
{
    if (v >= 0.0 && v < 9.2e18 && v == std::floor(v))
        w.field(key, static_cast<std::uint64_t>(v));
    else
        w.field(key, v);
}

} // namespace

void
writeCompareReport(report::JsonWriter &w,
                   const std::string &baseline_path,
                   const std::string &current_path, const Options &opt,
                   const Result &r)
{
    report::beginReport(w, report::compareReportSchema,
                        report::compareReportVersion);
    w.field("baseline", baseline_path);
    w.field("current", current_path);
    w.field("compared_schema", r.schema);
    w.beginObject("thresholds");
    w.field("rel", opt.relTolerance);
    w.field("abs", opt.absTolerance);
    w.endObject();
    w.beginObject("summary");
    w.field("ok", r.ok());
    w.field("regressed", static_cast<std::uint64_t>(r.regressed));
    w.field("improved", static_cast<std::uint64_t>(r.improved));
    w.field("unchanged", static_cast<std::uint64_t>(r.unchanged));
    if (!r.error.empty())
        w.field("error", r.error);
    w.endObject();
    w.beginArray("comparisons");
    for (const Delta &d : r.deltas) {
        w.beginObject();
        w.field("metric", d.metric);
        numberField(w, "baseline", d.baseline);
        numberField(w, "current", d.current);
        w.field("ratio", std::isfinite(d.ratio) ? d.ratio : -1.0);
        w.field("status", statusName(d.status));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace compare
} // namespace fsencr
