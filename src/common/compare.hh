/**
 * @file
 * Report comparison: the engine behind `fsencr-compare`.
 *
 * Diffs two machine-readable reports (schema fsencr-run-report or
 * fsencr-bench-report, v1 or v2) metric by metric with configurable
 * relative/absolute thresholds, classifies each as improved /
 * unchanged / regressed, and renders a versioned
 * `fsencr-compare-report` JSON. The simulator is deterministic, so an
 * identical-seed rerun compares clean at any threshold; the gate
 * exists to catch modeling regressions, not noise.
 *
 * Lives in the common library (not the tool) so tests can drive the
 * classification and exit-code logic directly.
 */

#ifndef FSENCR_COMMON_COMPARE_HH
#define FSENCR_COMMON_COMPARE_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/report.hh"

namespace fsencr {
namespace compare {

/** Regression thresholds. A metric regresses when
 *  current > baseline + max(absTolerance, baseline * relTolerance);
 *  the mirror-image bound classifies an improvement. All compared
 *  metrics are lower-is-better (ticks, NVM traffic, latency). */
struct Options
{
    double relTolerance = 0.05;
    double absTolerance = 0.0;
};

enum class Status {
    Improved,
    Unchanged,
    Regressed,
    /** Reported for context, never gates (e.g. per-interval series
     *  whose boundaries legitimately shift with total ticks). */
    Info,
};

const char *statusName(Status s);

/** One compared metric. */
struct Delta
{
    std::string metric;
    double baseline = 0.0;
    double current = 0.0;
    /** current / baseline; 1.0 when both are zero. */
    double ratio = 1.0;
    Status status = Status::Unchanged;
};

/** Outcome of one comparison. */
struct Result
{
    /** Schema of the compared documents. */
    std::string schema;
    /** Non-empty on structural mismatch (different schemas, missing
     *  rows, different workload/scheme configs...). */
    std::string error;
    unsigned regressed = 0;
    unsigned improved = 0;
    unsigned unchanged = 0;
    std::vector<Delta> deltas;

    bool ok() const { return error.empty() && regressed == 0; }
};

/**
 * Compare two parsed reports. Both must carry the same `schema`
 * field; run reports gate on result ticks/NVM traffic, attribution
 * components and latency percentiles, bench reports on every
 * (row, scheme) cell. v2 `timeseries` sections are compared as Info
 * entries when both sides have them.
 */
Result compareReports(const json::Value &baseline,
                      const json::Value &current, const Options &opt);

/** CLI exit code: 0 clean, 1 regression, 2 structural error. */
int exitCodeFor(const Result &r);

/** Render a versioned fsencr-compare-report document. */
void writeCompareReport(report::JsonWriter &w,
                        const std::string &baseline_path,
                        const std::string &current_path,
                        const Options &opt, const Result &r);

} // namespace compare
} // namespace fsencr

#endif // FSENCR_COMMON_COMPARE_HH
