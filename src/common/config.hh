/**
 * @file
 * Simulation configuration mirroring Table III of the paper.
 *
 * Every knob an experiment sweeps (metadata cache size, OTT latency,
 * Osiris stop-loss, ...) lives here so that benches construct a SimConfig,
 * tweak fields, and build a System from it.
 */

#ifndef FSENCR_COMMON_CONFIG_HH
#define FSENCR_COMMON_CONFIG_HH

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fsencr {

/** Which protection scheme a System is built with. */
enum class Scheme {
    /** Plain ext4-dax, no encryption whatsoever. */
    NoEncryption,
    /** ext4-dax + counter-mode memory encryption + Merkle tree. */
    BaselineSecurity,
    /** BaselineSecurity + hardware-assisted filesystem encryption. */
    FsEncr,
    /** ext4-dax + eCryptfs-style software filesystem encryption. */
    SoftwareEncryption,
};

/** Human-readable scheme name for reports. */
inline const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::NoEncryption: return "ext4-dax-no-encryption";
      case Scheme::BaselineSecurity: return "baseline-security";
      case Scheme::FsEncr: return "fsencr";
      case Scheme::SoftwareEncryption: return "software-encryption";
    }
    return "unknown";
}

/**
 * Where the persistence boundary sits (Section III-H vs. the eADR
 * follow-on work, PAPERS.md):
 *
 *  - Adr: the boundary is the memory controller's write-pending
 *    queue. Cached state is volatile; durability needs clwb+fence and
 *    the Osiris stop-loss cadence bounds counter lag. The default,
 *    bit-identical to the pre-eADR simulator.
 *  - Eadr: the boundary covers the cache hierarchy and the WPQ. At
 *    power loss a backup-power flush drains dirty CPU-cache lines,
 *    dirty security-metadata lines and the open-tunnel table into the
 *    NVM image; stop-loss persists are off (recovery is a verify-only
 *    Osiris pass) and clwb/fence become near-free.
 */
enum class PersistDomain { Adr, Eadr };

/** Human-readable persistence-domain name for reports and CLIs. */
inline const char *
persistDomainName(PersistDomain d)
{
    switch (d) {
      case PersistDomain::Adr: return "adr";
      case PersistDomain::Eadr: return "eadr";
    }
    return "unknown";
}

/** Parse a `--persist-domain` spec; false on anything but adr/eadr. */
inline bool
parsePersistDomain(const std::string &spec, PersistDomain &out)
{
    if (spec == "adr") {
        out = PersistDomain::Adr;
    } else if (spec == "eadr") {
        out = PersistDomain::Eadr;
    } else {
        return false;
    }
    return true;
}

/** Parameters of one cache level. */
struct CacheParams
{
    std::size_t sizeBytes;
    unsigned assoc;
    Cycles latency; // lookup latency in CPU cycles
};

/** DDR-attached PCM timing parameters (Table III). */
struct PcmParams
{
    std::uint64_t capacityBytes = 16ull << 30;
    unsigned channels = 1;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    std::size_t rowBufferBytes = 1024;
    Tick readLatency = 60 * tickPerNs;   // PCM array read
    Tick writeLatency = 150 * tickPerNs; // PCM cell write
    Tick tRCD = 55 * tickPerNs;
    Tick tCL = Tick(12.5 * tickPerNs);
    Tick tBURST = 5 * tickPerNs;
    Tick tWR = 150 * tickPerNs;
    /** Latency to accept a posted (non-persist) write into the MC
     *  write queue. */
    Tick writeAcceptLatency = 5 * tickPerNs;
    /** Write-pending-queue depth: accepts stall when this many writes
     *  are outstanding (ADR durability = WPQ accept). */
    unsigned writeQueueDepth = 64;
    /**
     * Controller issue width over the banked device: how many
     * independent request chains the secure memory controller may
     * have in flight at once. 1 (the default) is the legacy strictly
     * serial model and is bit-identical to the pre-banked simulator;
     * >1 lets independent metadata chains (MECB vs. FECB walks)
     * overlap across device banks.
     */
    unsigned mcBanks = 1;
    /** MSHR count: outstanding-request registers backing the issue
     *  width. The effective overlap width is min(mcBanks, mcMshrs). */
    unsigned mcMshrs = 8;
    /**
     * Shard the secure datapath: partition the metadata region into
     * this many per-shard Merkle subtrees, each shard with its own
     * metadata cache, OTT slice, MSHR pool and bank-partition
     * affinity, behind one McRouter. 1 (the default) runs the single
     * legacy controller and is bit-identical to the unsharded
     * simulator. Per-shard values of mcBanks/mcMshrs are NOT divided:
     * each shard gets the full configured width.
     */
    unsigned mcShards = 1;
};

/** Encryption-related parameters (Table III, Section III). */
struct SecParams
{
    Tick aesLatency = 40 * tickPerNs;
    std::size_t metadataCacheBytes = 512 << 10;
    unsigned metadataCacheAssoc = 8;
    /** Metadata-cache lookup latency (CPU cycles). */
    Cycles metadataCacheLatency = 3;
    /** Pad-XOR latency on the read return path (CPU cycles). */
    Cycles xorLatency = 1;
    /** OTT crash consistency: log inserts to the spill region
     *  immediately (option 1) vs. rely on a backup-power flush
     *  (option 2). */
    bool ottLogImmediately = true;
    bool ottBackupPowerFlush = false;
    /** Post-crash metadata recovery scheme: a full Osiris sweep over
     *  every written line, or Anubis-style shadow tracking (Zubair &
     *  Awad, ISCA'19 — cited in Section III-H) that logs which counter
     *  blocks were dirty on-chip so recovery probes only those. */
    enum class Recovery { OsirisSweep, AnubisShadow };
    Recovery recovery = Recovery::OsirisSweep;

    /** Partition the metadata cache per metadata kind (Section III-D)
     *  instead of sharing it; shares are relative weights. */
    bool metadataCachePartitioned = false;
    unsigned mecbShare = 2;
    unsigned fecbShare = 1;
    unsigned merkleShare = 1;
    unsigned merkleArity = 8;
    /** OTT geometry: 8 banks x 128 fully-associative entries. */
    unsigned ottEntries = 1024;
    Cycles ottLatency = 20;
    /** Osiris stop-loss: persist a counter every N-th update. */
    unsigned osirisStopLoss = 4;
    /** FECB counters persist every (stopLoss * this) updates: file
     *  counters tolerate a larger lag because recovery probes the
     *  (memory, file) lag pair two-dimensionally. Halves FsEncr's
     *  metadata write amplification. */
    unsigned fecbStopLossFactor = 4;
    /** Bytes reserved for the encrypted OTT spill hash table. */
    std::size_t ottSpillBytes = 1 << 20;

    /**
     * In-controller audit-log ride-along (FOX-style): append one
     * integrity-covered record per DAX access that matches the filter.
     * Off by default — with auditing off, no audit region is
     * provisioned and timing is bit-identical to the unaudited model.
     */
    bool auditEnabled = false;
    /** GroupIDs to audit; empty means "all groups". */
    std::vector<std::uint32_t> auditGroups;
    /** Write-combining buffer depth in records (2 records per line). */
    unsigned auditWcbRecords = 8;

    /** Persistence boundary (see PersistDomain). Adr is the default
     *  and leaves every tick bit-identical to the pre-eADR model. */
    PersistDomain persistDomain = PersistDomain::Adr;
    /** eADR backup-power energy budget in 64B lines (0 = unbounded):
     *  the crash-time flush stops after draining this many lines, the
     *  rest of the dirty state is lost. FaultInjector's
     *  PartialBackupFlush models the same truncation as a seeded
     *  fault instead of a static budget. */
    std::uint64_t backupFlushBudgetLines = 0;
};

/** Software-encryption (eCryptfs-like) baseline parameters. */
struct SwEncParams
{
    /** Decrypted page-cache capacity in 4KB pages (the OS page cache;
     *  16MB here — small machines thrash on large working sets). */
    std::size_t pageCachePages = 4096;
    /** Software AES cost per 16B block (AES-NI kernel path). */
    Tick swAesPerBlock = 6 * tickPerNs;
    /** Kernel crossing + fault handling cost per page fill. */
    Tick faultOverhead = 2000 * tickPerNs;
    /** memcpy cost per 64B line when copying page to the page cache. */
    Tick copyPerLine = 4 * tickPerNs;
    /** msync(2) syscall overhead: without DAX, pmem_persist degrades
     *  to msync, which re-encrypts each dirty 4KB page. */
    Tick msyncSyscall = 1000 * tickPerNs;
};

/** CPU-side parameters. */
struct CpuParams
{
    unsigned numCores = 2;
    Tick cyclePeriod = 1 * tickPerNs; // 1 GHz
    CacheParams l1{32 << 10, 8, 2};
    CacheParams l2{512 << 10, 8, 20};
    CacheParams l3{4 << 20, 64, 32};
    unsigned tlbEntries = 64;
    /** Minor page fault handling cost (kernel entry/exit + PTE setup). */
    Cycles pageFaultCycles = 1500;
};

/** Physical memory layout of the simulated machine. */
struct LayoutParams
{
    /** General-purpose memory: [0, generalBytes). */
    std::uint64_t generalBytes = 10ull << 30;
    /** Reserved security-metadata carve-out: [metaBase, pmemBase). */
    std::uint64_t metaBase = 10ull << 30;
    /** Persistent region (memmap=4G!12G): [pmemBase, pmemBase+pmemBytes). */
    std::uint64_t pmemBase = 12ull << 30;
    std::uint64_t pmemBytes = 4ull << 30;
    /**
     * Append-only audit-log region carved out of the metadata
     * carve-out, behind the OTT spill region and inside the Merkle
     * leaf range so records are integrity-covered. 0 (the default)
     * provisions nothing and leaves the Merkle geometry — and thus
     * every tick — bit-identical to the unaudited layout.
     */
    std::uint64_t auditLogBytes = 0;
};

/** Top-level simulation configuration. */
struct SimConfig
{
    Scheme scheme = Scheme::FsEncr;
    CpuParams cpu;
    PcmParams pcm;
    SecParams sec;
    SwEncParams swenc;
    LayoutParams layout;
    std::uint64_t seed = 42;

    /**
     * Fast-forward execution: collapse L1-hit runs into single bulk
     * clock updates (tick-exact against the precise model; see
     * docs/ARCHITECTURE.md, "Fast-forward & trace replay"). Off by
     * default — the exact model remains the reference.
     */
    bool fastForward = false;

    /**
     * Contention profiling: per-request critical-path decomposition
     * (service vs. wait-for-bank/MSHR/Merkle-root/WPQ), per-resource
     * occupancy accounting and a ranked bottleneck report section
     * (see docs/ARCHITECTURE.md, "Contention profiling"). Observation
     * only — off (the default) is bit-identical in ticks, NVM traffic
     * and report bytes to the unprofiled simulator.
     */
    bool profile = false;

    /** Ticks per CPU cycle. */
    Tick cyclePeriod() const { return cpu.cyclePeriod; }

    bool
    hasMemoryEncryption() const
    {
        return scheme == Scheme::BaselineSecurity ||
               scheme == Scheme::FsEncr;
    }

    bool hasFsEncr() const { return scheme == Scheme::FsEncr; }

    /** Extended persistence domain (cache hierarchy + WPQ)? */
    bool
    isEadr() const
    {
        return sec.persistDomain == PersistDomain::Eadr;
    }
    bool
    hasSoftwareEncryption() const
    {
        return scheme == Scheme::SoftwareEncryption;
    }
};

/** Default audit-log region size when `--audit-filter` is given
 *  without an explicit layout override (16K lines = 32K records). */
constexpr std::uint64_t auditLogDefaultBytes = 1ull << 20;

/**
 * Parse an `--audit-filter` spec into @p sec: "all" audits every
 * group; a comma-separated GroupID list audits only those groups.
 * Shared by fsencr-sim, fsencr-auditq, fsencr-crashtest and the bench
 * harness so the flag means the same thing everywhere.
 *
 * @return false on a malformed spec (sec is left unchanged)
 */
inline bool
parseAuditFilter(const std::string &spec, SecParams &sec)
{
    std::vector<std::uint32_t> groups;
    if (spec != "all") {
        std::size_t pos = 0;
        while (pos <= spec.size()) {
            std::size_t comma = spec.find(',', pos);
            std::string item =
                comma == std::string::npos
                    ? spec.substr(pos)
                    : spec.substr(pos, comma - pos);
            char *end = nullptr;
            unsigned long gid = std::strtoul(item.c_str(), &end, 10);
            if (item.empty() || !end || *end != '\0')
                return false;
            groups.push_back(static_cast<std::uint32_t>(gid));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (groups.empty())
            return false;
    }
    sec.auditEnabled = true;
    sec.auditGroups = std::move(groups);
    return true;
}

/**
 * The memory-controller CLI knob bundle: every tool that exposes the
 * secure-datapath flags (--mc-banks/--mc-mshrs/--mc-shards/
 * --audit-filter/--persist-domain/--backup-flush-budget) parses them
 * into one of these via cli.hh's addMcOptions() and folds it into its
 * SimConfig with applyTo(). One registration helper, one validation
 * path, identical semantics in fsencr-sim, fsencr-crashtest and every
 * bench suite.
 */
struct McParams
{
    unsigned banks = 1;
    unsigned mshrs = 8;
    unsigned shards = 1;
    /** --audit-filter spec; empty = auditing off. */
    std::string auditFilter;
    /** --persist-domain spec: "adr" (default) or "eadr". */
    std::string persistDomain = "adr";
    /** --backup-flush-budget in 64B lines (0 = unbounded). */
    std::uint64_t backupFlushBudgetLines = 0;

    /**
     * Validate and fold into @p cfg. On a malformed audit filter or
     * persist-domain spec, @p err names the offending flag and cfg is
     * left unchanged.
     */
    bool
    applyTo(SimConfig &cfg, std::string &err) const
    {
        SecParams sec = cfg.sec;
        if (!auditFilter.empty() && auditFilter != "off" &&
            !parseAuditFilter(auditFilter, sec)) {
            err = "--audit-filter: bad spec '" + auditFilter + "'";
            return false;
        }
        if (!parsePersistDomain(persistDomain, sec.persistDomain)) {
            err = "--persist-domain: bad domain '" + persistDomain +
                  "' (adr|eadr)";
            return false;
        }
        if (shards == 0) {
            err = "--mc-shards: must be >= 1";
            return false;
        }
        sec.backupFlushBudgetLines = backupFlushBudgetLines;
        cfg.sec = sec;
        // Consumers that build a PhysLayout directly (trace replay)
        // need the audit carve-out resolved here, not just in System.
        if (sec.auditEnabled && cfg.layout.auditLogBytes == 0)
            cfg.layout.auditLogBytes = auditLogDefaultBytes;
        cfg.pcm.mcBanks = banks ? banks : 1;
        cfg.pcm.mcMshrs = mshrs ? mshrs : 1;
        cfg.pcm.mcShards = shards;
        return true;
    }
};

/** Render the active audit filter back into its CLI spelling. */
inline std::string
auditFilterSpec(const SecParams &sec)
{
    if (!sec.auditEnabled)
        return "off";
    if (sec.auditGroups.empty())
        return "all";
    std::string out;
    for (std::uint32_t gid : sec.auditGroups) {
        if (!out.empty())
            out += ',';
        out += std::to_string(gid);
    }
    return out;
}

} // namespace fsencr

#endif // FSENCR_COMMON_CONFIG_HH
