/**
 * @file
 * Minimal header-only JSON parser (objects, arrays, strings, numbers,
 * booleans, null). Just enough to validate the simulator's own JSON
 * emissions (stat dumps, run reports, trace-event exports) in tests
 * and to re-import trace files — not a general-purpose library.
 *
 * Numbers keep their raw text so 64-bit tick counts survive exactly
 * (doubles would round above 2^53).
 */

#ifndef FSENCR_COMMON_JSON_HH
#define FSENCR_COMMON_JSON_HH

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace fsencr {
namespace json {

/** A parsed JSON value. */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string literal; //!< raw number text (exact integers)
    std::string str;
    std::vector<Value> array;
    /** Insertion-ordered members. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Member lookup (objects only). @return nullptr if absent */
    const Value *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    std::uint64_t
    asU64() const
    {
        if (!literal.empty())
            return std::strtoull(literal.c_str(), nullptr, 10);
        return static_cast<std::uint64_t>(number);
    }

    std::int64_t
    asI64() const
    {
        if (!literal.empty())
            return std::strtoll(literal.c_str(), nullptr, 10);
        return static_cast<std::int64_t>(number);
    }
};

namespace detail {

class Parser
{
  public:
    Parser(const char *p, const char *end) : p_(p), end_(end) {}

    bool
    parse(Value &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return p_ == end_; // no trailing garbage
    }

  private:
    void
    skipWs()
    {
        while (p_ != end_ &&
               (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *word)
    {
        const char *q = p_;
        for (; *word; ++word, ++q)
            if (q == end_ || *q != *word)
                return false;
        p_ = q;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (p_ == end_)
            return false;
        switch (*p_) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.type = Value::Type::String;
            return parseString(out.str);
          case 't':
            out.type = Value::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = Value::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = Value::Type::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out)
    {
        out.type = Value::Type::Object;
        ++p_; // '{'
        skipWs();
        if (p_ != end_ && *p_ == '}') { ++p_; return true; }
        for (;;) {
            skipWs();
            std::string key;
            if (p_ == end_ || *p_ != '"' || !parseString(key))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':')
                return false;
            ++p_;
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == ',') { ++p_; continue; }
            if (*p_ == '}') { ++p_; return true; }
            return false;
        }
    }

    bool
    parseArray(Value &out)
    {
        out.type = Value::Type::Array;
        ++p_; // '['
        skipWs();
        if (p_ != end_ && *p_ == ']') { ++p_; return true; }
        for (;;) {
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == ',') { ++p_; continue; }
            if (*p_ == ']') { ++p_; return true; }
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        ++p_; // opening quote
        out.clear();
        while (p_ != end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (p_ == end_)
                return false;
            char e = *p_++;
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  // \uXXXX: decode the BMP code point as UTF-8.
                  if (end_ - p_ < 4)
                      return false;
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = *p_++;
                      cp <<= 4;
                      if (h >= '0' && h <= '9') cp |= h - '0';
                      else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
                      else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
                      else return false;
                  }
                  if (cp < 0x80) {
                      out.push_back(static_cast<char>(cp));
                  } else if (cp < 0x800) {
                      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3f)));
                  } else {
                      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                      out.push_back(static_cast<char>(
                          0x80 | ((cp >> 6) & 0x3f)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3f)));
                  }
                  break;
              }
              default: return false;
            }
        }
        if (p_ == end_)
            return false;
        ++p_; // closing quote
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        const char *start = p_;
        if (p_ != end_ && (*p_ == '-' || *p_ == '+'))
            ++p_;
        bool digits = false;
        while (p_ != end_ &&
               (std::isdigit(static_cast<unsigned char>(*p_)) ||
                *p_ == '.' || *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                *p_ == '+')) {
            if (std::isdigit(static_cast<unsigned char>(*p_)))
                digits = true;
            ++p_;
        }
        if (!digits)
            return false;
        out.type = Value::Type::Number;
        out.literal.assign(start, p_);
        out.number = std::strtod(out.literal.c_str(), nullptr);
        return true;
    }

    const char *p_;
    const char *end_;
};

} // namespace detail

/** Parse a complete JSON document. @return true on success */
inline bool
parse(const std::string &text, Value &out)
{
    detail::Parser p(text.data(), text.data() + text.size());
    out = Value{};
    return p.parse(out);
}

} // namespace json
} // namespace fsencr

#endif // FSENCR_COMMON_JSON_HH
