#include "common/logging.hh"

#include <cstdarg>
#include <map>
#include <mutex>
#include <vector>

namespace fsencr {
namespace detail {

namespace {

// The bench harness runs simulations on several host threads, so the
// suppression table must be its own lock domain.
std::mutex warnMutex;
std::map<std::string, std::uint64_t> &
warnCounts()
{
    static std::map<std::string, std::uint64_t> counts;
    return counts;
}

} // namespace

bool
noteWarning(const char *key, std::uint64_t limit, bool *last)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    std::uint64_t &count = warnCounts()[key];
    ++count;
    if (last)
        *last = (count == limit);
    return count <= limit;
}

void
resetWarningCounts()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    warnCounts().clear();
}

std::string
formatMessage(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap_copy);
    va_end(ap_copy);
    return std::string(buf.data());
}

} // namespace detail
} // namespace fsencr
