#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace fsencr {
namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap_copy);
    va_end(ap_copy);
    return std::string(buf.data());
}

} // namespace detail
} // namespace fsencr
