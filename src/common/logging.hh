/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal simulator bug; never the user's fault. Aborts.
 * fatal()  — the simulation cannot continue due to a user/config error.
 * warn()   — something is suspicious but the simulation continues.
 * inform() — plain status output.
 *
 * warnOnce() and warnLimited() are warn() with per-call-site
 * suppression (keyed by format string) so a warning fired on a hot
 * per-access path cannot flood stderr in million-op runs.
 */

#ifndef FSENCR_COMMON_LOGGING_HH
#define FSENCR_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fsencr {

/** Thrown by fatal() so tests can observe user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic() so tests can observe simulator bugs. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Count an occurrence of the warning keyed by @p key.
 *
 * @param last set to true when this occurrence is exactly the
 *             limit-th one (caller should note the suppression)
 * @return true while the warning should still be printed
 */
bool noteWarning(const char *key, std::uint64_t limit, bool *last);

/** Forget all suppression counts (tests only). */
void resetWarningCounts();

} // namespace detail

/** Report an internal simulator bug and abort via exception. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

/** Report an unrecoverable user-level error via exception. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

/** Report a suspicious condition and continue. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/**
 * warn(), but at most @p limit times per call site (keyed by the
 * format string). The final printed occurrence carries a note that
 * further repeats are suppressed.
 */
template <typename... Args>
void
warnLimited(std::uint64_t limit, const char *fmt, Args... args)
{
    bool last = false;
    if (!detail::noteWarning(fmt, limit, &last))
        return;
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "warn: %s%s\n", msg.c_str(),
                 last ? " (further warnings of this kind suppressed)"
                      : "");
}

/** warn(), but only the first time this call site fires. */
template <typename... Args>
void
warnOnce(const char *fmt, Args... args)
{
    warnLimited(1, fmt, args...);
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace fsencr

#endif // FSENCR_COMMON_LOGGING_HH
