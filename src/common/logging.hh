/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal simulator bug; never the user's fault. Aborts.
 * fatal()  — the simulation cannot continue due to a user/config error.
 * warn()   — something is suspicious but the simulation continues.
 * inform() — plain status output.
 */

#ifndef FSENCR_COMMON_LOGGING_HH
#define FSENCR_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fsencr {

/** Thrown by fatal() so tests can observe user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic() so tests can observe simulator bugs. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Report an internal simulator bug and abort via exception. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

/** Report an unrecoverable user-level error via exception. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

/** Report a suspicious condition and continue. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace fsencr

#endif // FSENCR_COMMON_LOGGING_HH
