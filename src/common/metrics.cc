#include "common/metrics.hh"

#include <algorithm>
#include <array>

namespace fsencr {
namespace metrics {

void
LabeledCounter::add(const std::string &label, std::uint64_t delta)
{
    total_ += delta;
    auto it = values_.find(label);
    if (it != values_.end()) {
        it->second.value += delta;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return;
    }
    if (values_.size() >= maxLabels_) {
        // Fold the least-recently-updated label into __other__.
        const std::string &victim = lru_.back();
        auto vit = values_.find(victim);
        other_ += vit->second.value;
        ++evictions_;
        values_.erase(vit);
        lru_.pop_back();
    }
    lru_.push_front(label);
    values_.emplace(label, Slot{delta, lru_.begin()});
}

void
LabeledCounter::add(std::uint64_t label, std::uint64_t delta)
{
    // Small integer labels (cache sets, Merkle levels, dax flags)
    // dominate the hot paths; a static table avoids re-formatting the
    // same handful of strings on every probe.
    static const std::array<std::string, 64> small = [] {
        std::array<std::string, 64> t;
        for (std::size_t i = 0; i < t.size(); ++i)
            t[i] = std::to_string(i);
        return t;
    }();
    if (label < small.size())
        add(small[label], delta);
    else
        add(std::to_string(label), delta);
}

std::uint64_t
LabeledCounter::value(const std::string &label) const
{
    auto it = values_.find(label);
    return it == values_.end() ? 0 : it->second.value;
}

std::vector<std::pair<std::string, std::uint64_t>>
LabeledCounter::sorted() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(values_.size() + 1);
    for (const auto &[label, slot] : values_)
        out.emplace_back(label, slot.value);
    std::sort(out.begin(), out.end());
    if (other_)
        out.emplace_back(otherLabel, other_);
    return out;
}

LabeledCounter &
Registry::counter(const std::string &name, const std::string &label_key,
                  std::size_t max_labels)
{
    auto it = families_.find(name);
    if (it != families_.end())
        return *it->second;
    auto fam = std::make_unique<LabeledCounter>(name, label_key,
                                                max_labels);
    LabeledCounter &ref = *fam;
    families_.emplace(name, std::move(fam));
    return ref;
}

void
Registry::snapshot(std::map<std::string, std::uint64_t> &out) const
{
    out.clear();
    if (root_)
        root_->visitScalars(
            [&out](const std::string &path, std::uint64_t v) {
                out[path] = v;
            });
    for (const auto &[name, fam] : families_) {
        for (const auto &[label, v] : fam->sorted())
            out[name + "{" + fam->labelKey() + "=" + label + "}"] = v;
    }
}

Sampler::Sampler(const Registry &reg, Tick interval, Tick start)
    : reg_(reg), interval_(interval ? interval : 1),
      next_(start + (interval ? interval : 1)), lastT_(start)
{
    reg_.snapshot(last_);
}

void
Sampler::takeSample(Tick now)
{
    std::map<std::string, std::uint64_t> cur;
    reg_.snapshot(cur);

    Interval iv;
    iv.t0 = lastT_;
    iv.t1 = now;
    for (const auto &[name, v] : cur) {
        auto it = last_.find(name);
        std::uint64_t prev = it == last_.end() ? 0 : it->second;
        if (v != prev)
            iv.deltas[name] = static_cast<std::int64_t>(v) -
                              static_cast<std::int64_t>(prev);
    }
    // A metric present before but absent now (can't happen for
    // scalars; a family never drops labels without re-adding them to
    // __other__, which snapshot() includes) would otherwise leak its
    // last value — cover it anyway for exactness.
    for (const auto &[name, prev] : last_) {
        if (prev && !cur.count(name))
            iv.deltas[name] = -static_cast<std::int64_t>(prev);
    }

    intervals_.push_back(std::move(iv));
    last_ = std::move(cur);
    lastT_ = now;
    next_ = now + interval_;
}

void
Sampler::finish(Tick now)
{
    takeSample(now);
    if (intervals_.back().deltas.empty() &&
        intervals_.back().t0 == intervals_.back().t1)
        intervals_.pop_back();
}

namespace {

/** RFC 4180 field quoting: labels may carry commas, quotes or
 *  newlines (e.g. file.bytes{file="a,b.log"}), which would otherwise
 *  silently shift every column to the right of them. */
void
csvField(std::ostream &os, const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos) {
        os << s;
        return;
    }
    os << '"';
    for (char c : s) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

} // namespace

void
writeCsv(std::ostream &os, const Sampler &sampler)
{
    os << "t0,t1,metric,delta\n";
    for (const Interval &iv : sampler.intervals())
        for (const auto &[name, delta] : iv.deltas) {
            os << iv.t0 << ',' << iv.t1 << ',';
            csvField(os, name);
            os << ',' << delta << '\n';
        }
}

namespace {

/** Prometheus metric names allow [a-zA-Z0-9_:] only. */
std::string
promName(const std::string &name)
{
    std::string out = "fsencr_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

void
writePrometheus(std::ostream &os, const Registry &reg)
{
    if (const stats::StatGroup *root = reg.statRoot()) {
        root->visitScalars(
            [&os](const std::string &path, std::uint64_t v) {
                os << promName(path) << ' ' << v << '\n';
            });
    }
    for (const auto &[name, fam] : reg.families()) {
        std::string base = promName(name);
        os << "# TYPE " << base << " counter\n";
        for (const auto &[label, v] : fam->sorted())
            os << base << '{' << fam->labelKey() << "=\"" << label
               << "\"} " << v << '\n';
    }
}

} // namespace metrics
} // namespace fsencr
