/**
 * @file
 * Metrics: labeled hot-spot counters and interval time-series
 * sampling, layered on the stats::StatGroup tree.
 *
 * Three cooperating pieces:
 *
 *  - metrics::LabeledCounter — one counter *family* whose value is
 *    split by a label (`ott.lookup{set=12}`, `merkle.verify{level=2}`,
 *    `file.bytes{file=4:7}`). Label cardinality is bounded: when a new
 *    label would exceed the cap, the least-recently-updated label is
 *    folded into an `__other__` bucket, so a pathological workload
 *    (millions of files) cannot blow up host memory or report size.
 *    The family total (labels + other) is always exact.
 *
 *  - metrics::Registry — owns the labeled families and points at a
 *    StatGroup root; snapshot() flattens both into one deterministic
 *    `name -> value` map (`system.attribution.ott_lookup`,
 *    `ott.lookup{set=12}`, ...).
 *
 *  - metrics::Sampler — snapshots the registry whenever the simulated
 *    clock crosses the next interval boundary (System::advance calls
 *    onAdvance), producing per-interval *deltas*. All arithmetic is
 *    integral, so the interval deltas of any counter sum exactly to
 *    its final aggregate — the same tick-exactness contract as the
 *    cycle attribution (PR 2).
 *
 * Like the tracer, the whole layer is observation-only: components
 * hold a `Registry *` that is nullptr when metrics are disabled, and
 * no probe ever charges simulated time. With sampling disabled,
 * modeled ticks and NVM traffic are bit-identical to a build without
 * this file.
 */

#ifndef FSENCR_COMMON_METRICS_HH
#define FSENCR_COMMON_METRICS_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fsencr {
namespace metrics {

/** Label value every evicted label folds into. */
constexpr const char *otherLabel = "__other__";

/** A counter family split by one label, with bounded cardinality. */
class LabeledCounter
{
  public:
    /**
     * @param name family name, e.g. "ott.lookup"
     * @param label_key label name, e.g. "set"
     * @param max_labels cardinality cap (evict-to-other beyond it)
     */
    LabeledCounter(std::string name, std::string label_key,
                   std::size_t max_labels)
        : name_(std::move(name)), labelKey_(std::move(label_key)),
          maxLabels_(max_labels ? max_labels : 1)
    {}

    /** Count @p delta against a label value. */
    void add(const std::string &label, std::uint64_t delta = 1);
    void add(std::uint64_t label, std::uint64_t delta = 1);

    const std::string &name() const { return name_; }
    const std::string &labelKey() const { return labelKey_; }
    std::size_t maxLabels() const { return maxLabels_; }

    /** Current value of one label (0 if absent/evicted). */
    std::uint64_t value(const std::string &label) const;
    /** Sum folded into the __other__ bucket by evictions. */
    std::uint64_t otherValue() const { return other_; }
    /** Number of labels evicted into __other__ so far. */
    std::uint64_t evictions() const { return evictions_; }
    /** Distinct live labels (excluding __other__). */
    std::size_t cardinality() const { return values_.size(); }
    /** Family total: every add() ever made, labels + other. */
    std::uint64_t total() const { return total_; }

    /** (label, value) pairs sorted by label, for deterministic
     *  export; __other__ is appended last when non-zero. */
    std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

  private:
    struct Slot
    {
        std::uint64_t value = 0;
        std::list<std::string>::iterator lruIt;
    };

    std::string name_;
    std::string labelKey_;
    std::size_t maxLabels_;
    std::unordered_map<std::string, Slot> values_;
    /** Front = most recently updated. */
    std::list<std::string> lru_;
    std::uint64_t other_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t total_ = 0;
};

/** The metrics registry: labeled families + the stat tree root. */
class Registry
{
  public:
    /** Attach the stat tree snapshots flatten (may be nullptr). */
    void setStatRoot(const stats::StatGroup *root) { root_ = root; }
    const stats::StatGroup *statRoot() const { return root_; }

    /**
     * Get-or-create a family. Pointers remain stable for the life of
     * the registry, so components cache them at setMetrics() time and
     * a probe is one pointer test plus a hash update.
     */
    LabeledCounter &counter(const std::string &name,
                            const std::string &label_key,
                            std::size_t max_labels = 64);

    /** Families in name order. */
    const std::map<std::string, std::unique_ptr<LabeledCounter>> &
    families() const
    {
        return families_;
    }

    /**
     * Flatten the stat tree (every scalar, dotted path) and every
     * labeled family (`name{key=value}`) into one deterministic map.
     */
    void snapshot(std::map<std::string, std::uint64_t> &out) const;

  private:
    const stats::StatGroup *root_ = nullptr;
    std::map<std::string, std::unique_ptr<LabeledCounter>> families_;
};

/** One sampling interval: counter deltas over (t0, t1]. */
struct Interval
{
    Tick t0 = 0;
    Tick t1 = 0;
    /** Only metrics whose value changed within the interval; deltas
     *  are signed because an LRU eviction can rebalance a labeled
     *  value into __other__ (the family total stays exact). */
    std::map<std::string, std::int64_t> deltas;
};

/**
 * Interval sampler. System::advance() feeds it the clock; whenever
 * the clock reaches the next boundary the whole registry is
 * snapshotted and the delta against the previous snapshot recorded.
 * Boundaries are "first advance at or past lastT + interval", so
 * intervals are at least `interval` ticks long and exactly tile the
 * run: sum(deltas) over all intervals == final aggregate - initial.
 */
class Sampler
{
  public:
    /**
     * @param reg registry to snapshot (must outlive the sampler)
     * @param interval sampling interval in ticks (>= 1)
     * @param start current simulated time (snapshot baseline)
     */
    Sampler(const Registry &reg, Tick interval, Tick start = 0);

    /** Clock hook: cheap boundary test, sample on crossing. */
    void
    onAdvance(Tick now)
    {
        if (now >= next_)
            takeSample(now);
    }

    /**
     * Close the trailing partial interval at end of run. Idempotent:
     * an empty residual produces no interval.
     */
    void finish(Tick now);

    Tick interval() const { return interval_; }
    const std::vector<Interval> &intervals() const { return intervals_; }

  private:
    void takeSample(Tick now);

    const Registry &reg_;
    Tick interval_;
    Tick next_;
    Tick lastT_;
    std::map<std::string, std::uint64_t> last_;
    std::vector<Interval> intervals_;
};

/**
 * Long-format CSV of the sampled time series (`t0,t1,metric,delta`
 * with a header row) for ad-hoc plotting.
 */
void writeCsv(std::ostream &os, const Sampler &sampler);

/**
 * Prometheus-style text exposition of the registry's current state:
 * flattened stat scalars plus labeled families, names sanitized to
 * [a-zA-Z0-9_] and prefixed `fsencr_`.
 */
void writePrometheus(std::ostream &os, const Registry &reg);

} // namespace metrics
} // namespace fsencr

#endif // FSENCR_COMMON_METRICS_HH
