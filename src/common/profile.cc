#include "common/profile.hh"

#include <algorithm>

#include "common/metrics.hh"
#include "common/report.hh"

namespace fsencr {
namespace profile {

const char *
className(ReqClass c)
{
    switch (c) {
      case ReqClass::Data: return "Data";
      case ReqClass::Mecb: return "MECB";
      case ReqClass::Fecb: return "FECB";
      case ReqClass::AuditCls: return "AuditLog";
    }
    return "unknown";
}

const char *
waitKindName(WaitKind k)
{
    switch (k) {
      case WaitKind::Service: return "service";
      case WaitKind::Bank: return "wait_bank";
      case WaitKind::Mshr: return "wait_mshr";
      case WaitKind::Merkle: return "wait_merkle";
      case WaitKind::Wpq: return "wait_wpq";
    }
    return "unknown";
}

const char *
blockerName(WaitKind k)
{
    switch (k) {
      case WaitKind::Service: return "none";
      case WaitKind::Bank: return "bank";
      case WaitKind::Mshr: return "mshr";
      case WaitKind::Merkle: return "merkle";
      case WaitKind::Wpq: return "wpq";
    }
    return "unknown";
}

const char *
resourceName(Res r)
{
    switch (r) {
      case Res::NvmBanks: return "nvm_banks";
      case Res::Mshr: return "mshr";
      case Res::Wpq: return "wpq";
      case Res::MetaCache: return "metacache";
      case Res::Ott: return "ott";
      case Res::AuditWcb: return "audit_wcb";
    }
    return "unknown";
}

Profiler::Profiler()
{
    // End-to-end wait distributions are long-tailed like the request
    // latencies themselves; log2 buckets keep the p99 in real buckets.
    for (auto &h : waitHist_)
        h = stats::Histogram::log2Buckets(48);
}

void
Profiler::setMetrics(metrics::Registry *metrics)
{
    if (!metrics) {
        blockerCtr_ = occCtr_ = stallCtr_ = arrivalCtr_ = nullptr;
        return;
    }
    // Families are get-or-create, so N sharded profilers share one
    // family per name and their rows aggregate side by side. The
    // cardinality cap covers resources x shards when sharded (6
    // resources x up to 16 shards, rounded up), 8 otherwise — bounded
    // either way.
    std::size_t cap = shardCount_ > 1 ? 128 : 8;
    blockerCtr_ = &metrics->counter("mc.blocker", "resource", cap);
    occCtr_ = &metrics->counter("profile.occupancy", "resource", cap);
    stallCtr_ = &metrics->counter("profile.stall", "resource", cap);
    arrivalCtr_ =
        &metrics->counter("profile.arrivals", "resource", cap);
}

void
Profiler::setShardLabel(unsigned id, unsigned count)
{
    shardCount_ = count ? count : 1;
    shardSuffix_ =
        shardCount_ > 1 ? "@s" + std::to_string(id) : std::string();
}

std::string
Profiler::taggedLabel(const char *name) const
{
    return shardSuffix_.empty() ? std::string(name)
                                : name + shardSuffix_;
}

void
Profiler::mergeFrom(const Profiler &o)
{
    for (unsigned c = 0; c < numClasses; ++c) {
        for (unsigned k = 0; k < numKinds; ++k)
            agg_[c][k] += o.agg_[c][k];
        waitHist_[c].merge(o.waitHist_[c]);
    }
    for (unsigned k = 0; k < numKinds; ++k)
        blockers_[k] += o.blockers_[k];
    for (unsigned r = 0; r < numResources; ++r) {
        Resource &mine = resources_[r];
        const Resource &theirs = o.resources_[r];
        mine.arrivals += theirs.arrivals;
        mine.occupancy += theirs.occupancy;
        mine.stall += theirs.stall;
        // First merge replaces the default capacity; later merges add
        // (each shard brings its own MSHR/WPQ/OTT/cache pool).
        mine.capacity = mergedAny_ ? mine.capacity + theirs.capacity
                                   : theirs.capacity;
    }
    requests_ += o.requests_;
    totalLatency_ += o.totalLatency_;
    identityViolations_ += o.identityViolations_;
    mergedAny_ = true;
}

void
Profiler::bookChain(ReqClass c, const ChainProfile &cp)
{
    // walkTicks includes the walk's own bank waits; the leaf access
    // and the cache lookup make up the rest of the chain. The four
    // bookings sum to cp.total + cp.mshrWait by construction.
    book(c, WaitKind::Bank, cp.leafBankWait + cp.walkBankWait);
    book(c, WaitKind::Merkle, cp.walkTicks - cp.walkBankWait);
    book(c, WaitKind::Service,
         cp.total - cp.walkTicks - cp.leafBankWait);
    book(c, WaitKind::Mshr, cp.mshrWait);
}

void
Profiler::finishRequest(Tick latency)
{
    if (!inRequest_)
        return;
    inRequest_ = false;

    Tick booked = 0;
    std::array<Tick, numKinds> kind_sum{};
    for (unsigned c = 0; c < numClasses; ++c) {
        Tick class_wait = 0;
        for (unsigned k = 0; k < numKinds; ++k) {
            Tick t = scratch_[c][k];
            booked += t;
            agg_[c][k] += t;
            kind_sum[k] += t;
            if (k != unsigned(WaitKind::Service))
                class_wait += t;
        }
        // Sample the wait distribution of every class that took part
        // in this request (zero-wait participation is a real sample:
        // "the MECB chain waited for nothing").
        bool participated = false;
        for (unsigned k = 0; k < numKinds; ++k)
            participated = participated || scratch_[c][k] != 0;
        if (participated)
            waitHist_[c].sample(class_wait);
    }

    if (booked != latency)
        ++identityViolations_;

    // Dominant blocker: the wait kind with the most ticks across all
    // classes; "none" when the request never waited. Ties resolve to
    // the first kind in enum order, deterministically.
    WaitKind blocker = WaitKind::Service;
    Tick best = 0;
    for (unsigned k = unsigned(WaitKind::Bank); k < numKinds; ++k) {
        if (kind_sum[k] > best) {
            best = kind_sum[k];
            blocker = WaitKind(k);
        }
    }
    ++blockers_[unsigned(blocker)];
    if (blockerCtr_)
        blockerCtr_->add(taggedLabel(blockerName(blocker)), 1);

    ++requests_;
    totalLatency_ += latency;
}

void
Profiler::resourceArrival(Res r, Tick residence, Tick stall)
{
    Resource &res = resources_[unsigned(r)];
    ++res.arrivals;
    res.occupancy += residence;
    res.stall += stall;
    if (arrivalCtr_)
        arrivalCtr_->add(taggedLabel(resourceName(r)), 1);
    if (occCtr_ && residence)
        occCtr_->add(taggedLabel(resourceName(r)), residence);
    if (stallCtr_ && stall)
        stallCtr_->add(taggedLabel(resourceName(r)), stall);
}

void
Profiler::resourceStall(Res r, Tick stall)
{
    resources_[unsigned(r)].stall += stall;
    if (stallCtr_ && stall)
        stallCtr_->add(taggedLabel(resourceName(r)), stall);
}

void
Profiler::setResourceTotals(Res r, Tick occupancy, Tick stall,
                            std::uint64_t arrivals,
                            std::uint64_t capacity)
{
    Resource &res = resources_[unsigned(r)];
    res.occupancy = occupancy;
    res.stall = stall;
    res.arrivals = arrivals;
    res.capacity = capacity ? capacity : 1;
}

Tick
Profiler::classWaitTicks(ReqClass c) const
{
    Tick sum = 0;
    for (unsigned k = 0; k < numKinds; ++k)
        if (k != unsigned(WaitKind::Service))
            sum += agg_[unsigned(c)][k];
    return sum;
}

Tick
Profiler::kindTicks(WaitKind k) const
{
    Tick sum = 0;
    for (unsigned c = 0; c < numClasses; ++c)
        sum += agg_[c][unsigned(k)];
    return sum;
}

std::vector<Bottleneck>
Profiler::bottlenecks() const
{
    std::vector<Bottleneck> out;
    for (unsigned k = unsigned(WaitKind::Bank); k < numKinds; ++k) {
        Bottleneck b;
        b.kind = WaitKind(k);
        b.waitTicks = kindTicks(b.kind);
        b.share = totalLatency_
                      ? double(b.waitTicks) / double(totalLatency_)
                      : 0.0;
        out.push_back(b);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Bottleneck &a, const Bottleneck &b) {
                         return a.waitTicks > b.waitTicks;
                     });
    return out;
}

double
Profiler::serialFraction() const
{
    if (!totalLatency_)
        return 0.0;
    return double(kindTicks(WaitKind::Merkle)) / double(totalLatency_);
}

double
Profiler::projectedSpeedup(unsigned shards) const
{
    if (!shards)
        return 1.0;
    double s = serialFraction();
    return 1.0 / (s + (1.0 - s) / shards);
}

double
Profiler::projectedSpeedup(
    unsigned shards, const std::vector<std::uint64_t> &shardBusy) const
{
    std::uint64_t sum = 0, max = 0;
    for (std::uint64_t b : shardBusy) {
        sum += b;
        if (b > max)
            max = b;
    }
    if (!sum)
        return projectedSpeedup(shards);
    double s = serialFraction();
    return 1.0 / (s + (1.0 - s) * double(max) / double(sum));
}

} // namespace profile

namespace report {

void
writeProfileSection(JsonWriter &w, const profile::Profiler &prof,
                    Tick span)
{
    using namespace profile;

    w.beginObject("profile");
    w.field("span_ticks", span);
    w.field("requests", prof.requests());
    w.field("total_latency", prof.totalLatency());
    w.field("identity_violations", prof.identityViolations());

    w.beginObject("classes");
    for (unsigned c = 0; c < numClasses; ++c) {
        ReqClass cls = ReqClass(c);
        w.beginObject(className(cls));
        for (unsigned k = 0; k < numKinds; ++k)
            w.field(waitKindName(WaitKind(k)),
                    prof.classTicks(cls, WaitKind(k)));
        w.field("wait_total", prof.classWaitTicks(cls));
        writeHistogram(w, "wait", prof.waitHistogram(cls));
        w.endObject();
    }
    w.endObject();

    w.beginObject("blockers");
    for (unsigned k = 0; k < numKinds; ++k)
        w.field(blockerName(WaitKind(k)),
                prof.blockerCount(WaitKind(k)));
    w.endObject();

    w.beginArray("bottlenecks");
    for (const Bottleneck &b : prof.bottlenecks()) {
        w.beginObject();
        w.field("resource", blockerName(b.kind));
        w.field("wait_ticks", b.waitTicks);
        w.field("share", b.share);
        w.endObject();
    }
    w.endArray();

    w.beginObject("resources");
    for (unsigned r = 0; r < numResources; ++r) {
        const Resource &res = prof.resource(Res(r));
        w.beginObject(resourceName(Res(r)));
        w.field("arrivals", res.arrivals);
        w.field("occupancy_ticks", res.occupancy);
        w.field("stall_ticks", res.stall);
        w.field("capacity", res.capacity);
        w.field("avg_queue_depth",
                span ? double(res.occupancy) / double(span) : 0.0);
        w.field("avg_residence_ticks",
                res.arrivals ? double(res.occupancy) /
                                   double(res.arrivals)
                             : 0.0);
        w.field("utilization",
                span ? double(res.occupancy) /
                           (double(span) * double(res.capacity))
                     : 0.0);
        w.endObject();
    }
    w.endObject();

    w.beginObject("amdahl");
    w.field("serial_fraction", prof.serialFraction());
    w.beginObject("speedup");
    for (unsigned shards : amdahlShards)
        w.field(std::to_string(shards),
                prof.projectedSpeedup(shards));
    w.endObject();
    w.endObject();

    w.endObject();
}

} // namespace report
} // namespace fsencr
