/**
 * @file
 * Contention profiler: queueing attribution and critical-path
 * decomposition for the secure datapath (opt-in via --profile).
 *
 * Two cooperating views of the same run:
 *
 *  - Per-request critical-path decomposition. The secure memory
 *    controller books every tick of a completion's end-to-end latency
 *    into a (traffic class, wait kind) bucket matrix: service versus
 *    wait-for-bank, wait-for-MSHR-slot, serialized-behind-Merkle-root
 *    and wait-for-WPQ-slot, per Data/MECB/FECB/AuditLog class. The
 *    booking is constructed so the buckets of one request sum
 *    tick-exactly to the latency the controller returned; any
 *    mismatch increments identityViolations() instead of crashing,
 *    and the test suite asserts that counter stays zero.
 *
 *  - Per-resource occupancy accounting. Each contended resource (NVM
 *    banks, MSHRs, the WPQ ring, the metadata cache, the OTT, the
 *    audit WCB) records arrivals, a residence-tick integral (the
 *    time-integral of its queue depth) and stall ticks. Dividing by
 *    the run span yields Little's-law figures: average queue depth
 *    L = integral/span, average residence W = integral/arrivals, and
 *    utilization = integral/(span * capacity).
 *
 * The profiler also derives a ranked bottleneck table (wait kinds
 * ordered by aggregated ticks) and an Amdahl projection: the serial
 * fraction of the datapath spent behind the single Merkle root gives
 * the predicted speedup of sharding the secure datapath 2/4/8/16
 * ways — the measurement the ROADMAP's sharding item is gated on.
 *
 * Observation only: components hold a `Profiler *` that is nullptr
 * when --profile is off, and no probe charges simulated time. With
 * profiling off, ticks, NVM traffic and report bytes are bit-identical
 * to a build without this file.
 */

#ifndef FSENCR_COMMON_PROFILE_HH
#define FSENCR_COMMON_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fsencr {

namespace metrics {
class Registry;
class LabeledCounter;
} // namespace metrics

namespace report {
class JsonWriter;
} // namespace report

namespace profile {

/** Traffic class a decomposed latency share is charged to. */
enum class ReqClass : unsigned {
    Data,     ///< the demand data access itself
    Mecb,     ///< memory-encryption counter-block chain (MECB walk)
    Fecb,     ///< file-encryption counter-block chain (FECB walk)
    AuditCls, ///< audit-log WCB drain visible to the request
};
constexpr unsigned numClasses = 4;
const char *className(ReqClass c);

/** Where one tick of a request's end-to-end latency went. */
enum class WaitKind : unsigned {
    Service, ///< useful work (device service, cache lookup, crypto)
    Bank,    ///< queued behind a busy NVM bank
    Mshr,    ///< waiting for an MSHR/issue slot to free up
    Merkle,  ///< serialized behind the single Merkle root (tree walk
             ///< above the leaf, minus its own bank waits)
    Wpq,     ///< stalled on a full write-pending queue
};
constexpr unsigned numKinds = 5;
/** Bucket name; WaitKind::Service maps to "none" in blocker space. */
const char *waitKindName(WaitKind k);
const char *blockerName(WaitKind k);

/** Contended resources with occupancy accounting. */
enum class Res : unsigned {
    NvmBanks,
    Mshr,
    Wpq,
    MetaCache,
    Ott,
    AuditWcb,
};
constexpr unsigned numResources = 6;
const char *resourceName(Res r);

/**
 * Decomposition of one metadata chain (a fetchMetadata call): the
 * leaf access, the Merkle walk above it, and the wait for an issue
 * slot before the chain could start. Filled by the controller, then
 * converted into (class, kind) buckets by Profiler::bookChain with
 * the identity
 *
 *   total + mshrWait == Service + Bank + Merkle + Mshr.
 */
struct ChainProfile
{
    /** Bank wait of the leaf (MECB/FECB line) device access. */
    Tick leafBankWait = 0;
    /** Bank waits accumulated across the Merkle-walk accesses. */
    Tick walkBankWait = 0;
    /** Total ticks of the Merkle walk above the leaf. */
    Tick walkTicks = 0;
    /** Chain latency as returned by fetchMetadata. */
    Tick total = 0;
    /** Ticks the chain waited for an MSHR/issue slot (booked by the
     *  caller on top of `total`). */
    Tick mshrWait = 0;
};

/** One resource's occupancy aggregate. */
struct Resource
{
    std::uint64_t arrivals = 0;
    /** Time-integral of items resident in the resource (ticks). */
    Tick occupancy = 0;
    /** Ticks arrivals spent stalled waiting to enter. */
    Tick stall = 0;
    std::uint64_t capacity = 1;
};

/** One row of the ranked bottleneck table. */
struct Bottleneck
{
    WaitKind kind;
    Tick waitTicks = 0;
    /** waitTicks / total latency over all requests. */
    double share = 0.0;
};

class Profiler
{
  public:
    Profiler();

    /** Attach a metrics registry: lights up mc.blocker{resource} and
     *  the profile.{occupancy,stall,arrivals}{resource} families the
     *  Sampler turns into queue-depth time series. */
    void setMetrics(metrics::Registry *metrics);

    /**
     * Mark this profiler as shard @p id of @p count. With count > 1
     * every metric label value gains an "@s<id>" suffix (bounded
     * cardinality: resources x shards, capped at 128 per family) so
     * shard-labeled rows coexist with, and sum to, the unlabeled
     * totals of an unsharded run. Call before setMetrics. A count of
     * 1 (the default) changes nothing, byte for byte.
     */
    void setShardLabel(unsigned id, unsigned count);

    /**
     * Fold another profiler's aggregates into this one: the
     * (class, kind) matrix, blocker counts, wait histograms, resource
     * rows (arrivals/occupancy/stall summed, capacities added),
     * request count and total latency. Used by the router to present
     * one merged profile over N shards; the NVM-bank row should be
     * re-synced from the device afterwards since every shard reports
     * the same shared banks.
     */
    void mergeFrom(const Profiler &o);

    // ---- per-request critical path ------------------------------

    /** Reset the per-request scratch matrix (start of a datapath
     *  request). Bookings made outside a request are discarded. */
    void
    beginRequest()
    {
        for (auto &row : scratch_)
            row.fill(0);
        inRequest_ = true;
    }

    /** Charge @p t ticks of the current request to (c, k). */
    void
    book(ReqClass c, WaitKind k, Tick t)
    {
        if (inRequest_)
            scratch_[unsigned(c)][unsigned(k)] += t;
    }

    /** Convert one metadata chain into (class, kind) buckets. */
    void bookChain(ReqClass c, const ChainProfile &cp);

    /** Close the current request: verify the buckets sum to
     *  @p latency, aggregate them, sample per-class wait histograms
     *  and count the dominant blocker. */
    void finishRequest(Tick latency);

    // ---- per-resource occupancy ---------------------------------

    /** One arrival: @p residence ticks inside the resource after
     *  stalling @p stall ticks to get in. */
    void resourceArrival(Res r, Tick residence, Tick stall = 0);
    /** Stall ticks observed without a matching arrival record. */
    void resourceStall(Res r, Tick stall);
    void
    setResourceCapacity(Res r, std::uint64_t capacity)
    {
        resources_[unsigned(r)].capacity = capacity ? capacity : 1;
    }
    /** Overwrite a resource row with authoritative totals (used to
     *  sync the NVM-bank row from the device's own accounting). */
    void setResourceTotals(Res r, Tick occupancy, Tick stall,
                           std::uint64_t arrivals,
                           std::uint64_t capacity);

    // ---- aggregates for the report writer and tests -------------

    Tick
    classTicks(ReqClass c, WaitKind k) const
    {
        return agg_[unsigned(c)][unsigned(k)];
    }
    /** Sum of the four wait kinds of one class. */
    Tick classWaitTicks(ReqClass c) const;
    Tick totalLatency() const { return totalLatency_; }
    std::uint64_t requests() const { return requests_; }
    std::uint64_t identityViolations() const
    {
        return identityViolations_;
    }
    std::uint64_t
    blockerCount(WaitKind k) const
    {
        return blockers_[unsigned(k)];
    }
    const stats::Histogram &
    waitHistogram(ReqClass c) const
    {
        return waitHist_[unsigned(c)];
    }
    const Resource &
    resource(Res r) const
    {
        return resources_[unsigned(r)];
    }

    /** Aggregated wait over all classes for one kind. */
    Tick kindTicks(WaitKind k) const;
    /** Wait kinds ranked by aggregated ticks (desc, stable). */
    std::vector<Bottleneck> bottlenecks() const;
    /** Fraction of all request latency serialized behind the Merkle
     *  root (the Amdahl serial fraction). */
    double serialFraction() const;
    /** Amdahl projection: 1 / (s + (1-s)/shards). */
    double projectedSpeedup(unsigned shards) const;
    /**
     * Amdahl projection refined by a measured shard load balance:
     * the parallel part drains when the most-loaded shard finishes,
     * so speedup = 1 / (s + (1-s) * max(busy) / sum(busy)). Equal
     * loads reduce to the ideal projectedSpeedup(shards); a hot
     * page concentrated on one shard (which address-partitioned
     * sharding cannot split) lowers the bound honestly. Falls back
     * to the ideal projection when the load vector is empty or all
     * zero.
     */
    double projectedSpeedup(
        unsigned shards,
        const std::vector<std::uint64_t> &shardBusy) const;

  private:
    template <std::size_t N> struct Matrix
    {
        std::array<Tick, N> v{};
        void fill(Tick t) { v.fill(t); }
        Tick &operator[](std::size_t i) { return v[i]; }
        Tick operator[](std::size_t i) const { return v[i]; }
    };

    bool inRequest_ = false;
    std::array<Matrix<numKinds>, numClasses> scratch_{};
    std::array<Matrix<numKinds>, numClasses> agg_{};
    std::array<std::uint64_t, numKinds> blockers_{};
    std::array<stats::Histogram, numClasses> waitHist_;
    std::array<Resource, numResources> resources_{};
    std::uint64_t requests_ = 0;
    Tick totalLatency_ = 0;
    std::uint64_t identityViolations_ = 0;

    metrics::LabeledCounter *blockerCtr_ = nullptr;
    metrics::LabeledCounter *occCtr_ = nullptr;
    metrics::LabeledCounter *stallCtr_ = nullptr;
    metrics::LabeledCounter *arrivalCtr_ = nullptr;

    /** "@s<id>" when sharded, "" otherwise. */
    std::string shardSuffix_;
    unsigned shardCount_ = 1;
    bool mergedAny_ = false;
    /** Metric label value for a resource/blocker name, shard-tagged. */
    std::string taggedLabel(const char *name) const;
};

/** Shard counts the Amdahl projection reports. */
constexpr unsigned amdahlShards[] = {2, 4, 8, 16};

} // namespace profile

namespace report {

/**
 * Write the `profile` section of a v3 run/bench report: the
 * per-class decomposition with wait histograms, the dominant-blocker
 * counts, the ranked bottleneck table, per-resource Little's-law
 * occupancy rows and the Amdahl projection.
 *
 * @param span total simulated ticks of the run (Little's-law divisor)
 */
void writeProfileSection(JsonWriter &w, const profile::Profiler &prof,
                         Tick span);

} // namespace report
} // namespace fsencr

#endif // FSENCR_COMMON_PROFILE_HH
