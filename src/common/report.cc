#include "common/report.hh"

#include <cstdio>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/trace.hh"

namespace fsencr {
namespace report {

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (!any_.empty()) {
        if (any_.back())
            os_ << ',';
        any_.back() = true;
    }
    if (!any_.empty())
        indent();
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < any_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    os_ << '"' << escape(k) << "\": ";
}

void
JsonWriter::beginObject()
{
    if (!any_.empty())
        comma();
    os_ << '{';
    any_.push_back(false);
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    os_ << '{';
    any_.push_back(false);
}

void
JsonWriter::endObject()
{
    bool had = !any_.empty() && any_.back();
    if (!any_.empty())
        any_.pop_back();
    if (had)
        indent();
    os_ << '}';
    if (any_.empty())
        os_ << '\n';
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    os_ << '[';
    any_.push_back(false);
}

void
JsonWriter::beginArray()
{
    if (!any_.empty())
        comma();
    os_ << '[';
    any_.push_back(false);
}

void
JsonWriter::endArray()
{
    bool had = !any_.empty() && any_.back();
    if (!any_.empty())
        any_.pop_back();
    if (had)
        indent();
    os_ << ']';
    if (any_.empty())
        os_ << '\n';
}

void
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::field(const std::string &k, const char *v)
{
    field(k, std::string(v));
}

void
JsonWriter::field(const std::string &k, std::uint64_t v)
{
    key(k);
    os_ << v;
}

void
JsonWriter::field(const std::string &k, std::int64_t v)
{
    key(k);
    os_ << v;
}

void
JsonWriter::field(const std::string &k, int v)
{
    key(k);
    os_ << v;
}

void
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os_ << buf;
}

void
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    os_ << v;
}

void
JsonWriter::value(double v)
{
    comma();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os_ << buf;
}

void
JsonWriter::rawField(const std::string &k, const std::string &jsonText)
{
    key(k);
    os_ << jsonText;
}

void
beginReport(JsonWriter &w, const char *schema, int version)
{
    w.beginObject();
    w.field("schema", schema);
    w.field("version", version);
}

void
writeBreakdown(JsonWriter &w, const std::string &key,
               const trace::Breakdown &bd)
{
    w.beginObject(key);
    w.field("total", bd.total());
    w.beginObject("components");
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        w.field(trace::componentName(c), bd.ticks[c]);
    w.endObject();
    w.endObject();
}

void
writeHistogram(JsonWriter &w, const std::string &key,
               const stats::Histogram &h)
{
    w.beginObject(key);
    w.field("samples", h.samples());
    w.field("mean", h.mean());
    w.field("min", h.minValue());
    w.field("max", h.maxValue());
    w.field("p50", h.percentile(50.0));
    w.field("p95", h.percentile(95.0));
    w.field("p99", h.percentile(99.0));
    w.endObject();
}

void
writeTimeseries(JsonWriter &w, const metrics::Sampler &sampler)
{
    w.beginObject("timeseries");
    w.field("interval", static_cast<std::uint64_t>(sampler.interval()));
    w.field("samples",
            static_cast<std::uint64_t>(sampler.intervals().size()));
    w.beginArray("intervals");
    for (const metrics::Interval &iv : sampler.intervals()) {
        w.beginObject();
        w.field("t0", static_cast<std::uint64_t>(iv.t0));
        w.field("t1", static_cast<std::uint64_t>(iv.t1));
        w.beginObject("deltas");
        for (const auto &[name, delta] : iv.deltas)
            w.field(name, static_cast<std::int64_t>(delta));
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeMetricsSection(JsonWriter &w, const metrics::Registry &reg)
{
    w.beginObject("metrics");
    for (const auto &[name, fam] : reg.families()) {
        w.beginObject(name);
        w.field("label", fam->labelKey());
        w.field("max_labels",
                static_cast<std::uint64_t>(fam->maxLabels()));
        w.field("evictions", fam->evictions());
        w.field("total", fam->total());
        w.beginObject("values");
        for (const auto &[label, v] : fam->sorted())
            w.field(label, v);
        w.endObject();
        w.endObject();
    }
    w.endObject();
}

void
writePersistSection(JsonWriter &w, const PersistStats &p)
{
    w.beginObject("persist");
    w.field("domain", p.domain);
    w.field("stop_loss_persists", p.stopLossPersists);
    w.field("clwbs", p.clwbs);
    w.field("fences", p.fences);
    w.field("backup_flush_lines", p.backupFlushLines);
    w.field("backup_flush_dropped", p.backupFlushDropped);
    w.endObject();
}

void
writeShardsSection(JsonWriter &w, const ShardsInfo &s)
{
    w.beginObject("shards");
    w.field("count", static_cast<std::uint64_t>(s.count));
    w.field("serial_ticks", s.serialTicks);
    w.field("visible_ticks", s.visibleTicks);
    double speedup =
        s.visibleTicks
            ? static_cast<double>(s.serialTicks) /
                  static_cast<double>(s.visibleTicks)
            : 0.0;
    w.field("speedup", speedup);
    w.field("efficiency",
            s.count ? speedup / static_cast<double>(s.count) : 0.0);
    if (s.projectedSpeedup > 0.0)
        w.field("projected_speedup", s.projectedSpeedup);
    w.beginArray("per_shard");
    for (std::size_t k = 0; k < s.perShardBusy.size(); ++k) {
        w.beginObject();
        w.field("shard", static_cast<std::uint64_t>(k));
        w.field("busy_ticks", s.perShardBusy[k]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace report
} // namespace fsencr
