/**
 * @file
 * Machine-readable run reports.
 *
 * A small streaming JSON writer plus the schema constants shared by
 * `fsencr_sim --report` and the bench harness. Reports are versioned
 * so downstream tooling (scripts/run_all_benches.sh, plot scripts)
 * can detect incompatible changes instead of mis-parsing them:
 *
 *   { "schema": "fsencr-run-report",  "version": 1, ... }
 *   { "schema": "fsencr-bench-report", "version": 1, ... }
 *
 * See docs/ARCHITECTURE.md ("Observability") for the field-by-field
 * layout; scripts/check_report_schema.sh validates it in CI.
 */

#ifndef FSENCR_COMMON_REPORT_HH
#define FSENCR_COMMON_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fsencr {

namespace stats { class Histogram; }
namespace metrics { class Registry; class Sampler; }
namespace trace { struct Breakdown; }
class AuditLog;
struct SecParams;

namespace report {

/**
 * Schema identifiers + current versions. Bump on breaking change.
 *
 * v2 (run/bench): adds the optional `timeseries` section (interval
 * counter deltas from metrics::Sampler) and the optional `metrics`
 * section (labeled hot-spot families). Both are additive — every v1
 * field is still emitted with the same meaning, so v1 consumers that
 * ignore unknown keys keep working; `fsencr-compare` reads either.
 */
constexpr const char *runReportSchema = "fsencr-run-report";
constexpr int runReportVersion = 2;
constexpr const char *benchReportSchema = "fsencr-bench-report";
constexpr int benchReportVersion = 2;
/**
 * v3 (run/bench): adds the optional `profile` section (contention
 * profiler, `--profile`). Version 3 is emitted only when the section
 * is present, so profile-off reports stay byte-identical v2
 * documents and every committed v2 baseline remains valid.
 */
constexpr int runReportVersionProfiled = 3;
constexpr int benchReportVersionProfiled = 3;
constexpr const char *crashtestReportSchema = "fsencr-crashtest-report";
constexpr int crashtestReportVersion = 1;
constexpr const char *compareReportSchema = "fsencr-compare-report";
constexpr int compareReportVersion = 1;
constexpr const char *auditReportSchema = "fsencr-audit-report";
constexpr int auditReportVersion = 1;

/**
 * Streaming JSON writer with automatic comma placement and
 * indentation. Keeps report-emitting code shaped like the document it
 * produces; emits nothing clever — just valid JSON.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    /** Open the root object (or a keyed/anonymous nested one). */
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();

    void beginArray(const std::string &key);
    void beginArray();
    void endArray();

    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, std::int64_t value);
    void field(const std::string &key, int value);
    void field(const std::string &key, double value);
    void field(const std::string &key, bool value);

    /** Array element forms. */
    void value(const std::string &v);
    void value(std::uint64_t v);
    void value(double v);

    /** Emit a pre-rendered JSON fragment as a member value. */
    void rawField(const std::string &key, const std::string &json);

    static std::string escape(const std::string &s);

  private:
    void comma();
    void indent();
    void key(const std::string &k);

    std::ostream &os_;
    /** One entry per open scope: has it emitted a member yet? */
    std::vector<bool> any_{};
};

/**
 * Open the root object of a versioned report and emit its envelope
 * (`schema` + `version`). Every report kind — run, bench, crashtest,
 * compare — starts through here, so the envelope layout and the
 * version constants above stay in one place. The caller still owns
 * the matching endObject().
 */
void beginReport(JsonWriter &w, const char *schema, int version);

/**
 * Emit a cycle-attribution object under @p key: the exact total plus
 * one member per trace component (zeros included — consumers diff
 * component-wise). Shared by the run report and each bench cell.
 */
void writeBreakdown(JsonWriter &w, const std::string &key,
                    const trace::Breakdown &bd);

/**
 * Emit the standard histogram summary object:
 * samples/mean/min/max/p50/p95/p99.
 */
void writeHistogram(JsonWriter &w, const std::string &key,
                    const stats::Histogram &h);

/**
 * Emit the v2 `timeseries` section: sampling interval plus one
 * object per interval with its (t0, t1] bounds and the non-zero
 * counter deltas. Interval deltas of any counter sum exactly to its
 * final aggregate (ticks-exact, like the attribution itself).
 */
void writeTimeseries(JsonWriter &w, const metrics::Sampler &sampler);

/**
 * Emit the v2 `metrics` section: one object per labeled family with
 * its label key, sorted label values, eviction count and total.
 */
void writeMetricsSection(JsonWriter &w, const metrics::Registry &reg);

/**
 * Snapshot of the persistence-domain counters a run report carries in
 * its `persist` section. Callers (fsencr_sim, the bench harness)
 * gather these from the system — Osiris stop-loss persists, per-core
 * clwb/fence totals, and the eADR backup-power-flush accounting — so
 * the report module stays free of simulator dependencies.
 */
struct PersistStats
{
    /** "adr" or "eadr" (persistDomainName of the active config). */
    std::string domain = "adr";
    std::uint64_t stopLossPersists = 0;
    std::uint64_t clwbs = 0;
    std::uint64_t fences = 0;
    /** Lines the backup-power flush drained at crash time. */
    std::uint64_t backupFlushLines = 0;
    /** Lines dropped by the energy budget or an injected fault. */
    std::uint64_t backupFlushDropped = 0;
};

/**
 * Emit the `persist` section: the active persistence domain plus the
 * counters above. Always emitted in v2 run reports (both domains) so
 * ADR-vs-eADR comparisons diff it symmetrically.
 */
void writePersistSection(JsonWriter &w, const PersistStats &p);

/**
 * Emit the `audit` section of an audit-enabled run report: the
 * active filter plus append/ack/drop counters and region capacity.
 * Only emitted when auditing is on — audit-off reports stay
 * byte-identical to pre-audit builds. Defined alongside AuditLog (in
 * the fsenc library), declared here so the schema surface stays in
 * one header.
 */
void writeAuditSection(JsonWriter &w, const SecParams &sec,
                       const AuditLog &audit);

/**
 * Multi-shard form: counters summed across the per-shard audit-log
 * slices (capacity included — the slices partition one region).
 * With one log this emits exactly the single-log section.
 */
void writeAuditSection(JsonWriter &w, const SecParams &sec,
                       const std::vector<const AuditLog *> &logs);

/**
 * Snapshot of the sharded-datapath clock model a report carries in
 * its `shards` section (`--mc-shards > 1` only; unsharded reports
 * omit the section and stay byte-identical). Callers gather these
 * from System's measured accessors.
 */
struct ShardsInfo
{
    unsigned count = 0;
    /** Sum of every shard's busy ticks (the one-controller cost). */
    std::uint64_t serialTicks = 0;
    /** Critical-shard ticks actually charged to the clock. */
    std::uint64_t visibleTicks = 0;
    /** Per-shard busy-tick totals, indexed by shard id. */
    std::vector<std::uint64_t> perShardBusy;
    /** Amdahl projection from the contention profiler for this shard
     *  count (0 = profiler off, field omitted). */
    double projectedSpeedup = 0.0;
};

/**
 * Emit the `shards` section: shard count, serial vs. visible ticks,
 * the measured speedup (serial / visible) and parallel efficiency,
 * the profiler's Amdahl projection when available, and one busy-tick
 * entry per shard.
 */
void writeShardsSection(JsonWriter &w, const ShardsInfo &s);

} // namespace report
} // namespace fsencr

#endif // FSENCR_COMMON_REPORT_HH
