/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * All randomness in the simulator flows through Rng so that every
 * experiment is exactly reproducible from its seed. The generator is
 * SplitMix64 (Steele et al.) — tiny, fast and statistically adequate for
 * workload generation. A Zipfian sampler (Gray et al., "Quickly generating
 * billion-record synthetic databases") backs the YCSB workload.
 */

#ifndef FSENCR_COMMON_RNG_HH
#define FSENCR_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace fsencr {

/** SplitMix64 deterministic generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : _state(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (_state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). bound must be non-zero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fill a byte buffer with pseudo-random data. */
    void
    fill(void *buf, std::size_t len)
    {
        auto *p = static_cast<std::uint8_t *>(buf);
        while (len >= 8) {
            std::uint64_t v = next();
            for (int i = 0; i < 8; ++i)
                p[i] = static_cast<std::uint8_t>(v >> (8 * i));
            p += 8;
            len -= 8;
        }
        if (len > 0) {
            std::uint64_t v = next();
            for (std::size_t i = 0; i < len; ++i)
                p[i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
    }

  private:
    std::uint64_t _state;
};

/**
 * Zipfian integer sampler over [0, n) with skew theta (default 0.99 as in
 * YCSB). Uses the standard rejection-free inverse method.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99,
                     std::uint64_t seed = 12345)
        : _n(n), _theta(theta), _rng(seed)
    {
        _zetan = zeta(n, theta);
        _zeta2 = zeta(2, theta);
        _alpha = 1.0 / (1.0 - theta);
        _eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
               (1.0 - _zeta2 / _zetan);
    }

    std::uint64_t
    next()
    {
        double u = _rng.nextDouble();
        double uz = u * _zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, _theta))
            return 1;
        auto v = static_cast<std::uint64_t>(
            static_cast<double>(_n) *
            std::pow(_eta * u - _eta + 1.0, _alpha));
        return v >= _n ? _n - 1 : v;
    }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }

    std::uint64_t _n;
    double _theta;
    Rng _rng;
    double _zetan;
    double _zeta2;
    double _alpha;
    double _eta;
};

} // namespace fsencr

#endif // FSENCR_COMMON_RNG_HH
