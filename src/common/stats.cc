#include "common/stats.hh"

#include "common/logging.hh"

namespace fsencr {
namespace stats {

std::uint64_t
StatGroup::scalarValue(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        auto it = _scalars.find(path);
        if (it == _scalars.end())
            fatal("unknown stat '%s' in group '%s'", path.c_str(),
                  _name.c_str());
        return it->second->value();
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (StatGroup *child : _children) {
        if (child->name() == head)
            return child->scalarValue(rest);
    }
    fatal("unknown stat group '%s' under '%s'", head.c_str(), _name.c_str());
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[name, s] : _scalars)
        os << base << "." << name << " = " << s->value() << "\n";
    for (const auto &[name, f] : _formulas)
        os << base << "." << name << " = " << f->value() << "\n";
    for (const auto &[name, h] : _histograms) {
        os << base << "." << name << ".samples = " << h->samples() << "\n";
        os << base << "." << name << ".mean = " << h->mean() << "\n";
        os << base << "." << name << ".max = " << h->maxValue() << "\n";
    }
    for (const StatGroup *child : _children)
        child->dump(os, base);
}

void
StatGroup::dumpJson(std::ostream &os, unsigned indent) const
{
    std::string pad(indent, ' ');
    std::string inner(indent + 2, ' ');
    os << pad << "{\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[name, s] : _scalars) {
        sep();
        os << inner << "\"" << name << "\": " << s->value();
    }
    for (const auto &[name, f] : _formulas) {
        sep();
        os << inner << "\"" << name << "\": " << f->value();
    }
    for (const auto &[name, h] : _histograms) {
        sep();
        os << inner << "\"" << name << "\": {\"samples\": "
           << h->samples() << ", \"mean\": " << h->mean()
           << ", \"max\": " << h->maxValue() << "}";
    }
    for (const StatGroup *child : _children) {
        sep();
        os << inner << "\"" << child->name() << "\":\n";
        child->dumpJson(os, indent + 2);
    }
    os << "\n" << pad << "}";
    if (indent == 0)
        os << "\n";
}

void
StatGroup::resetAll()
{
    for (auto &[name, s] : _scalars)
        s->reset();
    for (auto &[name, h] : _histograms)
        h->reset();
    for (StatGroup *child : _children)
        child->resetAll();
}

} // namespace stats
} // namespace fsencr
