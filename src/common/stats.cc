#include "common/stats.hh"

#include <bit>

#include "common/logging.hh"

namespace fsencr {
namespace stats {

std::size_t
Histogram::bucketIndex(std::uint64_t v) const
{
    if (_scale == Scale::Linear)
        return static_cast<std::size_t>(v / _width);
    // Log2: bucket 0 = {0}, bucket i >= 1 = [2^(i-1), 2^i).
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

double
Histogram::bucketLo(std::size_t i) const
{
    if (_scale == Scale::Linear)
        return static_cast<double>(i) * static_cast<double>(_width);
    return i == 0 ? 0.0
                  : static_cast<double>(std::uint64_t{1} << (i - 1));
}

double
Histogram::bucketHi(std::size_t i) const
{
    if (_scale == Scale::Linear)
        return static_cast<double>(i + 1) * static_cast<double>(_width);
    return i == 0 ? 1.0 : static_cast<double>(std::uint64_t{1} << i);
}

double
Histogram::percentile(double p) const
{
    if (_samples == 0)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(_min);
    if (p >= 100.0)
        return static_cast<double>(_max);

    double target = p / 100.0 * static_cast<double>(_samples);
    std::uint64_t cum = 0;
    double result = static_cast<double>(_max);
    bool found = false;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (!_buckets[i])
            continue;
        double prev = static_cast<double>(cum);
        cum += _buckets[i];
        if (static_cast<double>(cum) >= target) {
            double frac =
                (target - prev) / static_cast<double>(_buckets[i]);
            result = bucketLo(i) + frac * (bucketHi(i) - bucketLo(i));
            found = true;
            break;
        }
    }
    if (!found && _overflow) {
        // Percentile falls in the overflow bucket: interpolate from
        // the last bucket boundary toward the observed maximum.
        double prev = static_cast<double>(cum);
        double frac = (target - prev) / static_cast<double>(_overflow);
        double lo = bucketLo(_buckets.size());
        double hi = static_cast<double>(_max);
        result = hi > lo ? lo + frac * (hi - lo) : hi;
    }
    if (result < static_cast<double>(_min))
        result = static_cast<double>(_min);
    if (result > static_cast<double>(_max))
        result = static_cast<double>(_max);
    return result;
}

std::uint64_t
StatGroup::scalarValue(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        auto it = _scalars.find(path);
        if (it == _scalars.end())
            fatal("unknown stat '%s' in group '%s'", path.c_str(),
                  _name.c_str());
        return it->second->value();
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (StatGroup *child : _children) {
        if (child->name() == head)
            return child->scalarValue(rest);
    }
    fatal("unknown stat group '%s' under '%s'", head.c_str(), _name.c_str());
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[name, s] : _scalars)
        os << base << "." << name << " = " << s->value() << "\n";
    for (const auto &[name, f] : _formulas)
        os << base << "." << name << " = " << f->value() << "\n";
    for (const auto &[name, h] : _histograms) {
        os << base << "." << name << ".samples = " << h->samples() << "\n";
        os << base << "." << name << ".mean = " << h->mean() << "\n";
        os << base << "." << name << ".min = " << h->minValue() << "\n";
        os << base << "." << name << ".max = " << h->maxValue() << "\n";
        os << base << "." << name << ".p50 = " << h->percentile(50) << "\n";
        os << base << "." << name << ".p95 = " << h->percentile(95) << "\n";
        os << base << "." << name << ".p99 = " << h->percentile(99) << "\n";
    }
    for (const StatGroup *child : _children)
        child->dump(os, base);
}

void
StatGroup::visitScalars(
    const std::function<void(const std::string &, std::uint64_t)> &fn,
    const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[name, s] : _scalars)
        fn(base + "." + name, s->value());
    for (const StatGroup *child : _children)
        child->visitScalars(fn, base);
}

void
StatGroup::dumpJson(std::ostream &os, unsigned indent) const
{
    std::string pad(indent, ' ');
    std::string inner(indent + 2, ' ');
    os << pad << "{\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[name, s] : _scalars) {
        sep();
        os << inner << "\"" << name << "\": " << s->value();
    }
    for (const auto &[name, f] : _formulas) {
        sep();
        os << inner << "\"" << name << "\": " << f->value();
    }
    for (const auto &[name, h] : _histograms) {
        sep();
        os << inner << "\"" << name << "\": {\"samples\": "
           << h->samples() << ", \"mean\": " << h->mean()
           << ", \"min\": " << h->minValue()
           << ", \"max\": " << h->maxValue()
           << ", \"p50\": " << h->percentile(50)
           << ", \"p95\": " << h->percentile(95)
           << ", \"p99\": " << h->percentile(99) << "}";
    }
    for (const StatGroup *child : _children) {
        sep();
        os << inner << "\"" << child->name() << "\":\n";
        child->dumpJson(os, indent + 2);
    }
    os << "\n" << pad << "}";
    if (indent == 0)
        os << "\n";
}

void
StatGroup::resetAll()
{
    for (auto &[name, s] : _scalars)
        s->reset();
    for (auto &[name, h] : _histograms)
        h->reset();
    for (StatGroup *child : _children)
        child->resetAll();
}

} // namespace stats
} // namespace fsencr
