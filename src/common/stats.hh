/**
 * @file
 * Minimal gem5-flavoured statistics framework.
 *
 * Components register named scalar counters, formulas and histograms in a
 * StatGroup. Groups nest, and the whole tree can be dumped as
 * `group.sub.stat = value` lines or queried programmatically by the
 * benchmark harness.
 */

#ifndef FSENCR_COMMON_STATS_HH
#define FSENCR_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fsencr {
namespace stats {

/** A simple monotonically updated scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(std::uint64_t v) { _value += v; return *this; }
    Scalar &operator=(std::uint64_t v) { _value = v; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** A derived statistic computed on demand from other stats. */
class Formula
{
  public:
    using Fn = std::function<double()>;

    Formula() = default;
    explicit Formula(Fn fn) : _fn(std::move(fn)) {}

    void setFunction(Fn fn) { _fn = std::move(fn); }
    double value() const { return _fn ? _fn() : 0.0; }

  private:
    Fn _fn;
};

/**
 * A fixed-bucket histogram: linear buckets (the default) or log2
 * buckets, plus an overflow bucket either way.
 *
 * Linear buckets are right for tight, known-range distributions
 * (per-component ticks of one access). Long-tail distributions
 * (end-to-end latencies with p99 far above the mean) overflow the
 * linear range and percentile() degenerates into overflow-bucket
 * interpolation; log2 buckets keep resolution proportional to the
 * value instead, so the tail stays inside real buckets.
 */
class Histogram
{
  public:
    enum class Scale { Linear, Log2 };

    Histogram() : Histogram(16, 64) {}

    /**
     * Linear buckets.
     * @param num_buckets number of linear buckets
     * @param bucket_width width of each bucket
     */
    Histogram(unsigned num_buckets, std::uint64_t bucket_width)
        : _width(bucket_width), _buckets(num_buckets, 0)
    {}

    /**
     * Log2 buckets: bucket 0 holds v == 0, bucket i >= 1 holds
     * [2^(i-1), 2^i). 48 buckets span to ~2^47 (140 s in ticks), so
     * every realistic latency lands in a real bucket.
     */
    static Histogram
    log2Buckets(unsigned num_buckets = 48)
    {
        Histogram h(num_buckets, 1);
        h._scale = Scale::Log2;
        return h;
    }

    Scale scale() const { return _scale; }

    void
    sample(std::uint64_t v)
    {
        ++_samples;
        _sum += v;
        if (v > _max) _max = v;
        if (_samples == 1 || v < _min) _min = v;
        std::size_t idx = bucketIndex(v);
        if (idx >= _buckets.size())
            ++_overflow;
        else
            ++_buckets[idx];
    }

    std::uint64_t samples() const { return _samples; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t minValue() const { return _min; }
    std::uint64_t maxValue() const { return _max; }
    double mean() const
    {
        return _samples ? static_cast<double>(_sum) / _samples : 0.0;
    }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t bucketWidth() const { return _width; }

    /**
     * Estimated p-th percentile (p in [0, 100]) by linear
     * interpolation inside the matching bucket; samples in the
     * overflow bucket interpolate between the last bucket boundary
     * and the observed maximum. The result is clamped to
     * [minValue(), maxValue()], so a single-sample histogram reports
     * that sample exactly. An empty histogram reports 0.
     */
    double percentile(double p) const;

    void
    reset()
    {
        _samples = _sum = _min = _max = _overflow = 0;
        std::fill(_buckets.begin(), _buckets.end(), 0);
    }

    /**
     * Fold another histogram of the same geometry (scale, width,
     * bucket count) into this one; used to aggregate per-shard
     * profiles. Mismatched geometries fold samples/sum/min/max only
     * and dump the other's buckets into overflow, which the test
     * suite treats as a bug.
     */
    void
    merge(const Histogram &o)
    {
        if (o._samples == 0)
            return;
        if (_samples == 0 || o._min < _min)
            _min = o._min;
        if (o._max > _max)
            _max = o._max;
        _samples += o._samples;
        _sum += o._sum;
        if (_scale == o._scale && _width == o._width &&
            _buckets.size() == o._buckets.size()) {
            for (std::size_t i = 0; i < _buckets.size(); ++i)
                _buckets[i] += o._buckets[i];
            _overflow += o._overflow;
        } else {
            for (std::uint64_t b : o._buckets)
                _overflow += b;
            _overflow += o._overflow;
        }
    }

  private:
    std::size_t bucketIndex(std::uint64_t v) const;
    /** Inclusive-exclusive value range [lo, hi) of bucket i; i ==
     *  buckets().size() gives the lower edge of the overflow bucket. */
    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const;

    Scale _scale = Scale::Linear;
    std::uint64_t _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
    std::uint64_t _overflow = 0;
};

/**
 * A named collection of statistics. Groups form a tree; a component owns
 * its group and registers children/stats with human-readable names.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Register a scalar under this group. Returns it for chaining. */
    Scalar &
    addScalar(const std::string &name, Scalar &s)
    {
        _scalars[name] = &s;
        return s;
    }

    Formula &
    addFormula(const std::string &name, Formula &f)
    {
        _formulas[name] = &f;
        return f;
    }

    Histogram &
    addHistogram(const std::string &name, Histogram &h)
    {
        _histograms[name] = &h;
        return h;
    }

    void addChild(StatGroup *child) { _children.push_back(child); }

    const std::string &name() const { return _name; }

    /** Look up a scalar value by dotted path relative to this group. */
    std::uint64_t scalarValue(const std::string &path) const;

    /** Dump `prefix.name = value` lines for the whole subtree. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Call fn("group.sub.stat", value) for every scalar in the
     * subtree, in the same deterministic order dump() uses. This is
     * what the metrics sampler snapshots (see common/metrics.hh).
     */
    void visitScalars(
        const std::function<void(const std::string &, std::uint64_t)>
            &fn,
        const std::string &prefix = "") const;

    /** Dump the subtree as a JSON object. */
    void dumpJson(std::ostream &os, unsigned indent = 0) const;

    /** Reset every stat in the subtree. */
    void resetAll();

  private:
    std::string _name;
    std::map<std::string, Scalar *> _scalars;
    std::map<std::string, Formula *> _formulas;
    std::map<std::string, Histogram *> _histograms;
    std::vector<StatGroup *> _children;
};

} // namespace stats
} // namespace fsencr

#endif // FSENCR_COMMON_STATS_HH
