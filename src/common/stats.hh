/**
 * @file
 * Minimal gem5-flavoured statistics framework.
 *
 * Components register named scalar counters, formulas and histograms in a
 * StatGroup. Groups nest, and the whole tree can be dumped as
 * `group.sub.stat = value` lines or queried programmatically by the
 * benchmark harness.
 */

#ifndef FSENCR_COMMON_STATS_HH
#define FSENCR_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fsencr {
namespace stats {

/** A simple monotonically updated scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(std::uint64_t v) { _value += v; return *this; }
    Scalar &operator=(std::uint64_t v) { _value = v; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** A derived statistic computed on demand from other stats. */
class Formula
{
  public:
    using Fn = std::function<double()>;

    Formula() = default;
    explicit Formula(Fn fn) : _fn(std::move(fn)) {}

    void setFunction(Fn fn) { _fn = std::move(fn); }
    double value() const { return _fn ? _fn() : 0.0; }

  private:
    Fn _fn;
};

/** A fixed-bucket histogram (linear buckets plus overflow). */
class Histogram
{
  public:
    Histogram() : Histogram(16, 64) {}

    /**
     * @param num_buckets number of linear buckets
     * @param bucket_width width of each bucket
     */
    Histogram(unsigned num_buckets, std::uint64_t bucket_width)
        : _width(bucket_width), _buckets(num_buckets, 0)
    {}

    void
    sample(std::uint64_t v)
    {
        ++_samples;
        _sum += v;
        if (v > _max) _max = v;
        if (_samples == 1 || v < _min) _min = v;
        std::size_t idx = static_cast<std::size_t>(v / _width);
        if (idx >= _buckets.size())
            ++_overflow;
        else
            ++_buckets[idx];
    }

    std::uint64_t samples() const { return _samples; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t minValue() const { return _min; }
    std::uint64_t maxValue() const { return _max; }
    double mean() const
    {
        return _samples ? static_cast<double>(_sum) / _samples : 0.0;
    }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t bucketWidth() const { return _width; }

    /**
     * Estimated p-th percentile (p in [0, 100]) by linear
     * interpolation inside the matching bucket; samples in the
     * overflow bucket interpolate between the last bucket boundary
     * and the observed maximum. The result is clamped to
     * [minValue(), maxValue()], so a single-sample histogram reports
     * that sample exactly. An empty histogram reports 0.
     */
    double percentile(double p) const;

    void
    reset()
    {
        _samples = _sum = _min = _max = _overflow = 0;
        std::fill(_buckets.begin(), _buckets.end(), 0);
    }

  private:
    std::uint64_t _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
    std::uint64_t _overflow = 0;
};

/**
 * A named collection of statistics. Groups form a tree; a component owns
 * its group and registers children/stats with human-readable names.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Register a scalar under this group. Returns it for chaining. */
    Scalar &
    addScalar(const std::string &name, Scalar &s)
    {
        _scalars[name] = &s;
        return s;
    }

    Formula &
    addFormula(const std::string &name, Formula &f)
    {
        _formulas[name] = &f;
        return f;
    }

    Histogram &
    addHistogram(const std::string &name, Histogram &h)
    {
        _histograms[name] = &h;
        return h;
    }

    void addChild(StatGroup *child) { _children.push_back(child); }

    const std::string &name() const { return _name; }

    /** Look up a scalar value by dotted path relative to this group. */
    std::uint64_t scalarValue(const std::string &path) const;

    /** Dump `prefix.name = value` lines for the whole subtree. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Dump the subtree as a JSON object. */
    void dumpJson(std::ostream &os, unsigned indent = 0) const;

    /** Reset every stat in the subtree. */
    void resetAll();

  private:
    std::string _name;
    std::map<std::string, Scalar *> _scalars;
    std::map<std::string, Formula *> _formulas;
    std::map<std::string, Histogram *> _histograms;
    std::vector<StatGroup *> _children;
};

} // namespace stats
} // namespace fsencr

#endif // FSENCR_COMMON_STATS_HH
