#include "common/trace.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace fsencr {
namespace trace {

const char *
componentName(unsigned c)
{
    static const char *names[NumComponents] = {
        "ott_lookup",   "counter_fetch", "merkle_verify", "pad_gen",
        "nvm_access",   "writeback",     "cache_access",  "translation",
        "mmio",         "cpu_compute",   "sw_enc",
    };
    return c < NumComponents ? names[c] : "unknown";
}

Tracer::Tracer(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

void
Tracer::push(const Event &e)
{
    ring_[head_] = e;
    if (++head_ == ring_.size()) {
        head_ = 0;
        if (!wrapped_)
            warnLimited(1,
                        "trace ring buffer full (%zu events); oldest "
                        "spans are being overwritten",
                        ring_.size());
        wrapped_ = true;
    }
    ++emitted_;
}

void
Tracer::complete(const char *name, const char *cat, Tick ts, Tick dur,
                 std::uint32_t tid, std::uint64_t arg)
{
    Event e;
    e.name = name;
    e.cat = cat;
    e.ph = 'X';
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.arg = arg;
    push(e);
}

void
Tracer::instant(const char *name, const char *cat, Tick ts,
                std::uint64_t arg)
{
    Event e;
    e.name = name;
    e.cat = cat;
    e.ph = 'i';
    e.ts = ts;
    e.arg = arg;
    push(e);
}

void
Tracer::counter(const char *name, const char *cat, Tick ts,
                std::uint64_t value)
{
    Event e;
    e.name = name;
    e.cat = cat;
    e.ph = 'C';
    e.ts = ts;
    e.arg = value;
    push(e);
}

std::vector<Event>
Tracer::events() const
{
    std::vector<Event> out;
    out.reserve(size());
    if (wrapped_)
        for (std::size_t i = head_; i < ring_.size(); ++i)
            out.push_back(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i)
        out.push_back(ring_[i]);
    return out;
}

std::size_t
Tracer::size() const
{
    return wrapped_ ? ring_.size() : head_;
}

std::uint64_t
Tracer::dropped() const
{
    return emitted_ - size();
}

void
Tracer::clear()
{
    head_ = 0;
    wrapped_ = false;
    emitted_ = 0;
    imported_.clear();
}

namespace {

void
escapeTo(std::ostream &os, const char *s)
{
    for (; *s; ++s) {
        char c = *s;
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/** Ticks (ps) to trace_event microseconds, with full precision. */
std::string
ticksToUs(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06u",
                  static_cast<std::uint64_t>(t / 1000000),
                  static_cast<unsigned>(t % 1000000));
    return buf;
}

} // namespace

void
Tracer::exportJson(std::ostream &os) const
{
    os << "{\n  \"displayTimeUnit\": \"ns\",\n"
       << "  \"otherData\": {\"emitted\": " << emitted_
       << ", \"dropped\": " << dropped() << "},\n"
       << "  \"traceEvents\": [";
    bool first = true;
    std::vector<Event> evs = events();
    // A wrapped ring is invisible inside the Chrome viewer (otherData
    // is not rendered), so surface the truncation as a synthetic
    // instant marker at the oldest retained timestamp.
    if (dropped() > 0) {
        os << "\n    {\"name\": \"dropped_spans\", \"cat\": "
              "\"tracer\", \"ph\": \"i\", \"pid\": 0, \"tid\": 0, "
              "\"ts\": "
           << ticksToUs(evs.empty() ? 0 : evs.front().ts)
           << ", \"s\": \"g\", \"args\": {\"v\": " << dropped()
           << "}}";
        first = false;
    }
    for (const Event &e : evs) {
        if (!first)
            os << ',';
        first = false;
        os << "\n    {\"name\": \"";
        escapeTo(os, e.name);
        os << "\", \"cat\": \"";
        escapeTo(os, e.cat);
        os << "\", \"ph\": \"" << e.ph
           << "\", \"pid\": 0, \"tid\": " << e.tid
           << ", \"ts\": " << ticksToUs(e.ts);
        if (e.ph == 'X')
            os << ", \"dur\": " << ticksToUs(e.dur);
        if (e.ph == 'i')
            os << ", \"s\": \"g\"";
        if (e.ph == 'C')
            os << ", \"args\": {\"value\": " << e.arg << "}";
        else
            os << ", \"args\": {\"v\": " << e.arg << "}";
        os << "}";
    }
    os << "\n  ]\n}\n";
}

namespace {

/** Parse a trace_event "ts"/"dur" microsecond value back to ticks. */
Tick
usToTicks(const json::Value &v)
{
    // Split the raw literal at the decimal point so the integer part
    // never round-trips through a double.
    const std::string &lit = v.literal;
    auto dot = lit.find('.');
    std::uint64_t whole =
        std::strtoull(lit.substr(0, dot).c_str(), nullptr, 10);
    std::uint64_t frac = 0;
    if (dot != std::string::npos) {
        std::string f = lit.substr(dot + 1);
        f.resize(6, '0'); // pad/truncate to microsecond precision
        frac = std::strtoull(f.c_str(), nullptr, 10);
    }
    return whole * 1000000 + frac;
}

} // namespace

bool
Tracer::importJson(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    json::Value doc;
    if (!json::parse(buf.str(), doc) || !doc.isObject())
        return false;
    const json::Value *evs = doc.find("traceEvents");
    if (!evs || !evs->isArray())
        return false;

    clear();
    for (const json::Value &ev : evs->array) {
        if (!ev.isObject())
            return false;
        const json::Value *name = ev.find("name");
        const json::Value *cat = ev.find("cat");
        const json::Value *ph = ev.find("ph");
        const json::Value *ts = ev.find("ts");
        if (!name || !name->isString() || !cat || !cat->isString() ||
            !ph || !ph->isString() || ph->str.size() != 1 ||
            !ts || !ts->isNumber())
            return false;

        Event e;
        imported_.push_back(name->str);
        e.name = imported_.back().c_str();
        imported_.push_back(cat->str);
        e.cat = imported_.back().c_str();
        e.ph = ph->str[0];
        e.ts = usToTicks(*ts);
        if (const json::Value *tid = ev.find("tid"))
            e.tid = static_cast<std::uint32_t>(tid->asU64());
        if (const json::Value *dur = ev.find("dur"))
            e.dur = usToTicks(*dur);
        if (const json::Value *args = ev.find("args")) {
            if (const json::Value *a = args->find("v"))
                e.arg = a->asU64();
            else if (const json::Value *val = args->find("value"))
                e.arg = val->asU64();
        }
        push(e);
    }
    return true;
}

} // namespace trace
} // namespace fsencr
