/**
 * @file
 * Lightweight cycle-attribution tracing.
 *
 * Two cooperating pieces:
 *
 *  - trace::Breakdown — a per-request latency decomposition into named
 *    components (ott_lookup, counter_fetch, merkle_verify, pad_gen,
 *    nvm_access, writeback, ...). Every tick the System adds to its
 *    clock is attributed to exactly one component, so the component
 *    sums reproduce total ticks and the paper's latency budget
 *    (Figs. 8-15) can be decomposed honestly.
 *
 *  - trace::Tracer — a fixed-capacity event ring buffer fed by scoped
 *    probes. Components hold a `Tracer *` that is nullptr when tracing
 *    is disabled, so a disabled probe is a single pointer test and
 *    emits nothing (timing is never affected either way: the tracer
 *    only observes latencies that were already computed). The buffer
 *    exports Chrome `trace_event` JSON loadable in about://tracing /
 *    Perfetto, and can re-import its own export for round-trip tests.
 *
 * The simulator has a single accumulated clock, so events carry
 * explicit (start, duration) ticks rather than host timestamps.
 * Components that have no `now` parameter of their own (metadata
 * cache, Merkle tree) stamp events with Tracer::time(), which the
 * controller sets on request entry.
 */

#ifndef FSENCR_COMMON_TRACE_HH
#define FSENCR_COMMON_TRACE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fsencr {
namespace trace {

/**
 * Attribution components. The first six are the memory-controller
 * decomposition the paper's figures hinge on; the rest cover every
 * other source of simulated time so that the per-component sums equal
 * total ticks.
 */
enum Component : unsigned {
    OttLookup = 0,   //!< OTT search / spill recall exposed on the path
    CounterFetch,    //!< MECB/FECB metadata-cache access + NVM fetch
    MerkleVerify,    //!< Bonsai-walk ancestor fetches
    PadGen,          //!< OTP AES latency + pad-XOR on the return path
    NvmAccess,       //!< data-array reads/writes, page re-encryption
    Writeback,       //!< WPQ accept + full-queue stalls
    CacheAccess,     //!< L1/L2/L3 lookup cycles
    Translation,     //!< TLB-miss page walks and fault handling
    Mmio,            //!< kernel-MMIO metadata work (stamps, keys)
    CpuCompute,      //!< modeled compute, syscall entry, fences
    SwEnc,           //!< software-encryption page faults and msync
    NumComponents
};

/** Stable snake_case component name (stat/report/schema key). */
const char *componentName(unsigned c);

/** Per-request (or cumulative) latency decomposition. */
struct Breakdown
{
    std::array<Tick, NumComponents> ticks{};

    Tick
    total() const
    {
        Tick t = 0;
        for (Tick v : ticks)
            t += v;
        return t;
    }

    void clear() { ticks.fill(0); }

    Breakdown &
    operator+=(const Breakdown &o)
    {
        for (unsigned c = 0; c < NumComponents; ++c)
            ticks[c] += o.ticks[c];
        return *this;
    }
};

/** One trace event (Chrome trace_event model). */
struct Event
{
    const char *name = "";
    const char *cat = "";
    char ph = 'X';           //!< 'X' complete, 'i' instant, 'C' counter
    std::uint32_t tid = 0;   //!< lane: 0 = requests, 1+N = component N
    Tick ts = 0;             //!< start, in ticks (ps)
    Tick dur = 0;            //!< duration, in ticks ('X' only)
    std::uint64_t arg = 0;   //!< free payload (hit flag, probe count...)
};

/**
 * Fixed-capacity event ring buffer. When full, the oldest events are
 * overwritten (the tail of a run is usually the interesting part) and
 * `dropped()` counts the overwritten ones.
 */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 1u << 20);

    /** Current simulated time for probes without a `now` of their own. */
    void setTime(Tick t) { now_ = t; }
    Tick time() const { return now_; }

    void complete(const char *name, const char *cat, Tick ts, Tick dur,
                  std::uint32_t tid = 0, std::uint64_t arg = 0);
    void instant(const char *name, const char *cat, Tick ts,
                 std::uint64_t arg = 0);
    void counter(const char *name, const char *cat, Tick ts,
                 std::uint64_t value);

    /** Events currently resident, oldest first. */
    std::vector<Event> events() const;

    std::size_t size() const;
    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t emitted() const { return emitted_; }
    std::uint64_t dropped() const;

    void clear();

    /** Chrome trace_event JSON: {"traceEvents": [...], ...}. */
    void exportJson(std::ostream &os) const;

    /**
     * Parse a previous exportJson() back into this tracer (replacing
     * its contents). Accepts only the subset this class emits.
     * @return true on success
     */
    bool importJson(std::istream &is);

  private:
    void push(const Event &e);

    std::vector<Event> ring_;
    std::size_t head_ = 0; //!< next slot to write
    bool wrapped_ = false;
    std::uint64_t emitted_ = 0;
    Tick now_ = 0;
    /** Owned storage for names of imported events. */
    std::deque<std::string> imported_;
};

/**
 * RAII span probe: records a complete event over [start, end]. With a
 * null tracer the whole object is inert. If end() is never called the
 * span closes at the tracer's current time.
 */
class Span
{
  public:
    Span(Tracer *t, const char *name, const char *cat, Tick start)
        : t_(t), name_(name), cat_(cat), start_(start)
    {}

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    void
    end(Tick end_ts)
    {
        if (t_ && !ended_) {
            t_->complete(name_, cat_, start_,
                         end_ts > start_ ? end_ts - start_ : 0);
            ended_ = true;
        }
    }

    ~Span() { if (t_) end(t_->time()); }

  private:
    Tracer *t_;
    const char *name_;
    const char *cat_;
    Tick start_;
    bool ended_ = false;
};

} // namespace trace
} // namespace fsencr

#endif // FSENCR_COMMON_TRACE_HH
