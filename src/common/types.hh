/**
 * @file
 * Fundamental scalar types used across the FsEncr simulator.
 *
 * The simulator follows gem5 conventions: time is measured in ticks
 * (1 tick = 1 picosecond), physical and virtual addresses are 64-bit
 * integers, and cache lines are 64 bytes.
 */

#ifndef FSENCR_COMMON_TYPES_HH
#define FSENCR_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace fsencr {

/** Simulated time. 1 tick == 1 picosecond. */
using Tick = std::uint64_t;

/** Physical or virtual address. */
using Addr = std::uint64_t;

/** CPU cycle count (converted to ticks through a clock period). */
using Cycles = std::uint64_t;

/** One tick per picosecond. */
constexpr Tick tickPerPs = 1;

/** Ticks in one nanosecond. */
constexpr Tick tickPerNs = 1000;

/** Ticks in one microsecond. */
constexpr Tick tickPerUs = 1000 * tickPerNs;

/** Cache line (block) size used everywhere in the model. */
constexpr std::size_t blockSize = 64;

/** log2 of the block size. */
constexpr unsigned blockShift = 6;

/** Page size used by the OS model and counter blocks. */
constexpr std::size_t pageSize = 4096;

/** log2 of the page size. */
constexpr unsigned pageShift = 12;

/** Blocks per 4KB page (what one counter block covers). */
constexpr std::size_t blocksPerPage = pageSize / blockSize;

/** Align an address down to its cache-line base. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(blockSize - 1);
}

/** Align an address down to its page base. */
constexpr Addr
pageAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(pageSize - 1);
}

/** Offset of an address within its cache line. */
constexpr Addr
blockOffset(Addr addr)
{
    return addr & static_cast<Addr>(blockSize - 1);
}

/** Offset of an address within its page. */
constexpr Addr
pageOffset(Addr addr)
{
    return addr & static_cast<Addr>(pageSize - 1);
}

/** Page frame number of a physical address. */
constexpr Addr
pageNumber(Addr addr)
{
    return addr >> pageShift;
}

/** Index of the cache block within its page. */
constexpr unsigned
blockInPage(Addr addr)
{
    return static_cast<unsigned>((addr >> blockShift) &
                                 (blocksPerPage - 1));
}

} // namespace fsencr

#endif // FSENCR_COMMON_TYPES_HH
