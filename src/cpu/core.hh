/**
 * @file
 * Per-core state of the simple timing CPU model.
 *
 * The model is an in-order latency-accumulation CPU: each memory
 * operation's latency is computed through TLB, caches and the memory
 * controller and added to the global clock. Multiple cores interleave at
 * operation granularity and contend for the shared L3, metadata cache
 * and NVM banks — the effects the paper's normalized figures measure.
 */

#ifndef FSENCR_CPU_CORE_HH
#define FSENCR_CPU_CORE_HH

#include <cstdint>

#include "common/config.hh"
#include "common/stats.hh"
#include "cpu/tlb.hh"

namespace fsencr {

/** One hardware context. */
class Core
{
  public:
    Core(unsigned id, const CpuParams &params)
        : id_(id), tlb_(params.tlbEntries),
          statGroup_("core" + std::to_string(id))
    {
        statGroup_.addChild(&tlb_.statGroup());
        statGroup_.addScalar("loads", loads_);
        statGroup_.addScalar("stores", stores_);
        statGroup_.addScalar("clwbs", clwbs_);
        statGroup_.addScalar("fences", fences_);
        statGroup_.addScalar("pageFaults", pageFaults_);
    }

    unsigned id() const { return id_; }
    Tlb &tlb() { return tlb_; }

    /** Process currently scheduled on this core. */
    std::uint32_t currentPid() const { return pid_; }
    void setCurrentPid(std::uint32_t pid) { pid_ = pid; }

    stats::StatGroup &statGroup() { return statGroup_; }

    stats::Scalar loads_;
    stats::Scalar stores_;
    stats::Scalar clwbs_;
    stats::Scalar fences_;
    stats::Scalar pageFaults_;

  private:
    unsigned id_;
    Tlb tlb_;
    std::uint32_t pid_ = 0;
    stats::StatGroup statGroup_;
};

} // namespace fsencr

#endif // FSENCR_CPU_CORE_HH
