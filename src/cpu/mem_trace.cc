#include "cpu/mem_trace.hh"

#include <cstdio>
#include <cstring>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "fsenc/secure_memory_controller.hh"

namespace fsencr {

namespace {

/** Fixed 24-byte on-disk record. */
struct DiskRecord
{
    std::uint8_t kind;
    std::uint8_t pad[3];
    std::uint32_t gid;
    std::uint64_t paddr;
    std::uint32_t fid;
    std::uint32_t reserved;
};
static_assert(sizeof(DiskRecord) == 24, "trace record layout");

} // namespace

bool
MemTrace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    std::uint32_t header[4] = {magic, version,
                               static_cast<std::uint32_t>(
                                   records_.size()),
                               0};
    bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;
    for (const TraceRecord &r : records_) {
        if (!ok)
            break;
        DiskRecord d{};
        d.kind = static_cast<std::uint8_t>(r.kind);
        d.gid = r.gid;
        d.paddr = r.paddr;
        d.fid = r.fid;
        ok = std::fwrite(&d, sizeof(d), 1, f) == 1;
    }
    ok = (std::fclose(f) == 0) && ok;
    return ok;
}

bool
MemTrace::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;

    std::uint32_t header[4];
    if (std::fread(header, sizeof(header), 1, f) != 1 ||
        header[0] != magic || header[1] != version) {
        std::fclose(f);
        return false;
    }

    records_.clear();
    records_.reserve(header[2]);
    for (std::uint32_t i = 0; i < header[2]; ++i) {
        DiskRecord d;
        if (std::fread(&d, sizeof(d), 1, f) != 1) {
            std::fclose(f);
            return false;
        }
        TraceRecord r;
        r.kind = static_cast<TraceRecord::Kind>(d.kind);
        r.gid = d.gid;
        r.paddr = d.paddr;
        r.fid = d.fid;
        records_.push_back(r);
    }
    std::fclose(f);
    return true;
}

ReplayResult
replayTrace(const MemTrace &mt, const SimConfig &cfg,
            trace::Tracer *tracer,
            const std::function<void(SecureMemoryController &)> &inspect)
{
    PhysLayout layout(cfg.layout);
    NvmDevice device(cfg.pcm);
    Rng rng(cfg.seed);
    SecureMemoryController mc(cfg.sec, cfg.scheme, cfg.pcm,
                              cfg.cyclePeriod(), cfg.profile,
                              layout, device, McKeys::draw(rng));
    if (tracer)
        mc.setTracer(tracer);

    // Replay keys are derived deterministically from the trace ids so
    // that functional decryption stays consistent within the replay.
    Rng key_rng(cfg.seed ^ 0x7261636b);

    ReplayResult res;
    Tick now = 0;
    std::uint8_t zero_line[blockSize] = {};

    // Fold the controller's per-request breakdown into the replay's
    // attribution; the breakdown sums exactly to the request latency.
    auto advance_mc = [&](Tick lat) {
        res.attribution += mc.lastAccess();
        now += lat;
    };

    for (const TraceRecord &r : mt.records()) {
        switch (r.kind) {
          case TraceRecord::Kind::Read:
            advance_mc(mc.readLine(r.paddr, now));
            ++res.requests;
            break;
          case TraceRecord::Kind::Write:
            advance_mc(mc.writeLine(r.paddr, zero_line, now, false));
            ++res.requests;
            break;
          case TraceRecord::Kind::PersistWrite:
            advance_mc(mc.writeLine(r.paddr, zero_line, now, true));
            ++res.requests;
            break;
          case TraceRecord::Kind::MmioStamp:
            {
                Tick lat = mc.mmioStampPage(r.paddr, r.gid, r.fid, now);
                res.attribution.ticks[trace::Mmio] += lat;
                now += lat;
            }
            break;
          case TraceRecord::Kind::MmioKey:
            {
                Tick lat = mc.mmioRegisterFileKey(
                    r.gid, r.fid, crypto::randomKey(key_rng), now);
                res.attribution.ticks[trace::Mmio] += lat;
                now += lat;
            }
            break;
        }
    }

    res.totalTicks = now;
    res.nvmReads = device.numReads();
    res.nvmWrites = device.numWrites();
    if (inspect)
        inspect(mc);
    return res;
}

} // namespace fsencr
