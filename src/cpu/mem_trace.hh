/**
 * @file
 * Memory-request trace capture and replay (gem5 TraceCPU-style).
 *
 * A trace records the physical-address request stream leaving the
 * cache hierarchy plus the MMIO events the kernel issued (key
 * registration, FECB stamps), which is everything the secure memory
 * controller needs. Replaying a trace against controllers with
 * different configurations gives fast, perfectly-repeatable
 * sensitivity studies without re-running the OS and workload logic.
 *
 * The on-disk format is a little-endian binary stream of fixed-size
 * records with a magic/version header.
 */

#ifndef FSENCR_CPU_MEM_TRACE_HH
#define FSENCR_CPU_MEM_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"

namespace fsencr {

/** One trace event. */
struct TraceRecord
{
    enum class Kind : std::uint8_t {
        Read = 0,       //!< demand line fill
        Write = 1,      //!< background writeback
        PersistWrite = 2, //!< persist-ordered (clwb) write
        MmioStamp = 3,  //!< FECB stamp {gid, fid} at paddr
        MmioKey = 4,    //!< file-key registration {gid, fid}
    };

    Kind kind = Kind::Read;
    Addr paddr = 0;         //!< full address (DF-bit included)
    std::uint32_t gid = 0;  //!< MMIO events only
    std::uint32_t fid = 0;  //!< MMIO events only
};

/** An in-memory trace with binary (de)serialization. */
class MemTrace
{
  public:
    void
    append(const TraceRecord &r)
    {
        records_.push_back(r);
    }

    const std::vector<TraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** Write the trace to a file. @return true on success */
    bool save(const std::string &path) const;

    /** Load a trace from a file. @return true on success */
    bool load(const std::string &path);

    static constexpr std::uint32_t magic = 0x46734d54; // "FsMT"
    static constexpr std::uint32_t version = 1;

  private:
    std::vector<TraceRecord> records_;
};

/** Statistics of one replay run. */
struct ReplayResult
{
    Tick totalTicks = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t requests = 0;
    /** Per-component cycle attribution; total() == totalTicks. */
    trace::Breakdown attribution;
};

class SecureMemoryController;

/**
 * Replay a trace against a controller built from the given config
 * (fresh device + controller per call).
 *
 * @param tracer optional event tracer attached to the controller for
 *        the duration of the replay
 * @param inspect optional callback invoked with the controller after
 *        the last record, before it is destroyed (stats dumping)
 */
ReplayResult replayTrace(
    const MemTrace &mt, const struct SimConfig &cfg,
    trace::Tracer *tracer = nullptr,
    const std::function<void(SecureMemoryController &)> &inspect = {});

} // namespace fsencr

#endif // FSENCR_CPU_MEM_TRACE_HH
