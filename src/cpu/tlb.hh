/**
 * @file
 * Per-core TLB model.
 *
 * Fully-associative, LRU. Hits are free (folded into the L1 latency);
 * misses cost a page-table walk; unmapped pages raise a page fault that
 * the kernel model services. Entries carry the DF-bit so that every
 * access to a DAX-file page is tagged without kernel involvement after
 * the first fault (Section III-C).
 */

#ifndef FSENCR_CPU_TLB_HH
#define FSENCR_CPU_TLB_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fsencr {

/** A translation: virtual page -> physical page (with DF-bit). */
struct TlbEntry
{
    bool valid = false;
    Addr vpn = 0;
    /** Physical frame address (page-aligned), DF-bit included. */
    Addr pframe = 0;
    std::uint64_t lru = 0;
};

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(unsigned entries)
        : entries_(entries), statGroup_("tlb")
    {
        statGroup_.addScalar("hits", hits_);
        statGroup_.addScalar("misses", misses_);
    }

    /**
     * Look up a translation.
     * @param vaddr the virtual address
     * @param pframe_out page-aligned physical frame (with DF-bit)
     * @return true on hit
     */
    bool
    lookup(Addr vaddr, Addr &pframe_out)
    {
        Addr vpn = pageNumber(vaddr);
        ++lruClock_;
        for (TlbEntry &e : entries_) {
            if (e.valid && e.vpn == vpn) {
                ++hits_;
                e.lru = lruClock_;
                pframe_out = e.pframe;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    /** Install a translation, evicting LRU. */
    void
    insert(Addr vaddr, Addr pframe)
    {
        Addr vpn = pageNumber(vaddr);
        TlbEntry *victim = nullptr;
        for (TlbEntry &e : entries_) {
            if (e.valid && e.vpn == vpn) {
                victim = &e;
                break;
            }
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (!victim || e.lru < victim->lru)
                victim = &e;
        }
        victim->valid = true;
        victim->vpn = vpn;
        victim->pframe = pageAlign(pframe);
        victim->lru = ++lruClock_;
    }

    /// @name Fast-forward support (see docs/ARCHITECTURE.md).
    ///
    /// ffFind() locates an entry without touching LRU state or stats;
    /// ffCredit() then applies a batch of N hits against that entry in
    /// one step. `lruClock_ += n; e->lru = lruClock_; hits_ += n` is
    /// byte-identical to N consecutive lookup() hits on the same entry,
    /// because only the final lru stamp of the run is observable.
    /// Entry pointers are stable (the entry vector never resizes) but
    /// are only valid until the next insert()/invalidate()/flush().
    /// @{
    TlbEntry *
    ffFind(Addr vaddr)
    {
        Addr vpn = pageNumber(vaddr);
        for (TlbEntry &e : entries_)
            if (e.valid && e.vpn == vpn)
                return &e;
        return nullptr;
    }

    void
    ffCredit(TlbEntry *e, std::uint64_t n)
    {
        lruClock_ += n;
        e->lru = lruClock_;
        hits_ += n;
    }
    /// @}

    /** Drop a translation (munmap / unlink shootdown). */
    void
    invalidate(Addr vaddr)
    {
        Addr vpn = pageNumber(vaddr);
        for (TlbEntry &e : entries_)
            if (e.valid && e.vpn == vpn)
                e.valid = false;
    }

    /** Full flush (context switch / crash). */
    void
    flush()
    {
        for (TlbEntry &e : entries_)
            e.valid = false;
    }

    stats::StatGroup &statGroup() { return statGroup_; }

  private:
    std::vector<TlbEntry> entries_;
    std::uint64_t lruClock_ = 0;

    stats::StatGroup statGroup_;
    stats::Scalar hits_;
    stats::Scalar misses_;
};

} // namespace fsencr

#endif // FSENCR_CPU_TLB_HH
