/**
 * @file
 * AES-128 block cipher (FIPS-197), from scratch, with a tiered
 * encryption engine.
 *
 * The simulator uses AES both functionally (real ciphertext lives in the
 * modeled NVM device, so security tests are meaningful) and as the
 * hardware engine whose latency Table III fixes at 40 ns. Only AES-128 is
 * needed: memory-encryption keys, file keys and the OTT key are all
 * 128-bit, matching the paper.
 *
 * Because every modeled 64B line costs 4-8 block encryptions, the host
 * cost of simulation is dominated by this file. Three encryption
 * backends share one key schedule:
 *
 *  - Reference: the byte-wise FIPS-197 textbook cipher. Slow, obviously
 *    correct; always available and cross-checked against the fast paths
 *    in the test suite.
 *  - TTable: the classic four 1KB lookup tables that fold SubBytes,
 *    ShiftRows and MixColumns into four table reads + XORs per column.
 *  - AesNi: hardware AESENC rounds, compiled only when the toolchain
 *    targets x86-64 (guarded by FSENCR_HAVE_AESNI) and selected only
 *    when CPUID reports AES support at runtime.
 *
 * Encryption dispatches on the selected backend; decryption always uses
 * the reference inverse cipher (it only runs on cold paths: key
 * unwrapping and OTT spill-slot opens).
 */

#ifndef FSENCR_CRYPTO_AES_HH
#define FSENCR_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <cstddef>

namespace fsencr {
namespace crypto {

/** A 128-bit key or block. */
using Block128 = std::array<std::uint8_t, 16>;

/** AES-128 with a precomputed key schedule. */
class Aes128
{
  public:
    /** Selectable encryption implementations (fastest-first). */
    enum class Backend { AesNi, TTable, Reference };

    /** Expand the given 16-byte key; encrypt via the best backend. */
    explicit Aes128(const Block128 &key);

    /** Expand the given key with an explicit backend (tests, benches). */
    Aes128(const Block128 &key, Backend backend);

    /** Zero-key schedule (for containers); setKey() before real use. */
    Aes128();

    /** Encrypt one 16-byte block (ECB primitive). */
    Block128 encryptBlock(const Block128 &plain) const;

    /**
     * Encrypt four independent blocks (one 64B counter-mode pad).
     * The AES-NI path pipelines the four streams through the AES unit;
     * the table paths simply loop. Same result as four encryptBlock
     * calls.
     */
    void encryptBlocks4(const Block128 in[4], Block128 out[4]) const;

    /** Decrypt one 16-byte block (ECB primitive, reference path). */
    Block128 decryptBlock(const Block128 &cipher) const;

    /** Re-key in place. */
    void setKey(const Block128 &key);

    /** The backend this engine encrypts with. */
    Backend backend() const { return backend_; }

    /** Force a specific backend (AesNi silently degrades to TTable
     *  when unavailable). */
    void setBackend(Backend backend);

    /** Fastest backend available on this build + host. */
    static Backend bestBackend();

    /** True iff hardware AES is compiled in and the CPU supports it. */
    static bool aesniAvailable();

    /** Human-readable backend name. */
    static const char *backendName(Backend backend);

    /** Byte-wise FIPS-197 reference encryption (cross-check anchor). */
    Block128 encryptBlockRef(const Block128 &plain) const;

    /** Rounds for AES-128. */
    static constexpr unsigned numRounds = 10;

  private:
    Block128 encryptBlockTTable(const Block128 &plain) const;

    /** 11 round keys x 16 bytes. */
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys_;
    /** The same schedule as big-endian words for the T-table path. */
    std::array<std::uint32_t, 4 * (numRounds + 1)> roundKeyWords_;
    Backend backend_;
};

} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_AES_HH
