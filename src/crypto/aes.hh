/**
 * @file
 * AES-128 block cipher (FIPS-197), from scratch.
 *
 * The simulator uses AES both functionally (real ciphertext lives in the
 * modeled NVM device, so security tests are meaningful) and as the
 * hardware engine whose latency Table III fixes at 40 ns. Only AES-128 is
 * needed: memory-encryption keys, file keys and the OTT key are all
 * 128-bit, matching the paper.
 */

#ifndef FSENCR_CRYPTO_AES_HH
#define FSENCR_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <cstddef>

namespace fsencr {
namespace crypto {

/** A 128-bit key or block. */
using Block128 = std::array<std::uint8_t, 16>;

/** AES-128 with a precomputed key schedule. */
class Aes128
{
  public:
    /** Expand the given 16-byte key. */
    explicit Aes128(const Block128 &key);

    /** Encrypt one 16-byte block (ECB primitive). */
    Block128 encryptBlock(const Block128 &plain) const;

    /** Decrypt one 16-byte block (ECB primitive). */
    Block128 decryptBlock(const Block128 &cipher) const;

    /** Re-key in place. */
    void setKey(const Block128 &key);

    /** Rounds for AES-128. */
    static constexpr unsigned numRounds = 10;

  private:
    /** 11 round keys x 16 bytes. */
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys_;
};

} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_AES_HH
