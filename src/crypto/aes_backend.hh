/**
 * @file
 * Internal interface between the Aes128 dispatcher (aes.cc) and the
 * hardware AES-NI translation unit (aes_ni.cc). aes_ni.cc is compiled
 * with -maes on x86-64 hosts only; the rest of the library never needs
 * those ISA flags, so the intrinsics stay quarantined behind this
 * boundary. Not installed / not for use outside src/crypto.
 */

#ifndef FSENCR_CRYPTO_AES_BACKEND_HH
#define FSENCR_CRYPTO_AES_BACKEND_HH

#include <cstdint>

namespace fsencr {
namespace crypto {
namespace detail {

/** True iff this CPU executes AESENC (checked once, cached by caller). */
bool aesniCpuSupported();

/** Encrypt one block with the given 11x16B expanded schedule. */
void aesniEncrypt(const std::uint8_t *round_keys, const std::uint8_t *in,
                  std::uint8_t *out);

/** Encrypt four independent blocks, interleaved through the AES unit. */
void aesniEncrypt4(const std::uint8_t *round_keys, const std::uint8_t *in,
                   std::uint8_t *out);

} // namespace detail
} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_AES_BACKEND_HH
