/**
 * @file
 * Small LRU cache of expanded AES key schedules (host-side only).
 *
 * Counter-mode pad generation runs for every modeled line access but
 * the set of live keys at any instant is tiny, so re-expanding the
 * schedule per line (10 rounds of SubWord/Rcon) wastes most of the pad
 * cost. Entries are keyed by the 128-bit key value itself, so a stale
 * entry can never decrypt with the wrong schedule — a re-keyed file
 * simply misses and expands its new key. Explicit invalidation (re-key,
 * lazy-rekey completion, shred, lock, capsule import) is hygiene: it
 * drops dead schedules so retired key material does not linger in host
 * memory.
 *
 * This cache models no hardware and charges no ticks; the modeled AES
 * latency is unchanged wherever it is used.
 */

#ifndef FSENCR_CRYPTO_AES_CACHE_HH
#define FSENCR_CRYPTO_AES_CACHE_HH

#include <cstdint>
#include <vector>

#include "crypto/aes.hh"

namespace fsencr {
namespace crypto {

/** LRU cache of keyed Aes128 engines, keyed by key value. */
class AesContextCache
{
  public:
    explicit AesContextCache(std::size_t capacity = 16)
        : slots_(capacity)
    {}

    /**
     * Return a keyed engine, expanding and caching it on a miss. The
     * reference stays valid until a later get() evicts the slot; copy
     * the engine when holding it across other lookups.
     */
    const Aes128 &
    get(const Block128 &key, bool *hit = nullptr)
    {
        // Invalid slots carry lastUse == 0, so a plain minimum finds
        // a free slot before evicting the least-recently-used one.
        Slot *victim = &slots_[0];
        for (Slot &s : slots_) {
            if (s.valid && s.key == key) {
                s.lastUse = ++clock_;
                if (hit)
                    *hit = true;
                return s.aes;
            }
            if (s.lastUse < victim->lastUse)
                victim = &s;
        }
        if (hit)
            *hit = false;
        victim->valid = true;
        victim->key = key;
        victim->aes.setKey(key);
        victim->lastUse = ++clock_;
        return victim->aes;
    }

    /** Drop one key's schedule (no-op if absent). */
    void
    invalidate(const Block128 &key)
    {
        for (Slot &s : slots_) {
            if (s.valid && s.key == key) {
                s.valid = false;
                s.lastUse = 0;
            }
        }
    }

    /** Drop every cached schedule. */
    void
    invalidateAll()
    {
        for (Slot &s : slots_) {
            s.valid = false;
            s.lastUse = 0;
        }
    }

    /** Number of cached schedules (tests). */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const Slot &s : slots_)
            n += s.valid;
        return n;
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint64_t lastUse = 0;
        Block128 key{};
        Aes128 aes;
    };
    std::vector<Slot> slots_;
    std::uint64_t clock_ = 0;
};

} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_AES_CACHE_HH
