/**
 * @file
 * Hardware AES-128 encryption via AES-NI. This translation unit is the
 * only one compiled with -maes (see src/crypto/CMakeLists.txt); callers
 * must gate on aesniCpuSupported() before using the encrypt entry
 * points, so the intrinsics never execute on hosts without the ISA.
 */

#include "crypto/aes_backend.hh"

#include <wmmintrin.h>

namespace fsencr {
namespace crypto {
namespace detail {

bool
aesniCpuSupported()
{
    return __builtin_cpu_supports("aes") &&
           __builtin_cpu_supports("sse2");
}

namespace {

inline void
loadSchedule(const std::uint8_t *round_keys, __m128i k[11])
{
    for (int r = 0; r < 11; ++r)
        k[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(round_keys + 16 * r));
}

} // namespace

void
aesniEncrypt(const std::uint8_t *round_keys, const std::uint8_t *in,
             std::uint8_t *out)
{
    __m128i k[11];
    loadSchedule(round_keys, k);
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i *>(in));
    b = _mm_xor_si128(b, k[0]);
    for (int r = 1; r < 10; ++r)
        b = _mm_aesenc_si128(b, k[r]);
    b = _mm_aesenclast_si128(b, k[10]);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), b);
}

void
aesniEncrypt4(const std::uint8_t *round_keys, const std::uint8_t *in,
              std::uint8_t *out)
{
    __m128i k[11];
    loadSchedule(round_keys, k);
    const __m128i *src = reinterpret_cast<const __m128i *>(in);
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + 0), k[0]);
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + 1), k[0]);
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + 2), k[0]);
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + 3), k[0]);
    // Four independent streams keep the AES unit's pipeline full: the
    // per-round latency of AESENC hides behind the other three lanes.
    for (int r = 1; r < 10; ++r) {
        b0 = _mm_aesenc_si128(b0, k[r]);
        b1 = _mm_aesenc_si128(b1, k[r]);
        b2 = _mm_aesenc_si128(b2, k[r]);
        b3 = _mm_aesenc_si128(b3, k[r]);
    }
    b0 = _mm_aesenclast_si128(b0, k[10]);
    b1 = _mm_aesenclast_si128(b1, k[10]);
    b2 = _mm_aesenclast_si128(b2, k[10]);
    b3 = _mm_aesenclast_si128(b3, k[10]);
    __m128i *dst = reinterpret_cast<__m128i *>(out);
    _mm_storeu_si128(dst + 0, b0);
    _mm_storeu_si128(dst + 1, b1);
    _mm_storeu_si128(dst + 2, b2);
    _mm_storeu_si128(dst + 3, b3);
}

} // namespace detail
} // namespace crypto
} // namespace fsencr
