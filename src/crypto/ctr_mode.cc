#include "crypto/ctr_mode.hh"

#include <cstring>

namespace fsencr {
namespace crypto {

Line
makeOtp(const Aes128 &aes, const CtrIv &iv)
{
    // Pack the IV fields: pageId(8B) | major(8B') folded with
    // pageOffset, minor and the word counter. Layout is fixed; any
    // injective packing preserves CTR security. The word counter lives
    // in bits [1:0], below pageOffset<<2, so XOR-ing it in never
    // collides across the four blocks of one pad.
    std::uint64_t hi = iv.pageId;
    std::uint64_t lo_base =
        (iv.major << 22) ^
        (static_cast<std::uint64_t>(iv.minor) << 8) ^
        (static_cast<std::uint64_t>(iv.pageOffset) << 2);

    // All four blocks of the pad in one batch: the IV is packed once
    // and the cipher can pipeline the four independent streams.
    Block128 in[4];
    for (std::uint64_t word = 0; word < blockSize / 16; ++word) {
        std::uint64_t lo = lo_base ^ word;
        std::memcpy(in[word].data(), &hi, 8);
        std::memcpy(in[word].data() + 8, &lo, 8);
    }
    Block128 out[4];
    aes.encryptBlocks4(in, out);

    Line pad;
    for (unsigned word = 0; word < blockSize / 16; ++word)
        std::memcpy(pad.data() + word * 16, out[word].data(), 16);
    return pad;
}

void
xorLine(Line &dst, const Line &src)
{
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] ^= src[i];
}

void
xorLine(std::uint8_t *dst, const Line &pad)
{
    for (std::size_t i = 0; i < pad.size(); ++i)
        dst[i] ^= pad[i];
}

} // namespace crypto
} // namespace fsencr
