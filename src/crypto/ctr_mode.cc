#include "crypto/ctr_mode.hh"

#include <cstring>

namespace fsencr {
namespace crypto {

Line
makeOtp(const Aes128 &aes, const CtrIv &iv)
{
    Line pad;
    for (unsigned word = 0; word < blockSize / 16; ++word) {
        Block128 in{};
        // Pack the IV fields: pageId(8B) | major(8B') folded with
        // pageOffset, minor and the word counter. Layout is fixed; any
        // injective packing preserves CTR security.
        std::uint64_t hi = iv.pageId;
        std::uint64_t lo = (iv.major << 22) ^
                           (static_cast<std::uint64_t>(iv.minor) << 8) ^
                           (static_cast<std::uint64_t>(iv.pageOffset) << 2) ^
                           word;
        std::memcpy(in.data(), &hi, 8);
        std::memcpy(in.data() + 8, &lo, 8);
        Block128 out = aes.encryptBlock(in);
        std::memcpy(pad.data() + word * 16, out.data(), 16);
    }
    return pad;
}

void
xorLine(Line &dst, const Line &src)
{
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] ^= src[i];
}

void
xorLine(std::uint8_t *dst, const Line &pad)
{
    for (std::size_t i = 0; i < pad.size(); ++i)
        dst[i] ^= pad[i];
}

} // namespace crypto
} // namespace fsencr
