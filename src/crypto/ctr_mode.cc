#include "crypto/ctr_mode.hh"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace fsencr {
namespace crypto {

Line
makeOtp(const Aes128 &aes, const CtrIv &iv)
{
    // Pack the IV fields: pageId(8B) | major(8B') folded with
    // pageOffset, minor and the word counter. Layout is fixed; any
    // injective packing preserves CTR security. The word counter lives
    // in bits [1:0], below pageOffset<<2, so XOR-ing it in never
    // collides across the four blocks of one pad.
    std::uint64_t hi = iv.pageId;
    std::uint64_t lo_base =
        (iv.major << 22) ^
        (static_cast<std::uint64_t>(iv.minor) << 8) ^
        (static_cast<std::uint64_t>(iv.pageOffset) << 2);

    // All four blocks of the pad in one batch: the IV is packed once
    // and the cipher can pipeline the four independent streams.
    Block128 in[4];
    for (std::uint64_t word = 0; word < blockSize / 16; ++word) {
        std::uint64_t lo = lo_base ^ word;
        std::memcpy(in[word].data(), &hi, 8);
        std::memcpy(in[word].data() + 8, &lo, 8);
    }
    Block128 out[4];
    aes.encryptBlocks4(in, out);

    Line pad;
    for (unsigned word = 0; word < blockSize / 16; ++word)
        std::memcpy(pad.data() + word * 16, out[word].data(), 16);
    return pad;
}

PadStream::PadStream(const Aes128 &aes, std::uint64_t page_id,
                     std::uint64_t major, const std::uint8_t *minors,
                     unsigned num_blocks)
    : aes_(aes), hi_(page_id), majorBase_(major << 22),
      minors_(minors), numBlocks_(num_blocks)
{}

const Line &
PadStream::next()
{
    assert(emitted_ < numBlocks_ && "pad stream exhausted");
    if (emitted_ == filled_)
        refill();
    return pads_[emitted_++ % window];
}

void
PadStream::refill()
{
    unsigned count = std::min(window, numBlocks_ - filled_);

    // Phase 1: pack every IV of the window — pure integer code, the
    // invariant pageId/major halves were folded at construction. The
    // packing matches makeOtp() exactly: lo = (major << 22) ^
    // (minor << 8) ^ (blk << 2) ^ word.
    Block128 in[window * blockSize / 16];
    for (unsigned i = 0; i < count; ++i) {
        unsigned blk = filled_ + i;
        std::uint64_t lo_base =
            majorBase_ ^
            (static_cast<std::uint64_t>(minors_[blk]) << 8) ^
            (static_cast<std::uint64_t>(blk) << 2);
        for (std::uint64_t word = 0; word < blockSize / 16; ++word) {
            std::uint64_t lo = lo_base ^ word;
            Block128 &b = in[i * 4 + word];
            std::memcpy(b.data(), &hi_, 8);
            std::memcpy(b.data() + 8, &lo, 8);
        }
    }

    // Phase 2: run the cipher over the packed batch back-to-back.
    for (unsigned i = 0; i < count; ++i) {
        Block128 out[4];
        aes_.encryptBlocks4(&in[i * 4], out);
        Line &pad = pads_[(filled_ + i) % window];
        for (unsigned word = 0; word < blockSize / 16; ++word)
            std::memcpy(pad.data() + word * 16, out[word].data(), 16);
    }
    filled_ += count;
}

void
xorLine(Line &dst, const Line &src)
{
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] ^= src[i];
}

void
xorLine(std::uint8_t *dst, const Line &pad)
{
    for (std::size_t i = 0; i < pad.size(); ++i)
        dst[i] ^= pad[i];
}

} // namespace crypto
} // namespace fsencr
