/**
 * @file
 * Counter-mode (CTR) one-time-pad construction for 64-byte cache lines.
 *
 * Follows Figure 2 of the paper: the Initialization Vector carries a
 * unique page ID, the page offset (block index within the page) for
 * spatial uniqueness, a per-page major counter, and a per-block minor
 * counter for temporal uniqueness. The 64-byte pad is produced by
 * encrypting four IVs (one per 16-byte AES block, distinguished by a
 * word-counter field) under the engine key.
 */

#ifndef FSENCR_CRYPTO_CTR_MODE_HH
#define FSENCR_CRYPTO_CTR_MODE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "crypto/aes.hh"

namespace fsencr {
namespace crypto {

/** A 64-byte one-time pad (or data line). */
using Line = std::array<std::uint8_t, blockSize>;

/** The fields of a counter-mode IV (Figure 2). */
struct CtrIv
{
    std::uint64_t pageId;     //!< unique page identifier (PFN)
    std::uint32_t pageOffset; //!< block index within the page
    std::uint64_t major;      //!< per-page major counter
    std::uint32_t minor;      //!< per-block minor counter
};

/**
 * Generate the 64-byte OTP for a line.
 *
 * @param aes keyed AES engine
 * @param iv IV fields for this line version
 * @return 64-byte pad
 */
Line makeOtp(const Aes128 &aes, const CtrIv &iv);

/** XOR two 64-byte lines (dst ^= src). */
void xorLine(Line &dst, const Line &src);

/** XOR a raw 64-byte buffer with a pad in place. */
void xorLine(std::uint8_t *dst, const Line &pad);

} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_CTR_MODE_HH
