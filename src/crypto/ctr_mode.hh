/**
 * @file
 * Counter-mode (CTR) one-time-pad construction for 64-byte cache lines.
 *
 * Follows Figure 2 of the paper: the Initialization Vector carries a
 * unique page ID, the page offset (block index within the page) for
 * spatial uniqueness, a per-page major counter, and a per-block minor
 * counter for temporal uniqueness. The 64-byte pad is produced by
 * encrypting four IVs (one per 16-byte AES block, distinguished by a
 * word-counter field) under the engine key.
 */

#ifndef FSENCR_CRYPTO_CTR_MODE_HH
#define FSENCR_CRYPTO_CTR_MODE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "crypto/aes.hh"

namespace fsencr {
namespace crypto {

/** A 64-byte one-time pad (or data line). */
using Line = std::array<std::uint8_t, blockSize>;

/** The fields of a counter-mode IV (Figure 2). */
struct CtrIv
{
    std::uint64_t pageId;     //!< unique page identifier (PFN)
    std::uint32_t pageOffset; //!< block index within the page
    std::uint64_t major;      //!< per-page major counter
    std::uint32_t minor;      //!< per-block minor counter
};

/**
 * Generate the 64-byte OTP for a line.
 *
 * @param aes keyed AES engine
 * @param iv IV fields for this line version
 * @return 64-byte pad
 */
Line makeOtp(const Aes128 &aes, const CtrIv &iv);

/**
 * Precomputed pad stream for a sequential extent of one page.
 *
 * Page-granular sweeps (re-encryption after a major-counter bump,
 * eager/lazy re-keys) build 64 pads whose IVs differ only in the
 * block index and per-line minor counter — pageId and major are
 * loop-invariant. PadStream packs the invariant IV half once and
 * materializes pads a sliding window of lines at a time: all IVs of
 * the window are packed in one pure-integer pass, then the cipher
 * runs over the whole batch back-to-back, so the 4-wide AES pipeline
 * never drains between lines.
 *
 * The blk-th next() call returns a pad byte-identical to
 * makeOtp(aes, {page_id, blk, major, minors[blk]}) — golden-tested
 * in tests/test_fast_forward.cc.
 */
class PadStream
{
  public:
    /** Lines materialized per refill. */
    static constexpr unsigned window = 8;

    /**
     * @param aes keyed engine (must outlive the stream)
     * @param page_id IV page identifier, shared by the extent
     * @param major shared per-page major counter
     * @param minors per-line minor counters, indexed by block
     *        (must outlive the stream)
     * @param num_blocks extent length in lines
     */
    PadStream(const Aes128 &aes, std::uint64_t page_id,
              std::uint64_t major, const std::uint8_t *minors,
              unsigned num_blocks);

    /** The next block's pad, in extent order. */
    const Line &next();

  private:
    void refill();

    const Aes128 &aes_;
    std::uint64_t hi_;
    std::uint64_t majorBase_;
    const std::uint8_t *minors_;
    unsigned numBlocks_;
    unsigned emitted_ = 0;
    unsigned filled_ = 0;
    std::array<Line, window> pads_;
};

/** XOR two 64-byte lines (dst ^= src). */
void xorLine(Line &dst, const Line &src);

/** XOR a raw 64-byte buffer with a pad in place. */
void xorLine(std::uint8_t *dst, const Line &pad);

} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_CTR_MODE_HH
