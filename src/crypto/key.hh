/**
 * @file
 * Key types, generation and derivation.
 *
 * Mirrors the paper's key hierarchy (Section III-E): per-file File
 * Encryption Keys (FEK) are random; the FEK-encrypting key (FEKEK, the
 * user master key) is derived from a passphrase. The OTT key and the
 * memory-encryption key are processor-resident randoms.
 */

#ifndef FSENCR_CRYPTO_KEY_HH
#define FSENCR_CRYPTO_KEY_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "crypto/aes.hh"
#include "crypto/sha256.hh"

namespace fsencr {
namespace crypto {

/** 128-bit key. */
using Key128 = Block128;

/** All-zero key constant (an invalid / unset key). */
inline Key128
zeroKey()
{
    return Key128{};
}

/** True iff the key is the all-zero sentinel. */
inline bool
isZeroKey(const Key128 &k)
{
    for (auto b : k)
        if (b != 0)
            return false;
    return true;
}

/** Generate a random key from the given deterministic RNG. */
inline Key128
randomKey(Rng &rng)
{
    Key128 k;
    rng.fill(k.data(), k.size());
    return k;
}

/**
 * Derive a 128-bit key from a passphrase with an iterated, salted
 * SHA-256 (a miniature PBKDF; iteration count is small because the
 * simulator derives keys constantly in tests).
 */
inline Key128
deriveKey(const std::string &passphrase, const std::string &salt,
          unsigned iterations = 64)
{
    Digest256 d = Sha256::digest(salt + ":" + passphrase);
    for (unsigned i = 1; i < iterations; ++i)
        d = Sha256::digest(d.data(), d.size());
    Key128 k;
    for (int i = 0; i < 16; ++i)
        k[i] = d[i];
    return k;
}

/**
 * Wrap (encrypt) one key under another — used to store FEKs in file
 * metadata encrypted by the user master key (FEKEK), as eCryptfs does.
 */
inline Key128
wrapKey(const Key128 &kek, const Key128 &key)
{
    Aes128 aes(kek);
    return aes.encryptBlock(key);
}

/** Unwrap (decrypt) a wrapped key. */
inline Key128
unwrapKey(const Key128 &kek, const Key128 &wrapped)
{
    Aes128 aes(kek);
    return aes.decryptBlock(wrapped);
}

} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_KEY_HH
