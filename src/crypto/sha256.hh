/**
 * @file
 * SHA-256 (FIPS 180-4), from scratch.
 *
 * Used for Merkle-tree MACs over 64-byte metadata blocks, the Osiris-style
 * ECC probe, and the passphrase key-derivation function.
 */

#ifndef FSENCR_CRYPTO_SHA256_HH
#define FSENCR_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>

namespace fsencr {
namespace crypto {

/** A 256-bit digest. */
using Digest256 = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Restart the hash. */
    void reset();

    /** Absorb len bytes. */
    void update(const void *data, std::size_t len);

    /** Finish and return the digest. The context must be reset to reuse. */
    Digest256 final();

    /** One-shot helper. */
    static Digest256 digest(const void *data, std::size_t len);

    /** One-shot helper over a string. */
    static Digest256 digest(const std::string &s);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t bitLen_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t bufLen_;
};

/** Truncate a digest to 64 bits (hash-table keys, short MACs). */
std::uint64_t digestTo64(const Digest256 &d);

} // namespace crypto
} // namespace fsencr

#endif // FSENCR_CRYPTO_SHA256_HH
