#include "fault/fault_injector.hh"

#include "common/logging.hh"

namespace fsencr {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::PowerLossAtWrite: return "power-loss-at-write";
      case FaultKind::PowerLossAtTick:  return "power-loss-at-tick";
      case FaultKind::TornWrite:        return "torn-write";
      case FaultKind::DroppedWrite:     return "dropped-write";
      case FaultKind::BitFlipOnWrite:   return "bit-flip-on-write";
      case FaultKind::BitFlipOnEcc:     return "bit-flip-on-ecc";
      case FaultKind::BitFlipAtRest:    return "bit-flip-at-rest";
      case FaultKind::PartialBackupFlush:
        return "partial-backup-flush";
    }
    return "unknown";
}

void
FaultInjector::schedule(const FaultSpec &spec)
{
    specs_.push_back(spec);
    state_.emplace_back();
}

void
FaultInjector::reset()
{
    specs_.clear();
    state_.clear();
    log_.clear();
    writes_ = 0;
    eccStores_ = 0;
    flushLines_ = 0;
    now_ = 0;
    tripped_ = false;
    pendingLoss_ = false;
    suppressEccFor_.reset();
}

void
FaultInjector::trip(FaultKind kind, Addr addr)
{
    tripped_ = true;
    pendingLoss_ = false;
    log_.push_back({kind, addr, writes_, now_});
    throw PowerLossEvent(writes_, now_);
}

FaultInjector::WriteOutcome
FaultInjector::onWriteLine(Addr line_addr, std::uint8_t *buf,
                           unsigned &keep_bytes)
{
    if (tripped_)
        return WriteOutcome::Store;
    // A loss armed by an earlier torn/dropped persist fires before the
    // next write can reach the array.
    if (pendingLoss_)
        trip(FaultKind::PowerLossAtWrite, line_addr);

    ++writes_;
    WriteOutcome outcome = WriteOutcome::Store;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const FaultSpec &s = specs_[i];
        SpecState &st = state_[i];
        if (st.fired)
            continue;
        if (line_addr < s.addrLo || line_addr >= s.addrHi)
            continue;
        switch (s.kind) {
          case FaultKind::PowerLossAtWrite:
            if (++st.seen == s.atWrite) {
                st.fired = true;
                trip(FaultKind::PowerLossAtWrite, line_addr);
            }
            break;
          case FaultKind::TornWrite:
            if (++st.seen == s.atWrite) {
                st.fired = true;
                outcome = WriteOutcome::Torn;
                keep_bytes = s.keepBytes;
                suppressEccFor_ = line_addr;
                if (s.thenPowerLoss)
                    pendingLoss_ = true;
                log_.push_back({s.kind, line_addr, writes_, now_});
            }
            break;
          case FaultKind::DroppedWrite:
            if (++st.seen == s.atWrite) {
                st.fired = true;
                outcome = WriteOutcome::Drop;
                suppressEccFor_ = line_addr;
                if (s.thenPowerLoss)
                    pendingLoss_ = true;
                log_.push_back({s.kind, line_addr, writes_, now_});
            }
            break;
          case FaultKind::BitFlipOnWrite:
            if (++st.seen == s.atWrite) {
                st.fired = true;
                buf[(s.bit / 8) % blockSize] ^=
                    static_cast<std::uint8_t>(1u << (s.bit % 8));
                log_.push_back({s.kind, line_addr, writes_, now_});
            }
            break;
          default:
            break; // tick losses / ECC flips don't count line writes
        }
    }
    return outcome;
}

FaultInjector::EccAction
FaultInjector::onSetEcc(Addr line_addr, std::uint32_t &ecc)
{
    if (tripped_)
        return EccAction::Store;

    ++eccStores_;
    EccAction action = EccAction::Store;

    // The ECC store paired with a torn/dropped data write rides with
    // it: the whole (line, ECC) persist fails as a unit.
    if (suppressEccFor_ && *suppressEccFor_ == line_addr) {
        suppressEccFor_.reset();
        action = EccAction::Drop;
    }

    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const FaultSpec &s = specs_[i];
        SpecState &st = state_[i];
        if (st.fired || s.kind != FaultKind::BitFlipOnEcc)
            continue;
        if (line_addr < s.addrLo || line_addr >= s.addrHi)
            continue;
        if (++st.seen == s.atWrite) {
            st.fired = true;
            ecc ^= (1u << (s.bit % 32));
            log_.push_back({s.kind, line_addr, writes_, now_});
        }
    }

    // Check the armed loss *after* the pairing decision so a torn
    // persist and its ECC fail atomically before power dies.
    if (pendingLoss_)
        trip(FaultKind::PowerLossAtWrite, line_addr);
    return action;
}

void
FaultInjector::onTick(Tick now)
{
    now_ = now;
    if (tripped_)
        return;
    if (pendingLoss_)
        trip(FaultKind::PowerLossAtTick, 0);
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const FaultSpec &s = specs_[i];
        SpecState &st = state_[i];
        if (st.fired || s.kind != FaultKind::PowerLossAtTick)
            continue;
        if (now >= s.atTick) {
            st.fired = true;
            trip(FaultKind::PowerLossAtTick, 0);
        }
    }
}

bool
FaultInjector::onBackupFlushLine(Addr line_addr)
{
    // Deliberately ignores tripped_: the drain happens during the
    // crash itself, after any power loss has already fired.
    ++flushLines_;
    bool allow = true;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const FaultSpec &s = specs_[i];
        SpecState &st = state_[i];
        if (s.kind != FaultKind::PartialBackupFlush)
            continue;
        if (line_addr < s.addrLo || line_addr >= s.addrHi)
            continue;
        // Not one-shot: once the budget is spent, every later line in
        // the window is lost, and each loss is logged for the oracle.
        if (st.seen++ >= s.flushLines) {
            st.fired = true;
            allow = false;
            log_.push_back({s.kind, line_addr, writes_, now_});
        }
    }
    return allow;
}

void
FaultInjector::noteTamper(Addr line_addr, unsigned bit)
{
    log_.push_back({FaultKind::BitFlipAtRest, line_addr,
                    writes_, now_});
    (void)bit;
}

} // namespace fsencr
