/**
 * @file
 * Deterministic fault injection for crash-consistency stress testing.
 *
 * The injector models the failure modes the paper's recovery story has
 * to survive (Sections V and VII): power loss at an arbitrary point in
 * the write stream or at an arbitrary tick (including mid-`fileWrite`,
 * mid-`copyFile` and mid-`fsync`), torn 64-byte line writes where only
 * a prefix of the line reaches the cell array, persists dropped
 * entirely, and bit flips in data lines, ECC words or the persisted
 * metadata image.
 *
 * Faults are *scheduled*, not sampled: every fault names the exact
 * write ordinal or tick at which it fires, so a run is exactly
 * reproducible from its fault list. Harnesses derive those ordinals
 * from a seeded Rng plus a fault-free dry run. With no injector
 * attached (the default), the device hooks are null-guarded and the
 * simulation is bit-identical to a build without this subsystem.
 *
 * A power loss is delivered as a C++ exception (PowerLossEvent) thrown
 * from inside the device/system hooks, so it unwinds out of whatever
 * operation is in flight exactly like real power failure interrupts a
 * store stream. The harness catches it, calls System::crash() and
 * System::recover(), and checks invariants. After tripping, the
 * injector goes inert (recovery-time writes are never faulted) until
 * reset().
 */

#ifndef FSENCR_FAULT_FAULT_INJECTOR_HH
#define FSENCR_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/types.hh"

namespace fsencr {

/** Thrown from an injector hook when an armed power loss trips. */
class PowerLossEvent : public std::runtime_error
{
  public:
    PowerLossEvent(std::uint64_t write_index, Tick tick)
        : std::runtime_error("injected power loss"),
          writeIndex(write_index), tick(tick)
    {}

    /** Device line writes seen when power died. */
    std::uint64_t writeIndex;
    /** Simulated time of the loss. */
    Tick tick;
};

/** The fault taxonomy (docs/ARCHITECTURE.md, "Fault model"). */
enum class FaultKind {
    /** Power dies as the Nth matching line write is in flight: the
     *  write (and everything after it) never reaches the array. */
    PowerLossAtWrite,
    /** Power dies at (or after) an absolute simulated tick. */
    PowerLossAtTick,
    /** The Nth matching line write tears: only the first keepBytes
     *  persist, and the paired ECC store is dropped with it. */
    TornWrite,
    /** The Nth matching line write is silently dropped (with its
     *  paired ECC store): the line keeps its previous contents. */
    DroppedWrite,
    /** One bit of the Nth matching line write flips in flight. */
    BitFlipOnWrite,
    /** One bit of the Nth matching ECC store flips in flight. */
    BitFlipOnEcc,
    /** At-rest corruption applied directly to the device image by the
     *  harness (data, counter/FECB or OTT-spill bytes); recorded via
     *  noteTamper() so the injection log stays complete. */
    BitFlipAtRest,
    /** eADR only: the crash-time backup-power flush runs out of
     *  energy after flushLines drained lines; every later line in the
     *  drain (matching the address window) is dropped. One record is
     *  logged per dropped line so the harness can map the unflushed
     *  tail. Never throws — power is already lost when it fires. */
    PartialBackupFlush,
};

const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::PowerLossAtWrite;

    /** 1-based ordinal of the matching write (write-indexed kinds
     *  count line writes, BitFlipOnEcc counts ECC stores) *within the
     *  address window*, so "the 3rd metadata write" is expressible. */
    std::uint64_t atWrite = 1;

    /** Absolute trip time for PowerLossAtTick. */
    Tick atTick = 0;

    /** TornWrite: bytes of the line that persist (0..63). */
    unsigned keepBytes = 32;

    /** BitFlip*: bit to flip (0..511 within a line, 0..31 in ECC). */
    unsigned bit = 0;

    /** Address window [addrLo, addrHi) the fault applies to; defaults
     *  to the whole address space. */
    Addr addrLo = 0;
    Addr addrHi = ~static_cast<Addr>(0);

    /** Torn/dropped writes: arm a power loss that trips at the next
     *  hook after the paired ECC store resolves (power died during
     *  this very persist). */
    bool thenPowerLoss = false;

    /** PartialBackupFlush: lines the backup-power flush drains before
     *  the energy budget runs out (0 = the flush dies immediately). */
    std::uint64_t flushLines = 0;
};

/** One fault that actually fired, for the harness's oracle. */
struct InjectionRecord
{
    FaultKind kind;
    /** Device line address the fault landed on (0 for tick losses). */
    Addr addr = 0;
    /** Line writes seen when it fired. */
    std::uint64_t writeIndex = 0;
    /** Simulated time when it fired (as last reported via onTick). */
    Tick tick = 0;
};

/** Seeded, deterministic fault injector (see file header). */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Arm a fault. Faults are one-shot: each spec fires at most
     *  once; schedule() may be called while armed. */
    void schedule(const FaultSpec &spec);

    /** Disarm everything and clear counters and the log. */
    void reset();

    /** What the device should do with an intercepted line write. */
    enum class WriteOutcome { Store, Torn, Drop };

    /**
     * NvmDevice::writeLine hook. Counts the write, may mutate the
     * staged bytes (bit flips), may return Torn (persist keep_bytes
     * only) or Drop, and may throw PowerLossEvent.
     */
    WriteOutcome onWriteLine(Addr line_addr, std::uint8_t *buf,
                             unsigned &keep_bytes);

    /** What the device should do with an intercepted ECC store. */
    enum class EccAction { Store, Drop };

    /**
     * NvmDevice::setEcc hook. May mutate the word (BitFlipOnEcc),
     * returns Drop for the ECC store paired with a torn/dropped data
     * write, and may throw PowerLossEvent (after the pairing decision,
     * so a torn persist and its ECC fail atomically).
     */
    EccAction onSetEcc(Addr line_addr, std::uint32_t &ecc);

    /**
     * System clock hook (System::advance / advanceMc). Trips
     * tick-scheduled and pending power losses.
     */
    void onTick(Tick now);

    /**
     * eADR backup-power flush hook: called once per line the
     * crash-time drain wants to make durable, in drain order. Returns
     * false when a PartialBackupFlush fault has exhausted the energy
     * budget (this line and every later one are lost). Unlike the
     * write hooks it stays live after a power loss has tripped — the
     * flush *is* the crash — and it never throws.
     */
    bool onBackupFlushLine(Addr line_addr);

    /** Flush lines offered to onBackupFlushLine since reset(). */
    std::uint64_t flushLinesSeen() const { return flushLines_; }

    /** Record an at-rest tamper the harness applied to the device
     *  image directly (the injector does not touch the device). */
    void noteTamper(Addr line_addr, unsigned bit);

    /** Line writes observed since construction/reset (the dry-run
     *  counter harnesses draw crash ordinals from). */
    std::uint64_t writesSeen() const { return writes_; }
    std::uint64_t eccStoresSeen() const { return eccStores_; }

    /** A power loss has fired; all hooks are inert until reset(). */
    bool tripped() const { return tripped_; }

    /** A torn/dropped write armed a loss that has not tripped yet
     *  (e.g. the run ended first); the harness should crash(). */
    bool powerLossPending() const { return pendingLoss_; }

    /** Every fault that fired, in firing order. */
    const std::vector<InjectionRecord> &log() const { return log_; }

  private:
    [[noreturn]] void trip(FaultKind kind, Addr addr);

    std::vector<FaultSpec> specs_;
    /** Per-spec state, parallel to specs_. */
    struct SpecState
    {
        std::uint64_t seen = 0; //!< matching writes observed so far
        bool fired = false;
    };
    std::vector<SpecState> state_;

    std::vector<InjectionRecord> log_;
    std::uint64_t writes_ = 0;
    std::uint64_t eccStores_ = 0;
    std::uint64_t flushLines_ = 0;
    Tick now_ = 0;
    bool tripped_ = false;
    bool pendingLoss_ = false;
    /** Line whose next ECC store rides with a torn/dropped write. */
    std::optional<Addr> suppressEccFor_;
};

} // namespace fsencr

#endif // FSENCR_FAULT_FAULT_INJECTOR_HH
