#include "fs/nvmfs.hh"

#include "common/logging.hh"

namespace fsencr {

NvmFilesystem::NvmFilesystem(const PhysLayout &layout)
    : layout_(layout), statGroup_("nvmfs")
{
    // Reserve the first 16 MB of the PMEM region for "on-disk"
    // filesystem metadata (superblock, inode table, bitmap), matching
    // a realistic mkfs layout even though those structures are modeled
    // host-side.
    constexpr std::uint64_t metadata_reserve = 16ull << 20;
    dataBase_ = layout.pmemBase() + metadata_reserve;
    std::uint64_t data_bytes = layout.pmemBytes() - metadata_reserve;
    bitmap_.assign(data_bytes / pageSize, false);

    statGroup_.addScalar("creates", creates_);
    statGroup_.addScalar("unlinks", unlinks_);
    statGroup_.addScalar("blockAllocs", blockAllocs_);
}

Addr
NvmFilesystem::allocBlock()
{
    for (std::size_t probed = 0; probed < bitmap_.size(); ++probed) {
        std::size_t idx = (nextFit_ + probed) % bitmap_.size();
        if (!bitmap_[idx]) {
            bitmap_[idx] = true;
            nextFit_ = idx + 1;
            ++blocksInUse_;
            ++blockAllocs_;
            return dataBase_ + static_cast<Addr>(idx) * pageSize;
        }
    }
    fatal("nvmfs: out of space (%llu blocks in use)",
          static_cast<unsigned long long>(blocksInUse_));
}

void
NvmFilesystem::freeBlock(Addr paddr)
{
    std::size_t idx = (paddr - dataBase_) / pageSize;
    if (idx >= bitmap_.size() || !bitmap_[idx])
        panic("nvmfs: bad block free at %#lx",
              static_cast<unsigned long>(paddr));
    bitmap_[idx] = false;
    --blocksInUse_;
}

std::uint32_t
NvmFilesystem::create(const std::string &path, std::uint32_t uid,
                      std::uint32_t gid, std::uint16_t mode,
                      bool encrypted)
{
    if (dir_.count(path))
        fatal("nvmfs: path '%s' already exists", path.c_str());
    ++creates_;
    Inode node;
    node.ino = nextIno_++;
    node.uid = uid;
    node.gid = gid;
    node.mode = mode;
    node.encrypted = encrypted;
    inodes_[node.ino] = node;
    dir_[path] = node.ino;
    return node.ino;
}

std::optional<std::uint32_t>
NvmFilesystem::lookup(const std::string &path) const
{
    auto it = dir_.find(path);
    if (it == dir_.end())
        return std::nullopt;
    return it->second;
}

std::vector<Addr>
NvmFilesystem::unlink(const std::string &path)
{
    auto it = dir_.find(path);
    if (it == dir_.end())
        fatal("nvmfs: unlink of missing path '%s'", path.c_str());
    ++unlinks_;
    std::uint32_t ino = it->second;
    dir_.erase(it);

    Inode &node = inodes_.at(ino);
    std::vector<Addr> freed = node.blocks;
    for (Addr b : node.blocks)
        freeBlock(b);
    inodes_.erase(ino);
    return freed;
}

Inode &
NvmFilesystem::inode(std::uint32_t ino)
{
    auto it = inodes_.find(ino);
    if (it == inodes_.end())
        fatal("nvmfs: bad inode %u", ino);
    return it->second;
}

const Inode &
NvmFilesystem::inode(std::uint32_t ino) const
{
    return const_cast<NvmFilesystem *>(this)->inode(ino);
}

void
NvmFilesystem::extendTo(std::uint32_t ino, std::uint64_t new_size)
{
    Inode &node = inode(ino);
    std::uint64_t needed = (new_size + pageSize - 1) / pageSize;
    while (node.blocks.size() < needed)
        node.blocks.push_back(allocBlock());
    if (new_size > node.size)
        node.size = new_size;
}

Addr
NvmFilesystem::blockPaddr(std::uint32_t ino, std::uint64_t offset) const
{
    const Inode &node = inode(ino);
    std::uint64_t blk = offset / pageSize;
    if (blk >= node.blocks.size())
        fatal("nvmfs: offset %llu beyond file %u (size %llu)",
              static_cast<unsigned long long>(offset), ino,
              static_cast<unsigned long long>(node.size));
    return node.blocks[blk] + pageOffset(offset);
}

bool
NvmFilesystem::permits(const Inode &node, std::uint32_t uid,
                       std::uint32_t gid, bool want_write)
{
    if (uid == 0)
        return true; // root
    std::uint16_t mode = node.mode;
    if (uid == node.uid)
        return want_write ? (mode & modeOwnerWrite)
                          : (mode & modeOwnerRead);
    if (gid == node.gid)
        return want_write ? (mode & modeGroupWrite)
                          : (mode & modeGroupRead);
    return want_write ? (mode & modeOtherWrite)
                      : (mode & modeOtherRead);
}

} // namespace fsencr
