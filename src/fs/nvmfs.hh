/**
 * @file
 * A DAX-enabled NVM filesystem in the spirit of ext4-dax.
 *
 * The filesystem owns the persistent region [pmemBase, pmemBase+4GB):
 * a 4 KB block allocator hands out physical pages, inodes track
 * ownership/permissions/encryption state, and a flat namespace maps
 * paths to inodes. The defining DAX property: a file offset translates
 * directly to a physical NVM address (blockPaddr) that the kernel maps
 * into an application's address space — no page cache in between.
 *
 * Modeling note (see DESIGN.md §7): filesystem *metadata* (superblock,
 * inode table, directory, bitmap) is kept as host-side structures that
 * survive simulated crashes, standing in for a journaled metadata path;
 * file *data* flows through the full simulated memory system including
 * encryption, and is the subject of every experiment.
 */

#ifndef FSENCR_FS_NVMFS_HH
#define FSENCR_FS_NVMFS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "crypto/key.hh"
#include "mem/phys_layout.hh"

namespace fsencr {

/** Unix-ish permission bits. */
enum ModeBits : std::uint16_t {
    modeOwnerRead = 0400,
    modeOwnerWrite = 0200,
    modeGroupRead = 0040,
    modeGroupWrite = 0020,
    modeOtherRead = 0004,
    modeOtherWrite = 0002,
};

/** An on-"disk" inode. */
struct Inode
{
    std::uint32_t ino = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::uint16_t mode = 0600;
    bool encrypted = false;
    std::uint64_t size = 0;
    /** FEK wrapped under the owner's FEKEK (eCryptfs-style). */
    crypto::Key128 wrappedFek{};
    /** Truncated hash of the FEK for open-time passphrase checks. */
    std::uint64_t fekCheck = 0;
    /** Physical page address of each 4KB file block. */
    std::vector<Addr> blocks;
    /** Post-recovery quarantine: one or more of the file's lines is
     *  unrecoverable; reads/writes fail with FileDamagedError until
     *  the file is unlinked and recreated. */
    bool damaged = false;
};

/** Structured error for IO against a quarantined (damaged) file. */
class FileDamagedError : public std::runtime_error
{
  public:
    FileDamagedError(std::uint32_t ino_num, const std::string &what_op)
        : std::runtime_error("file damaged by unrecoverable NVM "
                             "corruption (" + what_op + ", inode " +
                             std::to_string(ino_num) + ")"),
          ino(ino_num)
    {}

    std::uint32_t ino;
};

/** The filesystem. */
class NvmFilesystem
{
  public:
    explicit NvmFilesystem(const PhysLayout &layout);

    /**
     * Create a file.
     * @return the new inode number
     * @throws FatalError if the path exists
     */
    std::uint32_t create(const std::string &path, std::uint32_t uid,
                         std::uint32_t gid, std::uint16_t mode,
                         bool encrypted);

    /** Path -> inode number, or nullopt. */
    std::optional<std::uint32_t> lookup(const std::string &path) const;

    /** Remove a file and free its blocks.
     *  @return the freed physical pages (for shredding) */
    std::vector<Addr> unlink(const std::string &path);

    /** Mutable inode access. */
    Inode &inode(std::uint32_t ino);
    const Inode &inode(std::uint32_t ino) const;

    /** Grow the file to at least new_size bytes (block granular). */
    void extendTo(std::uint32_t ino, std::uint64_t new_size);

    /**
     * DAX translation: physical address of the byte at file offset.
     * The page must be allocated.
     */
    Addr blockPaddr(std::uint32_t ino, std::uint64_t offset) const;

    /** Permission check for a (uid, gid) principal. */
    static bool permits(const Inode &node, std::uint32_t uid,
                        std::uint32_t gid, bool want_write);

    /** List directory contents (path -> ino). */
    const std::map<std::string, std::uint32_t> &entries() const
    {
        return dir_;
    }

    std::uint64_t blocksInUse() const { return blocksInUse_; }
    std::uint64_t capacityBlocks() const { return bitmap_.size(); }

    /** Adopt the on-module filesystem image of a migrated device
     *  (superblock, inodes, directory, allocation state). */
    void
    adoptImage(const NvmFilesystem &donor)
    {
        bitmap_ = donor.bitmap_;
        nextFit_ = donor.nextFit_;
        blocksInUse_ = donor.blocksInUse_;
        dir_ = donor.dir_;
        inodes_ = donor.inodes_;
        nextIno_ = donor.nextIno_;
    }

    stats::StatGroup &statGroup() { return statGroup_; }

  private:
    Addr allocBlock();
    void freeBlock(Addr paddr);

    const PhysLayout &layout_;
    Addr dataBase_;

    std::vector<bool> bitmap_;
    std::size_t nextFit_ = 0;
    std::uint64_t blocksInUse_ = 0;

    std::map<std::string, std::uint32_t> dir_;
    std::map<std::uint32_t, Inode> inodes_;
    std::uint32_t nextIno_ = 1;

    stats::StatGroup statGroup_;
    stats::Scalar creates_;
    stats::Scalar unlinks_;
    stats::Scalar blockAllocs_;
};

} // namespace fsencr

#endif // FSENCR_FS_NVMFS_HH
