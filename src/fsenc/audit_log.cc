#include "fsenc/audit_log.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/profile.hh"
#include "common/report.hh"

namespace fsencr {

AuditLog::AuditLog(const SecParams &params, const PhysLayout &layout,
                   NvmDevice &device, MerkleTree &merkle, Scheme scheme,
                   ShardGeometry geom)
    : layout_(layout),
      device_(device),
      merkle_(merkle),
      scheme_(static_cast<std::uint8_t>(scheme)),
      wcbRecords_(params.auditWcbRecords ? params.auditWcbRecords : 1),
      statGroup_("audit")
{
    // Shard k of N owns the k-th 1/N of the region, with its own
    // header line and cursor; {0, 1} degenerates to the whole region.
    unsigned count = std::max(1u, geom.count);
    std::uint64_t lines = layout.auditLogBytes() / blockSize / count;
    sliceBase_ = layout.auditLogBase() + geom.id * lines * blockSize;
    capacityRecords_ = lines > 1 ? (lines - 1) * recordsPerLine : 0;

    statGroup_.addScalar("appends", appends_);
    statGroup_.addScalar("flushes", flushes_);
    statGroup_.addScalar("flushedLines", flushedLines_);
    statGroup_.addScalar("overflowDrops", overflowDrops_);
    statGroup_.addScalar("crashDrops", crashDrops_);

    if (capacityRecords_ == 0)
        return;

    // Region header, written functionally at power-on and covered by
    // the Merkle tree like every record line. No timing access: the
    // header is part of provisioning, not of the measured run.
    std::uint8_t buf[blockSize] = {};
    std::memcpy(buf, &headerMagic, sizeof(headerMagic));
    std::memcpy(buf + 8, &headerVersion, sizeof(headerVersion));
    std::uint32_t rec_bytes = sizeof(AuditRecord);
    std::memcpy(buf + 12, &rec_bytes, sizeof(rec_bytes));
    std::memcpy(buf + 16, &capacityRecords_, sizeof(capacityRecords_));
    device_.writeLine(sliceBase_, buf);
    merkle_.updateLeaf(sliceBase_, buf);
}

Addr
AuditLog::lineAddr(std::uint64_t line_index) const
{
    // Data line 0 lives one line past the region header.
    return sliceBase_ + (line_index + 1) * blockSize;
}

void
AuditLog::packLine(std::uint64_t first_record, std::uint8_t *buf) const
{
    std::memset(buf, 0, blockSize);
    for (unsigned k = 0; k < recordsPerLine; ++k) {
        std::uint64_t idx = first_record + k;
        if (idx >= records_.size())
            break;
        std::memcpy(buf + k * sizeof(AuditRecord), &records_[idx],
                    sizeof(AuditRecord));
    }
}

Tick
AuditLog::flushPending(Tick now)
{
    if (crashed_ || acked_ >= records_.size())
        return 0;

    std::uint64_t count = records_.size() - acked_;
    std::uint64_t first_line = acked_ / recordsPerLine;
    std::uint64_t last_line = (records_.size() - 1) / recordsPerLine;

    // The whole WCB bursts out at `now` as one independent request
    // chain: consecutive lines usually share a bank, so the device
    // serializes them itself, but nothing stops the chain from
    // overlapping a concurrently issued MECB/FECB walk.
    Tick done = now;
    Tick crit_wait = 0;
    std::uint64_t first_acked = acked_;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
        std::uint8_t buf[blockSize];
        packLine(line * recordsPerLine, buf);
        Addr addr = lineAddr(line);
        // MAC the intended content *before* the device store: a torn
        // or dropped persist then mismatches the tree at recovery
        // instead of being silently re-hashed into it.
        merkle_.updateLeaf(addr, buf);
        device_.writeLine(addr, buf);

        MemRequest req;
        req.paddr = addr;
        req.isWrite = true;
        req.cls = TrafficClass::AuditLog;
        Completion c = device_.submit(req, now);
        if (c.finish > done) {
            done = c.finish;
            crit_wait = c.bankWait;
        }
        if (prof_)
            prof_->resourceArrival(profile::Res::NvmBanks,
                                   c.latency() - c.bankWait,
                                   c.bankWait);

        ++flushedLines_;
        if (opCtr_)
            opCtr_->add("flush", 1);
        // Acknowledge per stored line: a power loss between lines
        // leaves earlier records durable and later ones in the WCB.
        acked_ = std::min<std::uint64_t>(
            records_.size(), (line + 1) * recordsPerLine);
    }
    ++flushes_;
    lastFlushBankWait_ = crit_wait;
    if (prof_)
        for (std::uint64_t i = first_acked;
             i < acked_ && i < appendTicks_.size(); ++i)
            prof_->resourceArrival(profile::Res::AuditWcb,
                                   now - appendTicks_[i]);

    Tick latency = done - now;
    if (tracer_)
        tracer_->complete("audit_flush", "audit", now, latency, 0,
                          count);
    return latency;
}

Tick
AuditLog::append(AuditRecord rec, Tick now)
{
    if (crashed_ || capacityRecords_ == 0)
        return 0;
    if (records_.size() >= capacityRecords_) {
        ++overflowDrops_;
        if (!overflowWarned_) {
            warn("audit log region full (%llu records); dropping",
                 static_cast<unsigned long long>(capacityRecords_));
            overflowWarned_ = true;
        }
        return 0;
    }

    rec.seq = nextSeq_++;
    rec.scheme = scheme_;
    records_.push_back(rec);
    if (prof_)
        appendTicks_.push_back(now);
    ++appends_;
    if (opCtr_)
        opCtr_->add("append", 1);
    if (gidCtr_)
        gidCtr_->add(static_cast<std::uint64_t>(rec.gid()), 1);
    if (tracer_)
        tracer_->instant("audit_append", "audit", now, rec.seq);

    if (records_.size() - acked_ >= wcbRecords_)
        return flushPending(now);
    return 0;
}

Tick
AuditLog::drain(Tick now)
{
    return flushPending(now);
}

void
AuditLog::crash()
{
    crashDrops_ += records_.size() - acked_;
    crashed_ = true;
}

void
AuditLog::shutdown(Tick now)
{
    flushPending(now);
}

void
AuditLog::noteTamperedLine(Addr line_addr)
{
    tamperedLines_.insert(blockAlign(stripDfBit(line_addr)));
}

AuditScanResult
AuditLog::scan() const
{
    AuditScanResult res;
    if (capacityRecords_ == 0)
        return res;

    // The header authenticates the region itself.
    Addr header = sliceBase_;
    if (!merkle_.leafTracked(header) || tamperedLines_.count(header) ||
        !merkle_.verifyLeaf(header)) {
        res.integrityTruncated = true;
        return res;
    }
    std::uint8_t buf[blockSize];
    device_.readLine(header, buf);
    std::uint64_t magic;
    std::memcpy(&magic, buf, sizeof(magic));
    if (magic != headerMagic) {
        res.integrityTruncated = true;
        return res;
    }

    std::uint64_t data_lines = capacityRecords_ / recordsPerLine;
    std::uint64_t expected = 1;
    for (std::uint64_t line = 0; line < data_lines; ++line) {
        Addr addr = lineAddr(line);
        if (!merkle_.leafTracked(addr))
            break; // virgin NVM: end of log
        if (tamperedLines_.count(addr) || !merkle_.verifyLeaf(addr)) {
            res.integrityTruncated = true;
            break;
        }
        ++res.linesScanned;
        device_.readLine(addr, buf);
        bool stop = false;
        for (unsigned k = 0; k < recordsPerLine; ++k) {
            AuditRecord rec;
            std::memcpy(&rec, buf + k * sizeof(AuditRecord),
                        sizeof(AuditRecord));
            if (rec.seq != expected) {
                // seq 0 is the zero-padded tail of a partial line; any
                // other discontinuity is a forged or stale record that
                // escaped Merkle detection.
                if (rec.seq != 0)
                    res.integrityTruncated = true;
                stop = true;
                break;
            }
            res.records.push_back(rec);
            ++expected;
        }
        if (stop)
            break;
    }
    return res;
}

void
AuditLog::setMetrics(metrics::Registry *metrics)
{
    if (!metrics) {
        opCtr_ = nullptr;
        gidCtr_ = nullptr;
        return;
    }
    opCtr_ = &metrics->counter("mc.audit", "op", 3);
    gidCtr_ = &metrics->counter("audit.append", "gid", 17);
}

namespace report {

void
writeAuditSection(JsonWriter &w, const SecParams &sec,
                  const AuditLog &audit)
{
    writeAuditSection(w, sec,
                      std::vector<const AuditLog *>{&audit});
}

void
writeAuditSection(JsonWriter &w, const SecParams &sec,
                  const std::vector<const AuditLog *> &logs)
{
    std::uint64_t appended = 0, acked = 0, overflow = 0, crash = 0,
                  capacity = 0;
    for (const AuditLog *log : logs) {
        appended += log->appendedRecords();
        acked += log->ackedRecords();
        overflow += log->overflowDropped();
        crash += log->crashDropped();
        capacity += log->capacityRecords();
    }
    w.beginObject("audit");
    w.field("filter", auditFilterSpec(sec));
    w.field("appended", appended);
    w.field("acked", acked);
    w.field("overflow_dropped", overflow);
    w.field("crash_dropped", crash);
    w.field("capacity_records", capacity);
    w.endObject();
}

} // namespace report

} // namespace fsencr
