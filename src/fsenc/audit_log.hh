/**
 * @file
 * In-controller audit-log ride-along (FOX-style).
 *
 * The DF-bit plumbing already tells the secure memory controller which
 * file every DAX access belongs to, so auditing is a ride-along: for
 * each access matching the configured GroupID predicate the controller
 * appends one fixed-size record (tick, core, GroupID/FileID, op, line
 * address, scheme). Records are batched in a small write-combining
 * buffer and drained as 64B lines into a dedicated append-only region
 * of the metadata carve-out. Every log line lies inside the Merkle
 * leaf range, so records can be neither forged (a fabricated line
 * fails verification) nor silently lost (a dropped or torn drain
 * shows up as a tampered leaf at recovery).
 *
 * Durability contract: a record is *acknowledged* once its line has
 * been stored to NVM; records still in the WCB at power loss are
 * discarded (they were never acknowledged). After any crash the
 * recovered log is therefore a prefix of the true access stream —
 * fsencr-crashtest checks exactly that.
 */

#ifndef FSENCR_FSENC_AUDIT_LOG_HH
#define FSENCR_FSENC_AUDIT_LOG_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "fsenc/secure_datapath.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "secmem/merkle_tree.hh"

namespace fsencr {

namespace metrics {
class Registry;
class LabeledCounter;
} // namespace metrics

namespace profile {
class Profiler;
} // namespace profile

/** One fixed-size (32B, two per line) audit record. */
struct AuditRecord
{
    /** 1-based append sequence number; 0 terminates a scan (virgin
     *  NVM reads zero, so an unwritten slot can never parse as a
     *  record). */
    std::uint64_t seq = 0;
    /** Simulated time the audited access completed at the controller. */
    std::uint64_t tick = 0;
    /** Full line address of the access, DF-bit included. */
    std::uint64_t addr = 0;
    /** GroupID (upper 18 bits) and FileID (lower 14 bits). */
    std::uint32_t gidFid = 0;
    /** 0 = read, 1 = posted write, 2 = persist-ordered write. */
    std::uint8_t op = 0;
    /** Issuing core (0 for background writebacks). */
    std::uint8_t core = 0;
    /** Protection scheme the controller ran under (Scheme value). */
    std::uint8_t scheme = 0;
    std::uint8_t flags = 0;

    std::uint32_t gid() const { return gidFid >> 14; }
    std::uint32_t fid() const { return gidFid & 0x3fff; }

    bool
    operator==(const AuditRecord &o) const
    {
        return seq == o.seq && tick == o.tick && addr == o.addr &&
               gidFid == o.gidFid && op == o.op && core == o.core &&
               scheme == o.scheme && flags == o.flags;
    }
};

static_assert(sizeof(AuditRecord) == 32,
              "audit records are packed two per 64B line");

/** Result of scanning the on-NVM log region. */
struct AuditScanResult
{
    /** Records recovered in append order (a prefix of the stream). */
    std::vector<AuditRecord> records;
    /** True iff the scan stopped at an integrity violation (tampered
     *  or unverifiable leaf) rather than at the end of the log. */
    bool integrityTruncated = false;
    /** Log lines examined, header excluded. */
    std::uint64_t linesScanned = 0;
};

/**
 * The append-only audit log: WCB, NVM region cursor, Merkle coverage
 * and the post-run/post-crash scanner.
 */
class AuditLog
{
  public:
    /** Records per 64B log line. */
    static constexpr unsigned recordsPerLine = 2;
    /** Region header magic ("FSEAUDL1", little-endian). */
    static constexpr std::uint64_t headerMagic = 0x314c445541455346ull;
    static constexpr std::uint32_t headerVersion = 1;

    /**
     * @param geom shard slice: shard k of N owns the k-th 1/N of the
     *        audit region (own header + own cursor). The default
     *        {0, 1} owns the whole region and is bit-identical to the
     *        unsharded log.
     */
    AuditLog(const SecParams &params, const PhysLayout &layout,
             NvmDevice &device, MerkleTree &merkle, Scheme scheme,
             ShardGeometry geom = {});

    /**
     * Append one record (seq is assigned internally). Returns the
     * latency of the WCB drain this append triggered, 0 when the
     * record merely parked in the buffer. The drain issues its line
     * writes as an independent TrafficClass::AuditLog request chain
     * at time @p now.
     */
    Tick append(AuditRecord rec, Tick now);

    /** Force the WCB out (fsync-style tail flush); returns latency. */
    Tick drain(Tick now);

    /** Power loss: unacknowledged WCB records are gone. The log
     *  freezes (no further appends or drains); the golden stream
     *  keeps the lost records so the crashtest prefix invariant can
     *  tell "never acknowledged" from "forged". */
    void crash();

    /** Clean shutdown: drain the WCB (a trailing half-filled line is
     *  zero-padded, which the scanner reads as end-of-log). */
    void shutdown(Tick now);

    /**
     * Recovery hook: a Merkle rebuild found this log line tampered
     * (torn/dropped/flipped by a fault). The scanner truncates just
     * before the first such line and flags the result.
     */
    void noteTamperedLine(Addr line_addr);

    /**
     * Walk the on-NVM region and parse the recovered log. Safe to
     * call after a clean run, after a crash, or after recovery (the
     * tampered-line set persists across the Merkle rebuild).
     */
    AuditScanResult scan() const;

    /** Host-side golden stream: every record ever accepted. */
    const std::vector<AuditRecord> &goldenRecords() const
    {
        return records_;
    }

    /** Records whose line has been stored to NVM (acknowledged). */
    std::uint64_t ackedRecords() const { return acked_; }
    /** Records accepted into the stream (acked + still in WCB). */
    std::uint64_t appendedRecords() const { return records_.size(); }
    /** Records refused because the region filled up. */
    std::uint64_t overflowDropped() const
    {
        return overflowDrops_.value();
    }
    /** Records the WCB held when power was lost. */
    std::uint64_t crashDropped() const { return crashDrops_.value(); }
    /** Log-line capacity of the region (header excluded). */
    std::uint64_t capacityRecords() const { return capacityRecords_; }

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach an event tracer (nullptr disables; observation only). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Attach a metrics registry: lights up mc.audit{op} (records
     *  appended / lines flushed) and audit.append{gid}. */
    void setMetrics(metrics::Registry *metrics);

    /** Attach the contention profiler (nullptr disables): WCB record
     *  residence becomes audit_wcb resource arrivals at drain time and
     *  each flushed line an nvm_banks arrival. Observation only. */
    void setProfiler(profile::Profiler *prof) { prof_ = prof; }

    /** Bank-wait ticks of the critical (last-finishing) line of the
     *  most recent flushPending() chain. The controller's profiler
     *  splits the visible flush latency into wait-for-bank vs.
     *  service with this. */
    Tick lastFlushBankWait() const { return lastFlushBankWait_; }

  private:
    /** Device address of 0-based data line i (one past the header). */
    Addr lineAddr(std::uint64_t line_index) const;

    /** Rebuild the 64B line covering records [first, first+2) from
     *  the golden stream (missing slots zero-padded). */
    void packLine(std::uint64_t first_record, std::uint8_t *buf) const;

    /** Store + cover + time every line from acked_ up to the end of
     *  the golden stream; returns the chain latency. */
    Tick flushPending(Tick now);

    const PhysLayout &layout_;
    NvmDevice &device_;
    MerkleTree &merkle_;
    std::uint8_t scheme_;
    unsigned wcbRecords_;
    /** First line of this shard's slice of the audit region. */
    Addr sliceBase_;
    std::uint64_t capacityRecords_;

    /** Golden stream; records_[acked_..] is the WCB content. */
    std::vector<AuditRecord> records_;
    std::uint64_t acked_ = 0;
    std::uint64_t nextSeq_ = 1;
    bool crashed_ = false;
    bool overflowWarned_ = false;

    std::unordered_set<Addr> tamperedLines_;

    trace::Tracer *tracer_ = nullptr;
    metrics::LabeledCounter *opCtr_ = nullptr;
    metrics::LabeledCounter *gidCtr_ = nullptr;
    profile::Profiler *prof_ = nullptr;
    /** Append tick of records_[i], kept only while profiling (the
     *  WCB-residence integral needs per-record arrival times). */
    std::vector<Tick> appendTicks_;
    Tick lastFlushBankWait_ = 0;

    stats::StatGroup statGroup_;
    stats::Scalar appends_;
    stats::Scalar flushes_;
    stats::Scalar flushedLines_;
    stats::Scalar overflowDrops_;
    stats::Scalar crashDrops_;
};

} // namespace fsencr

#endif // FSENCR_FSENC_AUDIT_LOG_HH
