#include "fsenc/mc_router.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fsencr {

McRouter::McRouter(const SimConfig &cfg, const PhysLayout &layout,
                   NvmDevice &device, Rng &rng)
    : device_(device)
{
    unsigned count = std::max(1u, cfg.pcm.mcShards);
    McKeys keys = McKeys::draw(rng);
    device_.setShardPartitions(count);

    for (unsigned k = 0; k < count; ++k) {
        SecParams sec = cfg.sec;
        if (count > 1 && sec.backupFlushBudgetLines > 0)
            // Ceil-divide the machine flush budget so shard slices sum
            // to at least the configured bound.
            sec.backupFlushBudgetLines =
                (sec.backupFlushBudgetLines + count - 1) / count;
        ShardGeometry geom{k, count};
        std::string name =
            count == 1 ? "mc" : "mc" + std::to_string(k);
        shards_.push_back(std::make_unique<SecureMemoryController>(
            sec, cfg.scheme, cfg.pcm, cfg.cyclePeriod(), cfg.profile,
            layout, device, keys, geom, name));
    }
}

Tick
McRouter::mmioRegisterFileKey(std::uint32_t gid, std::uint32_t fid,
                              const crypto::Key128 &fek, Tick now)
{
    Tick lat = 0;
    for (auto &s : shards_)
        lat = std::max(lat, s->mmioRegisterFileKey(gid, fid, fek, now));
    return lat;
}

Tick
McRouter::mmioRemoveFileKey(std::uint32_t gid, std::uint32_t fid,
                            Tick now)
{
    Tick lat = 0;
    for (auto &s : shards_)
        lat = std::max(lat, s->mmioRemoveFileKey(gid, fid, now));
    return lat;
}

Tick
McRouter::mmioStampPage(Addr paddr, std::uint32_t gid,
                        std::uint32_t fid, Tick now)
{
    return shards_[shardOf(paddr)]->mmioStampPage(paddr, gid, fid, now);
}

Tick
McRouter::shredPage(Addr page_addr, Tick now)
{
    return shards_[shardOf(page_addr)]->shredPage(page_addr, now);
}

void
McRouter::mmioAdminLogin(const crypto::Key128 &credential)
{
    for (auto &s : shards_)
        s->mmioAdminLogin(credential);
}

void
McRouter::provisionAdminCredential(const crypto::Key128 &credential)
{
    for (auto &s : shards_)
        s->provisionAdminCredential(credential);
}

void
McRouter::crash(Tick now)
{
    for (auto &s : shards_)
        s->crash(now);
}

void
McRouter::shutdown(Tick now)
{
    for (auto &s : shards_)
        s->shutdown(now);
}

std::uint64_t
McRouter::backupFlushLines() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->backupFlushLines();
    return n;
}

std::uint64_t
McRouter::backupFlushDropped() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->backupFlushDropped();
    return n;
}

std::uint64_t
McRouter::stopLossPersists() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->stopLossPersists();
    return n;
}

bool
McRouter::recoverMetadata()
{
    // The top tree: every shard subtree root must verify.
    bool ok = true;
    for (auto &s : shards_)
        ok = s->recoverMetadata() && ok;
    return ok;
}

SecureMemoryController::MetadataVerdict
McRouter::recoverMetadataGraceful()
{
    SecureMemoryController::MetadataVerdict merged;
    for (auto &s : shards_) {
        auto v = s->recoverMetadataGraceful();
        merged.rootOk = merged.rootOk && v.rootOk;
        merged.localizable = merged.localizable && v.localizable;
        merged.tamperedLeaves.insert(merged.tamperedLeaves.end(),
                                     v.tamperedLeaves.begin(),
                                     v.tamperedLeaves.end());
    }
    return merged;
}

SecureMemoryController::RecoveryReport
McRouter::recoverAllReport()
{
    SecureMemoryController::RecoveryReport merged;
    for (auto &s : shards_) {
        auto r = s->recoverAllReport();
        merged.linesExamined += r.linesExamined;
        merged.probes += r.probes;
        merged.failures += r.failures;
        // Shards recover in parallel on reboot: the machine's recovery
        // latency is the slowest shard's, not the sum.
        merged.modelTime = std::max(merged.modelTime, r.modelTime);
        merged.quarantined.insert(merged.quarantined.end(),
                                  r.quarantined.begin(),
                                  r.quarantined.end());
    }
    std::sort(merged.quarantined.begin(), merged.quarantined.end(),
              [](const SecureMemoryController::QuarantinedLine &a,
                 const SecureMemoryController::QuarantinedLine &b) {
                  return a.addr < b.addr;
              });
    return merged;
}

std::size_t
McRouter::quarantinedCount() const
{
    std::size_t n = 0;
    for (const auto &s : shards_)
        n += s->quarantinedCount();
    return n;
}

McRouter::Capsule
McRouter::exportCapsule(Tick now)
{
    Capsule cap;
    for (auto &s : shards_) {
        auto one = s->exportCapsule(now);
        cap.memKey = one.memKey;
        cap.ottKey = one.ottKey;
        cap.trees.push_back(std::move(one.tree));
    }
    return cap;
}

bool
McRouter::importCapsule(const Capsule &capsule)
{
    if (capsule.trees.size() != shards_.size())
        fatal("capsule shard count (%zu) != machine shards (%zu)",
              capsule.trees.size(), shards_.size());
    bool ok = true;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        SecureMemoryController::SecurityCapsule one;
        one.memKey = capsule.memKey;
        one.ottKey = capsule.ottKey;
        one.tree = capsule.trees[k];
        ok = shards_[k]->importCapsule(one) && ok;
    }
    return ok;
}

void
McRouter::setTracer(trace::Tracer *tracer)
{
    for (auto &s : shards_)
        s->setTracer(tracer);
}

void
McRouter::setMetrics(metrics::Registry *metrics)
{
    for (auto &s : shards_)
        s->setMetrics(metrics);
}

void
McRouter::setTraceCapture(class MemTrace *trace)
{
    for (auto &s : shards_)
        s->setTraceCapture(trace);
}

stats::Histogram
McRouter::readLatencyHistogram() const
{
    stats::Histogram h = shards_[0]->readLatencyHistogram();
    for (std::size_t k = 1; k < shards_.size(); ++k)
        h.merge(shards_[k]->readLatencyHistogram());
    return h;
}

stats::Histogram
McRouter::writeLatencyHistogram() const
{
    stats::Histogram h = shards_[0]->writeLatencyHistogram();
    for (std::size_t k = 1; k < shards_.size(); ++k)
        h.merge(shards_[k]->writeLatencyHistogram());
    return h;
}

stats::Histogram
McRouter::componentHistogram(unsigned c) const
{
    stats::Histogram h = shards_[0]->componentHistogram(c);
    for (std::size_t k = 1; k < shards_.size(); ++k)
        h.merge(shards_[k]->componentHistogram(c));
    return h;
}

profile::Profiler *
McRouter::profiler()
{
    if (shards_.size() == 1)
        return shards_[0]->profiler();
    if (!shards_[0]->profiler())
        return nullptr;

    mergedProf_ = std::make_unique<profile::Profiler>();
    for (auto &s : shards_)
        mergedProf_->mergeFrom(*s->profiler());
    // Every shard's profiler() synced its nvm_banks row from the same
    // shared device, so the merge multiplied the banks by N; overwrite
    // with the device's authoritative totals.
    mergedProf_->setResourceTotals(
        profile::Res::NvmBanks, device_.bankBusyTicks(),
        device_.bankWaitTicks(), device_.numReads() + device_.numWrites(),
        device_.numBanks());
    return mergedProf_.get();
}

} // namespace fsencr
