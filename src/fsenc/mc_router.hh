/**
 * @file
 * The sharded secure datapath: N SecureMemoryControllers behind one
 * SecureDatapath face (`--mc-shards N`).
 *
 * The metadata region is partitioned into N per-shard Merkle subtrees
 * (each shard's sparse tree tracks only the leaves of pages it owns,
 * so the subtrees are disjoint by construction) under a tiny top
 * tree: the router's recovery pass verifies every shard root and
 * merges the verdicts. Each shard brings its own metadata cache, OTT
 * slice, MSHR pool and bank-partition affinity
 * (NvmDevice::setShardPartitions), and requests route by page
 * ownership — ShardGeometry::shardOf(paddr), page number modulo N.
 *
 * With one shard the router constructs a single controller with the
 * exact legacy arguments (same Rng draw order, stat-group name "mc",
 * whole-machine geometry) and every call delegates straight through:
 * `--mc-shards 1` is bit-identical to the unsharded simulator, report
 * bytes included. With N > 1 the shards are named mc0..mcN-1 in the
 * stat tree, MMIO key operations broadcast (keys are replicated so
 * any shard can serve any file), page-targeted MMIO routes to the
 * owner, and aggregate accessors (quarantine, flush accounting,
 * profiler) merge across shards.
 */

#ifndef FSENCR_FSENC_MC_ROUTER_HH
#define FSENCR_FSENC_MC_ROUTER_HH

#include <memory>
#include <vector>

#include "fsenc/secure_datapath.hh"
#include "fsenc/secure_memory_controller.hh"

namespace fsencr {

/** N shards behind one SecureDatapath face. */
class McRouter : public SecureDatapath
{
  public:
    /**
     * Draws the shared key pair from @p rng (memory key then OTT key,
     * the legacy order), partitions the device's banks, and builds
     * cfg.pcm.mcShards controllers. Each shard's SecParams copy gets
     * ceil(backupFlushBudgetLines / N) so the shards' backup-power
     * budgets sum to (at least) the configured machine budget.
     */
    McRouter(const SimConfig &cfg, const PhysLayout &layout,
             NvmDevice &device, Rng &rng);

    unsigned shardCount() const override
    {
        return static_cast<unsigned>(shards_.size());
    }
    unsigned
    shardOf(Addr paddr) const override
    {
        return ShardGeometry::shardOf(paddr, shardCount());
    }

    SecureMemoryController &shard(unsigned k) { return *shards_.at(k); }
    const SecureMemoryController &shard(unsigned k) const
    {
        return *shards_.at(k);
    }

    /** Route one request to its owner shard; the completion is
     *  stamped with the serving shard id. */
    Completion
    submit(const MemRequest &req, Tick now) override
    {
        unsigned k = shardOf(req.paddr);
        Completion c = shards_[k]->submit(req, now);
        c.shard = k;
        return c;
    }

    /// @name MMIO surface (SecureDatapath)
    /// @{

    /** Key install broadcasts to every shard (keys are replicated so
     *  ownership never gates a lookup); latency is the slowest
     *  shard's — the broadcast runs in parallel. */
    Tick mmioRegisterFileKey(std::uint32_t gid, std::uint32_t fid,
                             const crypto::Key128 &fek,
                             Tick now) override;
    Tick mmioRemoveFileKey(std::uint32_t gid, std::uint32_t fid,
                           Tick now) override;
    /** Page-targeted MMIO routes to the page's owner shard. */
    Tick mmioStampPage(Addr paddr, std::uint32_t gid,
                       std::uint32_t fid, Tick now) override;
    Tick shredPage(Addr page_addr, Tick now) override;
    void mmioAdminLogin(const crypto::Key128 &credential) override;
    void provisionAdminCredential(
        const crypto::Key128 &credential) override;
    trace::Tracer *
    tracer() const override
    {
        return shards_[0]->tracer();
    }

    /// @}

    /// @name Machine lifecycle (fan-out over shards)
    /// @{
    void crash(Tick now);
    void shutdown(Tick now);

    /** Admission routes to the line's owner shard, whose slice of the
     *  machine flush budget gates it. */
    bool
    backupFlushAdmit(Addr line_addr)
    {
        return shards_[shardOf(line_addr)]->backupFlushAdmit(
            line_addr);
    }
    std::uint64_t backupFlushLines() const;
    std::uint64_t backupFlushDropped() const;
    std::uint64_t stopLossPersists() const;

    /** All shard subtrees verify (the top-tree check). */
    bool recoverMetadata();
    /** Merged graceful verdict: rootOk/localizable AND across shards,
     *  tampered leaves concatenated in shard order. */
    SecureMemoryController::MetadataVerdict recoverMetadataGraceful();
    /** Merged recovery report: counts summed, modelTime the slowest
     *  shard's (shards recover in parallel), quarantined lines merged
     *  and re-sorted by address. */
    SecureMemoryController::RecoveryReport recoverAllReport();

    bool
    isQuarantined(Addr line_addr) const
    {
        return shards_[shardOf(line_addr)]->isQuarantined(line_addr);
    }
    std::size_t quarantinedCount() const;
    /// @}

    /** The portable security state of the whole sharded module: the
     *  shared key pair plus one subtree state per shard. */
    struct Capsule
    {
        crypto::Key128 memKey{};
        crypto::Key128 ottKey{};
        std::vector<MerkleTree::State> trees;
    };

    Capsule exportCapsule(Tick now);
    /** Adopt a transported module; shard counts must match.
     *  @return true iff every shard's subtree authenticates */
    bool importCapsule(const Capsule &capsule);

    /** Counter store of the shard owning @p addr (DAX/stamp
     *  introspection: System::lineIsDax, crashtest invariants). */
    CounterStore &
    countersFor(Addr addr)
    {
        return shards_[shardOf(addr)]->counters();
    }
    const CounterStore &
    countersFor(Addr addr) const
    {
        return shards_[shardOf(addr)]->counters();
    }

    /** Shard 0's audit log (the whole machine's at one shard);
     *  per-shard logs via shard(k).auditLog(). */
    AuditLog *auditLog() { return shards_[0]->auditLog(); }
    const AuditLog *auditLog() const { return shards_[0]->auditLog(); }

    /// @name Observability fan-out
    /// @{
    void setTracer(trace::Tracer *tracer);
    void setMetrics(metrics::Registry *metrics);
    void setTraceCapture(class MemTrace *trace);

    /**
     * The contention profiler view, nullptr unless cfg.profile. One
     * shard: the controller's own profiler (legacy behavior). Sharded:
     * a merged profiler — per-(class, kind) ticks, blocker counts,
     * wait histograms, requests and resource rows summed across
     * shards, then the nvm_banks row re-synced from the shared
     * device (every shard sees the same banks; summing would
     * multiply them). The merged object is rebuilt on each call;
     * don't cache the pointer across submits.
     */
    profile::Profiler *profiler();

    /** Machine-level latency views: the per-shard histograms merged
     *  (at one shard, a copy of the controller's own). */
    stats::Histogram readLatencyHistogram() const;
    stats::Histogram writeLatencyHistogram() const;
    stats::Histogram componentHistogram(unsigned c) const;
    /// @}

  private:
    std::vector<std::unique_ptr<SecureMemoryController>> shards_;
    NvmDevice &device_;
    /** Merged profiler of the last profiler() call (N > 1 only). */
    std::unique_ptr<profile::Profiler> mergedProf_;
};

} // namespace fsencr

#endif // FSENCR_FSENC_MC_ROUTER_HH
