#include "fsenc/ott.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/profile.hh"
#include "crypto/sha256.hh"

namespace fsencr {

namespace {

/** Serialized spill-slot image (fits one 64B line). */
struct SlotImage
{
    std::uint8_t valid;
    std::uint8_t pad[3];
    std::uint32_t gid;
    std::uint32_t fid;
    std::uint8_t key[16];

    void
    toLine(std::uint8_t *out) const
    {
        std::memset(out, 0, blockSize);
        out[0] = valid;
        std::memcpy(out + 4, &gid, 4);
        std::memcpy(out + 8, &fid, 4);
        std::memcpy(out + 12, key, 16);
    }

    void
    fromLine(const std::uint8_t *in)
    {
        valid = in[0];
        std::memcpy(&gid, in + 4, 4);
        std::memcpy(&fid, in + 8, 4);
        std::memcpy(key, in + 12, 16);
    }
};

/** Virgin NVM reads as zero; an all-zero ciphertext is an empty slot
 *  (sealed images are never all-zero: the XTS tweak whitens them). */
bool
isVirginSlot(const std::uint8_t *cipher)
{
    for (std::size_t i = 0; i < blockSize; ++i)
        if (cipher[i] != 0)
            return false;
    return true;
}

std::uint64_t
hashIds(std::uint32_t gid, std::uint32_t fid)
{
    std::uint64_t v = (std::uint64_t(gid) << 32) | fid;
    // SplitMix64 finalizer.
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
}

} // namespace

OpenTunnelTable::OpenTunnelTable(const SecParams &params,
                                 const PhysLayout &layout,
                                 NvmDevice &device, MerkleTree &merkle,
                                 const crypto::Key128 &ott_key,
                                 Tick cycle_period, ShardGeometry geom)
    : params_(params), layout_(layout), device_(device), merkle_(merkle),
      ottAes_(ott_key), cyclePeriod_(cycle_period), geom_(geom),
      entries_(params.ottEntries), statGroup_("ott")
{
    statGroup_.addScalar("lookups", lookups_);
    statGroup_.addScalar("hits", hits_);
    statGroup_.addScalar("spillRecalls", spillRecalls_);
    statGroup_.addScalar("spillWrites", spillWrites_);
    statGroup_.addScalar("inserts", inserts_);
    statGroup_.addScalar("removes", removes_);
    statGroup_.addScalar("missingKeys", missingKeys_);
}

std::size_t
OpenTunnelTable::numSpillSlots() const
{
    // Shard k of N owns the k-th 1/N of the spill region; the
    // unsharded table ({0, 1}) owns all of it.
    return layout_.ottSpillBytes() / blockSize /
           std::max(1u, geom_.count);
}

std::size_t
OpenTunnelTable::spillHomeSlot(std::uint32_t gid,
                               std::uint32_t fid) const
{
    return static_cast<std::size_t>(hashIds(gid, fid) % numSpillSlots());
}

Addr
OpenTunnelTable::spillSlotAddr(std::size_t slot) const
{
    // Region-global slot index: local slot offset into this shard's
    // slice. Identity for the unsharded geometry.
    std::size_t global = geom_.id * numSpillSlots() + slot;
    return layout_.ottSpillBase() + global * blockSize;
}

void
OpenTunnelTable::sealSlot(std::size_t slot, const std::uint8_t *plain,
                          std::uint8_t *cipher) const
{
    // XTS-lite: tweak_i = AES_k(slot || i); c_i = AES_k(p_i ^ t_i) ^ t_i.
    // The tweak uses the region-global slot index so every slot of
    // every shard slice seals under a unique position.
    for (unsigned i = 0; i < blockSize / 16; ++i) {
        crypto::Block128 tweak_in{};
        std::uint64_t s = geom_.id * numSpillSlots() + slot;
        std::memcpy(tweak_in.data(), &s, 8);
        tweak_in[8] = static_cast<std::uint8_t>(i);
        crypto::Block128 tweak = ottAes_.encryptBlock(tweak_in);

        crypto::Block128 blk;
        std::memcpy(blk.data(), plain + i * 16, 16);
        for (int j = 0; j < 16; ++j)
            blk[j] ^= tweak[j];
        blk = ottAes_.encryptBlock(blk);
        for (int j = 0; j < 16; ++j)
            blk[j] ^= tweak[j];
        std::memcpy(cipher + i * 16, blk.data(), 16);
    }
}

void
OpenTunnelTable::openSlot(std::size_t slot, const std::uint8_t *cipher,
                          std::uint8_t *plain) const
{
    for (unsigned i = 0; i < blockSize / 16; ++i) {
        crypto::Block128 tweak_in{};
        std::uint64_t s = geom_.id * numSpillSlots() + slot;
        std::memcpy(tweak_in.data(), &s, 8);
        tweak_in[8] = static_cast<std::uint8_t>(i);
        crypto::Block128 tweak = ottAes_.encryptBlock(tweak_in);

        crypto::Block128 blk;
        std::memcpy(blk.data(), cipher + i * 16, 16);
        for (int j = 0; j < 16; ++j)
            blk[j] ^= tweak[j];
        blk = ottAes_.decryptBlock(blk);
        for (int j = 0; j < 16; ++j)
            blk[j] ^= tweak[j];
        std::memcpy(plain + i * 16, blk.data(), 16);
    }
}

OpenTunnelTable::Entry *
OpenTunnelTable::findEntry(std::uint32_t gid, std::uint32_t fid)
{
    for (Entry &e : entries_) {
        if (e.valid && e.gid == gid && e.fid == fid)
            return &e;
    }
    return nullptr;
}

Tick
OpenTunnelTable::spillWrite(const Entry &e, Tick now)
{
    ++spillWrites_;
    std::size_t home = spillHomeSlot(e.gid, e.fid);
    std::size_t n = numSpillSlots();
    std::size_t target = home;
    Tick latency = 0;

    // Linear probe for this entry's existing slot or a free one.
    for (unsigned p = 0; p < spillProbeDepth; ++p) {
        std::size_t slot = (home + p) % n;
        std::uint8_t cipher[blockSize];
        device_.read(spillSlotAddr(slot), cipher, blockSize);
        SlotImage img;
        if (isVirginSlot(cipher)) {
            img.valid = 0;
        } else {
            std::uint8_t plain[blockSize];
            openSlot(slot, cipher, plain);
            img.fromLine(plain);
        }
        if (!img.valid || (img.gid == e.gid && img.fid == e.fid)) {
            target = slot;
            break;
        }
        if (p == spillProbeDepth - 1) {
            warn("OTT spill table bucket overflow; overwriting slot");
            target = home;
        }
    }

    SlotImage img{};
    img.valid = 1;
    img.gid = e.gid;
    img.fid = e.fid;
    std::memcpy(img.key, e.key.data(), 16);

    std::uint8_t plain[blockSize];
    img.toLine(plain);
    std::uint8_t cipher[blockSize];
    sealSlot(target, plain, cipher);

    Addr addr = spillSlotAddr(target);
    device_.write(addr, cipher, blockSize);
    merkle_.updateLeaf(addr);

    MemRequest req;
    req.paddr = addr;
    req.isWrite = true;
    req.cls = TrafficClass::OttSpill;
    latency += device_.access(req, now);
    return latency;
}

std::optional<OpenTunnelTable::Entry>
OpenTunnelTable::spillRead(std::uint32_t gid, std::uint32_t fid,
                           Tick now, Tick &latency)
{
    std::size_t home = spillHomeSlot(gid, fid);
    std::size_t n = numSpillSlots();
    latency = 0;

    for (unsigned p = 0; p < spillProbeDepth; ++p) {
        std::size_t slot = (home + p) % n;
        Addr addr = spillSlotAddr(slot);

        MemRequest req;
        req.paddr = addr;
        req.isWrite = false;
        req.cls = TrafficClass::OttSpill;
        latency += device_.access(req, now + latency);

        if (!merkle_.verifyLeaf(addr))
            fatal("OTT spill region integrity violation at %#lx",
                  static_cast<unsigned long>(addr));

        std::uint8_t cipher[blockSize];
        device_.read(addr, cipher, blockSize);
        if (isVirginSlot(cipher))
            continue;
        std::uint8_t plain[blockSize];
        openSlot(slot, cipher, plain);
        SlotImage img;
        img.fromLine(plain);
        if (img.valid && img.gid == gid && img.fid == fid) {
            Entry e;
            e.valid = true;
            e.gid = gid;
            e.fid = fid;
            std::memcpy(e.key.data(), img.key, 16);
            // Decrypting the recalled entry costs one AES pass.
            latency += params_.aesLatency;
            return e;
        }
        // Keep probing even past empty slots: erasures leave holes in
        // the chain (no tombstones in this simple open addressing).
    }
    return std::nullopt;
}

Tick
OpenTunnelTable::spillErase(std::uint32_t gid, std::uint32_t fid,
                            Tick now)
{
    std::size_t home = spillHomeSlot(gid, fid);
    std::size_t n = numSpillSlots();
    Tick latency = 0;

    for (unsigned p = 0; p < spillProbeDepth; ++p) {
        std::size_t slot = (home + p) % n;
        Addr addr = spillSlotAddr(slot);
        std::uint8_t cipher[blockSize];
        device_.read(addr, cipher, blockSize);
        if (isVirginSlot(cipher))
            continue;
        std::uint8_t plain[blockSize];
        openSlot(slot, cipher, plain);
        SlotImage img;
        img.fromLine(plain);
        if (img.valid && img.gid == gid && img.fid == fid) {
            img.valid = 0;
            std::memset(img.key, 0, 16);
            img.toLine(plain);
            sealSlot(slot, plain, cipher);
            device_.write(addr, cipher, blockSize);
            merkle_.updateLeaf(addr);

            MemRequest req;
            req.paddr = addr;
            req.isWrite = true;
            req.cls = TrafficClass::OttSpill;
            latency += device_.access(req, now);
            return latency;
        }
    }
    return latency;
}

void
OpenTunnelTable::setMetrics(metrics::Registry *metrics)
{
    lookupCtr_ =
        metrics ? &metrics->counter("ott.lookup", "set", 64) : nullptr;
}

OttLookupResult
OpenTunnelTable::lookup(std::uint32_t gid, std::uint32_t fid, Tick now)
{
    ++lookups_;
    ++lruClock_;
    if (lookupCtr_)
        lookupCtr_->add(
            static_cast<std::uint64_t>(spillHomeSlot(gid, fid)));
    OttLookupResult res;
    res.latency = params_.ottLatency * cyclePeriod_;

    if (Entry *e = findEntry(gid, fid)) {
        ++hits_;
        e->lru = lruClock_;
        res.found = true;
        res.ottHit = true;
        res.key = e->key;
        if (prof_)
            prof_->resourceArrival(profile::Res::Ott, res.latency);
        if (tracer_)
            tracer_->complete("ott_lookup", "ott", now, res.latency,
                              /*tid=*/0, /*arg=*/1);
        return res;
    }

    // Recall from the encrypted spill region.
    Tick spill_latency = 0;
    auto recalled = spillRead(gid, fid, now + res.latency, spill_latency);
    res.latency += spill_latency;
    if (recalled) {
        ++spillRecalls_;
        res.found = true;
        res.key = recalled->key;
        res.latency += installEntry(*recalled, now + res.latency);
    } else {
        ++missingKeys_;
    }
    if (prof_)
        prof_->resourceArrival(profile::Res::Ott, res.latency);
    if (tracer_)
        tracer_->complete("ott_lookup", "ott", now, res.latency,
                          /*tid=*/0, /*arg=*/res.found ? 1 : 0);
    return res;
}

Tick
OpenTunnelTable::installEntry(const Entry &e, Tick now)
{
    // Free or LRU way.
    Entry *victim = nullptr;
    for (Entry &cand : entries_) {
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (!victim || cand.lru < victim->lru)
            victim = &cand;
    }

    Tick latency = 0;
    if (victim->valid)
        latency += spillWrite(*victim, now);

    *victim = e;
    victim->lru = ++lruClock_;
    return latency;
}

Tick
OpenTunnelTable::insert(std::uint32_t gid, std::uint32_t fid,
                        const crypto::Key128 &key, Tick now,
                        bool log_immediately)
{
    ++inserts_;
    Entry e;
    e.valid = true;
    e.gid = gid;
    e.fid = fid;
    e.key = key;

    Tick latency = 0;
    if (Entry *existing = findEntry(gid, fid)) {
        *existing = e;
        existing->lru = ++lruClock_;
    } else {
        latency += installEntry(e, now);
    }
    if (log_immediately)
        latency += spillWrite(e, now + latency);
    if (tracer_)
        tracer_->complete("ott_insert", "ott", now, latency);
    return latency;
}

Tick
OpenTunnelTable::remove(std::uint32_t gid, std::uint32_t fid, Tick now)
{
    ++removes_;
    if (Entry *e = findEntry(gid, fid)) {
        e->valid = false;
        e->key.fill(0);
    }
    return spillErase(gid, fid, now);
}

void
OpenTunnelTable::crash(bool backup_power_flush, Tick now)
{
    if (backup_power_flush) {
        for (const Entry &e : entries_)
            if (e.valid)
                spillWrite(e, now);
    }
    for (Entry &e : entries_) {
        e.valid = false;
        e.key.fill(0);
        e.lru = 0;
    }
    lruClock_ = 0;
}

void
OpenTunnelTable::adoptKey(const crypto::Key128 &ott_key)
{
    ottAes_.setKey(ott_key);
    for (Entry &e : entries_) {
        e.valid = false;
        e.key.fill(0);
        e.lru = 0;
    }
    lruClock_ = 0;
}

std::size_t
OpenTunnelTable::validEntries() const
{
    std::size_t n = 0;
    for (const Entry &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace fsencr
