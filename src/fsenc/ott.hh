/**
 * @file
 * Open Tunnel Table (OTT) — the on-chip file-key store (Section III-E).
 *
 * 1024 entries (8 banks x 128 fully-associative entries searched in
 * parallel), each holding {File ID (14 b), Group ID (18 b), 128-bit
 * file key}. Lookup costs 20 cycles (a deliberate power/latency
 * trade-off versus a single-cycle TLB-style search).
 *
 * Evicted entries spill to a dedicated memory region as a
 * set-associative hash table, encrypted under the processor-resident
 * OTT key (XTS-style deterministic encryption, since the table is
 * at-rest storage) and covered by the Merkle tree. A lookup that misses
 * the OTT recalls the entry from the spill region.
 */

#ifndef FSENCR_FSENC_OTT_HH
#define FSENCR_FSENC_OTT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "crypto/key.hh"
#include "fsenc/secure_datapath.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "secmem/merkle_tree.hh"

namespace fsencr {

namespace metrics {
class Registry;
class LabeledCounter;
} // namespace metrics

namespace profile {
class Profiler;
} // namespace profile

/** Result of an OTT key lookup. */
struct OttLookupResult
{
    /** True iff a key was found (in the OTT or the spill region). */
    bool found = false;
    /** True iff it was an on-chip OTT hit (no spill recall). */
    bool ottHit = false;
    crypto::Key128 key{};
    /** Latency of the lookup (OTT search + any spill traffic). */
    Tick latency = 0;
};

/** The Open Tunnel Table plus its encrypted spill region. */
class OpenTunnelTable
{
  public:
    /**
     * @param geom shard slice: shard k of N owns the k-th 1/N of the
     *        spill region ({0, 1}, the default, owns all of it and is
     *        bit-identical to the unsharded table). Keys are
     *        replicated across shards by the router, so each slice
     *        only ever holds its own shard's spill traffic.
     */
    OpenTunnelTable(const SecParams &params, const PhysLayout &layout,
                    NvmDevice &device, MerkleTree &merkle,
                    const crypto::Key128 &ott_key, Tick cycle_period,
                    ShardGeometry geom = {});

    /**
     * Find the key for (group, file). On an OTT miss the entry is
     * recalled from the encrypted spill region (extra device read +
     * AES) and reinstalled, possibly spilling a victim.
     *
     * @param now current time (device timing)
     */
    OttLookupResult lookup(std::uint32_t gid, std::uint32_t fid,
                           Tick now);

    /**
     * Install a new file key (MMIO path, file creation).
     *
     * @param log_immediately also write the entry through to the spill
     *        region now (crash-consistency option 1, Section III-H)
     * @return latency of the insert
     */
    Tick insert(std::uint32_t gid, std::uint32_t fid,
                const crypto::Key128 &key, Tick now,
                bool log_immediately);

    /** Remove a file's key from OTT and spill (file deletion). */
    Tick remove(std::uint32_t gid, std::uint32_t fid, Tick now);

    /**
     * Power loss. With backup_power_flush (crash-consistency option
     * 2), the 2KB table is flushed to the spill region on the backup
     * capacitor; otherwise only immediately-logged entries survive.
     */
    void crash(bool backup_power_flush, Tick now);

    /** Number of valid on-chip entries. */
    std::size_t validEntries() const;

    /**
     * Adopt a transported module (Section VI): install its OTT key so
     * the on-module encrypted spill region becomes readable; the
     * on-chip array of the new machine starts empty.
     */
    void adoptKey(const crypto::Key128 &ott_key);

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach an event tracer (nullptr disables; observation only). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Attach a metrics registry: lookups become ott.lookup{set},
     *  labeled by the key's spill home slot (nullptr disables). */
    void setMetrics(metrics::Registry *metrics);

    /** Attach the contention profiler (nullptr disables): each lookup
     *  becomes an ott resource arrival with the full lookup latency
     *  (search + any spill recall) as its residence. Observation
     *  only. */
    void setProfiler(profile::Profiler *prof) { prof_ = prof; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t gid = 0;
        std::uint32_t fid = 0;
        crypto::Key128 key{};
        std::uint64_t lru = 0;
    };

    /** Spill-slot layout helpers. */
    std::size_t numSpillSlots() const;
    std::size_t spillHomeSlot(std::uint32_t gid, std::uint32_t fid) const;
    Addr spillSlotAddr(std::size_t slot) const;

    /** XTS-style deterministic slot cipher. */
    void sealSlot(std::size_t slot, const std::uint8_t *plain,
                  std::uint8_t *cipher) const;
    void openSlot(std::size_t slot, const std::uint8_t *cipher,
                  std::uint8_t *plain) const;

    /** Write an entry to its spill slot; returns device latency. */
    Tick spillWrite(const Entry &e, Tick now);

    /** Try to find (gid, fid) in the spill region. */
    std::optional<Entry> spillRead(std::uint32_t gid, std::uint32_t fid,
                                   Tick now, Tick &latency);

    /** Remove (gid, fid) from the spill region if present. */
    Tick spillErase(std::uint32_t gid, std::uint32_t fid, Tick now);

    Entry *findEntry(std::uint32_t gid, std::uint32_t fid);

    /** Insert into the on-chip array, spilling the LRU victim. */
    Tick installEntry(const Entry &e, Tick now);

    SecParams params_;
    const PhysLayout &layout_;
    NvmDevice &device_;
    MerkleTree &merkle_;
    crypto::Aes128 ottAes_;
    Tick cyclePeriod_;
    ShardGeometry geom_;

    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;
    trace::Tracer *tracer_ = nullptr;
    metrics::LabeledCounter *lookupCtr_ = nullptr;
    profile::Profiler *prof_ = nullptr;

    static constexpr unsigned spillProbeDepth = 8;

    stats::StatGroup statGroup_;
    stats::Scalar lookups_;
    stats::Scalar hits_;
    stats::Scalar spillRecalls_;
    stats::Scalar spillWrites_;
    stats::Scalar inserts_;
    stats::Scalar removes_;
    stats::Scalar missingKeys_;
};

} // namespace fsencr

#endif // FSENCR_FSENC_OTT_HH
