/**
 * @file
 * The secure-datapath interface and sharding geometry.
 *
 * SecureDatapath is the surface the rest of the machine (System, the
 * kernel's MMIO paths) drives the encryption stack through: one
 * MemRequest submit -> Completion pipe plus the trusted MMIO register
 * file. Both the single SecureMemoryController and the sharded
 * McRouter implement it, so callers never poke controller internals
 * and a config knob (`--mc-shards N`) swaps one for the other.
 *
 * ShardGeometry fixes the ownership rule: shard k owns every physical
 * page whose (DF-stripped) page number is congruent to k modulo the
 * shard count. A page's MECB/FECB pair covers exactly that page, so
 * page-interleaved routing gives every counter line exactly one owner
 * shard and the per-shard Merkle subtrees stay disjoint by
 * construction.
 */

#ifndef FSENCR_FSENC_SECURE_DATAPATH_HH
#define FSENCR_FSENC_SECURE_DATAPATH_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "crypto/key.hh"
#include "mem/completion.hh"
#include "mem/mem_request.hh"
#include "mem/phys_layout.hh"

namespace fsencr {

/**
 * Which slice of the machine a datapath instance owns.
 *
 * The default {0, 1} geometry owns everything and is what a
 * standalone (unsharded) controller runs with; a router hands shard k
 * of N the geometry {k, N}.
 */
struct ShardGeometry
{
    unsigned id = 0;
    unsigned count = 1;

    /** Owner shard of a physical address (DF-bit tolerated). */
    static unsigned
    shardOf(Addr paddr, unsigned count)
    {
        if (count <= 1)
            return 0;
        return static_cast<unsigned>(pageNumber(stripDfBit(paddr)) %
                                     count);
    }

    /** Does this shard own the page containing @p paddr? */
    bool
    owns(Addr paddr) const
    {
        return count <= 1 || shardOf(paddr, count) == id;
    }
};

/**
 * The controller key pair, drawn once and injected at construction
 * (shards of one router share both keys, so ciphertext and spill
 * contents are shard-count independent). draw() fixes the Rng
 * consumption order — memory key first, then OTT key — matching the
 * legacy in-constructor draws bit for bit.
 */
struct McKeys
{
    crypto::Key128 mem{};
    crypto::Key128 ott{};

    static McKeys
    draw(Rng &rng)
    {
        McKeys k;
        k.mem = crypto::randomKey(rng);
        k.ott = crypto::randomKey(rng);
        return k;
    }
};

/**
 * What the machine needs from the encryption stack: the
 * submit/complete datapath plus the trusted kernel's MMIO surface.
 * Implemented by SecureMemoryController (one shard, the whole
 * machine) and McRouter (N shards behind one face).
 */
class SecureDatapath
{
  public:
    virtual ~SecureDatapath() = default;

    /** Submit one line request through the full encryption stack. */
    virtual Completion submit(const MemRequest &req, Tick now) = 0;

    /** How many shards sit behind this datapath (1 for a bare
     *  controller). */
    virtual unsigned shardCount() const = 0;

    /** Which shard owns @p paddr (always 0 for a bare controller). */
    virtual unsigned shardOf(Addr paddr) const = 0;

    /// @name MMIO register interface used by the trusted kernel.
    /// @{
    virtual Tick mmioRegisterFileKey(std::uint32_t gid,
                                     std::uint32_t fid,
                                     const crypto::Key128 &fek,
                                     Tick now) = 0;
    virtual Tick mmioRemoveFileKey(std::uint32_t gid, std::uint32_t fid,
                                   Tick now) = 0;
    virtual Tick mmioStampPage(Addr paddr, std::uint32_t gid,
                               std::uint32_t fid, Tick now) = 0;
    virtual Tick shredPage(Addr page_addr, Tick now) = 0;
    virtual void mmioAdminLogin(const crypto::Key128 &credential) = 0;
    virtual void
    provisionAdminCredential(const crypto::Key128 &credential) = 0;
    /// @}

    /** The attached event tracer (nullptr = disabled). */
    virtual trace::Tracer *tracer() const = 0;
};

} // namespace fsencr

#endif // FSENCR_FSENC_SECURE_DATAPATH_HH
