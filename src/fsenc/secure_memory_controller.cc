#include "fsenc/secure_memory_controller.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "cpu/mem_trace.hh"
#include "fault/fault_injector.hh"

namespace fsencr {

SecureMemoryController::SecureMemoryController(const SecParams &sec,
                                               Scheme scheme,
                                               const PcmParams &pcm,
                                               Tick cycle_period,
                                               bool profile_enabled,
                                               const PhysLayout &layout,
                                               NvmDevice &device,
                                               const McKeys &keys,
                                               ShardGeometry geom,
                                               const std::string &stat_name)
    : sec_(sec), scheme_(scheme), pcm_(pcm), cycle_(cycle_period),
      profileEnabled_(profile_enabled), geom_(geom), layout_(layout),
      device_(device),
      memKey_(keys.mem),
      ottKeyValue_(keys.ott),
      memAes_(memKey_),
      wpqInFlight_(pcm.writeQueueDepth),
      osiris_(sec.osirisStopLoss),
      statGroup_(stat_name),
      readLatency_(stats::Histogram::log2Buckets()),
      writeLatency_(stats::Histogram::log2Buckets())
{
    if (hasMemoryEncryption()) {
        merkle_ = std::make_unique<MerkleTree>(layout_, device_,
                                               sec_.merkleArity);
        counters_ = std::make_unique<CounterStore>(device_, *merkle_);
        metaCache_ = std::make_unique<MetadataCache>(sec_,
                                                     layout_);
        statGroup_.addChild(&merkle_->statGroup());
        statGroup_.addChild(&counters_->statGroup());
        statGroup_.addChild(&metaCache_->statGroup());
        statGroup_.addChild(&osiris_.statGroup());
    }
    if (hasFsEncr()) {
        ott_ = std::make_unique<OpenTunnelTable>(
            sec_, layout_, device_, *merkle_, ottKeyValue_,
            cycle_, geom_);
        statGroup_.addChild(&ott_->statGroup());
    }
    if (sec_.auditEnabled && hasFsEncr() &&
        layout_.auditLogBytes() > 0) {
        audit_ = std::make_unique<AuditLog>(sec_, layout_, device_,
                                            *merkle_, scheme_, geom_);
        statGroup_.addChild(&audit_->statGroup());
    }
    if (profileEnabled_) {
        prof_ = std::make_unique<profile::Profiler>();
        prof_->setShardLabel(geom_.id, geom_.count);
        prof_->setResourceCapacity(profile::Res::NvmBanks,
                                   device_.numBanks());
        prof_->setResourceCapacity(profile::Res::Mshr,
                                   pcm_.mcMshrs);
        prof_->setResourceCapacity(profile::Res::Wpq,
                                   pcm_.writeQueueDepth);
        prof_->setResourceCapacity(profile::Res::MetaCache, 1);
        prof_->setResourceCapacity(profile::Res::Ott, 1);
        prof_->setResourceCapacity(profile::Res::AuditWcb,
                                   sec_.auditWcbRecords);
        if (metaCache_)
            metaCache_->setProfiler(prof_.get(),
                                    sec_.metadataCacheLatency *
                                        cycle_);
        if (ott_)
            ott_->setProfiler(prof_.get());
        if (audit_)
            audit_->setProfiler(prof_.get());
    }

    statGroup_.addScalar("dataReads", dataReads_);
    statGroup_.addScalar("dataWrites", dataWrites_);
    statGroup_.addScalar("daxReads", daxReads_);
    statGroup_.addScalar("daxWrites", daxWrites_);
    statGroup_.addScalar("metaCacheMisses", metaCacheMisses_);
    statGroup_.addScalar("merkleFetches", merkleFetches_);
    statGroup_.addScalar("pageReencryptions", pageReencryptions_);
    statGroup_.addScalar("lazyRekeyedPages", lazyRekeyedPages_);
    statGroup_.addScalar("missingKeyAccesses", missingKeyAccesses_);
    statGroup_.addScalar("integrityViolations", integrityViolations_);
    statGroup_.addScalar("fileAesCacheHits", fileAesCacheHits_);
    statGroup_.addScalar("fileAesCacheMisses", fileAesCacheMisses_);
    statGroup_.addScalar("overlapTicks", overlapTicks_);
    statGroup_.addScalar("overlappedRequests", overlappedRequests_);
    statGroup_.addHistogram("readLatency", readLatency_);
    statGroup_.addHistogram("writeLatency", writeLatency_);

    // Per-component cycle attribution: cumulative ticks plus the
    // per-access distribution (suffix keeps JSON keys unique).
    for (unsigned c = 0; c < numMcComponents; ++c) {
        attrHists_[c] = stats::Histogram::log2Buckets();
        attrGroup_.addScalar(trace::componentName(c), attrTicks_[c]);
        attrGroup_.addHistogram(
            std::string(trace::componentName(c)) + "_hist",
            attrHists_[c]);
    }
    statGroup_.addChild(&attrGroup_);
}

void
SecureMemoryController::setTracer(trace::Tracer *tracer)
{
    tracer_ = tracer;
    if (metaCache_)
        metaCache_->setTracer(tracer);
    if (merkle_)
        merkle_->setTracer(tracer);
    if (ott_)
        ott_->setTracer(tracer);
    if (audit_)
        audit_->setTracer(tracer);
    osiris_.setTracer(tracer);
}

void
SecureMemoryController::setMetrics(metrics::Registry *metrics)
{
    if (metaCache_)
        metaCache_->setMetrics(metrics);
    if (merkle_)
        merkle_->setMetrics(metrics);
    if (ott_)
        ott_->setMetrics(metrics);
    if (audit_)
        audit_->setMetrics(metrics);
    device_.setMetrics(metrics);
    if (prof_)
        prof_->setMetrics(metrics);
    if (!metrics) {
        readCtr_ = writeCtr_ = fileBytesCtr_ = merkleLevelCtr_ = nullptr;
        overlapCtr_ = nullptr;
        return;
    }
    readCtr_ = &metrics->counter("mc.read", "dax", 2);
    writeCtr_ = &metrics->counter("mc.write", "dax", 2);
    fileBytesCtr_ = &metrics->counter("file.bytes", "file", 64);
    merkleLevelCtr_ = &metrics->counter("merkle.verify", "level", 16);
    // The extra label slot holds the audit chain's hidden ticks; only
    // provisioned when auditing is on so the exported max_labels field
    // stays byte-identical for unaudited runs.
    overlapCtr_ = &metrics->counter("mc.overlap", "op",
                                    audit_ ? 3 : 2);
}

void
SecureMemoryController::recordAccess(bool is_read,
                                     const trace::Breakdown &bd,
                                     Tick total, Tick now, bool dax)
{
    lastAccess_ = bd;
    for (unsigned c = 0; c < numMcComponents; ++c) {
        attrTicks_[c] += bd.ticks[c];
        attrHists_[c].sample(bd.ticks[c]);
    }
    if (is_read)
        readLatency_.sample(total);
    else
        writeLatency_.sample(total);

    if (metrics::LabeledCounter *ctr = is_read ? readCtr_ : writeCtr_)
        ctr->add(dax ? "1" : "0");

    if (tracer_) {
        tracer_->complete(is_read ? "read" : "write", "mc", now, total,
                          /*tid=*/0, /*arg=*/dax ? 1 : 0);
        for (unsigned c = 0; c < numMcComponents; ++c)
            if (bd.ticks[c])
                tracer_->complete(trace::componentName(c), "mc.attr",
                                  now, bd.ticks[c], /*tid=*/c + 1);
    }
    if (prof_)
        prof_->finishRequest(total);
}

crypto::Line
SecureMemoryController::memPad(Addr line_addr, const Mecb &mecb,
                               unsigned blk) const
{
    crypto::CtrIv iv;
    iv.pageId = pageNumber(line_addr);
    iv.pageOffset = blk;
    iv.major = mecb.major;
    iv.minor = mecb.minors.minor[blk];
    return crypto::makeOtp(memAes_, iv);
}

crypto::CtrIv
SecureMemoryController::fileIv(Addr line_addr, const Fecb &fecb,
                               unsigned blk) const
{
    crypto::CtrIv iv;
    iv.pageId = pageNumber(line_addr);
    iv.pageOffset = blk;
    iv.major = fecb.major;
    iv.minor = fecb.minors.minor[blk];
    return iv;
}

const crypto::Aes128 &
SecureMemoryController::fileAes(const crypto::Key128 &key) const
{
    bool hit = false;
    const crypto::Aes128 &aes = fileAesCache_.get(key, &hit);
    if (hit)
        ++fileAesCacheHits_;
    else
        ++fileAesCacheMisses_;
    return aes;
}

crypto::Line
SecureMemoryController::filePad(Addr line_addr, const Fecb &fecb,
                                unsigned blk,
                                const crypto::Key128 &key) const
{
    return crypto::makeOtp(fileAes(key), fileIv(line_addr, fecb, blk));
}

void
SecureMemoryController::handleMetaEviction(Addr victim_addr, bool dirty,
                                           Tick now)
{
    auto kind = layout_.classifyMeta(victim_addr);
    switch (kind) {
      case PhysLayout::MetaKind::Mecb:
        counters_->evictMecb(victim_addr, dirty);
        anubisShadow_.erase(victim_addr);
        break;
      case PhysLayout::MetaKind::Fecb:
        counters_->evictFecb(victim_addr, dirty);
        anubisShadow_.erase(victim_addr);
        break;
      case PhysLayout::MetaKind::MerkleNode:
        // Node MACs live in the sparse host-side tree; the device write
        // below models the traffic only.
        break;
      default:
        panic("unexpected metadata-cache victim %#lx",
              static_cast<unsigned long>(victim_addr));
    }

    if (dirty) {
        MemRequest req;
        req.paddr = victim_addr;
        req.isWrite = true;
        req.cls = kind == PhysLayout::MetaKind::MerkleNode
                      ? TrafficClass::Merkle
                      : TrafficClass::Metadata;
        device_.access(req, now); // background bank occupancy
    }
}

profile::Profiler *
SecureMemoryController::profiler()
{
    if (prof_)
        prof_->setResourceTotals(profile::Res::NvmBanks,
                                 device_.bankBusyTicks(),
                                 device_.bankWaitTicks(),
                                 device_.numReads() +
                                     device_.numWrites(),
                                 device_.numBanks());
    return prof_.get();
}

Tick
SecureMemoryController::fetchMetadata(Addr meta_addr, Tick now,
                                      bool *missed,
                                      trace::Breakdown *bd,
                                      profile::ChainProfile *cp)
{
    // Leaf (counter-block) work is counter_fetch; the Bonsai ancestor
    // walk below is merkle_verify. A Merkle-node fetch requested
    // directly is all merkle_verify.
    unsigned leaf_comp = layout_.classifyMeta(meta_addr) ==
                                 PhysLayout::MetaKind::MerkleNode
                             ? trace::MerkleVerify
                             : trace::CounterFetch;

    Tick lat = sec_.metadataCacheLatency * cycle_;
    CacheAccessResult res = metaCache_->access(meta_addr, false);
    if (res.evicted)
        handleMetaEviction(res.victimAddr, res.writeback, now);
    if (res.hit) {
        if (bd)
            bd->ticks[leaf_comp] += lat;
        if (cp)
            cp->total = lat; // pure service: no device traffic
        return lat;
    }

    if (missed)
        *missed = true;

    ++metaCacheMisses_;

    // Fetch the metadata line itself.
    MemRequest req;
    req.paddr = meta_addr;
    req.isWrite = false;
    req.cls = layout_.classifyMeta(meta_addr) ==
                      PhysLayout::MetaKind::MerkleNode
                  ? TrafficClass::Merkle
                  : TrafficClass::Metadata;
    Completion leaf_c = device_.submit(req, now + lat);
    lat += leaf_c.latency();
    if (cp)
        cp->leafBankWait = leaf_c.bankWait;
    if (prof_)
        prof_->resourceArrival(profile::Res::NvmBanks,
                               leaf_c.latency() - leaf_c.bankWait,
                               leaf_c.bankWait);

    // Anubis: log the newly resident counter block in the persistent
    // shadow table (one extra NVM write per fill).
    if (sec_.recovery == SecParams::Recovery::AnubisShadow &&
        req.cls == TrafficClass::Metadata) {
        anubisShadow_.insert(meta_addr);
        MemRequest st;
        st.paddr = meta_addr; // rides in a dedicated shadow region
        st.isWrite = true;
        st.cls = TrafficClass::Metadata;
        device_.access(st, now + lat);
    }

    // Integrity: counter blocks are Merkle leaves; check the device
    // image against the tree before trusting it.
    if (req.cls == TrafficClass::Metadata &&
        !merkle_->verifyLeaf(meta_addr)) {
        ++integrityViolations_;
        throw IntegrityError("counter block tampered at address " +
                             std::to_string(meta_addr));
    }

    Tick leaf_lat = lat; // everything so far: the leaf itself

    // Bonsai walk: fetch ancestors until a cached (trusted) node.
    if (layout_.classifyMeta(meta_addr) !=
        PhysLayout::MetaKind::MerkleNode) {
        for (unsigned level = 1; level < merkle_->numLevels(); ++level) {
            Addr node = merkle_->ancestorAddr(meta_addr, level);
            CacheAccessResult nr = metaCache_->access(node, false);
            if (nr.evicted)
                handleMetaEviction(nr.victimAddr, nr.writeback,
                                   now + lat);
            if (nr.hit)
                break;
            ++merkleFetches_;
            if (merkleLevelCtr_)
                merkleLevelCtr_->add(static_cast<std::uint64_t>(level));
            MemRequest mreq;
            mreq.paddr = node;
            mreq.isWrite = false;
            mreq.cls = TrafficClass::Merkle;
            Completion wc = device_.submit(mreq, now + lat);
            lat += wc.latency();
            if (cp)
                cp->walkBankWait += wc.bankWait;
            if (prof_)
                prof_->resourceArrival(profile::Res::NvmBanks,
                                       wc.latency() - wc.bankWait,
                                       wc.bankWait);
        }
    }
    if (bd) {
        bd->ticks[leaf_comp] += leaf_lat;
        bd->ticks[trace::MerkleVerify] += lat - leaf_lat;
    }
    if (cp) {
        cp->walkTicks = lat - leaf_lat;
        cp->total = lat;
    }
    // The whole miss chain holds one MSHR from issue to retire.
    if (prof_)
        prof_->resourceArrival(profile::Res::Mshr, lat);
    return lat;
}

void
SecureMemoryController::touchMetadataDirty(Addr meta_addr)
{
    CacheAccessResult res = metaCache_->access(meta_addr, true);
    if (res.evicted)
        handleMetaEviction(res.victimAddr, res.writeback, 0);
}

void
SecureMemoryController::persistPageCounters(Addr line_addr, bool dax,
                                            Tick now)
{
    Addr mecb_addr = layout_.mecbAddr(line_addr);
    counters_->persistMecb(mecb_addr);
    metaCache_->clean(mecb_addr);
    MemRequest req;
    req.paddr = mecb_addr;
    req.isWrite = true;
    req.cls = TrafficClass::Metadata;
    device_.access(req, now);

    if (dax) {
        Addr fecb_addr = layout_.fecbAddr(line_addr);
        counters_->persistFecb(fecb_addr);
        metaCache_->clean(fecb_addr);
        MemRequest freq;
        freq.paddr = fecb_addr;
        freq.isWrite = true;
        freq.cls = TrafficClass::Metadata;
        device_.access(freq, now);
    }

    // The updated tree path dirties the leaf's level-1 ancestor; its
    // eventual eviction writes it back.
    touchMetadataDirty(merkle_->ancestorAddr(mecb_addr, 1));
}

OttLookupResult
SecureMemoryController::lookupFileKey(const Fecb &fecb, Tick now)
{
    OttLookupResult res = ott_->lookup(fecb.groupId, fecb.fileId, now);
    if (!res.found) {
        ++missingKeyAccesses_;
        // Per-access path: must not flood stderr in million-op runs.
        warnLimited(8,
                    "DAX access to file (group %u, file %u) without a "
                    "registered key: memory-layer decryption only",
                    fecb.groupId, fecb.fileId);
    }
    return res;
}

Tick
SecureMemoryController::wpqAccept(Tick now, Tick completion)
{
    while (!wpqInFlight_.empty() && wpqInFlight_.front() <= now)
        wpqInFlight_.pop_front();

    Tick stall = 0;
    if (wpqInFlight_.size() >= pcm_.writeQueueDepth) {
        Tick free_at = wpqInFlight_.front();
        stall = free_at - now;
        while (!wpqInFlight_.empty() && wpqInFlight_.front() <= free_at)
            wpqInFlight_.pop_front();
    }
    Tick queued_until = std::max(completion, now + stall);
    wpqInFlight_.push_back(queued_until);
    if (prof_)
        prof_->resourceArrival(profile::Res::Wpq, queued_until - now,
                               stall);
    return stall;
}

Tick
SecureMemoryController::fetchSecondMeta(Addr fecb_addr, Tick now,
                                        Tick meta_lat,
                                        trace::Breakdown &mbd,
                                        bool *missed, bool is_read,
                                        MetaPhaseProfile *mp)
{
    profile::ChainProfile *fcp = mp ? &mp->fecb : nullptr;
    if (!overlapEnabled()) {
        // Legacy strictly serial model: the FECB chain issues only
        // once the MECB chain retired. Bit-identical to the
        // pre-banked simulator. Both chains sit on the critical path.
        Tick fecb_lat =
            fetchMetadata(fecb_addr, now + meta_lat, missed, &mbd, fcp);
        if (mp) {
            mp->mecbVisible = true;
            mp->fecbVisible = true;
        }
        return meta_lat + fecb_lat;
    }

    // MSHR-style overlap: the FECB walk depends on nothing the MECB
    // walk produces, so with a free issue slot it starts at the same
    // tick and the two chains race across banks (same-bank conflicts
    // still serialize inside the device). With a single free slot the
    // issue waits for the MECB chain to retire.
    trace::Breakdown fbd;
    Tick fecb_start = metaIssueSlots() >= 2 ? now : now + meta_lat;
    Tick fecb_lat = fetchMetadata(fecb_addr, fecb_start, missed, &fbd,
                                  fcp);
    Tick fecb_done = fecb_start + fecb_lat;
    Tick span = std::max(meta_lat, fecb_done - now);
    bookOverlap(is_read, meta_lat + fecb_lat - span);
    if (prof_ && fecb_start > now)
        prof_->resourceStall(profile::Res::Mshr, fecb_start - now);

    // Attribute the critical chain only (hidden work is free), so the
    // breakdown keeps summing exactly to the returned span.
    if (fecb_done - now >= meta_lat) {
        mbd = fbd;
        mbd.ticks[trace::CounterFetch] += fecb_start - now;
        if (mp) {
            mp->fecbVisible = true;
            mp->fecb.mshrWait = fecb_start - now;
        }
    } else if (mp) {
        mp->mecbVisible = true;
    }
    return span;
}

void
SecureMemoryController::bookOverlap(bool is_read, Tick hidden)
{
    if (hidden == 0)
        return;
    overlapTicks_ += hidden;
    ++overlappedRequests_;
    if (overlapCtr_)
        overlapCtr_->add(is_read ? "read" : "write", hidden);
}

bool
SecureMemoryController::auditMatches(const Fecb &fecb) const
{
    if (sec_.auditGroups.empty())
        return true;
    for (std::uint32_t gid : sec_.auditGroups)
        if (gid == fecb.groupId)
            return true;
    return false;
}

void
SecureMemoryController::auditRideAlong(bool is_read, bool blocking,
                                       Addr full_addr, const Fecb &fecb,
                                       Tick now, Tick &total,
                                       trace::Breakdown &bd)
{
    if (!auditMatches(fecb))
        return;

    AuditRecord rec;
    rec.tick = now;
    rec.addr = full_addr;
    rec.gidFid = (fecb.groupId << 14) | fecb.fileId;
    rec.op = is_read ? 0 : (blocking ? 2 : 1);
    rec.core = curCore_;

    if (overlapEnabled()) {
        // The drain is an independent chain: it issues at `now` and
        // races the access's own MECB/FECB/data chains across banks.
        // Only the excess over the access span is visible; the hidden
        // part is banked overlap under the "audit" label.
        Tick flush_lat = audit_->append(rec, now);
        if (flush_lat == 0)
            return;
        Tick hidden = std::min(total, flush_lat);
        if (flush_lat > total) {
            Tick visible = flush_lat - total;
            bd.ticks[trace::Writeback] += visible;
            total = flush_lat;
            if (prof_) {
                // The visible tail of the flush chain: its critical
                // line's bank queueing, capped to what the request
                // actually saw, the rest is drain service.
                Tick vis_bank = std::min(audit_->lastFlushBankWait(),
                                         visible);
                prof_->book(profile::ReqClass::AuditCls,
                            profile::WaitKind::Bank, vis_bank);
                prof_->book(profile::ReqClass::AuditCls,
                            profile::WaitKind::Service,
                            visible - vis_bank);
            }
        }
        if (hidden) {
            overlapTicks_ += hidden;
            ++overlappedRequests_;
            if (overlapCtr_)
                overlapCtr_->add("audit", hidden);
        }
    } else {
        // Legacy serial model: the drain issues after the access
        // completes and its latency lands on the critical path.
        Tick flush_lat = audit_->append(rec, now + total);
        if (flush_lat) {
            bd.ticks[trace::Writeback] += flush_lat;
            total += flush_lat;
            if (prof_) {
                Tick bank_w = std::min(audit_->lastFlushBankWait(),
                                       flush_lat);
                prof_->book(profile::ReqClass::AuditCls,
                            profile::WaitKind::Bank, bank_w);
                prof_->book(profile::ReqClass::AuditCls,
                            profile::WaitKind::Service,
                            flush_lat - bank_w);
            }
        }
    }
}

Completion
SecureMemoryController::submit(const MemRequest &req, Tick now)
{
    curCore_ = req.core;
    Tick lat = req.isWrite
                   ? writeLine(req.paddr, req.writeData, now,
                               req.blocking)
                   : readLine(req.paddr, now, req.readData);
    curCore_ = 0;
    Completion c;
    c.id = ++nextRequestId_;
    c.start = now;
    c.finish = now + lat;
    c.breakdown = lastAccess_;
    return c;
}

Tick
SecureMemoryController::readLine(Addr full_addr, Tick now,
                                 std::uint8_t *plain_out)
{
    Addr line = blockAlign(stripDfBit(full_addr));
    bool dax = hasFsEncr() && hasDfBit(full_addr);

    if (trace_)
        trace_->append({TraceRecord::Kind::Read, full_addr, 0, 0});
    if (tracer_)
        tracer_->setTime(now);
    if (prof_)
        prof_->beginRequest();

    MemRequest dreq;
    dreq.paddr = full_addr;
    dreq.isWrite = false;
    dreq.cls = TrafficClass::Data;

    if (!hasMemoryEncryption()) {
        Completion dc = device_.submit(dreq, now);
        Tick lat = dc.latency();
        if (prof_) {
            prof_->resourceArrival(profile::Res::NvmBanks,
                                   lat - dc.bankWait, dc.bankWait);
            prof_->book(profile::ReqClass::Data,
                        profile::WaitKind::Bank, dc.bankWait);
            prof_->book(profile::ReqClass::Data,
                        profile::WaitKind::Service,
                        lat - dc.bankWait);
        }
        if (plain_out)
            device_.readLine(line, plain_out);
        ++dataReads_;
        trace::Breakdown bd;
        bd.ticks[trace::NvmAccess] = lat;
        recordAccess(true, bd, lat, now, false);
        return lat;
    }

    ++dataReads_;
    if (dax)
        ++daxReads_;

    unsigned blk = blockInPage(line);
    Addr mecb_addr = layout_.mecbAddr(line);

    // Counter fetch (and FECB for DAX lines) through the metadata
    // cache; the data-array read proceeds in parallel.
    trace::Breakdown mbd;
    MetaPhaseProfile mp;
    Tick meta_lat = fetchMetadata(mecb_addr, now, nullptr, &mbd,
                                  prof_ ? &mp.mecb : nullptr);
    Tick pad_lat = sec_.aesLatency;

    Mecb mecb = counters_->mecb(mecb_addr);

    bool have_file_key = false;
    crypto::Key128 file_key{};
    Fecb fecb;
    if (dax) {
        Addr fecb_addr = layout_.fecbAddr(line);
        bool fecb_missed = false;
        meta_lat = fetchSecondMeta(fecb_addr, now, meta_lat, mbd,
                                   &fecb_missed, /*is_read=*/true,
                                   prof_ ? &mp : nullptr);
        fecb = counters_->fecb(fecb_addr);
        if (fileBytesCtr_ && (fecb.groupId | fecb.fileId))
            fileBytesCtr_->add(fileLabel(fecb.groupId, fecb.fileId),
                               blockSize);
        if (!fsencLocked_) {
            OttLookupResult key = lookupFileKey(fecb, now + meta_lat);
            if (key.found) {
                have_file_key = true;
                file_key = key.key;
                // A page awaiting lazy re-encryption still reads
                // under its old key (Section VI).
                if (const crypto::Key128 *old_key =
                        lazyOldKey(fecb, line))
                    file_key = *old_key;
            }
            // Opening the tunnel — resolving FECB ids to a key —
            // is serial with the file-pad AES only when the FECB
            // itself just arrived; for a cached FECB the resolution
            // is cached alongside it and fully overlaps the data
            // fetch (this is what makes the OTT affordable at 20
            // cycles).
            Tick key_lat = fecb_missed ? key.latency : 0;
            pad_lat = std::max(sec_.aesLatency,
                               key_lat + sec_.aesLatency);
        }
    }

    Completion dc = device_.submit(dreq, now);
    Tick data_lat = dc.latency();
    if (prof_)
        prof_->resourceArrival(profile::Res::NvmBanks,
                               data_lat - dc.bankWait, dc.bankWait);

    // Functional decryption of the stored ciphertext.
    std::uint8_t buf[blockSize];
    device_.readLine(line, buf);
    crypto::Line mpad = memPad(line, mecb, blk);
    crypto::xorLine(buf, mpad);
    if (dax && have_file_key) {
        crypto::Line fpad = filePad(line, fecb, blk, file_key);
        crypto::xorLine(buf, fpad);
    }
    if (plain_out)
        std::memcpy(plain_out, buf, blockSize);

    Tick xor_lat = sec_.xorLatency * cycle_;
    Tick total = std::max(data_lat, meta_lat + pad_lat) + xor_lat;

    // Critical-path attribution of the max(): when the data-array
    // read dominates, the metadata/pad work is fully hidden behind it
    // and the request is all nvm_access; otherwise the decomposition
    // is the metadata breakdown plus the serialized OTT share of the
    // pad latency and the AES itself. Either way the components sum
    // exactly to the returned latency.
    trace::Breakdown bd;
    if (data_lat >= meta_lat + pad_lat) {
        bd.ticks[trace::NvmAccess] = data_lat;
        if (prof_) {
            prof_->book(profile::ReqClass::Data,
                        profile::WaitKind::Bank, dc.bankWait);
            prof_->book(profile::ReqClass::Data,
                        profile::WaitKind::Service,
                        data_lat - dc.bankWait);
        }
    } else {
        bd = mbd; // counter_fetch + merkle_verify == meta_lat
        bd.ticks[trace::OttLookup] += pad_lat - sec_.aesLatency;
        bd.ticks[trace::PadGen] += sec_.aesLatency;
        if (prof_) {
            if (!dax)
                mp.mecbVisible = true;
            mp.bookInto(*prof_);
            // The serialized OTT share of the pad resolves the FECB's
            // file key; the AES itself is data-path service.
            prof_->book(profile::ReqClass::Fecb,
                        profile::WaitKind::Service,
                        pad_lat - sec_.aesLatency);
            prof_->book(profile::ReqClass::Data,
                        profile::WaitKind::Service,
                        sec_.aesLatency);
        }
    }
    bd.ticks[trace::PadGen] += xor_lat;
    if (prof_)
        prof_->book(profile::ReqClass::Data,
                    profile::WaitKind::Service, xor_lat);
    if (audit_ && dax)
        auditRideAlong(/*is_read=*/true, /*blocking=*/false, full_addr,
                       fecb, now, total, bd);
    recordAccess(true, bd, total, now, dax);
    return total;
}

Tick
SecureMemoryController::writeLine(Addr full_addr,
                                  const std::uint8_t *plain, Tick now,
                                  bool blocking)
{
    Addr line = blockAlign(stripDfBit(full_addr));
    bool dax = hasFsEncr() && hasDfBit(full_addr);

    if (trace_)
        trace_->append({blocking ? TraceRecord::Kind::PersistWrite
                                 : TraceRecord::Kind::Write,
                        full_addr, 0, 0});
    if (tracer_)
        tracer_->setTime(now);
    if (prof_)
        prof_->beginRequest();

    MemRequest dreq;
    dreq.paddr = full_addr;
    dreq.isWrite = true;
    dreq.cls = TrafficClass::Data;

    if (!hasMemoryEncryption()) {
        device_.writeLine(line, plain);
        Completion dc = device_.submit(dreq, now); // bank occupancy
        Tick dev_lat = dc.latency();
        if (prof_)
            prof_->resourceArrival(profile::Res::NvmBanks,
                                   dev_lat - dc.bankWait, dc.bankWait);
        // ADR: accept into the WPQ is durability for all schemes, but
        // a full queue backpressures at the device drain rate.
        Tick wpq_stall = wpqAccept(now, now + dev_lat);
        Tick lat = pcm_.writeAcceptLatency + wpq_stall;
        if (prof_) {
            prof_->book(profile::ReqClass::Data,
                        profile::WaitKind::Wpq, wpq_stall);
            prof_->book(profile::ReqClass::Data,
                        profile::WaitKind::Service,
                        pcm_.writeAcceptLatency);
        }
        ++dataWrites_;
        trace::Breakdown bd;
        bd.ticks[trace::Writeback] = lat;
        recordAccess(false, bd, lat, now, false);
        return lat;
    }

    ++dataWrites_;
    if (dax)
        ++daxWrites_;

    unsigned blk = blockInPage(line);
    Addr mecb_addr = layout_.mecbAddr(line);
    Addr fecb_addr = dax ? layout_.fecbAddr(line) : 0;

    bool meta_missed = false;
    trace::Breakdown mbd;
    MetaPhaseProfile mp;
    Tick meta_lat = fetchMetadata(mecb_addr, now, &meta_missed, &mbd,
                                  prof_ ? &mp.mecb : nullptr);
    if (dax)
        meta_lat = fetchSecondMeta(fecb_addr, now, meta_lat, mbd,
                                   &meta_missed, /*is_read=*/false,
                                   prof_ ? &mp : nullptr);

    // Copy-mutate-install: references into the CounterStore can be
    // invalidated by nested metadata-cache evictions.
    Mecb mecb = counters_->mecb(mecb_addr);
    Fecb fecb;
    if (dax) {
        fecb = counters_->fecb(fecb_addr);
        if (fileBytesCtr_ && (fecb.groupId | fecb.fileId))
            fileBytesCtr_->add(fileLabel(fecb.groupId, fecb.fileId),
                               blockSize);
    }

    bool have_file_key = false;
    crypto::Key128 file_key{};
    Tick pad_lat = sec_.aesLatency;
    Tick reencrypt_lat = 0;
    if (dax && !fsencLocked_) {
        OttLookupResult key = lookupFileKey(fecb, now + meta_lat);
        if (key.found) {
            have_file_key = true;
            file_key = key.key;
            // A write to a page awaiting lazy re-keying first flips
            // the whole page to the new key (Section VI).
            reencrypt_lat += lazyRekeyOnWrite(fecb, line, file_key,
                                              now + meta_lat);
        }
        pad_lat = std::max(sec_.aesLatency,
                           key.latency + sec_.aesLatency);
    }

    // Bump the memory-layer minor counter; a 7-bit overflow bumps the
    // major and re-encrypts the whole page (split-counter semantics).
    if (mecb.minors.minor[blk] >= minorCounterMax) {
        Mecb old_mecb = mecb;
        mecb.major += 1;
        mecb.minors = MinorCounters{};
        reencrypt_lat +=
            reencryptPage(pageAlign(line), old_mecb,
                          dax ? &fecb : nullptr, mecb,
                          dax ? &fecb : nullptr, now + meta_lat);
    }
    mecb.minors.minor[blk] += 1;

    if (dax) {
        if (fecb.minors.minor[blk] >= minorCounterMax) {
            Fecb old_fecb = fecb;
            Mecb cur_mecb = mecb;
            Fecb new_fecb = fecb;
            new_fecb.major += 1;
            new_fecb.minors = MinorCounters{};
            reencrypt_lat +=
                reencryptPage(pageAlign(line), cur_mecb, &old_fecb,
                              cur_mecb, &new_fecb, now + meta_lat);
            fecb = new_fecb;
        }
        fecb.minors.minor[blk] += 1;
    }

    counters_->installMecb(mecb_addr, mecb);
    touchMetadataDirty(mecb_addr);
    if (dax) {
        counters_->installFecb(fecb_addr, fecb);
        touchMetadataDirty(fecb_addr);
    }

    // Functional encryption with the *new* counters.
    std::uint8_t cipher[blockSize];
    std::memcpy(cipher, plain, blockSize);
    crypto::Line mpad = memPad(line, mecb, blk);
    crypto::xorLine(cipher, mpad);
    if (dax && have_file_key) {
        crypto::Line fpad = filePad(line, fecb, blk, file_key);
        crypto::xorLine(cipher, fpad);
    }
    device_.writeLine(line, cipher);
    device_.setEcc(line, OsirisRecovery::eccOf(plain, line));

    // Osiris stop-loss: force-persist counter blocks on their
    // boundaries (or after an overflow, whose persist the
    // re-encryption path needs anyway). FECBs persist at a longer
    // cadence; recovery probes the lag pair two-dimensionally.
    // eADR: the dirty counter line is already inside the persistence
    // domain, so the stop-loss cadence is off entirely — only the
    // overflow persist (which the re-encryption depends on) remains.
    bool overflowed = reencrypt_lat > 0;
    bool eadr = isEadr();
    if ((!eadr && osiris_.atStopLoss(mecb.minors.minor[blk])) ||
        overflowed) {
        counters_->persistMecb(mecb_addr);
        metaCache_->clean(mecb_addr);
        MemRequest mpw;
        mpw.paddr = mecb_addr;
        mpw.isWrite = true;
        mpw.cls = TrafficClass::Metadata;
        device_.access(mpw, now + meta_lat);
        touchMetadataDirty(merkle_->ancestorAddr(mecb_addr, 1));
    }
    if (dax) {
        unsigned fecb_period = std::max(
            1u, sec_.osirisStopLoss * sec_.fecbStopLossFactor);
        if ((!eadr && fecb.minors.minor[blk] % fecb_period == 0) ||
            overflowed) {
            counters_->persistFecb(fecb_addr);
            metaCache_->clean(fecb_addr);
            MemRequest fpw;
            fpw.paddr = fecb_addr;
            fpw.isWrite = true;
            fpw.cls = TrafficClass::Metadata;
            device_.access(fpw, now + meta_lat);
            touchMetadataDirty(merkle_->ancestorAddr(fecb_addr, 1));
        }
    }

    Completion dc = device_.submit(dreq, now + meta_lat + pad_lat);
    Tick dev_lat = dc.latency();
    if (prof_)
        prof_->resourceArrival(profile::Res::NvmBanks,
                               dev_lat - dc.bankWait, dc.bankWait);
    // The write occupies a WPQ slot until the pad is ready and the
    // cell write drains; a full queue stalls the accept.
    Tick completion = now + meta_lat + pad_lat + dev_lat;
    Tick wpq_stall = wpqAccept(now, completion);
    Tick accept_lat = pcm_.writeAcceptLatency + wpq_stall;
    Tick lat = accept_lat + reencrypt_lat;
    if (prof_) {
        prof_->book(profile::ReqClass::Data, profile::WaitKind::Wpq,
                    wpq_stall);
        prof_->book(profile::ReqClass::Data,
                    profile::WaitKind::Service,
                    pcm_.writeAcceptLatency);
        // Page re-encryption is a serial burst of data-array traffic.
        prof_->book(profile::ReqClass::Data,
                    profile::WaitKind::Service, reencrypt_lat);
    }
    trace::Breakdown bd;
    bd.ticks[trace::Writeback] = accept_lat;
    // Page re-encryption is a burst of data-array reads and writes.
    bd.ticks[trace::NvmAccess] = reencrypt_lat;
    if (blocking && meta_missed) {
        // Persist-ordered (clwb+fence) under ADR: the store is durable
        // at WPQ accept; pad generation and the cell write drain in
        // the background. Only a counter fetch from NVM backpressures
        // the accept itself.
        lat += meta_lat;
        bd += mbd; // counter_fetch + merkle_verify == meta_lat
        if (prof_) {
            if (!dax)
                mp.mecbVisible = true;
            mp.bookInto(*prof_);
        }
    }
    if (audit_ && dax)
        auditRideAlong(/*is_read=*/false, blocking, full_addr, fecb,
                       now, lat, bd);
    recordAccess(false, bd, lat, now, dax);
    return lat;
}

Tick
SecureMemoryController::reencryptPage(Addr page_addr,
                                      const Mecb &old_mecb,
                                      const Fecb *old_fecb,
                                      const Mecb &new_mecb,
                                      const Fecb *new_fecb, Tick now)
{
    ++pageReencryptions_;

    bool dax = old_fecb != nullptr;
    bool have_file_key = false;
    // One schedule expansion for the whole 64-line page, not one per
    // filePad call (a local copy: the cache slot may be evicted by
    // unrelated lookups while the loop runs).
    crypto::Aes128 file_engine;
    if (dax && !fsencLocked_) {
        OttLookupResult key = lookupFileKey(*old_fecb, now);
        if (key.found) {
            have_file_key = true;
            file_engine = fileAes(key.key);
        }
    }

    // Sequential extent: precompute the four pad streams over the
    // page (pageId/major are loop-invariant; see crypto::PadStream).
    std::uint64_t page_id = pageNumber(page_addr);
    crypto::PadStream old_mem(memAes_, page_id, old_mecb.major,
                              old_mecb.minors.minor.data(),
                              blocksPerPage);
    crypto::PadStream new_mem(memAes_, page_id, new_mecb.major,
                              new_mecb.minors.minor.data(),
                              blocksPerPage);
    std::optional<crypto::PadStream> old_file, new_file;
    if (have_file_key)
        old_file.emplace(file_engine, page_id, old_fecb->major,
                         old_fecb->minors.minor.data(), blocksPerPage);
    if (have_file_key && new_fecb)
        new_file.emplace(file_engine, page_id, new_fecb->major,
                         new_fecb->minors.minor.data(), blocksPerPage);

    Tick lat = 0;
    for (unsigned blk = 0; blk < blocksPerPage; ++blk) {
        Addr line = page_addr + blk * blockSize;

        MemRequest rreq;
        rreq.paddr = line;
        rreq.isWrite = false;
        rreq.cls = TrafficClass::Data;
        lat += device_.access(rreq, now + lat);

        std::uint8_t buf[blockSize];
        device_.readLine(line, buf);

        crypto::xorLine(buf, old_mem.next());
        if (old_file)
            crypto::xorLine(buf, old_file->next());

        // buf now holds plaintext; re-encrypt under the new counters.
        crypto::xorLine(buf, new_mem.next());
        if (new_file)
            crypto::xorLine(buf, new_file->next());
        device_.writeLine(line, buf);

        MemRequest wreq;
        wreq.paddr = line;
        wreq.isWrite = true;
        wreq.cls = TrafficClass::Data;
        lat += device_.access(wreq, now + lat);
    }
    return lat;
}

Tick
SecureMemoryController::mmioRegisterFileKey(std::uint32_t gid,
                                            std::uint32_t fid,
                                            const crypto::Key128 &fek,
                                            Tick now)
{
    if (!hasFsEncr())
        return 0;
    // The hardware identifies files by the FECB's 18/14-bit fields;
    // mask consistently at every MMIO entry point.
    gid &= Fecb::groupIdMask;
    fid &= Fecb::fileIdMask;
    if (trace_)
        trace_->append({TraceRecord::Kind::MmioKey, 0, gid, fid});
    if (tracer_) {
        tracer_->setTime(now);
        tracer_->instant("mmio_register_file_key", "mmio", now,
                         (static_cast<std::uint64_t>(gid) << 14) | fid);
    }
    // eADR: flush-on-crash replaces the immediate spill logging (the
    // OTT array is inside the persistence domain).
    return ott_->insert(gid, fid, fek, now,
                        sec_.ottLogImmediately && !isEadr());
}

Tick
SecureMemoryController::mmioRemoveFileKey(std::uint32_t gid,
                                          std::uint32_t fid, Tick now)
{
    if (!hasFsEncr())
        return 0;
    // Deleted file: its key may still sit in the context cache keyed
    // by value; shedding every schedule is cheap and deletion is rare.
    fileAesCache_.invalidateAll();
    if (tracer_) {
        tracer_->setTime(now);
        tracer_->instant("mmio_remove_file_key", "mmio", now,
                         (static_cast<std::uint64_t>(
                              gid & Fecb::groupIdMask)
                          << 14) |
                             (fid & Fecb::fileIdMask));
    }
    return ott_->remove(gid & Fecb::groupIdMask,
                        fid & Fecb::fileIdMask, now);
}

Tick
SecureMemoryController::mmioStampPage(Addr paddr, std::uint32_t gid,
                                      std::uint32_t fid, Tick now)
{
    if (!hasFsEncr())
        return 0;
    if (trace_)
        trace_->append({TraceRecord::Kind::MmioStamp, paddr, gid, fid});
    if (tracer_) {
        tracer_->setTime(now);
        tracer_->instant("mmio_stamp_page", "mmio", now,
                         stripDfBit(paddr));
    }
    Addr line = blockAlign(stripDfBit(paddr));
    Addr fecb_addr = layout_.fecbAddr(line);
    Tick lat = fetchMetadata(fecb_addr, now);
    Fecb fecb = counters_->fecb(fecb_addr);
    fecb.groupId = gid & Fecb::groupIdMask;
    fecb.fileId = fid & Fecb::fileIdMask;
    counters_->installFecb(fecb_addr, fecb);
    touchMetadataDirty(fecb_addr);
    // The stamp persists with the block's natural eviction or its
    // first stop-loss boundary; after a crash the remount path
    // re-stamps every file page from the (persistent) filesystem
    // metadata, so no eager write is needed here.
    return lat;
}

void
SecureMemoryController::provisionAdminCredential(
    const crypto::Key128 &credential)
{
    adminCredential_ = credential;
    fsencLocked_ = false;
}

void
SecureMemoryController::mmioAdminLogin(const crypto::Key128 &credential)
{
    if (!adminCredential_) {
        fsencLocked_ = false;
        return;
    }
    fsencLocked_ = credential != *adminCredential_;
    if (tracer_)
        tracer_->instant("mmio_admin_login", "mmio", tracer_->time(),
                         fsencLocked_ ? 0 : 1);
    if (fsencLocked_) {
        warn("admin credential mismatch: FsEncr decryption locked");
        // Locked: no file pads may be produced, so no expanded file
        // schedule should survive in host memory either.
        fileAesCache_.invalidateAll();
    }
}

Tick
SecureMemoryController::mmioReplaceFileKey(std::uint32_t gid,
                                           std::uint32_t fid,
                                           const crypto::Key128 &new_key,
                                           Tick now)
{
    if (!hasFsEncr())
        return 0;
    // Eager re-key: the replaced key is dead once rekeyPage sweeps
    // the file, so drop stale schedules wholesale.
    fileAesCache_.invalidateAll();
    return ott_->insert(gid & Fecb::groupIdMask,
                        fid & Fecb::fileIdMask, new_key, now,
                        sec_.ottLogImmediately && !isEadr());
}

const crypto::Key128 *
SecureMemoryController::lazyOldKey(const Fecb &fecb,
                                   Addr line_addr) const
{
    auto it = lazyRekeys_.find(lazyKeyOf(fecb.groupId, fecb.fileId));
    if (it == lazyRekeys_.end())
        return nullptr;
    if (!it->second.pendingPages.count(pageAlign(line_addr)))
        return nullptr;
    return &it->second.oldKey;
}

Tick
SecureMemoryController::lazyRekeyOnWrite(const Fecb &fecb,
                                         Addr line_addr,
                                         const crypto::Key128 &new_key,
                                         Tick now)
{
    auto it = lazyRekeys_.find(lazyKeyOf(fecb.groupId, fecb.fileId));
    if (it == lazyRekeys_.end())
        return 0;
    Addr page = pageAlign(line_addr);
    if (!it->second.pendingPages.count(page))
        return 0;

    // Re-encrypt the page in place: counters are untouched, only the
    // file-layer pad flips from the old key to the new one.
    ++lazyRekeyedPages_;
    crypto::Aes128 old_engine = fileAes(it->second.oldKey);
    crypto::Aes128 new_engine = fileAes(new_key);
    // Both streams walk the same FECB minors; only the key differs.
    crypto::PadStream old_pads(old_engine, pageNumber(page),
                               fecb.major, fecb.minors.minor.data(),
                               blocksPerPage);
    crypto::PadStream new_pads(new_engine, pageNumber(page),
                               fecb.major, fecb.minors.minor.data(),
                               blocksPerPage);
    Tick lat = 0;
    for (unsigned blk = 0; blk < blocksPerPage; ++blk) {
        Addr l = page + blk * blockSize;
        std::uint8_t buf[blockSize];
        device_.readLine(l, buf);
        crypto::xorLine(buf, old_pads.next());
        crypto::xorLine(buf, new_pads.next());
        device_.writeLine(l, buf);

        MemRequest rreq;
        rreq.paddr = l;
        rreq.isWrite = false;
        rreq.cls = TrafficClass::Data;
        lat += device_.access(rreq, now + lat);
        MemRequest wreq;
        wreq.paddr = l;
        wreq.isWrite = true;
        wreq.cls = TrafficClass::Data;
        lat += device_.access(wreq, now + lat);
    }

    it->second.pendingPages.erase(page);
    if (it->second.pendingPages.empty()) {
        // Lazy re-key complete: the old key is dead, drop its
        // schedule from the context cache.
        fileAesCache_.invalidate(it->second.oldKey);
        lazyRekeys_.erase(it);
    }
    return lat;
}

Tick
SecureMemoryController::mmioBeginLazyRekey(std::uint32_t gid,
                                           std::uint32_t fid,
                                           const crypto::Key128 &new_key,
                                           const std::vector<Addr> &pages,
                                           Tick now)
{
    if (!hasFsEncr())
        return 0;
    gid &= Fecb::groupIdMask;
    fid &= Fecb::fileIdMask;
    if (tracer_) {
        tracer_->setTime(now);
        tracer_->instant("mmio_begin_lazy_rekey", "mmio", now,
                         pages.size());
    }
    auto current = ott_->lookup(gid, fid, now);
    if (!current.found)
        fatal("lazy rekey of (%u, %u) without a current key", gid,
              fid);

    LazyRekey state;
    state.oldKey = current.key;
    for (Addr p : pages)
        state.pendingPages.insert(pageAlign(stripDfBit(p)));
    lazyRekeys_[lazyKeyOf(gid, fid)] = std::move(state);

    return ott_->insert(gid, fid, new_key, now + current.latency,
                        sec_.ottLogImmediately &&
                            !isEadr()) +
           current.latency;
}

std::size_t
SecureMemoryController::lazyRekeyPending(std::uint32_t gid,
                                         std::uint32_t fid) const
{
    auto it = lazyRekeys_.find(lazyKeyOf(gid, fid));
    return it == lazyRekeys_.end() ? 0
                                   : it->second.pendingPages.size();
}

Tick
SecureMemoryController::rekeyPage(Addr page_addr,
                                  const crypto::Key128 &old_key,
                                  Tick now)
{
    Addr line = blockAlign(stripDfBit(page_addr));
    Addr fecb_addr = layout_.fecbAddr(line);
    Addr mecb_addr = layout_.mecbAddr(line);
    Tick lat = fetchMetadata(mecb_addr, now);
    lat += fetchMetadata(fecb_addr, now + lat);
    Fecb fecb = counters_->fecb(fecb_addr);

    OttLookupResult key = lookupFileKey(fecb, now + lat);
    if (!key.found)
        fatal("rekeyPage: no current key for (%u, %u)", fecb.groupId,
              fecb.fileId);

    crypto::Aes128 old_engine = fileAes(old_key);
    crypto::Aes128 new_engine = fileAes(key.key);
    // Memory layer unchanged: XOR-ing old^new file pads suffices.
    crypto::PadStream old_fpads(old_engine, pageNumber(line),
                                fecb.major, fecb.minors.minor.data(),
                                blocksPerPage);
    crypto::PadStream new_fpads(new_engine, pageNumber(line),
                                fecb.major, fecb.minors.minor.data(),
                                blocksPerPage);
    Tick total = lat;
    for (unsigned blk = 0; blk < blocksPerPage; ++blk) {
        Addr l = pageAlign(line) + blk * blockSize;
        std::uint8_t buf[blockSize];
        device_.readLine(l, buf);
        crypto::xorLine(buf, old_fpads.next());
        crypto::xorLine(buf, new_fpads.next());
        device_.writeLine(l, buf);

        MemRequest rreq;
        rreq.paddr = l;
        rreq.isWrite = false;
        rreq.cls = TrafficClass::Data;
        total += device_.access(rreq, now + total);
        MemRequest wreq;
        wreq.paddr = l;
        wreq.isWrite = true;
        wreq.cls = TrafficClass::Data;
        total += device_.access(wreq, now + total);
    }
    // The old key no longer decrypts anything on this page.
    fileAesCache_.invalidate(old_key);
    return total;
}

Tick
SecureMemoryController::shredPage(Addr page_addr, Tick now)
{
    if (!hasMemoryEncryption())
        return 0;
    Addr line = pageAlign(stripDfBit(page_addr));
    Addr mecb_addr = layout_.mecbAddr(line);
    Tick lat = fetchMetadata(mecb_addr, now);

    Mecb mecb = counters_->mecb(mecb_addr);
    mecb.major += 1; // every old IV becomes unreachable
    mecb.minors = MinorCounters{};
    counters_->installMecb(mecb_addr, mecb);
    touchMetadataDirty(mecb_addr);

    bool pmem = layout_.isPmem(line);
    if (hasFsEncr() && pmem) {
        Addr fecb_addr = layout_.fecbAddr(line);
        lat += fetchMetadata(fecb_addr, now + lat);
        Fecb fecb;
        fecb.major = counters_->fecb(fecb_addr).major + 1;
        counters_->installFecb(fecb_addr, fecb);
        touchMetadataDirty(fecb_addr);
    }

    // Drop the stale ECC words: the old plaintext no longer exists
    // architecturally, so post-crash recovery must not resurrect it.
    for (unsigned blk = 0; blk < blocksPerPage; ++blk)
        device_.clearEcc(line + blk * blockSize);

    // Secure deletion also sheds any cached schedule whose key covered
    // the shredded page (coarse: shred is rare, expansion is cheap).
    fileAesCache_.invalidateAll();

    persistPageCounters(line, hasFsEncr() && pmem, now + lat);
    return lat;
}

bool
SecureMemoryController::backupFlushAdmit(Addr line_addr)
{
    // Offer the line to the injector even once the static budget is
    // spent: every dropped line must land in the injection log so the
    // harness's oracle can map the unflushed tail.
    bool allow = true;
    if (FaultInjector *inj = device_.faultInjector())
        allow = inj->onBackupFlushLine(line_addr);
    std::uint64_t budget = sec_.backupFlushBudgetLines;
    if (budget != 0 && backupFlushLines_ >= budget)
        allow = false;
    if (allow)
        ++backupFlushLines_;
    else
        ++backupFlushDropped_;
    return allow;
}

void
SecureMemoryController::backupPowerFlush(Tick now)
{
    // Stage 2 of the eADR drain (stage 1, the CPU caches, runs in
    // System::crash before this): dirty metadata-cache lines, in
    // address order — set-walk order is not part of the model.
    if (metaCache_) {
        std::vector<Addr> dirty;
        metaCache_->forEachLine([&](Addr addr, bool is_dirty) {
            if (is_dirty)
                dirty.push_back(addr);
        });
        std::sort(dirty.begin(), dirty.end());
        for (Addr addr : dirty) {
            if (!backupFlushAdmit(addr))
                continue;
            switch (layout_.classifyMeta(addr)) {
              case PhysLayout::MetaKind::Mecb:
                if (counters_ && counters_->residentMecb(addr))
                    counters_->persistMecb(addr);
                break;
              case PhysLayout::MetaKind::Fecb:
                if (counters_ && counters_->residentFecb(addr))
                    counters_->persistFecb(addr);
                break;
              default:
                // Merkle nodes: the node MACs live in the sparse
                // host-side tree, which survives the crash; draining
                // the cached line is energy accounting only.
                break;
            }
        }
    }
    // The audit WCB is controller-resident SRAM like the OTT array:
    // under eADR its tail drains at crash time (capacitor-covered,
    // never budget-gated), so the recovered log is the full
    // acknowledged stream instead of a WCB-truncated prefix.
    if (audit_)
        audit_->drain(now);
    // The WPQ sits inside even the ADR domain, where it drains
    // without any backup-energy accounting; its entries landed
    // functionally at accept time, so the drain here is just
    // emptying the in-flight ring (it is not budget-metered and does
    // not count as flushed lines).
    while (!wpqInFlight_.empty())
        wpqInFlight_.pop_front();
}

void
SecureMemoryController::crash(Tick now)
{
    if (isEadr())
        backupPowerFlush(now);
    if (metaCache_)
        metaCache_->loseAll();
    if (counters_)
        counters_->crash();
    if (ott_)
        // eADR: the 2 KB on-controller OTT array is covered by its
        // own capacitor, so its crash flush is never budget-gated.
        ott_->crash(isEadr() || sec_.ottBackupPowerFlush, now);
    if (audit_)
        audit_->crash();
    device_.crash();
}

bool
SecureMemoryController::recoverMetadata()
{
    if (!merkle_)
        return true;
    return merkle_->rebuildAndVerify();
}

const char *
SecureMemoryController::quarantineReasonName(QuarantineReason reason)
{
    switch (reason) {
      case QuarantineReason::MetadataTampered:
        return "metadata-tampered";
      case QuarantineReason::ProbeExhausted:
        return "probe-exhausted";
      case QuarantineReason::MissingKey:
        return "missing-key";
    }
    return "unknown";
}

SecureMemoryController::MetadataVerdict
SecureMemoryController::recoverMetadataGraceful()
{
    MetadataVerdict verdict;
    quarantined_.clear();
    if (!merkle_)
        return verdict;

    std::vector<Addr> tampered;
    verdict.rootOk = merkle_->rebuildAndVerify(&tampered);

    // Virgin sweep: counter leaves the tree never tracked must still
    // be all-zero on the device — the root comparison cannot see
    // tampering there. A dirtied virgin leaf is adopted (updateLeaf,
    // so recovery-time fetches verify against what is actually
    // stored) and classified below like any other tampered leaf.
    std::vector<Addr> virgin;
    virgin.reserve(2 * device_.eccMap().size());
    for (const auto &[line, ecc] : device_.eccMap()) {
        (void)ecc;
        // Sharded datapath: the device's ECC map is machine-global;
        // each shard sweeps only the pages it owns (its subtree's
        // leaves). {0, 1} owns everything.
        if (!geom_.owns(line))
            continue;
        virgin.push_back(layout_.mecbAddr(line));
        if (layout_.isPmem(line))
            virgin.push_back(layout_.fecbAddr(line));
    }
    std::sort(virgin.begin(), virgin.end());
    virgin.erase(std::unique(virgin.begin(), virgin.end()),
                 virgin.end());
    for (Addr leaf : virgin) {
        if (merkle_->leafTracked(leaf))
            continue; // the rebuild above already compared it
        std::uint8_t raw[blockSize];
        device_.readLine(leaf, raw);
        bool zero = true;
        for (unsigned b = 0; b < blockSize; ++b)
            zero &= raw[b] == 0;
        if (zero)
            continue;
        verdict.rootOk = false;
        tampered.push_back(leaf);
        merkle_->updateLeaf(leaf);
    }

    if (verdict.rootOk)
        return verdict;

    std::sort(tampered.begin(), tampered.end());
    verdict.tamperedLeaves = tampered;

    if (tampered.empty()) {
        // Root mismatch with every touched leaf intact: a virgin leaf
        // was dirtied or interior state diverged — no bounded blast
        // radius to quarantine.
        verdict.localizable = false;
        warnLimited(16, "recovery: merkle root mismatch with no "
                        "tampered touched leaf; damage is not "
                        "localizable");
        return verdict;
    }

    for (Addr leaf : tampered) {
        switch (layout_.classifyMeta(leaf)) {
          case PhysLayout::MetaKind::AuditLog:
            // A damaged log line costs only the log suffix behind it:
            // the scanner truncates there and flags the result. No
            // file data is at risk, so the verdict stays localizable.
            if (audit_)
                audit_->noteTamperedLine(leaf);
            warnLimited(16,
                        "recovery: tampered audit-log line %#lx "
                        "truncates the recovered log",
                        static_cast<unsigned long>(leaf));
            break;
          case PhysLayout::MetaKind::Mecb:
          case PhysLayout::MetaKind::Fecb: {
            // A corrupt counter block poisons exactly the data page it
            // covers: wall off those 64 lines.
            Addr page = layout_.dataPageOfMeta(leaf);
            for (unsigned blk = 0; blk < blocksPerPage; ++blk)
                quarantined_.insert(page + blk * blockSize);
            warnLimited(16,
                        "recovery: tampered counter line %#lx "
                        "quarantines data page %#lx",
                        static_cast<unsigned long>(leaf),
                        static_cast<unsigned long>(page));
            break;
          }
          default:
            // OTT spill or out-of-range: corrupt key material has no
            // per-file blast radius we can bound here.
            verdict.localizable = false;
            warnLimited(16,
                        "recovery: tampered metadata line %#lx is not "
                        "a counter block; damage is not localizable",
                        static_cast<unsigned long>(leaf));
            break;
        }
    }
    return verdict;
}

bool
SecureMemoryController::recoverLine(Addr full_addr)
{
    return recoverLineDetail(full_addr) == LineRecovery::Ok;
}

SecureMemoryController::LineRecovery
SecureMemoryController::recoverLineDetail(Addr full_addr,
                                          std::uint32_t *gid_out,
                                          std::uint32_t *fid_out)
{
    if (!hasMemoryEncryption())
        return LineRecovery::Ok;

    Addr line = blockAlign(stripDfBit(full_addr));
    if (!device_.hasEcc(line))
        return LineRecovery::Ok; // never written via encrypted path

    unsigned blk = blockInPage(line);
    Addr mecb_addr = layout_.mecbAddr(line);
    Mecb mecb = counters_->persistedMecb(mecb_addr);

    bool dax = false;
    Fecb fecb;
    Addr fecb_addr = 0;
    if (hasFsEncr() && layout_.isPmem(line)) {
        fecb_addr = layout_.fecbAddr(line);
        // Persisted minors drive the probe; the identity stamp may
        // live only in the working copy (remount re-stamps it from
        // filesystem metadata before recovery runs).
        fecb = counters_->persistedFecb(fecb_addr);
        Fecb working = counters_->fecb(fecb_addr);
        if ((working.groupId | working.fileId) != 0) {
            fecb.groupId = working.groupId;
            fecb.fileId = working.fileId;
        }
        dax = (fecb.groupId | fecb.fileId) != 0;
        if (dax) {
            if (gid_out)
                *gid_out = fecb.groupId;
            if (fid_out)
                *fid_out = fecb.fileId;
        }
    }

    crypto::Key128 file_key{};
    if (dax) {
        OttLookupResult key = ott_->lookup(fecb.groupId, fecb.fileId, 0);
        if (!key.found) {
            // Dead end: nothing left to probe against — the key never
            // made it back into the OTT after the crash.
            warnLimited(16,
                        "recovery: line %#lx stamped (gid=%u, fid=%u) "
                        "but no such key in the OTT; line is lost",
                        static_cast<unsigned long>(line),
                        fecb.groupId, fecb.fileId);
            return LineRecovery::MissingKey;
        }
        file_key = key.key;
        if (const crypto::Key128 *old_key = lazyOldKey(fecb, line))
            file_key = *old_key;
    }

    std::uint8_t cipher[blockSize];
    device_.readLine(line, cipher);
    std::uint32_t stored_ecc = device_.getEcc(line);

    std::uint32_t persisted_mem_minor = mecb.minors.minor[blk];
    std::uint32_t persisted_file_minor = fecb.minors.minor[blk];

    if (!dax) {
        auto trial = [&](std::uint32_t cand, std::uint8_t *plain) {
            std::memcpy(plain, cipher, blockSize);
            Mecb m = mecb;
            m.minors.minor[blk] =
                static_cast<std::uint8_t>(cand & minorCounterMax);
            crypto::Line mpad = memPad(line, m, blk);
            crypto::xorLine(plain, mpad);
        };
        auto recovered = osiris_.recoverMinor(persisted_mem_minor,
                                              stored_ecc, trial, line);
        if (!recovered)
            return LineRecovery::ProbeExhausted;
        mecb.minors.minor[blk] =
            static_cast<std::uint8_t>(*recovered & minorCounterMax);
        counters_->installMecb(mecb_addr, mecb);
        counters_->persistMecb(mecb_addr);
        return LineRecovery::Ok;
    }

    // DAX line: the memory and file counters lag independently (the
    // FECB persists at a longer cadence); probe the pair.
    auto trial2 = [&](std::uint32_t dm, std::uint32_t df,
                      std::uint8_t *plain) {
        std::memcpy(plain, cipher, blockSize);
        Mecb m = mecb;
        m.minors.minor[blk] = static_cast<std::uint8_t>(
            (persisted_mem_minor + dm) & minorCounterMax);
        crypto::xorLine(plain, memPad(line, m, blk));
        Fecb f = fecb;
        f.minors.minor[blk] = static_cast<std::uint8_t>(
            (persisted_file_minor + df) & minorCounterMax);
        crypto::xorLine(plain, filePad(line, f, blk, file_key));
    };
    unsigned file_span = std::max(
        1u, sec_.osirisStopLoss * sec_.fecbStopLossFactor);
    auto pair = osiris_.recoverMinorPair(sec_.osirisStopLoss,
                                         file_span, stored_ecc, trial2,
                                         line);
    if (!pair)
        return LineRecovery::ProbeExhausted;

    mecb.minors.minor[blk] = static_cast<std::uint8_t>(
        (persisted_mem_minor + pair->first) & minorCounterMax);
    counters_->installMecb(mecb_addr, mecb);
    counters_->persistMecb(mecb_addr);
    fecb.minors.minor[blk] = static_cast<std::uint8_t>(
        (persisted_file_minor + pair->second) & minorCounterMax);
    counters_->installFecb(fecb_addr, fecb);
    counters_->persistFecb(fecb_addr);
    return LineRecovery::Ok;
}

std::uint64_t
SecureMemoryController::recoverAll()
{
    return recoverAllReport().failures;
}

SecureMemoryController::RecoveryReport
SecureMemoryController::recoverAllReport()
{
    RecoveryReport report;
    std::uint64_t probes_before =
        hasMemoryEncryption()
            ? osiris_.statGroup().scalarValue("probes")
            : 0;

    // Candidate lines: the full ECC map (Osiris sweep), or only the
    // lines covered by shadow-tracked counter blocks (Anubis).
    std::vector<Addr> lines;
    if (sec_.recovery == SecParams::Recovery::AnubisShadow) {
        for (Addr meta : anubisShadow_) {
            Addr page = layout_.dataPageOfMeta(meta);
            for (unsigned blk = 0; blk < blocksPerPage; ++blk) {
                Addr line = page + blk * blockSize;
                if (device_.hasEcc(line))
                    lines.push_back(line);
            }
        }
        // A page covered by both MECB and FECB appears twice.
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()),
                    lines.end());
    } else {
        lines.reserve(device_.eccMap().size());
        for (const auto &[addr, ecc] : device_.eccMap()) {
            (void)ecc;
            if (!geom_.owns(addr))
                continue; // another shard's line (sharded recovery)
            lines.push_back(addr);
        }
    }

    for (Addr a : lines) {
        ++report.linesExamined;
        // Lines already quarantined by the metadata pass have no
        // trustworthy counters to probe against; skip them (they are
        // casualties, not additional failures).
        if (quarantined_.count(a)) {
            report.quarantined.push_back(
                {a, QuarantineReason::MetadataTampered, 0, 0});
            continue;
        }
        // Replays the DF-bit decision from the persisted FECB stamp.
        std::uint32_t gid = 0, fid = 0;
        switch (recoverLineDetail(a, &gid, &fid)) {
          case LineRecovery::Ok:
            break;
          case LineRecovery::ProbeExhausted:
            ++report.failures;
            quarantined_.insert(a);
            report.quarantined.push_back(
                {a, QuarantineReason::ProbeExhausted, gid, fid});
            break;
          case LineRecovery::MissingKey:
            ++report.failures;
            quarantined_.insert(a);
            report.quarantined.push_back(
                {a, QuarantineReason::MissingKey, gid, fid});
            break;
        }
    }
    // Deterministic report order regardless of map iteration order.
    std::sort(report.quarantined.begin(), report.quarantined.end(),
              [](const QuarantinedLine &x, const QuarantinedLine &y) {
                  return x.addr < y.addr;
              });

    if (hasMemoryEncryption())
        report.probes = osiris_.statGroup().scalarValue("probes") -
                        probes_before;
    // First-order recovery time: one array read per examined line and
    // one pipelined AES pass per probe (plus the shadow-table scan).
    report.modelTime =
        report.linesExamined * pcm_.readLatency +
        report.probes * sec_.aesLatency +
        anubisShadow_.size() * pcm_.readLatency;
    return report;
}

void
SecureMemoryController::shutdown(Tick now)
{
    if (counters_)
        counters_->flushAll();
    if (ott_)
        ott_->crash(/*backup_power_flush=*/true, now);
    if (audit_)
        audit_->shutdown(now);
    anubisShadow_.clear(); // everything persisted: no stale counters
}

SecureMemoryController::SecurityCapsule
SecureMemoryController::exportCapsule(Tick now)
{
    shutdown(now);
    SecurityCapsule capsule;
    capsule.memKey = memKey_;
    capsule.ottKey = ottKeyValue_;
    if (merkle_)
        capsule.tree = merkle_->exportState();
    return capsule;
}

bool
SecureMemoryController::importCapsule(const SecurityCapsule &capsule)
{
    memKey_ = capsule.memKey;
    memAes_.setKey(memKey_);
    ottKeyValue_ = capsule.ottKey;
    fileAesCache_.invalidateAll();
    if (hasFsEncr() && ott_) {
        // The transported spill region becomes readable under the
        // imported OTT key; the new machine's on-chip array is empty.
        ott_->adoptKey(ottKeyValue_);
    }
    if (!merkle_)
        return true;
    merkle_->importState(capsule.tree);
    // Authentication: the regenerated tree over the plugged-in module
    // must reproduce the transported root.
    return merkle_->rebuildAndVerify();
}

} // namespace fsencr
