/**
 * @file
 * The secure memory controller — where FsEncr lives (Section III).
 *
 * On every line request the controller demultiplexes on the DF-bit
 * (Figure 7): general requests are protected by counter-mode memory
 * encryption (MECB + memory key); DAX-file requests are additionally
 * protected by a file-specific pad (FECB + per-file key from the OTT),
 * the two pads XOR-composed into the final OTP. The metadata cache
 * holds MECB, FECB and Merkle-tree nodes; misses walk the Bonsai tree
 * until a cached (trusted) ancestor is reached.
 *
 * Functionally the controller really encrypts: the NVM device stores
 * ciphertext, the out-of-band ECC word backs Osiris counter recovery,
 * and tampering with persisted metadata trips the Merkle check.
 */

#ifndef FSENCR_FSENC_SECURE_MEMORY_CONTROLLER_HH
#define FSENCR_FSENC_SECURE_MEMORY_CONTROLLER_HH

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/profile.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "crypto/aes_cache.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/key.hh"
#include "fsenc/audit_log.hh"
#include "fsenc/ott.hh"
#include "fsenc/secure_datapath.hh"
#include "mem/arena.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "secmem/counter_store.hh"
#include "secmem/metadata_cache.hh"
#include "secmem/merkle_tree.hh"
#include "secmem/osiris.hh"

namespace fsencr {

namespace metrics {
class Registry;
class LabeledCounter;
} // namespace metrics

/** Raised when the Merkle tree detects metadata tampering/replay. */
class IntegrityError : public std::runtime_error
{
  public:
    explicit IntegrityError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};


/** The memory controller with layered encryption support. */
class SecureMemoryController : public SecureDatapath
{
  public:
    /**
     * Primary constructor: parameters by value-copyable slices, the
     * device and keys injected, geometry naming the shard's slice of
     * the machine. The controller is immutable after wiring — no
     * setter-after-construct mutation path exists (the set* methods
     * attach pure observers).
     *
     * @param sec encryption parameters (copied)
     * @param scheme protection scheme
     * @param pcm device/controller timing parameters (copied)
     * @param cycle_period ticks per CPU cycle
     * @param profile_enabled build the contention profiler
     * @param keys injected memory + OTT keys (shards share them)
     * @param geom this shard's slice ({0, 1} = the whole machine)
     * @param stat_name stat-tree group name ("mc"; routers name
     *        shards "mc0".."mcN-1")
     */
    SecureMemoryController(const SecParams &sec, Scheme scheme,
                           const PcmParams &pcm, Tick cycle_period,
                           bool profile_enabled,
                           const PhysLayout &layout, NvmDevice &device,
                           const McKeys &keys,
                           ShardGeometry geom = {},
                           const std::string &stat_name = "mc");

    /** Deprecated shim (one PR): the legacy constructor drew both
     *  keys from the Rng itself. Draw them at the call site with
     *  McKeys::draw(rng) and use the injected constructor instead. */
    [[deprecated("construct from SecParams/Scheme/PcmParams with "
                 "McKeys::draw(rng) injected")]]
    SecureMemoryController(const SimConfig &cfg, const PhysLayout &layout,
                           NvmDevice &device, Rng &rng)
        : SecureMemoryController(cfg.sec, cfg.scheme, cfg.pcm,
                                 cfg.cyclePeriod(), cfg.profile, layout,
                                 device, McKeys::draw(rng))
    {}

    ~SecureMemoryController() override = default;

    /** One shard behind a bare controller. */
    unsigned shardCount() const override { return 1; }
    unsigned shardOf(Addr) const override { return 0; }

    /** The slice of the machine this controller owns. */
    const ShardGeometry &geometry() const { return geom_; }

    /**
     * Submit one request through the full encryption stack.
     *
     * The request/completion surface over readLine()/writeLine():
     * reads honor req.readData (decrypted line out), writes take
     * req.writeData and req.blocking. The Completion carries a
     * monotonic request id and the per-component breakdown of exactly
     * this request (summing to latency()), so callers fold timing and
     * attribution from one record instead of pairing a returned
     * scalar with lastAccess().
     */
    Completion submit(const MemRequest &req, Tick now) override;

    /**
     * Service a line read (LLC miss fill).
     *
     * @param full_addr physical address, possibly carrying the DF-bit
     * @param now current time
     * @param plain_out if non-null, receives the decrypted 64B line
     * @return total read latency
     */
    Tick readLine(Addr full_addr, Tick now,
                  std::uint8_t *plain_out = nullptr);

    /**
     * Service a line write (writeback or persist).
     *
     * @param full_addr physical address, possibly carrying the DF-bit
     * @param plain the 64B plaintext to store
     * @param now current time
     * @param blocking true for persist-ordered writes (clwb+fence):
     *        the full device write latency lands on the critical path;
     *        false for background writebacks (queue-accept latency
     *        only, bank occupancy still modeled)
     * @return latency visible to the requester
     */
    Tick writeLine(Addr full_addr, const std::uint8_t *plain, Tick now,
                   bool blocking);

    /// @name MMIO register interface used by the trusted kernel
    /// (Section III-F.1).
    /// @{

    /** File creation: register {Group ID, File ID, FEK}. */
    Tick mmioRegisterFileKey(std::uint32_t gid, std::uint32_t fid,
                             const crypto::Key128 &fek,
                             Tick now) override;

    /** File deletion: remove the key from OTT and spill region. */
    Tick mmioRemoveFileKey(std::uint32_t gid, std::uint32_t fid,
                           Tick now) override;

    /** DAX page fault: stamp the page's FECB with Group/File ID. */
    Tick mmioStampPage(Addr paddr, std::uint32_t gid, std::uint32_t fid,
                       Tick now) override;

    /**
     * Boot-time admin login. A wrong credential locks FsEncr
     * decryption: file pads are withheld and DAX reads return
     * memory-layer-only decryption (i.e., garbage), Section VI.
     */
    void mmioAdminLogin(const crypto::Key128 &credential) override;

    /** Provision the admin credential (trusted setup). */
    void provisionAdminCredential(
        const crypto::Key128 &credential) override;

    /// @}

    /**
     * Re-key a file whose encryption counter saturated (Section VI):
     * lazily the controller would keep both keys; this model re-encrypts
     * the file's pages eagerly through rekeyPage().
     */
    Tick mmioReplaceFileKey(std::uint32_t gid, std::uint32_t fid,
                            const crypto::Key128 &new_key, Tick now);

    /**
     * Re-encrypt one DAX page after a file re-key (old key -> current
     * OTT key for the ids stamped in the page's FECB).
     */
    Tick rekeyPage(Addr page_addr, const crypto::Key128 &old_key,
                   Tick now);

    /**
     * Lazy re-key (Section VI): "instead of re-encrypting the entire
     * file at once, the memory controller can keep both keys and
     * silently decrypt with the old key ... and encrypt with the new
     * key during access to pages."
     *
     * The new key goes into the OTT; the listed pages stay encrypted
     * under the old key until their next write, when they are
     * re-encrypted in place. The pending bitmap is modeled as part of
     * the (immediately-logged) OTT spill state, so it survives
     * crashes.
     *
     * @param pages page-aligned device addresses of the file's pages
     */
    Tick mmioBeginLazyRekey(std::uint32_t gid, std::uint32_t fid,
                            const crypto::Key128 &new_key,
                            const std::vector<Addr> &pages, Tick now);

    /** Pages of (gid, fid) still awaiting re-encryption. */
    std::size_t lazyRekeyPending(std::uint32_t gid,
                                 std::uint32_t fid) const;

    /**
     * Silent-Shredder-style secure deletion (Section VI): repurpose the
     * page's IVs — bump the memory major counter and clear the FECB —
     * so the old ciphertext is unintelligible even to a holder of the
     * old file key, without rewriting a single data line.
     */
    Tick shredPage(Addr page_addr, Tick now) override;

    /// @name Crash and recovery
    /// @{

    /**
     * Power loss. Under ADR (default) the metadata cache, counter
     * copies and OTT vanish. Under eADR a backup-power flush first
     * drains dirty metadata-cache lines and the WPQ into the NVM
     * image (budget- and fault-gated per line, see
     * backupFlushAdmit()); only then does the volatile state drop.
     */
    void crash(Tick now);

    /**
     * eADR backup-power flush admission for one line, shared by the
     * CPU-cache drain (System::crash) and the metadata drain here so
     * one energy budget covers the whole flush. Consults the attached
     * fault injector (PartialBackupFlush) and the static
     * SecParams::backupFlushBudgetLines bound.
     *
     * @return true iff the line may be drained; false means the
     *         budget is spent and the line is lost
     */
    bool backupFlushAdmit(Addr line_addr);

    /** Lines the backup-power flush drained / dropped (this boot). */
    std::uint64_t backupFlushLines() const { return backupFlushLines_; }
    std::uint64_t backupFlushDropped() const
    {
        return backupFlushDropped_;
    }

    /** Osiris stop-loss persists booked (persist report section). */
    std::uint64_t
    stopLossPersists() const
    {
        return osiris_.stopLossPersists();
    }

    /**
     * Post-reboot recovery: verify the regenerated Merkle tree against
     * the on-chip root.
     * @return true iff the persisted metadata passes integrity
     */
    bool recoverMetadata();

    /** Why a line sits in the quarantine set. */
    enum class QuarantineReason {
        /** Its counter/FECB metadata line failed the Merkle check. */
        MetadataTampered,
        /** Osiris trial decryption exhausted every candidate. */
        ProbeExhausted,
        /** The FECB names a file key no longer in the OTT. */
        MissingKey,
    };

    static const char *quarantineReasonName(QuarantineReason reason);

    /** One quarantined data line. */
    struct QuarantinedLine
    {
        Addr addr = 0;
        QuarantineReason reason = QuarantineReason::ProbeExhausted;
        /** FECB identity stamp, when one exists (0/0 otherwise) —
         *  the per-file blast radius. */
        std::uint32_t groupId = 0;
        std::uint32_t fileId = 0;
    };

    /** What the graceful Merkle re-verification concluded. */
    struct MetadataVerdict
    {
        /** Regenerated root matched the on-chip root. */
        bool rootOk = true;
        /** Every mismatch was a counter leaf we could map to a data
         *  page and quarantine; false means tampering hit state with
         *  no bounded blast radius (OTT spill, virgin leaves). */
        bool localizable = true;
        /** Metadata-region leaf addresses that failed the check. */
        std::vector<Addr> tamperedLeaves;
    };

    /**
     * Graceful recoverMetadata: instead of a single verdict bool, a
     * root mismatch is localized to the tampered leaves, and every
     * MECB/FECB leaf's data page is quarantined (reads of those lines
     * must not reach software). Clears the previous quarantine set.
     */
    MetadataVerdict recoverMetadataGraceful();

    /**
     * Osiris recovery of one data line: probe counter candidates
     * against the line's ECC, reinstall and persist the recovered
     * counters.
     * @return true iff the line's counters were recovered
     */
    bool recoverLine(Addr full_addr);

    /**
     * Recover every line ever written through the encrypted path.
     * @return number of lines whose counters could not be recovered
     */
    std::uint64_t recoverAll();

    /** What a recovery pass did, with a first-order time model. */
    struct RecoveryReport
    {
        std::uint64_t linesExamined = 0;
        std::uint64_t probes = 0;
        std::uint64_t failures = 0;
        /** Modeled recovery latency: line reads + trial decrypts. */
        Tick modelTime = 0;
        /** Lines walled off instead of aborting the mount, sorted by
         *  address (includes pre-quarantined metadata casualties,
         *  which do not count as failures). */
        std::vector<QuarantinedLine> quarantined;
    };

    /**
     * recoverAll with accounting. Under Recovery::AnubisShadow only
     * the lines covered by shadow-tracked (possibly-stale) counter
     * blocks are probed; the full Osiris sweep probes everything.
     */
    RecoveryReport recoverAllReport();

    /** The line is walled off: its plaintext must never reach
     *  software until the covering file is recreated/shredded. */
    bool isQuarantined(Addr line_addr) const
    {
        return quarantined_.count(blockAlign(stripDfBit(line_addr)))
               != 0;
    }
    std::size_t quarantinedCount() const { return quarantined_.size(); }

    /// @}

    /** Orderly shutdown: flush counters and OTT. */
    void shutdown(Tick now);

    /**
     * Portable security state for moving the filesystem to a new
     * machine (Section VI): the memory and OTT keys plus the
     * integrity-tree state, transported "through an authorized user
     * interface"; the OTT contents are already flushed to the
     * encrypted spill region on the module itself.
     */
    struct SecurityCapsule
    {
        crypto::Key128 memKey{};
        crypto::Key128 ottKey{};
        MerkleTree::State tree;
    };

    /** Flush everything and export the capsule. */
    SecurityCapsule exportCapsule(Tick now);

    /**
     * Adopt a transported module: install the keys and tree, then
     * authenticate the module by regenerating the tree from the
     * device and checking the root (the paper's plug-in procedure).
     * @return true iff the module authenticates
     */
    bool importCapsule(const SecurityCapsule &capsule);

    /// @name Introspection for tests, benches and attack simulation.
    /// @{
    const crypto::Key128 &memoryKey() const { return memKey_; }
    const crypto::Key128 &ottKey() const { return ottKeyValue_; }
    bool fsencLocked() const { return fsencLocked_; }
    /** The audit ride-along, nullptr unless cfg.sec.auditEnabled. */
    AuditLog *auditLog() { return audit_.get(); }
    const AuditLog *auditLog() const { return audit_.get(); }
    OpenTunnelTable &ott() { return *ott_; }
    CounterStore &counters() { return *counters_; }
    MerkleTree &merkle() { return *merkle_; }
    MetadataCache &metadataCache() { return *metaCache_; }
    NvmDevice &device() { return device_; }
    const PhysLayout &layout() const { return layout_; }
    const crypto::AesContextCache &fileKeyCache() const
    {
        return fileAesCache_;
    }
    std::uint64_t fileAesCacheHits() const
    {
        return fileAesCacheHits_.value();
    }
    std::uint64_t fileAesCacheMisses() const
    {
        return fileAesCacheMisses_.value();
    }
    /// @}

    stats::StatGroup &statGroup() { return statGroup_; }

    std::uint64_t integrityViolations() const
    {
        return integrityViolations_.value();
    }

    /** Capture the controller-level request stream into a trace
     *  (nullptr disables). See cpu/mem_trace.hh. */
    void setTraceCapture(class MemTrace *trace) { trace_ = trace; }

    /// @name Observability (see docs/ARCHITECTURE.md, "Observability")
    /// @{

    /** MC attribution components: the first trace::Writeback+1. */
    static constexpr unsigned numMcComponents = trace::Writeback + 1;

    /**
     * Attach an event tracer (nullptr disables). Forwarded to the
     * metadata cache, Merkle tree, OTT and Osiris so their probes land
     * in the same ring. Pure observation: never affects timing.
     */
    void setTracer(trace::Tracer *tracer);
    trace::Tracer *tracer() const override { return tracer_; }

    /**
     * Attach a metrics registry (nullptr disables), forwarded to the
     * metadata cache, Merkle tree and OTT. The controller caches its
     * family pointers here so a probe on the access path is a single
     * pointer test. Pure observation: never affects timing.
     */
    void setMetrics(metrics::Registry *metrics);

    /** Cycle attribution of the most recent read/write request. The
     *  component ticks sum exactly to the latency that request
     *  returned. */
    const trace::Breakdown &lastAccess() const { return lastAccess_; }

    /** Critical-path ticks hidden by overlapping independent metadata
     *  chains across banks (always 0 with mcBanks == 1). */
    std::uint64_t overlapTicks() const { return overlapTicks_.value(); }
    /** Requests that hid at least one tick this way. */
    std::uint64_t overlappedRequests() const
    {
        return overlappedRequests_.value();
    }

    const stats::Histogram &readLatencyHistogram() const
    {
        return readLatency_;
    }
    const stats::Histogram &writeLatencyHistogram() const
    {
        return writeLatency_;
    }
    /** Per-access distribution of one attribution component. */
    const stats::Histogram &
    componentHistogram(unsigned c) const
    {
        return attrHists_.at(c);
    }

    /**
     * The contention profiler, nullptr unless cfg.profile (see
     * docs/ARCHITECTURE.md, "Contention profiling"). The accessor
     * first syncs the nvm_banks resource row from the device's own
     * occupancy counters, so call it when emitting a report rather
     * than caching the pointer mid-run.
     */
    profile::Profiler *profiler();

    /// @}

  private:
    /**
     * Bring a metadata line on-chip: metadata-cache access, device
     * fetch + Merkle walk on a miss, eviction handling.
     *
     * @param missed set to true if the line had to come from NVM
     * @param bd if non-null, the latency is attributed into it
     *        (counter_fetch for the leaf, merkle_verify for the
     *        Bonsai ancestor walk); the attributed ticks sum to the
     *        returned latency
     * @param cp if non-null, the chain's wait/service decomposition
     *        (leaf + walk bank waits, walk span, total) for the
     *        contention profiler; cp->total equals the returned
     *        latency
     * @return latency
     */
    Tick fetchMetadata(Addr meta_addr, Tick now,
                       bool *missed = nullptr,
                       trace::Breakdown *bd = nullptr,
                       profile::ChainProfile *cp = nullptr);

    /**
     * Profile of one request's metadata phase: the MECB and FECB
     * chains plus which of them ended up visible on the critical
     * path (a chain fully hidden by banked overlap books nothing).
     * The visible chains' booked ticks sum exactly to the metadata
     * span the request saw.
     */
    struct MetaPhaseProfile
    {
        profile::ChainProfile mecb;
        profile::ChainProfile fecb;
        bool mecbVisible = false;
        bool fecbVisible = false;

        void
        bookInto(profile::Profiler &prof) const
        {
            if (mecbVisible)
                prof.bookChain(profile::ReqClass::Mecb, mecb);
            if (fecbVisible)
                prof.bookChain(profile::ReqClass::Fecb, fecb);
        }
    };

    /** Banked mode is on: the controller may keep more than one
     *  request chain in flight over the device. */
    bool
    overlapEnabled() const
    {
        return pcm_.mcBanks > 1 && pcm_.mcMshrs > 1;
    }

    /** Issue slots available to metadata chains (one of the
     *  min(banks, MSHRs) slots is reserved for the demand line). */
    unsigned
    metaIssueSlots() const
    {
        return std::min(pcm_.mcBanks, pcm_.mcMshrs) - 1;
    }

    /**
     * Fetch the second (FECB) metadata chain of a DAX access.
     *
     * Serial mode (mcBanks == 1): issued strictly after the MECB
     * chain, exactly the legacy model — returns the combined latency
     * and folds the FECB chain into @p mbd, bit-identical to the
     * pre-banked simulator. Banked mode: the chain is independent of
     * the MECB walk, so it issues at @p now (given a free slot) and
     * the two chains overlap across banks; @p mbd is rewritten to the
     * critical chain so it still sums exactly to the returned span.
     *
     * @param now when the access (and the MECB chain) started
     * @param meta_lat latency of the completed MECB chain
     * @param mp if non-null, receives the FECB chain profile and the
     *        visibility flags of both chains (mp->mecb must already
     *        hold the MECB chain from the first fetchMetadata)
     * @return combined metadata span from @p now
     */
    Tick fetchSecondMeta(Addr fecb_addr, Tick now, Tick meta_lat,
                         trace::Breakdown &mbd, bool *missed,
                         bool is_read, MetaPhaseProfile *mp = nullptr);

    /** Book ticks hidden by chain overlap (no-op for 0). */
    void bookOverlap(bool is_read, Tick hidden);

    /** True iff this DAX access matches the audit predicate. */
    bool auditMatches(const Fecb &fecb) const;

    /**
     * Audit ride-along for one DAX access: append the record and fold
     * any WCB drain this append triggered into the access. Serial
     * mode: the drain chain issues after the access completes and its
     * latency lands on the critical path (attributed to writeback).
     * Banked mode: the drain issues at @p now as an independent chain
     * competing for banks; only the excess over the access's own span
     * is visible, the hidden part is booked as overlap under the
     * "audit" label.
     *
     * @param total access latency without auditing (updated in place)
     * @param bd the access's breakdown (updated in place)
     */
    void auditRideAlong(bool is_read, bool blocking, Addr full_addr,
                        const Fecb &fecb, Tick now, Tick &total,
                        trace::Breakdown &bd);

    /** Book one finished read/write: lastAccess_, cumulative
     *  attribution stats, latency histograms and trace events. The
     *  breakdown must sum exactly to @p total. */
    void recordAccess(bool is_read, const trace::Breakdown &bd,
                      Tick total, Tick now, bool dax);

    /** Handle a metadata-cache eviction (persist dirty counters). */
    void handleMetaEviction(Addr victim_addr, bool dirty, Tick now);

    /** Mark a metadata line dirty in the cache (it must be resident). */
    void touchMetadataDirty(Addr meta_addr);

    /** Build the memory-layer pad for a line version. */
    crypto::Line memPad(Addr line_addr, const Mecb &mecb,
                        unsigned blk) const;

    /** Build the file-layer pad for a line version. */
    crypto::Line filePad(Addr line_addr, const Fecb &fecb, unsigned blk,
                         const crypto::Key128 &key) const;

    /** The file-layer IV for a line version (shared by the per-line
     *  path and the hoisted page loops). */
    crypto::CtrIv fileIv(Addr line_addr, const Fecb &fecb,
                         unsigned blk) const;

    /**
     * Keyed engine for a file key, served from the AES-context cache
     * (schedule expanded at most once per key between invalidations).
     * The reference is only guaranteed until the next fileAes() call;
     * page-granular loops copy the engine into a local.
     */
    const crypto::Aes128 &fileAes(const crypto::Key128 &key) const;

    /** Persist both counter blocks of a DAX page together (keeps the
     *  Osiris probe one-dimensional; see DESIGN.md). */
    void persistPageCounters(Addr line_addr, bool dax, Tick now);

    /** Re-encrypt a whole page after a major-counter bump. */
    Tick reencryptPage(Addr page_addr, const Mecb &old_mecb,
                       const Fecb *old_fecb, const Mecb &new_mecb,
                       const Fecb *new_fecb, Tick now);

    /** Fetch the file key for a stamped FECB. */
    OttLookupResult lookupFileKey(const Fecb &fecb, Tick now);

    /**
     * Write-pending-queue admission: stalls when the queue is full.
     * @param now arrival time
     * @param completion when the device finishes this write
     * @return extra stall before the WPQ accepts
     */
    Tick wpqAccept(Tick now, Tick completion);

    /**
     * eADR crash-time drain of the controller's share of the
     * persistence domain: dirty metadata-cache lines (sorted, each
     * through backupFlushAdmit()) persist their counter blocks, and
     * the WPQ's in-flight ring is emptied (its entries landed
     * functionally at accept time and the WPQ drains without backup
     * energy even under ADR). Runs before the volatile state drops
     * in crash().
     */
    void backupPowerFlush(Tick now);

    SecParams sec_;
    Scheme scheme_;
    PcmParams pcm_;
    /** Ticks per CPU cycle (SimConfig::cyclePeriod()). */
    Tick cycle_;
    bool profileEnabled_;
    /** This shard's slice of the machine ({0, 1} when standalone). */
    ShardGeometry geom_;
    const PhysLayout &layout_;
    NvmDevice &device_;

    bool
    hasMemoryEncryption() const
    {
        return scheme_ == Scheme::BaselineSecurity ||
               scheme_ == Scheme::FsEncr;
    }
    bool hasFsEncr() const { return scheme_ == Scheme::FsEncr; }
    bool
    isEadr() const
    {
        return sec_.persistDomain == PersistDomain::Eadr;
    }

    crypto::Key128 memKey_;
    crypto::Key128 ottKeyValue_;
    crypto::Aes128 memAes_;
    /** Expanded file-key schedules; const paths (readLine) hit it. */
    mutable crypto::AesContextCache fileAesCache_;
    std::optional<crypto::Key128> adminCredential_;
    bool fsencLocked_ = false;

    /** Completion times of in-flight WPQ writes (FIFO). Fixed ring
     *  sized to writeQueueDepth: wpqAccept() drains before pushing
     *  whenever the queue is full, so occupancy never exceeds the
     *  depth and the steady state does zero heap allocations. */
    Ring<Tick> wpqInFlight_;

    /** Optional request-stream capture. */
    class MemTrace *trace_ = nullptr;

    /** Optional event tracer (nullptr = probes disabled). */
    trace::Tracer *tracer_ = nullptr;

    /** Labeled hot-spot counters (nullptr = metrics disabled):
     *  mc.read{dax}, mc.write{dax}, file.bytes{file=gid:fid},
     *  merkle.verify{level} for the Bonsai ancestor walk. */
    metrics::LabeledCounter *readCtr_ = nullptr;
    metrics::LabeledCounter *writeCtr_ = nullptr;
    metrics::LabeledCounter *fileBytesCtr_ = nullptr;
    metrics::LabeledCounter *merkleLevelCtr_ = nullptr;
    /** mc.overlap{op}: ticks hidden by banked chain overlap. */
    metrics::LabeledCounter *overlapCtr_ = nullptr;

    /** Monotonic request id handed out by submit(). */
    std::uint64_t nextRequestId_ = 0;

    /**
     * Cached "gid:fid" metrics label for the last FECB stamp seen.
     * DAX traffic is heavily run-structured (a burst of accesses hits
     * one file), so memoizing a single label removes the per-access
     * std::to_string allocations from the hot path.
     */
    const std::string &
    fileLabel(std::uint32_t gid, std::uint32_t fid)
    {
        std::uint64_t key =
            (static_cast<std::uint64_t>(gid) << 32) | fid;
        if (key != fileLabelKey_) {
            fileLabelKey_ = key;
            fileLabel_ =
                std::to_string(gid) + ":" + std::to_string(fid);
        }
        return fileLabel_;
    }
    std::uint64_t fileLabelKey_ = ~std::uint64_t(0);
    std::string fileLabel_;

    /** Attribution of the most recent read/write. */
    trace::Breakdown lastAccess_;

    /** Anubis shadow table: counter blocks whose on-chip copy may be
     *  ahead of NVM. Lives in a persistent metadata region, so it
     *  survives crashes; maintained on metadata-cache fill/eviction. */
    std::unordered_set<Addr> anubisShadow_;

    /** Data lines walled off by graceful recovery (block-aligned,
     *  DF-stripped). Cleared at the start of each recovery pass. */
    std::unordered_set<Addr> quarantined_;

    /** recoverLine with a reason for the failure. */
    enum class LineRecovery { Ok, ProbeExhausted, MissingKey };
    LineRecovery recoverLineDetail(Addr full_addr,
                                   std::uint32_t *gid_out = nullptr,
                                   std::uint32_t *fid_out = nullptr);

    /** In-flight lazy re-keys: (gid<<14|fid) -> old key + pending
     *  pages (a per-file bitmap riding in the OTT spill region). */
    struct LazyRekey
    {
        crypto::Key128 oldKey{};
        std::unordered_set<Addr> pendingPages;
    };
    std::map<std::uint64_t, LazyRekey> lazyRekeys_;

    static std::uint64_t
    lazyKeyOf(std::uint32_t gid, std::uint32_t fid)
    {
        return (static_cast<std::uint64_t>(gid) << 14) | fid;
    }

    /** If the line's page awaits lazy re-encryption, return the old
     *  key to decrypt with (reads) — see readLine/writeLine. */
    const crypto::Key128 *lazyOldKey(const Fecb &fecb,
                                     Addr line_addr) const;

    /** Write path: re-encrypt a pending page old->new, clear it. */
    Tick lazyRekeyOnWrite(const Fecb &fecb, Addr line_addr,
                          const crypto::Key128 &new_key, Tick now);

    std::unique_ptr<MerkleTree> merkle_;
    std::unique_ptr<CounterStore> counters_;
    std::unique_ptr<MetadataCache> metaCache_;
    std::unique_ptr<OpenTunnelTable> ott_;
    std::unique_ptr<AuditLog> audit_;
    /** Contention profiler (null unless cfg.profile; observation
     *  only — the datapath never reads it back). */
    std::unique_ptr<profile::Profiler> prof_;
    OsirisRecovery osiris_;

    /** Core id of the request currently in submit() (0 otherwise). */
    std::uint8_t curCore_ = 0;

    stats::StatGroup statGroup_;
    stats::Scalar dataReads_;
    stats::Scalar dataWrites_;
    stats::Scalar daxReads_;
    stats::Scalar daxWrites_;
    stats::Scalar metaCacheMisses_;
    stats::Scalar merkleFetches_;
    stats::Scalar pageReencryptions_;
    stats::Scalar lazyRekeyedPages_;
    stats::Scalar missingKeyAccesses_;
    stats::Scalar integrityViolations_;
    mutable stats::Scalar fileAesCacheHits_;
    mutable stats::Scalar fileAesCacheMisses_;
    stats::Scalar overlapTicks_;
    stats::Scalar overlappedRequests_;
    stats::Histogram readLatency_;
    stats::Histogram writeLatency_;

    /** eADR backup-power flush accounting. Plain counters, not stat
     *  scalars: the stat tree rides along in run reports and must
     *  stay byte-identical for ADR configurations (the persist
     *  report section reads these through the accessors instead). */
    std::uint64_t backupFlushLines_ = 0;
    std::uint64_t backupFlushDropped_ = 0;

    /** Cumulative + per-access attribution, one slot per MC
     *  component (ott_lookup .. writeback). */
    stats::StatGroup attrGroup_{"attribution"};
    std::array<stats::Scalar, numMcComponents> attrTicks_;
    std::array<stats::Histogram, numMcComponents> attrHists_;
};

} // namespace fsencr

#endif // FSENCR_FSENC_SECURE_MEMORY_CONTROLLER_HH
