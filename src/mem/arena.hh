/**
 * @file
 * Allocation-free building blocks for the steady-state hot path.
 *
 * The simulator's per-access structures (MemRequest, Completion,
 * trace::Breakdown) are plain stack values, but a few pieces of
 * bookkeeping used node-based containers that allocate in steady
 * state: the write-pending-queue FIFO and transient metadata-chain
 * records. These helpers remove that traffic:
 *
 *  - BumpArena: chunked bump allocator. allocate() is a pointer bump;
 *    reset() recycles every chunk without returning memory to the
 *    heap, so a steady-state loop that resets between requests never
 *    calls malloc after warm-up.
 *  - Pool<T>: free-list object pool over a BumpArena for records with
 *    non-FIFO lifetimes (acquire/release).
 *  - Ring<T>: fixed-capacity FIFO with deque surface (push_back /
 *    pop_front / front). Backing storage is allocated once at
 *    construction; push/pop never touch the heap.
 */

#ifndef FSENCR_MEM_ARENA_HH
#define FSENCR_MEM_ARENA_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace fsencr {

/** Chunked bump allocator; memory is recycled by reset(), never
 *  freed piecemeal. Not for types with non-trivial destructors —
 *  reset() does not run them. */
class BumpArena
{
  public:
    explicit BumpArena(std::size_t chunk_bytes = 64 * 1024)
        : chunkBytes_(chunk_bytes)
    {}

    /** Raw storage, aligned to @p align (power of two). */
    void *
    allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        assert((align & (align - 1)) == 0 && "alignment must be 2^k");
        std::uintptr_t p = (cur_ + align - 1) & ~(align - 1);
        if (p + bytes > end_) {
            grow(bytes + align);
            p = (cur_ + align - 1) & ~(align - 1);
        }
        cur_ = p + bytes;
        return reinterpret_cast<void *>(p);
    }

    /** Construct a T in arena storage. */
    template <typename T, typename... Args>
    T *
    alloc(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        return new (allocate(sizeof(T), alignof(T)))
            T(std::forward<Args>(args)...);
    }

    /** Recycle every chunk; capacity is retained for reuse. */
    void
    reset()
    {
        live_ = 0;
        if (!chunks_.empty()) {
            cur_ = reinterpret_cast<std::uintptr_t>(chunks_[0].get());
            end_ = cur_ + chunkSizes_[0];
        } else {
            cur_ = end_ = 0;
        }
    }

    /** Chunks held (growth happens only until the high-water mark). */
    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    void
    grow(std::size_t min_bytes)
    {
        // After reset() we walk the existing chunks before mapping a
        // new one, so a warmed-up arena stops allocating entirely.
        while (++live_ < chunks_.size()) {
            if (chunkSizes_[live_] >= min_bytes) {
                cur_ = reinterpret_cast<std::uintptr_t>(
                    chunks_[live_].get());
                end_ = cur_ + chunkSizes_[live_];
                return;
            }
        }
        std::size_t sz = std::max(chunkBytes_, min_bytes);
        chunks_.push_back(std::make_unique<std::uint8_t[]>(sz));
        chunkSizes_.push_back(sz);
        live_ = chunks_.size() - 1;
        cur_ = reinterpret_cast<std::uintptr_t>(chunks_.back().get());
        end_ = cur_ + sz;
    }

    std::size_t chunkBytes_;
    std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
    std::vector<std::size_t> chunkSizes_;
    std::size_t live_ = 0;
    std::uintptr_t cur_ = 0;
    std::uintptr_t end_ = 0;
};

/** Free-list pool for records with interleaved lifetimes. Released
 *  objects are recycled before the arena grows. */
template <typename T>
class Pool
{
  public:
    template <typename... Args>
    T *
    acquire(Args &&...args)
    {
        if (free_) {
            Node *n = free_;
            free_ = n->next;
            return new (&n->storage) T(std::forward<Args>(args)...);
        }
        Node *n = static_cast<Node *>(
            arena_.allocate(sizeof(Node), alignof(Node)));
        return new (&n->storage) T(std::forward<Args>(args)...);
    }

    void
    release(T *obj)
    {
        obj->~T();
        Node *n = reinterpret_cast<Node *>(obj);
        n->next = free_;
        free_ = n;
    }

  private:
    union Node
    {
        Node *next;
        alignas(T) std::uint8_t storage[sizeof(T)];
    };
    BumpArena arena_;
    Node *free_ = nullptr;
};

/**
 * Fixed-capacity FIFO ring with the std::deque surface the
 * write-pending queue needs. Storage is one allocation at
 * construction (capacity rounded up to a power of two so the index
 * wrap is a mask); push_back/pop_front are branch-plus-store.
 */
template <typename T>
class Ring
{
  public:
    /** @param capacity max simultaneously-live elements (>= 1). */
    explicit Ring(std::size_t capacity = 1)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }
    std::size_t capacity() const { return mask_ + 1; }

    const T &front() const
    {
        assert(!empty());
        return buf_[head_ & mask_];
    }

    void
    push_back(const T &v)
    {
        assert(size() <= mask_ && "Ring overflow: size the capacity "
                                  "to the queue's hard bound");
        buf_[tail_++ & mask_] = v;
    }

    void
    pop_front()
    {
        assert(!empty());
        ++head_;
    }

    void clear() { head_ = tail_ = 0; }

  private:
    std::vector<T> buf_;
    std::size_t mask_ = 0;
    /** Free-running indices; size is the difference (wrap-safe). */
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

} // namespace fsencr

#endif // FSENCR_MEM_ARENA_HH
