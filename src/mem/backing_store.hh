/**
 * @file
 * Sparse functional byte store for simulated physical memory.
 *
 * Pages are allocated lazily on first touch and zero-filled, mimicking a
 * fresh device. Both the architectural (plaintext) image and the NVM
 * device (ciphertext) image use this container.
 */

#ifndef FSENCR_MEM_BACKING_STORE_HH
#define FSENCR_MEM_BACKING_STORE_HH

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace fsencr {

/** Lazily allocated sparse page store. */
class BackingStore
{
  public:
    /** Read len bytes at addr (crosses pages transparently). */
    void
    read(Addr addr, void *buf, std::size_t len) const
    {
        auto *out = static_cast<std::uint8_t *>(buf);
        while (len > 0) {
            Addr page = pageNumber(addr);
            std::size_t off = pageOffset(addr);
            std::size_t take = std::min(len, pageSize - off);
            auto it = pages_.find(page);
            if (it == pages_.end())
                std::memset(out, 0, take);
            else
                std::memcpy(out, it->second->data() + off, take);
            out += take;
            addr += take;
            len -= take;
        }
    }

    /** Write len bytes at addr. */
    void
    write(Addr addr, const void *buf, std::size_t len)
    {
        const auto *in = static_cast<const std::uint8_t *>(buf);
        while (len > 0) {
            Addr page = pageNumber(addr);
            std::size_t off = pageOffset(addr);
            std::size_t take = std::min(len, pageSize - off);
            std::memcpy(pageData(page) + off, in, take);
            in += take;
            addr += take;
            len -= take;
        }
    }

    /**
     * Direct host pointer to a byte of simulated memory. The pointer is
     * valid only within the containing 4KB page.
     */
    std::uint8_t *
    hostPtr(Addr addr)
    {
        return pageData(pageNumber(addr)) + pageOffset(addr);
    }

    /** Number of pages touched so far. */
    std::size_t touchedPages() const { return pages_.size(); }

    /** Drop all contents (fresh device). */
    void clear() { pages_.clear(); }

    /** Deep-copy another store's contents (module migration). */
    void
    copyFrom(const BackingStore &other)
    {
        pages_.clear();
        for (const auto &[page, data] : other.pages_) {
            auto copy = std::make_unique<Page>(*data);
            pages_.emplace(page, std::move(copy));
        }
    }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    std::uint8_t *
    pageData(Addr page)
    {
        auto &slot = pages_[page];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return slot->data();
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace fsencr

#endif // FSENCR_MEM_BACKING_STORE_HH
