/**
 * @file
 * Completion record of one submitted memory request.
 *
 * The submit/complete surface replaces "return a latency scalar":
 * NvmDevice::submit() and SecureMemoryController::submit() hand back
 * a Completion carrying the request id, start/finish ticks and the
 * per-hop cycle breakdown, so callers (System, the bench harness,
 * Osiris recovery, tracers) can introspect where the time went
 * without poking controller internals after the fact.
 */

#ifndef FSENCR_MEM_COMPLETION_HH
#define FSENCR_MEM_COMPLETION_HH

#include <cstdint>

#include "common/trace.hh"
#include "common/types.hh"

namespace fsencr {

/** What came back for one submitted MemRequest. */
struct Completion
{
    /** Monotonic per-submitter request id (1-based; 0 = invalid). */
    std::uint64_t id = 0;
    /** When the request was submitted. */
    Tick start = 0;
    /** When it finished (start + latency). */
    Tick finish = 0;
    /** Device bank the line mapped to (device completions only). */
    unsigned bank = 0;
    /** Row-buffer hit in that bank (device completions only). */
    bool rowHit = false;
    /** Ticks the request queued on a busy bank before service began
     *  (device completions only; latency() = bankWait + service). The
     *  contention profiler splits wait from service with this. */
    Tick bankWait = 0;
    /** Per-component attribution; sums exactly to latency(). */
    trace::Breakdown breakdown;
    /** Datapath shard that serviced the request (router completions;
     *  0 for a bare controller or the device). */
    unsigned shard = 0;

    Tick latency() const { return finish - start; }
};

} // namespace fsencr

#endif // FSENCR_MEM_COMPLETION_HH
