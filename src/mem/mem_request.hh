/**
 * @file
 * Memory-controller request descriptor.
 */

#ifndef FSENCR_MEM_MEM_REQUEST_HH
#define FSENCR_MEM_MEM_REQUEST_HH

#include "common/types.hh"
#include "mem/phys_layout.hh"

namespace fsencr {

/** What kind of traffic a device access belongs to (for stats). */
enum class TrafficClass {
    Data,     //!< demand data line
    Metadata, //!< MECB / FECB counter blocks
    Merkle,   //!< integrity-tree nodes
    OttSpill, //!< encrypted OTT spill table
    AuditLog, //!< append-only audit-log records
};

/** One line-granular request as seen by the memory controller. */
struct MemRequest
{
    Addr paddr = 0;       //!< full address, may carry the DF-bit
    bool isWrite = false; //!< store/writeback vs load/fill
    TrafficClass cls = TrafficClass::Data;

    /** Controller-level submit payloads (ignored by the raw device
     *  timing path, which is functional-free). */
    /// 64B plaintext to store (writes; may be null for timing-only).
    const std::uint8_t *writeData = nullptr;
    /// If non-null, receives the decrypted 64B line (reads).
    std::uint8_t *readData = nullptr;
    /// Persist-ordered write (clwb+fence) vs. background writeback.
    bool blocking = false;
    /// Issuing core (0 for background traffic); audit records carry it.
    std::uint8_t core = 0;

    /** Device address (DF-bit stripped, line aligned). */
    Addr
    lineAddr() const
    {
        return blockAlign(stripDfBit(paddr));
    }

    /** True iff this request targets a DAX-file page. */
    bool isDax() const { return hasDfBit(paddr); }
};

} // namespace fsencr

#endif // FSENCR_MEM_MEM_REQUEST_HH
