#include "mem/nvm_device.hh"

#include <cstring>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "fault/fault_injector.hh"
#include "mem/phys_layout.hh"

namespace fsencr {

NvmDevice::NvmDevice(const PcmParams &params, bool audit_class_stats)
    : params_(params),
      banks_(params.channels * params.ranksPerChannel *
             params.banksPerRank),
      statGroup_("nvm"),
      latency_(32, 10 * tickPerNs)
{
    if (!isPowerOf2(params.rowBufferBytes))
        fatal("row buffer size must be a power of two");
    if (!isPowerOf2(params.channels) ||
        !isPowerOf2(params.ranksPerChannel) ||
        !isPowerOf2(params.banksPerRank))
        fatal("channel/rank/bank counts must be powers of two");

    statGroup_.addScalar("reads", reads_);
    statGroup_.addScalar("writes", writes_);
    statGroup_.addScalar("rowHits", rowHits_);
    statGroup_.addScalar("rowMisses", rowMisses_);
    statGroup_.addScalar("bankBusyTicks", bankBusyTicks_);
    statGroup_.addScalar("bankWaitTicks", bankWaitTicks_);
    statGroup_.addScalar("dataReads", classReads_[0]);
    statGroup_.addScalar("metaReads", classReads_[1]);
    statGroup_.addScalar("merkleReads", classReads_[2]);
    statGroup_.addScalar("ottReads", classReads_[3]);
    statGroup_.addScalar("dataWrites", classWrites_[0]);
    statGroup_.addScalar("metaWrites", classWrites_[1]);
    statGroup_.addScalar("merkleWrites", classWrites_[2]);
    statGroup_.addScalar("ottWrites", classWrites_[3]);
    if (audit_class_stats) {
        statGroup_.addScalar("auditReads", classReads_[4]);
        statGroup_.addScalar("auditWrites", classWrites_[4]);
    }
    statGroup_.addHistogram("latency", latency_);
}

void
NvmDevice::decode(Addr addr, unsigned &bank, std::uint64_t &row) const
{
    // RoRaBaChCo (MSB..LSB): row | rank | bank | channel | column.
    unsigned col_bits = floorLog2(params_.rowBufferBytes);
    unsigned ch_bits = floorLog2(params_.channels);
    unsigned bank_bits = floorLog2(params_.banksPerRank);
    unsigned rank_bits = floorLog2(params_.ranksPerChannel);

    std::uint64_t v = addr >> col_bits;
    unsigned channel =
        static_cast<unsigned>(v & ((1u << ch_bits) - 1));
    v >>= ch_bits;
    unsigned bank_in_rank =
        static_cast<unsigned>(v & ((1u << bank_bits) - 1));
    v >>= bank_bits;
    unsigned rank = static_cast<unsigned>(v & ((1u << rank_bits) - 1));
    row = v >> rank_bits;
    bank = (channel * params_.ranksPerChannel + rank) *
               params_.banksPerRank +
           bank_in_rank;

    // Bank-partition affinity for the sharded datapath: fold the flat
    // bank index into the owner shard's contiguous slice so shards
    // never contend on each other's bank queues. Address-based (page
    // number mod shards, matching ShardGeometry::shardOf) so no
    // request needs to carry its shard.
    if (shardPartitions_ > 1) {
        unsigned n = shardPartitions_;
        unsigned owner =
            static_cast<unsigned>(pageNumber(stripDfBit(addr)) % n);
        unsigned per = numBanks() / n;
        bank = per >= 1 ? owner * per + bank % per
                        : owner % numBanks();
    }
}

Completion
NvmDevice::submit(const MemRequest &req, Tick now)
{
    Addr line = req.lineAddr();
    unsigned bank_idx;
    std::uint64_t row;
    decode(line, bank_idx, row);
    Bank &bank = banks_[bank_idx];

    Tick start = std::max(now, bank.busyUntil);
    Tick service;

    bool row_hit = bank.openRow == static_cast<std::int64_t>(row);
    if (row_hit) {
        ++rowHits_;
        bank.missStreak = 0;
        service = params_.tCL + params_.tBURST;
    } else {
        ++rowMisses_;
        ++bank.missStreak;
        // Activate: array access (PCM read latency dominates tRCD for
        // reads), then column access.
        Tick activate = std::max(params_.tRCD, params_.readLatency);
        service = activate + params_.tCL + params_.tBURST;
        bank.openRow = static_cast<std::int64_t>(row);
    }

    Tick done = start + service;
    if (req.isWrite) {
        ++writes_;
        ++classWrites_[static_cast<int>(req.cls)];
        // Write recovery: the PCM cell write keeps the bank busy past
        // the bus transaction (writes are posted; latency to the MC is
        // the bus portion, the cell commits in the background).
        bank.busyUntil = done + std::max(params_.tWR,
                                         params_.writeLatency);
    } else {
        ++reads_;
        ++classReads_[static_cast<int>(req.cls)];
        bank.busyUntil = done;
    }

    // Occupancy accounting: how long the bank is held by this request
    // (write recovery included) and how long the request queued on a
    // busy bank.
    bankBusyTicks_ += bank.busyUntil - start;
    bankWaitTicks_ += start - now;
    classWaitTicks_[static_cast<int>(req.cls)] += start - now;
    if (bankBusyCtr_)
        bankBusyCtr_->add(static_cast<std::uint64_t>(bank_idx),
                          bank.busyUntil - start);

    // Open-adaptive: after a streak of misses, close the row so the
    // next access pays activation but avoids the precharge-on-demand.
    if (bank.missStreak >= 4) {
        bank.openRow = -1;
        bank.missStreak = 0;
    }

    Tick latency = done - now;
    latency_.sample(latency);

    Completion c;
    c.id = ++nextRequestId_;
    c.start = now;
    c.finish = done;
    c.bank = bank_idx;
    c.rowHit = row_hit;
    c.bankWait = start - now;
    c.breakdown.ticks[trace::NvmAccess] = latency;
    return c;
}

void
NvmDevice::setMetrics(metrics::Registry *metrics)
{
    if (!metrics) {
        bankBusyCtr_ = nullptr;
        return;
    }
    bankBusyCtr_ = &metrics->counter("mc.bank_busy", "bank",
                                     banks_.size() + 1);
}

void
NvmDevice::readLine(Addr addr, std::uint8_t *buf) const
{
    store_.read(blockAlign(addr), buf, blockSize);
}

void
NvmDevice::writeLine(Addr addr, const std::uint8_t *buf)
{
    Addr line = blockAlign(addr);
    if (!injector_) {
        store_.write(line, buf, blockSize);
        return;
    }

    // Stage a copy so in-flight bit flips never touch the caller's
    // buffer, then let the injector decide the persist outcome.
    std::uint8_t staged[blockSize];
    std::memcpy(staged, buf, blockSize);
    unsigned keep = blockSize;
    switch (injector_->onWriteLine(line, staged, keep)) {
      case FaultInjector::WriteOutcome::Store:
        store_.write(line, staged, blockSize);
        break;
      case FaultInjector::WriteOutcome::Torn:
        if (keep > blockSize)
            keep = blockSize;
        if (keep > 0)
            store_.write(line, staged, keep);
        break;
      case FaultInjector::WriteOutcome::Drop:
        break;
    }
}

void
NvmDevice::read(Addr addr, void *buf, std::size_t len) const
{
    store_.read(addr, buf, len);
}

void
NvmDevice::write(Addr addr, const void *buf, std::size_t len)
{
    store_.write(addr, buf, len);
}

void
NvmDevice::setEcc(Addr line_addr, std::uint32_t ecc)
{
    Addr line = blockAlign(line_addr);
    if (injector_) {
        switch (injector_->onSetEcc(line, ecc)) {
          case FaultInjector::EccAction::Store:
            break;
          case FaultInjector::EccAction::Drop:
            // The persist this ECC rode with failed. If the line had
            // been persisted before, keep the stale word (the torn or
            // stale data now mismatches it, which is what recovery
            // probes for). A first-ever persist has no stale word to
            // fall back on; store the new one so the line is known to
            // recovery at all instead of silently absent.
            if (ecc_.count(line))
                return;
            break;
        }
    }
    ecc_[line] = ecc;
}

std::uint32_t
NvmDevice::getEcc(Addr line_addr) const
{
    auto it = ecc_.find(blockAlign(line_addr));
    return it == ecc_.end() ? 0 : it->second;
}

void
NvmDevice::crash()
{
    // Row buffers and bank state are volatile; the cell array is not.
    for (Bank &b : banks_) {
        b.openRow = -1;
        b.busyUntil = 0;
        b.missStreak = 0;
    }
}

void
NvmDevice::resetStats()
{
    statGroup_.resetAll();
}

} // namespace fsencr
