/**
 * @file
 * DDR-attached PCM device model (Table III).
 *
 * Timing: per-bank row buffers with an open-adaptive page policy,
 * RoRaBaChCo address mapping, PCM array latencies of 60 ns (read) /
 * 150 ns (write), and DDR timing constraints (tRCD/tCL/tBURST/tWR).
 *
 * Function: the device holds the *stored* bytes — ciphertext when an
 * encryption engine sits above it — plus an out-of-band per-line ECC
 * word used by the Osiris-style counter-recovery scheme.
 */

#ifndef FSENCR_MEM_NVM_DEVICE_HH
#define FSENCR_MEM_NVM_DEVICE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "mem/completion.hh"
#include "mem/mem_request.hh"

namespace fsencr {

class FaultInjector;

namespace metrics {
class Registry;
class LabeledCounter;
} // namespace metrics

/** PCM main memory: timing model + functional store. */
class NvmDevice
{
  public:
    /**
     * @param audit_class_stats register the auditReads/auditWrites
     *        stat scalars. Off by default so the stat tree (which
     *        rides along in run reports) stays byte-identical for
     *        unaudited configurations; the class counters themselves
     *        always count.
     */
    explicit NvmDevice(const PcmParams &params,
                       bool audit_class_stats = false);

    /**
     * Submit one line-granular timing access.
     *
     * The device resolves the request against its per-bank busy-until
     * clocks (queueing when the bank is occupied) and returns the
     * Completion: request id, start/finish ticks, the bank the line
     * decoded to and whether the open row was hit. Deterministic:
     * completions depend only on the submission order.
     *
     * @param req the request (line address is derived internally)
     * @param now current simulated time
     */
    Completion submit(const MemRequest &req, Tick now);

    /**
     * Scalar-latency convenience wrapper around submit().
     *
     * @return latency in ticks until the access completes
     */
    Tick access(const MemRequest &req, Tick now)
    {
        return submit(req, now).latency();
    }

    /** Functional read of one 64B line into buf. */
    void readLine(Addr addr, std::uint8_t *buf) const;

    /** Functional write of one 64B line from buf. */
    void writeLine(Addr addr, const std::uint8_t *buf);

    /** Functional sub-line access helpers (metadata structures). */
    void read(Addr addr, void *buf, std::size_t len) const;
    void write(Addr addr, const void *buf, std::size_t len);

    /** Out-of-band ECC word for a line (Osiris substrate). */
    void setEcc(Addr line_addr, std::uint32_t ecc);
    std::uint32_t getEcc(Addr line_addr) const;
    bool hasEcc(Addr line_addr) const
    {
        return ecc_.count(blockAlign(line_addr)) != 0;
    }
    void clearEcc(Addr line_addr) { ecc_.erase(blockAlign(line_addr)); }
    /** Every line ever written through the encrypted path. */
    const std::unordered_map<Addr, std::uint32_t> &eccMap() const
    {
        return ecc_;
    }

    /**
     * Attach a fault injector that intercepts writeLine/setEcc
     * (nullptr detaches). With no injector the persist path is
     * exactly the original store, bit for bit.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** The attached injector (nullptr when none) — the eADR
     *  backup-power flush consults it per drained line. */
    FaultInjector *faultInjector() const { return injector_; }

    /** Drop all volatile device state (row buffers) — crash model. */
    void crash();

    /** Adopt another module's cell contents and ECC (migration: the
     *  physical DIMM moves to this machine). */
    void
    adoptContents(const NvmDevice &donor)
    {
        store_.copyFrom(donor.store_);
        ecc_ = donor.ecc_;
        crash(); // fresh machine: no open rows
    }

    stats::StatGroup &statGroup() { return statGroup_; }

    /**
     * Attach a metrics registry (nullptr disables): lights up the
     * per-bank occupancy family mc.bank_busy{bank} (busy ticks per
     * bank). Pure observation: never affects timing.
     */
    void setMetrics(metrics::Registry *metrics);

    std::uint64_t numReads() const { return reads_.value(); }
    std::uint64_t numWrites() const { return writes_.value(); }

    /** Number of timing banks (channels * ranks * banks). */
    unsigned numBanks() const
    {
        return static_cast<unsigned>(banks_.size());
    }

    /**
     * Partition the banks across @p n datapath shards: the decoded
     * bank is folded so the shard owning a page (page number mod n)
     * only ever touches its own numBanks()/n bank slice, giving each
     * shard disjoint bank-queue state without any per-request
     * plumbing. n <= 1 (the default) restores the flat decode,
     * bit-identical to the unpartitioned device. With more shards
     * than banks, shards share banks round-robin.
     */
    void setShardPartitions(unsigned n)
    {
        shardPartitions_ = n ? n : 1;
    }

    /** Aggregate ticks banks spent busy servicing requests. */
    std::uint64_t bankBusyTicks() const { return bankBusyTicks_.value(); }
    /** Aggregate ticks requests waited on an occupied bank. */
    std::uint64_t bankWaitTicks() const { return bankWaitTicks_.value(); }

    /** Per-traffic-class write counts (indexed by TrafficClass). */
    std::uint64_t writesByClass(TrafficClass c) const
    {
        return classWrites_[static_cast<int>(c)].value();
    }
    std::uint64_t readsByClass(TrafficClass c) const
    {
        return classReads_[static_cast<int>(c)].value();
    }

    /** Per-traffic-class bank-wait ticks. Always accumulated (plain
     *  counters, never registered in the stat tree) so the contention
     *  profiler can read them without perturbing report bytes. */
    std::uint64_t waitTicksByClass(TrafficClass c) const
    {
        return classWaitTicks_[static_cast<int>(c)];
    }

    void resetStats();

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        Tick busyUntil = 0;
        /** Consecutive row misses — drives the adaptive close policy. */
        unsigned missStreak = 0;
    };

    /** Decode RoRaBaChCo: which bank and row an address maps to. */
    void decode(Addr addr, unsigned &bank, std::uint64_t &row) const;

    PcmParams params_;
    std::vector<Bank> banks_;
    /** Datapath shard count for bank-partition affinity (1 = flat). */
    unsigned shardPartitions_ = 1;
    BackingStore store_;
    std::unordered_map<Addr, std::uint32_t> ecc_;
    FaultInjector *injector_ = nullptr;

    /** Monotonic request id handed out by submit(). */
    std::uint64_t nextRequestId_ = 0;

    /** Per-bank busy-tick family (nullptr = metrics disabled). */
    metrics::LabeledCounter *bankBusyCtr_ = nullptr;

    stats::StatGroup statGroup_;
    stats::Scalar reads_;
    stats::Scalar writes_;
    stats::Scalar rowHits_;
    stats::Scalar rowMisses_;
    stats::Scalar bankBusyTicks_;
    stats::Scalar bankWaitTicks_;
    stats::Scalar classReads_[5];
    stats::Scalar classWrites_[5];
    /** Bank-wait ticks per traffic class (plain counters: cheap,
     *  unregistered, so the stat dump stays byte-identical). */
    std::uint64_t classWaitTicks_[5] = {};
    stats::Histogram latency_;
};

} // namespace fsencr

#endif // FSENCR_MEM_NVM_DEVICE_HH
