/**
 * @file
 * Physical address map of the simulated machine, including the DF-bit.
 *
 * The layout follows Section IV of the paper: a 16 GB PCM module of which
 * the top 4 GB (memmap=4G!12G) is the persistent region hosting the
 * DAX-enabled filesystem. A security-metadata carve-out (hidden from the
 * OS, as in real secure processors) holds encryption counter blocks, the
 * encrypted OTT spill table, and Merkle-tree nodes.
 *
 * Bit 51 of a physical address is the DF-bit (DAX-File bit, Section
 * III-C): the kernel sets it in the PTE when mapping a DAX-file page and
 * the memory controller demultiplexes on it. The bit is stripped before
 * the address reaches the device.
 */

#ifndef FSENCR_MEM_PHYS_LAYOUT_HH
#define FSENCR_MEM_PHYS_LAYOUT_HH

#include "common/bitfield.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace fsencr {

/** The DF-bit position within a physical address (Intel IA-32e spare). */
constexpr unsigned dfBitPos = 51;

/** The DF-bit mask. */
constexpr Addr dfBitMask = 1ull << dfBitPos;

/** Set the DF-bit on an address ((1UL<<51)|pfn in the kernel patch). */
constexpr Addr
setDfBit(Addr addr)
{
    return addr | dfBitMask;
}

/** True iff the request carries the DF-bit. */
constexpr bool
hasDfBit(Addr addr)
{
    return (addr & dfBitMask) != 0;
}

/** Strip the DF-bit, yielding the device address. */
constexpr Addr
stripDfBit(Addr addr)
{
    return addr & ~dfBitMask;
}

/**
 * Computes every derived address of the physical map: where the MECB for
 * a page lives, where the FECB for a PMEM page lives (interleaved with
 * its MECB as in Section III-D), the OTT spill region, and the
 * Merkle-node region.
 */
class PhysLayout
{
  public:
    explicit PhysLayout(const LayoutParams &p)
        : params_(p)
    {
        if (p.metaBase > p.pmemBase)
            fatal("metadata carve-out must precede the PMEM region");

        genPages_ = p.generalBytes / pageSize;
        pmemPages_ = p.pmemBytes / pageSize;

        genMecbBase_ = p.metaBase;
        std::uint64_t gen_mecb_bytes = genPages_ * blockSize;

        pmemMetaBase_ = genMecbBase_ + gen_mecb_bytes;
        std::uint64_t pmem_meta_bytes = pmemPages_ * 2 * blockSize;

        ottSpillBase_ = pmemMetaBase_ + pmem_meta_bytes;
        ottSpillBytes_ = 1 << 20;

        // Audit-log region (0 bytes unless auditing provisions it):
        // placed inside the Merkle-leaf range so every record line is
        // integrity-covered. With auditLogBytes == 0 the region is
        // empty and the Merkle geometry is unchanged.
        auditLogBase_ = ottSpillBase_ + ottSpillBytes_;
        auditLogBytes_ = p.auditLogBytes;

        merkleLeavesEnd_ = auditLogBase_ + auditLogBytes_;
        merkleBase_ = roundUp(merkleLeavesEnd_, pageSize);

        if (merkleBase_ >= p.pmemBase)
            fatal("metadata carve-out too small for counter blocks");
    }

    const LayoutParams &params() const { return params_; }

    /** OS-visible general memory: [0, generalBytes). */
    bool
    isGeneral(Addr a) const
    {
        return stripDfBit(a) < params_.generalBytes;
    }

    /** Persistent region: [pmemBase, pmemBase + pmemBytes). */
    bool
    isPmem(Addr a) const
    {
        Addr r = stripDfBit(a);
        return r >= params_.pmemBase &&
               r < params_.pmemBase + params_.pmemBytes;
    }

    /** Security-metadata carve-out (counters, OTT spill, Merkle). */
    bool
    isMetadata(Addr a) const
    {
        Addr r = stripDfBit(a);
        return r >= params_.metaBase && r < params_.pmemBase;
    }

    /** Address of the 64B MECB covering the page of data address a. */
    Addr
    mecbAddr(Addr a) const
    {
        Addr r = stripDfBit(a);
        if (isPmem(r)) {
            Addr page = (r - params_.pmemBase) >> pageShift;
            return pmemMetaBase_ + page * 2 * blockSize;
        }
        if (isGeneral(r))
            return genMecbBase_ + (r >> pageShift) * blockSize;
        panic("mecbAddr: %#lx is not a data address",
              static_cast<unsigned long>(r));
    }

    /**
     * Address of the FECB covering a PMEM page; interleaved directly
     * after the page's MECB ("a file encryption counter block follows
     * each memory encryption counter block").
     */
    Addr
    fecbAddr(Addr a) const
    {
        Addr r = stripDfBit(a);
        if (!isPmem(r))
            panic("fecbAddr: %#lx is not in the PMEM region",
                  static_cast<unsigned long>(r));
        Addr page = (r - params_.pmemBase) >> pageShift;
        return pmemMetaBase_ + page * 2 * blockSize + blockSize;
    }

    /** What kind of metadata a carve-out address holds. */
    enum class MetaKind {
        Mecb, Fecb, OttSpill, AuditLog, MerkleNode, Unknown
    };

    /** Classify an address within the metadata carve-out. */
    MetaKind
    classifyMeta(Addr a) const
    {
        Addr r = stripDfBit(a);
        if (r >= genMecbBase_ && r < pmemMetaBase_)
            return MetaKind::Mecb;
        if (r >= pmemMetaBase_ && r < ottSpillBase_) {
            // Interleaved MECB/FECB pairs: even line = MECB, odd = FECB.
            return ((r - pmemMetaBase_) / blockSize) % 2 == 0
                       ? MetaKind::Mecb
                       : MetaKind::Fecb;
        }
        if (r >= ottSpillBase_ && r < ottSpillBase_ + ottSpillBytes_)
            return MetaKind::OttSpill;
        if (r >= auditLogBase_ && r < auditLogBase_ + auditLogBytes_)
            return MetaKind::AuditLog;
        if (r >= merkleBase_ && r < params_.pmemBase)
            return MetaKind::MerkleNode;
        return MetaKind::Unknown;
    }

    /**
     * Inverse mapping: the data page a counter block covers
     * (MECB or FECB address -> page-aligned data address).
     */
    Addr
    dataPageOfMeta(Addr meta_addr) const
    {
        Addr r = stripDfBit(meta_addr);
        if (r >= genMecbBase_ && r < pmemMetaBase_)
            return ((r - genMecbBase_) / blockSize) << pageShift;
        if (r >= pmemMetaBase_ && r < ottSpillBase_) {
            Addr idx = (r - pmemMetaBase_) / (2 * blockSize);
            return params_.pmemBase + (idx << pageShift);
        }
        panic("dataPageOfMeta: %#lx is not a counter block",
              static_cast<unsigned long>(r));
    }

    /** Start of the Merkle-leaf-covered metadata range. */
    Addr merkleLeavesBase() const { return genMecbBase_; }

    /** End (exclusive) of the Merkle-leaf-covered metadata range. */
    Addr merkleLeavesEnd() const { return merkleLeavesEnd_; }

    /** Where Merkle interior nodes are stored. */
    Addr merkleNodeBase() const { return merkleBase_; }

    /** OTT spill hash table region. */
    Addr ottSpillBase() const { return ottSpillBase_; }
    std::uint64_t ottSpillBytes() const { return ottSpillBytes_; }

    /** Append-only audit-log region (empty unless provisioned). */
    Addr auditLogBase() const { return auditLogBase_; }
    std::uint64_t auditLogBytes() const { return auditLogBytes_; }

    /** Start of the persistent region. */
    Addr pmemBase() const { return params_.pmemBase; }
    std::uint64_t pmemBytes() const { return params_.pmemBytes; }

    std::uint64_t generalPages() const { return genPages_; }
    std::uint64_t pmemPages() const { return pmemPages_; }

  private:
    LayoutParams params_;
    std::uint64_t genPages_;
    std::uint64_t pmemPages_;
    Addr genMecbBase_;
    Addr pmemMetaBase_;
    Addr ottSpillBase_;
    std::uint64_t ottSpillBytes_;
    Addr auditLogBase_;
    std::uint64_t auditLogBytes_;
    Addr merkleLeavesEnd_;
    Addr merkleBase_;
};

} // namespace fsencr

#endif // FSENCR_MEM_PHYS_LAYOUT_HH
