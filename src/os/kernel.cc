#include "os/kernel.hh"

#include "common/logging.hh"
#include "crypto/sha256.hh"
#include "secmem/counter_store.hh"

namespace fsencr {

Kernel::Kernel(const SimConfig &cfg, const PhysLayout &layout,
               NvmFilesystem &fs, SecureDatapath &mc, Rng &rng)
    : cfg_(cfg), layout_(layout), fs_(fs), mc_(mc), rng_(rng),
      statGroup_("kernel")
{
    statGroup_.addScalar("pageFaults", pageFaults_);
    statGroup_.addScalar("daxFaults", daxFaults_);
    statGroup_.addScalar("anonFaults", anonFaults_);
    statGroup_.addScalar("opens", opens_);
    statGroup_.addScalar("openDenied", openDenied_);
    statGroup_.addScalar("openDamaged", openDamaged_);
    statGroup_.addScalar("creates", creates_);
    statGroup_.addScalar("unlinks", unlinks_);
}

std::uint32_t
Kernel::addUser(const std::string &name, std::uint32_t uid,
                std::uint32_t gid, const std::string &passphrase)
{
    (void)passphrase; // not stored: keys are re-derived at use time
    User u;
    u.uid = uid;
    u.gid = gid;
    u.name = name;
    users_[uid] = u;
    return uid;
}

std::uint32_t
Kernel::createProcess(std::uint32_t uid)
{
    auto it = users_.find(uid);
    if (it == users_.end())
        fatal("createProcess: unknown uid %u", uid);
    Process p;
    p.pid = nextPid_++;
    p.uid = uid;
    p.gid = it->second.gid;
    processes_[p.pid] = p;
    return p.pid;
}

Process &
Kernel::process(std::uint32_t pid)
{
    auto it = processes_.find(pid);
    if (it == processes_.end())
        fatal("unknown pid %u", pid);
    return it->second;
}

crypto::Key128
Kernel::fekekFor(std::uint32_t uid, const std::string &passphrase) const
{
    return crypto::deriveKey(passphrase,
                             "fekek:" + std::to_string(uid));
}

bool
Kernel::daxEncrypted(const Inode &node) const
{
    return cfg_.hasFsEncr() && node.encrypted;
}

int
Kernel::creat(std::uint32_t pid, const std::string &path,
              std::uint16_t mode, OpenFlags flags,
              const std::string &passphrase, Tick now)
{
    bool encrypted = hasFlag(flags, OpenFlags::Encrypted);
    Process &p = process(pid);
    ++creates_;
    std::uint32_t ino =
        fs_.create(path, p.uid, p.gid, mode, encrypted);
    Inode &node = fs_.inode(ino);

    if (encrypted) {
        // The hardware File ID is 14 bits: beyond 16K live inodes two
        // files could share an OTT slot. Warn — a production design
        // would recycle inode numbers within the field width.
        if (ino > Fecb::fileIdMask)
            warnLimited(4, "inode %u exceeds the 14-bit File ID field",
                        ino);
        // FEK is random; the FEKEK derives from the creator's
        // passphrase (keyed to the *owner*), as in eCryptfs.
        crypto::Key128 fek = crypto::randomKey(rng_);
        crypto::Key128 fekek = fekekFor(node.uid, passphrase);
        node.wrappedFek = crypto::wrapKey(fekek, fek);
        node.fekCheck =
            crypto::digestTo64(crypto::Sha256::digest(fek.data(),
                                                      fek.size()));
        if (trace::Tracer *t = mc_.tracer())
            t->instant("kernel_creat", "kernel", now, ino);
        if (cfg_.hasFsEncr())
            mc_.mmioRegisterFileKey(node.gid, ino, fek, now);
        keyring_[ino] = fek;
    }

    OpenFile of;
    of.ino = ino;
    of.writable = true;
    int fd = p.nextFd++;
    p.fds[fd] = of;
    return fd;
}

int
Kernel::open(std::uint32_t pid, const std::string &path,
             OpenFlags flags, const std::string &passphrase)
{
    bool writable = hasFlag(flags, OpenFlags::Write);
    Process &p = process(pid);
    ++opens_;
    auto ino = fs_.lookup(path);
    if (!ino) {
        ++openDenied_;
        return -1;
    }
    const Inode &node = fs_.inode(*ino);

    if (node.damaged) {
        // Quarantined by recovery: its data lines are unrecoverable
        // and must not be served (graceful degradation keeps every
        // other file accessible).
        ++openDenied_;
        ++openDamaged_;
        return -1;
    }

    if (!NvmFilesystem::permits(node, p.uid, p.gid, writable)) {
        ++openDenied_;
        return -1;
    }

    if (node.encrypted) {
        // The chmod-777 defence: even with DAC permission, opening an
        // encrypted file requires the passphrase that unwraps its FEK.
        crypto::Key128 fekek = fekekFor(node.uid, passphrase);
        crypto::Key128 fek = crypto::unwrapKey(fekek, node.wrappedFek);
        std::uint64_t check = crypto::digestTo64(
            crypto::Sha256::digest(fek.data(), fek.size()));
        if (check != node.fekCheck) {
            ++openDenied_;
            return -1;
        }
        keyring_[*ino] = fek; // keyring holds the FEK while open
    }

    OpenFile of;
    of.ino = *ino;
    of.writable = writable;
    int fd = p.nextFd++;
    p.fds[fd] = of;
    return fd;
}

void
Kernel::close(std::uint32_t pid, int fd)
{
    process(pid).fds.erase(fd);
}

void
Kernel::ftruncate(std::uint32_t pid, int fd, std::uint64_t size)
{
    Process &p = process(pid);
    auto it = p.fds.find(fd);
    if (it == p.fds.end())
        fatal("ftruncate: bad fd %d", fd);
    if (!it->second.writable)
        fatal("ftruncate: fd %d is read-only", fd);
    fs_.extendTo(it->second.ino, size);
}

Tick
Kernel::unlinkFile(std::uint32_t pid, const std::string &path, Tick now)
{
    Process &p = process(pid);
    ++unlinks_;
    auto ino = fs_.lookup(path);
    if (!ino)
        fatal("unlink: no such path '%s'", path.c_str());
    Inode &node = fs_.inode(*ino);
    if (p.uid != 0 && p.uid != node.uid)
        fatal("unlink: uid %u may not remove '%s'", p.uid,
              path.c_str());

    bool encrypted = node.encrypted;
    std::uint32_t gid = node.gid;
    keyring_.erase(*ino);
    std::vector<Addr> freed = fs_.unlink(path);

    Tick lat = 0;
    if (trace::Tracer *t = mc_.tracer())
        t->instant("kernel_unlink", "kernel", now, *ino);
    if (encrypted && cfg_.hasFsEncr())
        lat += mc_.mmioRemoveFileKey(gid, *ino, now);
    // Secure deletion: shred every freed page by IV repurposing; a
    // reused frame belongs to a new file and must be restamped.
    for (Addr page : freed) {
        lat += mc_.shredPage(page, now + lat);
        stampedFrames_.erase(pageAlign(page));
        swencFrames_.erase(pageAlign(page));
    }
    return lat;
}

void
Kernel::chmodFile(std::uint32_t pid, const std::string &path,
                  std::uint16_t mode)
{
    Process &p = process(pid);
    auto ino = fs_.lookup(path);
    if (!ino)
        fatal("chmod: no such path '%s'", path.c_str());
    Inode &node = fs_.inode(*ino);
    if (p.uid != 0 && p.uid != node.uid)
        fatal("chmod: uid %u may not chmod '%s'", p.uid, path.c_str());
    node.mode = mode;
}

Addr
Kernel::mmapFile(std::uint32_t pid, int fd, std::uint64_t length)
{
    Process &p = process(pid);
    auto it = p.fds.find(fd);
    if (it == p.fds.end())
        fatal("mmap: bad fd %d", fd);

    Vma vma;
    vma.base = p.mmapCursor;
    vma.length = roundUp(length, pageSize);
    vma.ino = it->second.ino;
    p.mmapCursor += vma.length + pageSize; // guard page
    p.vmas.push_back(vma);
    return vma.base;
}

Addr
Kernel::mmapAnon(std::uint32_t pid, std::uint64_t length)
{
    Process &p = process(pid);
    Vma vma;
    vma.base = p.mmapCursor;
    vma.length = roundUp(length, pageSize);
    vma.ino = 0;
    p.mmapCursor += vma.length + pageSize;
    p.vmas.push_back(vma);
    return vma.base;
}

void
Kernel::munmap(std::uint32_t pid, Addr base)
{
    Process &p = process(pid);
    for (auto it = p.vmas.begin(); it != p.vmas.end(); ++it) {
        if (it->base == base) {
            for (Addr va = it->base; va < it->base + it->length;
                 va += pageSize)
                p.pageTable.erase(pageNumber(va));
            p.vmas.erase(it);
            return;
        }
    }
    fatal("munmap: no VMA at %#lx", static_cast<unsigned long>(base));
}

Translation
Kernel::translate(std::uint32_t pid, Addr vaddr, bool is_write,
                  Tick now)
{
    Process &p = process(pid);
    Translation t;

    auto pte = p.pageTable.find(pageNumber(vaddr));
    if (pte != p.pageTable.end()) {
        t.pframe = pte->second;
        t.cycles = 20; // page-table walk (TLB miss)
        return t;
    }

    // Page fault.
    ++pageFaults_;
    t.faulted = true;
    t.cycles = cfg_.cpu.pageFaultCycles;

    const Vma *vma = nullptr;
    for (const Vma &v : p.vmas) {
        if (vaddr >= v.base && vaddr < v.base + v.length) {
            vma = &v;
            break;
        }
    }
    if (!vma)
        fatal("segfault: pid %u touched unmapped address %#lx", pid,
              static_cast<unsigned long>(vaddr));

    Addr pframe;
    if (vma->ino != 0) {
        // DAX fault: map the file's own NVM frame directly.
        ++daxFaults_;
        const Inode &node = fs_.inode(vma->ino);
        std::uint64_t offset = pageAlign(vaddr - vma->base);
        if (offset >= node.blocks.size() * pageSize)
            fatal("DAX fault beyond EOF of inode %u (offset %llu)",
                  vma->ino,
                  static_cast<unsigned long long>(offset));
        pframe = pageAlign(fs_.blockPaddr(vma->ino, offset));
        if (cfg_.hasSoftwareEncryption() && node.encrypted)
            swencFrames_[pframe] = vma->ino;
        if (daxEncrypted(node)) {
            // The kernel patch: pte = ((1UL<<51) | pfn).
            pframe = setDfBit(pframe);
            t.mcLatency = ensureDaxStamp(vma->ino, pframe, now);
        }
    } else {
        // Anonymous fault: fresh general-memory frame.
        ++anonFaults_;
        if (nextGeneralFrame_ + pageSize >
            layout_.params().generalBytes)
            fatal("out of general memory frames");
        pframe = nextGeneralFrame_;
        nextGeneralFrame_ += pageSize;
    }

    p.pageTable[pageNumber(vaddr)] = pframe;
    t.pframe = pframe;
    (void)is_write;
    return t;
}

Tick
Kernel::restampAllFiles(Tick now)
{
    if (!cfg_.hasFsEncr())
        return 0;
    stampedFrames_.clear();
    Tick lat = 0;
    for (const auto &[path, ino] : fs_.entries()) {
        (void)path;
        const Inode &node = fs_.inode(ino);
        if (!node.encrypted)
            continue;
        for (Addr page : node.blocks)
            lat += ensureDaxStamp(ino, page, now + lat);
    }
    return lat;
}

Tick
Kernel::touchFileFrame(std::uint32_t ino, Addr pframe, Tick now)
{
    const Inode &node = fs_.inode(ino);
    if (!node.encrypted)
        return 0;
    if (cfg_.hasSoftwareEncryption()) {
        swencFrames_[pageAlign(stripDfBit(pframe))] = ino;
        return 0;
    }
    if (cfg_.hasFsEncr())
        return ensureDaxStamp(ino, pframe, now);
    return 0;
}

Tick
Kernel::ensureDaxStamp(std::uint32_t ino, Addr pframe, Tick now)
{
    Addr frame = pageAlign(stripDfBit(pframe));
    if (stampedFrames_.count(frame))
        return 0;
    stampedFrames_.insert(frame);
    const Inode &node = fs_.inode(ino);
    return mc_.mmioStampPage(setDfBit(frame), node.gid, node.ino, now);
}

void
Kernel::provisionAdmin(const std::string &admin_passphrase)
{
    mc_.provisionAdminCredential(
        crypto::deriveKey(admin_passphrase, "admin"));
}

void
Kernel::bootLogin(const std::string &admin_passphrase)
{
    mc_.mmioAdminLogin(crypto::deriveKey(admin_passphrase, "admin"));
}

std::optional<crypto::Key128>
Kernel::fileKey(std::uint32_t pid, int fd)
{
    Process &p = process(pid);
    auto it = p.fds.find(fd);
    if (it == p.fds.end())
        return std::nullopt;
    const Inode &node = fs_.inode(it->second.ino);
    if (!node.encrypted)
        return std::nullopt;
    // The Linux-keyring analogue: the FEK was unwrapped (and its check
    // hash verified) at open() time and parked in the kernel keyring.
    auto key = keyring_.find(node.ino);
    if (key == keyring_.end())
        return std::nullopt;
    return key->second;
}

} // namespace fsencr
