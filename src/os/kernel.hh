/**
 * @file
 * The miniature trusted OS kernel (Sections III-C/E/F).
 *
 * Responsibilities mirrored from the paper's Linux changes:
 *  - page tables with the DF-bit set for DAX-file mappings (the
 *    dax_insert_mapping patch);
 *  - page-fault handling: DAX faults map the *file's own NVM page*
 *    into the process address space and signal the memory controller
 *    (MMIO) to stamp the page's FECB with {Group ID, File ID};
 *  - key management: per-file FEKs generated at creation, wrapped under
 *    the owner's passphrase-derived FEKEK, registered with the OTT via
 *    MMIO, removed at unlink;
 *  - access control: Unix permissions *plus* the open-time passphrase
 *    check that defends against accidental chmod 777 (Section VI);
 *  - secure deletion: freed pages are shredded by IV repurposing.
 */

#ifndef FSENCR_OS_KERNEL_HH
#define FSENCR_OS_KERNEL_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "crypto/key.hh"
#include "fs/nvmfs.hh"
#include "fsenc/secure_datapath.hh"
#include "os/open_flags.hh"

namespace fsencr {

/** A registered user account. */
struct User
{
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::string name;
};

/** An open file description. */
struct OpenFile
{
    std::uint32_t ino = 0;
    bool writable = false;
};

/** A mapped region of a process address space. */
struct Vma
{
    Addr base = 0;
    std::uint64_t length = 0;
    /** 0 for anonymous memory, else the backing inode. */
    std::uint32_t ino = 0;
};

/** A process. */
struct Process
{
    std::uint32_t pid = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::map<int, OpenFile> fds;
    int nextFd = 3;
    std::vector<Vma> vmas;
    /** Page table: virtual page number -> pframe (DF-bit included). */
    std::unordered_map<Addr, Addr> pageTable;
    Addr mmapCursor = 0x7f0000000000ull;
};

/** Outcome of an address translation. */
struct Translation
{
    /** Page-aligned physical frame with DF-bit, or 0 on failure. */
    Addr pframe = 0;
    bool faulted = false;
    /** Kernel cycles spent (page walk and/or fault handling). */
    Cycles cycles = 0;
    /** MMIO / metadata latency charged by the controller. */
    Tick mcLatency = 0;
};

/** The kernel model. */
class Kernel
{
  public:
    Kernel(const SimConfig &cfg, const PhysLayout &layout,
           NvmFilesystem &fs, SecureDatapath &mc, Rng &rng);

    /// @name Accounts and processes
    /// @{
    std::uint32_t addUser(const std::string &name, std::uint32_t uid,
                          std::uint32_t gid,
                          const std::string &passphrase);
    std::uint32_t createProcess(std::uint32_t uid);
    Process &process(std::uint32_t pid);
    /// @}

    /// @name File syscalls
    /// @{

    /**
     * Create a file. With OpenFlags::Encrypted a fresh FEK is
     * generated, wrapped under the creator's passphrase-derived FEKEK,
     * and registered with the memory controller's OTT.
     * @return a file descriptor
     */
    int creat(std::uint32_t pid, const std::string &path,
              std::uint16_t mode, OpenFlags flags,
              const std::string &passphrase, Tick now);

    /** @deprecated bool-flag shim; use the OpenFlags overload. */
    [[deprecated("use the OpenFlags overload")]]
    int
    creat(std::uint32_t pid, const std::string &path,
          std::uint16_t mode, bool encrypted,
          const std::string &passphrase, Tick now)
    {
        return creat(pid, path, mode,
                     encrypted ? OpenFlags::Encrypted : OpenFlags::None,
                     passphrase, now);
    }

    /**
     * Open an existing file; the descriptor is writable only with
     * OpenFlags::Write. Enforces Unix permissions and, for encrypted
     * files, verifies that the supplied passphrase unwraps the file's
     * FEK (Section VI, chmod-777 defence).
     * @return a file descriptor, or -1 on permission/passphrase failure
     */
    int open(std::uint32_t pid, const std::string &path,
             OpenFlags flags, const std::string &passphrase);

    /** @deprecated bool-flag shim; use the OpenFlags overload. */
    [[deprecated("use the OpenFlags overload")]]
    int
    open(std::uint32_t pid, const std::string &path, bool writable,
         const std::string &passphrase)
    {
        return open(pid, path,
                    writable ? OpenFlags::Write : OpenFlags::None,
                    passphrase);
    }

    void close(std::uint32_t pid, int fd);

    /** Resize a file (allocates NVM blocks). */
    void ftruncate(std::uint32_t pid, int fd, std::uint64_t size);

    /** Delete a file: key removal (MMIO) + page shredding. */
    Tick unlinkFile(std::uint32_t pid, const std::string &path,
                    Tick now);

    /** chmod — deliberately unauthenticated beyond ownership, to model
     *  the accidental-777 hazard. */
    void chmodFile(std::uint32_t pid, const std::string &path,
                   std::uint16_t mode);

    /// @}

    /// @name Memory syscalls
    /// @{
    Addr mmapFile(std::uint32_t pid, int fd, std::uint64_t length);
    Addr mmapAnon(std::uint32_t pid, std::uint64_t length);
    void munmap(std::uint32_t pid, Addr base);
    /// @}

    /**
     * MMU service: translate (pid, vaddr); page faults are handled
     * inline — DAX pages are mapped to the file's own NVM frame with
     * the DF-bit, anonymous pages get a fresh general frame.
     */
    Translation translate(std::uint32_t pid, Addr vaddr, bool is_write,
                          Tick now);

    /**
     * Make sure a DAX-file frame's FECB carries its {Group ID, File
     * ID} stamp before data flows through it — used by both the
     * page-fault path and the kernel read()/write() copy path.
     * @return MMIO latency (0 if already stamped)
     */
    Tick ensureDaxStamp(std::uint32_t ino, Addr pframe, Tick now);

    /**
     * Scheme-dispatching version of the above for the kernel IO path:
     * FsEncr stamps the FECB; the software-encryption baseline
     * registers the frame with the stacked-fs layer.
     */
    Tick touchFileFrame(std::uint32_t ino, Addr pframe, Tick now);

    /**
     * Remount path: after a reboot (or module migration) the FECB
     * working copies are gone; re-send every encrypted file page's
     * {Group ID, File ID} stamp from the persistent filesystem
     * metadata so the controller can recognize and recover DAX lines.
     */
    Tick restampAllFiles(Tick now);

    /** Boot-time admin login forwarded to the controller. */
    void bootLogin(const std::string &admin_passphrase);

    /** Provision the admin credential at install time. */
    void provisionAdmin(const std::string &admin_passphrase);

    /** The FEK of an open file (used by the software-encryption
     *  baseline, which encrypts in the kernel). */
    std::optional<crypto::Key128> fileKey(std::uint32_t pid, int fd);

    /** Whether an inode is an encrypted DAX file under FsEncr. */
    bool daxEncrypted(const Inode &node) const;

    /** Whether a frame belongs to an encrypted file handled by the
     *  software-encryption baseline. */
    bool
    isSwencFrame(Addr paddr) const
    {
        return swencFrames_.count(pageAlign(stripDfBit(paddr))) != 0;
    }

    /** The FEK used to seal a software-encrypted frame at rest, or
     *  nullptr if the frame is not software-encrypted. */
    const crypto::Key128 *
    swencKeyFor(Addr paddr) const
    {
        auto it = swencFrames_.find(pageAlign(stripDfBit(paddr)));
        if (it == swencFrames_.end())
            return nullptr;
        auto key = keyring_.find(it->second);
        return key == keyring_.end() ? nullptr : &key->second;
    }

    NvmFilesystem &fs() { return fs_; }
    stats::StatGroup &statGroup() { return statGroup_; }

    std::uint64_t pageFaults() const { return pageFaults_.value(); }

  private:
    /** FEKEK of a user for a passphrase (eCryptfs-style derivation). */
    crypto::Key128 fekekFor(std::uint32_t uid,
                            const std::string &passphrase) const;

    const SimConfig cfg_;
    const PhysLayout &layout_;
    NvmFilesystem &fs_;
    SecureDatapath &mc_;
    Rng &rng_;

    std::map<std::uint32_t, User> users_;
    std::map<std::uint32_t, Process> processes_;
    std::uint32_t nextPid_ = 1;

    /** General-memory frame allocator (bump). */
    Addr nextGeneralFrame_ = pageSize; // frame 0 reserved

    /** Kernel keyring: unwrapped FEKs of open encrypted files. */
    std::map<std::uint32_t, crypto::Key128> keyring_;

    /** Frames of encrypted files under the software-encryption
     *  baseline (frame -> inode; the stacked-fs layer intercepts
     *  these and seals them at rest with the file's FEK). */
    std::unordered_map<Addr, std::uint32_t> swencFrames_;

    /** DAX frames whose FECB stamp has been sent to the MC. */
    std::unordered_set<Addr> stampedFrames_;

    stats::StatGroup statGroup_;
    stats::Scalar pageFaults_;
    stats::Scalar daxFaults_;
    stats::Scalar anonFaults_;
    stats::Scalar opens_;
    stats::Scalar openDenied_;
    stats::Scalar openDamaged_;
    stats::Scalar creates_;
    stats::Scalar unlinks_;
};

} // namespace fsencr

#endif // FSENCR_OS_KERNEL_HH
