/**
 * @file
 * OpenFlags — typed disposition bits for the open()/creat() syscall
 * surface.
 *
 * Replaces the bool-parameter soup (`creat(..., bool encrypted, ...)`,
 * `open(..., bool writable, ...)`): call sites name the behaviour they
 * want (`OpenFlags::Write`, `OpenFlags::Encrypted`) instead of passing
 * positional booleans that read as line noise and silently transpose.
 * The bool overloads survive one release as deprecated shims.
 */

#ifndef FSENCR_OS_OPEN_FLAGS_HH
#define FSENCR_OS_OPEN_FLAGS_HH

namespace fsencr {

/**
 * Open/creat disposition bitmask.
 *
 * `Write` requests a writable descriptor from open(); descriptors are
 * read-only without it. `Encrypted` asks creat() for an encrypted DAX
 * file (fresh FEK, wrapped under the creator's FEKEK, registered with
 * the OTT); plain files are created without it. Unknown bits are
 * reserved and ignored.
 */
enum class OpenFlags : unsigned
{
    None = 0,
    Write = 1u << 0,
    Encrypted = 1u << 1,
};

constexpr OpenFlags
operator|(OpenFlags a, OpenFlags b)
{
    return static_cast<OpenFlags>(static_cast<unsigned>(a) |
                                  static_cast<unsigned>(b));
}

constexpr OpenFlags
operator&(OpenFlags a, OpenFlags b)
{
    return static_cast<OpenFlags>(static_cast<unsigned>(a) &
                                  static_cast<unsigned>(b));
}

/** True if @p f contains every bit of @p bits. */
constexpr bool
hasFlag(OpenFlags f, OpenFlags bits)
{
    return (f & bits) == bits;
}

} // namespace fsencr

#endif // FSENCR_OS_OPEN_FLAGS_HH
