/**
 * @file
 * Miniature PMDK: a persistent memory pool with an allocator and
 * persist primitives, the substrate the PMEMKV and Whisper-style
 * workloads build on (both benchmark suites use Intel's PMDK in the
 * paper, Section V-A).
 *
 * A pool is a DAX-mapped file; pmem_persist is clwb-per-line + sfence;
 * the allocator keeps its cursor in the pool header (real stores
 * through the simulated memory system) and size-class free lists.
 */

#ifndef FSENCR_PMDK_PMEM_HH
#define FSENCR_PMDK_PMEM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/system.hh"

namespace fsencr {
namespace pmdk {

/** A persistent memory pool over a DAX file. */
class PmemPool
{
  public:
    /**
     * Create (or open) a pool file and map it.
     *
     * @param sys the machine
     * @param core issuing core
     * @param path pool file path
     * @param pool_size bytes (rounded to pages)
     * @param encrypted create the backing file encrypted
     * @param passphrase owner passphrase for encrypted pools
     */
    PmemPool(System &sys, unsigned core, const std::string &path,
             std::uint64_t pool_size, bool encrypted,
             const std::string &passphrase)
        : sys_(sys), core_(core), size_(roundUp(pool_size, pageSize))
    {
        int fd;
        if (sys.fs().lookup(path)) {
            fd = sys.open(core, path, OpenFlags::Write, passphrase);
            if (fd < 0)
                fatal("PmemPool: cannot open '%s'", path.c_str());
        } else {
            fd = sys.creat(core, path, 0600,
                           encrypted ? OpenFlags::Encrypted
                                     : OpenFlags::None,
                           passphrase);
            sys.ftruncate(core, fd, size_);
        }
        base_ = sys.mmapFile(core, fd, size_);
        fd_ = fd;

        std::uint64_t magic = sys_.read<std::uint64_t>(core_, base_);
        if (magic != poolMagic) {
            sys_.write<std::uint64_t>(core_, base_, poolMagic);
            sys_.write<std::uint64_t>(core_, base_ + 8, headerBytes);
            sys_.write<std::uint64_t>(core_, base_ + 16, 0); // root
            sys_.persist(core_, base_, 24);
        }
    }

    /** Virtual base of the mapped pool. */
    Addr base() const { return base_; }
    std::uint64_t size() const { return size_; }
    System &sys() { return sys_; }
    unsigned core() const { return core_; }

    /**
     * Allocate n bytes (64B aligned). Traffic-realistic: the cursor
     * bump is a persisted pool-header update.
     */
    Addr
    alloc(std::size_t n)
    {
        n = roundUp(n, blockSize);
        auto &fl = freeLists_[n];
        if (!fl.empty()) {
            Addr va = fl.back();
            fl.pop_back();
            return va;
        }
        std::uint64_t cursor =
            sys_.read<std::uint64_t>(core_, base_ + 8);
        if (cursor + n > size_)
            fatal("PmemPool: out of space (%llu used of %llu)",
                  static_cast<unsigned long long>(cursor),
                  static_cast<unsigned long long>(size_));
        sys_.write<std::uint64_t>(core_, base_ + 8, cursor + n);
        sys_.persist(core_, base_ + 8, 8);
        return base_ + cursor;
    }

    /** Return a block to its size-class free list. */
    void
    free(Addr va, std::size_t n)
    {
        freeLists_[roundUp(n, blockSize)].push_back(va);
    }

    /** The pool's root object pointer (pool offset, 0 = unset). */
    Addr
    root()
    {
        return sys_.read<std::uint64_t>(core_, base_ + 16);
    }

    void
    setRoot(Addr va)
    {
        sys_.write<std::uint64_t>(core_, base_ + 16, va);
        sys_.persist(core_, base_ + 16, 8);
    }

    /** pmem_persist(3): flush the range to the persistence domain. */
    void
    persist(Addr va, std::size_t n)
    {
        sys_.persist(core_, va, n);
    }

    /** Switch the issuing core (worker handoff). */
    void setCore(unsigned core) { core_ = core; }

    static constexpr std::uint64_t poolMagic = 0x504d454d4b563231ull;
    static constexpr std::uint64_t headerBytes = 4096;

  private:
    System &sys_;
    unsigned core_;
    std::uint64_t size_;
    Addr base_ = 0;
    int fd_ = -1;

    std::map<std::size_t, std::vector<Addr>> freeLists_;
};

} // namespace pmdk
} // namespace fsencr

#endif // FSENCR_PMDK_PMEM_HH
