/**
 * @file
 * Split-counter encryption metadata blocks (Section III-D, Figure 6).
 *
 * MECB (Memory Encryption Counter Block): one 64-bit major counter plus
 * 64 seven-bit minor counters — covers one 4 KB page, one minor per
 * 64 B line. Exactly 64 bytes when packed.
 *
 * FECB (File Encryption Counter Block): Group ID (18 b), File ID (14 b),
 * a 32-bit major counter and 64 seven-bit minors — also exactly 64
 * bytes. A FECB follows its page's MECB in the metadata region.
 */

#ifndef FSENCR_SECMEM_COUNTER_BLOCK_HH
#define FSENCR_SECMEM_COUNTER_BLOCK_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "common/types.hh"

namespace fsencr {

/** Maximum value of a 7-bit minor counter. */
constexpr std::uint32_t minorCounterMax = 127;

/** 64 packed 7-bit minor counters (56 bytes serialized). */
struct MinorCounters
{
    std::array<std::uint8_t, blocksPerPage> minor{}; // one per line

    /** Pack into 56 bytes of 7-bit fields. */
    void
    pack(std::uint8_t *out) const
    {
        std::memset(out, 0, 56);
        for (unsigned i = 0; i < blocksPerPage; ++i) {
            unsigned bitpos = i * 7;
            std::uint32_t v = minor[i] & 0x7f;
            out[bitpos / 8] |=
                static_cast<std::uint8_t>(v << (bitpos % 8));
            if (bitpos % 8 > 1)
                out[bitpos / 8 + 1] |=
                    static_cast<std::uint8_t>(v >> (8 - bitpos % 8));
        }
    }

    /** Unpack from 56 bytes. */
    void
    unpack(const std::uint8_t *in)
    {
        for (unsigned i = 0; i < blocksPerPage; ++i) {
            unsigned bitpos = i * 7;
            std::uint32_t v = in[bitpos / 8] >> (bitpos % 8);
            if (bitpos % 8 > 1)
                v |= static_cast<std::uint32_t>(in[bitpos / 8 + 1])
                     << (8 - bitpos % 8);
            minor[i] = static_cast<std::uint8_t>(v & 0x7f);
        }
    }

    bool
    operator==(const MinorCounters &o) const
    {
        return minor == o.minor;
    }
};

/** Memory Encryption Counter Block. */
struct Mecb
{
    std::uint64_t major = 0;
    MinorCounters minors;

    /** Serialize to a 64-byte line image. */
    void
    serialize(std::uint8_t *out) const
    {
        std::memcpy(out, &major, 8);
        minors.pack(out + 8);
    }

    void
    deserialize(const std::uint8_t *in)
    {
        std::memcpy(&major, in, 8);
        minors.unpack(in + 8);
    }

    bool
    operator==(const Mecb &o) const
    {
        return major == o.major && minors == o.minors;
    }
};

/** File Encryption Counter Block. */
struct Fecb
{
    std::uint32_t groupId = 0; //!< 18 significant bits
    std::uint32_t fileId = 0;  //!< 14 significant bits
    std::uint32_t major = 0;
    MinorCounters minors;

    static constexpr std::uint32_t groupIdBits = 18;
    static constexpr std::uint32_t fileIdBits = 14;
    static constexpr std::uint32_t groupIdMask = (1u << groupIdBits) - 1;
    static constexpr std::uint32_t fileIdMask = (1u << fileIdBits) - 1;

    /** Serialize to a 64-byte line image. */
    void
    serialize(std::uint8_t *out) const
    {
        std::uint32_t ids = ((groupId & groupIdMask) << fileIdBits) |
                            (fileId & fileIdMask);
        std::memcpy(out, &ids, 4);
        std::memcpy(out + 4, &major, 4);
        minors.pack(out + 8);
    }

    void
    deserialize(const std::uint8_t *in)
    {
        std::uint32_t ids;
        std::memcpy(&ids, in, 4);
        groupId = (ids >> fileIdBits) & groupIdMask;
        fileId = ids & fileIdMask;
        std::memcpy(&major, in + 4, 4);
        minors.unpack(in + 8);
    }

    bool
    operator==(const Fecb &o) const
    {
        return groupId == o.groupId && fileId == o.fileId &&
               major == o.major && minors == o.minors;
    }
};

} // namespace fsencr

#endif // FSENCR_SECMEM_COUNTER_BLOCK_HH
