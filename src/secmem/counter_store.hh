/**
 * @file
 * Volatile working copies of encryption counter blocks.
 *
 * The on-chip metadata cache is the only volatile home of counter
 * blocks; everything else lives persisted in the NVM metadata region.
 * CounterStore holds the deserialized working copies that correspond to
 * metadata-cache-resident blocks, persists them to the device (and
 * updates the Merkle tree) on eviction or on an Osiris stop-loss
 * boundary, and drops everything on a crash.
 */

#ifndef FSENCR_SECMEM_COUNTER_STORE_HH
#define FSENCR_SECMEM_COUNTER_STORE_HH

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "secmem/counter_block.hh"
#include "secmem/merkle_tree.hh"

namespace fsencr {

/** Volatile counter-block store with persist-through to the device. */
class CounterStore
{
  public:
    CounterStore(NvmDevice &device, MerkleTree &merkle)
        : device_(device), merkle_(merkle), statGroup_("counters")
    {
        statGroup_.addScalar("mecbPersists", mecbPersists_);
        statGroup_.addScalar("fecbPersists", fecbPersists_);
        statGroup_.addScalar("mecbLoads", mecbLoads_);
        statGroup_.addScalar("fecbLoads", fecbLoads_);
    }

    /**
     * Working copy of the MECB at the given metadata address; loaded
     * (and integrity-verified by the caller) from the device on first
     * touch.
     */
    Mecb &
    mecb(Addr mecb_addr)
    {
        auto it = mecbs_.find(mecb_addr);
        if (it == mecbs_.end()) {
            ++mecbLoads_;
            Mecb blk;
            std::uint8_t line[blockSize];
            device_.readLine(mecb_addr, line);
            blk.deserialize(line);
            it = mecbs_.emplace(mecb_addr, blk).first;
        }
        return it->second;
    }

    /** Working copy of the FECB at the given metadata address. */
    Fecb &
    fecb(Addr fecb_addr)
    {
        auto it = fecbs_.find(fecb_addr);
        if (it == fecbs_.end()) {
            ++fecbLoads_;
            Fecb blk;
            std::uint8_t line[blockSize];
            device_.readLine(fecb_addr, line);
            blk.deserialize(line);
            it = fecbs_.emplace(fecb_addr, blk).first;
        }
        return it->second;
    }

    /** True iff a working copy is resident (no device load needed). */
    bool
    residentMecb(Addr a) const
    {
        return mecbs_.count(a) != 0;
    }
    bool
    residentFecb(Addr a) const
    {
        return fecbs_.count(a) != 0;
    }

    /** Serialize the working copy to the device and update the tree. */
    void
    persistMecb(Addr mecb_addr)
    {
        auto it = mecbs_.find(mecb_addr);
        if (it == mecbs_.end())
            return;
        ++mecbPersists_;
        std::uint8_t line[blockSize];
        it->second.serialize(line);
        device_.writeLine(mecb_addr, line);
        merkle_.updateLeaf(mecb_addr);
    }

    void
    persistFecb(Addr fecb_addr)
    {
        auto it = fecbs_.find(fecb_addr);
        if (it == fecbs_.end())
            return;
        ++fecbPersists_;
        std::uint8_t line[blockSize];
        it->second.serialize(line);
        device_.writeLine(fecb_addr, line);
        merkle_.updateLeaf(fecb_addr);
    }

    /** Persist (if present) and drop the working copy — cache eviction. */
    void
    evictMecb(Addr mecb_addr, bool dirty)
    {
        if (dirty)
            persistMecb(mecb_addr);
        mecbs_.erase(mecb_addr);
    }

    void
    evictFecb(Addr fecb_addr, bool dirty)
    {
        if (dirty)
            persistFecb(fecb_addr);
        fecbs_.erase(fecb_addr);
    }

    /** Read the *persisted* MECB image (recovery path). */
    Mecb
    persistedMecb(Addr mecb_addr) const
    {
        Mecb blk;
        std::uint8_t line[blockSize];
        device_.readLine(mecb_addr, line);
        blk.deserialize(line);
        return blk;
    }

    Fecb
    persistedFecb(Addr fecb_addr) const
    {
        Fecb blk;
        std::uint8_t line[blockSize];
        device_.readLine(fecb_addr, line);
        blk.deserialize(line);
        return blk;
    }

    /** Install a recovered working copy (post-Osiris). */
    void
    installMecb(Addr addr, const Mecb &blk)
    {
        mecbs_[addr] = blk;
    }

    void
    installFecb(Addr addr, const Fecb &blk)
    {
        fecbs_[addr] = blk;
    }

    /** Power loss: every volatile working copy disappears. */
    void
    crash()
    {
        mecbs_.clear();
        fecbs_.clear();
    }

    /** Orderly flush of all working copies (clean shutdown). */
    void
    flushAll()
    {
        for (auto &[addr, blk] : mecbs_) {
            (void)blk;
            persistMecb(addr);
        }
        for (auto &[addr, blk] : fecbs_) {
            (void)blk;
            persistFecb(addr);
        }
    }

    stats::StatGroup &statGroup() { return statGroup_; }

  private:
    NvmDevice &device_;
    MerkleTree &merkle_;

    std::unordered_map<Addr, Mecb> mecbs_;
    std::unordered_map<Addr, Fecb> fecbs_;

    stats::StatGroup statGroup_;
    stats::Scalar mecbPersists_;
    stats::Scalar fecbPersists_;
    stats::Scalar mecbLoads_;
    stats::Scalar fecbLoads_;
};

} // namespace fsencr

#endif // FSENCR_SECMEM_COUNTER_STORE_HH
