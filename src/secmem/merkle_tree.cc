#include "secmem/merkle_tree.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "crypto/sha256.hh"

namespace fsencr {

MerkleTree::MerkleTree(const PhysLayout &layout, NvmDevice &device,
                       unsigned arity)
    : layout_(layout), device_(device), arity_(arity),
      statGroup_("merkle")
{
    if (arity_ < 2)
        fatal("merkle arity must be at least 2");

    numLeaves_ =
        (layout.merkleLeavesEnd() - layout.merkleLeavesBase()) / blockSize;

    levelCount_.push_back(numLeaves_);
    std::uint64_t n = numLeaves_;
    while (n > 1) {
        n = (n + arity_ - 1) / arity_;
        levelCount_.push_back(n);
    }
    numLevels_ = static_cast<unsigned>(levelCount_.size());

    // Interior node storage: level 1 first, then level 2, ...
    Addr base = layout.merkleNodeBase();
    levelBase_.resize(numLevels_);
    for (unsigned l = 1; l < numLevels_; ++l) {
        levelBase_[l] = base;
        base += levelCount_[l] * blockSize;
    }

    macs_.resize(numLevels_);

    // Default (all-zero, never-persisted) MACs per level.
    defaultMac_.resize(numLevels_);
    std::uint8_t zero_line[blockSize] = {};
    defaultMac_[0] =
        crypto::digestTo64(crypto::Sha256::digest(zero_line,
                                                  blockSize));
    for (unsigned l = 1; l < numLevels_; ++l) {
        std::uint64_t child = defaultMac_[l - 1];
        std::uint8_t buf[blockSize] = {};
        for (unsigned i = 0; i < arity_ && i * 8 + 8 <= blockSize; ++i)
            std::memcpy(buf + i * 8, &child, 8);
        defaultMac_[l] =
            crypto::digestTo64(crypto::Sha256::digest(buf, blockSize));
    }
    root_ = defaultMac_[numLevels_ - 1];

    statGroup_.addScalar("updates", updates_);
    statGroup_.addScalar("verifies", verifies_);
    statGroup_.addScalar("failures", failures_);
}

std::uint64_t
MerkleTree::leafIndex(Addr leaf_addr) const
{
    Addr a = stripDfBit(leaf_addr);
    if (a < layout_.merkleLeavesBase() || a >= layout_.merkleLeavesEnd())
        panic("address %#lx is outside the Merkle-covered range",
              static_cast<unsigned long>(a));
    return (a - layout_.merkleLeavesBase()) / blockSize;
}

Addr
MerkleTree::nodeAddr(unsigned level, std::uint64_t index) const
{
    if (level == 0 || level >= numLevels_)
        panic("bad merkle level %u", level);
    return levelBase_[level] + index * blockSize;
}

Addr
MerkleTree::ancestorAddr(Addr leaf_addr, unsigned level) const
{
    std::uint64_t idx = leafIndex(leaf_addr);
    for (unsigned l = 0; l < level; ++l)
        idx /= arity_;
    return nodeAddr(level, idx);
}

std::uint64_t
MerkleTree::macOf(const std::uint8_t *line, Addr addr) const
{
    // Bind the MAC to the address for spatial uniqueness.
    crypto::Sha256 ctx;
    ctx.update(&addr, sizeof(addr));
    ctx.update(line, blockSize);
    return crypto::digestTo64(ctx.final());
}

std::uint64_t
MerkleTree::leafMacFromDevice(Addr leaf_addr) const
{
    std::uint8_t line[blockSize];
    device_.readLine(leaf_addr, line);
    return macOf(line, blockAlign(stripDfBit(leaf_addr)));
}

std::uint64_t
MerkleTree::storedMac(unsigned level, std::uint64_t index) const
{
    const auto &m = macs_[level];
    auto it = m.find(index);
    return it == m.end() ? defaultMac_[level] : it->second;
}

std::uint64_t
MerkleTree::nodeMac(unsigned level, std::uint64_t index) const
{
    // Hash the concatenated child MACs.
    std::uint8_t buf[blockSize] = {};
    for (unsigned i = 0; i < arity_ && i * 8 + 8 <= blockSize; ++i) {
        std::uint64_t child_index = index * arity_ + i;
        std::uint64_t child = child_index < levelCount_[level - 1]
                                  ? storedMac(level - 1, child_index)
                                  : 0;
        std::memcpy(buf + i * 8, &child, 8);
    }
    return crypto::digestTo64(crypto::Sha256::digest(buf, blockSize));
}

void
MerkleTree::propagate(std::uint64_t leaf_index)
{
    std::uint64_t idx = leaf_index;
    for (unsigned l = 1; l < numLevels_; ++l) {
        idx /= arity_;
        macs_[l][idx] = nodeMac(l, idx);
    }
    root_ = numLevels_ > 1 ? macs_[numLevels_ - 1][0]
                           : storedMac(0, 0);
}

void
MerkleTree::updateLeaf(Addr leaf_addr)
{
    ++updates_;
    if (tracer_)
        tracer_->instant("merkle_update", "merkle", tracer_->time(),
                         leaf_addr);
    std::uint64_t idx = leafIndex(leaf_addr);
    macs_[0][idx] = leafMacFromDevice(leaf_addr);
    propagate(idx);
}

void
MerkleTree::updateLeaf(Addr leaf_addr, const std::uint8_t *line)
{
    ++updates_;
    if (tracer_)
        tracer_->instant("merkle_update", "merkle", tracer_->time(),
                         leaf_addr);
    std::uint64_t idx = leafIndex(leaf_addr);
    macs_[0][idx] = macOf(line, blockAlign(stripDfBit(leaf_addr)));
    propagate(idx);
}

void
MerkleTree::setMetrics(metrics::Registry *metrics)
{
    verifyCtr_ =
        metrics ? &metrics->counter("merkle.verify", "level", 16)
                : nullptr;
}

bool
MerkleTree::verifyLeaf(Addr leaf_addr) const
{
    ++verifies_;
    if (verifyCtr_)
        verifyCtr_->add(static_cast<std::uint64_t>(0));
    std::uint64_t idx = leafIndex(leaf_addr);
    bool ok;
    if (macs_[0].count(idx)) {
        ok = leafMacFromDevice(leaf_addr) == storedMac(0, idx);
    } else {
        // Never persisted: the expected device image is all zeros, so
        // tampering with virgin metadata is detected too.
        std::uint8_t line[blockSize];
        device_.readLine(stripDfBit(leaf_addr), line);
        ok = true;
        for (auto b : line)
            ok &= (b == 0);
    }
    if (!ok)
        ++failures_;
    if (tracer_)
        tracer_->instant("merkle_verify", "merkle", tracer_->time(),
                         ok ? 1 : 0);
    return ok;
}

bool
MerkleTree::rebuildAndVerify(std::vector<Addr> *tampered_leaves)
{
    // Recompute every touched leaf MAC from the device image, rebuild
    // the interior levels, and compare the regenerated root with the
    // on-chip root.
    std::uint64_t saved_root = root_;

    std::unordered_map<std::uint64_t, std::uint64_t> rebuilt;
    rebuilt.reserve(macs_[0].size());
    for (const auto &[idx, mac] : macs_[0]) {
        Addr leaf_addr = layout_.merkleLeavesBase() + idx * blockSize;
        rebuilt[idx] = leafMacFromDevice(leaf_addr);
        if (tampered_leaves && rebuilt[idx] != mac)
            tampered_leaves->push_back(leaf_addr);
    }
    macs_[0] = std::move(rebuilt);

    for (unsigned l = 1; l < numLevels_; ++l) {
        std::unordered_map<std::uint64_t, std::uint64_t> lvl;
        for (const auto &[child_idx, mac] : macs_[l - 1]) {
            (void)mac;
            std::uint64_t idx = child_idx / arity_;
            if (!lvl.count(idx))
                lvl[idx] = nodeMac(l, idx);
        }
        macs_[l] = std::move(lvl);
    }
    root_ = numLevels_ > 1 ? storedMac(numLevels_ - 1, 0)
                           : storedMac(0, 0);

    bool ok = root_ == saved_root;
    if (!ok)
        ++failures_;
    if (tracer_)
        tracer_->instant("merkle_rebuild", "merkle", tracer_->time(),
                         ok ? 1 : 0);
    return ok;
}

} // namespace fsencr
