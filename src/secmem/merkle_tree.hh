/**
 * @file
 * 8-ary Bonsai Merkle tree over the security-metadata region.
 *
 * Leaves are the 64-byte metadata lines (MECB, FECB, OTT-spill lines);
 * each interior node holds the 8-byte MACs of its 8 children and is
 * itself a 64-byte line, cacheable in the metadata cache. The root MAC
 * never leaves the processor.
 *
 * The functional tree is sparse: untouched subtrees collapse to
 * precomputed per-level "default" MACs, so only metadata that has
 * actually been persisted consumes host memory.
 */

#ifndef FSENCR_SECMEM_MERKLE_TREE_HH
#define FSENCR_SECMEM_MERKLE_TREE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"

namespace fsencr {

namespace metrics {
class Registry;
class LabeledCounter;
} // namespace metrics

/** Sparse 8-ary Merkle tree with the root held on-chip. */
class MerkleTree
{
  public:
    /**
     * @param layout physical map providing the covered leaf range and
     *        the node storage base
     * @param device the NVM device holding persisted leaf bytes
     * @param arity children per node (paper: 8)
     */
    MerkleTree(const PhysLayout &layout, NvmDevice &device,
               unsigned arity = 8);

    /** Number of levels including the leaf level. */
    unsigned numLevels() const { return numLevels_; }

    /** Leaf index of a metadata-line address. */
    std::uint64_t leafIndex(Addr leaf_addr) const;

    /**
     * Physical address of the interior node at (level, index).
     * Level 1 is the parents-of-leaves level.
     */
    Addr nodeAddr(unsigned level, std::uint64_t index) const;

    /** The interior node covering the given leaf at the given level. */
    Addr ancestorAddr(Addr leaf_addr, unsigned level) const;

    /**
     * Recompute the MAC chain of a leaf after its device bytes changed
     * (called on every metadata persist).
     */
    void updateLeaf(Addr leaf_addr);

    /**
     * Like updateLeaf(Addr), but MAC the caller's *intended* line
     * content instead of the current device bytes. The controller
     * computes leaf MACs over the data it writes, so a persist the
     * fault injector tears or drops leaves the device mismatching the
     * tree — which is exactly how the audit log's integrity coverage
     * detects lost or mangled records at recovery.
     */
    void updateLeaf(Addr leaf_addr, const std::uint8_t *line);

    /**
     * Verify a leaf's device bytes against the tree.
     * @return true iff the leaf MAC and its path to the root match
     */
    bool verifyLeaf(Addr leaf_addr) const;

    /**
     * Rebuild every touched leaf MAC from device bytes and check the
     * resulting root against the on-chip root (post-crash
     * "regenerate and verify through the root" step).
     *
     * @param tampered_leaves when non-null, receives the addresses of
     *        touched leaves whose device bytes no longer match the MAC
     *        held before the rebuild — the localized blast radius a
     *        graceful recovery quarantines instead of aborting.
     * @return true iff the regenerated root matches the on-chip root
     */
    bool rebuildAndVerify(std::vector<Addr> *tampered_leaves = nullptr);

    /** The on-chip root MAC. */
    std::uint64_t root() const { return root_; }

    /** Whether a leaf has ever been persisted (tracked by the tree).
     *  Untracked (virgin) leaves are expected all-zero on the device,
     *  so recovery must zero-check them separately — the root
     *  comparison cannot see tampering there. */
    bool
    leafTracked(Addr leaf_addr) const
    {
        return macs_[0].count(leafIndex(leaf_addr)) != 0;
    }

    /**
     * Serializable tree state (Section VI, moving a filesystem to a
     * new machine): the per-level MAC maps model the NVM-resident
     * interior nodes that travel with the memory module; only the
     * root needs the authenticated side channel.
     */
    struct State
    {
        std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
            macs;
        std::uint64_t root = 0;
    };

    State exportState() const { return State{macs_, root_}; }

    /** Install transported state (geometry must match). */
    void
    importState(const State &state)
    {
        if (state.macs.size() != macs_.size())
            panic("merkle import: level count mismatch");
        macs_ = state.macs;
        root_ = state.root;
    }

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach an event tracer (nullptr disables). Verifications and
     *  updates become instants stamped with Tracer::time(). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Attach a metrics registry: leaf verifications count as
     *  merkle.verify{level=0}; the controller's Bonsai ancestor walk
     *  contributes levels 1+ to the same family (nullptr disables). */
    void setMetrics(metrics::Registry *metrics);

  private:
    /** MAC of a 64-byte buffer. */
    std::uint64_t macOf(const std::uint8_t *line, Addr addr) const;

    /** MAC of the current device bytes of a leaf. */
    std::uint64_t leafMacFromDevice(Addr leaf_addr) const;

    /** MAC stored for (level, index); default if untouched. */
    std::uint64_t storedMac(unsigned level, std::uint64_t index) const;

    /** Recompute an interior node's MAC from its children. */
    std::uint64_t nodeMac(unsigned level, std::uint64_t index) const;

    /** Propagate a leaf change up to the root. */
    void propagate(std::uint64_t leaf_index);

    const PhysLayout &layout_;
    NvmDevice &device_;
    unsigned arity_;
    unsigned numLevels_;
    std::uint64_t numLeaves_;

    /** levelCount_[l]: number of entries at level l (0 = leaves). */
    std::vector<std::uint64_t> levelCount_;
    /** Storage offset of each interior level within the node region. */
    std::vector<Addr> levelBase_;

    /** Sparse MAC store: macs_[level][index]. Level 0 = leaf MACs. */
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> macs_;
    /** Per-level default MAC of an all-untouched subtree. */
    std::vector<std::uint64_t> defaultMac_;

    std::uint64_t root_;

    stats::StatGroup statGroup_;
    stats::Scalar updates_;
    mutable stats::Scalar verifies_;
    mutable stats::Scalar failures_;
    trace::Tracer *tracer_ = nullptr;
    metrics::LabeledCounter *verifyCtr_ = nullptr;
};

} // namespace fsencr

#endif // FSENCR_SECMEM_MERKLE_TREE_HH
