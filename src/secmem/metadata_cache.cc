#include "secmem/metadata_cache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/profile.hh"

namespace fsencr {

namespace {

/** Largest power-of-two byte size not exceeding the share. */
std::size_t
powerOfTwoShare(std::size_t total, unsigned share, unsigned out_of)
{
    std::size_t want = total * share / out_of;
    std::size_t size = blockSize;
    while (size * 2 <= want)
        size *= 2;
    return size;
}

} // namespace

MetadataCache::MetadataCache(const SecParams &params,
                             const PhysLayout &layout)
    : layout_(layout), statGroup_("metaCache")
{
    if (!params.metadataCachePartitioned) {
        unified_ = std::make_unique<SetAssocCache>(
            "unified", params.metadataCacheBytes,
            params.metadataCacheAssoc);
        statGroup_.addChild(&unified_->statGroup());
        return;
    }

    unsigned total = params.mecbShare + params.fecbShare +
                     params.merkleShare;
    if (total == 0)
        fatal("partitioned metadata cache needs non-zero shares");

    const char *names[3] = {"mecb", "fecb", "merkle"};
    unsigned shares[3] = {params.mecbShare, params.fecbShare,
                          params.merkleShare};
    for (int i = 0; i < 3; ++i) {
        std::size_t bytes = powerOfTwoShare(params.metadataCacheBytes,
                                            shares[i], total);
        unsigned assoc = params.metadataCacheAssoc;
        while (bytes / (assoc * blockSize) == 0 && assoc > 1)
            assoc /= 2;
        parts_[i] = std::make_unique<SetAssocCache>(names[i], bytes,
                                                    assoc);
        statGroup_.addChild(&parts_[i]->statGroup());
    }
}

unsigned
MetadataCache::partitionOf(Addr meta_addr) const
{
    switch (layout_.classifyMeta(meta_addr)) {
      case PhysLayout::MetaKind::Mecb:
        return 0;
      case PhysLayout::MetaKind::Fecb:
        return 1;
      case PhysLayout::MetaKind::MerkleNode:
        return 2;
      default:
        panic("metadata cache asked about non-metadata address %#lx",
              static_cast<unsigned long>(meta_addr));
    }
}

SetAssocCache &
MetadataCache::cacheFor(Addr meta_addr)
{
    if (unified_)
        return *unified_;
    return *parts_[partitionOf(meta_addr)];
}

const SetAssocCache &
MetadataCache::cacheFor(Addr meta_addr) const
{
    return const_cast<MetadataCache *>(this)->cacheFor(meta_addr);
}

void
MetadataCache::setMetrics(metrics::Registry *metrics)
{
    if (!metrics) {
        accessCtr_ = missCtr_ = nullptr;
        return;
    }
    accessCtr_ = &metrics->counter("metacache.access", "kind", 4);
    missCtr_ = &metrics->counter("metacache.miss", "kind", 4);
}

CacheAccessResult
MetadataCache::access(Addr meta_addr, bool is_write)
{
    CacheAccessResult res = cacheFor(meta_addr).access(meta_addr,
                                                       is_write);
    if (prof_)
        prof_->resourceArrival(profile::Res::MetaCache,
                               profLookupTicks_);
    if (accessCtr_) {
        static const char *const kinds[3] = {"mecb", "fecb", "merkle"};
        const char *kind = kinds[partitionOf(meta_addr)];
        accessCtr_->add(kind);
        if (!res.hit)
            missCtr_->add(kind);
    }
    if (tracer_) {
        if (!res.hit)
            tracer_->instant("meta_cache_miss", "metaCache",
                             tracer_->time(), meta_addr);
        if (res.evicted && res.writeback)
            tracer_->instant("meta_cache_writeback", "metaCache",
                             tracer_->time(), res.victimAddr);
    }
    return res;
}

bool
MetadataCache::probe(Addr meta_addr) const
{
    return cacheFor(meta_addr).probe(meta_addr);
}

void
MetadataCache::clean(Addr meta_addr)
{
    cacheFor(meta_addr).clean(meta_addr);
}

bool
MetadataCache::isDirty(Addr meta_addr) const
{
    return cacheFor(meta_addr).isDirty(meta_addr);
}

void
MetadataCache::loseAll()
{
    if (unified_) {
        unified_->loseAll();
        return;
    }
    for (auto &p : parts_)
        p->loseAll();
}

} // namespace fsencr
