/**
 * @file
 * The on-chip security-metadata cache.
 *
 * Table III: 512 KB, 8-way, 64 B lines, shared by MECBs, FECBs and
 * Merkle-tree nodes. Section III-D notes the cache "can be partitioned
 * for each metadata to equitably distribute the cache capacity" — this
 * wrapper implements both organizations behind one interface so the
 * partitioning ablation can compare them.
 */

#ifndef FSENCR_SECMEM_METADATA_CACHE_HH
#define FSENCR_SECMEM_METADATA_CACHE_HH

#include <memory>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "mem/phys_layout.hh"

namespace fsencr {

namespace metrics {
class Registry;
class LabeledCounter;
} // namespace metrics

namespace profile {
class Profiler;
} // namespace profile

/** Unified or partitioned metadata cache. */
class MetadataCache
{
  public:
    MetadataCache(const SecParams &params, const PhysLayout &layout);

    /** Look up / allocate the metadata line. */
    CacheAccessResult access(Addr meta_addr, bool is_write);

    bool probe(Addr meta_addr) const;
    void clean(Addr meta_addr);
    bool isDirty(Addr meta_addr) const;

    /** Power loss. */
    void loseAll();

    /**
     * Visit every valid line (addr, dirty) across the unified cache
     * or all partitions. Used by the eADR backup-power flush to
     * enumerate the dirty metadata it must drain; callers must sort
     * the collected addresses before acting on them (set-walk order
     * is not part of the model).
     */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        if (unified_) {
            unified_->forEachLine(fn);
            return;
        }
        for (const auto &part : parts_)
            if (part)
                part->forEachLine(fn);
    }

    bool partitioned() const { return parts_[0] != nullptr; }

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach an event tracer (nullptr disables). Misses and
     *  evictions become instants stamped with Tracer::time() (this
     *  cache has no clock of its own). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Attach a metrics registry: accesses and misses become
     *  metacache.access{kind} / metacache.miss{kind}, labeled
     *  mecb/fecb/merkle (nullptr disables). */
    void setMetrics(metrics::Registry *metrics);

    /** Attach the contention profiler (nullptr disables): each lookup
     *  becomes a metacache resource arrival. This cache has no clock
     *  of its own, so the controller passes the per-lookup tick cost
     *  in as the residence time. Observation only. */
    void
    setProfiler(profile::Profiler *prof, Tick lookup_ticks)
    {
        prof_ = prof;
        profLookupTicks_ = lookup_ticks;
    }

  private:
    /** Partition index for an address: 0 MECB, 1 FECB, 2 Merkle. */
    unsigned partitionOf(Addr meta_addr) const;

    SetAssocCache &cacheFor(Addr meta_addr);
    const SetAssocCache &cacheFor(Addr meta_addr) const;

    const PhysLayout &layout_;
    /** Unified organization. */
    std::unique_ptr<SetAssocCache> unified_;
    /** Partitioned organization (all non-null when enabled). */
    std::unique_ptr<SetAssocCache> parts_[3];

    stats::StatGroup statGroup_;
    trace::Tracer *tracer_ = nullptr;
    metrics::LabeledCounter *accessCtr_ = nullptr;
    metrics::LabeledCounter *missCtr_ = nullptr;
    profile::Profiler *prof_ = nullptr;
    Tick profLookupTicks_ = 0;
};

} // namespace fsencr

#endif // FSENCR_SECMEM_METADATA_CACHE_HH
