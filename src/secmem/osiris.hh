/**
 * @file
 * Osiris-style encryption-counter recovery (Ye et al., MICRO 2018).
 *
 * Idea: the line's ECC acts as a counter sanity check. The persisted
 * counter is allowed to lag the true counter by at most the stop-loss
 * bound N (the counter block is force-persisted every Nth update).
 * After a crash, the controller trial-decrypts the line with candidate
 * counters [persisted, persisted + N] and accepts the candidate whose
 * decryption matches the stored ECC.
 *
 * Our ECC substitute is a truncated SHA-256 over (plaintext || address)
 * kept out-of-band in the device model, standing in for the encrypted
 * ECC bits Osiris uses; the recovery algorithm is identical.
 */

#ifndef FSENCR_SECMEM_OSIRIS_HH
#define FSENCR_SECMEM_OSIRIS_HH

#include <cstdint>
#include <optional>
#include <utility>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "crypto/sha256.hh"

namespace fsencr {

/** Counter-recovery helper with stop-loss bookkeeping. */
class OsirisRecovery
{
  public:
    explicit OsirisRecovery(unsigned stop_loss)
        : stopLoss_(stop_loss), statGroup_("osiris")
    {
        statGroup_.addScalar("probes", probes_);
        statGroup_.addScalar("recovered", recovered_);
        statGroup_.addScalar("failed", failed_);
        statGroup_.addScalar("stopLossPersists", stopLossPersists_);
    }

    unsigned stopLoss() const { return stopLoss_; }

    /** Stop-loss boundary persists booked so far (the run report's
     *  `persist` section reads this; zero under eADR, where the
     *  boundary check is skipped entirely). */
    std::uint64_t
    stopLossPersists() const
    {
        return stopLossPersists_.value();
    }

    /** The ECC word stored alongside a data line. */
    static std::uint32_t
    eccOf(const std::uint8_t *plain, Addr line_addr)
    {
        crypto::Sha256 ctx;
        ctx.update(&line_addr, sizeof(line_addr));
        ctx.update(plain, blockSize);
        auto d = ctx.final();
        return (std::uint32_t(d[0]) << 24) | (std::uint32_t(d[1]) << 16) |
               (std::uint32_t(d[2]) << 8) | std::uint32_t(d[3]);
    }

    /**
     * Does this counter update hit a stop-loss boundary (and therefore
     * force a persist of its counter block)?
     */
    bool
    atStopLoss(std::uint32_t new_minor)
    {
        if (stopLoss_ == 0)
            return true; // strict persistence
        bool hit = (new_minor % stopLoss_) == 0;
        if (hit)
            ++stopLossPersists_;
        return hit;
    }

    /**
     * Two-dimensional recovery for dual-counter (FsEncr) lines whose
     * memory and file counters persist at different cadences.
     *
     * @param mem_span candidates for the memory-minor lag: [0, span]
     * @param file_span candidates for the file-minor lag: [0, span]
     * @param trial_decrypt callable: (d_mem, d_file, plain_out[64])
     * @return the recovered (d_mem, d_file) lag pair
     */
    template <typename TrialDecrypt2>
    std::optional<std::pair<std::uint32_t, std::uint32_t>>
    recoverMinorPair(unsigned mem_span, unsigned file_span,
                     std::uint32_t stored_ecc,
                     TrialDecrypt2 &&trial_decrypt, Addr line_addr)
    {
        std::uint64_t probes = 0;
        for (unsigned dm = 0; dm <= mem_span; ++dm) {
            for (unsigned df = 0; df <= file_span; ++df) {
                ++probes_;
                ++probes;
                std::uint8_t plain[blockSize];
                trial_decrypt(dm, df, plain);
                if (eccOf(plain, line_addr) == stored_ecc) {
                    ++recovered_;
                    if (tracer_)
                        tracer_->instant("osiris_recover_pair",
                                         "osiris", tracer_->time(),
                                         probes);
                    return std::make_pair(dm, df);
                }
            }
        }
        ++failed_;
        warnLimited(16,
                    "osiris: 2-D counter recovery exhausted for line "
                    "%#lx after %lu probes (mem span 0..%u, file span "
                    "0..%u)",
                    static_cast<unsigned long>(line_addr),
                    static_cast<unsigned long>(probes), mem_span,
                    file_span);
        if (tracer_)
            tracer_->instant("osiris_fail_pair", "osiris",
                             tracer_->time(), probes);
        return std::nullopt;
    }

    /**
     * Recover a minor counter by trial decryption.
     *
     * @param persisted_minor the minor counter read from the persisted
     *        counter block
     * @param stored_ecc the out-of-band ECC word of the line
     * @param trial_decrypt callable: (candidate_minor, plain_out[64])
     *        decrypts the device line under the candidate
     * @param line_addr the line's device address (ECC binding)
     * @return the recovered minor, or nullopt if no candidate matched
     */
    template <typename TrialDecrypt>
    std::optional<std::uint32_t>
    recoverMinor(std::uint32_t persisted_minor, std::uint32_t stored_ecc,
                 TrialDecrypt &&trial_decrypt, Addr line_addr)
    {
        std::uint64_t probes = 0;
        for (unsigned d = 0; d <= stopLoss_; ++d) {
            ++probes_;
            ++probes;
            std::uint32_t cand = persisted_minor + d;
            std::uint8_t plain[blockSize];
            trial_decrypt(cand, plain);
            if (eccOf(plain, line_addr) == stored_ecc) {
                ++recovered_;
                if (tracer_)
                    tracer_->instant("osiris_recover", "osiris",
                                     tracer_->time(), probes);
                return cand;
            }
        }
        ++failed_;
        warnLimited(16,
                    "osiris: counter recovery exhausted for line %#lx "
                    "after %lu probes (candidates %u..%u)",
                    static_cast<unsigned long>(line_addr),
                    static_cast<unsigned long>(probes),
                    persisted_minor, persisted_minor + stopLoss_);
        if (tracer_)
            tracer_->instant("osiris_fail", "osiris", tracer_->time(),
                             probes);
        return std::nullopt;
    }

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach an event tracer (nullptr disables). Recovery outcomes
     *  become instants carrying the probe count. */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

  private:
    unsigned stopLoss_;
    trace::Tracer *tracer_ = nullptr;

    stats::StatGroup statGroup_;
    stats::Scalar probes_;
    stats::Scalar recovered_;
    stats::Scalar failed_;
    stats::Scalar stopLossPersists_;
};

} // namespace fsencr

#endif // FSENCR_SECMEM_OSIRIS_HH
