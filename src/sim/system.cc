#include "sim/system.hh"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "common/logging.hh"
#include "fault/fault_injector.hh"

namespace fsencr {

namespace {

/** An audit-enabled config without an explicit region size gets the
 *  default carve-out; audit-off configs keep auditLogBytes == 0 so the
 *  layout (and thus the Merkle geometry) is byte-identical to
 *  pre-audit builds. */
LayoutParams
auditAdjusted(const SimConfig &cfg)
{
    LayoutParams p = cfg.layout;
    if (cfg.sec.auditEnabled && p.auditLogBytes == 0)
        p.auditLogBytes = auditLogDefaultBytes;
    return p;
}

} // namespace

System::System(const SimConfig &cfg)
    : cfg_(cfg), layout_(auditAdjusted(cfg)), rng_(cfg.seed),
      statGroup_("system")
{
    device_ = std::make_unique<NvmDevice>(cfg_.pcm,
                                          cfg_.sec.auditEnabled);
    mc_ = std::make_unique<McRouter>(cfg_, layout_, *device_, rng_);
    fs_ = std::make_unique<NvmFilesystem>(layout_);
    kernel_ = std::make_unique<Kernel>(cfg_, layout_, *fs_, *mc_, rng_);
    caches_ = std::make_unique<CacheHierarchy>(cfg_.cpu);
    if (cfg_.hasSoftwareEncryption())
        swenc_ = std::make_unique<SwEncLayer>(cfg_.swenc, *device_);
    for (unsigned c = 0; c < cfg_.cpu.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(c, cfg_.cpu));

    // Fast-forward needs every individual access observable by nothing
    // but this class; the software-encryption layer hooks each access,
    // so it forces the exact model.
    ffL1Ticks_ = cfg_.cpu.l1.latency * cfg_.cyclePeriod();
    ffLineCache_.resize(cfg_.cpu.numCores);
    ffLogs_.resize(cfg_.cpu.numCores);
    for (auto &log : ffLogs_)
        log.buf.resize(ffLogCapacity);
    for (unsigned c = 0; c < cfg_.cpu.numCores; ++c)
        ffResetRun(c);
    // Auditing records the exact per-access stream, so it forces the
    // exact model too (ISSUE: "auditing forces ffFlush or falls back
    // to exact" — we fall back).
    // The sharded clock model reconciles per-shard epochs, which the
    // batched fast path cannot observe — shards force the exact model.
    ffEnabled_ = cfg_.fastForward && !swenc_ &&
                 !cfg_.sec.auditEnabled &&
                 cfg_.pcm.mcShards <= 1 &&
                 cfg_.cpu.numCores <= ffMaxCores;

    shardMode_ = mc_->shardCount() > 1;
    if (shardMode_) {
        shEpochLimit_ = shardEpochDepth * mc_->shardCount();
        shBusy_.assign(mc_->shardCount(), 0);
        shBd_.assign(mc_->shardCount(), trace::Breakdown{});
        measureStartShardBusy_.assign(mc_->shardCount(), 0);
        shardGroup_ = std::make_unique<stats::StatGroup>("shards");
        shardGroup_->addScalar("serialTicks", shardSerialTicks_);
        shardGroup_->addScalar("visibleTicks", shardVisibleTicks_);
        shardGroup_->addScalar("reconciles", shardReconciles_);
        for (unsigned k = 0; k < mc_->shardCount(); ++k) {
            shardBusyTotals_.emplace_back();
            shardGroup_->addScalar("busy" + std::to_string(k),
                                   shardBusyTotals_.back());
        }
        statGroup_.addChild(shardGroup_.get());
    }

    statGroup_.addScalar("loads", totalLoads_);
    statGroup_.addScalar("stores", totalStores_);
    statGroup_.addScalar("crashes", crashes_);
    statGroup_.addScalar("recoveries", recoveries_);
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        attrGroup_.addScalar(trace::componentName(c), attrTicks_[c]);
    statGroup_.addChild(&attrGroup_);
    statGroup_.addChild(&device_->statGroup());
    for (unsigned k = 0; k < mc_->shardCount(); ++k)
        statGroup_.addChild(&mc_->shard(k).statGroup());
    statGroup_.addChild(&caches_->statGroup());
    statGroup_.addChild(&kernel_->statGroup());
    statGroup_.addChild(&fs_->statGroup());
    if (swenc_)
        statGroup_.addChild(&swenc_->statGroup());
    for (auto &c : cores_)
        statGroup_.addChild(&c->statGroup());
}

void
System::setTracer(trace::Tracer *tracer)
{
    ffFlush();
    reconcileShards();
    tracer_ = tracer;
    mc_->setTracer(tracer);
    if (tracer_)
        tracer_->setTime(now_);
}

void
System::reconcileShards()
{
    if (!shardMode_)
        return;
    shEpochOps_ = 0;
    Tick sum = 0;
    unsigned crit = 0;
    for (unsigned k = 0; k < shBusy_.size(); ++k) {
        sum += shBusy_[k];
        if (shBusy_[k] > shBusy_[crit])
            crit = k; // ties resolve to the lowest shard id
    }
    if (sum == 0)
        return;

    shardSerialTicks_ += sum;
    shardVisibleTicks_ += shBusy_[crit];
    ++shardReconciles_;
    for (unsigned k = 0; k < shBusy_.size(); ++k)
        shardBusyTotals_[k] += shBusy_[k];

    // The global clock advances by the critical shard's epoch (the
    // others drained under it), and only its breakdown enters the
    // attribution — the critical breakdown sums to exactly the ticks
    // added, preserving attribution-total == ticks.
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        attrTicks_[c] += shBd_[crit].ticks[c];
    now_ += shBusy_[crit];
    for (unsigned k = 0; k < shBusy_.size(); ++k) {
        shBusy_[k] = 0;
        shBd_[k] = trace::Breakdown{};
    }
    if (advanceHooks_)
        advanceHooks();
}

void
System::setMetrics(metrics::Registry *metrics)
{
    ffFlush();
    reconcileShards();
    metrics_ = metrics;
    if (metrics_)
        metrics_->setStatRoot(&statGroup_);
    mc_->setMetrics(metrics);
}

void
System::setFaultInjector(FaultInjector *injector)
{
    ffFlush();
    reconcileShards();
    injector_ = injector;
    device_->setFaultInjector(injector);
    advanceHooks_ = injector_ != nullptr || sampler_ != nullptr;
    // The injector watches every clock advance for its trigger tick;
    // batching advances would move its observation points, so an
    // attached injector forces the exact model.
    ffEnabled_ = cfg_.fastForward && !swenc_ && !injector_ &&
                 !cfg_.sec.auditEnabled &&
                 cfg_.pcm.mcShards <= 1 &&
                 cfg_.cpu.numCores <= ffMaxCores;
}

void
System::faultTick()
{
    injector_->onTick(now_);
}

void
System::advanceHooks()
{
    if (injector_)
        faultTick();
    if (sampler_)
        sampler_->onAdvance(now_);
}

void
System::ffSwitchTo(unsigned core_id, FfRun &run, const FfLineEntry &e)
{
    std::uint64_t acc = run.accesses();
    // Close the finished segment as a log record instead of touching
    // cache and TLB state here: the switch path then issues three
    // plain stores where the eager close needed four read-modify-
    // writes of shared counters. The drain applies records in program
    // order, so final state is unchanged. The record covers the TLB
    // batch too — closing it per line segment rather than per page
    // segment leaves identical final state (ffCredit is associative
    // over consecutive segments) and lets one pair of marks serve
    // both, replacing a page-change branch that random access
    // patterns would keep mispredicting.
    if (run.line && acc > run.lineStartAcc)
        ffAppend(core_id, run, acc);
    run.lineStartAcc = acc;
    run.segDirty = false;
    run.tlbEntry = e.tlbEntry;
    // Adopting the entry's TLB pointer desyncs it from the
    // vpn/pframe/hostPage trio, so poison vpn rather than re-derive
    // all three: the next line-cache miss then re-resolves through
    // the translation cache (a way probe) instead of the same-page
    // shortcut. Steady state never gets there — a span that fits the
    // line cache stops missing it after the first sweep.
    run.vpn = ~Addr(0);
    run.line = e.line;
    run.vline = e.vline;
    run.hostBias = e.hostBias;
}

bool
System::ffSwitch(FfRun &run, unsigned core_id, Addr vaddr, Addr vline)
{
    FfLineEntry &e =
        run.lcache[(vline / blockSize) & (ffLineCacheSize - 1)];
    if (e.vline == vline && e.epoch == run.epoch) {
        ffSwitchTo(core_id, run, e);
        return true;
    }
    return ffOpenRun(run, core_id, vaddr, vline);
}

bool
System::ffOpenRun(FfRun &run, unsigned core_id, Addr vaddr, Addr vline)
{
    // Close the finished line batch (same rules as ffFlush: only the
    // run's final LRU stamp is observable, so one credit of N hits is
    // byte-identical to N individual ones). The segment size is the
    // access count since the segment's mark — the hot path maintains
    // no per-segment counters.
    std::uint64_t acc = run.accesses();
    if (run.line) {
        if (acc > run.lineStartAcc)
            ffAppend(core_id, run, acc);
        run.line = nullptr;
    }
    run.lineStartAcc = acc;
    run.segDirty = false;

    Addr vpn = pageNumber(vaddr);
    if (vpn != run.vpn || !run.tlbEntry) {
        // The previous page's TLB batch was closed with the line
        // segment above (shared marks); only resolution remains.
        unsigned way =
            static_cast<unsigned>(vpn) & (FfRun::tcacheWays - 1);
        if (run.tcVpn[way] == vpn) {
            // Recently-seen page: the batched-credit discipline is
            // identical whether the entry came from the scan or the
            // cache, so this is pure host-time savings.
            run.tlbEntry = run.tcEntry[way];
            run.vpn = vpn;
            run.pframe = run.tcPframe[way];
            run.hostPage = run.tcHostPage[way];
        } else {
            TlbEntry *e = run.tlb->ffFind(vaddr);
            if (!e) {
                // TLB miss: the access must take the exact path (page
                // walk, insert, possibly a fault) in program order,
                // after everything batched so far.
                ffFlush();
                return false;
            }
            run.tlbEntry = e;
            run.vpn = vpn;
            run.pframe = e->pframe;
            // One page-table lookup per page segment; line changes
            // inside the page only re-derive hostLine from this base.
            run.hostPage = archMem_.hostPtr(
                pageAlign(stripDfBit(run.pframe | pageOffset(vaddr))));
            run.tcVpn[way] = vpn;
            run.tcEntry[way] = e;
            run.tcPframe[way] = run.pframe;
            run.tcHostPage[way] = run.hostPage;
        }
        ffActive_ = true; // cached pointers need a future ffFlush
    }

    Addr paddr = run.pframe | pageOffset(vaddr);
    SetAssocCache::Line *l = run.l1->ffProbe(blockAlign(paddr));
    if (!l) {
        // L1 miss: lower levels, evictions and possibly the memory
        // controller get involved — exact path only.
        ffFlush();
        return false;
    }
    run.line = l;
    run.vline = vline;
    run.hostBias = reinterpret_cast<std::intptr_t>(
                       run.hostPage + pageOffset(vline)) -
                   static_cast<std::intptr_t>(vline);
    ffActive_ = true;

    // Record the fully-resolved state so a later re-open on this line
    // within the same flush epoch is a single table hit (ffSwitchTo).
    FfLineEntry &e =
        run.lcache[(vline / blockSize) & (ffLineCacheSize - 1)];
    e.vline = vline;
    e.epoch = run.epoch;
    e.line = l;
    e.hostBias = run.hostBias;
    e.tlbEntry = run.tlbEntry;
    return true;
}

void
System::ffFlush()
{
    if (!ffActive_)
        return;
    ffActive_ = false;
    // A successful run open implies ffActive_, so epoch-current line
    // cache entries only exist while active: one bump here
    // invalidates them all before the exact path can run.
    ++ffEpoch_;
    std::uint64_t total = 0;
    for (unsigned c = 0; c < cfg_.cpu.numCores; ++c) {
        // Older segments first (the log is in program order), then
        // the still-open segment.
        ffDrainLog(c);
        FfRun &run = ffRuns_[c];
        std::uint64_t acc = run.accesses();
        std::uint64_t stores = run.stores();
        std::uint64_t loads = acc - stores;
        if (acc > run.lineStartAcc) {
            std::uint64_t n = acc - run.lineStartAcc;
            if (run.line)
                caches_->l1(c).ffCredit(run.line, n, run.segDirty);
            if (run.tlbEntry)
                cores_[c]->tlb().ffCredit(run.tlbEntry, n);
        }
        if (loads) {
            cores_[c]->loads_ += loads;
            totalLoads_ += loads;
        }
        if (stores) {
            cores_[c]->stores_ += stores;
            totalStores_ += stores;
        }
        total += acc;
        ffResetRun(c);
    }
    if (total) {
        // One bulk advance for the whole batch; every tick lands in
        // the CacheAccess slot, exactly as the per-access advances
        // would have.
        advance(trace::CacheAccess, total * ffL1Ticks_);
    }
}

void
System::ffResetRun(unsigned core_id)
{
    FfRun &run = ffRuns_[core_id];
    run = FfRun{};
    run.l1 = &caches_->l1(core_id);
    run.tlb = &cores_[core_id]->tlb();
    run.lcache = ffLineCache_[core_id].data();
    run.log = &ffLogs_[core_id];
    run.epoch = ffEpoch_;
}

void
System::ffDrainLog(unsigned core_id)
{
    FfLog &log = ffLogs_[core_id];
    if (!log.size)
        return;
    SetAssocCache &l1 = caches_->l1(core_id);
    Tlb &tlb = cores_[core_id]->tlb();
    for (std::size_t i = 0; i < log.size; ++i) {
        const FfCredit &r = log.buf[i];
        l1.ffCredit(r.line, r.n, r.dirty);
        if (r.tlbEntry)
            tlb.ffCredit(r.tlbEntry, r.n);
    }
    log.size = 0;
}

trace::Breakdown
System::attribution() const
{
    trace::Breakdown bd;
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        bd.ticks[c] = attrTicks_[c].value();
    // Ticks of an open fast-forward run all belong to the L1 lookup
    // slot; fold them in so total() matches now() without a flush.
    bd.ticks[trace::CacheAccess] += ffPendingTicks();
    foldPendingShardAttr(bd);
    return bd;
}

trace::Breakdown
System::measuredAttribution() const
{
    trace::Breakdown bd;
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        bd.ticks[c] = attrTicks_[c].value() - measureStartAttr_[c];
    bd.ticks[trace::CacheAccess] += ffPendingTicks();
    foldPendingShardAttr(bd);
    return bd;
}

void
System::foldPendingShardAttr(trace::Breakdown &bd) const
{
    // An open shard epoch's critical shard would advance the clock by
    // its busy ticks at the next reconcile; fold its breakdown (which
    // sums to exactly those ticks) in so total() matches now()
    // without forcing the boundary.
    if (!shardMode_)
        return;
    unsigned crit = 0;
    for (unsigned k = 1; k < shBusy_.size(); ++k)
        if (shBusy_[k] > shBusy_[crit])
            crit = k;
    if (shBusy_[crit] == 0)
        return;
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        bd.ticks[c] += shBd_[crit].ticks[c];
}

void
System::applySwencSeal(Addr line_addr, std::uint8_t *buf)
{
    if (!swenc_)
        return;
    const crypto::Key128 *fek = kernel_->swencKeyFor(line_addr);
    if (!fek)
        return;
    // eCryptfs derives per-page IVs deterministically; modeled as a
    // CTR pad keyed by the FEK over (page, block) with no freshness
    // counter — rewriting a page reuses its pad, one of the scheme's
    // documented weaknesses relative to FsEncr.
    const crypto::Aes128 &aes = swencAesCache_.get(*fek);
    Addr line = blockAlign(stripDfBit(line_addr));
    crypto::Line pad = crypto::makeOtp(
        aes, {pageNumber(line), blockInPage(line), 0, 0});
    crypto::xorLine(buf, pad);
}

void
System::writebackLine(Addr paddr)
{
    std::uint8_t buf[blockSize];
    archMem_.read(blockAlign(stripDfBit(paddr)), buf, blockSize);
    applySwencSeal(paddr, buf);
    // Background writeback: bank occupancy is modeled, but the
    // completion never lands on the system clock.
    MemRequest req;
    req.paddr = paddr;
    req.isWrite = true;
    req.writeData = buf;
    submitMcBackground(req);
}

void
System::accessOnce(unsigned core_id, Addr vaddr, bool is_write,
                   void *buf, std::size_t size)
{
    Core &core = *cores_.at(core_id);

    // Address translation.
    Addr pframe;
    if (!core.tlb().lookup(vaddr, pframe)) {
        Translation t = kernel_->translate(core.currentPid(), vaddr,
                                           is_write, now_);
        advance(trace::Translation, t.cycles * cfg_.cyclePeriod());
        advance(trace::Mmio, t.mcLatency);
        if (t.faulted)
            ++core.pageFaults_;
        core.tlb().insert(vaddr, t.pframe);
        pframe = pageAlign(t.pframe);
    }
    Addr paddr = pframe | pageOffset(vaddr);

    // Software-encryption baseline intercepts encrypted-file pages.
    if (swenc_ && kernel_->isSwencFrame(paddr))
        advance(trace::SwEnc,
                swenc_->onAccess(stripDfBit(paddr), is_write, now_));

    // Cache hierarchy; a miss at every level goes to the controller.
    HierarchyResult hr = caches_->access(core_id, paddr, is_write,
                                         *this);
    advance(trace::CacheAccess, hr.cycles * cfg_.cyclePeriod());
    if (hr.level == HitLevel::Memory) {
        MemRequest req;
        req.paddr = paddr;
        req.core = static_cast<std::uint8_t>(core_id);
        submitMc(req);
    }

    // Functional data movement against the architectural image.
    Addr daddr = stripDfBit(paddr);
    if (is_write) {
        ++core.stores_;
        ++totalStores_;
        archMem_.write(daddr, buf, size);
    } else {
        ++core.loads_;
        ++totalLoads_;
        archMem_.read(daddr, buf, size);
    }
}

void
System::load(unsigned core, Addr vaddr, void *buf, std::size_t size)
{
    auto *p = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        std::size_t in_line =
            std::min<std::size_t>(size,
                                  blockSize - blockOffset(vaddr));
        if (!ffEnabled_ || !ffTry(core, vaddr, false, p, in_line))
            accessOnce(core, vaddr, false, p, in_line);
        vaddr += in_line;
        p += in_line;
        size -= in_line;
    }
}

void
System::store(unsigned core, Addr vaddr, const void *buf,
              std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        std::size_t in_line =
            std::min<std::size_t>(size,
                                  blockSize - blockOffset(vaddr));
        if (!ffEnabled_ ||
            !ffTry(core, vaddr, true, const_cast<std::uint8_t *>(p),
                   in_line))
            accessOnce(core, vaddr, true,
                       const_cast<std::uint8_t *>(p), in_line);
        vaddr += in_line;
        p += in_line;
        size -= in_line;
    }
}

namespace {

/** Sink that charges full persist latency to the system clock. */
class BlockingSink : public WritebackSink
{
  public:
    BlockingSink(System &sys, BackingStore &arch, unsigned core)
        : sys_(sys), arch_(arch),
          core_(static_cast<std::uint8_t>(core))
    {}

    void
    writebackLine(Addr paddr) override
    {
        std::uint8_t buf[blockSize];
        arch_.read(blockAlign(stripDfBit(paddr)), buf, blockSize);
        MemRequest req;
        req.paddr = paddr;
        req.isWrite = true;
        req.writeData = buf;
        req.blocking = true;
        req.core = core_;
        sys_.submitMc(req);
    }

  private:
    System &sys_;
    BackingStore &arch_;
    std::uint8_t core_;
};

} // namespace

void
System::clwb(unsigned core_id, Addr vaddr)
{
    ffFlush();
    Core &core = *cores_.at(core_id);
    ++core.clwbs_;

    Addr pframe;
    if (!core.tlb().lookup(vaddr, pframe)) {
        Translation t = kernel_->translate(core.currentPid(), vaddr,
                                           false, now_);
        advance(trace::Translation, t.cycles * cfg_.cyclePeriod());
        advance(trace::Mmio, t.mcLatency);
        core.tlb().insert(vaddr, t.pframe);
        pframe = pageAlign(t.pframe);
    }
    Addr paddr = pframe | pageOffset(vaddr);
    clwbPhys(core_id, paddr);
}

void
System::clwbPhys(unsigned core_id, Addr paddr)
{
    // Without DAX the persistence primitive is msync, not clwb: defer
    // the page to the next fence (Figure 3's fundamental handicap).
    if (swenc_ && kernel_->isSwencFrame(paddr)) {
        swencPendingSync_.push_back(pageAlign(stripDfBit(paddr)));
        advance(trace::CpuCompute, 2 * cfg_.cyclePeriod());
        return;
    }

    if (eadrActive()) {
        // eADR: the dirty line is already inside the persistence
        // domain, so the clwb retires in one cycle and the writeback
        // drains posted — same functional path and device traffic as
        // a background writeback (bank occupancy modeled), but the
        // completion never lands on the clock.
        advance(trace::CpuCompute, cfg_.cyclePeriod());
        caches_->clwb(core_id, paddr, *this);
        return;
    }

    // The clwb instruction itself.
    advance(trace::CpuCompute, 2 * cfg_.cyclePeriod());
    BlockingSink sink(*this, archMem_, core_id);
    caches_->clwb(core_id, paddr, sink);
}

void
System::fsync(unsigned core, int fd)
{
    tick(core, 900); // syscall + inode writeback bookkeeping
    Process &p = kernel_->process(cores_.at(core)->currentPid());
    auto it = p.fds.find(fd);
    if (it == p.fds.end())
        fatal("fsync: bad fd %d", fd);
    const Inode &node = fs_->inode(it->second.ino);
    if (node.damaged)
        throw FileDamagedError(node.ino, "fsync");

    bool df = kernel_->daxEncrypted(node);
    for (Addr page : node.blocks) {
        Addr base = df ? setDfBit(page) : page;
        for (unsigned blk = 0; blk < blocksPerPage; ++blk)
            clwbPhys(core, base + blk * blockSize);
    }
    fence(core);
}

void
System::fence(unsigned core_id)
{
    ffFlush();
    Core &core = *cores_.at(core_id);
    ++core.fences_;
    // Persist writes already landed synchronously (in-order model);
    // the fence costs its pipeline drain only. Under eADR there is
    // nothing to order against the persistence domain — the fence is
    // a single cycle.
    advance(trace::CpuCompute,
            (eadrActive() ? 1 : 10) * cfg_.cyclePeriod());

    if (swenc_ && !swencPendingSync_.empty()) {
        // Deduplicate pages dirtied since the last fence, then msync.
        std::sort(swencPendingSync_.begin(), swencPendingSync_.end());
        swencPendingSync_.erase(std::unique(swencPendingSync_.begin(),
                                            swencPendingSync_.end()),
                                swencPendingSync_.end());
        for (Addr page : swencPendingSync_)
            advance(trace::SwEnc, swenc_->msync(page, now_));
        swencPendingSync_.clear();
    }
}

void
System::persist(unsigned core, Addr vaddr, std::size_t len)
{
    Addr line = blockAlign(vaddr);
    Addr end = vaddr + len;
    for (; line < end; line += blockSize)
        clwb(core, line);
    fence(core);
}

void
System::tick(unsigned core, Cycles cycles)
{
    (void)core;
    ffFlush();
    advance(trace::CpuCompute, cycles * cfg_.cyclePeriod());
}

std::uint32_t
System::addUser(const std::string &name, std::uint32_t uid,
                std::uint32_t gid, const std::string &passphrase)
{
    return kernel_->addUser(name, uid, gid, passphrase);
}

std::uint32_t
System::createProcess(std::uint32_t uid)
{
    return kernel_->createProcess(uid);
}

void
System::runOnCore(unsigned core, std::uint32_t pid)
{
    ffFlush(); // open runs hold TLB entry pointers
    cores_.at(core)->setCurrentPid(pid);
    cores_.at(core)->tlb().flush(); // context switch
}

int
System::creat(unsigned core, const std::string &path,
              std::uint16_t mode, OpenFlags flags,
              const std::string &passphrase)
{
    tick(core, 800); // syscall + inode setup
    return kernel_->creat(cores_.at(core)->currentPid(), path, mode,
                          flags, passphrase, now_);
}

int
System::open(unsigned core, const std::string &path, OpenFlags flags,
             const std::string &passphrase)
{
    tick(core, 600);
    return kernel_->open(cores_.at(core)->currentPid(), path, flags,
                         passphrase);
}

void
System::closeFd(unsigned core, int fd)
{
    tick(core, 200);
    kernel_->close(cores_.at(core)->currentPid(), fd);
}

void
System::ftruncate(unsigned core, int fd, std::uint64_t size)
{
    tick(core, 400);
    kernel_->ftruncate(cores_.at(core)->currentPid(), fd, size);
}

Addr
System::mmapFile(unsigned core, int fd, std::uint64_t length)
{
    tick(core, 500);
    return kernel_->mmapFile(cores_.at(core)->currentPid(), fd, length);
}

Addr
System::mmapAnon(unsigned core, std::uint64_t length)
{
    tick(core, 500);
    return kernel_->mmapAnon(cores_.at(core)->currentPid(), length);
}

void
System::unlink(unsigned core, const std::string &path)
{
    tick(core, 600);
    advance(trace::Mmio,
            kernel_->unlinkFile(cores_.at(core)->currentPid(), path,
                                now_));
}

void
System::chmod(unsigned core, const std::string &path,
              std::uint16_t mode)
{
    tick(core, 300);
    kernel_->chmodFile(cores_.at(core)->currentPid(), path, mode);
}

void
System::accessPhys(unsigned core_id, Addr paddr, bool is_write,
                   void *buf, std::size_t size)
{
    if (swenc_ && kernel_->isSwencFrame(paddr))
        advance(trace::SwEnc,
                swenc_->onAccess(stripDfBit(paddr), is_write, now_));

    HierarchyResult hr = caches_->access(core_id, paddr, is_write,
                                         *this);
    advance(trace::CacheAccess, hr.cycles * cfg_.cyclePeriod());
    if (hr.level == HitLevel::Memory) {
        MemRequest req;
        req.paddr = paddr;
        req.core = static_cast<std::uint8_t>(core_id);
        submitMc(req);
    }

    Addr daddr = stripDfBit(paddr);
    if (is_write)
        archMem_.write(daddr, buf, size);
    else
        archMem_.read(daddr, buf, size);
}

void
System::fileRead(unsigned core, int fd, std::uint64_t offset, void *buf,
                 std::size_t len)
{
    tick(core, 700); // syscall entry/exit
    Process &p = kernel_->process(cores_.at(core)->currentPid());
    auto it = p.fds.find(fd);
    if (it == p.fds.end())
        fatal("fileRead: bad fd %d", fd);
    const Inode &node = fs_->inode(it->second.ino);
    if (node.damaged)
        throw FileDamagedError(node.ino, "read");

    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        Addr paddr = fs_->blockPaddr(node.ino, offset);
        if (kernel_->daxEncrypted(node))
            paddr = setDfBit(paddr);
        advance(trace::Mmio,
                kernel_->touchFileFrame(node.ino, paddr, now_));
        std::size_t chunk = std::min<std::size_t>(
            len, blockSize - blockOffset(paddr));
        chunk = std::min<std::size_t>(chunk,
                                      pageSize - pageOffset(offset));
        accessPhys(core, paddr, false, out, chunk);
        offset += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
System::fileWrite(unsigned core, int fd, std::uint64_t offset,
                  const void *buf, std::size_t len)
{
    tick(core, 700);
    Process &p = kernel_->process(cores_.at(core)->currentPid());
    auto it = p.fds.find(fd);
    if (it == p.fds.end())
        fatal("fileWrite: bad fd %d", fd);
    if (!it->second.writable)
        fatal("fileWrite: fd %d is read-only", fd);
    Inode &node = fs_->inode(it->second.ino);
    if (node.damaged)
        throw FileDamagedError(node.ino, "write");
    fs_->extendTo(node.ino, offset + len);

    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        Addr paddr = fs_->blockPaddr(node.ino, offset);
        if (kernel_->daxEncrypted(node))
            paddr = setDfBit(paddr);
        advance(trace::Mmio,
                kernel_->touchFileFrame(node.ino, paddr, now_));
        std::size_t chunk = std::min<std::size_t>(
            len, blockSize - blockOffset(paddr));
        chunk = std::min<std::size_t>(chunk,
                                      pageSize - pageOffset(offset));
        accessPhys(core, paddr, true,
                   const_cast<std::uint8_t *>(in), chunk);
        offset += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
System::copyFile(unsigned core, const std::string &src,
                 const std::string &dst,
                 const std::string &passphrase)
{
    int sfd = open(core, src, OpenFlags::None, passphrase);
    if (sfd < 0)
        fatal("copyFile: cannot open source '%s'", src.c_str());
    auto src_ino = fs_->lookup(src);
    const Inode &snode = fs_->inode(*src_ino);

    int dfd = creat(core, dst, snode.mode,
                    snode.encrypted ? OpenFlags::Encrypted
                                    : OpenFlags::None,
                    passphrase);
    std::uint64_t size = snode.size;
    std::vector<std::uint8_t> chunk(pageSize);
    for (std::uint64_t off = 0; off < size; off += pageSize) {
        std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(pageSize, size - off));
        fileRead(core, sfd, off, chunk.data(), n);
        fileWrite(core, dfd, off, chunk.data(), n);
    }
    closeFd(core, sfd);
    closeFd(core, dfd);
}

void
System::provisionAdmin(const std::string &passphrase)
{
    kernel_->provisionAdmin(passphrase);
}

void
System::bootLogin(const std::string &passphrase)
{
    kernel_->bootLogin(passphrase);
}

void
System::crash()
{
    ffFlush(); // credit batched hits before the caches vanish
    reconcileShards(); // power loss is a hard epoch boundary
    ++crashes_;
    lostDirtyLines_ = caches_->crash();
    if (eadrActive()) {
        // Backup-power flush, stage 1: drain the CPU caches' dirty
        // lines into the NVM image in address order (the cache walk
        // order is not part of the model). Each line consumes flush
        // energy via the controller's shared admission gate; lines
        // the gate drops stay lost and recover() rolls them back.
        // Stage 2 (dirty metadata, WPQ, OTT) runs in mc_->crash().
        std::sort(lostDirtyLines_.begin(), lostDirtyLines_.end());
        std::vector<Addr> dropped;
        for (Addr full : lostDirtyLines_) {
            Addr line = blockAlign(stripDfBit(full));
            if (!mc_->backupFlushAdmit(line)) {
                dropped.push_back(full);
                continue;
            }
            std::uint8_t buf[blockSize];
            archMem_.read(line, buf, blockSize);
            MemRequest req;
            req.paddr = full;
            req.isWrite = true;
            req.writeData = buf;
            try {
                mc_->submit(req, now_);
            } catch (const IntegrityError &) {
                // At-rest tampering under the flushed line's counter
                // block: the drain cannot trust it, so the line is
                // lost like a budget-dropped one and recovery's
                // Merkle pass will localize the damage.
                dropped.push_back(full);
            }
        }
        lostDirtyLines_ = std::move(dropped);
    }
    for (auto &c : cores_)
        c->tlb().flush();
    if (swenc_)
        swenc_->crash();
    mc_->crash(now_);
}

bool
System::lineIsDax(Addr line_addr) const
{
    if (!cfg_.hasFsEncr() || !layout_.isPmem(line_addr))
        return false;
    // The working copy carries remount-time stamps; fall back to the
    // persisted image. The counters live on the shard owning the
    // data line, so route by the data address, not the FECB's.
    Addr fecb_addr = layout_.fecbAddr(line_addr);
    CounterStore &cs = mc_->countersFor(line_addr);
    Fecb fecb = cs.fecb(fecb_addr);
    if ((fecb.groupId | fecb.fileId) != 0)
        return true;
    Fecb persisted = cs.persistedFecb(fecb_addr);
    return (persisted.groupId | persisted.fileId) != 0;
}

void
System::resyncArchFromDevice()
{
    std::vector<Addr> lines;
    lines.reserve(device_->eccMap().size());
    for (const auto &[addr, ecc] : device_->eccMap()) {
        (void)ecc;
        lines.push_back(addr);
    }
    for (Addr line : lines) {
        std::uint8_t buf[blockSize];
        if (mc_->isQuarantined(line)) {
            // No trustworthy counters: decrypting would hand software
            // garbage (or, worse, cross-file plaintext under a wrong
            // pad). The architectural view of a quarantined line is
            // zeros until its file is recreated.
            std::memset(buf, 0, blockSize);
            archMem_.write(line, buf, blockSize);
            continue;
        }
        // Osiris recovery resync goes through the same
        // submit/complete surface as demand traffic.
        MemRequest req;
        req.paddr = lineIsDax(line) ? setDfBit(line) : line;
        req.readData = buf;
        advanceMc(mc_->submit(req, now_));
        archMem_.write(line, buf, blockSize);
    }
}

void
System::markDamagedFiles(RecoveryOutcome &out)
{
    // Deterministic: directory iteration is a sorted map, so damaged
    // paths come out in path order. Quarantined lines not covered by
    // any file block (freed pages, anonymous memory) are orphans.
    std::uint64_t covered = 0;
    for (const auto &[path, ino] : fs_->entries()) {
        Inode &node = fs_->inode(ino);
        node.damaged = false;
        std::uint64_t hit = 0;
        for (Addr page : node.blocks)
            for (unsigned blk = 0; blk < blocksPerPage; ++blk)
                if (mc_->isQuarantined(page + blk * blockSize))
                    ++hit;
        if (hit > 0) {
            node.damaged = true;
            out.damagedFiles.push_back(path);
            covered += hit;
        }
    }
    std::uint64_t total = mc_->quarantinedCount();
    out.orphanLines = total > covered ? total - covered : 0;
}

bool
System::recover()
{
    ffFlush();
    reconcileShards();
    ++recoveries_;
    lastRecovery_ = RecoveryOutcome{};
    RecoveryOutcome &out = lastRecovery_;

    // 1. Metadata pass: regenerate the Merkle tree; tampered counter
    //    leaves quarantine the data pages they cover instead of
    //    aborting the mount.
    auto verdict = mc_->recoverMetadataGraceful();
    out.metadataClean = verdict.rootOk;
    out.tamperedLeaves = verdict.tamperedLeaves.size();
    if (!verdict.localizable) {
        // Tampering hit state with no bounded blast radius (OTT
        // spill, interior divergence): nothing can be trusted.
        return false;
    }

    std::uint64_t failures;
    try {
        // 2. Remount: re-stamp every encrypted file page from
        //    filesystem metadata so recovery can identify DAX lines
        //    and keys.
        advance(trace::Mmio, kernel_->restampAllFiles(now_));
        // 3. Counter recovery; probe/key dead-ends quarantine lines.
        auto report = mc_->recoverAllReport();
        out.linesExamined = report.linesExamined;
        out.probes = report.probes;
        failures = report.failures;
    } catch (const IntegrityError &) {
        // Tampering discovered mid-recovery outside the quarantined
        // range: not localizable after all.
        return false;
    }
    out.probeFailures = failures;
    out.quarantinedLines = mc_->quarantinedCount();

    // Resynchronize the architectural image with the decrypted device
    // contents: whatever was persisted is what the rebooted machine
    // sees; unpersisted cached writes are gone.
    resyncArchFromDevice();

    // Dirty lines that never reached the controller: roll the
    // architectural image back to what the device holds (for encrypted
    // lines without ECC that is pre-first-write, i.e. zeros).
    for (Addr full : lostDirtyLines_) {
        Addr line = blockAlign(stripDfBit(full));
        if (device_->hasEcc(line))
            continue; // already resynced through the decrypt path
        std::uint8_t buf[blockSize];
        if (cfg_.hasMemoryEncryption()) {
            std::memset(buf, 0, blockSize);
        } else {
            device_->readLine(line, buf);
            applySwencSeal(line, buf); // unseal sw-encrypted frames
        }
        archMem_.write(line, buf, blockSize);
    }
    lostDirtyLines_.clear();

    // 4. Blast radius: map the quarantine set onto files; only the
    //    covered files become unreadable, everything else stays
    //    accessible.
    markDamagedFiles(out);

    out.usable = true;
    return true;
}

void
System::shutdown()
{
    ffFlush();
    reconcileShards();
    caches_->flushAll(*this);
    mc_->shutdown(now_);
    if (swenc_)
        advance(trace::SwEnc, swenc_->flush(now_));
}

bool
System::migrateFrom(System &donor)
{
    ffFlush();
    reconcileShards();
    // 1. Orderly power-down of the donor; the capsule leaves through
    //    the authorized user interface. Shard counts must match: the
    //    capsule carries one subtree per shard.
    donor.shutdown();
    auto capsule = donor.router().exportCapsule(donor.now());

    // 2. The DIMM (cells + ECC + on-module filesystem image) moves.
    device_->adoptContents(donor.device());
    fs_->adoptImage(donor.fs());

    // 3. Plug-in authentication against the transported root.
    if (!mc_->importCapsule(capsule))
        return false;

    // 4. Remount: re-stamp the adopted filesystem's pages, then the
    //    new machine decrypts its view of the module.
    advance(trace::Mmio, kernel_->restampAllFiles(now_));
    resyncArchFromDevice();
    return true;
}

void
System::dumpStats(std::ostream &os)
{
    ffFlush();
    reconcileShards();
    statGroup_.dump(os);
}

void
System::beginMeasurement()
{
    ffFlush();
    reconcileShards();
    measureStart_ = now_;
    measureStartReads_ = device_->numReads();
    measureStartWrites_ = device_->numWrites();
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        measureStartAttr_[c] = attrTicks_[c].value();
    if (shardMode_) {
        measureStartShardSerial_ = shardSerialTicks_.value();
        measureStartShardVisible_ = shardVisibleTicks_.value();
        for (unsigned k = 0; k < shardBusyTotals_.size(); ++k)
            measureStartShardBusy_[k] = shardBusyTotals_[k].value();
    }
}

std::uint64_t
System::measuredReads() const
{
    return device_->numReads() - measureStartReads_;
}

std::uint64_t
System::measuredWrites() const
{
    return device_->numWrites() - measureStartWrites_;
}

} // namespace fsencr
