/**
 * @file
 * The full simulated machine: cores + TLBs + cache hierarchy + secure
 * memory controller + PCM device + kernel + NVM filesystem, assembled
 * for one of the four evaluated schemes (Section V):
 *
 *  - ext4-dax, no encryption
 *  - baseline security (memory encryption + Merkle tree)
 *  - FsEncr (baseline + hardware filesystem encryption)
 *  - software encryption (eCryptfs-style stacked fs)
 *
 * Workloads drive the machine through load/store/clwb/fence plus the
 * kernel syscall surface; time is a single accumulated clock (in-order
 * latency model, see DESIGN.md §4).
 */

#ifndef FSENCR_SIM_SYSTEM_HH
#define FSENCR_SIM_SYSTEM_HH

#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "fs/nvmfs.hh"
#include "fsenc/mc_router.hh"
#include "mem/backing_store.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "os/kernel.hh"
#include "swenc/sw_encryption.hh"

namespace fsencr {

/** The machine. */
class System : public WritebackSink
{
  public:
    explicit System(const SimConfig &cfg);
    ~System() override = default;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /// @name CPU operations (the workload-facing surface)
    /// @{

    /** Load size bytes at vaddr into buf. */
    void load(unsigned core, Addr vaddr, void *buf, std::size_t size);

    /** Store size bytes from buf at vaddr. */
    void store(unsigned core, Addr vaddr, const void *buf,
               std::size_t size);

    /** Typed helpers. The fast-forward probe sits here so a
     *  line-contained typed access in an L1-hit run compiles down to a
     *  handful of instructions at the call site. */
    template <typename T>
    T
    read(unsigned core, Addr vaddr)
    {
        static_assert(sizeof(T) <= blockSize,
                      "typed accesses are at most one line");
        T v;
        if (ffEnabled_ &&
            ffTry(core, vaddr, false, &v, sizeof(T))) [[likely]]
            return v;
        load(core, vaddr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(unsigned core, Addr vaddr, const T &v)
    {
        static_assert(sizeof(T) <= blockSize,
                      "typed accesses are at most one line");
        if (ffEnabled_ &&
            ffTry(core, vaddr, true, const_cast<T *>(&v),
                  sizeof(T))) [[likely]]
            return;
        store(core, vaddr, &v, sizeof(T));
    }

    /** Cache-line writeback (clwb) of the line containing vaddr. */
    void clwb(unsigned core, Addr vaddr);

    /** Store fence (orders prior clwbs; small fixed cost). */
    void fence(unsigned core);

    /** pmem_persist: clwb every line of [vaddr, vaddr+len) + fence. */
    void persist(unsigned core, Addr vaddr, std::size_t len);

    /** Model non-memory compute: advance time by CPU cycles. */
    void tick(unsigned core, Cycles cycles);

    /// @}

    /// @name Process and syscall surface
    /// @{
    std::uint32_t addUser(const std::string &name, std::uint32_t uid,
                          std::uint32_t gid,
                          const std::string &passphrase);
    std::uint32_t createProcess(std::uint32_t uid);
    void runOnCore(unsigned core, std::uint32_t pid);

    int creat(unsigned core, const std::string &path,
              std::uint16_t mode, OpenFlags flags,
              const std::string &passphrase);
    int open(unsigned core, const std::string &path, OpenFlags flags,
             const std::string &passphrase);
    void closeFd(unsigned core, int fd);
    void ftruncate(unsigned core, int fd, std::uint64_t size);
    Addr mmapFile(unsigned core, int fd, std::uint64_t length);
    Addr mmapAnon(unsigned core, std::uint64_t length);
    void unlink(unsigned core, const std::string &path);
    void chmod(unsigned core, const std::string &path,
               std::uint16_t mode);

    /** read()/write() syscall path (kernel copies through the memory
     *  system at line granularity). */
    void fileRead(unsigned core, int fd, std::uint64_t offset,
                  void *buf, std::size_t len);
    void fileWrite(unsigned core, int fd, std::uint64_t offset,
                   const void *buf, std::size_t len);

    /** Kernel-mediated whole-file copy (Section VI). */
    void copyFile(unsigned core, const std::string &src,
                  const std::string &dst,
                  const std::string &passphrase);

    /** fsync(2): push the file's cached dirty lines to the
     *  persistence domain. */
    void fsync(unsigned core, int fd);
    /// @}

    /// @name Lifecycle
    /// @{
    void provisionAdmin(const std::string &passphrase);
    void bootLogin(const std::string &passphrase);

    /** Power loss: volatile state (caches, TLBs, metadata cache,
     *  counters, OTT, page caches) vanishes. */
    void crash();

    /** What a System::recover() pass concluded (graceful
     *  degradation: per-file blast radius instead of all-or-nothing;
     *  see docs/ARCHITECTURE.md, "Fault model & recovery semantics"). */
    struct RecoveryOutcome
    {
        /** The mount is usable: clean files are accessible even if
         *  some lines/files were quarantined. */
        bool usable = false;
        /** The regenerated Merkle root matched on-chip state. */
        bool metadataClean = true;
        /** Metadata leaves that failed the Merkle check. */
        std::uint64_t tamperedLeaves = 0;
        std::uint64_t linesExamined = 0;
        std::uint64_t probes = 0;
        std::uint64_t probeFailures = 0;
        /** Data lines walled off (metadata casualties + probe/key
         *  failures). */
        std::uint64_t quarantinedLines = 0;
        /** Paths of files marked unreadable, sorted. */
        std::vector<std::string> damagedFiles;
        /** Quarantined lines not covered by any file (free pages /
        *   anonymous memory). */
        std::uint64_t orphanLines = 0;
    };

    /**
     * Reboot recovery: Merkle regenerate+verify, Osiris counter
     * recovery of every persisted line, architectural-state resync
     * from the decrypted device image.
     *
     * Failures degrade gracefully: tampered counter blocks and
     * unrecoverable lines are quarantined, only the files they cover
     * are marked unreadable, and the mount stays usable. Details land
     * in lastRecovery().
     *
     * @return true iff the mount is usable (possibly with quarantined
     *         files); false only for non-localizable damage
     */
    [[nodiscard]] bool recover();

    /** Details of the most recent recover() call. */
    const RecoveryOutcome &lastRecovery() const { return lastRecovery_; }

    /** Orderly shutdown: flush caches and metadata. */
    void shutdown();

    /**
     * Move the donor's NVM module (and its filesystem) into this
     * machine (Section VI): the donor is shut down, its security
     * capsule travels through the authorized channel, the module is
     * authenticated against the transported Merkle root, and this
     * machine's architectural view is resynchronized by decryption.
     *
     * Users must be re-registered and files re-opened with their
     * passphrases on the new machine.
     *
     * @return true iff the module authenticated
     */
    [[nodiscard]] bool migrateFrom(System &donor);

    /**
     * Attach a fault injector to the persist path and the system
     * clock (nullptr detaches). With none attached, timing and NVM
     * traffic are bit-identical to a build without fault support.
     */
    void setFaultInjector(FaultInjector *injector);
    /// @}

    /// @name Introspection
    /// @{

    /** Current time. Ticks of an open fast-forward run and of the
     *  shards' unreconciled epoch clocks are folded in arithmetically,
     *  so the value is exact without a flush. */
    Tick
    now() const
    {
        return now_ + ffPendingTicks() + shardPendingTicks();
    }
    const SimConfig &config() const { return cfg_; }
    const PhysLayout &layout() const { return layout_; }
    NvmDevice &device() { return *device_; }
    /** Shard 0 of the datapath — the whole controller at the default
     *  `--mc-shards 1`. Sharded tools address shards explicitly
     *  through router(). */
    SecureMemoryController &mc() { return mc_->shard(0); }
    /** The sharded datapath front (N == 1 included). */
    McRouter &router() { return *mc_; }
    /** The datapath as the kernel sees it: the abstract interface. */
    SecureDatapath &datapath() { return *mc_; }
    Kernel &kernel() { return *kernel_; }
    NvmFilesystem &fs() { return *fs_; }
    CacheHierarchy &caches() { return *caches_; }
    SwEncLayer *swenc() { return swenc_.get(); }
    Core &core(unsigned i) { return *cores_.at(i); }
    BackingStore &archMem() { return archMem_; }

    /** Stat tree root. Closes any open fast-forward run and
     *  reconciles the shard clocks first (cached-flag no-ops in the
     *  exact/unsharded model) so scalars read through the tree —
     *  loads, stores, cache hits, shard ticks — are exact at any
     *  time, matching now()'s always-exact semantics. */
    stats::StatGroup &
    statGroup()
    {
        ffFlush();
        reconcileShards();
        return statGroup_;
    }

    /** Dump the stat tree. Closes any open fast-forward run first so
     *  every scalar (hits, loads, attribution) is up to date. */
    void dumpStats(std::ostream &os);

    /** Start a measurement interval (after warmup/setup). */
    void beginMeasurement();
    Tick measuredTicks() const { return now() - measureStart_; }
    std::uint64_t measuredReads() const;
    std::uint64_t measuredWrites() const;
    /// @}

    /// @name Observability (see docs/ARCHITECTURE.md, "Observability")
    /// @{

    /** Attach an event tracer (nullptr disables); forwarded to the
     *  memory controller and its sub-components. Observation only:
     *  the clock is never affected. */
    void setTracer(trace::Tracer *tracer);
    trace::Tracer *tracer() const { return tracer_; }

    /**
     * Attach a metrics registry (nullptr disables): the system stat
     * tree becomes its snapshot root and the controller's labeled
     * hot-spot probes (ott.lookup{set}, merkle.verify{level},
     * metacache.access{kind}, mc.read/write{dax}, file.bytes{file})
     * light up. Observation only: the clock is never affected.
     */
    void setMetrics(metrics::Registry *metrics);
    metrics::Registry *metrics() const { return metrics_; }

    /** Attach an interval sampler fed from every clock advance
     *  (nullptr detaches). The sampler must snapshot the same
     *  registry passed to setMetrics(). */
    void
    setSampler(metrics::Sampler *sampler)
    {
        ffFlush();
        reconcileShards();
        sampler_ = sampler;
        advanceHooks_ = injector_ != nullptr || sampler_ != nullptr;
    }

    /**
     * Advance the clock, attributing the ticks to one component.
     * Every clock advance in the system goes through here (or through
     * advanceMc()), so the per-component sums reproduce total ticks
     * exactly. With neither a sampler nor a fault injector attached
     * the hook tail is a single cached-flag test, so disabled
     * observability costs zero work here.
     */
    void
    advance(unsigned component, Tick ticks)
    {
        now_ += ticks;
        attrTicks_[component] += ticks;
        if (advanceHooks_)
            advanceHooks();
    }

    /** Advance by a completed memory request: the clock moves by
     *  completion.latency() and its per-hop breakdown (which sums
     *  exactly to that latency) folds into the attribution. */
    void
    advanceMc(const Completion &completion)
    {
        for (unsigned c = 0; c < trace::NumComponents; ++c)
            attrTicks_[c] += completion.breakdown.ticks[c];
        now_ += completion.latency();
        if (advanceHooks_)
            advanceHooks();
    }

    /**
     * Submit one demand request to the datapath and charge its
     * latency to the system clock.
     *
     * Unsharded (`--mc-shards 1`): exactly submit + advanceMc, bit
     * for bit the legacy path. Sharded: the request is issued on its
     * owner shard's epoch-local clock (now_ + that shard's
     * accumulated busy time), the completion extends only that
     * shard's clock, and every shardEpochDepth x shardCount
     * submissions — or any
     * hard boundary — reconcileShards() merges the per-shard clocks
     * deterministically: the global clock advances by the critical
     * (max-busy) shard's epoch, modeling the shards draining their
     * epochs concurrently. Submission order is deterministic, so the
     * merged clock is too (same seed => byte-identical reports at
     * any fixed shard count).
     */
    void
    submitMc(const MemRequest &req)
    {
        if (!shardMode_) {
            advanceMc(mc_->submit(req, now_));
            return;
        }
        unsigned k = mc_->shardOf(req.paddr);
        Completion c = mc_->submit(req, now_ + shBusy_[k]);
        shBusy_[k] += c.latency();
        for (unsigned i = 0; i < trace::NumComponents; ++i)
            shBd_[k].ticks[i] += c.breakdown.ticks[i];
        if (++shEpochOps_ >= shEpochLimit_)
            reconcileShards();
    }

    /** Submit a background (posted) request: bank occupancy is
     *  modeled on the owner shard's epoch clock, the completion never
     *  lands on the system clock. */
    void
    submitMcBackground(const MemRequest &req)
    {
        if (!shardMode_) {
            mc_->submit(req, now_);
            return;
        }
        mc_->submit(req, now_ + shBusy_[mc_->shardOf(req.paddr)]);
    }

    /**
     * Epoch boundary of the sharded clock model: fold the critical
     * shard's breakdown into the attribution, advance the global
     * clock by its busy time (the other shards' epochs ran under it),
     * book the serial/visible tick aggregates, and zero the epoch
     * state. No-op when unsharded or nothing is pending. Hard
     * boundaries (crash, recovery, shutdown, migration, measurement
     * marks, stat reads, observer attach) call this so cross-shard
     * state is always read on a reconciled clock.
     */
    void reconcileShards();

    /** Busy ticks of the open shard epoch not yet folded into now_
     *  (the critical shard's accumulated time). */
    Tick
    shardPendingTicks() const
    {
        if (!shardMode_)
            return 0;
        Tick m = 0;
        for (Tick t : shBusy_)
            if (t > m)
                m = t;
        return m;
    }

    /// @name Sharded-datapath measurement (bench `shards` sections).
    /// All reconcile first, so the values are exact.
    /// @{
    std::uint64_t
    measuredShardSerialTicks()
    {
        reconcileShards();
        return shardSerialTicks_.value() - measureStartShardSerial_;
    }
    std::uint64_t
    measuredShardVisibleTicks()
    {
        reconcileShards();
        return shardVisibleTicks_.value() - measureStartShardVisible_;
    }
    std::uint64_t
    measuredShardBusyTicks(unsigned k)
    {
        reconcileShards();
        return shardBusyTotals_.at(k).value() -
               measureStartShardBusy_.at(k);
    }
    /// @}

    /** Cumulative per-component attribution since construction. */
    trace::Breakdown attribution() const;

    /** Attribution within the measurement window; its total() equals
     *  measuredTicks() exactly. */
    trace::Breakdown measuredAttribution() const;

    /// @}

    /** WritebackSink: dirty L3 victims reach the controller. */
    void writebackLine(Addr paddr) override;

  private:
    /** One line-contained access (functional + timing). */
    void accessOnce(unsigned core, Addr vaddr, bool is_write, void *buf,
                    std::size_t size);

    /** Physical-address access used by the kernel IO path. */
    void accessPhys(unsigned core, Addr paddr, bool is_write, void *buf,
                    std::size_t size);

    /** Is the line containing this device address DAX-encrypted? */
    bool lineIsDax(Addr line_addr) const;

    /** eADR semantics are in effect: configured, and not the
     *  software-encryption scheme (whose at-rest seal is applied at
     *  writeback time — flushing raw cache lines at crash would land
     *  plaintext on the device, so swenc keeps the ADR boundary). */
    bool
    eadrActive() const
    {
        return cfg_.isEadr() && !swenc_;
    }

    /** Rebuild the architectural image by decrypting every line ever
     *  written through the controller (reboot / migration). */
    void resyncArchFromDevice();

    /** Software-encryption at-rest seal: XOR the line with the file's
     *  deterministic eCryptfs-style pad (self-inverse). No-op for
     *  frames that are not software-encrypted. */
    void applySwencSeal(Addr line_addr, std::uint8_t *buf);

    /** clwb by physical address (kernel paths). */
    void clwbPhys(unsigned core, Addr paddr);

    /** Give the attached injector a look at the clock (out of line so
     *  the header needs no FaultInjector definition). */
    void faultTick();

    /** Out-of-line hook tail of advance()/advanceMc(): fault injector
     *  and sampler, reached only when advanceHooks_ is set. */
    void advanceHooks();

    /** Fold the open shard epoch's critical-shard breakdown into
     *  @p bd (no-op unsharded); see attribution(). */
    void foldPendingShardAttr(trace::Breakdown &bd) const;

    /// @name Fast-forward mode (opt-in via SimConfig::fastForward; see
    /// docs/ARCHITECTURE.md, "Fast-forward & trace replay").
    ///
    /// A *run* is a stretch of consecutive load/store accesses by one
    /// core that hit the TLB and its private L1. Inside a run nothing
    /// observable happens between accesses (an L1 hit touches no other
    /// cache level and moves no NVM traffic), so the per-access LRU
    /// touches, hit counters, load/store counters and CacheAccess
    /// ticks are accumulated in per-core FfRun state and applied in
    /// one batch, byte-identical to the exact model. Any access that
    /// leaves the fast path — TLB or L1 miss, clwb, fence, syscall,
    /// crash, attach/detach of observers — first flushes every open
    /// run (ffFlush) and then takes the exact path, so ordering
    /// against misses, evictions, back-invalidations and device timing
    /// is preserved.
    /// @{

    struct FfLineEntry;
    struct FfLog;

    /** Open-run state of one core. The hot path maintains only the
     *  loads/stores counters; the per-line and per-page batch sizes
     *  are derived at segment close from the *StartAcc marks, so one
     *  fast access is a compare, an increment and a memcpy. */
    struct FfRun
    {
        /** Virtual line of the last fast access (~0: no open line). */
        Addr vline = ~Addr(0);
        /** Virtual page of the cached translation (~0: none). */
        Addr vpn = ~Addr(0);
        /** Cached physical frame (page-aligned, DF-bit included). */
        Addr pframe = 0;
        /** Host pointer of the line's architectural-image bytes,
         *  biased by −vline so the hot path turns a vaddr into its
         *  host pointer with a single add. */
        std::intptr_t hostBias = 0;
        /** Host pointer to the page's architectural image: line
         *  changes inside the page re-derive hostLine without
         *  another backing-store page lookup. */
        std::uint8_t *hostPage = nullptr;
        /** Per-core structures, seeded by ffResetRun() so segment
         *  changes skip the indexed accessors. The pointees live as
         *  long as the System (crash/recovery resets their contents
         *  in place), so the pointers never dangle. */
        SetAssocCache *l1 = nullptr;
        Tlb *tlb = nullptr;
        FfLineEntry *lcache = nullptr;
        FfLog *log = nullptr;
        /** Copy of ffEpoch_ at reset (the epoch this run's line-cache
         *  entries are stamped with). */
        std::uint64_t epoch = 0;
        /** TLB entry backing the run. */
        TlbEntry *tlbEntry = nullptr;
        /** L1 line backing the run. */
        SetAssocCache::Line *line = nullptr;
        /** Batched accesses since the last flush (also the pending
         *  per-core load/store counter increments). Striped by low
         *  address bits: a memory increment forwards its store to the
         *  next same-address load at ~5 cycle latency, so a single
         *  counter would serialize the whole fast path — striping
         *  lets sequential accesses rotate across independent RMW
         *  chains. The stripes are disjoint by kind — acc counts
         *  loads, st counts stores — so each access is exactly one
         *  increment; totals are sums over both. */
        std::array<std::uint64_t, 4> acc{};
        std::array<std::uint64_t, 2> st{};

        std::uint64_t accesses() const
        {
            return acc[0] + acc[1] + acc[2] + acc[3] + st[0] + st[1];
        }
        std::uint64_t stores() const { return st[0] + st[1]; }
        /** Segment mark: value of accesses() when the current line
         *  segment opened. TLB batches close per line segment as
         *  well, so the one mark serves both. */
        std::uint64_t lineStartAcc = 0;
        /** True iff the current line segment contains a store (the
         *  segment's dirty mark). A plain flag store per write is
         *  cheaper than comparing store-counter deltas at segment
         *  close. */
        bool segDirty = false;

        /** Small direct-mapped cache of recent page translations, so
         *  a run hopping between a few hot pages skips the TLB scan.
         *  The cached entry pointers stay valid for the whole flush
         *  epoch: a TLB insert or invalidation only happens on the
         *  exact path, which flushes (and so resets this) first. */
        static constexpr unsigned tcacheWays = 8;
        std::array<Addr, tcacheWays> tcVpn;
        std::array<TlbEntry *, tcacheWays> tcEntry{};
        std::array<Addr, tcacheWays> tcPframe{};
        std::array<std::uint8_t *, tcacheWays> tcHostPage{};

        FfRun() { tcVpn.fill(~Addr(0)); }
    };

    /** One fully-resolved line state in the per-core line cache: a
     *  re-open on a recently-seen line skips translation and the L1
     *  probe entirely. Entries are epoch-stamped — ffFlush() bumps
     *  ffEpoch_, and every exact-path mutation flushes first, so a
     *  hit can never be stale (see ffSwitchTo() for the argument). */
    struct FfLineEntry
    {
        Addr vline = ~Addr(0);
        std::uint64_t epoch = 0;
        SetAssocCache::Line *line = nullptr;
        /** Host pointer of the line, biased by −vline (see
         *  FfRun::hostBias). */
        std::intptr_t hostBias = 0;
        TlbEntry *tlbEntry = nullptr;
        // vpn, pframe and the host page base are re-resolved through
        // the run's translation cache on a page change; keeping the
        // entry at 40 bytes keeps the whole table host-cache-resident,
        // which is what makes the switch path fast.
    };

    /** Line-cache geometry: direct-mapped, indexed by line number.
     *  Matches the modeled L1's line count — contiguous L1-resident
     *  spans map to contiguous slots with no conflicts. */
    static constexpr std::size_t ffLineCacheSize = 512;

    /** One deferred hit batch: a closed line segment's L1 and TLB
     *  credits. Appending three plain stores here instead of running
     *  the four read-modify-writes of two ffCredit() calls keeps the
     *  switch path short; the log is drained in order, so the final
     *  LRU/hit state is identical (consecutive batches against the
     *  same entry compose associatively). */
    struct FfCredit
    {
        SetAssocCache::Line *line;
        TlbEntry *tlbEntry;
        std::uint64_t n;
        bool dirty;
    };

    /** Sized so the log (256 × 32 B = 8 KB) stays L1-resident on the
     *  host: a larger log cycles its whole footprint through the
     *  cache between drains, evicting the hot run/line-cache state
     *  the per-access path depends on. */
    static constexpr std::size_t ffLogCapacity = 256;

    /** Per-core deferred-credit log (fixed buffer, cursor reset on
     *  drain). */
    struct FfLog
    {
        std::vector<FfCredit> buf;
        std::size_t size = 0;
    };

    /** Append the closed line segment of @p run to core @p core_id's
     *  log, draining first if full. Caller updates the marks. */
    void
    ffAppend(unsigned core_id, FfRun &run, std::uint64_t acc)
    {
        FfLog &log = *run.log;
        if (log.size == ffLogCapacity)
            ffDrainLog(core_id);
        FfCredit &r = log.buf[log.size++];
        r.line = run.line;
        r.tlbEntry = run.tlbEntry;
        r.n = acc - run.lineStartAcc;
        r.dirty = run.segDirty;
    }

    /** Apply core @p core_id's logged credits in program order. */
    void ffDrainLog(unsigned core_id);

    /** Reset core @p core_id's run to empty and seed its per-core
     *  pointers (L1, TLB, line cache, credit log) and epoch. */
    void ffResetRun(unsigned core_id);

    /**
     * Switch the run to a line-cache entry: close the finished line
     * (and, when the page changes, page) batch exactly as
     * ffOpenRun() would, then adopt the cached pointers. Valid
     * because an epoch-matching entry was created by a successful
     * ffOpenRun() on this core with no intervening flush: the TLB
     * entry, L1 line and backing-store page it references cannot
     * have moved (every path that would — insert, eviction,
     * invalidation, context switch — flushes first, bumping the
     * epoch).
     */
    void ffSwitchTo(unsigned core_id, FfRun &run,
                    const FfLineEntry &e);

    /** Line transition: consult the line cache, falling back to a
     *  full ffOpenRun(). Out of line so ffTry() stays small enough to
     *  inline at every read<T>/write<T> call site — inlining the
     *  cache probe here measurably regresses the per-access path
     *  (the extra live values push the caller's induction variables
     *  onto the stack). */
    bool ffSwitch(FfRun &run, unsigned core_id, Addr vaddr,
                  Addr vline);

    /**
     * Try to service one access on the fast path. Accesses that
     * cross a line boundary are rejected (the caller's load()/store()
     * loop splits them into line-contained pieces).
     * @return true iff handled (TLB + L1 hit); false leaves zero side
     *         effects and the caller must take the exact path
     */
    bool
    ffTry(unsigned core_id, Addr vaddr, bool is_write, void *buf,
          std::size_t size)
    {
        FfRun &run = ffRuns_[core_id];
        // One unsigned compare covers both "the open line" and "fits
        // within it": below the line start it wraps to a huge value,
        // past the last admissible offset it exceeds the bound. The
        // sentinel vline (~0) can never match either.
        if (vaddr - run.vline > blockSize - size) [[unlikely]] {
            if (blockOffset(vaddr) + size > blockSize)
                return false; // line-crossing: caller splits
            if (!ffSwitch(run, core_id, vaddr, blockAlign(vaddr)))
                return false;
        }
        // restrict: the architectural image never aliases run/system
        // state, so the compiler may keep run fields in registers
        // across the copy.
        std::uint8_t *__restrict host = reinterpret_cast<std::uint8_t *>(
            run.hostBias + static_cast<std::intptr_t>(vaddr));
        if (is_write) {
            ++run.st[(vaddr >> 3) & 1];
            run.segDirty = true;
            std::memcpy(host, buf, size);
        } else {
            ++run.acc[(vaddr >> 3) & 3];
            std::memcpy(buf, host, size);
        }
        return true;
    }

    /** Line/page transition: close the finished batches, revalidate
     *  the translation and probe the L1. On a miss flushes everything
     *  and reports false (the access must go the exact way). */
    bool ffOpenRun(FfRun &run, unsigned core_id, Addr vaddr,
                   Addr vline);

    /** Close every open run: credit TLB/L1 batches, apply load/store
     *  counters, bulk-advance the clock and fire the batched
     *  sampler/injector hooks. No-op when nothing is pending. */
    void ffFlush();

    /** Clock ticks of the open runs, not yet folded into now_. */
    Tick
    ffPendingTicks() const
    {
        if (!ffActive_)
            return 0;
        std::uint64_t n = 0;
        for (const FfRun &run : ffRuns_)
            n += run.accesses();
        return n * ffL1Ticks_;
    }
    /// @}

    /** Map the quarantine set onto files: mark covered inodes
     *  damaged, collect their paths and count orphan lines. */
    void markDamagedFiles(RecoveryOutcome &out);

    SimConfig cfg_;
    PhysLayout layout_;
    Rng rng_;
    std::unique_ptr<NvmDevice> device_;
    std::unique_ptr<McRouter> mc_;
    std::unique_ptr<NvmFilesystem> fs_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<CacheHierarchy> caches_;
    std::unique_ptr<SwEncLayer> swenc_;
    /** Expanded FEK schedules for the software-encryption seal path
     *  (host-side only; charges no modeled ticks). */
    crypto::AesContextCache swencAesCache_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** Plaintext architectural image (what the CPU sees). */
    BackingStore archMem_;

    /** Dirty lines dropped by the last crash (rolled back on
     *  recovery: the persisted image supersedes them). */
    std::vector<Addr> lostDirtyLines_;

    /** Optional fault injector (owned by the harness). */
    FaultInjector *injector_ = nullptr;

    /** Details of the most recent recover(). */
    RecoveryOutcome lastRecovery_;

    /** Software-encryption scheme: pages clwb'ed since the last
     *  fence; the fence turns them into msync calls. */
    std::vector<Addr> swencPendingSync_;

    Tick now_ = 0;
    Tick measureStart_ = 0;
    std::uint64_t measureStartReads_ = 0;
    std::uint64_t measureStartWrites_ = 0;

    /// @name Sharded-clock epoch state (`--mc-shards > 1` only).
    /// @{

    /** Sharded mode is on (mcShards > 1); false keeps every shard
     *  hook a cached-flag no-op and the clock bit-identical. */
    bool shardMode_ = false;
    /** Per-shard queue depth the epoch models: each shard drains up
     *  to this many submissions concurrently with its peers before
     *  the clocks merge, so the epoch length (depth x shard count)
     *  spans enough pages that page-interleaved streams actually
     *  overlap. Constant per shard => skew stays bounded as the
     *  shard count grows. */
    static constexpr unsigned shardEpochDepth = 4096;
    /** Submissions per epoch before a reconcile (depth x shards);
     *  set at construction, 0 while unsharded. */
    unsigned shEpochLimit_ = 0;
    unsigned shEpochOps_ = 0;
    /** Per-shard busy ticks accumulated this epoch. */
    std::vector<Tick> shBusy_;
    /** Per-shard attribution accumulated this epoch (each sums to
     *  its shard's shBusy_ entry). */
    std::vector<trace::Breakdown> shBd_;
    /** Registered only in shard mode, so unsharded stat dumps stay
     *  byte-identical. */
    std::unique_ptr<stats::StatGroup> shardGroup_;
    /** Sum of all shards' busy ticks (the serial datapath time). */
    stats::Scalar shardSerialTicks_;
    /** Sum of the critical shard's ticks per epoch (the datapath
     *  time the machine actually saw); serial/visible is the
     *  measured sharding speedup. */
    stats::Scalar shardVisibleTicks_;
    stats::Scalar shardReconciles_;
    /** Cumulative busy ticks per shard (deque: addScalar holds
     *  references). */
    std::deque<stats::Scalar> shardBusyTotals_;
    std::uint64_t measureStartShardSerial_ = 0;
    std::uint64_t measureStartShardVisible_ = 0;
    std::vector<std::uint64_t> measureStartShardBusy_;
    /// @}

    trace::Tracer *tracer_ = nullptr;
    metrics::Registry *metrics_ = nullptr;
    metrics::Sampler *sampler_ = nullptr;

    /** Cached (injector_ || sampler_) so a disabled observer costs
     *  zero work per advance(). */
    bool advanceHooks_ = false;

    /** Fast-forward enabled: configured on, and no exact-mode-forcing
     *  attachment (software-encryption layer or fault injector, both
     *  of which observe every individual access/tick). */
    bool ffEnabled_ = false;
    /** Ticks one L1 hit charges (l1.latency * cyclePeriod). */
    Tick ffL1Ticks_ = 0;
    /** Some run state (pointers/counters) is cached and a future
     *  ffFlush() must reset it; false makes ffFlush() a cheap no-op. */
    bool ffActive_ = false;
    /** Compile-time bound on cores the fast path supports; configs
     *  beyond it fall back to the exact model. Keeping the run array
     *  inline (not heap-allocated) saves the per-access vector
     *  data-pointer load — one level off the hot dependency chain. */
    static constexpr unsigned ffMaxCores = 16;
    /** Per-core open-run state (first cfg_.cpu.numCores entries). */
    std::array<FfRun, ffMaxCores> ffRuns_;
    /** Line-cache epoch: bumped by every non-trivial ffFlush(), which
     *  invalidates all FfLineEntry records at zero per-entry cost. */
    std::uint64_t ffEpoch_ = 1;
    /** Per-core direct-mapped line caches (see FfLineEntry). */
    std::vector<std::array<FfLineEntry, ffLineCacheSize>> ffLineCache_;
    /** Per-core deferred-credit logs (see FfCredit). */
    std::vector<FfLog> ffLogs_;

    stats::StatGroup statGroup_;
    stats::Scalar totalLoads_;
    stats::Scalar totalStores_;
    stats::Scalar crashes_;
    stats::Scalar recoveries_;

    /** System-level cycle attribution (every clock advance lands in
     *  exactly one slot). */
    stats::StatGroup attrGroup_{"attribution"};
    std::array<stats::Scalar, trace::NumComponents> attrTicks_;
    std::array<std::uint64_t, trace::NumComponents> measureStartAttr_{};
};

} // namespace fsencr

#endif // FSENCR_SIM_SYSTEM_HH
