/**
 * @file
 * The full simulated machine: cores + TLBs + cache hierarchy + secure
 * memory controller + PCM device + kernel + NVM filesystem, assembled
 * for one of the four evaluated schemes (Section V):
 *
 *  - ext4-dax, no encryption
 *  - baseline security (memory encryption + Merkle tree)
 *  - FsEncr (baseline + hardware filesystem encryption)
 *  - software encryption (eCryptfs-style stacked fs)
 *
 * Workloads drive the machine through load/store/clwb/fence plus the
 * kernel syscall surface; time is a single accumulated clock (in-order
 * latency model, see DESIGN.md §4).
 */

#ifndef FSENCR_SIM_SYSTEM_HH
#define FSENCR_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "fs/nvmfs.hh"
#include "fsenc/secure_memory_controller.hh"
#include "mem/backing_store.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "os/kernel.hh"
#include "swenc/sw_encryption.hh"

namespace fsencr {

/** The machine. */
class System : public WritebackSink
{
  public:
    explicit System(const SimConfig &cfg);
    ~System() override = default;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /// @name CPU operations (the workload-facing surface)
    /// @{

    /** Load size bytes at vaddr into buf. */
    void load(unsigned core, Addr vaddr, void *buf, std::size_t size);

    /** Store size bytes from buf at vaddr. */
    void store(unsigned core, Addr vaddr, const void *buf,
               std::size_t size);

    /** Typed helpers. */
    template <typename T>
    T
    read(unsigned core, Addr vaddr)
    {
        T v;
        load(core, vaddr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(unsigned core, Addr vaddr, const T &v)
    {
        store(core, vaddr, &v, sizeof(T));
    }

    /** Cache-line writeback (clwb) of the line containing vaddr. */
    void clwb(unsigned core, Addr vaddr);

    /** Store fence (orders prior clwbs; small fixed cost). */
    void fence(unsigned core);

    /** pmem_persist: clwb every line of [vaddr, vaddr+len) + fence. */
    void persist(unsigned core, Addr vaddr, std::size_t len);

    /** Model non-memory compute: advance time by CPU cycles. */
    void tick(unsigned core, Cycles cycles);

    /// @}

    /// @name Process and syscall surface
    /// @{
    std::uint32_t addUser(const std::string &name, std::uint32_t uid,
                          std::uint32_t gid,
                          const std::string &passphrase);
    std::uint32_t createProcess(std::uint32_t uid);
    void runOnCore(unsigned core, std::uint32_t pid);

    int creat(unsigned core, const std::string &path,
              std::uint16_t mode, OpenFlags flags,
              const std::string &passphrase);
    int open(unsigned core, const std::string &path, OpenFlags flags,
             const std::string &passphrase);

    /** @deprecated bool-flag shims; use the OpenFlags overloads. */
    /// @{
    [[deprecated("use the OpenFlags overload")]]
    int
    creat(unsigned core, const std::string &path, std::uint16_t mode,
          bool encrypted, const std::string &passphrase)
    {
        return creat(core, path, mode,
                     encrypted ? OpenFlags::Encrypted : OpenFlags::None,
                     passphrase);
    }
    [[deprecated("use the OpenFlags overload")]]
    int
    open(unsigned core, const std::string &path, bool writable,
         const std::string &passphrase)
    {
        return open(core, path,
                    writable ? OpenFlags::Write : OpenFlags::None,
                    passphrase);
    }
    /// @}
    void closeFd(unsigned core, int fd);
    void ftruncate(unsigned core, int fd, std::uint64_t size);
    Addr mmapFile(unsigned core, int fd, std::uint64_t length);
    Addr mmapAnon(unsigned core, std::uint64_t length);
    void unlink(unsigned core, const std::string &path);
    void chmod(unsigned core, const std::string &path,
               std::uint16_t mode);

    /** read()/write() syscall path (kernel copies through the memory
     *  system at line granularity). */
    void fileRead(unsigned core, int fd, std::uint64_t offset,
                  void *buf, std::size_t len);
    void fileWrite(unsigned core, int fd, std::uint64_t offset,
                   const void *buf, std::size_t len);

    /** Kernel-mediated whole-file copy (Section VI). */
    void copyFile(unsigned core, const std::string &src,
                  const std::string &dst,
                  const std::string &passphrase);

    /** fsync(2): push the file's cached dirty lines to the
     *  persistence domain. */
    void fsync(unsigned core, int fd);
    /// @}

    /// @name Lifecycle
    /// @{
    void provisionAdmin(const std::string &passphrase);
    void bootLogin(const std::string &passphrase);

    /** Power loss: volatile state (caches, TLBs, metadata cache,
     *  counters, OTT, page caches) vanishes. */
    void crash();

    /** What a System::recover() pass concluded (graceful
     *  degradation: per-file blast radius instead of all-or-nothing;
     *  see docs/ARCHITECTURE.md, "Fault model & recovery semantics"). */
    struct RecoveryOutcome
    {
        /** The mount is usable: clean files are accessible even if
         *  some lines/files were quarantined. */
        bool usable = false;
        /** The regenerated Merkle root matched on-chip state. */
        bool metadataClean = true;
        /** Metadata leaves that failed the Merkle check. */
        std::uint64_t tamperedLeaves = 0;
        std::uint64_t linesExamined = 0;
        std::uint64_t probes = 0;
        std::uint64_t probeFailures = 0;
        /** Data lines walled off (metadata casualties + probe/key
         *  failures). */
        std::uint64_t quarantinedLines = 0;
        /** Paths of files marked unreadable, sorted. */
        std::vector<std::string> damagedFiles;
        /** Quarantined lines not covered by any file (free pages /
        *   anonymous memory). */
        std::uint64_t orphanLines = 0;
    };

    /**
     * Reboot recovery: Merkle regenerate+verify, Osiris counter
     * recovery of every persisted line, architectural-state resync
     * from the decrypted device image.
     *
     * Failures degrade gracefully: tampered counter blocks and
     * unrecoverable lines are quarantined, only the files they cover
     * are marked unreadable, and the mount stays usable. Details land
     * in lastRecovery().
     *
     * @return true iff the mount is usable (possibly with quarantined
     *         files); false only for non-localizable damage
     */
    [[nodiscard]] bool recover();

    /** Details of the most recent recover() call. */
    const RecoveryOutcome &lastRecovery() const { return lastRecovery_; }

    /** Orderly shutdown: flush caches and metadata. */
    void shutdown();

    /**
     * Move the donor's NVM module (and its filesystem) into this
     * machine (Section VI): the donor is shut down, its security
     * capsule travels through the authorized channel, the module is
     * authenticated against the transported Merkle root, and this
     * machine's architectural view is resynchronized by decryption.
     *
     * Users must be re-registered and files re-opened with their
     * passphrases on the new machine.
     *
     * @return true iff the module authenticated
     */
    [[nodiscard]] bool migrateFrom(System &donor);

    /**
     * Attach a fault injector to the persist path and the system
     * clock (nullptr detaches). With none attached, timing and NVM
     * traffic are bit-identical to a build without fault support.
     */
    void setFaultInjector(FaultInjector *injector);
    /// @}

    /// @name Introspection
    /// @{
    Tick now() const { return now_; }
    const SimConfig &config() const { return cfg_; }
    const PhysLayout &layout() const { return layout_; }
    NvmDevice &device() { return *device_; }
    SecureMemoryController &mc() { return *mc_; }
    Kernel &kernel() { return *kernel_; }
    NvmFilesystem &fs() { return *fs_; }
    CacheHierarchy &caches() { return *caches_; }
    SwEncLayer *swenc() { return swenc_.get(); }
    Core &core(unsigned i) { return *cores_.at(i); }
    BackingStore &archMem() { return archMem_; }

    stats::StatGroup &statGroup() { return statGroup_; }
    void dumpStats(std::ostream &os) const;

    /** Start a measurement interval (after warmup/setup). */
    void beginMeasurement();
    Tick measuredTicks() const { return now_ - measureStart_; }
    std::uint64_t measuredReads() const;
    std::uint64_t measuredWrites() const;
    /// @}

    /// @name Observability (see docs/ARCHITECTURE.md, "Observability")
    /// @{

    /** Attach an event tracer (nullptr disables); forwarded to the
     *  memory controller and its sub-components. Observation only:
     *  the clock is never affected. */
    void setTracer(trace::Tracer *tracer);
    trace::Tracer *tracer() const { return tracer_; }

    /**
     * Attach a metrics registry (nullptr disables): the system stat
     * tree becomes its snapshot root and the controller's labeled
     * hot-spot probes (ott.lookup{set}, merkle.verify{level},
     * metacache.access{kind}, mc.read/write{dax}, file.bytes{file})
     * light up. Observation only: the clock is never affected.
     */
    void setMetrics(metrics::Registry *metrics);
    metrics::Registry *metrics() const { return metrics_; }

    /** Attach an interval sampler fed from every clock advance
     *  (nullptr detaches). The sampler must snapshot the same
     *  registry passed to setMetrics(). */
    void setSampler(metrics::Sampler *sampler) { sampler_ = sampler; }

    /**
     * Advance the clock, attributing the ticks to one component.
     * Every clock advance in the system goes through here (or through
     * advanceMc()), so the per-component sums reproduce total ticks
     * exactly.
     */
    void
    advance(unsigned component, Tick ticks)
    {
        now_ += ticks;
        attrTicks_[component] += ticks;
        if (injector_)
            faultTick();
        if (sampler_)
            sampler_->onAdvance(now_);
    }

    /** Advance by a memory-controller request latency, splitting it
     *  per the controller's own attribution of that request. */
    void advanceMc(Tick latency);

    /** Advance by a completed memory request: the clock moves by
     *  completion.latency() and its per-hop breakdown (which sums
     *  exactly to that latency) folds into the attribution. */
    void
    advanceMc(const Completion &completion)
    {
        for (unsigned c = 0; c < trace::NumComponents; ++c)
            attrTicks_[c] += completion.breakdown.ticks[c];
        now_ += completion.latency();
        if (injector_)
            faultTick();
        if (sampler_)
            sampler_->onAdvance(now_);
    }

    /** Cumulative per-component attribution since construction. */
    trace::Breakdown attribution() const;

    /** Attribution within the measurement window; its total() equals
     *  measuredTicks() exactly. */
    trace::Breakdown measuredAttribution() const;

    /// @}

    /** WritebackSink: dirty L3 victims reach the controller. */
    void writebackLine(Addr paddr) override;

  private:
    /** One line-contained access (functional + timing). */
    void accessOnce(unsigned core, Addr vaddr, bool is_write, void *buf,
                    std::size_t size);

    /** Physical-address access used by the kernel IO path. */
    void accessPhys(unsigned core, Addr paddr, bool is_write, void *buf,
                    std::size_t size);

    /** Is the line containing this device address DAX-encrypted? */
    bool lineIsDax(Addr line_addr) const;

    /** Rebuild the architectural image by decrypting every line ever
     *  written through the controller (reboot / migration). */
    void resyncArchFromDevice();

    /** Software-encryption at-rest seal: XOR the line with the file's
     *  deterministic eCryptfs-style pad (self-inverse). No-op for
     *  frames that are not software-encrypted. */
    void applySwencSeal(Addr line_addr, std::uint8_t *buf);

    /** clwb by physical address (kernel paths). */
    void clwbPhys(unsigned core, Addr paddr);

    /** Give the attached injector a look at the clock (out of line so
     *  the header needs no FaultInjector definition). */
    void faultTick();

    /** Map the quarantine set onto files: mark covered inodes
     *  damaged, collect their paths and count orphan lines. */
    void markDamagedFiles(RecoveryOutcome &out);

    SimConfig cfg_;
    PhysLayout layout_;
    Rng rng_;
    std::unique_ptr<NvmDevice> device_;
    std::unique_ptr<SecureMemoryController> mc_;
    std::unique_ptr<NvmFilesystem> fs_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<CacheHierarchy> caches_;
    std::unique_ptr<SwEncLayer> swenc_;
    /** Expanded FEK schedules for the software-encryption seal path
     *  (host-side only; charges no modeled ticks). */
    crypto::AesContextCache swencAesCache_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** Plaintext architectural image (what the CPU sees). */
    BackingStore archMem_;

    /** Dirty lines dropped by the last crash (rolled back on
     *  recovery: the persisted image supersedes them). */
    std::vector<Addr> lostDirtyLines_;

    /** Optional fault injector (owned by the harness). */
    FaultInjector *injector_ = nullptr;

    /** Details of the most recent recover(). */
    RecoveryOutcome lastRecovery_;

    /** Software-encryption scheme: pages clwb'ed since the last
     *  fence; the fence turns them into msync calls. */
    std::vector<Addr> swencPendingSync_;

    Tick now_ = 0;
    Tick measureStart_ = 0;
    std::uint64_t measureStartReads_ = 0;
    std::uint64_t measureStartWrites_ = 0;

    trace::Tracer *tracer_ = nullptr;
    metrics::Registry *metrics_ = nullptr;
    metrics::Sampler *sampler_ = nullptr;

    stats::StatGroup statGroup_;
    stats::Scalar totalLoads_;
    stats::Scalar totalStores_;
    stats::Scalar crashes_;
    stats::Scalar recoveries_;

    /** System-level cycle attribution (every clock advance lands in
     *  exactly one slot). */
    stats::StatGroup attrGroup_{"attribution"};
    std::array<stats::Scalar, trace::NumComponents> attrTicks_;
    std::array<std::uint64_t, trace::NumComponents> measureStartAttr_{};
};

} // namespace fsencr

#endif // FSENCR_SIM_SYSTEM_HH
