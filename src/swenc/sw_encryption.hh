/**
 * @file
 * eCryptfs-style software filesystem encryption baseline (Section II-E).
 *
 * This is the strawman the paper's Figure 3 measures: a stacked
 * cryptographic filesystem on top of the NVM device. Because DAX cannot
 * expose decrypted bytes directly, every first touch of a file page
 * takes a fault into the kernel, copies the 4 KB page out of NVM,
 * decrypts it with kernel-software AES at page granularity, and serves
 * subsequent accesses from the decrypted page-cache copy; dirty
 * evictions re-encrypt and write the whole page back. The decrypted
 * page cache is bounded, so large working sets thrash.
 */

#ifndef FSENCR_SWENC_SW_ENCRYPTION_HH
#define FSENCR_SWENC_SW_ENCRYPTION_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/nvm_device.hh"

namespace fsencr {

/** The software-encryption page-cache model. */
class SwEncLayer
{
  public:
    SwEncLayer(const SwEncParams &params, NvmDevice &device)
        : params_(params), device_(device), statGroup_("swenc")
    {
        statGroup_.addScalar("pageHits", pageHits_);
        statGroup_.addScalar("pageMisses", pageMisses_);
        statGroup_.addScalar("pageDecrypts", pageDecrypts_);
        statGroup_.addScalar("pageEncrypts", pageEncrypts_);
        statGroup_.addScalar("evictions", evictions_);
        statGroup_.addScalar("msyncs", msyncs_);
    }

    /**
     * Account one access to an encrypted file page.
     *
     * @param paddr physical address of the touched byte
     * @param is_write marks the cached page dirty
     * @param now current time
     * @return software latency added on top of the normal access
     */
    Tick
    onAccess(Addr paddr, bool is_write, Tick now)
    {
        Addr page = pageAlign(paddr);
        auto it = cache_.find(page);
        if (it != cache_.end()) {
            ++pageHits_;
            it->second.dirty |= is_write;
            lru_.splice(lru_.end(), lru_, it->second.lruIt);
            return 0;
        }

        ++pageMisses_;
        Tick lat = fillPage(page, now);
        if (cache_.size() > params_.pageCachePages)
            lat += evictOne(now + lat);
        cache_.at(page).dirty = is_write;
        return lat;
    }

    /**
     * msync of one page: without DAX, pmem_persist degrades to a
     * syscall that re-encrypts and writes back the whole dirty 4KB
     * page — the per-operation cost that makes software filesystem
     * encryption unviable for persistent workloads (Figure 3).
     */
    Tick
    msync(Addr paddr, Tick now)
    {
        Addr page = pageAlign(paddr);
        Tick lat = params_.msyncSyscall;
        auto it = cache_.find(page);
        if (it == cache_.end() || !it->second.dirty)
            return lat;
        it->second.dirty = false;
        ++msyncs_;
        lat += pageCryptoCost() + pageCopyCost();
        // The page's lines drain through the write queue; the syscall
        // waits for acceptance, not for the cells.
        for (unsigned blk = 0; blk < blocksPerPage; ++blk) {
            MemRequest req;
            req.paddr = page + blk * blockSize;
            req.isWrite = true;
            req.cls = TrafficClass::Data;
            device_.access(req, now + lat);
            lat += 5 * tickPerNs; // queue accept per line
        }
        return lat;
    }

    /** Write back every dirty cached page (msync / unmount). */
    Tick
    flush(Tick now)
    {
        Tick lat = 0;
        for (auto &[page, entry] : cache_) {
            if (entry.dirty) {
                lat += writebackPage(page, now + lat);
                entry.dirty = false;
            }
        }
        return lat;
    }

    /** Drop everything (crash: the decrypted copies are volatile). */
    void
    crash()
    {
        cache_.clear();
        lru_.clear();
    }

    std::size_t cachedPages() const { return cache_.size(); }
    stats::StatGroup &statGroup() { return statGroup_; }

  private:
    struct Entry
    {
        bool dirty = false;
        std::list<Addr>::iterator lruIt;
    };

    /** Software AES over a whole 4 KB page. */
    Tick
    pageCryptoCost() const
    {
        return (pageSize / 16) * params_.swAesPerBlock;
    }

    /** Copy cost of moving a page to/from the page cache. */
    Tick
    pageCopyCost() const
    {
        return (pageSize / blockSize) * params_.copyPerLine;
    }

    Tick
    fillPage(Addr page, Tick now)
    {
        ++pageDecrypts_;
        Tick lat = params_.faultOverhead;
        // Read the whole page from the device.
        for (unsigned blk = 0; blk < blocksPerPage; ++blk) {
            MemRequest req;
            req.paddr = page + blk * blockSize;
            req.isWrite = false;
            req.cls = TrafficClass::Data;
            lat += device_.access(req, now + lat);
        }
        lat += pageCopyCost();
        lat += pageCryptoCost();

        Entry e;
        lru_.push_back(page);
        e.lruIt = std::prev(lru_.end());
        cache_[page] = e;
        return lat;
    }

    Tick
    writebackPage(Addr page, Tick now)
    {
        ++pageEncrypts_;
        Tick lat = pageCryptoCost() + pageCopyCost();
        for (unsigned blk = 0; blk < blocksPerPage; ++blk) {
            MemRequest req;
            req.paddr = page + blk * blockSize;
            req.isWrite = true;
            req.cls = TrafficClass::Data;
            lat += device_.access(req, now + lat);
        }
        return lat;
    }

    Tick
    evictOne(Tick now)
    {
        ++evictions_;
        Addr victim = lru_.front();
        lru_.pop_front();
        auto it = cache_.find(victim);
        Tick lat = 0;
        if (it->second.dirty)
            lat = writebackPage(victim, now);
        cache_.erase(it);
        return lat;
    }

    SwEncParams params_;
    NvmDevice &device_;

    std::unordered_map<Addr, Entry> cache_;
    std::list<Addr> lru_;

    stats::StatGroup statGroup_;
    stats::Scalar pageHits_;
    stats::Scalar pageMisses_;
    stats::Scalar pageDecrypts_;
    stats::Scalar pageEncrypts_;
    stats::Scalar evictions_;
    stats::Scalar msyncs_;
};

} // namespace fsencr

#endif // FSENCR_SWENC_SW_ENCRYPTION_HH
