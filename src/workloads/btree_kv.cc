#include "workloads/btree_kv.hh"

#include <cstring>

#include "common/logging.hh"

namespace fsencr {
namespace workloads {

namespace {

constexpr Addr offNkeys = 0;
constexpr Addr offLeaf = 4;
constexpr Addr offKeys = 8;
constexpr Addr offPtrs = 8 + 8 * BTreeKv::maxKeys;

} // namespace

BTreeKv::BTreeKv(pmdk::PmemPool &pool)
    : pool_(pool)
{
    System &sys = pool_.sys();
    unsigned core = pool_.core();
    root_ = pool_.root();
    if (root_ == 0) {
        root_ = allocNode(core, true);
        pool_.setRoot(root_);
    } else {
        // Re-opened pool: recount by walking the persistent tree
        // (real simulated reads — the cost a restarting process pays).
        count_ = countSubtree(core, root_);
    }
    (void)sys;
}

std::uint64_t
BTreeKv::countSubtree(unsigned core, Addr node)
{
    std::uint32_t n = nkeys(core, node);
    if (isLeaf(core, node))
        return n;
    std::uint64_t total = 0;
    for (unsigned i = 0; i <= n; ++i)
        total += countSubtree(core, ptrAt(core, node, i));
    return total;
}

std::uint32_t
BTreeKv::nkeys(unsigned core, Addr n)
{
    return pool_.sys().read<std::uint32_t>(core, n + offNkeys);
}

void
BTreeKv::setNkeys(unsigned core, Addr n, std::uint32_t v)
{
    pool_.sys().write<std::uint32_t>(core, n + offNkeys, v);
}

bool
BTreeKv::isLeaf(unsigned core, Addr n)
{
    return pool_.sys().read<std::uint32_t>(core, n + offLeaf) != 0;
}

void
BTreeKv::setLeaf(unsigned core, Addr n, bool leaf)
{
    pool_.sys().write<std::uint32_t>(core, n + offLeaf, leaf ? 1 : 0);
}

std::uint64_t
BTreeKv::keyAt(unsigned core, Addr n, unsigned i)
{
    return pool_.sys().read<std::uint64_t>(core, n + offKeys + 8 * i);
}

void
BTreeKv::setKeyAt(unsigned core, Addr n, unsigned i, std::uint64_t k)
{
    pool_.sys().write<std::uint64_t>(core, n + offKeys + 8 * i, k);
}

Addr
BTreeKv::ptrAt(unsigned core, Addr n, unsigned i)
{
    return pool_.sys().read<std::uint64_t>(core, n + offPtrs + 8 * i);
}

void
BTreeKv::setPtrAt(unsigned core, Addr n, unsigned i, Addr p)
{
    pool_.sys().write<std::uint64_t>(core, n + offPtrs + 8 * i, p);
}

Addr
BTreeKv::allocNode(unsigned core, bool leaf)
{
    Addr n = pool_.alloc(nodeBytes);
    setNkeys(core, n, 0);
    setLeaf(core, n, leaf);
    pool_.persist(n, 8);
    return n;
}

Addr
BTreeKv::writeValue(unsigned core, Addr existing, const void *value,
                    std::size_t len)
{
    System &sys = pool_.sys();
    Addr blob = existing;
    if (blob != 0) {
        std::uint64_t old_len = sys.read<std::uint64_t>(core, blob);
        if (old_len != len) {
            pool_.free(blob, 8 + old_len);
            blob = 0;
        }
    }
    if (blob == 0) {
        blob = pool_.alloc(8 + len);
        sys.write<std::uint64_t>(core, blob, len);
    }
    sys.store(core, blob + 8, value, len);
    pool_.persist(blob, 8 + len);
    return blob;
}

void
BTreeKv::splitChild(unsigned core, Addr parent, unsigned child_idx)
{
    Addr child = ptrAt(core, parent, child_idx);
    bool child_leaf = isLeaf(core, child);
    Addr right = allocNode(core, child_leaf);

    constexpr unsigned mid = maxKeys / 2; // 7
    std::uint64_t mid_key = keyAt(core, child, mid);

    unsigned right_keys;
    if (child_leaf) {
        // B+-tree-style leaf split: the separator key keeps its value
        // in the right leaf and is duplicated as a router above.
        right_keys = maxKeys - mid; // 8: keys mid..maxKeys-1
        for (unsigned i = 0; i < right_keys; ++i) {
            setKeyAt(core, right, i, keyAt(core, child, mid + i));
            setPtrAt(core, right, i, ptrAt(core, child, mid + i));
        }
    } else {
        // Interior split: the separator moves up, the right node takes
        // keys mid+1.. and their child pointers.
        right_keys = maxKeys - mid - 1; // 7
        for (unsigned i = 0; i < right_keys; ++i) {
            setKeyAt(core, right, i, keyAt(core, child, mid + 1 + i));
            setPtrAt(core, right, i, ptrAt(core, child, mid + 1 + i));
        }
        setPtrAt(core, right, right_keys, ptrAt(core, child, maxKeys));
    }
    setNkeys(core, right, right_keys);
    setNkeys(core, child, mid);
    pool_.persist(right, nodeBytes);
    pool_.persist(child, 8);

    // Shift the parent's keys/pointers to make room.
    std::uint32_t pn = nkeys(core, parent);
    for (unsigned i = pn; i > child_idx; --i) {
        setKeyAt(core, parent, i, keyAt(core, parent, i - 1));
        setPtrAt(core, parent, i + 1, ptrAt(core, parent, i));
    }
    setKeyAt(core, parent, child_idx, mid_key);
    setPtrAt(core, parent, child_idx + 1, right);
    setNkeys(core, parent, pn + 1);
    pool_.persist(parent, nodeBytes);
}

void
BTreeKv::put(unsigned core, std::uint64_t key, const void *value,
             std::size_t len)
{
    System &sys = pool_.sys();
    sys.tick(core, 60); // key hashing / comparison / engine overhead

    // Interior separator convention: keys < separator go left,
    // >= separator go right.
    if (nkeys(core, root_) == maxKeys) {
        Addr new_root = allocNode(core, false);
        setPtrAt(core, new_root, 0, root_);
        pool_.persist(new_root, nodeBytes);
        root_ = new_root;
        pool_.setRoot(root_);
        splitChild(core, new_root, 0);
    }

    Addr node = root_;
    while (!isLeaf(core, node)) {
        std::uint32_t n = nkeys(core, node);
        unsigned idx = 0;
        while (idx < n && key >= keyAt(core, node, idx))
            ++idx;
        Addr child = ptrAt(core, node, idx);
        if (nkeys(core, child) == maxKeys) {
            splitChild(core, node, idx);
            if (key >= keyAt(core, node, idx))
                ++idx;
            child = ptrAt(core, node, idx);
        }
        node = child;
    }

    // Leaf insert or in-place update.
    std::uint32_t n = nkeys(core, node);
    unsigned idx = 0;
    while (idx < n && key > keyAt(core, node, idx))
        ++idx;
    if (idx < n && keyAt(core, node, idx) == key) {
        Addr blob = writeValue(core, ptrAt(core, node, idx), value,
                               len);
        setPtrAt(core, node, idx, blob);
        pool_.persist(node + offPtrs + 8 * idx, 8);
        return;
    }

    Addr blob = writeValue(core, 0, value, len);
    for (unsigned i = n; i > idx; --i) {
        setKeyAt(core, node, i, keyAt(core, node, i - 1));
        setPtrAt(core, node, i, ptrAt(core, node, i - 1));
    }
    setKeyAt(core, node, idx, key);
    setPtrAt(core, node, idx, blob);
    setNkeys(core, node, n + 1);
    pool_.persist(node, nodeBytes);
    ++count_;
}

bool
BTreeKv::get(unsigned core, std::uint64_t key, void *out,
             std::size_t len)
{
    System &sys = pool_.sys();
    sys.tick(core, 60);

    Addr node = root_;
    while (!isLeaf(core, node)) {
        std::uint32_t n = nkeys(core, node);
        unsigned idx = 0;
        while (idx < n && key >= keyAt(core, node, idx))
            ++idx;
        node = ptrAt(core, node, idx);
    }
    std::uint32_t n = nkeys(core, node);
    for (unsigned i = 0; i < n; ++i) {
        if (keyAt(core, node, i) == key) {
            Addr blob = ptrAt(core, node, i);
            std::uint64_t stored =
                sys.read<std::uint64_t>(core, blob);
            sys.load(core, blob + 8, out,
                     std::min<std::size_t>(len, stored));
            return true;
        }
    }
    return false;
}

} // namespace workloads
} // namespace fsencr
