/**
 * @file
 * Persistent B-tree key-value engine (the PMEMKV "BTree" engine of
 * Table II), built on the mini-PMDK pool.
 *
 * Every node field access is a real simulated load/store, so tree
 * traversals exercise the TLB, caches, DF-bit path and encryption
 * engines exactly like the pointer-chasing PMEMKV engine does.
 * Modified node ranges and value blobs are pmem_persist'ed, generating
 * the persist-ordered (blocking) writes the paper identifies as the
 * dominant overhead source for write-intensive workloads.
 */

#ifndef FSENCR_WORKLOADS_BTREE_KV_HH
#define FSENCR_WORKLOADS_BTREE_KV_HH

#include <cstdint>
#include <string>

#include "pmdk/pmem.hh"

namespace fsencr {
namespace workloads {

/** Persistent B-tree mapping uint64 keys to byte-blob values. */
class BTreeKv
{
  public:
    /** Fan-out: 15 keys / 16 children per 256-byte node. */
    static constexpr unsigned order = 16;
    static constexpr unsigned maxKeys = order - 1;
    static constexpr std::size_t nodeBytes = 256;

    explicit BTreeKv(pmdk::PmemPool &pool);

    /**
     * Insert or update. Values of unchanged size are updated in place
     * (the PMEMKV overwrite path).
     */
    void put(unsigned core, std::uint64_t key, const void *value,
             std::size_t len);

    /**
     * Look up a key.
     * @return true and fills out (up to len bytes) if present
     */
    bool get(unsigned core, std::uint64_t key, void *out,
             std::size_t len);

    /** Number of keys stored. */
    std::uint64_t count() const { return count_; }

  private:
    /** Recount keys by walking the tree (pool-reopen path). */
    std::uint64_t countSubtree(unsigned core, Addr node);

  public:

  private:
    /// @name On-pmem node field accessors
    /// Layout: nkeys u32 | leaf u32 | keys[15] u64 | ptrs[16] u64.
    /// In leaves ptrs[i] is the value blob of keys[i]; in interior
    /// nodes ptrs[i] is the i-th child.
    /// @{
    std::uint32_t nkeys(unsigned core, Addr n);
    void setNkeys(unsigned core, Addr n, std::uint32_t v);
    bool isLeaf(unsigned core, Addr n);
    void setLeaf(unsigned core, Addr n, bool leaf);
    std::uint64_t keyAt(unsigned core, Addr n, unsigned i);
    void setKeyAt(unsigned core, Addr n, unsigned i, std::uint64_t k);
    Addr ptrAt(unsigned core, Addr n, unsigned i);
    void setPtrAt(unsigned core, Addr n, unsigned i, Addr p);
    /// @}

    Addr allocNode(unsigned core, bool leaf);

    /** Split full child child_idx of parent (parent not full). */
    void splitChild(unsigned core, Addr parent, unsigned child_idx);

    /** Value blob: u64 length | bytes. */
    Addr writeValue(unsigned core, Addr existing, const void *value,
                    std::size_t len);

    pmdk::PmemPool &pool_;
    Addr root_ = 0;
    std::uint64_t count_ = 0;
};

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_BTREE_KV_HH
