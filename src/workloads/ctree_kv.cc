#include "workloads/ctree_kv.hh"

#include "common/bitfield.hh"

namespace fsencr {
namespace workloads {

namespace {

/**
 * Bijective key mixer (SplitMix64 finalizer): the tree orders nodes
 * by mixed keys so that sequential insertion does not degenerate the
 * BST into a chain — the crit-bit behaviour of the real Whisper
 * benchmark. Bijectivity preserves exact-match semantics.
 */
std::uint64_t
mixKey(std::uint64_t k)
{
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
    return k ^ (k >> 31);
}

} // namespace

CTreeKv::CTreeKv(pmdk::PmemPool &pool, std::size_t value_bytes)
    : pool_(pool), valueBytes_(value_bytes)
{
    rootPtr_ = pool_.alloc(blockSize);
    // Fresh pool pages read as zero: root pointer starts null.
}

Addr
CTreeKv::allocNode(unsigned core, std::uint64_t key, const void *value)
{
    System &sys = pool_.sys();
    Addr n = pool_.alloc(roundUp(offValue + valueBytes_, blockSize));
    sys.write<std::uint64_t>(core, n + offKey, key);
    sys.write<std::uint64_t>(core, n + offLeft, 0);
    sys.write<std::uint64_t>(core, n + offRight, 0);
    sys.store(core, n + offValue, value, valueBytes_);
    pool_.persist(n, offValue + valueBytes_);
    return n;
}

void
CTreeKv::put(unsigned core, std::uint64_t key, const void *value)
{
    System &sys = pool_.sys();
    sys.tick(core, 50);
    key = mixKey(key);

    Addr root = sys.read<std::uint64_t>(core, rootPtr_);
    if (root == 0) {
        Addr n = allocNode(core, key, value);
        sys.write<std::uint64_t>(core, rootPtr_, n);
        pool_.persist(rootPtr_, 8);
        ++count_;
        return;
    }

    Addr node = root;
    while (true) {
        std::uint64_t nkey = sys.read<std::uint64_t>(core,
                                                     node + offKey);
        if (nkey == key) {
            sys.store(core, node + offValue, value, valueBytes_);
            pool_.persist(node + offValue, valueBytes_);
            return;
        }
        Addr link = key < nkey ? node + offLeft : node + offRight;
        Addr child = sys.read<std::uint64_t>(core, link);
        if (child == 0) {
            Addr n = allocNode(core, key, value);
            sys.write<std::uint64_t>(core, link, n);
            pool_.persist(link, 8);
            ++count_;
            return;
        }
        node = child;
    }
}

bool
CTreeKv::get(unsigned core, std::uint64_t key, void *out)
{
    System &sys = pool_.sys();
    sys.tick(core, 50);
    key = mixKey(key);

    Addr node = sys.read<std::uint64_t>(core, rootPtr_);
    while (node != 0) {
        std::uint64_t nkey = sys.read<std::uint64_t>(core,
                                                     node + offKey);
        if (nkey == key) {
            sys.load(core, node + offValue, out, valueBytes_);
            return true;
        }
        node = sys.read<std::uint64_t>(
            core, key < nkey ? node + offLeft : node + offRight);
    }
    return false;
}

} // namespace workloads
} // namespace fsencr
