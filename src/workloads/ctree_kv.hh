/**
 * @file
 * Persistent binary search tree (the Whisper "CTree" benchmark,
 * data-size 128 B, Table II). A crit-bit-flavoured pointer-chasing
 * structure: every lookup walks a chain of 64-byte node headers spread
 * across the pool — the worst case for counter-block locality.
 */

#ifndef FSENCR_WORKLOADS_CTREE_KV_HH
#define FSENCR_WORKLOADS_CTREE_KV_HH

#include <cstdint>

#include "pmdk/pmem.hh"

namespace fsencr {
namespace workloads {

/** Persistent BST with fixed-size inline payloads. */
class CTreeKv
{
  public:
    CTreeKv(pmdk::PmemPool &pool, std::size_t value_bytes);

    void put(unsigned core, std::uint64_t key, const void *value);
    bool get(unsigned core, std::uint64_t key, void *out);

    std::uint64_t count() const { return count_; }
    std::size_t valueBytes() const { return valueBytes_; }

  private:
    Addr allocNode(unsigned core, std::uint64_t key, const void *value);

    pmdk::PmemPool &pool_;
    std::size_t valueBytes_;
    Addr rootPtr_ = 0; //!< pmem address holding the root pointer
    std::uint64_t count_ = 0;

    /** Node layout: u64 key | u64 left | u64 right | pad | value. */
    static constexpr Addr offKey = 0;
    static constexpr Addr offLeft = 8;
    static constexpr Addr offRight = 16;
    static constexpr Addr offValue = 24;
};

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_CTREE_KV_HH
