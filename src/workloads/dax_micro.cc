#include "workloads/dax_micro.hh"

namespace fsencr {
namespace workloads {

const char *
daxMicroKindName(DaxMicroKind k)
{
    switch (k) {
      case DaxMicroKind::Dax1: return "DAX-1";
      case DaxMicroKind::Dax2: return "DAX-2";
      case DaxMicroKind::Dax3: return "DAX-3";
      case DaxMicroKind::Dax4: return "DAX-4";
    }
    return "?";
}

DaxMicroWorkload::DaxMicroWorkload(const DaxMicroConfig &cfg)
    : cfg_(cfg)
{}

std::string
DaxMicroWorkload::name() const
{
    return daxMicroKindName(cfg_.kind);
}

void
DaxMicroWorkload::setup(System &sys)
{
    standardEnvironment(sys, "alice-pass");

    fileBytes_ = cfg_.spanBytes;
    int fd = sys.creat(0, "/pmem/daxmicro.dat", 0600,
                       OpenFlags::Encrypted, "alice-pass");
    sys.ftruncate(0, fd, fileBytes_);
    base_ = sys.mmapFile(0, fd, fileBytes_);
}

void
DaxMicroWorkload::runStride(System &sys, std::uint64_t stride)
{
    // One pass over the span; alternate a 1-byte read and a 1-byte
    // write so both the decrypt and counter-update paths are stressed.
    std::uint64_t n = fileBytes_ / stride;
    ops_ = n;
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr a = base_ + i * stride;
        if (i & 1) {
            std::uint8_t v = static_cast<std::uint8_t>(i);
            sys.store(0, a, &v, 1);
        } else {
            std::uint8_t v;
            sys.load(0, a, &v, 1);
        }
    }
}

void
DaxMicroWorkload::runSwap(System &sys, std::size_t array_bytes)
{
    Rng rng(cfg_.seed);
    std::vector<std::uint8_t> a(array_bytes), b(array_bytes);
    std::uint64_t slots = fileBytes_ / array_bytes;
    ops_ = cfg_.swapOps;

    for (std::uint64_t i = 0; i < cfg_.swapOps; ++i) {
        Addr pa = base_ + rng.nextBounded(slots) * array_bytes;
        Addr pb = base_ + rng.nextBounded(slots) * array_bytes;

        // Initialize both arrays...
        rng.fill(a.data(), a.size());
        rng.fill(b.data(), b.size());
        sys.store(0, pa, a.data(), a.size());
        sys.store(0, pb, b.data(), b.size());

        // ...then swap their contents (sequential within the array).
        sys.load(0, pa, a.data(), a.size());
        sys.load(0, pb, b.data(), b.size());
        sys.store(0, pa, b.data(), b.size());
        sys.store(0, pb, a.data(), a.size());
    }
}

void
DaxMicroWorkload::execute(System &sys)
{
    switch (cfg_.kind) {
      case DaxMicroKind::Dax1:
        runStride(sys, 16);
        break;
      case DaxMicroKind::Dax2:
        runStride(sys, 128);
        break;
      case DaxMicroKind::Dax3:
        runSwap(sys, 16);
        break;
      case DaxMicroKind::Dax4:
        runSwap(sys, 128);
        break;
    }
}

std::vector<DaxMicroConfig>
daxMicroSuite()
{
    std::vector<DaxMicroConfig> suite;
    for (DaxMicroKind k : {DaxMicroKind::Dax1, DaxMicroKind::Dax2,
                           DaxMicroKind::Dax3, DaxMicroKind::Dax4}) {
        DaxMicroConfig c;
        c.kind = k;
        // 32MB span: the page-count makes the combined MECB+FECB
        // footprint (1MB) overflow the 512KB metadata cache, the
        // differential the sensitivity study (Fig. 15) turns on.
        c.spanBytes = 32 << 20;
        c.swapOps = 100000;
        suite.push_back(c);
    }
    return suite;
}

} // namespace workloads
} // namespace fsencr
