/**
 * @file
 * In-house synthetic DAX micro-benchmarks (Table II, Figures 12-14):
 *
 *  DAX-1  touch 1 byte every 16 bytes of a large mmap'ed file
 *  DAX-2  touch 1 byte every 128 bytes (worse counter-block locality:
 *         each FECB/MECB covers 4 KB, so wider strides amortize less)
 *  DAX-3  initialize two 16 B arrays at random locations and swap them
 *  DAX-4  same with 128 B arrays
 */

#ifndef FSENCR_WORKLOADS_DAX_MICRO_HH
#define FSENCR_WORKLOADS_DAX_MICRO_HH

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace fsencr {
namespace workloads {

/** Which micro-benchmark. */
enum class DaxMicroKind { Dax1, Dax2, Dax3, Dax4 };

const char *daxMicroKindName(DaxMicroKind k);

/** Parameters of one micro run. */
struct DaxMicroConfig
{
    DaxMicroKind kind = DaxMicroKind::Dax1;
    /** Bytes of file the strided kinds sweep (one pass). */
    std::uint64_t spanBytes = 16 << 20;
    /** Swap iterations for DAX-3/4. */
    std::uint64_t swapOps = 50000;
    std::uint64_t seed = 3;
};

/** A DAX micro-benchmark instance. */
class DaxMicroWorkload : public Workload
{
  public:
    explicit DaxMicroWorkload(const DaxMicroConfig &cfg);

    std::string name() const override;
    void setup(System &sys) override;
    void execute(System &sys) override;
    std::uint64_t operations() const override { return ops_; }

  private:
    void runStride(System &sys, std::uint64_t stride);
    void runSwap(System &sys, std::size_t array_bytes);

    DaxMicroConfig cfg_;
    Addr base_ = 0;
    std::uint64_t fileBytes_ = 0;
    std::uint64_t ops_ = 0;
};

/** The four configurations of Figures 12-14, in figure order. */
std::vector<DaxMicroConfig> daxMicroSuite();

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_DAX_MICRO_HH
