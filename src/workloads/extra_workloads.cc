#include "workloads/extra_workloads.hh"

namespace fsencr {
namespace workloads {

void
LogAppendWorkload::setup(System &sys)
{
    standardEnvironment(sys, "logger-pw");
    std::uint64_t bytes =
        roundUp(64 + cfg_.numRecords * cfg_.recordBytes, pageSize);
    int fd = sys.creat(0, "/pmem/wal.log", 0600, OpenFlags::Encrypted, "logger-pw");
    sys.ftruncate(0, fd, bytes);
    base_ = sys.mmapFile(0, fd, bytes);

    // Log header: record count (the checkpoint target).
    sys.write<std::uint64_t>(0, base_, 0);
    sys.persist(0, base_, 8);
}

void
LogAppendWorkload::execute(System &sys)
{
    Rng rng(cfg_.seed);
    std::vector<std::uint8_t> record(cfg_.recordBytes);
    Addr data = base_ + 64;

    for (std::uint64_t i = 0; i < cfg_.numRecords; ++i) {
        rng.fill(record.data(), record.size());
        Addr at = data + i * cfg_.recordBytes;
        sys.store(0, at, record.data(), record.size());
        sys.persist(0, at, record.size());
        sys.tick(0, 80); // record formatting

        if ((i + 1) % cfg_.checkpointEvery == 0) {
            sys.write<std::uint64_t>(0, base_, i + 1);
            sys.persist(0, base_, 8);
        }
    }
}

void
FileServerWorkload::setup(System &sys)
{
    standardEnvironment(sys, "server-pw");
    std::vector<std::uint8_t> chunk(cfg_.ioBytes);
    Rng rng(cfg_.seed ^ 0x5a5a);

    for (unsigned f = 0; f < cfg_.numFiles; ++f) {
        int fd = sys.creat(0, "/pmem/srv" + std::to_string(f), 0600,
                           OpenFlags::Encrypted, "server-pw");
        // Prefill each file.
        for (std::uint64_t off = 0; off < cfg_.fileBytes;
             off += cfg_.ioBytes) {
            rng.fill(chunk.data(), chunk.size());
            sys.fileWrite(0, fd, off, chunk.data(), chunk.size());
        }
        fds_.push_back(fd);
    }
}

void
FileServerWorkload::execute(System &sys)
{
    Rng rng(cfg_.seed);
    ZipfianGenerator popular(cfg_.numFiles, 0.99, cfg_.seed ^ 0x77);
    std::vector<std::uint8_t> chunk(cfg_.ioBytes);

    std::uint64_t chunks_per_file = cfg_.fileBytes / cfg_.ioBytes;
    for (std::uint64_t i = 0; i < cfg_.numOps; ++i) {
        unsigned core =
            static_cast<unsigned>(i % sys.config().cpu.numCores);
        int fd = fds_[popular.next()];
        std::uint64_t off =
            rng.nextBounded(chunks_per_file) * cfg_.ioBytes;
        if (rng.nextDouble() < cfg_.readRatio) {
            sys.fileRead(core, fd, off, chunk.data(), chunk.size());
        } else {
            rng.fill(chunk.data(), chunk.size());
            sys.fileWrite(core, fd, off, chunk.data(), chunk.size());
        }
        sys.tick(core, 200); // request parsing / response
    }
}

} // namespace workloads
} // namespace fsencr
