/**
 * @file
 * Workloads beyond the paper's Table II, exercising access patterns
 * the figure benchmarks do not cover:
 *
 *  - LogAppend: a write-ahead log — strictly sequential appends, one
 *    persist per record, periodic checkpoint trims. The best case for
 *    counter-block locality and the worst case for persist frequency.
 *  - FileServer: syscall-style IO (open/read/write/close) over many
 *    files with zipfian popularity — exercises the kernel copy path,
 *    per-file keys, OTT pressure and permission checks.
 */

#ifndef FSENCR_WORKLOADS_EXTRA_WORKLOADS_HH
#define FSENCR_WORKLOADS_EXTRA_WORKLOADS_HH

#include <vector>

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace fsencr {
namespace workloads {

/** Write-ahead-log appender. */
struct LogAppendConfig
{
    std::uint64_t numRecords = 20000;
    std::size_t recordBytes = 256;
    /** Checkpoint (header rewrite + persist) every N records. */
    std::uint64_t checkpointEvery = 1024;
    std::uint64_t seed = 21;
};

class LogAppendWorkload : public Workload
{
  public:
    explicit LogAppendWorkload(const LogAppendConfig &cfg) : cfg_(cfg)
    {}

    std::string name() const override { return "LogAppend"; }
    void setup(System &sys) override;
    void execute(System &sys) override;
    std::uint64_t operations() const override
    {
        return cfg_.numRecords;
    }

  private:
    LogAppendConfig cfg_;
    Addr base_ = 0;
};

/** Multi-file syscall file server. */
struct FileServerConfig
{
    unsigned numFiles = 64;
    std::uint64_t fileBytes = 256 << 10;
    std::uint64_t numOps = 8000;
    std::size_t ioBytes = 4096;
    double readRatio = 0.7;
    std::uint64_t seed = 22;
};

class FileServerWorkload : public Workload
{
  public:
    explicit FileServerWorkload(const FileServerConfig &cfg)
        : cfg_(cfg)
    {}

    std::string name() const override { return "FileServer"; }
    void setup(System &sys) override;
    void execute(System &sys) override;
    std::uint64_t operations() const override { return cfg_.numOps; }

  private:
    FileServerConfig cfg_;
    std::vector<int> fds_;
};

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_EXTRA_WORKLOADS_HH
