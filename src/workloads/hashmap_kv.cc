#include "workloads/hashmap_kv.hh"

#include "common/bitfield.hh"

namespace fsencr {
namespace workloads {

HashmapKv::HashmapKv(pmdk::PmemPool &pool, std::uint64_t capacity,
                     std::size_t value_bytes)
    : pool_(pool), valueBytes_(value_bytes)
{
    capacity_ = 1;
    while (capacity_ < capacity)
        capacity_ <<= 1;
    slotBytes_ = roundUp(16 + value_bytes, blockSize);
    table_ = pool_.alloc(capacity_ * slotBytes_);
    // Slots start zeroed (fresh NVM pages read as zero), so no
    // initialization sweep is needed.
}

void
HashmapKv::put(unsigned core, std::uint64_t key, const void *value)
{
    System &sys = pool_.sys();
    sys.tick(core, 40); // hash + probe arithmetic

    std::uint64_t idx = hashKey(key) & (capacity_ - 1);
    for (std::uint64_t probe = 0; probe < capacity_; ++probe) {
        Addr slot = slotAddr((idx + probe) & (capacity_ - 1));
        std::uint64_t state =
            sys.read<std::uint64_t>(core, slot + offState);
        if (state == 0) {
            sys.write<std::uint64_t>(core, slot + offKey, key);
            sys.store(core, slot + offValue, value, valueBytes_);
            sys.write<std::uint64_t>(core, slot + offState, 1);
            pool_.persist(slot, 16 + valueBytes_);
            ++count_;
            return;
        }
        std::uint64_t k = sys.read<std::uint64_t>(core, slot + offKey);
        if (k == key) {
            sys.store(core, slot + offValue, value, valueBytes_);
            pool_.persist(slot + offValue, valueBytes_);
            return;
        }
    }
    fatal("HashmapKv: table full (capacity %llu)",
          static_cast<unsigned long long>(capacity_));
}

bool
HashmapKv::get(unsigned core, std::uint64_t key, void *out)
{
    System &sys = pool_.sys();
    sys.tick(core, 40);

    std::uint64_t idx = hashKey(key) & (capacity_ - 1);
    for (std::uint64_t probe = 0; probe < capacity_; ++probe) {
        Addr slot = slotAddr((idx + probe) & (capacity_ - 1));
        std::uint64_t state =
            sys.read<std::uint64_t>(core, slot + offState);
        if (state == 0)
            return false;
        std::uint64_t k = sys.read<std::uint64_t>(core, slot + offKey);
        if (k == key) {
            sys.load(core, slot + offValue, out, valueBytes_);
            return true;
        }
    }
    return false;
}

} // namespace workloads
} // namespace fsencr
