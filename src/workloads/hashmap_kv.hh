/**
 * @file
 * Persistent open-addressing hashmap (the Whisper "Hashmap" benchmark,
 * data-size 128 B, Table II). Also serves as the store behind our YCSB
 * workload.
 *
 * Entries are inline: state word, key, and a fixed-size payload, so a
 * put is one probe chain plus a ~2-line persisted write — exactly the
 * short-persist pattern Whisper characterizes.
 */

#ifndef FSENCR_WORKLOADS_HASHMAP_KV_HH
#define FSENCR_WORKLOADS_HASHMAP_KV_HH

#include <cstdint>

#include "common/logging.hh"
#include "pmdk/pmem.hh"

namespace fsencr {
namespace workloads {

/** Persistent hashmap with fixed-size inline values. */
class HashmapKv
{
  public:
    /**
     * @param pool the persistent pool
     * @param capacity slots (rounded up to a power of two); size for
     *        <70% load factor — there is no resize
     * @param value_bytes inline payload size
     */
    HashmapKv(pmdk::PmemPool &pool, std::uint64_t capacity,
              std::size_t value_bytes);

    void put(unsigned core, std::uint64_t key, const void *value);
    bool get(unsigned core, std::uint64_t key, void *out);

    std::size_t valueBytes() const { return valueBytes_; }
    std::uint64_t count() const { return count_; }

  private:
    static std::uint64_t
    hashKey(std::uint64_t k)
    {
        k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
        k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
        return k ^ (k >> 31);
    }

    Addr slotAddr(std::uint64_t idx) const
    {
        return table_ + idx * slotBytes_;
    }

    pmdk::PmemPool &pool_;
    std::uint64_t capacity_;
    std::size_t valueBytes_;
    std::size_t slotBytes_;
    Addr table_ = 0;
    std::uint64_t count_ = 0;

    /** Slot layout: u64 state (0 empty / 1 full) | u64 key | value. */
    static constexpr Addr offState = 0;
    static constexpr Addr offKey = 8;
    static constexpr Addr offValue = 16;
};

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_HASHMAP_KV_HH
