#include "workloads/pmemkv_bench.hh"

namespace fsencr {
namespace workloads {

const char *
pmemkvOpName(PmemkvOp op)
{
    switch (op) {
      case PmemkvOp::FillSeq: return "Fillseq";
      case PmemkvOp::FillRandom: return "Fillrandom";
      case PmemkvOp::Overwrite: return "Overwrite";
      case PmemkvOp::ReadRandom: return "Readrandom";
      case PmemkvOp::ReadSeq: return "Readseq";
    }
    return "?";
}

PmemkvWorkload::PmemkvWorkload(const PmemkvConfig &cfg)
    : cfg_(cfg), valueBuf_(cfg.valueBytes), readBuf_(cfg.valueBytes)
{}

std::string
PmemkvWorkload::name() const
{
    return std::string(pmemkvOpName(cfg_.op)) +
           (cfg_.valueBytes >= 4096 ? "-L" : "-S");
}

void
PmemkvWorkload::setup(System &sys)
{
    standardEnvironment(sys, "alice-pass");

    // Pool sized for keys, values, tree nodes and slack.
    std::uint64_t pool_bytes =
        (cfg_.numKeys + cfg_.numOps) *
            (roundUp(cfg_.valueBytes + 8, blockSize) + 96) +
        (8 << 20);
    pool_ = std::make_unique<pmdk::PmemPool>(
        sys, 0, "/pmem/pmemkv-" + name() + ".pool", pool_bytes,
        /*encrypted=*/true, "alice-pass");
    kv_ = std::make_unique<BTreeKv>(*pool_);

    // Fill benchmarks start from an empty store; the others run
    // against a preloaded one (db_bench semantics).
    if (cfg_.op == PmemkvOp::Overwrite ||
        cfg_.op == PmemkvOp::ReadRandom ||
        cfg_.op == PmemkvOp::ReadSeq) {
        Rng rng(cfg_.seed ^ 0xfeedface);
        for (std::uint64_t k = 0; k < cfg_.numKeys; ++k) {
            rng.fill(valueBuf_.data(), valueBuf_.size());
            unsigned core = static_cast<unsigned>(k % cfg_.workers);
            pool_->setCore(core);
            kv_->put(core, k, valueBuf_.data(), valueBuf_.size());
        }
    }
}

void
PmemkvWorkload::doOp(System &sys, unsigned core, std::uint64_t i,
                     Rng &rng)
{
    switch (cfg_.op) {
      case PmemkvOp::FillSeq:
        rng.fill(valueBuf_.data(), valueBuf_.size());
        kv_->put(core, i, valueBuf_.data(), valueBuf_.size());
        break;
      case PmemkvOp::FillRandom:
        rng.fill(valueBuf_.data(), valueBuf_.size());
        kv_->put(core, rng.nextBounded(cfg_.numKeys * 4),
                 valueBuf_.data(), valueBuf_.size());
        break;
      case PmemkvOp::Overwrite:
        rng.fill(valueBuf_.data(), valueBuf_.size());
        kv_->put(core, rng.nextBounded(cfg_.numKeys),
                 valueBuf_.data(), valueBuf_.size());
        break;
      case PmemkvOp::ReadRandom:
        kv_->get(core, rng.nextBounded(cfg_.numKeys), readBuf_.data(),
                 readBuf_.size());
        break;
      case PmemkvOp::ReadSeq:
        kv_->get(core, i % cfg_.numKeys, readBuf_.data(),
                 readBuf_.size());
        break;
    }
    sys.tick(core, 120); // client-side request handling
}

void
PmemkvWorkload::execute(System &sys)
{
    Rng rng(cfg_.seed);
    for (std::uint64_t i = 0; i < cfg_.numOps; ++i) {
        unsigned core = static_cast<unsigned>(i % cfg_.workers);
        pool_->setCore(core);
        doOp(sys, core, i, rng);
    }
}

std::vector<PmemkvConfig>
pmemkvSuite(std::uint64_t small_keys, std::uint64_t large_keys)
{
    std::vector<PmemkvConfig> suite;
    const PmemkvOp ops[] = {PmemkvOp::FillRandom, PmemkvOp::FillSeq,
                            PmemkvOp::Overwrite, PmemkvOp::ReadRandom,
                            PmemkvOp::ReadSeq};
    for (PmemkvOp op : ops) {
        for (std::size_t vbytes : {std::size_t(64), std::size_t(4096)}) {
            PmemkvConfig c;
            c.op = op;
            c.valueBytes = vbytes;
            c.numKeys = vbytes >= 4096 ? large_keys : small_keys;
            c.numOps = c.numKeys;
            suite.push_back(c);
        }
    }
    return suite;
}

} // namespace workloads
} // namespace fsencr
