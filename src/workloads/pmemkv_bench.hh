/**
 * @file
 * PMEMKV-style benchmarks (Table II): fillseq / fillrandom / overwrite
 * / readrandom / readseq over the persistent BTree engine, with small
 * (64 B) and large (4096 B) values and two worker threads.
 */

#ifndef FSENCR_WORKLOADS_PMEMKV_BENCH_HH
#define FSENCR_WORKLOADS_PMEMKV_BENCH_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "workloads/btree_kv.hh"
#include "workloads/workload.hh"

namespace fsencr {
namespace workloads {

/** Which PMEMKV benchmark to run. */
enum class PmemkvOp {
    FillSeq,
    FillRandom,
    Overwrite,
    ReadRandom,
    ReadSeq,
};

const char *pmemkvOpName(PmemkvOp op);

/** Parameters of one PMEMKV run. */
struct PmemkvConfig
{
    PmemkvOp op = PmemkvOp::FillSeq;
    std::size_t valueBytes = 64; //!< 64 (S) or 4096 (L)
    std::uint64_t numKeys = 8192;
    std::uint64_t numOps = 8192;
    unsigned workers = 2;
    std::uint64_t seed = 1;
};

/** A PMEMKV benchmark instance. */
class PmemkvWorkload : public Workload
{
  public:
    explicit PmemkvWorkload(const PmemkvConfig &cfg);

    std::string name() const override;
    void setup(System &sys) override;
    void execute(System &sys) override;
    std::uint64_t operations() const override { return cfg_.numOps; }

    BTreeKv *kv() { return kv_.get(); }

  private:
    void doOp(System &sys, unsigned core, std::uint64_t i, Rng &rng);

    PmemkvConfig cfg_;
    std::unique_ptr<pmdk::PmemPool> pool_;
    std::unique_ptr<BTreeKv> kv_;
    std::vector<std::uint8_t> valueBuf_;
    std::vector<std::uint8_t> readBuf_;
};

/** The ten PMEMKV configurations of Figures 8-10, in figure order.
 *  Defaults size the working set beyond the 4MB LLC so the memory
 *  system is actually exercised. */
std::vector<PmemkvConfig> pmemkvSuite(std::uint64_t small_keys = 32768,
                                      std::uint64_t large_keys = 2048);

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_PMEMKV_BENCH_HH
