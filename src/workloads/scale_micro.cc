#include "workloads/scale_micro.hh"

namespace fsencr {
namespace workloads {

const char *
scalePatternName(ScalePattern p)
{
    switch (p) {
      case ScalePattern::Seq: return "scale-seq";
      case ScalePattern::Mixed: return "scale-mixed";
    }
    return "?";
}

ScaleMicroWorkload::ScaleMicroWorkload(const ScaleMicroConfig &cfg)
    : cfg_(cfg)
{}

std::string
ScaleMicroWorkload::name() const
{
    return scalePatternName(cfg_.pattern);
}

void
ScaleMicroWorkload::setup(System &sys)
{
    standardEnvironment(sys, "alice-pass");

    int fd = sys.creat(0, "/pmem/scale.dat", 0600,
                       OpenFlags::Encrypted, "alice-pass");
    sys.ftruncate(0, fd, cfg_.spanBytes);
    base_ = sys.mmapFile(0, fd, cfg_.spanBytes);

    // Touch every line once so the measured phase starts fully
    // cache-resident (the span fits in L1 by construction).
    for (Addr a = 0; a < cfg_.spanBytes; a += blockSize)
        sys.write<std::uint64_t>(0, base_ + a, a);
}

void
ScaleMicroWorkload::execute(System &sys)
{
    // Hoist every member read into locals: member loads inside the
    // loop would have to be re-issued after each simulator call
    // (the compiler cannot prove they are unclobbered), which costs
    // registers the induction variables need.
    const Addr base = base_;
    const std::uint64_t ops = cfg_.ops;
    const std::uint64_t span = cfg_.spanBytes;

    switch (cfg_.pattern) {
      case ScalePattern::Seq: {
        // Sequential sweep, alternating load/store (on the slot
        // parity); wraps around the span as often as the op count
        // requires. The sweep starts on a load slot and the span is
        // 16-byte aligned, so the body pairs one load with one store
        // per 16 bytes — same access sequence as a per-slot parity
        // test, without the per-access branch.
        std::uint64_t sink = 0;
        std::uint64_t done = 0;
        const Addr end = base + span;
        Addr a = base;
        while (done + 1 < ops) {
            std::uint64_t chunk =
                std::min<std::uint64_t>(ops - done,
                                        (end - a) /
                                            sizeof(std::uint64_t)) &
                ~std::uint64_t(1);
            const Addr stop = a + chunk * sizeof(std::uint64_t);
            for (; a != stop; a += 2 * sizeof(std::uint64_t)) {
                sink ^= sys.read<std::uint64_t>(0, a);
                sys.write<std::uint64_t>(
                    0, a + sizeof(std::uint64_t),
                    a + sizeof(std::uint64_t));
            }
            done += chunk;
            if (a == end)
                a = base;
        }
        if (done < ops)
            sink ^= sys.read<std::uint64_t>(0, a);
        // Fold the sink into architectural state so the read loop
        // cannot be optimized away.
        sys.write<std::uint64_t>(0, base, sink);
        break;
      }
      case ScalePattern::Mixed: {
        Rng rng(cfg_.seed);
        const std::uint64_t lines = span / blockSize;
        // The default spans are powers of two; masking avoids a
        // 64-bit divide per burst, which would otherwise be a
        // noticeable fraction of the fast-forwarded burst cost.
        const bool pow2 = (lines & (lines - 1)) == 0;
        const std::uint64_t mask = lines - 1;
        std::uint64_t sink = 0;
        std::uint64_t left = ops;
        // Every 10th access is a store (90/10 mix). A burst is at
        // most eight accesses, so it contains at most one store —
        // its slot is computed up front rather than re-tested on
        // every access inside the burst.
        std::uint64_t wr = 0; // accesses since the last store
        // The generator runs one burst ahead: drawing the next pick
        // before the current burst's accesses lets its multiply chain
        // overlap the memory work instead of serializing each burst
        // behind it. (The final extra draw has no architectural
        // effect; the generator is workload-local.)
        std::uint64_t pick =
            pow2 ? (rng.next() & mask) : rng.nextBounded(lines);
        while (left > 0) {
            Addr a = base + pick * blockSize;
            pick = pow2 ? (rng.next() & mask) : rng.nextBounded(lines);
            std::uint64_t burst =
                std::min<std::uint64_t>(left,
                                        blockSize /
                                            sizeof(std::uint64_t));
            left -= burst;
            std::uint64_t k = 10 - wr; // 1-based slot of the store
            auto rd = [&](std::uint64_t i) {
                sink ^= sys.read<std::uint64_t>(
                    0, a + i * sizeof(std::uint64_t));
            };
            auto wrt = [&](std::uint64_t i) {
                Addr w = a + i * sizeof(std::uint64_t);
                sys.write<std::uint64_t>(0, w, w);
            };
            if (k > burst) {
                wr += burst;
                for (std::uint64_t i = 0; i < burst; ++i)
                    rd(i);
            } else {
                for (std::uint64_t i = 0; i + 1 < k; ++i)
                    rd(i);
                wrt(k - 1);
                for (std::uint64_t i = k; i < burst; ++i)
                    rd(i);
                wr = burst - k;
            }
        }
        sys.write<std::uint64_t>(0, base, sink);
        break;
      }
    }
}

std::vector<ScaleMicroConfig>
scaleMicroSuite(std::uint64_t ops)
{
    std::vector<ScaleMicroConfig> suite;
    for (ScalePattern p : {ScalePattern::Seq, ScalePattern::Mixed}) {
        ScaleMicroConfig c;
        c.pattern = p;
        c.ops = ops;
        suite.push_back(c);
    }
    return suite;
}

} // namespace workloads
} // namespace fsencr
