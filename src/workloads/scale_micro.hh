/**
 * @file
 * Scale micro-benchmarks for the fast-forward execution mode
 * (bench_scale): cache-resident access streams whose measured phase
 * is hundreds of millions of 8-byte operations. The span fits in one
 * core's L1, so the exact model spends all its time in per-access
 * bookkeeping — precisely the work --fast-forward collapses — and a
 * single cell can sustain >= 100M ops in minutes of host time.
 */

#ifndef FSENCR_WORKLOADS_SCALE_MICRO_HH
#define FSENCR_WORKLOADS_SCALE_MICRO_HH

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace fsencr {
namespace workloads {

/** Access pattern of a scale cell. */
enum class ScalePattern {
    /** 8-byte sequential sweep, alternating load/store: maximal
     *  L1-hit run length (8 accesses per line, 64 per page before
     *  the run re-opens). */
    Seq,
    /** 90% loads / 10% stores in bursts of eight 8-byte accesses to
     *  a random line of the span: fast-forward pays a run re-open
     *  (L1 probe, possibly a TLB re-find) every eight accesses. */
    Mixed,
};

const char *scalePatternName(ScalePattern p);

/** Parameters of one scale cell. */
struct ScaleMicroConfig
{
    ScalePattern pattern = ScalePattern::Seq;
    /** Measured 8-byte operations. */
    std::uint64_t ops = 100000000;
    /** Working-set bytes; must stay L1-resident (default 16 KB
     *  against the 32 KB modeled L1). */
    std::uint64_t spanBytes = 16 << 10;
    std::uint64_t seed = 9;
};

/** A scale micro-benchmark instance. */
class ScaleMicroWorkload : public Workload
{
  public:
    explicit ScaleMicroWorkload(const ScaleMicroConfig &cfg);

    std::string name() const override;
    void setup(System &sys) override;
    void execute(System &sys) override;
    std::uint64_t operations() const override { return cfg_.ops; }

  private:
    ScaleMicroConfig cfg_;
    Addr base_ = 0;
};

/** The bench_scale rows, in report order. */
std::vector<ScaleMicroConfig> scaleMicroSuite(std::uint64_t ops);

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_SCALE_MICRO_HH
