#include "workloads/whisper_bench.hh"

namespace fsencr {
namespace workloads {

const char *
whisperKindName(WhisperKind k)
{
    switch (k) {
      case WhisperKind::Ycsb: return "YCSB";
      case WhisperKind::Hashmap: return "Hashmap";
      case WhisperKind::CTree: return "CTree";
    }
    return "?";
}

WhisperWorkload::WhisperWorkload(const WhisperConfig &cfg)
    : cfg_(cfg), valueBuf_(cfg.valueBytes), readBuf_(cfg.valueBytes)
{}

std::string
WhisperWorkload::name() const
{
    return whisperKindName(cfg_.kind);
}

void
WhisperWorkload::put(System &sys, unsigned core, std::uint64_t key)
{
    (void)sys;
    if (cfg_.kind == WhisperKind::CTree)
        ctree_->put(core, key, valueBuf_.data());
    else
        hashmap_->put(core, key, valueBuf_.data());
}

bool
WhisperWorkload::get(System &sys, unsigned core, std::uint64_t key)
{
    (void)sys;
    if (cfg_.kind == WhisperKind::CTree)
        return ctree_->get(core, key, readBuf_.data());
    return hashmap_->get(core, key, readBuf_.data());
}

void
WhisperWorkload::setup(System &sys)
{
    standardEnvironment(sys, "alice-pass");

    std::size_t slot = roundUp(cfg_.valueBytes + 16, blockSize) + 64;
    std::uint64_t pool_bytes =
        (cfg_.numKeys * 4 + cfg_.numOps) * slot + (8 << 20);
    pool_ = std::make_unique<pmdk::PmemPool>(
        sys, 0, std::string("/pmem/whisper-") + name() + ".pool",
        pool_bytes, /*encrypted=*/true, "alice-pass");

    if (cfg_.kind == WhisperKind::CTree) {
        ctree_ = std::make_unique<CTreeKv>(*pool_, cfg_.valueBytes);
    } else {
        hashmap_ = std::make_unique<HashmapKv>(*pool_, cfg_.numKeys * 2,
                                               cfg_.valueBytes);
    }

    // Preload the store.
    Rng rng(cfg_.seed ^ 0xabcdef);
    for (std::uint64_t k = 0; k < cfg_.numKeys; ++k) {
        rng.fill(valueBuf_.data(), valueBuf_.size());
        unsigned core = static_cast<unsigned>(k % cfg_.workers);
        pool_->setCore(core);
        put(sys, core, k);
    }
}

void
WhisperWorkload::execute(System &sys)
{
    Rng rng(cfg_.seed);
    ZipfianGenerator zipf(cfg_.numKeys, 0.99, cfg_.seed ^ 0x2222);

    for (std::uint64_t i = 0; i < cfg_.numOps; ++i) {
        unsigned core = static_cast<unsigned>(i % cfg_.workers);
        pool_->setCore(core);

        std::uint64_t key;
        if (cfg_.kind == WhisperKind::Ycsb)
            key = zipf.next();
        else
            key = rng.nextBounded(cfg_.numKeys * 2);

        bool do_read = rng.nextDouble() < cfg_.readRatio;
        if (do_read) {
            get(sys, core, key);
        } else {
            rng.fill(valueBuf_.data(), valueBuf_.size());
            put(sys, core, key);
        }
        // Whisper applications do substantial non-memory work per
        // operation (request parsing, transaction bookkeeping, the
        // YCSB client) — the paper measured full-system execution.
        sys.tick(core, 800);
    }
}

std::vector<WhisperConfig>
whisperSuite(std::uint64_t keys)
{
    std::vector<WhisperConfig> suite;

    WhisperConfig ycsb;
    ycsb.kind = WhisperKind::Ycsb;
    ycsb.numKeys = keys;
    ycsb.numOps = keys;
    ycsb.valueBytes = 1024;
    ycsb.readRatio = 0.5;
    suite.push_back(ycsb);

    WhisperConfig hashmap;
    hashmap.kind = WhisperKind::Hashmap;
    hashmap.numKeys = keys;
    hashmap.numOps = keys;
    hashmap.valueBytes = 128;
    hashmap.readRatio = 0.3; // insert-heavy, as in Whisper
    suite.push_back(hashmap);

    WhisperConfig ctree;
    ctree.kind = WhisperKind::CTree;
    ctree.numKeys = keys;
    ctree.numOps = keys;
    ctree.valueBytes = 128;
    ctree.readRatio = 0.3;
    suite.push_back(ctree);

    return suite;
}

} // namespace workloads
} // namespace fsencr
