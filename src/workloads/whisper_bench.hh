/**
 * @file
 * Whisper-style benchmarks (Table II): YCSB (R/W ratio 0.5, zipfian,
 * 2 workers), Hashmap (128 B, 2 threads) and CTree (128 B, 2 threads).
 */

#ifndef FSENCR_WORKLOADS_WHISPER_BENCH_HH
#define FSENCR_WORKLOADS_WHISPER_BENCH_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "workloads/ctree_kv.hh"
#include "workloads/hashmap_kv.hh"
#include "workloads/workload.hh"

namespace fsencr {
namespace workloads {

/** Which Whisper benchmark. */
enum class WhisperKind { Ycsb, Hashmap, CTree };

const char *whisperKindName(WhisperKind k);

/** Parameters of one Whisper run. */
struct WhisperConfig
{
    WhisperKind kind = WhisperKind::Ycsb;
    std::uint64_t numKeys = 16384;
    std::uint64_t numOps = 16384;
    std::size_t valueBytes = 128; //!< YCSB uses 1024
    double readRatio = 0.5;
    unsigned workers = 2;
    std::uint64_t seed = 7;
};

/** A Whisper benchmark instance. */
class WhisperWorkload : public Workload
{
  public:
    explicit WhisperWorkload(const WhisperConfig &cfg);

    std::string name() const override;
    void setup(System &sys) override;
    void execute(System &sys) override;
    std::uint64_t operations() const override { return cfg_.numOps; }

  private:
    void put(System &sys, unsigned core, std::uint64_t key);
    bool get(System &sys, unsigned core, std::uint64_t key);

    WhisperConfig cfg_;
    std::unique_ptr<pmdk::PmemPool> pool_;
    std::unique_ptr<HashmapKv> hashmap_;
    std::unique_ptr<CTreeKv> ctree_;
    std::vector<std::uint8_t> valueBuf_;
    std::vector<std::uint8_t> readBuf_;
};

/** The three Whisper configurations of Figure 11, in figure order.
 *  Defaults exceed the LLC and the software-encryption page cache. */
std::vector<WhisperConfig> whisperSuite(std::uint64_t keys = 32768);

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_WHISPER_BENCH_HH
