/**
 * @file
 * Workload interface and runner.
 *
 * A workload has a setup phase (users, processes, files, data-structure
 * population — the paper fast-forwards past this, Section V) and a
 * measured execute phase. The runner brackets execute() with the
 * System's measurement window and reports ticks plus NVM read/write
 * counts, exactly the three quantities Figures 8-14 normalize.
 */

#ifndef FSENCR_WORKLOADS_WORKLOAD_HH
#define FSENCR_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/system.hh"

namespace fsencr {
namespace workloads {

/** Measured quantities of one workload run. */
struct WorkloadResult
{
    Tick ticks = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t operations = 0;
};

/** Base class for every benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier, e.g. "fillrandom-S". */
    virtual std::string name() const = 0;

    /** Unmeasured preparation (file creation, data loading). */
    virtual void setup(System &sys) = 0;

    /** The measured phase. */
    virtual void execute(System &sys) = 0;

    /** Number of measured operations (for per-op reporting). */
    virtual std::uint64_t operations() const = 0;
};

/** Run one workload on one system and collect the result. */
inline WorkloadResult
runWorkload(System &sys, Workload &w)
{
    w.setup(sys);
    sys.beginMeasurement();
    w.execute(sys);
    WorkloadResult r;
    r.ticks = sys.measuredTicks();
    r.nvmReads = sys.measuredReads();
    r.nvmWrites = sys.measuredWrites();
    r.operations = w.operations();
    return r;
}

/**
 * Standard environment every workload runs in: user "alice" (uid 1000,
 * gid 100) with one multi-threaded process whose threads are scheduled
 * one per core (Threads=2 in Table II), sharing one address space.
 *
 * @return the pid
 */
inline std::uint32_t
standardEnvironment(System &sys, const std::string &passphrase)
{
    sys.provisionAdmin("admin-pass");
    sys.bootLogin("admin-pass");
    sys.addUser("alice", 1000, 100, passphrase);
    std::uint32_t pid = sys.createProcess(1000);
    for (unsigned c = 0; c < sys.config().cpu.numCores; ++c)
        sys.runOnCore(c, pid);
    return pid;
}

} // namespace workloads
} // namespace fsencr

#endif // FSENCR_WORKLOADS_WORKLOAD_HH
