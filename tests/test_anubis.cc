/**
 * @file
 * Anubis-shadow recovery tests: equivalence with the full Osiris
 * sweep, the probe-count advantage, and the write-overhead cost.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
cfgFor(SecParams::Recovery recovery)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.seed = 555;
    cfg.sec.recovery = recovery;
    return cfg;
}

/** Write + persist a spread of records, then crash. */
Addr
runAndCrash(System &sys, unsigned records)
{
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/a", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, 1 << 20);
    Addr va = sys.mmapFile(0, fd, 1 << 20);
    for (unsigned i = 0; i < records; ++i) {
        sys.write<std::uint64_t>(0, va + i * 192, 0xadd0 + i);
        sys.persist(0, va + i * 192, 8);
    }
    sys.crash();
    return va;
}

} // namespace

TEST(Anubis, RecoversSameDataAsOsirisSweep)
{
    System sys(cfgFor(SecParams::Recovery::AnubisShadow));
    Addr va = runAndCrash(sys, 300);
    ASSERT_TRUE(sys.recover());
    for (unsigned i = 0; i < 300; ++i)
        EXPECT_EQ(sys.read<std::uint64_t>(0, va + i * 192),
                  0xadd0u + i)
            << i;
}

TEST(Anubis, ExaminesFewerLinesThanSweep)
{
    // Both machines run the same workload; Anubis probes only the
    // shadow-covered pages, the sweep probes every written line.
    System sweep(cfgFor(SecParams::Recovery::OsirisSweep));
    runAndCrash(sweep, 300);
    sweep.mc().recoverMetadata();
    sweep.kernel().restampAllFiles(0);
    auto sweep_report = sweep.mc().recoverAllReport();

    System anubis(cfgFor(SecParams::Recovery::AnubisShadow));
    runAndCrash(anubis, 300);
    anubis.mc().recoverMetadata();
    anubis.kernel().restampAllFiles(0);
    auto anubis_report = anubis.mc().recoverAllReport();

    EXPECT_EQ(sweep_report.failures, 0u);
    EXPECT_EQ(anubis_report.failures, 0u);
    EXPECT_LE(anubis_report.linesExamined,
              sweep_report.linesExamined);
    EXPECT_GT(sweep_report.linesExamined, 0u);
}

TEST(Anubis, ShadowTrackingCostsExtraWrites)
{
    auto writes = [](SecParams::Recovery r) {
        System sys(cfgFor(r));
        workloads::standardEnvironment(sys, "pw");
        int fd = sys.creat(0, "/pmem/w", 0600, OpenFlags::Encrypted, "pw");
        std::uint64_t span = 8 << 20; // thrash the metadata cache
        sys.ftruncate(0, fd, span);
        Addr va = sys.mmapFile(0, fd, span);
        sys.beginMeasurement();
        for (Addr off = 0; off < span; off += 128) {
            std::uint8_t v = 1;
            sys.store(0, va + off, &v, 1);
        }
        sys.shutdown();
        return sys.measuredWrites();
    };
    EXPECT_GT(writes(SecParams::Recovery::AnubisShadow),
              writes(SecParams::Recovery::OsirisSweep));
}

TEST(Anubis, CleanShutdownEmptiesShadow)
{
    System sys(cfgFor(SecParams::Recovery::AnubisShadow));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/s", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    sys.write<std::uint64_t>(0, va, 5);
    sys.persist(0, va, 8);
    sys.shutdown();
    sys.crash();
    sys.mc().recoverMetadata();
    // No restamp yet: the shadow must be empty after a clean
    // shutdown — nothing was stale at the crash, nothing to probe.
    auto report = sys.mc().recoverAllReport();
    EXPECT_EQ(report.linesExamined, 0u);
    EXPECT_TRUE(sys.recover());
    EXPECT_EQ(sys.read<std::uint64_t>(0, va), 5u);
}

TEST(Anubis, ReportModelsTime)
{
    System sys(cfgFor(SecParams::Recovery::AnubisShadow));
    runAndCrash(sys, 100);
    sys.mc().recoverMetadata();
    sys.kernel().restampAllFiles(0);
    auto report = sys.mc().recoverAllReport();
    EXPECT_GT(report.linesExamined, 0u);
    EXPECT_GE(report.probes, report.linesExamined);
    EXPECT_GT(report.modelTime, 0u);
}
