/**
 * @file
 * Audit ride-along tests: auditing off must be bit-identical to the
 * historical timing model (same golden ticks as the banked-timing
 * suite), auditing on must be deterministic down to the log-region
 * bytes, the serial path must be mshr-invariant, banked audit chains
 * must overlap metadata work, and the predicate/overflow/crash
 * semantics must match the documented durability contract.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/metrics.hh"
#include "fsenc/audit_log.hh"
#include "sim/system.hh"
#include "workloads/dax_micro.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
auditedConfig(unsigned banks = 1, unsigned mshrs = 8)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.pcm.mcBanks = banks;
    cfg.pcm.mcMshrs = mshrs;
    cfg.sec.auditEnabled = true;
    return cfg;
}

workloads::WorkloadResult
runDax1(System &sys)
{
    workloads::DaxMicroConfig c;
    c.kind = workloads::DaxMicroKind::Dax1;
    c.spanBytes = 256 << 10;
    workloads::DaxMicroWorkload w(c);
    return workloads::runWorkload(sys, w);
}

/** Snapshot of the on-NVM audit region after a drained run. */
std::vector<std::uint8_t>
regionBytes(System &sys)
{
    const PhysLayout &layout = sys.layout();
    std::vector<std::uint8_t> bytes(layout.auditLogBytes());
    for (std::uint64_t off = 0; off < bytes.size(); off += blockSize)
        sys.device().readLine(layout.auditLogBase() + off,
                              bytes.data() + off);
    return bytes;
}

} // namespace

/**
 * Auditing off is the pre-audit simulator bit-for-bit: the golden
 * ticks from the banked-timing suite still hold, even with stray
 * audit knobs set (they must be inert while auditEnabled is false),
 * and the layout keeps no audit region (same Merkle geometry).
 */
TEST(Audit, OffIsBitIdenticalToLegacy)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.sec.auditEnabled = false;
    cfg.sec.auditWcbRecords = 3;
    cfg.sec.auditGroups = {7, 9};
    System sys(cfg);
    EXPECT_EQ(sys.layout().auditLogBytes(), 0u);
    EXPECT_EQ(sys.mc().auditLog(), nullptr);

    workloads::WorkloadResult r = runDax1(sys);
    EXPECT_EQ(r.ticks, 547121500u);
    EXPECT_EQ(r.nvmReads, 4248u);
    EXPECT_EQ(r.nvmWrites, 0u);
}

/** Same seed, same config => byte-identical log region and scan. */
TEST(Audit, SameSeedByteIdenticalLog)
{
    System a(auditedConfig()), b(auditedConfig());
    workloads::WorkloadResult ra = runDax1(a);
    workloads::WorkloadResult rb = runDax1(b);
    ASSERT_NE(a.mc().auditLog(), nullptr);
    a.mc().auditLog()->drain(a.now());
    b.mc().auditLog()->drain(b.now());

    EXPECT_EQ(ra.ticks, rb.ticks);
    EXPECT_GT(a.mc().auditLog()->appendedRecords(), 0u);
    EXPECT_EQ(a.mc().auditLog()->appendedRecords(),
              b.mc().auditLog()->appendedRecords());
    EXPECT_EQ(a.mc().auditLog()->ackedRecords(),
              a.mc().auditLog()->appendedRecords());
    EXPECT_EQ(regionBytes(a), regionBytes(b));

    AuditScanResult sa = a.mc().auditLog()->scan();
    AuditScanResult sb = b.mc().auditLog()->scan();
    EXPECT_FALSE(sa.integrityTruncated);
    ASSERT_EQ(sa.records.size(), sb.records.size());
    for (std::size_t i = 0; i < sa.records.size(); ++i)
        EXPECT_TRUE(sa.records[i] == sb.records[i]) << "record " << i;
}

/** banks=1 is the legacy serial model: mcMshrs must not matter. */
TEST(Audit, SerialPathIsMshrInvariant)
{
    System narrow(auditedConfig(1, 1)), wide(auditedConfig(1, 32));
    workloads::WorkloadResult rn = runDax1(narrow);
    workloads::WorkloadResult rw = runDax1(wide);
    EXPECT_EQ(rn.ticks, rw.ticks);
    EXPECT_EQ(narrow.mc().overlapTicks(), 0u);
    EXPECT_EQ(wide.mc().overlapTicks(), 0u);
}

/**
 * Banked mode: audit appends issue as an independent request chain,
 * so mc.overlap{op=audit} must light up at --mc-banks 4 and the
 * modeled numbers stay deterministic.
 */
TEST(Audit, BankedAuditOverlapsMetadataChains)
{
    metrics::Registry reg;
    System banked(auditedConfig(4, 8));
    banked.setMetrics(&reg);
    workloads::WorkloadResult rb = runDax1(banked);

    const auto &fam = reg.families();
    auto overlap = fam.find("mc.overlap");
    ASSERT_NE(overlap, fam.end());
    EXPECT_GT(overlap->second->value("audit"), 0u);

    auto audit = fam.find("mc.audit");
    ASSERT_NE(audit, fam.end());
    EXPECT_EQ(audit->second->value("append"),
              banked.mc().auditLog()->appendedRecords());

    System again(auditedConfig(4, 8));
    workloads::WorkloadResult ra = runDax1(again);
    EXPECT_EQ(rb.ticks, ra.ticks);

    // The ride-along only ever adds time relative to auditing off.
    System off{[] {
        SimConfig cfg;
        cfg.scheme = Scheme::FsEncr;
        cfg.pcm.mcBanks = 4;
        return cfg;
    }()};
    workloads::WorkloadResult ro = runDax1(off);
    EXPECT_GE(rb.ticks, ro.ticks);
    EXPECT_EQ(rb.nvmReads, ro.nvmReads);
}

/** The per-GroupID predicate gates what the log accepts. */
TEST(Audit, FilterPredicateSelectsGroups)
{
    // The standard environment runs everything as alice (gid 100).
    SimConfig hit = auditedConfig();
    hit.sec.auditGroups = {100};
    System match(hit);
    runDax1(match);
    EXPECT_GT(match.mc().auditLog()->appendedRecords(), 0u);

    SimConfig miss = auditedConfig();
    miss.sec.auditGroups = {9999};
    System none(miss);
    runDax1(none);
    EXPECT_EQ(none.mc().auditLog()->appendedRecords(), 0u);

    match.mc().auditLog()->drain(match.now());
    for (const AuditRecord &r : match.mc().auditLog()->scan().records)
        EXPECT_EQ(r.gid(), 100u);
}

/** A full region drops (and counts) instead of wrapping or dying. */
TEST(Audit, OverflowDropsAreCounted)
{
    SimConfig cfg = auditedConfig();
    cfg.layout.auditLogBytes = 4 * blockSize; // header + 3 data lines
    System sys(cfg);
    runDax1(sys);
    AuditLog *log = sys.mc().auditLog();
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->capacityRecords(), 6u);
    EXPECT_EQ(log->appendedRecords(), 6u);
    EXPECT_GT(log->overflowDropped(), 0u);
    log->drain(sys.now()); // capacity < WCB threshold: flush by hand
    AuditScanResult scan = log->scan();
    EXPECT_FALSE(scan.integrityTruncated);
    EXPECT_EQ(scan.records.size(), 6u);
}

/**
 * Power loss discards the unacknowledged WCB tail and nothing else:
 * the recovered log is exactly the acknowledged prefix of the golden
 * stream.
 */
TEST(Audit, CrashKeepsAcknowledgedPrefix)
{
    SimConfig cfg = auditedConfig();
    cfg.sec.auditWcbRecords = 1000; // park a long unflushed tail
    System sys(cfg);
    runDax1(sys);
    AuditLog *log = sys.mc().auditLog();
    ASSERT_NE(log, nullptr);
    std::uint64_t appended = log->appendedRecords();
    std::uint64_t acked = log->ackedRecords();
    ASSERT_LT(acked, appended); // the tail really was parked

    sys.crash();
    ASSERT_TRUE(sys.recover());
    EXPECT_EQ(log->crashDropped(), appended - acked);

    AuditScanResult scan = log->scan();
    EXPECT_FALSE(scan.integrityTruncated);
    ASSERT_EQ(scan.records.size(), acked);
    const auto &golden = log->goldenRecords();
    for (std::size_t i = 0; i < scan.records.size(); ++i)
        EXPECT_TRUE(scan.records[i] == golden[i]) << "record " << i;

    // The frozen log refuses further appends.
    EXPECT_EQ(log->append(AuditRecord{}, sys.now()), 0u);
    EXPECT_EQ(log->appendedRecords(), appended);
}

/**
 * Under eADR the WCB is inside the persistence domain: the crash-time
 * backup-power flush drains the parked tail into the log region, so
 * nothing is dropped and the recovered log is the full golden stream
 * (contrast CrashKeepsAcknowledgedPrefix, the ADR behavior).
 */
TEST(Audit, EadrCrashDrainsParkedTail)
{
    SimConfig cfg = auditedConfig();
    cfg.sec.persistDomain = PersistDomain::Eadr;
    cfg.sec.auditWcbRecords = 1000; // park a long unflushed tail
    System sys(cfg);
    runDax1(sys);
    AuditLog *log = sys.mc().auditLog();
    ASSERT_NE(log, nullptr);
    std::uint64_t run_appended = log->appendedRecords();
    ASSERT_LT(log->ackedRecords(), run_appended); // the tail was parked

    // The crash drain itself appends: dirty data lines reach the
    // controller for the first time during the stage-1 backup flush,
    // so the golden stream keeps growing until the log freezes.
    sys.crash();
    std::uint64_t appended = log->appendedRecords();
    EXPECT_GE(appended, run_appended);
    ASSERT_TRUE(sys.recover());
    EXPECT_EQ(log->crashDropped(), 0u);
    EXPECT_EQ(log->ackedRecords(), appended);

    AuditScanResult scan = log->scan();
    EXPECT_FALSE(scan.integrityTruncated);
    ASSERT_EQ(scan.records.size(), appended);
    const auto &golden = log->goldenRecords();
    for (std::size_t i = 0; i < scan.records.size(); ++i)
        EXPECT_TRUE(scan.records[i] == golden[i]) << "record " << i;
}
