/**
 * @file
 * Banked-timing tests: the default single-issue configuration
 * (--mc-banks 1) must reproduce the pre-banked serial model
 * tick-for-tick (golden values captured from the legacy advanceMc
 * path), and banked configurations must be deterministic, hide a
 * nonzero number of serial ticks behind metadata-chain overlap, and
 * leave the functional NVM traffic untouched.
 */

#include <gtest/gtest.h>

#include "bench/harness.hh"
#include "sim/system.hh"
#include "workloads/dax_micro.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

/** One measured run of the Dax1 read micro over a 256 KiB span. */
struct DaxRun
{
    Tick ticks = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t overlapTicks = 0;
    std::uint64_t overlappedRequests = 0;
};

DaxRun
runDax1(Scheme scheme, unsigned banks, unsigned mshrs = 8)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.pcm.mcBanks = banks;
    cfg.pcm.mcMshrs = mshrs;
    System sys(cfg);
    workloads::DaxMicroConfig c;
    c.kind = workloads::DaxMicroKind::Dax1;
    c.spanBytes = 256 << 10;
    workloads::DaxMicroWorkload w(c);
    workloads::WorkloadResult r = workloads::runWorkload(sys, w);
    DaxRun out;
    out.ticks = r.ticks;
    out.nvmReads = r.nvmReads;
    out.nvmWrites = r.nvmWrites;
    out.overlapTicks = sys.mc().overlapTicks();
    out.overlappedRequests = sys.mc().overlappedRequests();
    return out;
}

/** The two golden workloads: a small pmemkv fill plus the DAX read
 *  micro, across the three paper schemes. */
std::vector<RowSpec>
goldenSpecs()
{
    workloads::PmemkvConfig kv;
    kv.op = workloads::PmemkvOp::FillRandom;
    kv.numKeys = 256;
    kv.numOps = 256;
    kv.valueBytes = 64;

    workloads::DaxMicroConfig dax;
    dax.kind = workloads::DaxMicroKind::Dax1;
    dax.spanBytes = 256 << 10;

    return {
        {"kv-fillrandom", [kv]() {
             return std::make_unique<workloads::PmemkvWorkload>(kv);
         }},
        {"dax1", [dax]() {
             return std::make_unique<workloads::DaxMicroWorkload>(dax);
         }},
    };
}

} // namespace

/**
 * The default configuration is the legacy strictly serial model:
 * these golden ticks were captured from the pre-banked simulator, so
 * any drift here means --mc-banks 1 is no longer bit-identical to the
 * historical timing model (every committed baseline would shift).
 */
TEST(BankedTiming, SerialModelGoldenTicks)
{
    const std::vector<Scheme> schemes{Scheme::NoEncryption,
                                      Scheme::BaselineSecurity,
                                      Scheme::FsEncr};
    auto rows = runRows(goldenSpecs(), schemes, SimConfig{}, 1);
    ASSERT_EQ(rows.size(), 2u);

    struct Golden
    {
        Tick ticks;
        std::uint64_t reads, writes;
    };
    // row -> scheme -> {ticks, nvm reads, nvm writes}
    const Golden golden[2][3] = {
        {{171249500, 557, 1788},
         {211834000, 695, 2197},
         {248489000, 831, 2367}},
        {{428800000, 4096, 0},
         {534078000, 4184, 0},
         {547121500, 4248, 0}},
    };
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const Cell &c = rows[r].cells.at(schemes[s]);
            EXPECT_EQ(c.ticks, golden[r][s].ticks)
                << rows[r].name << "/" << schemeName(schemes[s]);
            EXPECT_EQ(c.nvmReads, golden[r][s].reads)
                << rows[r].name << "/" << schemeName(schemes[s]);
            EXPECT_EQ(c.nvmWrites, golden[r][s].writes)
                << rows[r].name << "/" << schemeName(schemes[s]);
            // Single-issue: nothing overlaps, by construction.
            EXPECT_EQ(c.mcOverlapTicks, 0u);
        }
    }
}

/** An explicit --mc-banks 1 is the same model as the default. */
TEST(BankedTiming, SingleBankMatchesDefault)
{
    DaxRun dflt = runDax1(Scheme::FsEncr, 1);
    EXPECT_EQ(dflt.ticks, 547121500u);
    EXPECT_EQ(dflt.nvmReads, 4248u);
    EXPECT_EQ(dflt.overlapTicks, 0u);
    EXPECT_EQ(dflt.overlappedRequests, 0u);

    // mcMshrs alone must not enable overlap either.
    DaxRun wide_mshrs = runDax1(Scheme::FsEncr, 1, 32);
    EXPECT_EQ(wide_mshrs.ticks, dflt.ticks);
    EXPECT_EQ(wide_mshrs.overlapTicks, 0u);
}

/**
 * Banked mode: independent metadata chains overlap, so FsEncr's DAX
 * reads get faster, the hidden ticks are reported, and the functional
 * NVM traffic (reads/writes) is exactly the serial model's.
 */
TEST(BankedTiming, BankedOverlapIsDeterministic)
{
    DaxRun serial = runDax1(Scheme::FsEncr, 1);
    DaxRun banked = runDax1(Scheme::FsEncr, 4);
    DaxRun again = runDax1(Scheme::FsEncr, 4);

    // Same seed, same config => bit-identical modeled numbers.
    EXPECT_EQ(banked.ticks, again.ticks);
    EXPECT_EQ(banked.overlapTicks, again.overlapTicks);
    EXPECT_EQ(banked.overlappedRequests, again.overlappedRequests);

    // Overlap exists and only ever hides time. (The end-to-end delta
    // need not equal the per-request overlap sum exactly: issuing the
    // FECB chain earlier also shifts row-buffer state.)
    EXPECT_GT(banked.overlapTicks, 0u);
    EXPECT_GT(banked.overlappedRequests, 0u);
    EXPECT_LT(banked.ticks, serial.ticks);

    // Timing-only: the request streams are unchanged.
    EXPECT_EQ(banked.nvmReads, serial.nvmReads);
    EXPECT_EQ(banked.nvmWrites, serial.nvmWrites);
}

/** A single MSHR serializes even a many-banked device. */
TEST(BankedTiming, MshrsGateOverlap)
{
    DaxRun gated = runDax1(Scheme::FsEncr, 4, /*mshrs=*/1);
    EXPECT_EQ(gated.ticks, 547121500u);
    EXPECT_EQ(gated.overlapTicks, 0u);
}

/** Overlap shows up in bench cells (the mc_overlap_ticks report
 *  field) when a banked config is passed through runRows. */
TEST(BankedTiming, BenchCellsCarryOverlap)
{
    workloads::DaxMicroConfig dax;
    dax.kind = workloads::DaxMicroKind::Dax1;
    dax.spanBytes = 256 << 10;
    std::vector<RowSpec> specs = {
        {"dax1", [dax]() {
             return std::make_unique<workloads::DaxMicroWorkload>(dax);
         }},
    };
    SimConfig banked;
    banked.pcm.mcBanks = 4;
    auto rows =
        runRows(specs, {Scheme::FsEncr, Scheme::NoEncryption}, banked, 2);
    const Cell &fsencr = rows[0].cells.at(Scheme::FsEncr);
    EXPECT_GT(fsencr.mcOverlapTicks, 0u);
    // No metadata chains to overlap without encryption.
    const Cell &plain = rows[0].cells.at(Scheme::NoEncryption);
    EXPECT_EQ(plain.mcOverlapTicks, 0u);
}
