/**
 * @file
 * Bench-harness tests: the thread-pool fan-out must report results
 * bit-identical to a serial run (parallelism is host-side only and
 * must never leak into modeled numbers), and the --jobs knob must
 * parse its documented forms.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/harness.hh"
#include "workloads/dax_micro.hh"
#include "workloads/pmemkv_bench.hh"

using namespace fsencr;
using namespace fsencr::bench;

namespace {

/** Two tiny workloads — enough cells to exercise the pool. */
std::vector<RowSpec>
tinySpecs()
{
    workloads::PmemkvConfig kv;
    kv.op = workloads::PmemkvOp::FillSeq;
    kv.numKeys = 128;
    kv.numOps = 128;
    kv.valueBytes = 64;

    workloads::DaxMicroConfig dax;
    dax.kind = workloads::DaxMicroKind::Dax1;
    dax.spanBytes = 256 << 10;

    return {
        {"kv-fillseq", [kv]() {
             return std::make_unique<workloads::PmemkvWorkload>(kv);
         }},
        {"dax1", [dax]() {
             return std::make_unique<workloads::DaxMicroWorkload>(dax);
         }},
    };
}

std::vector<Scheme>
allSchemes()
{
    return {Scheme::NoEncryption, Scheme::BaselineSecurity,
            Scheme::FsEncr};
}

} // namespace

TEST(BenchHarness, ParallelRunIsBitIdenticalToSerial)
{
    auto specs = tinySpecs();
    auto schemes = allSchemes();

    std::vector<BenchRow> serial = runRows(specs, schemes, SimConfig{},
                                           /*jobs=*/1);
    std::vector<BenchRow> threaded = runRows(specs, schemes,
                                             SimConfig{}, /*jobs=*/4);

    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
        EXPECT_EQ(serial[r].name, threaded[r].name);
        ASSERT_EQ(serial[r].cells.size(), threaded[r].cells.size());
        for (Scheme s : schemes) {
            const Cell &a = serial[r].cells.at(s);
            const Cell &b = threaded[r].cells.at(s);
            EXPECT_EQ(a.ticks, b.ticks)
                << serial[r].name << " / " << schemeName(s);
            EXPECT_EQ(a.nvmReads, b.nvmReads)
                << serial[r].name << " / " << schemeName(s);
            EXPECT_EQ(a.nvmWrites, b.nvmWrites)
                << serial[r].name << " / " << schemeName(s);
            EXPECT_EQ(a.operations, b.operations)
                << serial[r].name << " / " << schemeName(s);
        }
    }
}

TEST(BenchHarness, RepeatedSerialRunsAgree)
{
    // The determinism the parallel test relies on: two fresh serial
    // runs of the same cell report identical numbers.
    auto specs = tinySpecs();
    std::vector<Scheme> one{Scheme::FsEncr};

    BenchRow a = runRows(specs, one)[0];
    BenchRow b = runRows(specs, one)[0];
    EXPECT_EQ(a.cells.at(Scheme::FsEncr).ticks,
              b.cells.at(Scheme::FsEncr).ticks);
    EXPECT_EQ(a.cells.at(Scheme::FsEncr).nvmWrites,
              b.cells.at(Scheme::FsEncr).nvmWrites);
}

TEST(BenchHarness, JobsFlagParsing)
{
    // Keep the environment out of the flag tests.
    unsetenv("FSENCR_BENCH_JOBS");

    {
        char a0[] = "bench", a1[] = "--jobs", a2[] = "3";
        char *argv[] = {a0, a1, a2};
        EXPECT_EQ(benchJobs(3, argv), 3u);
    }
    {
        char a0[] = "bench", a1[] = "--jobs=5";
        char *argv[] = {a0, a1};
        EXPECT_EQ(benchJobs(2, argv), 5u);
    }
    {
        // 0 means "one thread per hardware thread" — at least one.
        char a0[] = "bench", a1[] = "--jobs=0";
        char *argv[] = {a0, a1};
        EXPECT_GE(benchJobs(2, argv), 1u);
    }
    {
        char a0[] = "bench", a1[] = "--jobs=junk";
        char *argv[] = {a0, a1};
        EXPECT_EQ(benchJobs(2, argv), 1u);
    }
    {
        char a0[] = "bench";
        char *argv[] = {a0};
        EXPECT_EQ(benchJobs(1, argv), 1u);
    }
}

TEST(BenchHarness, JobsEnvFallback)
{
    setenv("FSENCR_BENCH_JOBS", "6", 1);
    char a0[] = "bench";
    char *argv[] = {a0};
    EXPECT_EQ(benchJobs(1, argv), 6u);

    // Command line wins over the environment.
    char b1[] = "--jobs=2";
    char *argv2[] = {a0, b1};
    EXPECT_EQ(benchJobs(2, argv2), 2u);
    unsetenv("FSENCR_BENCH_JOBS");
}
