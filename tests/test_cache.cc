/**
 * @file
 * Cache model tests: set-associative LRU behaviour, dirty/writeback
 * semantics, the three-level hierarchy and clwb.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "common/logging.hh"

using namespace fsencr;

namespace {

/** Collects writebacks for inspection. */
class RecordingSink : public WritebackSink
{
  public:
    void writebackLine(Addr addr) override { lines.push_back(addr); }
    std::vector<Addr> lines;
};

} // namespace

TEST(SetAssocCache, HitAfterMiss)
{
    SetAssocCache c("t", 4096, 4);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1020, false).hit); // same line
}

TEST(SetAssocCache, GeometryChecks)
{
    SetAssocCache c("t", 8192, 8);
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.assoc(), 8u);
    EXPECT_EQ(c.capacityBytes(), 8192u);
    EXPECT_THROW(SetAssocCache("bad", 100, 3), FatalError);
}

TEST(SetAssocCache, LruEviction)
{
    // 2-way, map three lines to one set; the least recent goes.
    SetAssocCache c("t", 2 * 64, 2); // 1 set, 2 ways
    c.access(0x0, false);
    c.access(0x40, false);
    c.access(0x0, false); // refresh line 0
    auto r = c.access(0x80, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victimAddr, 0x40u); // LRU victim
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x40));
}

TEST(SetAssocCache, DirtyVictimTriggersWriteback)
{
    SetAssocCache c("t", 2 * 64, 2);
    c.access(0x0, true); // dirty
    c.access(0x40, false);
    auto r = c.access(0x80, false); // evicts 0x0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0x0u);
}

TEST(SetAssocCache, CleanVictimNoWriteback)
{
    SetAssocCache c("t", 2 * 64, 2);
    c.access(0x0, false);
    c.access(0x40, false);
    auto r = c.access(0x80, false);
    EXPECT_TRUE(r.evicted);
    EXPECT_FALSE(r.writeback);
}

TEST(SetAssocCache, InvalidateReportsDirty)
{
    SetAssocCache c("t", 4096, 4);
    c.access(0x100, true);
    EXPECT_TRUE(c.isDirty(0x100));
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.invalidate(0x100));
}

TEST(SetAssocCache, CleanKeepsLineResident)
{
    SetAssocCache c("t", 4096, 4);
    c.access(0x200, true);
    c.clean(0x200);
    EXPECT_TRUE(c.probe(0x200));
    EXPECT_FALSE(c.isDirty(0x200));
}

TEST(SetAssocCache, WriteOnHitSetsDirty)
{
    SetAssocCache c("t", 4096, 4);
    c.access(0x300, false);
    EXPECT_FALSE(c.isDirty(0x300));
    c.access(0x300, true);
    EXPECT_TRUE(c.isDirty(0x300));
}

TEST(SetAssocCache, LoseAllDropsEverything)
{
    SetAssocCache c("t", 4096, 4);
    c.access(0x0, true);
    c.access(0x1000, true);
    c.loseAll();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(SetAssocCache, ForEachLineVisitsValid)
{
    SetAssocCache c("t", 4096, 4);
    c.access(0x0, true);
    c.access(0x1000, false);
    unsigned total = 0, dirty = 0;
    c.forEachLine([&](Addr, bool d) {
        ++total;
        if (d)
            ++dirty;
    });
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(dirty, 1u);
}

TEST(SetAssocCache, StatsCount)
{
    SetAssocCache c("t", 4096, 4);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(SetAssocCache, DfBitAddressesAreDistinctLines)
{
    // The DF-bit is part of the tag; per-page consistency means a page
    // is always accessed with the same bit, so no aliasing arises.
    SetAssocCache c("t", 4096, 4);
    c.access(0x1000, false);
    EXPECT_FALSE(c.probe(0x1000 | (1ull << 51)));
}

namespace {

CpuParams
tinyCpu()
{
    CpuParams p;
    p.numCores = 2;
    p.l1 = {1024, 2, 2};
    p.l2 = {4096, 4, 20};
    p.l3 = {16384, 4, 32};
    return p;
}

} // namespace

TEST(CacheHierarchy, FillsAndHitsByLevel)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;

    auto first = h.access(0, 0x1000, false, sink);
    EXPECT_EQ(first.level, HitLevel::Memory);
    auto second = h.access(0, 0x1000, false, sink);
    EXPECT_EQ(second.level, HitLevel::L1);
    EXPECT_LT(second.cycles, first.cycles);
}

TEST(CacheHierarchy, CrossCoreHitsInL3)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;
    h.access(0, 0x2000, false, sink);
    auto r = h.access(1, 0x2000, false, sink);
    EXPECT_EQ(r.level, HitLevel::L3);
}

TEST(CacheHierarchy, DirtyEvictionReachesSink)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;
    // Write lines far beyond total capacity; dirty victims must reach
    // the sink.
    for (Addr a = 0; a < 64 * 1024; a += 64)
        h.access(0, a, true, sink);
    EXPECT_FALSE(sink.lines.empty());
}

TEST(CacheHierarchy, ClwbDrainsDirtyLine)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;
    h.access(0, 0x3000, true, sink);
    EXPECT_TRUE(h.clwb(0, 0x3000, sink));
    ASSERT_EQ(sink.lines.size(), 1u);
    EXPECT_EQ(sink.lines[0], 0x3000u);
    // Second clwb: line is now clean everywhere.
    EXPECT_FALSE(h.clwb(0, 0x3000, sink));
}

TEST(CacheHierarchy, ClwbOnUncachedLineIsNoop)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;
    EXPECT_FALSE(h.clwb(0, 0x9000, sink));
    EXPECT_TRUE(sink.lines.empty());
}

TEST(CacheHierarchy, FlushAllWritesEveryDirtyLine)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;
    h.access(0, 0x100, true, sink);
    h.access(1, 0x200, true, sink);
    h.access(0, 0x300, false, sink);
    sink.lines.clear();
    h.flushAll(sink);
    EXPECT_EQ(sink.lines.size(), 2u);
}

TEST(CacheHierarchy, CrashLosesDirtyData)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;
    h.access(0, 0x100, true, sink);
    h.access(0, 0x200, true, sink);
    std::vector<Addr> lost = h.crash();
    EXPECT_EQ(lost.size(), 2u);
    // Everything is gone: next access misses to memory.
    EXPECT_EQ(h.access(0, 0x100, false, sink).level, HitLevel::Memory);
}

TEST(CacheHierarchy, InvalidCoreIsPanic)
{
    CacheHierarchy h(tinyCpu());
    RecordingSink sink;
    EXPECT_THROW(h.access(7, 0x0, false, sink), PanicError);
}
