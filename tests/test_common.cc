/**
 * @file
 * Tests for the common infrastructure: bitfields, types, stats,
 * logging.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/bitfield.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace fsencr;

TEST(Bitfield, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xf), 0xf0u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0), 0xff0fu);
}

TEST(Bitfield, SingleBit)
{
    EXPECT_TRUE(bit(0x8, 3));
    EXPECT_FALSE(bit(0x8, 2));
}

TEST(Bitfield, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Bitfield, PowerOf2)
{
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_FALSE(isPowerOf2(0));
}

TEST(Bitfield, RoundUp)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
}

TEST(Types, BlockAndPageHelpers)
{
    Addr a = 0x12345;
    EXPECT_EQ(blockAlign(a), 0x12340u);
    EXPECT_EQ(blockOffset(a), 5u);
    EXPECT_EQ(pageAlign(a), 0x12000u);
    EXPECT_EQ(pageOffset(a), 0x345u);
    EXPECT_EQ(pageNumber(a), 0x12u);
    EXPECT_EQ(blockInPage(a), 0x345u / 64);
}

TEST(Types, BlocksPerPage)
{
    EXPECT_EQ(blocksPerPage, 64u);
    EXPECT_EQ(pageSize / blockSize, blocksPerPage);
}

TEST(Stats, ScalarBasics)
{
    stats::Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(1000); // overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.maxValue(), 1000u);
    EXPECT_EQ(h.minValue(), 0u);
}

TEST(Stats, GroupLookupAndDump)
{
    stats::StatGroup root("root");
    stats::StatGroup child("child");
    stats::Scalar a, b;
    root.addScalar("a", a);
    child.addScalar("b", b);
    root.addChild(&child);
    a += 3;
    b += 7;

    EXPECT_EQ(root.scalarValue("a"), 3u);
    EXPECT_EQ(root.scalarValue("child.b"), 7u);

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("root.a = 3"), std::string::npos);
    EXPECT_NE(os.str().find("root.child.b = 7"), std::string::npos);
}

TEST(Stats, UnknownStatIsFatal)
{
    stats::StatGroup root("root");
    EXPECT_THROW(root.scalarValue("nope"), FatalError);
}

TEST(Stats, ResetAllRecurses)
{
    stats::StatGroup root("root");
    stats::StatGroup child("child");
    stats::Scalar a, b;
    root.addScalar("a", a);
    child.addScalar("b", b);
    root.addChild(&child);
    a += 1;
    b += 1;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom %d", 1), FatalError);
}

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(panic("bug %s", "here"), PanicError);
}

TEST(Config, SchemePredicates)
{
    SimConfig c;
    c.scheme = Scheme::NoEncryption;
    EXPECT_FALSE(c.hasMemoryEncryption());
    EXPECT_FALSE(c.hasFsEncr());
    c.scheme = Scheme::BaselineSecurity;
    EXPECT_TRUE(c.hasMemoryEncryption());
    EXPECT_FALSE(c.hasFsEncr());
    c.scheme = Scheme::FsEncr;
    EXPECT_TRUE(c.hasMemoryEncryption());
    EXPECT_TRUE(c.hasFsEncr());
    c.scheme = Scheme::SoftwareEncryption;
    EXPECT_FALSE(c.hasMemoryEncryption());
    EXPECT_TRUE(c.hasSoftwareEncryption());
}

TEST(Config, SchemeNames)
{
    EXPECT_STREQ(schemeName(Scheme::FsEncr), "fsencr");
    EXPECT_STREQ(schemeName(Scheme::BaselineSecurity),
                 "baseline-security");
}
