/**
 * @file
 * Crypto substrate tests: FIPS-197 / FIPS 180-4 known-answer tests,
 * CTR-pad properties, key wrapping and derivation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "crypto/aes.hh"
#include "crypto/aes_cache.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/key.hh"
#include "crypto/sha256.hh"

using namespace fsencr;
using namespace fsencr::crypto;

namespace {

Block128
blockFromHex(const char *hex)
{
    Block128 b{};
    for (int i = 0; i < 16; ++i) {
        unsigned v;
        std::sscanf(hex + 2 * i, "%2x", &v);
        b[i] = static_cast<std::uint8_t>(v);
    }
    return b;
}

std::string
digestToHex(const Digest256 &d)
{
    char buf[65];
    for (int i = 0; i < 32; ++i)
        std::snprintf(buf + 2 * i, 3, "%02x", d[i]);
    return std::string(buf);
}

} // namespace

TEST(Aes128, Fips197KnownAnswer)
{
    // FIPS-197 Appendix C.1.
    Block128 key = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Block128 plain = blockFromHex("00112233445566778899aabbccddeeff");
    Block128 expect = blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");

    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(plain), expect);
    EXPECT_EQ(aes.decryptBlock(expect), plain);
}

TEST(Aes128, AppendixBVector)
{
    // FIPS-197 Appendix B.
    Block128 key = blockFromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Block128 plain = blockFromHex("3243f6a8885a308d313198a2e0370734");
    Block128 expect = blockFromHex("3925841d02dc09fbdc118597196a0b32");

    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(plain), expect);
}

TEST(Aes128, RoundTripRandomBlocks)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        Key128 key = randomKey(rng);
        Aes128 aes(key);
        Block128 p;
        rng.fill(p.data(), p.size());
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(p)), p);
    }
}

TEST(Aes128, RekeyChangesCiphertext)
{
    Rng rng(7);
    Block128 p;
    rng.fill(p.data(), p.size());
    Aes128 aes(randomKey(rng));
    Block128 c1 = aes.encryptBlock(p);
    aes.setKey(randomKey(rng));
    Block128 c2 = aes.encryptBlock(p);
    EXPECT_NE(c1, c2);
}

namespace {

/** Backends to cross-check; AES-NI is included only when the host
 *  supports it (setBackend would silently degrade it to TTable). */
std::vector<Aes128::Backend>
availableBackends()
{
    std::vector<Aes128::Backend> b{Aes128::Backend::Reference,
                                   Aes128::Backend::TTable};
    if (Aes128::aesniAvailable())
        b.push_back(Aes128::Backend::AesNi);
    return b;
}

} // namespace

TEST(Aes128Backends, Fips197KnownAnswerEveryBackend)
{
    // FIPS-197 Appendix C.1, checked against every compiled-in
    // backend, not just the dispatch default.
    Block128 key = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Block128 plain = blockFromHex("00112233445566778899aabbccddeeff");
    Block128 expect = blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");

    for (Aes128::Backend b : availableBackends()) {
        Aes128 aes(key, b);
        ASSERT_EQ(aes.backend(), b);
        EXPECT_EQ(aes.encryptBlock(plain), expect)
            << Aes128::backendName(b);
        EXPECT_EQ(aes.decryptBlock(expect), plain)
            << Aes128::backendName(b);
    }
}

TEST(Aes128Backends, AppendixBVectorEveryBackend)
{
    Block128 key = blockFromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Block128 plain = blockFromHex("3243f6a8885a308d313198a2e0370734");
    Block128 expect = blockFromHex("3925841d02dc09fbdc118597196a0b32");

    for (Aes128::Backend b : availableBackends()) {
        Aes128 aes(key, b);
        EXPECT_EQ(aes.encryptBlock(plain), expect)
            << Aes128::backendName(b);
    }
}

TEST(Aes128Backends, RandomizedCrossCheck)
{
    // T-table (and AES-NI when present) must agree with the byte-wise
    // reference on random key/plaintext pairs.
    Rng rng(1234);
    for (int trial = 0; trial < 200; ++trial) {
        Key128 key = randomKey(rng);
        Block128 p;
        rng.fill(p.data(), p.size());

        Aes128 ref(key, Aes128::Backend::Reference);
        Block128 expect = ref.encryptBlock(p);
        EXPECT_EQ(ref.encryptBlockRef(p), expect);

        Aes128 tt(key, Aes128::Backend::TTable);
        EXPECT_EQ(tt.encryptBlock(p), expect) << "trial " << trial;

        if (Aes128::aesniAvailable()) {
            Aes128 ni(key, Aes128::Backend::AesNi);
            EXPECT_EQ(ni.encryptBlock(p), expect)
                << "trial " << trial;
        }
    }
}

TEST(Aes128Backends, Batch4MatchesSingleBlock)
{
    Rng rng(4321);
    for (int trial = 0; trial < 50; ++trial) {
        Key128 key = randomKey(rng);
        Block128 in[4], expect[4];
        for (auto &b : in)
            rng.fill(b.data(), b.size());

        Aes128 ref(key, Aes128::Backend::Reference);
        for (int i = 0; i < 4; ++i)
            expect[i] = ref.encryptBlock(in[i]);

        for (Aes128::Backend b : availableBackends()) {
            Aes128 aes(key, b);
            Block128 out[4];
            aes.encryptBlocks4(in, out);
            for (int i = 0; i < 4; ++i)
                EXPECT_EQ(out[i], expect[i])
                    << Aes128::backendName(b) << " lane " << i;
        }
    }
}

TEST(Aes128Backends, DefaultDispatchMatchesReference)
{
    // The default constructor picks bestBackend(); whatever it chose
    // must still produce reference ciphertext.
    Rng rng(77);
    Key128 key = randomKey(rng);
    Block128 p;
    rng.fill(p.data(), p.size());

    Aes128 best(key);
    EXPECT_EQ(best.backend(), Aes128::bestBackend());
    EXPECT_EQ(best.encryptBlock(p), best.encryptBlockRef(p));
}

TEST(Aes128Backends, AesNiDegradesWhenUnsupported)
{
    Rng rng(78);
    Aes128 aes(randomKey(rng), Aes128::Backend::AesNi);
    if (Aes128::aesniAvailable())
        EXPECT_EQ(aes.backend(), Aes128::Backend::AesNi);
    else
        EXPECT_EQ(aes.backend(), Aes128::Backend::TTable);
}

TEST(AesContextCache, HitReturnsEquivalentEngine)
{
    Rng rng(90);
    AesContextCache cache;
    Key128 key = randomKey(rng);
    Block128 p;
    rng.fill(p.data(), p.size());

    bool hit = true;
    Block128 c1 = cache.get(key, &hit).encryptBlock(p);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.size(), 1u);

    Block128 c2 = cache.get(key, &hit).encryptBlock(p);
    EXPECT_TRUE(hit);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(c1, Aes128(key).encryptBlock(p));
}

TEST(AesContextCache, InvalidateForcesMiss)
{
    Rng rng(91);
    AesContextCache cache;
    Key128 key = randomKey(rng);

    cache.get(key);
    cache.invalidate(key);
    bool hit = true;
    cache.get(key, &hit);
    EXPECT_FALSE(hit);

    cache.invalidateAll();
    EXPECT_EQ(cache.size(), 0u);
    hit = true;
    cache.get(key, &hit);
    EXPECT_FALSE(hit);
}

TEST(AesContextCache, EvictionKeepsCiphertextCorrect)
{
    // Overfill the cache; every engine handed out must still encrypt
    // with the key it was looked up under (correctness never depends
    // on the eviction policy, only the hit rate does).
    Rng rng(92);
    AesContextCache cache(4);
    Block128 p;
    rng.fill(p.data(), p.size());

    std::vector<Key128> keys;
    for (int i = 0; i < 12; ++i)
        keys.push_back(randomKey(rng));

    for (int round = 0; round < 3; ++round)
        for (const Key128 &k : keys)
            EXPECT_EQ(cache.get(k).encryptBlock(p),
                      Aes128(k).encryptBlock(p));
    EXPECT_LE(cache.size(), 4u);
}

TEST(AesContextCache, RepeatedKeyHitsAfterWarmup)
{
    Rng rng(93);
    AesContextCache cache(4);
    Key128 hot = randomKey(rng);

    cache.get(hot);
    for (int i = 0; i < 100; ++i) {
        bool hit = false;
        cache.get(hot, &hit);
        EXPECT_TRUE(hit) << "iteration " << i;
    }
}

TEST(Sha256, EmptyString)
{
    auto d = Sha256::digest("");
    EXPECT_EQ(digestToHex(d),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    auto d = Sha256::digest("abc");
    EXPECT_EQ(digestToHex(d),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    auto d = Sha256::digest(
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    EXPECT_EQ(digestToHex(d),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::string msg(1000, 'x');
    Sha256 ctx;
    for (std::size_t i = 0; i < msg.size(); i += 37)
        ctx.update(msg.data() + i,
                   std::min<std::size_t>(37, msg.size() - i));
    EXPECT_EQ(ctx.final(), Sha256::digest(msg));
}

TEST(Sha256, LongMessagePaddingBoundaries)
{
    // Exercise lengths around the 56/64-byte padding boundaries.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
        std::string msg(len, 'a');
        auto d1 = Sha256::digest(msg);
        Sha256 ctx;
        ctx.update(msg.data(), msg.size());
        EXPECT_EQ(ctx.final(), d1) << "length " << len;
    }
}

TEST(CtrMode, PadDependsOnEveryIvField)
{
    Rng rng(1);
    Aes128 aes(randomKey(rng));
    CtrIv base{0x1234, 5, 42, 7};

    Line p0 = makeOtp(aes, base);
    CtrIv iv = base;
    iv.pageId ^= 1;
    EXPECT_NE(p0, makeOtp(aes, iv));
    iv = base;
    iv.pageOffset ^= 1;
    EXPECT_NE(p0, makeOtp(aes, iv));
    iv = base;
    iv.major ^= 1;
    EXPECT_NE(p0, makeOtp(aes, iv));
    iv = base;
    iv.minor ^= 1;
    EXPECT_NE(p0, makeOtp(aes, iv));
}

TEST(CtrMode, PadIsDeterministic)
{
    Rng rng(2);
    Key128 k = randomKey(rng);
    Aes128 a1(k), a2(k);
    CtrIv iv{9, 1, 2, 3};
    EXPECT_EQ(makeOtp(a1, iv), makeOtp(a2, iv));
}

TEST(CtrMode, XorRoundTrip)
{
    Rng rng(3);
    Aes128 aes(randomKey(rng));
    CtrIv iv{77, 3, 1, 9};
    Line pad = makeOtp(aes, iv);

    std::uint8_t data[blockSize];
    rng.fill(data, sizeof(data));
    std::uint8_t orig[blockSize];
    std::memcpy(orig, data, blockSize);

    xorLine(data, pad);
    EXPECT_NE(0, std::memcmp(data, orig, blockSize));
    xorLine(data, pad);
    EXPECT_EQ(0, std::memcmp(data, orig, blockSize));
}

TEST(CtrMode, PadIdenticalAcrossBackends)
{
    // The batched pad path must produce the same OTP regardless of
    // which AES backend generated it — otherwise ciphertext on the
    // modeled NVM would depend on the host CPU.
    Rng rng(12);
    for (int trial = 0; trial < 20; ++trial) {
        Key128 k = randomKey(rng);
        CtrIv iv{rng.next(), static_cast<unsigned>(rng.nextBounded(64)),
                 static_cast<std::uint32_t>(rng.next()),
                 static_cast<std::uint32_t>(rng.nextBounded(1 << 14))};

        Aes128 ref(k, Aes128::Backend::Reference);
        Line expect = makeOtp(ref, iv);

        Aes128 tt(k, Aes128::Backend::TTable);
        EXPECT_EQ(makeOtp(tt, iv), expect) << "trial " << trial;

        if (Aes128::aesniAvailable()) {
            Aes128 ni(k, Aes128::Backend::AesNi);
            EXPECT_EQ(makeOtp(ni, iv), expect) << "trial " << trial;
        }
    }
}

TEST(CtrMode, FourAesBlocksAreDistinct)
{
    // The four 16-byte words of a pad must differ (word counter).
    Rng rng(4);
    Aes128 aes(randomKey(rng));
    Line pad = makeOtp(aes, CtrIv{1, 0, 0, 0});
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j)
            EXPECT_NE(0, std::memcmp(pad.data() + 16 * i,
                                     pad.data() + 16 * j, 16));
}

TEST(Keys, WrapUnwrapRoundTrip)
{
    Rng rng(5);
    Key128 kek = randomKey(rng);
    Key128 key = randomKey(rng);
    EXPECT_EQ(unwrapKey(kek, wrapKey(kek, key)), key);
}

TEST(Keys, WrongKekYieldsGarbage)
{
    Rng rng(6);
    Key128 kek = randomKey(rng);
    Key128 other = randomKey(rng);
    Key128 key = randomKey(rng);
    EXPECT_NE(unwrapKey(other, wrapKey(kek, key)), key);
}

TEST(Keys, DeriveIsDeterministicAndSalted)
{
    Key128 a = deriveKey("hunter2", "salt1");
    Key128 b = deriveKey("hunter2", "salt1");
    Key128 c = deriveKey("hunter2", "salt2");
    Key128 d = deriveKey("hunter3", "salt1");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
}

TEST(Keys, ZeroKeyDetection)
{
    EXPECT_TRUE(isZeroKey(zeroKey()));
    Rng rng(8);
    EXPECT_FALSE(isZeroKey(randomKey(rng)));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Zipfian, SkewsTowardLowRanks)
{
    ZipfianGenerator z(1000, 0.99, 5);
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i)
        if (z.next() < 100)
            ++low;
    // With theta=0.99, the top decile draws the majority of samples.
    EXPECT_GT(low, total / 2);
}

TEST(Zipfian, StaysInRange)
{
    ZipfianGenerator z(50, 0.99, 6);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(z.next(), 50u);
}
