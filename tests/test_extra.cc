/**
 * @file
 * Tests for the extensions beyond the paper's core evaluation: the
 * partitioned metadata cache, the extra workloads (LogAppend,
 * FileServer), and the JSON stats emitter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "secmem/metadata_cache.hh"
#include "workloads/extra_workloads.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::workloads;

namespace {

SimConfig
cfgFor(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 777;
    return cfg;
}

} // namespace

TEST(MetadataCachePartition, UnifiedByDefault)
{
    PhysLayout layout{LayoutParams{}};
    SecParams params;
    MetadataCache mc(params, layout);
    EXPECT_FALSE(mc.partitioned());
}

TEST(MetadataCachePartition, PartitionsIsolateKinds)
{
    PhysLayout layout{LayoutParams{}};
    SecParams params;
    params.metadataCachePartitioned = true;
    params.metadataCacheBytes = 64 << 10;
    MetadataCache mc(params, layout);
    ASSERT_TRUE(mc.partitioned());

    // Fill the MECB partition far past its capacity; a FECB line
    // inserted earlier must remain resident (no cross-kind eviction).
    Addr pmem_page = layout.pmemBase() + 7 * pageSize;
    Addr fecb = layout.fecbAddr(pmem_page);
    mc.access(fecb, true);
    for (Addr a = 0; a < (4u << 20); a += pageSize)
        mc.access(layout.mecbAddr(a), false);
    EXPECT_TRUE(mc.probe(fecb));
    EXPECT_TRUE(mc.isDirty(fecb));
}

TEST(MetadataCachePartition, UnifiedAllowsCrossKindEviction)
{
    PhysLayout layout{LayoutParams{}};
    SecParams params;
    params.metadataCacheBytes = 64 << 10;
    MetadataCache mc(params, layout);

    Addr pmem_page = layout.pmemBase() + 7 * pageSize;
    Addr fecb = layout.fecbAddr(pmem_page);
    mc.access(fecb, false);
    for (Addr a = 0; a < (16u << 20); a += pageSize)
        mc.access(layout.mecbAddr(a), false);
    EXPECT_FALSE(mc.probe(fecb)); // swept out by MECB traffic
}

TEST(MetadataCachePartition, LoseAllClearsEveryPartition)
{
    PhysLayout layout{LayoutParams{}};
    SecParams params;
    params.metadataCachePartitioned = true;
    MetadataCache mc(params, layout);
    Addr pmem_page = layout.pmemBase() + pageSize;
    mc.access(layout.mecbAddr(0x1000), true);
    mc.access(layout.fecbAddr(pmem_page), true);
    mc.loseAll();
    EXPECT_FALSE(mc.probe(layout.mecbAddr(0x1000)));
    EXPECT_FALSE(mc.probe(layout.fecbAddr(pmem_page)));
}

TEST(MetadataCachePartition, FullSystemRunsPartitioned)
{
    SimConfig cfg = cfgFor(Scheme::FsEncr);
    cfg.sec.metadataCachePartitioned = true;
    System sys(cfg);
    standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/p", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, 64 * pageSize);
    Addr va = sys.mmapFile(0, fd, 64 * pageSize);
    for (Addr off = 0; off < 64 * pageSize; off += 256)
        sys.write<std::uint32_t>(0, va + off, 1);
    sys.persist(0, va, pageSize);
    // Functional integrity holds under partitioning.
    EXPECT_EQ(sys.read<std::uint32_t>(0, va), 1u);
    EXPECT_EQ(sys.mc().integrityViolations(), 0u);
}

TEST(LogAppend, RunsAndIsWriteBound)
{
    System sys(cfgFor(Scheme::FsEncr));
    LogAppendConfig cfg;
    cfg.numRecords = 2000;
    cfg.recordBytes = 256;
    LogAppendWorkload w(cfg);
    auto r = runWorkload(sys, w);
    EXPECT_EQ(r.operations, 2000u);
    // Every record (4 lines) must reach NVM; reads are bounded by the
    // write-allocate fills plus metadata traffic.
    EXPECT_GE(r.nvmWrites, 2000u * (256 / blockSize));
    EXPECT_LT(r.nvmReads, 2 * r.nvmWrites);
}

TEST(LogAppend, SequentialAppendsAreCounterFriendly)
{
    // Sequential appends share counter blocks: the FsEncr overhead
    // must stay small even though every record persists.
    auto run = [](Scheme scheme) {
        System sys(cfgFor(scheme));
        LogAppendConfig cfg;
        cfg.numRecords = 2000;
        LogAppendWorkload w(cfg);
        return runWorkload(sys, w).ticks;
    };
    double ratio = static_cast<double>(run(Scheme::FsEncr)) /
                   static_cast<double>(run(Scheme::BaselineSecurity));
    EXPECT_GE(ratio, 1.0);
    EXPECT_LT(ratio, 1.25);
}

TEST(LogAppend, RecoverableAfterCrash)
{
    System sys(cfgFor(Scheme::FsEncr));
    LogAppendConfig cfg;
    cfg.numRecords = 500;
    LogAppendWorkload w(cfg);
    runWorkload(sys, w);
    sys.crash();
    EXPECT_TRUE(sys.recover());
}

TEST(FileServer, RunsAcrossManyFilesAndKeys)
{
    System sys(cfgFor(Scheme::FsEncr));
    FileServerConfig cfg;
    cfg.numFiles = 16;
    cfg.fileBytes = 64 << 10;
    cfg.numOps = 500;
    FileServerWorkload w(cfg);
    auto r = runWorkload(sys, w);
    EXPECT_EQ(r.operations, 500u);
    // One OTT key per file was registered.
    EXPECT_GE(sys.mc().ott().validEntries(), 16u);
}

TEST(FileServer, SyscallPathEncryptsFileData)
{
    System sys(cfgFor(Scheme::FsEncr));
    FileServerConfig cfg;
    cfg.numFiles = 2;
    cfg.fileBytes = 16 << 10;
    cfg.numOps = 50;
    FileServerWorkload w(cfg);
    runWorkload(sys, w);
    // No access may have fallen back to memory-layer-only encryption.
    EXPECT_EQ(sys.mc().statGroup().scalarValue("missingKeyAccesses"),
              0u);
}

TEST(JsonStats, WellFormedAndContainsGroups)
{
    System sys(cfgFor(Scheme::FsEncr));
    standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/j", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    sys.write<std::uint64_t>(0, va, 1);

    std::ostringstream os;
    sys.statGroup().dumpJson(os);
    std::string s = os.str();

    EXPECT_NE(s.find("\"nvm\""), std::string::npos);
    EXPECT_NE(s.find("\"ott\""), std::string::npos);
    EXPECT_NE(s.find("\"loads\""), std::string::npos);

    // Balanced braces (cheap well-formedness check).
    long depth = 0;
    for (char c : s) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}
