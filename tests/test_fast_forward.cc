/**
 * @file
 * Fast-forward execution mode tests: the opt-in --fast-forward model
 * must be tick-exact against the precise model — identical ticks, NVM
 * traffic, per-component cycle attribution and load/store counts — on
 * the figure-bench cells and the bench_scale cells, the controller
 * request stream must be byte-identical, and trace capture/replay on
 * top of fast-forward runs must be deterministic.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "cpu/mem_trace.hh"
#include "sim/system.hh"
#include "workloads/dax_micro.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/scale_micro.hh"
#include "workloads/whisper_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::workloads;

namespace {

/** Everything a golden comparison checks. */
struct GoldenRun
{
    WorkloadResult r;
    trace::Breakdown attr;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

GoldenRun
runOnce(const SimConfig &cfg, Workload &w)
{
    System sys(cfg);
    GoldenRun out;
    out.r = runWorkload(sys, w);
    out.attr = sys.measuredAttribution();
    out.loads = sys.statGroup().scalarValue("loads");
    out.stores = sys.statGroup().scalarValue("stores");
    return out;
}

/**
 * Run the workload produced by @p make once exact and once with
 * fast-forward, and assert zero divergence in every externally
 * visible measured quantity.
 */
template <typename MakeFn>
void
expectGolden(SimConfig cfg, MakeFn &&make, const char *what)
{
    cfg.fastForward = false;
    auto we = make();
    GoldenRun exact = runOnce(cfg, *we);

    cfg.fastForward = true;
    auto wf = make();
    GoldenRun ff = runOnce(cfg, *wf);

    EXPECT_EQ(exact.r.ticks, ff.r.ticks) << what;
    EXPECT_EQ(exact.r.nvmReads, ff.r.nvmReads) << what;
    EXPECT_EQ(exact.r.nvmWrites, ff.r.nvmWrites) << what;
    EXPECT_EQ(exact.loads, ff.loads) << what;
    EXPECT_EQ(exact.stores, ff.stores) << what;
    for (unsigned c = 0; c < trace::NumComponents; ++c)
        EXPECT_EQ(exact.attr.ticks[c], ff.attr.ticks[c])
            << what << " component " << trace::componentName(c);
    // The exact model must have done real work, or the comparison
    // proves nothing.
    EXPECT_GT(exact.r.ticks, 0u) << what;
}

SimConfig
cfgFor(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 77;
    return cfg;
}

} // namespace

TEST(FastForwardMode, DefaultIsExactModel)
{
    SimConfig cfg;
    EXPECT_FALSE(cfg.fastForward);
}

// The bench_scale cells themselves (both patterns), across all three
// paper schemes: this is the invariant bench_scale phase 1 re-checks
// at larger op counts.
TEST(FastForwardGolden, ScaleCellsAcrossSchemes)
{
    for (Scheme s : {Scheme::NoEncryption, Scheme::BaselineSecurity,
                     Scheme::FsEncr}) {
        for (const auto &wc : scaleMicroSuite(50000)) {
            expectGolden(
                cfgFor(s),
                [&] { return std::make_unique<ScaleMicroWorkload>(wc); },
                scalePatternName(wc.pattern));
        }
    }
}

// A scale cell larger than the L1 span default, so runs are re-opened
// by conflict evictions rather than only by line advance.
TEST(FastForwardGolden, ScaleMixedOutOfCache)
{
    ScaleMicroConfig wc;
    wc.pattern = ScalePattern::Mixed;
    wc.ops = 50000;
    wc.spanBytes = 8 << 20; // larger than the LLC
    expectGolden(
        cfgFor(Scheme::FsEncr),
        [&] { return std::make_unique<ScaleMicroWorkload>(wc); },
        "scale-mixed-8M");
}

// The Figure 12-14 micro cells (strided sweeps and random swaps) at a
// reduced span. DAX-3/4 exercise the random line-cache switch path.
TEST(FastForwardGolden, DaxMicroFigureCells)
{
    for (DaxMicroConfig wc : daxMicroSuite()) {
        wc.spanBytes = 1 << 20;
        wc.swapOps = 5000;
        expectGolden(
            cfgFor(Scheme::FsEncr),
            [&] { return std::make_unique<DaxMicroWorkload>(wc); },
            daxMicroKindName(wc.kind));
    }
}

// Figure 8/10-style PMEMKV cells: pointer-chasing KV workloads whose
// access stream interleaves fast-forwardable hits with misses,
// syscalls and persists.
TEST(FastForwardGolden, PmemkvFigureCells)
{
    for (PmemkvOp op : {PmemkvOp::FillRandom, PmemkvOp::ReadRandom}) {
        PmemkvConfig wc;
        wc.op = op;
        wc.valueBytes = 64;
        wc.numKeys = 256;
        wc.numOps = 512;
        expectGolden(
            cfgFor(Scheme::FsEncr),
            [&] { return std::make_unique<PmemkvWorkload>(wc); },
            op == PmemkvOp::FillRandom ? "fillrandom" : "readrandom");
    }
}

// Figure 11-style WHISPER cell (hashmap), on the baseline scheme so a
// second scheme's exact path is also crossed with fast-forward.
TEST(FastForwardGolden, WhisperFigureCell)
{
    auto suite = whisperSuite(512);
    ASSERT_GE(suite.size(), 2u);
    expectGolden(
        cfgFor(Scheme::BaselineSecurity),
        [&] { return std::make_unique<WhisperWorkload>(suite[1]); },
        "whisper-hashmap");
}

// Software encryption takes per-access page faults that fast-forward
// cannot batch; the flag must be a no-op there, not a divergence.
TEST(FastForwardGolden, SoftwareEncryptionForcesExactModel)
{
    ScaleMicroConfig wc;
    wc.ops = 20000;
    expectGolden(
        cfgFor(Scheme::SoftwareEncryption),
        [&] { return std::make_unique<ScaleMicroWorkload>(wc); },
        "swenc-scale-seq");
}

// The request stream leaving the cache hierarchy — kind, address and
// order of every controller-level record — must be identical, not just
// the aggregate counters.
TEST(FastForwardGolden, ControllerRequestStreamIsIdentical)
{
    auto capture = [](bool ff) {
        SimConfig cfg = cfgFor(Scheme::FsEncr);
        cfg.fastForward = ff;
        ScaleMicroConfig wc;
        wc.pattern = ScalePattern::Mixed;
        wc.ops = 50000;
        wc.spanBytes = 8 << 20; // out of cache: real MC traffic
        System sys(cfg);
        MemTrace mt;
        sys.mc().setTraceCapture(&mt);
        ScaleMicroWorkload w(wc);
        runWorkload(sys, w);
        sys.mc().setTraceCapture(nullptr);
        return mt;
    };
    MemTrace a = capture(false);
    MemTrace b = capture(true);
    ASSERT_GT(a.size(), 0u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const TraceRecord &ra = a.records()[i];
        const TraceRecord &rb = b.records()[i];
        ASSERT_EQ(ra.kind, rb.kind) << "record " << i;
        ASSERT_EQ(ra.paddr, rb.paddr) << "record " << i;
        ASSERT_EQ(ra.gid, rb.gid) << "record " << i;
        ASSERT_EQ(ra.fid, rb.fid) << "record " << i;
    }
}

// Functional state: every byte written through the fast path must be
// readable back, through both the fast path and (after remapping
// forces the exact path) the precise model.
TEST(FastForwardMode, WritesAreVisibleToReads)
{
    SimConfig cfg = cfgFor(Scheme::FsEncr);
    cfg.fastForward = true;
    System sys(cfg);
    standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/ff.dat", 0600, OpenFlags::Encrypted,
                       "pw");
    sys.ftruncate(0, fd, 1 << 20);
    Addr va = sys.mmapFile(0, fd, 1 << 20);

    for (Addr off = 0; off < (1u << 20); off += 8)
        sys.write<std::uint64_t>(0, va + off, off ^ 0x5aa5);
    for (Addr off = 0; off < (1u << 20); off += 8)
        ASSERT_EQ(sys.read<std::uint64_t>(0, va + off), off ^ 0x5aa5)
            << off;
    // persist() goes down the exact path (flushing any open run
    // first); data must still be coherent afterwards.
    sys.persist(0, va, 64);
    EXPECT_EQ(sys.read<std::uint64_t>(0, va), 0u ^ 0x5aa5);
}

// Capture under fast-forward, then replay: replay is a pure
// controller-level rerun and must be byte-identical run to run, for
// every scheme the report compares.
TEST(FastForwardTrace, ReplayOfFastForwardCaptureIsDeterministic)
{
    SimConfig cfg = cfgFor(Scheme::FsEncr);
    cfg.fastForward = true;
    ScaleMicroConfig wc;
    wc.pattern = ScalePattern::Mixed;
    wc.ops = 30000;
    wc.spanBytes = 8 << 20;
    MemTrace mt;
    {
        System sys(cfg);
        sys.mc().setTraceCapture(&mt);
        ScaleMicroWorkload w(wc);
        runWorkload(sys, w);
    }
    ASSERT_GT(mt.size(), 0u);

    for (Scheme s : {Scheme::NoEncryption, Scheme::BaselineSecurity,
                     Scheme::FsEncr}) {
        SimConfig rcfg = cfgFor(s);
        ReplayResult r1 = replayTrace(mt, rcfg);
        ReplayResult r2 = replayTrace(mt, rcfg);
        EXPECT_EQ(r1.totalTicks, r2.totalTicks) << schemeName(s);
        EXPECT_EQ(r1.nvmReads, r2.nvmReads) << schemeName(s);
        EXPECT_EQ(r1.nvmWrites, r2.nvmWrites) << schemeName(s);
        EXPECT_EQ(r1.requests, r2.requests) << schemeName(s);
        for (unsigned c = 0; c < trace::NumComponents; ++c)
            EXPECT_EQ(r1.attribution.ticks[c], r2.attribution.ticks[c])
                << schemeName(s);
    }
}

// Round-trip through the binary file format must preserve the
// fast-forward capture exactly (replay of the loaded trace matches
// replay of the in-memory one).
TEST(FastForwardTrace, SavedCaptureReplaysIdentically)
{
    SimConfig cfg = cfgFor(Scheme::FsEncr);
    cfg.fastForward = true;
    ScaleMicroConfig wc;
    wc.pattern = ScalePattern::Seq;
    wc.ops = 20000;
    wc.spanBytes = 8 << 20;
    MemTrace mt;
    {
        System sys(cfg);
        sys.mc().setTraceCapture(&mt);
        ScaleMicroWorkload w(wc);
        runWorkload(sys, w);
    }
    ASSERT_GT(mt.size(), 0u);

    std::string path = ::testing::TempDir() + "/ff_capture.trace";
    ASSERT_TRUE(mt.save(path));
    MemTrace loaded;
    ASSERT_TRUE(loaded.load(path));
    std::remove(path.c_str());
    ASSERT_EQ(loaded.size(), mt.size());

    SimConfig rcfg = cfgFor(Scheme::FsEncr);
    ReplayResult a = replayTrace(mt, rcfg);
    ReplayResult b = replayTrace(loaded, rcfg);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.nvmReads, b.nvmReads);
    EXPECT_EQ(a.nvmWrites, b.nvmWrites);
    EXPECT_EQ(a.requests, b.requests);
}
