/**
 * @file
 * Deterministic fault injection and graceful-degradation recovery
 * (docs/ARCHITECTURE.md, "Fault model & recovery semantics"): crash
 * mid-fileWrite / mid-copyFile / mid-fsync and recover consistently,
 * torn and dropped persists, at-rest bit flips that must quarantine
 * exactly the file they hit, and the no-injector bit-identity
 * guarantee.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/fault_injector.hh"
#include "fsenc/audit_log.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
cfgFor(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 4242;
    return cfg;
}

/** Create /pmem/<name>, fill its first page with @p fill, fsync.
 *  @return the (writable) fd */
int
makeFile(System &sys, const std::string &path, std::uint8_t fill)
{
    int fd = sys.creat(0, path, 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    std::vector<std::uint8_t> buf(pageSize, fill);
    sys.fileWrite(0, fd, 0, buf.data(), buf.size());
    sys.fsync(0, fd);
    return fd;
}

/** Every line of the file's first page is uniformly one of the
 *  candidate bytes (no torn/mixed line reaches software). */
void
expectLinesAreVersions(System &sys, int fd,
                       const std::vector<std::uint8_t> &candidates)
{
    std::uint8_t line[blockSize];
    for (unsigned l = 0; l < pageSize / blockSize; ++l) {
        sys.fileRead(0, fd, static_cast<std::uint64_t>(l) * blockSize,
                     line, blockSize);
        bool matched = false;
        for (std::uint8_t c : candidates) {
            bool all = true;
            for (unsigned b = 0; b < blockSize; ++b)
                all &= line[b] == c;
            matched |= all;
        }
        EXPECT_TRUE(matched) << "line " << l << " byte0="
                             << int(line[0]);
    }
}

void
expectFileBytes(System &sys, const std::string &path, std::uint8_t fill)
{
    int fd = sys.open(0, path, OpenFlags::None, "pw");
    ASSERT_GE(fd, 0) << path;
    expectLinesAreVersions(sys, fd, {fill});
    sys.closeFd(0, fd);
}

} // namespace

/* ---- Injector unit behavior ------------------------------------- */

TEST(FaultInjector, WindowedOrdinalsAndBitFlips)
{
    FaultInjector inj;

    FaultSpec flip;
    flip.kind = FaultKind::BitFlipOnWrite;
    flip.atWrite = 2;
    flip.bit = 9; // byte 1, bit 1
    inj.schedule(flip);

    FaultSpec drop;
    drop.kind = FaultKind::DroppedWrite;
    drop.atWrite = 1;
    drop.addrLo = 0x2000;
    drop.addrHi = 0x2040;
    inj.schedule(drop);

    std::uint8_t buf[blockSize] = {};
    unsigned keep = blockSize;

    EXPECT_EQ(inj.onWriteLine(0x1000, buf, keep),
              FaultInjector::WriteOutcome::Store);
    EXPECT_EQ(buf[1], 0);

    // Second write overall: the unwindowed flip fires; the windowed
    // drop does not (0x1040 is outside its window).
    EXPECT_EQ(inj.onWriteLine(0x1040, buf, keep),
              FaultInjector::WriteOutcome::Store);
    EXPECT_EQ(buf[1], 1u << 1);

    // First write *within the window*: the drop fires and its paired
    // ECC store is suppressed with it.
    EXPECT_EQ(inj.onWriteLine(0x2000, buf, keep),
              FaultInjector::WriteOutcome::Drop);
    std::uint32_t ecc = 0xdead;
    EXPECT_EQ(inj.onSetEcc(0x2000, ecc),
              FaultInjector::EccAction::Drop);
    EXPECT_EQ(inj.onSetEcc(0x2000, ecc),
              FaultInjector::EccAction::Store);

    EXPECT_EQ(inj.writesSeen(), 3u);
    EXPECT_EQ(inj.eccStoresSeen(), 2u);
    ASSERT_EQ(inj.log().size(), 2u);
    EXPECT_EQ(inj.log()[0].kind, FaultKind::BitFlipOnWrite);
    EXPECT_EQ(inj.log()[1].kind, FaultKind::DroppedWrite);
    EXPECT_FALSE(inj.tripped());
}

TEST(FaultInjector, TornWriteArmsAtomicLoss)
{
    FaultInjector inj;
    FaultSpec torn;
    torn.kind = FaultKind::TornWrite;
    torn.keepBytes = 24;
    torn.thenPowerLoss = true;
    inj.schedule(torn);

    std::uint8_t buf[blockSize] = {};
    unsigned keep = blockSize;
    EXPECT_EQ(inj.onWriteLine(0x40, buf, keep),
              FaultInjector::WriteOutcome::Torn);
    EXPECT_EQ(keep, 24u);
    EXPECT_TRUE(inj.powerLossPending());

    // The paired ECC store still rides with the torn line...
    std::uint32_t ecc = 1;
    EXPECT_THROW(
        {
            // ...and only then does the armed loss trip.
            auto a = inj.onSetEcc(0x40, ecc);
            (void)a;
        },
        PowerLossEvent);
    EXPECT_TRUE(inj.tripped());
    EXPECT_FALSE(inj.powerLossPending());

    // Inert after the trip: recovery-time writes are never faulted.
    EXPECT_EQ(inj.onWriteLine(0x80, buf, keep),
              FaultInjector::WriteOutcome::Store);
    EXPECT_EQ(inj.writesSeen(), 1u);
}

TEST(FaultInjector, PartialBackupFlushBudgetExhausts)
{
    FaultInjector inj;
    FaultSpec flush;
    flush.kind = FaultKind::PartialBackupFlush;
    flush.flushLines = 3;
    flush.addrLo = 0x2000;
    flush.addrHi = 0x3000;
    inj.schedule(flush);

    // Trip a power loss first: the flush hook must stay live after it
    // (the backup drain happens during the crash itself).
    FaultSpec loss;
    loss.kind = FaultKind::PowerLossAtWrite;
    inj.schedule(loss);
    std::uint8_t buf[blockSize] = {};
    unsigned keep = blockSize;
    EXPECT_THROW(inj.onWriteLine(0x1000, buf, keep), PowerLossEvent);
    ASSERT_TRUE(inj.tripped());

    // The budget admits the first flushLines window hits...
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_TRUE(inj.onBackupFlushLine(0x2000 + i * blockSize));
    // ...then every later one is lost, not just the Nth (the fault is
    // energy exhaustion, not a one-shot glitch).
    EXPECT_FALSE(inj.onBackupFlushLine(0x20c0));
    EXPECT_FALSE(inj.onBackupFlushLine(0x2100));
    // Lines outside the window never consume or need budget.
    EXPECT_TRUE(inj.onBackupFlushLine(0x9000));
    EXPECT_EQ(inj.flushLinesSeen(), 6u);

    // One log record per *dropped* line, so the harness's oracle can
    // map the unflushed tail; admitted lines stay unlogged.
    ASSERT_EQ(inj.log().size(), 3u);
    EXPECT_EQ(inj.log()[0].kind, FaultKind::PowerLossAtWrite);
    EXPECT_EQ(inj.log()[1].kind, FaultKind::PartialBackupFlush);
    EXPECT_EQ(inj.log()[1].addr, 0x20c0u);
    EXPECT_EQ(inj.log()[2].kind, FaultKind::PartialBackupFlush);
    EXPECT_EQ(inj.log()[2].addr, 0x2100u);
}

/* ---- No-injector bit-identity ----------------------------------- */

TEST(FaultSystem, AttachedIdleInjectorIsBitIdentical)
{
    // The acceptance bar is "no injector == identical simulation";
    // an attached injector with nothing scheduled must also change
    // neither the clock nor the traffic nor the bytes.
    auto drive = [](System &sys) {
        workloads::standardEnvironment(sys, "pw");
        int fd = makeFile(sys, "/pmem/f", 0x5a);
        std::uint8_t buf[blockSize];
        sys.fileRead(0, fd, 3 * blockSize, buf, blockSize);
        sys.fsync(0, fd);
        return buf[0];
    };

    System plain(cfgFor(Scheme::FsEncr));
    drive(plain);

    System hooked(cfgFor(Scheme::FsEncr));
    FaultInjector idle;
    hooked.setFaultInjector(&idle);
    drive(hooked);

    EXPECT_EQ(plain.now(), hooked.now());
    EXPECT_EQ(plain.device().numReads(), hooked.device().numReads());
    EXPECT_EQ(plain.device().numWrites(), hooked.device().numWrites());
    EXPECT_GT(idle.writesSeen(), 0u);

    // Stored device image is byte-identical too.
    Addr page = plain.fs().inode(*plain.fs().lookup("/pmem/f"))
                    .blocks[0];
    std::vector<std::uint8_t> a(pageSize), b(pageSize);
    plain.device().read(page, a.data(), a.size());
    hooked.device().read(page, b.data(), b.size());
    EXPECT_EQ(a, b);
}

/* ---- Crash mid-operation, recover consistently ------------------ */

TEST(FaultSystem, PowerLossMidFileWriteRecoversConsistently)
{
    // Dry run to find the [t0, t1] window of the overwrite+fsync.
    Tick t0 = 0, t1 = 0;
    {
        System dry(cfgFor(Scheme::FsEncr));
        workloads::standardEnvironment(dry, "pw");
        int fd = makeFile(dry, "/pmem/f", 'A');
        std::vector<std::uint8_t> buf(pageSize, 'B');
        t0 = dry.now();
        dry.fileWrite(0, fd, 0, buf.data(), buf.size());
        dry.fsync(0, fd);
        t1 = dry.now();
    }
    ASSERT_LT(t0, t1);

    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = makeFile(sys, "/pmem/f", 'A');

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    FaultSpec loss;
    loss.kind = FaultKind::PowerLossAtTick;
    loss.atTick = (t0 + t1) / 2;
    inj.schedule(loss);

    bool lost = false;
    try {
        std::vector<std::uint8_t> buf(pageSize, 'B');
        sys.fileWrite(0, fd, 0, buf.data(), buf.size());
        sys.fsync(0, fd);
    } catch (const PowerLossEvent &) {
        lost = true;
    }
    ASSERT_TRUE(lost);

    sys.crash();
    ASSERT_TRUE(sys.recover());
    EXPECT_TRUE(sys.lastRecovery().damagedFiles.empty());

    // Every line is wholly old or wholly new; the fsync'd 'A' image
    // can never have vanished below a line.
    int rfd = sys.open(0, "/pmem/f", OpenFlags::None, "pw");
    ASSERT_GE(rfd, 0);
    expectLinesAreVersions(sys, rfd, {'A', 'B'});
}

TEST(FaultSystem, PowerLossMidCopyFileRecoversConsistently)
{
    Tick t0 = 0, t1 = 0;
    {
        System dry(cfgFor(Scheme::FsEncr));
        workloads::standardEnvironment(dry, "pw");
        makeFile(dry, "/pmem/src", 'S');
        t0 = dry.now();
        dry.copyFile(0, "/pmem/src", "/pmem/dst", "pw");
        t1 = dry.now();
    }
    ASSERT_LT(t0, t1);

    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    makeFile(sys, "/pmem/src", 'S');

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    FaultSpec loss;
    loss.kind = FaultKind::PowerLossAtTick;
    loss.atTick = (t0 + t1) / 2;
    inj.schedule(loss);

    bool lost = false;
    try {
        sys.copyFile(0, "/pmem/src", "/pmem/dst", "pw");
    } catch (const PowerLossEvent &) {
        lost = true;
    }
    ASSERT_TRUE(lost);

    sys.crash();
    ASSERT_TRUE(sys.recover());
    EXPECT_TRUE(sys.lastRecovery().damagedFiles.empty());

    // The durable source survives byte-exact ...
    expectFileBytes(sys, "/pmem/src", 'S');

    // ... and the half-copied destination, if it exists yet, holds
    // only whole lines of source data or still-zero lines.
    if (sys.fs().lookup("/pmem/dst")) {
        int dfd = sys.open(0, "/pmem/dst", OpenFlags::None, "pw");
        ASSERT_GE(dfd, 0);
        expectLinesAreVersions(sys, dfd, {'S', 0x00});
    }
}

TEST(FaultSystem, PowerLossMidFsyncRecoversConsistently)
{
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = makeFile(sys, "/pmem/f", 'A');

    // Dirty the whole page, then die on the 2nd line persist of the
    // fsync itself (the injector attaches after the writes, so fsync
    // traffic is all it sees).
    std::vector<std::uint8_t> buf(pageSize, 'B');
    sys.fileWrite(0, fd, 0, buf.data(), buf.size());

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    FaultSpec loss;
    loss.kind = FaultKind::PowerLossAtWrite;
    loss.atWrite = 2;
    inj.schedule(loss);

    bool lost = false;
    try {
        sys.fsync(0, fd);
    } catch (const PowerLossEvent &) {
        lost = true;
    }
    ASSERT_TRUE(lost);

    sys.crash();
    ASSERT_TRUE(sys.recover());
    EXPECT_TRUE(sys.lastRecovery().damagedFiles.empty());

    int rfd = sys.open(0, "/pmem/f", OpenFlags::None, "pw");
    ASSERT_GE(rfd, 0);
    expectLinesAreVersions(sys, rfd, {'A', 'B'});
}

/* ---- Torn / dropped persists ------------------------------------ */

TEST(FaultSystem, TornLinePersistQuarantinesOnlyThatFile)
{
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fa = makeFile(sys, "/pmem/a", 'A');
    makeFile(sys, "/pmem/b", 'B');

    Addr lineA = sys.fs().inode(*sys.fs().lookup("/pmem/a")).blocks[0];

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    FaultSpec torn;
    torn.kind = FaultKind::TornWrite;
    torn.keepBytes = 24;
    torn.addrLo = lineA;
    torn.addrHi = lineA + blockSize;
    torn.thenPowerLoss = true;
    inj.schedule(torn);

    bool lost = false;
    try {
        std::uint8_t line[blockSize];
        std::memset(line, 'C', blockSize);
        sys.fileWrite(0, fa, 0, line, blockSize);
        sys.fsync(0, fa);
    } catch (const PowerLossEvent &) {
        lost = true;
    }
    if (!lost && inj.powerLossPending()) {
        try {
            inj.onTick(sys.now());
        } catch (const PowerLossEvent &) {
            lost = true;
        }
    }
    ASSERT_TRUE(lost);

    sys.crash();
    // Graceful degradation: the torn line's trial decryption
    // exhausts, the covering file quarantines, the mount survives.
    ASSERT_TRUE(sys.recover());
    const auto &out = sys.lastRecovery();
    ASSERT_EQ(out.damagedFiles.size(), 1u);
    EXPECT_EQ(out.damagedFiles[0], "/pmem/a");
    EXPECT_GT(out.quarantinedLines, 0u);

    // Damaged-file IO fails structurally, old fd included.
    EXPECT_LT(sys.open(0, "/pmem/a", OpenFlags::None, "pw"), 0);
    std::uint8_t tmp[blockSize];
    EXPECT_THROW(sys.fileRead(0, fa, 0, tmp, blockSize),
                 FileDamagedError);

    // The bystander file is untouched, byte-exact.
    expectFileBytes(sys, "/pmem/b", 'B');
}

TEST(FaultSystem, DroppedLinePersistDegradesGracefully)
{
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fa = makeFile(sys, "/pmem/a", 'A');
    makeFile(sys, "/pmem/b", 'B');

    Addr lineA = sys.fs().inode(*sys.fs().lookup("/pmem/a")).blocks[0];

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    FaultSpec drop;
    drop.kind = FaultKind::DroppedWrite;
    drop.addrLo = lineA;
    drop.addrHi = lineA + blockSize;
    inj.schedule(drop);

    // The overwrite's persist is silently dropped; the run continues
    // and only a later crash exposes it.
    std::uint8_t line[blockSize];
    std::memset(line, 'C', blockSize);
    sys.fileWrite(0, fa, 0, line, blockSize);
    sys.fsync(0, fa);
    ASSERT_EQ(inj.log().size(), 1u);

    sys.crash();
    ASSERT_TRUE(sys.recover());
    const auto &out = sys.lastRecovery();

    if (out.damagedFiles.empty()) {
        // Counters recovered around the stale line: it legally reads
        // as the *old* fsync'd version — the documented durability
        // hole on exactly the fault-hit line, never torn garbage.
        int rfd = sys.open(0, "/pmem/a", OpenFlags::None, "pw");
        ASSERT_GE(rfd, 0);
        std::uint8_t got[blockSize];
        sys.fileRead(0, rfd, 0, got, blockSize);
        for (unsigned b = 0; b < blockSize; ++b)
            ASSERT_EQ(got[b], 'A');
    } else {
        // Or the stale image probe-exhausted: quarantined, structured.
        ASSERT_EQ(out.damagedFiles.size(), 1u);
        EXPECT_EQ(out.damagedFiles[0], "/pmem/a");
        EXPECT_LT(sys.open(0, "/pmem/a", OpenFlags::None, "pw"), 0);
    }

    // Either way the bystander file is byte-exact.
    expectFileBytes(sys, "/pmem/b", 'B');
}

/* ---- At-rest bit flips: per-file blast radius ------------------- */

TEST(FaultSystem, DataBitFlipQuarantinesOnlyThatFile)
{
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fa = makeFile(sys, "/pmem/a", 'A');
    makeFile(sys, "/pmem/b", 'B');
    sys.crash();

    Addr lineA = sys.fs().inode(*sys.fs().lookup("/pmem/a")).blocks[0];
    FaultInjector inj;
    sys.setFaultInjector(&inj);
    std::uint8_t raw[blockSize];
    sys.device().readLine(lineA, raw);
    raw[5] ^= 0x10;
    sys.device().writeLine(lineA, raw);
    inj.noteTamper(lineA, 5 * 8 + 4);

    ASSERT_TRUE(sys.recover());
    const auto &out = sys.lastRecovery();
    ASSERT_EQ(out.damagedFiles.size(), 1u);
    EXPECT_EQ(out.damagedFiles[0], "/pmem/a");
    EXPECT_GT(out.probeFailures, 0u);
    EXPECT_TRUE(sys.mc().isQuarantined(lineA));

    // No plaintext leaks through the quarantined line.
    std::uint8_t arch[blockSize];
    sys.archMem().read(lineA, arch, blockSize);
    for (unsigned b = 0; b < blockSize; ++b)
        EXPECT_EQ(arch[b], 0);

    EXPECT_LT(sys.open(0, "/pmem/a", OpenFlags::None, "pw"), 0);
    std::uint8_t tmp[blockSize];
    EXPECT_THROW(sys.fileRead(0, fa, 0, tmp, blockSize),
                 FileDamagedError);
    expectFileBytes(sys, "/pmem/b", 'B');
}

TEST(FaultSystem, FecbBitFlipQuarantinesOnlyThatFile)
{
    // The acceptance scenario: a metadata flip on one file's FECB
    // quarantines exactly that file; every other file stays readable
    // byte-exact and the mount recovers.
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fa = makeFile(sys, "/pmem/a", 'A');
    makeFile(sys, "/pmem/b", 'B');

    // Hammer a's first line so its FECB is persisted (and thus
    // Merkle-covered) before the crash.
    std::uint8_t line[blockSize];
    for (int i = 0; i < 20; ++i) {
        std::memset(line, 'A', blockSize);
        sys.fileWrite(0, fa, 0, line, blockSize);
        sys.fsync(0, fa);
    }
    sys.crash();

    Addr pageA = sys.fs().inode(*sys.fs().lookup("/pmem/a")).blocks[0];
    Addr fecb = sys.layout().fecbAddr(pageA);
    std::uint8_t blk[blockSize];
    sys.device().readLine(fecb, blk);
    blk[9] ^= 0x04;
    sys.device().writeLine(fecb, blk);

    ASSERT_TRUE(sys.recover());
    const auto &out = sys.lastRecovery();
    EXPECT_FALSE(out.metadataClean);
    EXPECT_EQ(out.tamperedLeaves, 1u);
    ASSERT_EQ(out.damagedFiles.size(), 1u);
    EXPECT_EQ(out.damagedFiles[0], "/pmem/a");
    EXPECT_GT(out.quarantinedLines, 0u);

    EXPECT_LT(sys.open(0, "/pmem/a", OpenFlags::None, "pw"), 0);
    std::uint8_t tmp[blockSize];
    EXPECT_THROW(sys.fileRead(0, fa, 0, tmp, blockSize),
                 FileDamagedError);

    // All other files verify byte-exact.
    expectFileBytes(sys, "/pmem/b", 'B');

    // The adopted post-recovery tree state re-verifies.
    EXPECT_TRUE(sys.mc().recoverMetadata());
}

/* ---- eADR: cache-resident durability & backup-flush faults ------ */

namespace {

SimConfig
eadrCfgFor(Scheme scheme)
{
    SimConfig cfg = cfgFor(scheme);
    cfg.sec.persistDomain = PersistDomain::Eadr;
    return cfg;
}

/** The file is quarantined, or every line reads as one whole version. */
void
expectDamagedOrVersions(System &sys, const std::string &path,
                        const std::vector<std::uint8_t> &versions)
{
    const auto &out = sys.lastRecovery();
    bool damaged = false;
    for (const auto &p : out.damagedFiles)
        damaged |= p == path;
    if (damaged) {
        EXPECT_LT(sys.open(0, path, OpenFlags::None, "pw"), 0) << path;
        return;
    }
    int fd = sys.open(0, path, OpenFlags::None, "pw");
    ASSERT_GE(fd, 0) << path;
    expectLinesAreVersions(sys, fd, versions);
    sys.closeFd(0, fd);
}

} // namespace

TEST(FaultSystem, EadrBackupFlushMakesUnsyncedWritesDurable)
{
    System sys(eadrCfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = makeFile(sys, "/pmem/f", 'A');

    // Overwrite the page and crash *without* an fsync: under eADR the
    // dirty lines already sit inside the persistence domain, so the
    // backup-power flush must land every one of them.
    std::vector<std::uint8_t> buf(pageSize, 'B');
    sys.fileWrite(0, fd, 0, buf.data(), buf.size());
    sys.crash();
    EXPECT_GT(sys.mc().backupFlushLines(), 0u);
    EXPECT_EQ(sys.mc().backupFlushDropped(), 0u);
    // No stop-loss boundary exists under eADR.
    EXPECT_EQ(sys.mc().stopLossPersists(), 0u);

    ASSERT_TRUE(sys.recover());
    EXPECT_TRUE(sys.lastRecovery().damagedFiles.empty());
    expectFileBytes(sys, "/pmem/f", 'B');
}

TEST(FaultSystem, EadrPartialBackupFlushDegradesGracefully)
{
    System sys(eadrCfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = makeFile(sys, "/pmem/f", 'A');
    makeFile(sys, "/pmem/b", 'B');

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    FaultSpec flush;
    flush.kind = FaultKind::PartialBackupFlush;
    flush.flushLines = 2; // backup energy dies almost immediately
    inj.schedule(flush);

    std::vector<std::uint8_t> buf(pageSize, 'C');
    sys.fileWrite(0, fd, 0, buf.data(), buf.size());
    sys.crash();
    EXPECT_GT(sys.mc().backupFlushDropped(), 0u);
    EXPECT_FALSE(inj.log().empty());

    // Graceful degradation is the whole contract: the mount survives,
    // the unflushed tail either probe-recovers to a whole stale
    // version or quarantines, and never surfaces torn bytes.
    ASSERT_TRUE(sys.recover());
    expectDamagedOrVersions(sys, "/pmem/f", {'A', 'C'});
    expectDamagedOrVersions(sys, "/pmem/b", {'B'});
}

/* ---- eADR: torn / dropped persists in the audit-log region ------ */

TEST(FaultSystem, EadrTornAuditLineTruncatesScanLoudly)
{
    SimConfig cfg = eadrCfgFor(Scheme::FsEncr);
    cfg.sec.auditEnabled = true;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = makeFile(sys, "/pmem/f", 'A');
    makeFile(sys, "/pmem/b", 'B');

    const PhysLayout &layout = sys.layout();
    ASSERT_GT(layout.auditLogBytes(), 0u);

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    // Tear a record line inside the log region (past the header); the
    // paired ECC store drops with it, and power dies on the spot.
    FaultSpec torn;
    torn.kind = FaultKind::TornWrite;
    torn.keepBytes = 24;
    torn.addrLo = layout.auditLogBase() + blockSize;
    torn.addrHi = layout.auditLogBase() + layout.auditLogBytes();
    torn.thenPowerLoss = true;
    inj.schedule(torn);

    // Hammer audited writes until a WCB flush lands in the window.
    bool lost = false;
    try {
        std::uint8_t line[blockSize];
        std::memset(line, 'C', blockSize);
        for (int i = 0; i < 400 && !lost; ++i) {
            sys.fileWrite(0, fd, 0, line, blockSize);
            sys.fsync(0, fd);
        }
    } catch (const PowerLossEvent &) {
        lost = true;
    }
    if (!lost && inj.powerLossPending()) {
        try {
            inj.onTick(sys.now());
        } catch (const PowerLossEvent &) {
            lost = true;
        }
    }
    ASSERT_TRUE(lost);
    ASSERT_FALSE(inj.log().empty());
    EXPECT_EQ(inj.log()[0].kind, FaultKind::TornWrite);

    sys.crash();
    ASSERT_TRUE(sys.recover());
    // Log damage never maps onto file data.
    EXPECT_TRUE(sys.lastRecovery().damagedFiles.empty());
    expectFileBytes(sys, "/pmem/b", 'B');
    int rfd = sys.open(0, "/pmem/f", OpenFlags::None, "pw");
    ASSERT_GE(rfd, 0);
    expectLinesAreVersions(sys, rfd, {'A', 'C'});

    // The torn line may cost records, but only *loudly*: a
    // full-length undamaged-looking scan shorter than the acked
    // stream would mean the tear forged past the Merkle coverage.
    const AuditLog *log = sys.mc().auditLog();
    ASSERT_NE(log, nullptr);
    AuditScanResult scan = log->scan();
    if (scan.records.size() < log->ackedRecords())
        EXPECT_TRUE(scan.integrityTruncated);
    const auto &golden = log->goldenRecords();
    ASSERT_LE(scan.records.size(), golden.size());
    for (std::size_t i = 0; i < scan.records.size(); ++i)
        EXPECT_TRUE(scan.records[i] == golden[i]) << "record " << i;
}

TEST(FaultSystem, EadrDroppedAuditLineIsNeverASilentLoss)
{
    SimConfig cfg = eadrCfgFor(Scheme::FsEncr);
    cfg.sec.auditEnabled = true;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = makeFile(sys, "/pmem/f", 'A');

    const PhysLayout &layout = sys.layout();
    ASSERT_GT(layout.auditLogBytes(), 0u);

    FaultInjector inj;
    sys.setFaultInjector(&inj);
    // A record-line persist silently dropped (its ECC store rides
    // down with it), then power loss: the stale line must surface as
    // an integrity-truncated scan, never as a quietly shorter log.
    FaultSpec drop;
    drop.kind = FaultKind::DroppedWrite;
    drop.addrLo = layout.auditLogBase() + blockSize;
    drop.addrHi = layout.auditLogBase() + layout.auditLogBytes();
    drop.thenPowerLoss = true;
    inj.schedule(drop);

    bool lost = false;
    try {
        std::uint8_t line[blockSize];
        std::memset(line, 'C', blockSize);
        for (int i = 0; i < 400 && !lost; ++i) {
            sys.fileWrite(0, fd, 0, line, blockSize);
            sys.fsync(0, fd);
        }
    } catch (const PowerLossEvent &) {
        lost = true;
    }
    if (!lost && inj.powerLossPending()) {
        try {
            inj.onTick(sys.now());
        } catch (const PowerLossEvent &) {
            lost = true;
        }
    }
    ASSERT_TRUE(lost);
    ASSERT_FALSE(inj.log().empty());
    EXPECT_EQ(inj.log()[0].kind, FaultKind::DroppedWrite);

    sys.crash();
    ASSERT_TRUE(sys.recover());
    EXPECT_TRUE(sys.lastRecovery().damagedFiles.empty());

    const AuditLog *log = sys.mc().auditLog();
    ASSERT_NE(log, nullptr);
    AuditScanResult scan = log->scan();
    if (scan.records.size() < log->ackedRecords())
        EXPECT_TRUE(scan.integrityTruncated);
    const auto &golden = log->goldenRecords();
    ASSERT_LE(scan.records.size(), golden.size());
    for (std::size_t i = 0; i < scan.records.size(); ++i)
        EXPECT_TRUE(scan.records[i] == golden[i]) << "record " << i;
}

/* ---- Determinism ------------------------------------------------ */

TEST(FaultSystem, SameSeedSameFaultSameOutcome)
{
    auto run = [](std::vector<InjectionRecord> &log, Tick &end,
                  std::uint64_t &loss_write) {
        System sys(cfgFor(Scheme::FsEncr));
        workloads::standardEnvironment(sys, "pw");
        int fd = makeFile(sys, "/pmem/f", 'A');

        FaultInjector inj;
        sys.setFaultInjector(&inj);
        FaultSpec torn;
        torn.kind = FaultKind::TornWrite;
        torn.atWrite = 3;
        torn.keepBytes = 16;
        torn.thenPowerLoss = true;
        inj.schedule(torn);

        try {
            std::vector<std::uint8_t> buf(pageSize, 'B');
            sys.fileWrite(0, fd, 0, buf.data(), buf.size());
            sys.fsync(0, fd);
        } catch (const PowerLossEvent &e) {
            loss_write = e.writeIndex;
        }
        sys.crash();
        ASSERT_TRUE(sys.recover());
        log = inj.log();
        end = sys.now();
    };

    std::vector<InjectionRecord> log1, log2;
    Tick end1 = 0, end2 = 0;
    std::uint64_t lw1 = 0, lw2 = 0;
    run(log1, end1, lw1);
    run(log2, end2, lw2);

    EXPECT_EQ(end1, end2);
    EXPECT_EQ(lw1, lw2);
    ASSERT_EQ(log1.size(), log2.size());
    for (std::size_t i = 0; i < log1.size(); ++i) {
        EXPECT_EQ(log1[i].kind, log2[i].kind);
        EXPECT_EQ(log1[i].addr, log2[i].addr);
        EXPECT_EQ(log1[i].writeIndex, log2[i].writeIndex);
        EXPECT_EQ(log1[i].tick, log2[i].tick);
    }
}
