/**
 * @file
 * FsEncr core tests: the Open Tunnel Table (with spill/recall and
 * crash consistency) and the secure memory controller's dual-layer
 * encryption path.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "fsenc/ott.hh"
#include "fsenc/secure_memory_controller.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "secmem/merkle_tree.hh"

using namespace fsencr;

namespace {

struct OttFixture : ::testing::Test
{
    OttFixture()
        : layout(LayoutParams{}), device(PcmParams{}),
          tree(layout, device, 8), rng(5),
          ott(SecParams{}, layout, device, tree,
              crypto::randomKey(rng), 1000)
    {}

    PhysLayout layout;
    NvmDevice device;
    MerkleTree tree;
    Rng rng;
    OpenTunnelTable ott;
};

} // namespace

TEST_F(OttFixture, InsertThenLookupHits)
{
    crypto::Key128 k = crypto::randomKey(rng);
    ott.insert(7, 42, k, 0, false);
    auto r = ott.lookup(7, 42, 0);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(r.ottHit);
    EXPECT_EQ(r.key, k);
}

TEST_F(OttFixture, LookupLatencyIsTwentyCycles)
{
    crypto::Key128 k = crypto::randomKey(rng);
    ott.insert(1, 1, k, 0, false);
    auto r = ott.lookup(1, 1, 0);
    EXPECT_EQ(r.latency, 20u * 1000); // 20 cycles at 1 GHz, in ps
}

TEST_F(OttFixture, MissingKeyNotFound)
{
    auto r = ott.lookup(9, 9, 0);
    EXPECT_FALSE(r.found);
}

TEST_F(OttFixture, EvictionSpillsAndRecalls)
{
    // Fill beyond the 1024-entry capacity; early entries spill.
    std::vector<crypto::Key128> keys;
    for (std::uint32_t i = 0; i < 1100; ++i) {
        keys.push_back(crypto::randomKey(rng));
        ott.insert(3, i + 1, keys.back(), 0, false);
    }
    EXPECT_EQ(ott.validEntries(), 1024u);

    // Entry 1 was LRU — it must have spilled, and must recall.
    auto r = ott.lookup(3, 1, 0);
    EXPECT_TRUE(r.found);
    EXPECT_FALSE(r.ottHit);
    EXPECT_EQ(r.key, keys[0]);
    // Recall reinstalls it on-chip.
    auto r2 = ott.lookup(3, 1, 0);
    EXPECT_TRUE(r2.ottHit);
}

TEST_F(OttFixture, SpillRegionHoldsCiphertextNotKeys)
{
    crypto::Key128 k = crypto::randomKey(rng);
    ott.insert(2, 5, k, 0, /*log_immediately=*/true);

    // Scan the raw spill region for the key bytes: must not appear.
    std::vector<std::uint8_t> region(layout.ottSpillBytes());
    device.read(layout.ottSpillBase(), region.data(), region.size());
    auto it = std::search(region.begin(), region.end(), k.begin(),
                          k.end());
    EXPECT_EQ(it, region.end());
}

TEST_F(OttFixture, ImmediateLoggingSurvivesCrash)
{
    crypto::Key128 k = crypto::randomKey(rng);
    ott.insert(4, 8, k, 0, /*log_immediately=*/true);
    ott.crash(/*backup_power_flush=*/false, 0);
    EXPECT_EQ(ott.validEntries(), 0u);

    auto r = ott.lookup(4, 8, 0);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.key, k);
}

TEST_F(OttFixture, UnloggedEntryLostWithoutBackupPower)
{
    crypto::Key128 k = crypto::randomKey(rng);
    ott.insert(4, 9, k, 0, /*log_immediately=*/false);
    ott.crash(/*backup_power_flush=*/false, 0);
    EXPECT_FALSE(ott.lookup(4, 9, 0).found);
}

TEST_F(OttFixture, BackupPowerFlushSavesEverything)
{
    crypto::Key128 k = crypto::randomKey(rng);
    ott.insert(4, 10, k, 0, /*log_immediately=*/false);
    ott.crash(/*backup_power_flush=*/true, 0);
    auto r = ott.lookup(4, 10, 0);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.key, k);
}

TEST_F(OttFixture, RemoveErasesOnChipAndSpill)
{
    crypto::Key128 k = crypto::randomKey(rng);
    ott.insert(6, 11, k, 0, /*log_immediately=*/true);
    ott.remove(6, 11, 0);
    EXPECT_FALSE(ott.lookup(6, 11, 0).found);
    // Even after a "reboot" the key must be gone from the spill table.
    ott.crash(false, 0);
    EXPECT_FALSE(ott.lookup(6, 11, 0).found);
}

TEST_F(OttFixture, ReinsertReplacesKey)
{
    crypto::Key128 k1 = crypto::randomKey(rng);
    crypto::Key128 k2 = crypto::randomKey(rng);
    ott.insert(1, 2, k1, 0, false);
    ott.insert(1, 2, k2, 0, false); // re-key
    EXPECT_EQ(ott.lookup(1, 2, 0).key, k2);
    EXPECT_EQ(ott.validEntries(), 1u);
}

namespace {

SimConfig
mcConfig(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 77;
    return cfg;
}

struct McFixture
{
    explicit McFixture(Scheme scheme)
        : cfg(mcConfig(scheme)), layout(cfg.layout),
          device(cfg.pcm), rng(cfg.seed),
          mc(cfg.sec, cfg.scheme, cfg.pcm, cfg.cyclePeriod(),
             cfg.profile, layout, device, McKeys::draw(rng))
    {}

    SimConfig cfg;
    PhysLayout layout;
    NvmDevice device;
    Rng rng;
    SecureMemoryController mc;
};

} // namespace

TEST(SecureMc, BaselineWriteReadRoundTrip)
{
    McFixture f(Scheme::BaselineSecurity);
    std::uint8_t plain[blockSize];
    Rng data_rng(1);
    data_rng.fill(plain, sizeof(plain));

    Addr a = 0x10000;
    f.mc.writeLine(a, plain, 0, true);
    std::uint8_t out[blockSize];
    f.mc.readLine(a, 1000, out);
    EXPECT_EQ(0, std::memcmp(plain, out, blockSize));
}

TEST(SecureMc, CiphertextDiffersFromPlaintext)
{
    McFixture f(Scheme::BaselineSecurity);
    std::uint8_t plain[blockSize];
    Rng data_rng(2);
    data_rng.fill(plain, sizeof(plain));
    Addr a = 0x20000;
    f.mc.writeLine(a, plain, 0, true);

    std::uint8_t stored[blockSize];
    f.device.readLine(a, stored);
    EXPECT_NE(0, std::memcmp(plain, stored, blockSize));
}

TEST(SecureMc, NoEncryptionStoresPlaintext)
{
    McFixture f(Scheme::NoEncryption);
    std::uint8_t plain[blockSize] = {1, 2, 3, 4};
    Addr a = 0x30000;
    f.mc.writeLine(a, plain, 0, true);
    std::uint8_t stored[blockSize];
    f.device.readLine(a, stored);
    EXPECT_EQ(0, std::memcmp(plain, stored, blockSize));
}

TEST(SecureMc, SameDataTwiceYieldsDifferentCiphertext)
{
    // Counter-mode temporal uniqueness: rewriting identical plaintext
    // must produce different ciphertext (minor counter bumped).
    McFixture f(Scheme::BaselineSecurity);
    std::uint8_t plain[blockSize] = {0xaa};
    Addr a = 0x40000;
    f.mc.writeLine(a, plain, 0, true);
    std::uint8_t c1[blockSize];
    f.device.readLine(a, c1);
    f.mc.writeLine(a, plain, 1000, true);
    std::uint8_t c2[blockSize];
    f.device.readLine(a, c2);
    EXPECT_NE(0, std::memcmp(c1, c2, blockSize));
}

TEST(SecureMc, DaxLineUsesBothPads)
{
    McFixture f(Scheme::FsEncr);
    Addr page = f.layout.pmemBase() + 64 * pageSize;
    Addr line = setDfBit(page);

    // Kernel actions: register the key, stamp the page.
    Rng krng(9);
    crypto::Key128 fek = crypto::randomKey(krng);
    f.mc.mmioRegisterFileKey(100, 42, fek, 0);
    f.mc.mmioStampPage(line, 100, 42, 0);

    std::uint8_t plain[blockSize];
    krng.fill(plain, sizeof(plain));
    f.mc.writeLine(line, plain, 0, true);

    std::uint8_t out[blockSize];
    f.mc.readLine(line, 1000, out);
    EXPECT_EQ(0, std::memcmp(plain, out, blockSize));

    // Reading the same line *without* the DF-bit applies only the
    // memory pad: plaintext must NOT come back.
    std::uint8_t wrong[blockSize];
    f.mc.readLine(page, 2000, wrong);
    EXPECT_NE(0, std::memcmp(plain, wrong, blockSize));
}

TEST(SecureMc, FecbStampPersistsIds)
{
    McFixture f(Scheme::FsEncr);
    Addr page = f.layout.pmemBase() + 10 * pageSize;
    f.mc.mmioStampPage(setDfBit(page), 17, 33, 0);
    Addr fa = f.layout.fecbAddr(page);
    EXPECT_EQ(f.mc.counters().fecb(fa).groupId, 17u);
    EXPECT_EQ(f.mc.counters().fecb(fa).fileId, 33u);
}

TEST(SecureMc, LockedControllerWithholdsFilePad)
{
    McFixture f(Scheme::FsEncr);
    Rng krng(10);
    crypto::Key128 cred = crypto::randomKey(krng);
    f.mc.provisionAdminCredential(cred);
    f.mc.mmioAdminLogin(cred);
    EXPECT_FALSE(f.mc.fsencLocked());

    Addr page = f.layout.pmemBase() + 80 * pageSize;
    Addr line = setDfBit(page);
    crypto::Key128 fek = crypto::randomKey(krng);
    f.mc.mmioRegisterFileKey(5, 6, fek, 0);
    f.mc.mmioStampPage(line, 5, 6, 0);
    std::uint8_t plain[blockSize] = {0x55};
    f.mc.writeLine(line, plain, 0, true);

    // Attacker boots with the wrong credential (Section VI):
    // decryption is locked — only the memory layer applies.
    f.mc.mmioAdminLogin(crypto::randomKey(krng));
    EXPECT_TRUE(f.mc.fsencLocked());
    std::uint8_t out[blockSize];
    f.mc.readLine(line, 5000, out);
    EXPECT_NE(0, std::memcmp(plain, out, blockSize));

    // Legitimate admin unlocks again.
    f.mc.mmioAdminLogin(cred);
    f.mc.readLine(line, 9000, out);
    EXPECT_EQ(0, std::memcmp(plain, out, blockSize));
}

TEST(SecureMc, MinorOverflowReencryptsPage)
{
    McFixture f(Scheme::BaselineSecurity);
    Addr a = 0x50000;
    std::uint8_t v[blockSize];

    // Write one line 200 times: the 7-bit minor must overflow and the
    // major must advance, with data still decrypting correctly.
    for (int i = 0; i < 200; ++i) {
        v[0] = static_cast<std::uint8_t>(i);
        f.mc.writeLine(a, v, i * 1000, true);
    }
    EXPECT_GE(f.mc.statGroup().scalarValue("pageReencryptions"), 1u);
    std::uint8_t out[blockSize];
    f.mc.readLine(a, 1'000'000, out);
    EXPECT_EQ(out[0], 199);

    Mecb m = f.mc.counters().mecb(f.layout.mecbAddr(a));
    EXPECT_GE(m.major, 1u);
}

TEST(SecureMc, NeighborLinesSurvivePageReencryption)
{
    McFixture f(Scheme::BaselineSecurity);
    Addr page = 0x60000;
    std::uint8_t other[blockSize] = {0x77};
    f.mc.writeLine(page + blockSize, other, 0, true);

    std::uint8_t v[blockSize] = {0};
    for (int i = 0; i < 200; ++i)
        f.mc.writeLine(page, v, 1000 + i * 1000, true);

    std::uint8_t out[blockSize];
    f.mc.readLine(page + blockSize, 1'000'000, out);
    EXPECT_EQ(out[0], 0x77);
}

TEST(SecureMc, TamperedCounterBlockRaisesIntegrityError)
{
    McFixture f(Scheme::BaselineSecurity);
    Addr a = 0x70000;
    std::uint8_t v[blockSize] = {1};
    // Enough writes to force a persist (stop-loss = 4).
    for (int i = 0; i < 8; ++i)
        f.mc.writeLine(a, v, i * 1000, true);
    f.mc.crash(10'000); // drop the cached copy

    // Attacker modifies the persisted counter block.
    Addr ca = f.layout.mecbAddr(a);
    std::uint8_t blk[blockSize];
    f.device.readLine(ca, blk);
    blk[0] ^= 1;
    f.device.writeLine(ca, blk);

    EXPECT_THROW(f.mc.readLine(a, 20'000, nullptr), IntegrityError);
}

TEST(SecureMc, CrashRecoveryRestoresCounters)
{
    McFixture f(Scheme::BaselineSecurity);
    Addr a = 0x80000;
    std::uint8_t v[blockSize];
    // 6 writes: persists at minor 4 (stop-loss), minors 5,6 volatile.
    for (int i = 0; i < 6; ++i) {
        v[0] = static_cast<std::uint8_t>(i + 1);
        f.mc.writeLine(a, v, i * 1000, true);
    }
    f.mc.crash(10'000);

    EXPECT_TRUE(f.mc.recoverMetadata());
    EXPECT_TRUE(f.mc.recoverLine(a));
    std::uint8_t out[blockSize];
    f.mc.readLine(a, 20'000, out);
    EXPECT_EQ(out[0], 6); // last persisted-to-device data version
}

TEST(SecureMc, RecoverAllHandlesDaxLines)
{
    McFixture f(Scheme::FsEncr);
    Rng krng(11);
    crypto::Key128 fek = crypto::randomKey(krng);
    f.mc.mmioRegisterFileKey(3, 4, fek, 0);

    Addr page = f.layout.pmemBase() + 99 * pageSize;
    Addr line = setDfBit(page);
    f.mc.mmioStampPage(line, 3, 4, 0);
    std::uint8_t v[blockSize];
    for (int i = 0; i < 7; ++i) {
        v[0] = static_cast<std::uint8_t>(0x40 + i);
        f.mc.writeLine(line, v, i * 1000, true);
    }
    f.mc.crash(50'000);

    EXPECT_TRUE(f.mc.recoverMetadata());
    // The remount path re-stamps file pages from filesystem metadata
    // before Osiris recovery runs (System::recover does this; at the
    // controller level we re-send the MMIO stamp ourselves).
    f.mc.mmioStampPage(line, 3, 4, 60'000);
    EXPECT_EQ(f.mc.recoverAll(), 0u);
    std::uint8_t out[blockSize];
    f.mc.readLine(line, 100'000, out);
    EXPECT_EQ(out[0], 0x46);
}

TEST(SecureMc, ShredMakesDataUnreadableEvenWithKey)
{
    McFixture f(Scheme::FsEncr);
    Rng krng(12);
    crypto::Key128 fek = crypto::randomKey(krng);
    f.mc.mmioRegisterFileKey(8, 9, fek, 0);
    Addr page = f.layout.pmemBase() + 123 * pageSize;
    Addr line = setDfBit(page);
    f.mc.mmioStampPage(line, 8, 9, 0);
    std::uint8_t plain[blockSize] = {0x11, 0x22};
    f.mc.writeLine(line, plain, 0, true);

    f.mc.shredPage(page, 1000);

    // Same key, same ids re-stamped — old data must be unintelligible
    // (the IVs were repurposed, Silent-Shredder style).
    f.mc.mmioStampPage(line, 8, 9, 2000);
    std::uint8_t out[blockSize];
    f.mc.readLine(line, 3000, out);
    EXPECT_NE(0, std::memcmp(plain, out, blockSize));
}

TEST(SecureMc, MetadataCacheMissesCostMore)
{
    McFixture f(Scheme::BaselineSecurity);
    std::uint8_t v[blockSize] = {1};
    Addr a = 0x90000;
    f.mc.writeLine(a, v, 0, true);
    Tick cold = f.mc.readLine(a, 1'000'000);
    Tick warm = f.mc.readLine(a, 2'000'000);
    // Second read: counters cached, only pad-gen vs data fetch.
    EXPECT_LE(warm, cold);
}

TEST(SecureMc, RekeyPreservesPlaintext)
{
    McFixture f(Scheme::FsEncr);
    Rng krng(13);
    crypto::Key128 old_key = crypto::randomKey(krng);
    crypto::Key128 new_key = crypto::randomKey(krng);
    f.mc.mmioRegisterFileKey(2, 3, old_key, 0);
    Addr page = f.layout.pmemBase() + 222 * pageSize;
    Addr line = setDfBit(page);
    f.mc.mmioStampPage(line, 2, 3, 0);
    std::uint8_t plain[blockSize] = {0xde, 0xad};
    f.mc.writeLine(line, plain, 0, true);

    // Counter saturation response (Section VI): issue a new key, then
    // re-encrypt the page from old to new.
    f.mc.mmioReplaceFileKey(2, 3, new_key, 1000);
    f.mc.rekeyPage(line, old_key, 2000);

    std::uint8_t out[blockSize];
    f.mc.readLine(line, 3000, out);
    EXPECT_EQ(0, std::memcmp(plain, out, blockSize));
}
