/**
 * @file
 * Kernel and process-model edge cases: descriptor lifecycle, multiple
 * processes and address-space isolation, permission matrix breadth,
 * allocator exhaustion paths, multi-channel device configs.
 */

#include <gtest/gtest.h>

#include "mem/nvm_device.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
cfgFor(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 2468;
    return cfg;
}

struct KernelEdge : ::testing::Test
{
    KernelEdge() : sys(cfgFor(Scheme::FsEncr))
    {
        sys.provisionAdmin("root");
        sys.bootLogin("root");
        sys.addUser("u1", 1000, 100, "p1");
        sys.addUser("u2", 1001, 101, "p2");
        pid1 = sys.createProcess(1000);
        pid2 = sys.createProcess(1001);
        sys.runOnCore(0, pid1);
        sys.runOnCore(1, pid2);
    }

    System sys;
    std::uint32_t pid1 = 0, pid2 = 0;
};

} // namespace

TEST_F(KernelEdge, BadFdIsFatal)
{
    EXPECT_THROW(sys.ftruncate(0, 999, pageSize), FatalError);
    char buf[8];
    EXPECT_THROW(sys.fileRead(0, 999, 0, buf, 8), FatalError);
    EXPECT_THROW(sys.mmapFile(0, 999, pageSize), FatalError);
}

TEST_F(KernelEdge, ClosedFdBecomesInvalid)
{
    int fd = sys.creat(0, "/pmem/c", 0600, OpenFlags::Encrypted, "p1");
    sys.closeFd(0, fd);
    char buf[4];
    EXPECT_THROW(sys.fileRead(0, fd, 0, buf, 4), FatalError);
}

TEST_F(KernelEdge, ReadOnlyFdCannotWrite)
{
    int wfd = sys.creat(0, "/pmem/ro", 0644, OpenFlags::None, "");
    sys.fileWrite(0, wfd, 0, "abc", 3);
    sys.closeFd(0, wfd);
    int rfd = sys.open(0, "/pmem/ro", OpenFlags::None, "");
    ASSERT_GE(rfd, 0);
    EXPECT_THROW(sys.fileWrite(0, rfd, 0, "x", 1), FatalError);
    EXPECT_THROW(sys.ftruncate(0, rfd, pageSize), FatalError);
}

TEST_F(KernelEdge, AddressSpacesAreIsolated)
{
    // Two processes map different files at (potentially) the same VA
    // range; each sees its own data.
    int f1 = sys.creat(0, "/pmem/a1", 0600, OpenFlags::Encrypted, "p1");
    sys.ftruncate(0, f1, pageSize);
    Addr va1 = sys.mmapFile(0, f1, pageSize);

    int f2 = sys.creat(1, "/pmem/a2", 0600, OpenFlags::Encrypted, "p2");
    sys.ftruncate(1, f2, pageSize);
    Addr va2 = sys.mmapFile(1, f2, pageSize);
    EXPECT_EQ(va1, va2); // same mmap cursor in fresh address spaces

    sys.write<std::uint64_t>(0, va1, 111);
    sys.write<std::uint64_t>(1, va2, 222);
    EXPECT_EQ(sys.read<std::uint64_t>(0, va1), 111u);
    EXPECT_EQ(sys.read<std::uint64_t>(1, va2), 222u);
}

TEST_F(KernelEdge, OthersCannotUnlinkOrChmod)
{
    sys.creat(0, "/pmem/mine", 0600, OpenFlags::Encrypted, "p1");
    EXPECT_THROW(sys.unlink(1, "/pmem/mine"), FatalError);
    EXPECT_THROW(sys.chmod(1, "/pmem/mine", 0777), FatalError);
}

TEST_F(KernelEdge, RootOverridesEverything)
{
    sys.addUser("root", 0, 0, "rootpw");
    std::uint32_t rpid = sys.createProcess(0);
    sys.runOnCore(1, rpid);
    sys.creat(0, "/pmem/owned", 0600, OpenFlags::None, "");
    int fd = sys.open(1, "/pmem/owned", OpenFlags::Write, "");
    EXPECT_GE(fd, 0);
    sys.chmod(1, "/pmem/owned", 0644);
    sys.unlink(1, "/pmem/owned");
    EXPECT_FALSE(sys.fs().lookup("/pmem/owned").has_value());
}

TEST_F(KernelEdge, OpenMissingFileFails)
{
    EXPECT_EQ(sys.open(0, "/pmem/ghost", OpenFlags::None, "p1"), -1);
}

TEST_F(KernelEdge, MmapBeyondEofFaultsFatally)
{
    int fd = sys.creat(0, "/pmem/small", 0600, OpenFlags::Encrypted, "p1");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, 4 * pageSize); // mapping > file
    sys.read<std::uint8_t>(0, va);               // in file: fine
    EXPECT_THROW(sys.read<std::uint8_t>(0, va + 2 * pageSize),
                 FatalError);
}

TEST_F(KernelEdge, UnknownUidOrPidIsFatal)
{
    EXPECT_THROW(sys.createProcess(4242), FatalError);
    EXPECT_THROW(sys.kernel().process(999), FatalError);
}

TEST(MultiChannel, ChannelBitSeparatesBanks)
{
    // With two channels, addresses differing only in the channel bit
    // land on independent banks: back-to-back writes to them dodge
    // the tWR tail that a single channel's shared bank would impose.
    PcmParams one;
    one.channels = 1;
    PcmParams two;
    two.channels = 2;

    // Under 1 channel these two addresses share a bank (same bank
    // bits); under 2 channels the low post-column bit selects the
    // channel, putting them on different banks.
    Addr a = 0x0;
    Addr b = a + one.rowBufferBytes * one.banksPerRank *
                 one.ranksPerChannel; // same bank, next row (1 ch)

    auto tail = [](const PcmParams &p, Addr x, Addr y) {
        NvmDevice dev{p};
        MemRequest w1{x, true, TrafficClass::Data};
        dev.access(w1, 0);
        MemRequest w2{y, true, TrafficClass::Data};
        return dev.access(w2, 0); // waits iff same bank is busy
    };

    Tick same_bank = tail(one, a, b);
    // Under 2 channels the same physical stride covers channel+bank
    // bits differently; pick addresses that differ only in the
    // channel bit to guarantee separation.
    Addr c = two.rowBufferBytes; // channel 1, bank 0
    Tick cross_channel = tail(two, a, c);
    EXPECT_GT(same_bank, cross_channel);
}

TEST(MultiChannel, FullSystemRunsWithTwoChannels)
{
    SimConfig cfg = cfgFor(Scheme::FsEncr);
    cfg.pcm.channels = 2;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/mc2", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, 16 * pageSize);
    Addr va = sys.mmapFile(0, fd, 16 * pageSize);
    for (Addr off = 0; off < 16 * pageSize; off += 64)
        sys.write<std::uint64_t>(0, va + off, off);
    sys.persist(0, va, pageSize);
    EXPECT_EQ(sys.read<std::uint64_t>(0, va + 128), 128u);
}
