/**
 * @file
 * Lazy re-key tests (Section VI): after a counter saturation the
 * controller keeps both keys, decrypting untouched pages with the old
 * key and re-encrypting pages with the new key on their next write.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "fsenc/secure_memory_controller.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"

using namespace fsencr;

namespace {

struct LazyFixture : ::testing::Test
{
    LazyFixture()
        : cfg(makeCfg()), layout(cfg.layout), device(cfg.pcm),
          rng(cfg.seed),
          mc(cfg.sec, cfg.scheme, cfg.pcm, cfg.cyclePeriod(),
             cfg.profile, layout, device, McKeys::draw(rng))
    {
        old_key = crypto::randomKey(rng);
        new_key = crypto::randomKey(rng);
        mc.mmioRegisterFileKey(gid, fid, old_key, 0);

        // Three pages of file data under the old key.
        for (unsigned p = 0; p < 3; ++p) {
            pages[p] = layout.pmemBase() + (300 + p) * pageSize;
            mc.mmioStampPage(setDfBit(pages[p]), gid, fid, 0);
            plain[p][0] = static_cast<std::uint8_t>(0xA0 + p);
            mc.writeLine(setDfBit(pages[p]), plain[p], p * 1000,
                         true);
        }
    }

    static SimConfig
    makeCfg()
    {
        SimConfig c;
        c.scheme = Scheme::FsEncr;
        c.seed = 31337;
        return c;
    }

    void
    beginLazy()
    {
        std::vector<Addr> page_list(pages, pages + 3);
        mc.mmioBeginLazyRekey(gid, fid, new_key, page_list, 10'000);
    }

    static constexpr std::uint32_t gid = 44, fid = 55;
    SimConfig cfg;
    PhysLayout layout;
    NvmDevice device;
    Rng rng;
    SecureMemoryController mc;
    crypto::Key128 old_key, new_key;
    Addr pages[3];
    std::uint8_t plain[3][blockSize] = {};
};

} // namespace

TEST_F(LazyFixture, ReadsUsePendingOldKey)
{
    beginLazy();
    EXPECT_EQ(mc.lazyRekeyPending(gid, fid), 3u);
    std::uint8_t out[blockSize];
    for (unsigned p = 0; p < 3; ++p) {
        mc.readLine(setDfBit(pages[p]), 20'000 + p, out);
        EXPECT_EQ(0, std::memcmp(out, plain[p], blockSize)) << p;
    }
    // Reads alone never re-encrypt.
    EXPECT_EQ(mc.lazyRekeyPending(gid, fid), 3u);
}

TEST_F(LazyFixture, WriteFlipsItsPageOnly)
{
    beginLazy();
    std::uint8_t update[blockSize] = {0x11};
    mc.writeLine(setDfBit(pages[1]) + blockSize, update, 30'000, true);
    EXPECT_EQ(mc.lazyRekeyPending(gid, fid), 2u);

    // Both the updated line and the page's other lines decrypt under
    // the new key; the untouched pages still decrypt (old key path).
    std::uint8_t out[blockSize];
    mc.readLine(setDfBit(pages[1]), 40'000, out);
    EXPECT_EQ(0, std::memcmp(out, plain[1], blockSize));
    mc.readLine(setDfBit(pages[1]) + blockSize, 41'000, out);
    EXPECT_EQ(0, std::memcmp(out, update, blockSize));
    mc.readLine(setDfBit(pages[0]), 42'000, out);
    EXPECT_EQ(0, std::memcmp(out, plain[0], blockSize));
}

TEST_F(LazyFixture, CompletesWhenAllPagesWritten)
{
    beginLazy();
    std::uint8_t v[blockSize] = {9};
    for (unsigned p = 0; p < 3; ++p)
        mc.writeLine(setDfBit(pages[p]), v, 50'000 + p * 1000, true);
    EXPECT_EQ(mc.lazyRekeyPending(gid, fid), 0u);
    EXPECT_EQ(mc.statGroup().scalarValue("lazyRekeyedPages"), 3u);

    // Everything now lives under the new key: an attacker with the
    // old key and the memory key cannot decrypt.
    std::uint8_t out[blockSize];
    mc.readLine(setDfBit(pages[0]), 60'000, out);
    EXPECT_EQ(0, std::memcmp(out, v, blockSize));
}

TEST_F(LazyFixture, SurvivesCrashMidRekey)
{
    beginLazy();
    std::uint8_t v[blockSize] = {7};
    mc.writeLine(setDfBit(pages[0]), v, 50'000, true);

    mc.crash(60'000);
    ASSERT_TRUE(mc.recoverMetadata());
    // Remount re-stamps.
    for (unsigned p = 0; p < 3; ++p)
        mc.mmioStampPage(setDfBit(pages[p]), gid, fid, 61'000 + p);
    EXPECT_EQ(mc.recoverAll(), 0u);

    std::uint8_t out[blockSize];
    mc.readLine(setDfBit(pages[0]), 70'000, out);
    EXPECT_EQ(out[0], 7); // rekeyed page, new key
    mc.readLine(setDfBit(pages[2]), 71'000, out);
    EXPECT_EQ(0, std::memcmp(out, plain[2], blockSize)); // old key
}

TEST_F(LazyFixture, EagerAndLazyEndStatesAgree)
{
    // Lazy rekey finished by writes == eager rekeyPage, as far as a
    // reader is concerned.
    beginLazy();
    std::uint8_t v0[blockSize] = {1}, v1[blockSize] = {2},
                 v2[blockSize] = {3};
    mc.writeLine(setDfBit(pages[0]), v0, 80'000, true);
    mc.writeLine(setDfBit(pages[1]), v1, 81'000, true);
    mc.writeLine(setDfBit(pages[2]), v2, 82'000, true);

    std::uint8_t out[blockSize];
    mc.readLine(setDfBit(pages[0]), 90'000, out);
    EXPECT_EQ(out[0], 1);
    mc.readLine(setDfBit(pages[1]), 91'000, out);
    EXPECT_EQ(out[0], 2);
    mc.readLine(setDfBit(pages[2]), 92'000, out);
    EXPECT_EQ(out[0], 3);
}
