/**
 * @file
 * Memory substrate tests: backing store, physical layout / DF-bit,
 * PCM device timing and function.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/config.hh"
#include "common/logging.hh"
#include "mem/backing_store.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"

using namespace fsencr;

TEST(BackingStore, ZeroFilledOnFirstTouch)
{
    BackingStore bs;
    std::uint8_t buf[16];
    bs.read(0x123456, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(bs.touchedPages(), 0u); // reads don't allocate
}

TEST(BackingStore, WriteReadRoundTrip)
{
    BackingStore bs;
    const char msg[] = "hello nvm";
    bs.write(0x5000, msg, sizeof(msg));
    char out[sizeof(msg)];
    bs.read(0x5000, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST(BackingStore, CrossPageAccess)
{
    BackingStore bs;
    std::vector<std::uint8_t> data(pageSize * 2);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    Addr base = 3 * pageSize - 100; // straddles two pages
    bs.write(base, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    bs.read(base, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(BackingStore, HostPtrSeesWrites)
{
    BackingStore bs;
    std::uint32_t v = 0xdeadbeef;
    bs.write(0x7000, &v, 4);
    EXPECT_EQ(*reinterpret_cast<std::uint32_t *>(bs.hostPtr(0x7000)),
              0xdeadbeefu);
}

TEST(DfBit, SetStripRoundTrip)
{
    Addr a = 0x3'0000'1000ull;
    Addr tagged = setDfBit(a);
    EXPECT_TRUE(hasDfBit(tagged));
    EXPECT_FALSE(hasDfBit(a));
    EXPECT_EQ(stripDfBit(tagged), a);
    EXPECT_EQ(tagged, ((1ull << 51) | a)); // the paper's PTE trick
}

namespace {

PhysLayout
defaultLayout()
{
    return PhysLayout(LayoutParams{});
}

} // namespace

TEST(PhysLayout, RegionClassification)
{
    PhysLayout l = defaultLayout();
    EXPECT_TRUE(l.isGeneral(0x1000));
    EXPECT_FALSE(l.isPmem(0x1000));
    Addr pmem = l.pmemBase() + 0x2000;
    EXPECT_TRUE(l.isPmem(pmem));
    EXPECT_TRUE(l.isPmem(setDfBit(pmem))); // DF-bit transparent
    EXPECT_TRUE(l.isMetadata(l.merkleLeavesBase()));
}

TEST(PhysLayout, MecbCoversPage)
{
    PhysLayout l = defaultLayout();
    // Same page -> same MECB; adjacent page -> adjacent (64B apart).
    EXPECT_EQ(l.mecbAddr(0x1000), l.mecbAddr(0x1fff));
    EXPECT_EQ(l.mecbAddr(0x2000) - l.mecbAddr(0x1000), blockSize);
}

TEST(PhysLayout, FecbInterleavedWithMecb)
{
    PhysLayout l = defaultLayout();
    Addr page = l.pmemBase() + 5 * pageSize;
    // "A file encryption counter block follows each memory encryption
    // counter block."
    EXPECT_EQ(l.fecbAddr(page), l.mecbAddr(page) + blockSize);
    EXPECT_EQ(l.classifyMeta(l.mecbAddr(page)),
              PhysLayout::MetaKind::Mecb);
    EXPECT_EQ(l.classifyMeta(l.fecbAddr(page)),
              PhysLayout::MetaKind::Fecb);
}

TEST(PhysLayout, FecbForGeneralMemoryIsError)
{
    PhysLayout l = defaultLayout();
    EXPECT_THROW(l.fecbAddr(0x1000), PanicError);
}

TEST(PhysLayout, MetadataRegionsDisjointFromPmem)
{
    PhysLayout l = defaultLayout();
    EXPECT_LT(l.merkleNodeBase(), l.pmemBase());
    EXPECT_GT(l.ottSpillBase(), l.merkleLeavesBase());
    EXPECT_EQ(l.classifyMeta(l.ottSpillBase()),
              PhysLayout::MetaKind::OttSpill);
    EXPECT_EQ(l.classifyMeta(l.merkleNodeBase()),
              PhysLayout::MetaKind::MerkleNode);
}

TEST(NvmDevice, FunctionalLineRoundTrip)
{
    NvmDevice dev{PcmParams{}};
    std::uint8_t line[blockSize];
    for (unsigned i = 0; i < blockSize; ++i)
        line[i] = static_cast<std::uint8_t>(i);
    dev.writeLine(0x4000, line);
    std::uint8_t out[blockSize];
    dev.readLine(0x4000, out);
    EXPECT_EQ(0, std::memcmp(line, out, blockSize));
}

TEST(NvmDevice, RowBufferHitIsFaster)
{
    NvmDevice dev{PcmParams{}};
    MemRequest r1{0x10000, false, TrafficClass::Data};
    MemRequest r2{0x10040, false, TrafficClass::Data};
    Tick miss_lat = dev.access(r1, 0);
    Tick hit_lat = dev.access(r2, miss_lat);
    EXPECT_LT(hit_lat, miss_lat);
    EXPECT_EQ(dev.statGroup().scalarValue("rowHits"), 1u);
}

TEST(NvmDevice, WriteKeepsBankBusyLonger)
{
    PcmParams p;
    NvmDevice dev{p};
    MemRequest w{0x0, true, TrafficClass::Data};
    MemRequest r{0x40, false, TrafficClass::Data};
    dev.access(w, 0);
    // Read right after the write on the same bank waits for tWR.
    Tick lat = dev.access(r, 0);
    EXPECT_GT(lat, p.tCL + p.tBURST);
}

TEST(NvmDevice, BankParallelism)
{
    PcmParams p;
    NvmDevice dev{p};
    // Different banks: no serialization.
    MemRequest a{0x0, false, TrafficClass::Data};
    MemRequest b{Addr(p.rowBufferBytes), false, TrafficClass::Data};
    Tick la = dev.access(a, 0);
    Tick lb = dev.access(b, 0);
    EXPECT_EQ(la, lb); // identical cold-bank latency
}

TEST(NvmDevice, TrafficClassCounting)
{
    NvmDevice dev{PcmParams{}};
    dev.access({0x0, false, TrafficClass::Data}, 0);
    dev.access({0x40, true, TrafficClass::Metadata}, 0);
    dev.access({0x80, false, TrafficClass::Merkle}, 0);
    EXPECT_EQ(dev.readsByClass(TrafficClass::Data), 1u);
    EXPECT_EQ(dev.writesByClass(TrafficClass::Metadata), 1u);
    EXPECT_EQ(dev.readsByClass(TrafficClass::Merkle), 1u);
    EXPECT_EQ(dev.numReads(), 2u);
    EXPECT_EQ(dev.numWrites(), 1u);
}

TEST(NvmDevice, EccSideStore)
{
    NvmDevice dev{PcmParams{}};
    EXPECT_FALSE(dev.hasEcc(0x1000));
    dev.setEcc(0x1000, 0xabcd);
    EXPECT_TRUE(dev.hasEcc(0x1010)); // same line
    EXPECT_EQ(dev.getEcc(0x1000), 0xabcdu);
    dev.clearEcc(0x1000);
    EXPECT_FALSE(dev.hasEcc(0x1000));
}

TEST(NvmDevice, CrashPreservesDataLosesRowBuffers)
{
    NvmDevice dev{PcmParams{}};
    std::uint8_t line[blockSize] = {42};
    dev.writeLine(0x2000, line);
    MemRequest r{0x2000, false, TrafficClass::Data};
    dev.access(r, 0);
    Tick warm = dev.access(r, 1'000'000'000);
    dev.crash();
    std::uint8_t out[blockSize];
    dev.readLine(0x2000, out);
    EXPECT_EQ(out[0], 42); // non-volatile
    Tick cold = dev.access(r, 2'000'000'000);
    EXPECT_GT(cold, warm); // row buffer lost
}

TEST(NvmDevice, DfBitStrippedBeforeDecode)
{
    NvmDevice dev{PcmParams{}};
    std::uint8_t line[blockSize] = {7};
    dev.writeLine(0x3000, line);
    MemRequest tagged{setDfBit(0x3000), false, TrafficClass::Data};
    EXPECT_EQ(tagged.lineAddr(), 0x3000u);
}
