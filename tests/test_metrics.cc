/**
 * @file
 * Metrics-subsystem tests: labeled-counter cardinality capping,
 * sampler interval-delta exactness, the v2 report sections
 * round-tripping through the JSON parser, log2 histogram percentiles,
 * and the fsencr-compare classification/exit-code logic.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/compare.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "common/report.hh"
#include "common/stats.hh"
#include "sim/system.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;

// ---------------------------------------------------------------------
// LabeledCounter
// ---------------------------------------------------------------------

TEST(LabeledCounter, CountsPerLabelAndInTotal)
{
    metrics::LabeledCounter c("ott.lookup", "set", 8);
    c.add("3", 2);
    c.add(static_cast<std::uint64_t>(3));
    c.add("7", 5);
    EXPECT_EQ(c.value("3"), 3u);
    EXPECT_EQ(c.value("7"), 5u);
    EXPECT_EQ(c.value("9"), 0u);
    EXPECT_EQ(c.total(), 8u);
    EXPECT_EQ(c.cardinality(), 2u);
    EXPECT_EQ(c.evictions(), 0u);
    EXPECT_EQ(c.otherValue(), 0u);
}

TEST(LabeledCounter, CapsCardinalityByFoldingLruIntoOther)
{
    metrics::LabeledCounter c("file.bytes", "file", 2);
    c.add("a", 1);
    c.add("b", 2);
    c.add("c", 3); // "a" is least-recently-updated -> folded
    EXPECT_EQ(c.cardinality(), 2u);
    EXPECT_EQ(c.value("a"), 0u);
    EXPECT_EQ(c.otherValue(), 1u);
    EXPECT_EQ(c.evictions(), 1u);

    c.add("b", 1); // refresh "b"; "c" becomes the LRU victim
    c.add("d", 4);
    EXPECT_EQ(c.value("b"), 3u);
    EXPECT_EQ(c.value("c"), 0u);
    EXPECT_EQ(c.value("d"), 4u);
    EXPECT_EQ(c.otherValue(), 4u);
    EXPECT_EQ(c.evictions(), 2u);

    // The family total never loses a count to eviction.
    EXPECT_EQ(c.total(), 11u);
    EXPECT_EQ(c.value("b") + c.value("d") + c.otherValue(), c.total());
}

TEST(LabeledCounter, SortedIsDeterministicWithOtherLast)
{
    metrics::LabeledCounter c("m", "k", 2);
    c.add("z", 1);
    c.add("a", 2);
    auto s = c.sorted();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].first, "a");
    EXPECT_EQ(s[1].first, "z");

    c.add("q", 3); // evicts "z"
    s = c.sorted();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.back().first, metrics::otherLabel);
    EXPECT_EQ(s.back().second, 1u);
}

TEST(Registry, CounterPointersAreStableAndShared)
{
    metrics::Registry reg;
    metrics::LabeledCounter &a = reg.counter("merkle.verify", "level");
    metrics::LabeledCounter &b = reg.counter("merkle.verify", "level");
    EXPECT_EQ(&a, &b); // two components share one family
    a.add(static_cast<std::uint64_t>(1));
    EXPECT_EQ(b.total(), 1u);
}

TEST(Registry, SnapshotFlattensStatTreeAndFamilies)
{
    stats::StatGroup root("system");
    stats::Scalar loads;
    root.addScalar("loads", loads);
    loads += 42;

    metrics::Registry reg;
    reg.setStatRoot(&root);
    reg.counter("ott.lookup", "set").add("5", 7);

    std::map<std::string, std::uint64_t> snap;
    reg.snapshot(snap);
    EXPECT_EQ(snap.at("system.loads"), 42u);
    EXPECT_EQ(snap.at("ott.lookup{set=5}"), 7u);
}

// ---------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------

TEST(Sampler, IntervalDeltasTileTheRunExactly)
{
    stats::StatGroup root("sys");
    stats::Scalar ctr;
    root.addScalar("ctr", ctr);

    metrics::Registry reg;
    reg.setStatRoot(&root);
    metrics::LabeledCounter &fam = reg.counter("fam", "k", 4);

    metrics::Sampler s(reg, 100, 0);
    ctr += 5;
    s.onAdvance(50); // below the first boundary: no sample
    EXPECT_TRUE(s.intervals().empty());

    fam.add("a", 3);
    s.onAdvance(120); // crosses 100 -> interval (0, 120]
    ctr += 2;
    s.onAdvance(180); // below 220: no sample
    s.onAdvance(240); // interval (120, 240]
    ctr += 1;
    s.finish(250); // residual (240, 250]

    const auto &ivs = s.intervals();
    ASSERT_EQ(ivs.size(), 3u);

    // Intervals tile the run with no gaps or overlap.
    EXPECT_EQ(ivs[0].t0, 0u);
    EXPECT_EQ(ivs[0].t1, 120u);
    EXPECT_EQ(ivs[1].t0, 120u);
    EXPECT_EQ(ivs[1].t1, 240u);
    EXPECT_EQ(ivs[2].t0, 240u);
    EXPECT_EQ(ivs[2].t1, 250u);

    // Per-interval deltas reflect exactly what changed inside.
    EXPECT_EQ(ivs[0].deltas.at("sys.ctr"), 5);
    EXPECT_EQ(ivs[0].deltas.at("fam{k=a}"), 3);
    EXPECT_EQ(ivs[1].deltas.at("sys.ctr"), 2);
    EXPECT_EQ(ivs[1].deltas.count("fam{k=a}"), 0u);
    EXPECT_EQ(ivs[2].deltas.at("sys.ctr"), 1);

    // Sum of deltas == final aggregate (the exactness contract).
    std::int64_t sum = 0;
    for (const metrics::Interval &iv : ivs) {
        auto it = iv.deltas.find("sys.ctr");
        if (it != iv.deltas.end())
            sum += it->second;
    }
    EXPECT_EQ(sum, static_cast<std::int64_t>(ctr.value()));
}

TEST(Sampler, FinishIsIdempotentAndDropsEmptyResidual)
{
    metrics::Registry reg;
    reg.counter("fam", "k").add("x", 1);
    metrics::Sampler s(reg, 10, 0);
    s.finish(25);
    ASSERT_EQ(s.intervals().size(), 1u);
    s.finish(25); // zero-width, no change: must not add an interval
    EXPECT_EQ(s.intervals().size(), 1u);
}

TEST(Sampler, EvictionRebalancePreservesFamilyTotal)
{
    metrics::Registry reg;
    metrics::LabeledCounter &fam = reg.counter("f", "k", 2);
    fam.add("a", 10);
    fam.add("b", 20);

    metrics::Sampler s(reg, 1, 0);
    fam.add("c", 5); // folds "a" into __other__
    s.finish(10);

    const auto &ivs = s.intervals();
    ASSERT_EQ(ivs.size(), 1u);
    // "a" disappears (negative delta) and reappears under __other__;
    // summing every delta in the family still gives exactly +5.
    EXPECT_EQ(ivs[0].deltas.at("f{k=a}"), -10);
    EXPECT_EQ(ivs[0].deltas.at("f{k=__other__}"), 10);
    EXPECT_EQ(ivs[0].deltas.at("f{k=c}"), 5);
    std::int64_t family_delta = 0;
    for (const auto &[name, d] : ivs[0].deltas)
        family_delta += d;
    EXPECT_EQ(family_delta, 5);
    EXPECT_EQ(fam.total(), 35u);
}

TEST(Sampler, CsvQuotesLabelsWithCommasAndQuotes)
{
    metrics::Registry reg;
    metrics::LabeledCounter &fam = reg.counter("file.bytes", "file", 8);
    metrics::Sampler s(reg, 10, 0);
    fam.add("plain", 1);
    fam.add("a,b.log", 2);          // comma shifts columns unquoted
    fam.add("say \"hi\"", 3);       // quotes must be doubled
    s.finish(20);

    std::ostringstream os;
    metrics::writeCsv(os, s);
    std::string csv = os.str();

    // RFC 4180: fields with separators are quoted, inner quotes
    // doubled, plain fields untouched.
    EXPECT_NE(csv.find("file.bytes{file=plain}"), std::string::npos);
    EXPECT_NE(csv.find("\"file.bytes{file=a,b.log}\""),
              std::string::npos);
    EXPECT_NE(csv.find("\"file.bytes{file=say \"\"hi\"\"}\""),
              std::string::npos);

    // Every data row still has exactly 4 columns when parsed with a
    // quote-aware reader (the regression: a naive writer emitted 5).
    std::istringstream is(csv);
    std::string line;
    std::getline(is, line); // header
    while (std::getline(is, line)) {
        unsigned fields = 1;
        bool quoted = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '"')
                quoted = !quoted;
            else if (line[i] == ',' && !quoted)
                ++fields;
        }
        EXPECT_EQ(fields, 4u) << line;
    }
}

// ---------------------------------------------------------------------
// Log2 histograms
// ---------------------------------------------------------------------

TEST(Log2Histogram, TailPercentileStaysNearTheRealTail)
{
    // Long-tail distribution: 99 fast samples, 1 slow one. A 16x64
    // linear histogram tops out at 1024, so the slow sample lands in
    // overflow and p99 gets interpolated toward max; log2 buckets keep
    // it in a real bucket.
    stats::Histogram h = stats::Histogram::log2Buckets();
    for (int i = 0; i < 99; ++i)
        h.sample(100);
    h.sample(1000000);
    EXPECT_EQ(h.overflow(), 0u);
    double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 64.0);
    EXPECT_LE(p50, 128.0); // 100 lives in [64, 128)
    double p99 = h.percentile(99.0);
    EXPECT_LE(p99, 2048.0); // far below the 1e6 outlier
}

TEST(Log2Histogram, ZeroHasItsOwnBucket)
{
    stats::Histogram h = stats::Histogram::log2Buckets(8);
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    const auto &b = h.buckets();
    EXPECT_EQ(b[0], 1u); // {0}
    EXPECT_EQ(b[1], 1u); // [1, 2)
    EXPECT_EQ(b[2], 2u); // [2, 4)
}

// ---------------------------------------------------------------------
// v2 report sections round-trip through the JSON parser
// ---------------------------------------------------------------------

TEST(ReportV2, TimeseriesAndMetricsSectionsParse)
{
    stats::StatGroup root("sys");
    stats::Scalar ctr;
    root.addScalar("ctr", ctr);

    metrics::Registry reg;
    reg.setStatRoot(&root);
    metrics::LabeledCounter &fam = reg.counter("f", "k", 2);

    metrics::Sampler s(reg, 100, 0);
    ctr += 7;
    fam.add("x", 3);
    s.onAdvance(150);
    ctr += 1;
    s.finish(200);

    std::ostringstream os;
    report::JsonWriter w(os);
    w.beginObject();
    w.field("schema", report::runReportSchema);
    w.field("version", report::runReportVersion);
    report::writeTimeseries(w, s);
    report::writeMetricsSection(w, reg);
    w.endObject();

    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc)) << os.str();
    EXPECT_EQ(doc.find("version")->asU64(), 2u);

    const json::Value *ts = doc.find("timeseries");
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->find("interval")->asU64(), 100u);
    EXPECT_EQ(ts->find("samples")->asU64(), 2u);
    const json::Value &ivs = *ts->find("intervals");
    ASSERT_TRUE(ivs.isArray());
    ASSERT_EQ(ivs.array.size(), 2u);
    EXPECT_EQ(ivs.array[0].find("t1")->asU64(), 150u);
    EXPECT_EQ(
        ivs.array[0].find("deltas")->find("sys.ctr")->asI64(), 7);
    EXPECT_EQ(
        ivs.array[1].find("deltas")->find("sys.ctr")->asI64(), 1);

    const json::Value *m = doc.find("metrics");
    ASSERT_NE(m, nullptr);
    const json::Value *f = m->find("f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->find("label")->str, "k");
    EXPECT_EQ(f->find("total")->asU64(), 3u);
    EXPECT_EQ(f->find("values")->find("x")->asU64(), 3u);
}

// ---------------------------------------------------------------------
// System integration: sampling is observation-only and ticks-exact
// ---------------------------------------------------------------------

namespace {

workloads::PmemkvConfig
tinyKv()
{
    workloads::PmemkvConfig kv;
    kv.op = workloads::PmemkvOp::FillRandom;
    kv.numKeys = 256;
    kv.numOps = 256;
    kv.valueBytes = 64;
    return kv;
}

} // namespace

TEST(SystemMetrics, SamplingDoesNotPerturbTimingAndSumsExactly)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;

    workloads::WorkloadResult plain;
    {
        System sys(cfg);
        workloads::PmemkvWorkload w(tinyKv());
        plain = workloads::runWorkload(sys, w);
    }

    System sys(cfg);
    metrics::Registry reg;
    sys.setMetrics(&reg);
    metrics::Sampler sampler(reg, 50000, sys.now());
    sys.setSampler(&sampler);
    workloads::PmemkvWorkload w(tinyKv());
    workloads::WorkloadResult sampled = workloads::runWorkload(sys, w);
    sampler.finish(sys.now());
    sys.setSampler(nullptr);

    // Observation-only: identical modeled results with sampling on.
    EXPECT_EQ(sampled.ticks, plain.ticks);
    EXPECT_EQ(sampled.nvmReads, plain.nvmReads);
    EXPECT_EQ(sampled.nvmWrites, plain.nvmWrites);

    // The probes fired.
    EXPECT_GT(reg.counter("ott.lookup", "set").total(), 0u);
    EXPECT_GT(reg.counter("metacache.access", "kind").total(), 0u);

    // Interval deltas of every metric sum exactly to the final
    // aggregate (initial snapshot was taken at t = 0 with all zeros).
    std::map<std::string, std::int64_t> sums;
    for (const metrics::Interval &iv : sampler.intervals())
        for (const auto &[name, d] : iv.deltas)
            sums[name] += d;
    std::map<std::string, std::uint64_t> final_snap;
    reg.snapshot(final_snap);
    for (const auto &[name, v] : final_snap) {
        auto it = sums.find(name);
        std::int64_t summed = it == sums.end() ? 0 : it->second;
        EXPECT_EQ(summed, static_cast<std::int64_t>(v)) << name;
    }

    // Intervals tile [0, end] contiguously.
    const auto &ivs = sampler.intervals();
    ASSERT_FALSE(ivs.empty());
    for (std::size_t i = 1; i < ivs.size(); ++i)
        EXPECT_EQ(ivs[i].t0, ivs[i - 1].t1);
}

// ---------------------------------------------------------------------
// fsencr-compare classification and exit codes
// ---------------------------------------------------------------------

namespace {

std::string
runReportJson(std::uint64_t ticks, std::uint64_t reads,
              std::uint64_t writes)
{
    std::ostringstream os;
    os << "{\"schema\": \"fsencr-run-report\", \"version\": 2, "
       << "\"config\": {\"scheme\": \"fsencr\", "
       << "\"workload\": \"fillrandom\"}, "
       << "\"result\": {\"ticks\": " << ticks << ", \"nvm_reads\": "
       << reads << ", \"nvm_writes\": " << writes << "}}";
    return os.str();
}

compare::Result
compareStrings(const std::string &base, const std::string &cur,
               const compare::Options &opt = {})
{
    json::Value b, c;
    EXPECT_TRUE(json::parse(base, b));
    EXPECT_TRUE(json::parse(cur, c));
    return compare::compareReports(b, c, opt);
}

} // namespace

TEST(Compare, IdenticalReportsAreCleanAtAnyThreshold)
{
    compare::Options strict;
    strict.relTolerance = 0.0;
    compare::Result r = compareStrings(runReportJson(1000, 10, 20),
                                       runReportJson(1000, 10, 20),
                                       strict);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.regressed, 0u);
    EXPECT_EQ(r.unchanged, 3u);
    EXPECT_EQ(compare::exitCodeFor(r), 0);
}

TEST(Compare, SlowdownBeyondThresholdRegresses)
{
    compare::Result r = compareStrings(runReportJson(1000, 10, 20),
                                       runReportJson(1100, 10, 20));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.regressed, 1u);
    EXPECT_EQ(compare::exitCodeFor(r), 1);
    ASSERT_FALSE(r.deltas.empty());
    EXPECT_EQ(r.deltas[0].metric, "result.ticks");
    EXPECT_EQ(r.deltas[0].status, compare::Status::Regressed);
    EXPECT_DOUBLE_EQ(r.deltas[0].ratio, 1.1);
}

TEST(Compare, SpeedupClassifiesAsImprovedAndStillExitsClean)
{
    compare::Result r = compareStrings(runReportJson(1000, 10, 20),
                                       runReportJson(800, 10, 20));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.improved, 1u);
    EXPECT_EQ(compare::exitCodeFor(r), 0);
}

TEST(Compare, WithinThresholdIsUnchanged)
{
    compare::Result r = compareStrings(runReportJson(1000, 10, 20),
                                       runReportJson(1040, 10, 20));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.regressed, 0u);
    EXPECT_EQ(r.improved, 0u);
    EXPECT_EQ(r.unchanged, 3u);
}

TEST(Compare, AbsoluteToleranceForgivesSmallCounts)
{
    // 10 -> 12 reads is +20% relative but only +2 absolute.
    compare::Options opt;
    opt.relTolerance = 0.05;
    opt.absTolerance = 5.0;
    compare::Result r = compareStrings(runReportJson(1000, 10, 20),
                                       runReportJson(1000, 12, 20),
                                       opt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.regressed, 0u);
}

TEST(Compare, SchemaAndConfigMismatchesAreStructuralErrors)
{
    compare::Result r = compareStrings(
        "{\"schema\": \"fsencr-run-report\", \"version\": 2}",
        "{\"schema\": \"fsencr-bench-report\", \"version\": 2}");
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(compare::exitCodeFor(r), 2);

    // Same schema but different workloads: refuse to gate.
    std::string other = runReportJson(1000, 10, 20);
    std::string::size_type pos = other.find("fillrandom");
    other.replace(pos, 10, "readrandom");
    r = compareStrings(runReportJson(1000, 10, 20), other);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(compare::exitCodeFor(r), 2);
}

TEST(Compare, MetricMissingFromCurrentIsAnError)
{
    compare::Result r = compareStrings(
        runReportJson(1000, 10, 20),
        "{\"schema\": \"fsencr-run-report\", \"version\": 2, "
        "\"config\": {\"scheme\": \"fsencr\", "
        "\"workload\": \"fillrandom\"}, "
        "\"result\": {\"ticks\": 1000}}");
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(compare::exitCodeFor(r), 2);
}

TEST(Compare, OlderBaselineWithoutV2SectionsStillCompares)
{
    // A v1 baseline has no timeseries/latency sections; comparing
    // against a v2 current must skip them, not error.
    compare::Result r = compareStrings(
        "{\"schema\": \"fsencr-run-report\", \"version\": 1, "
        "\"result\": {\"ticks\": 1000, \"nvm_reads\": 10, "
        "\"nvm_writes\": 20}}",
        runReportJson(1000, 10, 20));
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.unchanged, 3u);
}

TEST(Compare, BenchReportsGatePerCell)
{
    auto bench = [](std::uint64_t ticks) {
        std::ostringstream os;
        os << "{\"schema\": \"fsencr-bench-report\", \"version\": 2, "
           << "\"rows\": [{\"name\": \"fillseq\", \"cells\": ["
           << "{\"scheme\": \"fsencr\", \"ticks\": " << ticks
           << ", \"nvm_reads\": 5, \"nvm_writes\": 6}]}]}";
        return os.str();
    };
    compare::Result r = compareStrings(bench(1000), bench(1000));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.unchanged, 3u);

    r = compareStrings(bench(1000), bench(2000));
    EXPECT_EQ(r.regressed, 1u);
    EXPECT_EQ(r.deltas[0].metric, "bench.fillseq.fsencr.ticks");
    EXPECT_EQ(compare::exitCodeFor(r), 1);
}

TEST(Compare, DuplicateRowNamesMatchByOccurrence)
{
    // Sweep-style benches emit several rows with one name; the k-th
    // baseline row must gate against the k-th current row.
    auto bench = [](std::uint64_t t1, std::uint64_t t2) {
        std::ostringstream os;
        os << "{\"schema\": \"fsencr-bench-report\", \"version\": 2, "
           << "\"rows\": ["
           << "{\"name\": \"sweep\", \"cells\": [{\"scheme\": "
           << "\"fsencr\", \"ticks\": " << t1 << "}]}, "
           << "{\"name\": \"sweep\", \"cells\": [{\"scheme\": "
           << "\"fsencr\", \"ticks\": " << t2 << "}]}]}";
        return os.str();
    };
    // Identical reports with distinct per-occurrence values: matching
    // everything against the first row would flag a false regression.
    compare::Result r = compareStrings(bench(100, 9000),
                                       bench(100, 9000));
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.unchanged, 2u);

    // A slowdown in the second occurrence only is still caught.
    r = compareStrings(bench(100, 9000), bench(100, 90000));
    EXPECT_EQ(r.regressed, 1u);
}

TEST(Compare, CompareReportJsonIsVersionedAndParses)
{
    compare::Options opt;
    compare::Result r = compareStrings(runReportJson(1000, 10, 20),
                                       runReportJson(1100, 10, 20),
                                       opt);
    std::ostringstream os;
    report::JsonWriter w(os);
    compare::writeCompareReport(w, "base.json", "cur.json", opt, r);

    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc)) << os.str();
    EXPECT_EQ(doc.find("schema")->str, report::compareReportSchema);
    EXPECT_EQ(doc.find("version")->asU64(),
              static_cast<std::uint64_t>(report::compareReportVersion));
    EXPECT_EQ(doc.find("compared_schema")->str, "fsencr-run-report");
    const json::Value *summary = doc.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("ok")->boolean, false);
    EXPECT_EQ(summary->find("regressed")->asU64(), 1u);
    const json::Value *cmps = doc.find("comparisons");
    ASSERT_TRUE(cmps && cmps->isArray());
    EXPECT_EQ(cmps->array.size(), r.deltas.size());
}
