/**
 * @file
 * Module-migration tests (Section VI, "Moving Entire Filesystem To
 * New Machine"): the NVM DIMM and its security capsule move to a
 * fresh machine; the module authenticates against the transported
 * Merkle root; users re-open their files with their passphrases;
 * tampering in transit is detected.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
cfgFor(std::uint64_t seed)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.seed = seed;
    return cfg;
}

/** Populate a donor machine with alice's encrypted file. */
void
populateDonor(System &sys, const char *content, std::size_t len)
{
    workloads::standardEnvironment(sys, "alice-pw");
    int fd = sys.creat(0, "/pmem/take-me-along", 0600, OpenFlags::Encrypted,
                       "alice-pw");
    sys.fileWrite(0, fd, 0, content, len);
    sys.closeFd(0, fd);
}

} // namespace

TEST(Migration, FileReadableOnNewMachineWithPassphrase)
{
    System donor(cfgFor(11));
    const char msg[] = "data that moves with the module";
    populateDonor(donor, msg, sizeof(msg));

    // The new machine has different (fresh) keys until the import.
    System target(cfgFor(999));
    ASSERT_TRUE(target.migrateFrom(donor));

    target.provisionAdmin("new-admin");
    target.bootLogin("new-admin");
    target.addUser("alice", 1000, 100, "alice-pw");
    std::uint32_t pid = target.createProcess(1000);
    target.runOnCore(0, pid);

    int fd = target.open(0, "/pmem/take-me-along", OpenFlags::None, "alice-pw");
    ASSERT_GE(fd, 0);
    char out[sizeof(msg)] = {};
    target.fileRead(0, fd, 0, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST(Migration, WrongPassphraseStillDeniedOnNewMachine)
{
    System donor(cfgFor(12));
    const char msg[] = "secret";
    populateDonor(donor, msg, sizeof(msg));

    System target(cfgFor(998));
    ASSERT_TRUE(target.migrateFrom(donor));
    target.provisionAdmin("new-admin");
    target.bootLogin("new-admin");
    target.addUser("mallory", 1000, 100, "not-alices-pw");
    std::uint32_t pid = target.createProcess(1000);
    target.runOnCore(0, pid);
    EXPECT_EQ(target.open(0, "/pmem/take-me-along", OpenFlags::None,
                          "not-alices-pw"),
              -1);
}

TEST(Migration, TamperedModuleFailsAuthentication)
{
    System donor(cfgFor(13));
    const char msg[] = "integrity matters";
    populateDonor(donor, msg, sizeof(msg));
    // Full power-down: persisted metadata only, no volatile copies
    // left to overwrite the tampering during capsule export.
    donor.shutdown();
    donor.crash();

    System target(cfgFor(997));

    // Adversary-in-transit: flip a byte of a persisted counter block.
    auto ino = donor.fs().lookup("/pmem/take-me-along");
    Addr page = donor.fs().inode(*ino).blocks[0];
    Addr mecb = donor.layout().mecbAddr(page);
    std::uint8_t blk[blockSize];
    donor.device().readLine(mecb, blk);
    blk[5] ^= 0x40;
    donor.device().writeLine(mecb, blk);

    EXPECT_FALSE(target.migrateFrom(donor));
}

TEST(Migration, MigratedKeysMatchDonor)
{
    System donor(cfgFor(14));
    populateDonor(donor, "x", 1);
    System target(cfgFor(996));
    ASSERT_TRUE(target.migrateFrom(donor));
    EXPECT_EQ(target.mc().memoryKey(), donor.mc().memoryKey());
    EXPECT_EQ(target.mc().ottKey(), donor.mc().ottKey());
    EXPECT_EQ(target.mc().merkle().root(), donor.mc().merkle().root());
}

TEST(Migration, MmapWorksAfterMigration)
{
    System donor(cfgFor(15));
    workloads::standardEnvironment(donor, "alice-pw");
    int fd = donor.creat(0, "/pmem/mapped", 0600, OpenFlags::Encrypted, "alice-pw");
    donor.ftruncate(0, fd, pageSize);
    Addr va = donor.mmapFile(0, fd, pageSize);
    donor.write<std::uint64_t>(0, va, 0x5eed);
    donor.persist(0, va, 8);

    System target(cfgFor(995));
    ASSERT_TRUE(target.migrateFrom(donor));
    target.provisionAdmin("a");
    target.bootLogin("a");
    target.addUser("alice", 1000, 100, "alice-pw");
    std::uint32_t pid = target.createProcess(1000);
    target.runOnCore(0, pid);

    int nfd = target.open(0, "/pmem/mapped", OpenFlags::Write, "alice-pw");
    ASSERT_GE(nfd, 0);
    Addr nva = target.mmapFile(0, nfd, pageSize);
    EXPECT_EQ(target.read<std::uint64_t>(0, nva), 0x5eedu);

    // And the file stays writable + crash-consistent on the new host.
    target.write<std::uint64_t>(0, nva + 64, 0xfeed);
    target.persist(0, nva + 64, 8);
    target.crash();
    ASSERT_TRUE(target.recover());
    EXPECT_EQ(target.read<std::uint64_t>(0, nva + 64), 0xfeedu);
}

TEST(Migration, PostMigrationCrashRecoveryWorks)
{
    System donor(cfgFor(16));
    const char msg[] = "durable across machines";
    populateDonor(donor, msg, sizeof(msg));
    System target(cfgFor(994));
    ASSERT_TRUE(target.migrateFrom(donor));

    target.crash();
    EXPECT_TRUE(target.recover());
    target.provisionAdmin("a");
    target.bootLogin("a");
    target.addUser("alice", 1000, 100, "alice-pw");
    std::uint32_t pid = target.createProcess(1000);
    target.runOnCore(0, pid);
    int fd = target.open(0, "/pmem/take-me-along", OpenFlags::None, "alice-pw");
    ASSERT_GE(fd, 0);
    char out[sizeof(msg)] = {};
    target.fileRead(0, fd, 0, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}
