/**
 * @file
 * Observability-layer tests: percentile estimation, JSON stat dumps
 * that actually parse, the trace-event ring buffer and its Chrome
 * JSON round-trip, cycle attribution summing exactly to the clock,
 * rate-limited warnings, and the streaming report writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bench/harness.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/report.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "cpu/mem_trace.hh"
#include "sim/system.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

workloads::PmemkvConfig
tinyKv()
{
    workloads::PmemkvConfig kv;
    kv.op = workloads::PmemkvOp::FillRandom;
    kv.numKeys = 256;
    kv.numOps = 256;
    kv.valueBytes = 64;
    return kv;
}

SimConfig
cfgFor(Scheme s)
{
    SimConfig cfg;
    cfg.scheme = s;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram::percentile
// ---------------------------------------------------------------------

TEST(Percentile, EmptyHistogramReportsZero)
{
    stats::Histogram h(8, 10);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.percentile(99.0), 0.0);
}

TEST(Percentile, SingleSampleIsExact)
{
    stats::Histogram h(8, 10);
    h.sample(37);
    EXPECT_EQ(h.percentile(0.0), 37.0);
    EXPECT_EQ(h.percentile(50.0), 37.0);
    EXPECT_EQ(h.percentile(100.0), 37.0);
}

TEST(Percentile, UniformSamplesInterpolate)
{
    stats::Histogram h(10, 10);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    double p50 = h.percentile(50.0);
    double p95 = h.percentile(95.0);
    double p99 = h.percentile(99.0);
    EXPECT_NEAR(p50, 50.0, 10.0);
    EXPECT_NEAR(p95, 95.0, 10.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, 99.0);
    EXPECT_GE(h.percentile(0.0), 0.0);
}

TEST(Percentile, OverflowBucketInterpolatesTowardMax)
{
    stats::Histogram h(4, 10); // linear coverage ends at 40
    h.sample(5);
    h.sample(500);
    double p99 = h.percentile(99.0);
    EXPECT_GE(p99, 40.0);   // inside the overflow region
    EXPECT_LE(p99, 500.0);  // clamped to the observed max
    EXPECT_EQ(h.percentile(100.0), 500.0);
}

TEST(Percentile, AllSamplesInOverflow)
{
    stats::Histogram h(2, 10);
    h.sample(1000);
    h.sample(2000);
    h.sample(3000);
    EXPECT_GE(h.percentile(50.0), 20.0);
    EXPECT_LE(h.percentile(50.0), 3000.0);
    EXPECT_EQ(h.percentile(100.0), 3000.0);
}

// ---------------------------------------------------------------------
// StatGroup JSON dump + dotted-path lookup
// ---------------------------------------------------------------------

TEST(StatsJson, NestedDumpParsesAndPreservesU64)
{
    stats::StatGroup root("root");
    stats::StatGroup child("child");
    stats::Scalar big, small;
    stats::Histogram h(4, 10);
    big = (1ull << 60) + 7; // would round through a double
    small = 3;
    h.sample(12);
    root.addScalar("big", big);
    child.addScalar("small", small);
    child.addHistogram("lat", h);
    root.addChild(&child);

    std::ostringstream os;
    root.dumpJson(os);

    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc)) << os.str();
    ASSERT_TRUE(doc.isObject());
    const json::Value *b = doc.find("big");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->asU64(), (1ull << 60) + 7);
    const json::Value *c = doc.find("child");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("small")->asU64(), 3u);
    const json::Value *lat = c->find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("samples")->asU64(), 1u);
    ASSERT_NE(lat->find("p50"), nullptr);
    ASSERT_NE(lat->find("p95"), nullptr);
    ASSERT_NE(lat->find("p99"), nullptr);
    EXPECT_EQ(lat->find("min")->asU64(), 12u);
}

TEST(StatsJson, ScalarValueDottedPath)
{
    stats::StatGroup root("root");
    stats::StatGroup mid("mid");
    stats::StatGroup leaf("leaf");
    stats::Scalar v;
    v = 42;
    leaf.addScalar("value", v);
    mid.addChild(&leaf);
    root.addChild(&mid);
    EXPECT_EQ(root.scalarValue("mid.leaf.value"), 42u);
}

// ---------------------------------------------------------------------
// Tracer ring buffer + Chrome trace_event round-trip
// ---------------------------------------------------------------------

TEST(Tracer, RingOverwritesOldestAndCountsDrops)
{
    trace::Tracer t(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        t.instant("ev", "test", i * 100, i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.emitted(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.front().arg, 2u); // oldest surviving
    EXPECT_EQ(evs.back().arg, 5u);
}

TEST(Tracer, ExportIsValidJson)
{
    trace::Tracer t(16);
    t.complete("read", "mc", 1000, 250, 0, 1);
    t.instant("meta_cache_miss", "metaCache", 1100, 0xdeadbeef);
    t.counter("wpq", "mc", 1200, 3);

    std::ostringstream os;
    t.exportJson(os);

    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc)) << os.str();
    const json::Value *evs = doc.find("traceEvents");
    ASSERT_NE(evs, nullptr);
    ASSERT_TRUE(evs->isArray());
    ASSERT_EQ(evs->array.size(), 3u);
    const json::Value &first = evs->array[0];
    EXPECT_EQ(first.find("name")->str, "read");
    EXPECT_EQ(first.find("ph")->str, "X");
    const json::Value *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("emitted")->asU64(), 3u);
}

TEST(Tracer, WrappedExportCarriesDroppedSpansMarker)
{
    trace::Tracer t(4);
    for (std::uint64_t i = 0; i < 7; ++i)
        t.instant("ev", "test", 1000 + i * 100, i);
    ASSERT_EQ(t.dropped(), 3u);

    std::ostringstream os;
    t.exportJson(os);
    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc)) << os.str();
    const json::Value *evs = doc.find("traceEvents");
    ASSERT_NE(evs, nullptr);
    // 4 surviving events plus the synthetic truncation marker.
    ASSERT_EQ(evs->array.size(), 5u);
    const json::Value &marker = evs->array[0];
    EXPECT_EQ(marker.find("name")->str, "dropped_spans");
    EXPECT_EQ(marker.find("cat")->str, "tracer");
    EXPECT_EQ(marker.find("ph")->str, "i");
    EXPECT_EQ(marker.find("args")->find("v")->asU64(), 3u);
    // Anchored at the oldest retained timestamp so the viewer shows
    // the truncation point, not time zero.
    EXPECT_EQ(marker.find("ts")->asU64(),
              evs->array[1].find("ts")->asU64());
}

TEST(Tracer, UnwrappedExportHasNoMarker)
{
    trace::Tracer t(8);
    t.instant("ev", "test", 100, 1);
    std::ostringstream os;
    t.exportJson(os);
    EXPECT_EQ(os.str().find("dropped_spans"), std::string::npos);
    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc));
    EXPECT_EQ(doc.find("traceEvents")->array.size(), 1u);
}

TEST(Tracer, ExportImportRoundTrip)
{
    trace::Tracer t(32);
    // Sub-microsecond tick values exercise the fixed-point formatting.
    t.complete("read", "mc", 1234567, 890123, 2, 77);
    t.complete("write", "mc", 2000000, 1, 0, 0);
    t.instant("osiris_recover", "osiris", 3, 9);
    t.counter("depth", "ott", 4000001, 12);

    std::ostringstream os;
    t.exportJson(os);

    trace::Tracer back(32);
    std::istringstream is(os.str());
    ASSERT_TRUE(back.importJson(is));

    auto a = t.events();
    auto b = back.events();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_STREQ(a[i].name, b[i].name) << i;
        EXPECT_STREQ(a[i].cat, b[i].cat) << i;
        EXPECT_EQ(a[i].ph, b[i].ph) << i;
        EXPECT_EQ(a[i].tid, b[i].tid) << i;
        EXPECT_EQ(a[i].ts, b[i].ts) << i;
        EXPECT_EQ(a[i].dur, b[i].dur) << i;
        EXPECT_EQ(a[i].arg, b[i].arg) << i;
    }
}

// ---------------------------------------------------------------------
// Cycle attribution
// ---------------------------------------------------------------------

TEST(Attribution, ComponentNamesAreStableSnakeCase)
{
    EXPECT_STREQ(trace::componentName(trace::OttLookup), "ott_lookup");
    EXPECT_STREQ(trace::componentName(trace::CounterFetch),
                 "counter_fetch");
    EXPECT_STREQ(trace::componentName(trace::MerkleVerify),
                 "merkle_verify");
    EXPECT_STREQ(trace::componentName(trace::NvmAccess), "nvm_access");
}

TEST(Attribution, MeasuredAttributionSumsToMeasuredTicks)
{
    for (Scheme s : {Scheme::NoEncryption, Scheme::BaselineSecurity,
                     Scheme::FsEncr, Scheme::SoftwareEncryption}) {
        System sys(cfgFor(s));
        workloads::PmemkvWorkload w(tinyKv());
        workloads::WorkloadResult r = workloads::runWorkload(sys, w);
        trace::Breakdown bd = sys.measuredAttribution();
        EXPECT_EQ(bd.total(), r.ticks) << schemeName(s);
        EXPECT_EQ(sys.attribution().total(), sys.now()) << schemeName(s);
    }
}

TEST(Attribution, FsEncrMetadataCostsShowUp)
{
    // The paper's story: FsEncr's added latency over no-encryption is
    // dominated by counter fetches and Merkle verification on
    // metadata-cache misses. The attribution must make those costs
    // visible (nonzero) under fsencr and absent without encryption.
    System plain(cfgFor(Scheme::NoEncryption));
    System fsencr_sys(cfgFor(Scheme::FsEncr));
    workloads::PmemkvWorkload w1(tinyKv()), w2(tinyKv());
    workloads::runWorkload(plain, w1);
    workloads::runWorkload(fsencr_sys, w2);

    trace::Breakdown p = plain.measuredAttribution();
    trace::Breakdown f = fsencr_sys.measuredAttribution();
    EXPECT_EQ(p.ticks[trace::CounterFetch], 0u);
    EXPECT_EQ(p.ticks[trace::MerkleVerify], 0u);
    EXPECT_GT(f.ticks[trace::CounterFetch], 0u);
    EXPECT_GT(f.ticks[trace::PadGen], 0u);
    EXPECT_GT(f.ticks[trace::NvmAccess], 0u);
}

TEST(Attribution, ReplayAttributionSumsToReplayTicks)
{
    // Capture a request trace, then replay it: the replay's breakdown
    // is assembled per request and must reproduce total ticks exactly.
    System sys(cfgFor(Scheme::FsEncr));
    MemTrace mt;
    sys.mc().setTraceCapture(&mt);
    workloads::PmemkvWorkload w(tinyKv());
    workloads::runWorkload(sys, w);
    sys.mc().setTraceCapture(nullptr);
    ASSERT_GT(mt.size(), 0u);

    ReplayResult r = replayTrace(mt, cfgFor(Scheme::FsEncr));
    EXPECT_EQ(r.attribution.total(), r.totalTicks);
    EXPECT_GT(r.attribution.ticks[trace::NvmAccess], 0u);
}

TEST(Attribution, TracingDoesNotPerturbTiming)
{
    System off(cfgFor(Scheme::FsEncr));
    workloads::PmemkvWorkload w1(tinyKv());
    workloads::WorkloadResult base = workloads::runWorkload(off, w1);

    System on(cfgFor(Scheme::FsEncr));
    trace::Tracer tracer(1u << 16);
    on.setTracer(&tracer);
    workloads::PmemkvWorkload w2(tinyKv());
    workloads::WorkloadResult traced = workloads::runWorkload(on, w2);

    EXPECT_EQ(base.ticks, traced.ticks);
    EXPECT_EQ(base.nvmReads, traced.nvmReads);
    EXPECT_EQ(base.nvmWrites, traced.nvmWrites);
    EXPECT_GT(tracer.emitted(), 0u);
}

TEST(Attribution, ReplayInspectSeesControllerStats)
{
    System sys(cfgFor(Scheme::BaselineSecurity));
    MemTrace mt;
    sys.mc().setTraceCapture(&mt);
    workloads::PmemkvWorkload w(tinyKv());
    workloads::runWorkload(sys, w);
    sys.mc().setTraceCapture(nullptr);

    std::string stats_json;
    replayTrace(mt, cfgFor(Scheme::BaselineSecurity), nullptr,
                [&](SecureMemoryController &mc) {
                    std::ostringstream os;
                    mc.statGroup().dumpJson(os);
                    stats_json = os.str();
                });
    json::Value doc;
    ASSERT_TRUE(json::parse(stats_json, doc));
    EXPECT_TRUE(doc.isObject());
    EXPECT_NE(doc.find("attribution"), nullptr);
}

// ---------------------------------------------------------------------
// Rate-limited warnings
// ---------------------------------------------------------------------

TEST(Logging, NoteWarningHonoursLimitAndReset)
{
    detail::resetWarningCounts();
    bool last = false;
    EXPECT_TRUE(detail::noteWarning("obs-test-key", 2, &last));
    EXPECT_FALSE(last);
    EXPECT_TRUE(detail::noteWarning("obs-test-key", 2, &last));
    EXPECT_TRUE(last); // final printed occurrence
    EXPECT_FALSE(detail::noteWarning("obs-test-key", 2, &last));
    // Independent keys do not interfere.
    EXPECT_TRUE(detail::noteWarning("obs-other-key", 1, &last));
    EXPECT_TRUE(last);
    detail::resetWarningCounts();
    EXPECT_TRUE(detail::noteWarning("obs-test-key", 2, &last));
    detail::resetWarningCounts();
}

// ---------------------------------------------------------------------
// Streaming report writer
// ---------------------------------------------------------------------

TEST(ReportWriter, ProducesValidNestedJson)
{
    std::ostringstream os;
    report::JsonWriter w(os);
    w.beginObject();
    w.field("schema", report::runReportSchema);
    w.field("version", report::runReportVersion);
    w.field("escaped", std::string("a\"b\\c\nd\te"));
    w.beginObject("nested");
    w.field("ticks", std::uint64_t(1) << 61);
    w.field("ratio", 0.25);
    w.field("flag", true);
    w.endObject();
    w.beginArray("list");
    w.value(std::uint64_t(1));
    w.value(std::uint64_t(2));
    w.value(std::string("three"));
    w.endArray();
    w.rawField("raw", "{\"inner\": 7}");
    w.endObject();

    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc)) << os.str();
    EXPECT_EQ(doc.find("schema")->str, report::runReportSchema);
    EXPECT_EQ(doc.find("escaped")->str, "a\"b\\c\nd\te");
    EXPECT_EQ(doc.find("nested")->find("ticks")->asU64(),
              std::uint64_t(1) << 61);
    EXPECT_TRUE(doc.find("nested")->find("flag")->boolean);
    ASSERT_EQ(doc.find("list")->array.size(), 3u);
    EXPECT_EQ(doc.find("list")->array[2].str, "three");
    EXPECT_EQ(doc.find("raw")->find("inner")->asU64(), 7u);
}

TEST(ReportWriter, HistogramSummaryFields)
{
    stats::Histogram h(8, 10);
    h.sample(5);
    h.sample(25);
    h.sample(70);

    std::ostringstream os;
    report::JsonWriter w(os);
    w.beginObject();
    report::writeHistogram(w, "lat", h);
    w.endObject();

    json::Value doc;
    ASSERT_TRUE(json::parse(os.str(), doc)) << os.str();
    const json::Value *lat = doc.find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("samples")->asU64(), 3u);
    EXPECT_EQ(lat->find("min")->asU64(), 5u);
    EXPECT_EQ(lat->find("max")->asU64(), 70u);
    EXPECT_LE(lat->find("p50")->number, lat->find("p99")->number);
}

// ---------------------------------------------------------------------
// Bench harness report
// ---------------------------------------------------------------------

TEST(BenchReport, CellsCarryAttributionAndPercentiles)
{
    workloads::PmemkvConfig kv = tinyKv();
    bench::BenchRow row = bench::runRow(
        "tiny",
        [kv]() { return std::make_unique<workloads::PmemkvWorkload>(kv); },
        {Scheme::NoEncryption, Scheme::FsEncr});

    const bench::Cell &plain = row.cells.at(Scheme::NoEncryption);
    const bench::Cell &fsn = row.cells.at(Scheme::FsEncr);
    EXPECT_EQ(plain.attribution.total(), plain.ticks);
    EXPECT_EQ(fsn.attribution.total(), fsn.ticks);
    EXPECT_GT(fsn.attribution.ticks[trace::CounterFetch], 0u);
    EXPECT_GT(fsn.readP50, 0.0);
    EXPECT_LE(fsn.readP50, fsn.readP99);
    EXPECT_LE(fsn.writeP50, fsn.writeP99);
}
